package geoloc

import (
	"fmt"
	"math"
	"time"

	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

// Telling apart the northern and the southern hemisphere (§V-F).
//
// Countries in the northern hemisphere observe DST from (about) March to
// October; southern countries from (about) October to February. For a user
// whose region observes DST, the UTC-frame activity profile of the
// DST period is displaced one hour *earlier* than the profile of the
// standard-time period (local habits stay put while the clock moves).
// Comparing a user's October-March profile with the March-October profile
// shifted by +1h, -1h and 0h under the EMD therefore reveals the
// hemisphere:
//
//   - northern users: Oct-Mar is standard time, Mar-Oct is DST, so the
//     Oct-Mar profile matches the Mar-Oct profile "adjusted forward one
//     hour";
//   - southern users: Oct-Mar is DST, so the match is with the Mar-Oct
//     profile adjusted *backward* one hour;
//   - users from no-DST countries: the two profiles match best unshifted.

// HemisphereVerdict is the §V-F classification of a single user.
type HemisphereVerdict struct {
	// Hemisphere is the ruling: north, south, or none (no DST evidence).
	Hemisphere tz.Hemisphere
	// OctMarPosts and MarOctPosts count the activity used per season.
	OctMarPosts, MarOctPosts int
	// DistanceForward, DistanceBackward and DistanceUnshifted are the EMD
	// values for the three whole-hour alignments the paper describes.
	DistanceForward, DistanceBackward, DistanceUnshifted float64
	// BestShift is the fractional forward shift of the Mar-Oct profile
	// that minimizes the EMD to the Oct-Mar profile; ~+1 indicates a
	// northern user, ~-1 a southern one, ~0 no DST.
	BestShift float64
	// BestDistance is the EMD at BestShift.
	BestDistance float64
}

// HemisphereOptions configures ClassifyHemisphere.
type HemisphereOptions struct {
	// MinPostsPerSeason is the minimum activity required in each seasonal
	// window; below it the classification fails. Defaults to 15.
	MinPostsPerSeason int
	// Margin is the relative advantage the best shifted alignment must
	// have over the unshifted one to rule for a DST hemisphere
	// (DistanceUnshifted >= (1+Margin) * BestDistance); it absorbs
	// sampling noise. Defaults to 0.4.
	Margin float64
	// SmoothPasses is the number of circular [1/4, 1/2, 1/4] smoothing
	// passes applied to the seasonal profiles before comparison. Hourly
	// sampling noise otherwise drowns the one-hour displacement the test
	// looks for. Defaults to 2.
	SmoothPasses int
	// NoSmoothing disables smoothing entirely (SmoothPasses is ignored).
	NoSmoothing bool
}

func (o HemisphereOptions) withDefaults() HemisphereOptions {
	if o.MinPostsPerSeason == 0 {
		o.MinPostsPerSeason = 15
	}
	if o.Margin == 0 {
		o.Margin = 0.4
	}
	if o.SmoothPasses == 0 {
		o.SmoothPasses = 2
	}
	if o.NoSmoothing {
		o.SmoothPasses = 0
	}
	return o
}

// smooth applies n circular binomial smoothing passes to a profile.
func smooth(p profile.Profile, n int) profile.Profile {
	for pass := 0; pass < n; pass++ {
		var out profile.Profile
		for h := 0; h < len(p); h++ {
			prev := p[(h-1+len(p))%len(p)]
			next := p[(h+1)%len(p)]
			out[h] = 0.25*prev + 0.5*p[h] + 0.25*next
		}
		p = out
	}
	return p
}

// octMar reports whether the UTC month belongs to the October-March
// window. The window boundaries stay strictly inside each hemisphere's
// DST/standard period (November-February versus April-September) so that
// the weeks around the clock changes do not contaminate either profile;
// March and October themselves are excluded because the two hemispheres
// switch mid-month.
func octMar(m time.Month) bool {
	return m == time.November || m == time.December || m == time.January || m == time.February
}

func marOct(m time.Month) bool {
	return m >= time.April && m <= time.September
}

// ClassifyHemisphere runs the §V-F test on one user's posts (timestamps in
// UTC).
func ClassifyHemisphere(posts []trace.Post, opts HemisphereOptions) (*HemisphereVerdict, error) {
	opts = opts.withDefaults()
	var octMarPosts, marOctPosts []trace.Post
	for _, p := range posts {
		switch m := p.Time.UTC().Month(); {
		case octMar(m):
			octMarPosts = append(octMarPosts, p)
		case marOct(m):
			marOctPosts = append(marOctPosts, p)
		}
	}
	if len(octMarPosts) < opts.MinPostsPerSeason || len(marOctPosts) < opts.MinPostsPerSeason {
		return nil, fmt.Errorf("geoloc: not enough seasonal activity (%d Oct-Mar, %d Mar-Oct, need %d each)",
			len(octMarPosts), len(marOctPosts), opts.MinPostsPerSeason)
	}
	pOctMar, err := profile.FromPosts(octMarPosts, profile.UTCHours())
	if err != nil {
		return nil, fmt.Errorf("geoloc: Oct-Mar profile: %w", err)
	}
	pMarOct, err := profile.FromPosts(marOctPosts, profile.UTCHours())
	if err != nil {
		return nil, fmt.Errorf("geoloc: Mar-Oct profile: %w", err)
	}
	pOctMar = smooth(pOctMar, opts.SmoothPasses)
	pMarOct = smooth(pMarOct, opts.SmoothPasses)

	verdict := &HemisphereVerdict{
		OctMarPosts: len(octMarPosts),
		MarOctPosts: len(marOctPosts),
	}
	if verdict.DistanceForward, err = pOctMar.EMD(pMarOct.Shift(1)); err != nil {
		return nil, fmt.Errorf("geoloc: forward alignment: %w", err)
	}
	if verdict.DistanceBackward, err = pOctMar.EMD(pMarOct.Shift(-1)); err != nil {
		return nil, fmt.Errorf("geoloc: backward alignment: %w", err)
	}
	if verdict.DistanceUnshifted, err = pOctMar.EMD(pMarOct); err != nil {
		return nil, fmt.Errorf("geoloc: unshifted alignment: %w", err)
	}

	// Estimate the fractional alignment shift that best matches the two
	// seasonal profiles. The grid covers the plausible DST range with a
	// little slack; the decision is by the sign and magnitude of the best
	// shift rather than by three isolated distance values, which makes
	// the ruling robust to hourly sampling noise.
	verdict.BestShift, verdict.BestDistance = bestAlignment(pOctMar, pMarOct)
	significant := verdict.DistanceUnshifted >= (1+opts.Margin)*verdict.BestDistance
	switch {
	case significant && verdict.BestShift >= 0.5:
		verdict.Hemisphere = tz.HemisphereNorth
	case significant && verdict.BestShift <= -0.5:
		verdict.Hemisphere = tz.HemisphereSouth
	default:
		// "If we do not see any particular difference in the two periods,
		// we assign the user to one of the countries that do not use
		// daylight saving time."
		verdict.Hemisphere = tz.HemisphereNone
	}
	return verdict, nil
}

// bestAlignment scans fractional forward shifts of q in [-2, +2] and
// returns the shift minimizing EMD(p, q shifted), with the matching
// distance.
func bestAlignment(p, q profile.Profile) (shift, dist float64) {
	const (
		lo, hi = -2.0, 2.0
		step   = 0.05
	)
	best := math.Inf(1)
	bestShift := 0.0
	for s := lo; s <= hi+1e-9; s += step {
		d, err := p.EMD(q.ShiftFractional(s))
		if err != nil {
			continue
		}
		if d < best {
			best = d
			bestShift = s
		}
	}
	return bestShift, best
}

// ClassifyTopUsers applies the hemisphere test to the n most active users
// of a dataset, as the paper does for the Pedo Support Community ("we limit
// our analysis to the 5 most active users of the forum"). Users whose
// seasonal activity is too thin are skipped with a nil verdict.
func ClassifyTopUsers(ds *trace.Dataset, n int, opts HemisphereOptions) (map[string]*HemisphereVerdict, error) {
	users := MostActiveUsers(ds, n)
	if len(users) == 0 {
		return nil, fmt.Errorf("geoloc: dataset %q has no users", ds.Name)
	}
	byUser := ds.ByUser()
	out := make(map[string]*HemisphereVerdict, len(users))
	for _, u := range users {
		verdict, err := ClassifyHemisphere(byUser[u], opts)
		if err != nil {
			out[u] = nil
			continue
		}
		out[u] = verdict
	}
	return out, nil
}
