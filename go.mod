module darkcrowd

go 1.22
