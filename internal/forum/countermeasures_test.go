package forum

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTimestampJitterDeterministic(t *testing.T) {
	t.Parallel()
	f := New(Config{
		Name:            "jittered",
		TimestampJitter: 3 * time.Hour,
		Clock:           fixedClock(testInstant),
	})
	if _, err := f.Register("alice"); err != nil {
		t.Fatal(err)
	}
	p, err := f.PostNow(f.WelcomeThreadID(), "alice", "hi")
	if err != nil {
		t.Fatal(err)
	}
	first := f.displayTimeFor(p)
	for i := 0; i < 5; i++ {
		if got := f.displayTimeFor(p); !got.Equal(first) {
			t.Fatal("jitter differs between renders of the same post")
		}
	}
	// Within bounds.
	delta := first.Sub(f.DisplayTime(p.At))
	if delta > 3*time.Hour || delta < -3*time.Hour {
		t.Errorf("jitter %v exceeds +/-3h", delta)
	}
}

func TestTimestampJitterSpread(t *testing.T) {
	t.Parallel()
	f := New(Config{
		Name:            "jittered",
		TimestampJitter: 6 * time.Hour,
		Clock:           fixedClock(testInstant),
	})
	if _, err := f.Register("bob"); err != nil {
		t.Fatal(err)
	}
	distinct := make(map[time.Time]bool)
	for i := 0; i < 40; i++ {
		p, err := f.PostAt(f.WelcomeThreadID(), "bob", "x", testInstant)
		if err != nil {
			t.Fatal(err)
		}
		distinct[f.displayTimeFor(p)] = true
	}
	// Same true instant, different post IDs: displayed times must spread.
	if len(distinct) < 20 {
		t.Errorf("only %d distinct jittered times out of 40", len(distinct))
	}
}

func TestNoJitterByDefault(t *testing.T) {
	t.Parallel()
	f := newTestForum()
	if _, err := f.Register("carol"); err != nil {
		t.Fatal(err)
	}
	p, err := f.PostNow(f.WelcomeThreadID(), "carol", "hi")
	if err != nil {
		t.Fatal(err)
	}
	if !f.displayTimeFor(p).Equal(f.DisplayTime(p.At)) {
		t.Error("jitter applied despite zero config")
	}
}

func TestHideTimestampsRendering(t *testing.T) {
	t.Parallel()
	f := New(Config{
		Name:           "hidden",
		HideTimestamps: true,
		Clock:          fixedClock(testInstant),
	})
	if !f.HidesTimestamps() {
		t.Fatal("HidesTimestamps() = false")
	}
	if _, err := f.Register("dave"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.PostNow(f.WelcomeThreadID(), "dave", "secret timing"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/thread?id=1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	if strings.Contains(s, "data-time=") {
		t.Errorf("hidden-timestamp forum leaked data-time: %s", s)
	}
	if !strings.Contains(s, `data-author="dave"`) || !strings.Contains(s, `data-id="`) {
		t.Errorf("post markup incomplete: %s", s)
	}
}

func TestHideTimestampsReplyEcho(t *testing.T) {
	t.Parallel()
	f := New(Config{
		Name:           "hidden",
		HideTimestamps: true,
		Clock:          fixedClock(testInstant),
	})
	if _, err := f.Register("erin"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	resp, err := http.PostForm(srv.URL+"/reply", map[string][]string{
		"thread": {"1"}, "author": {"erin"}, "body": {"probe"},
	})
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(body), "data-time=") {
		t.Errorf("reply echo leaked a timestamp: %s", body)
	}
}
