package forum

import (
	"errors"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"time"
)

// HTTP front end. The markup is deliberately simple and regular — real
// forum engines render server-local timestamps with no zone designator in
// predictable markup, which is exactly what the paper's scraper consumed.
// Every post is rendered as:
//
//	<div class="post" data-id="N" data-author="NAME" data-time="2006-01-02 15:04:05">
//
// so the crawler can extract (author, displayed time) pairs. When the
// forum hides timestamps (§VII countermeasure) the data-time attribute is
// omitted and the crawler must fall back to monitor mode.

var pageTemplates = template.Must(template.New("forum").Parse(`
{{define "index"}}<!DOCTYPE html>
<html><head><title>{{.Name}}</title></head><body>
<h1>{{.Name}}</h1>
<ul class="boards">
{{range .Boards}}<li><a href="/board?id={{.ID}}">{{.Name}}</a> &mdash; {{.Description}}</li>
{{end}}</ul>
</body></html>{{end}}

{{define "board"}}<!DOCTYPE html>
<html><head><title>{{.Board.Name}}</title></head><body>
<h1>{{.Board.Name}}</h1>
<ul class="threads">
{{range .Threads}}<li><a href="/thread?id={{.ID}}">{{.Title}}</a></li>
{{end}}</ul>
<p><a href="/">Back to index</a></p>
</body></html>{{end}}

{{define "thread"}}<!DOCTYPE html>
<html><head><title>{{.Thread.Title}}</title></head><body>
<h1>{{.Thread.Title}}</h1>
<div class="posts" data-page="{{.Page}}" data-pages="{{.Pages}}">
{{range .Posts}}<div class="post" data-id="{{.ID}}" data-author="{{.Author}}"{{if .Time}} data-time="{{.Time}}"{{end}}>
<span class="author">{{.Author}}</span>{{if .Time}} <span class="time">{{.Time}}</span>{{end}}
<p>{{.Body}}</p>
</div>
{{end}}</div>
{{if .HasPrev}}<a class="prev" href="/thread?id={{.Thread.ID}}&page={{.PrevPage}}">prev</a>{{end}}
{{if .HasNext}}<a class="next" href="/thread?id={{.Thread.ID}}&page={{.NextPage}}">next</a>{{end}}
</body></html>{{end}}
`))

// Handler returns the forum's http.Handler. When the FailEvery or
// Latency fault knobs are set, the handler is wrapped so every
// FailEvery-th request answers 503 and every response waits Latency
// first — deterministic server-side flakiness for crawler tests.
func (f *Forum) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", f.handleIndex)
	mux.HandleFunc("/board", f.handleBoard)
	mux.HandleFunc("/thread", f.handleThread)
	mux.HandleFunc("/register", f.handleRegister)
	mux.HandleFunc("/reply", f.handleReply)
	if f.cfg.FailEvery <= 0 && f.cfg.Latency <= 0 {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f.cfg.Latency > 0 {
			select {
			case <-time.After(f.cfg.Latency):
			case <-r.Context().Done():
				return
			}
		}
		if n := f.cfg.FailEvery; n > 0 && f.reqCount.Add(1)%int64(n) == 0 {
			http.Error(w, "injected failure", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	})
}

func (f *Forum) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	data := struct {
		Name   string
		Boards []*Board
	}{Name: f.cfg.Name, Boards: f.Boards()}
	if err := pageTemplates.ExecuteTemplate(w, "index", data); err != nil {
		http.Error(w, "template error", http.StatusInternalServerError)
	}
}

func (f *Forum) handleBoard(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		http.Error(w, "bad board id", http.StatusBadRequest)
		return
	}
	var board *Board
	for _, b := range f.Boards() {
		if b.ID == id {
			board = b
			break
		}
	}
	if board == nil {
		http.NotFound(w, r)
		return
	}
	data := struct {
		Board   *Board
		Threads []*Thread
	}{Board: board, Threads: f.Threads(id)}
	if err := pageTemplates.ExecuteTemplate(w, "board", data); err != nil {
		http.Error(w, "template error", http.StatusInternalServerError)
	}
}

// renderedPost is a post with its timestamp already moved to server time
// (empty when the forum hides timestamps).
type renderedPost struct {
	ID     int
	Author string
	Time   string
	Body   string
}

func (f *Forum) handleThread(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id, err := strconv.Atoi(q.Get("id"))
	if err != nil {
		http.Error(w, "bad thread id", http.StatusBadRequest)
		return
	}
	page := 0
	if p := q.Get("page"); p != "" {
		page, err = strconv.Atoi(p)
		if err != nil || page < 0 {
			http.Error(w, "bad page", http.StatusBadRequest)
			return
		}
	}
	thread, err := f.Thread(id)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	posts, pages, err := f.PostsPage(id, page)
	if err != nil && !(page == 0 && pages == 0) {
		http.NotFound(w, r)
		return
	}
	rendered := make([]renderedPost, 0, len(posts))
	for _, p := range posts {
		shown := ""
		if !f.cfg.HideTimestamps {
			shown = f.displayTimeFor(p).Format(TimeLayout)
		}
		rendered = append(rendered, renderedPost{
			ID:     p.ID,
			Author: p.Author,
			Time:   shown,
			Body:   p.Body,
		})
	}
	data := struct {
		Thread   *Thread
		Posts    []renderedPost
		Page     int
		Pages    int
		HasPrev  bool
		HasNext  bool
		PrevPage int
		NextPage int
	}{
		Thread: thread, Posts: rendered,
		Page: page, Pages: pages,
		HasPrev: page > 0, HasNext: page < pages-1,
		PrevPage: page - 1, NextPage: page + 1,
	}
	if err := pageTemplates.ExecuteTemplate(w, "thread", data); err != nil {
		http.Error(w, "template error", http.StatusInternalServerError)
	}
}

func (f *Forum) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	name := r.FormValue("name")
	m, err := f.Register(name)
	switch {
	case errors.Is(err, ErrNameTaken):
		http.Error(w, err.Error(), http.StatusConflict)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusCreated)
	fmt.Fprintf(w, "member %q registered with id %d\n", m.Name, m.ID)
}

func (f *Forum) handleReply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	threadID, err := strconv.Atoi(r.FormValue("thread"))
	if err != nil {
		http.Error(w, "bad thread id", http.StatusBadRequest)
		return
	}
	author := r.FormValue("author")
	body := r.FormValue("body")
	post, err := f.PostNow(threadID, author, body)
	switch {
	case errors.Is(err, ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Echo the created post in the standard post markup so the poster
	// (and the offset probe) can read back the displayed timestamp.
	w.WriteHeader(http.StatusCreated)
	if f.cfg.HideTimestamps {
		fmt.Fprintf(w, `<div class="post" data-id="%d" data-author="%s"></div>`+"\n",
			post.ID, template.HTMLEscapeString(post.Author))
		return
	}
	fmt.Fprintf(w, `<div class="post" data-id="%d" data-author="%s" data-time="%s"></div>`+"\n",
		post.ID, template.HTMLEscapeString(post.Author),
		f.displayTimeFor(post).Format(TimeLayout))
}
