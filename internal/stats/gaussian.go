package stats

import (
	"errors"
	"fmt"
	"math"
)

// Gaussian is one component of a placement model: a normal density with a
// weight. In the paper's setting the x axis is the circle of the 24 time
// zones, the mean is the time zone a crowd component lives in, and sigma is
// empirically about 2.5 zones (§IV-A).
type Gaussian struct {
	// Weight is the mixing proportion of the component (1 for a single
	// Gaussian fit).
	Weight float64
	// Mean is the component centre, in time-zone axis units.
	Mean float64
	// Sigma is the standard deviation, in time-zone axis units.
	Sigma float64
}

// PDF evaluates the (non-circular) normal density at x.
func (g Gaussian) PDF(x float64) float64 {
	if g.Sigma <= 0 {
		return 0
	}
	d := (x - g.Mean) / g.Sigma
	return math.Exp(-0.5*d*d) / (g.Sigma * math.Sqrt(2*math.Pi))
}

// WrappedPDF evaluates the density wrapped on a circle of the given period,
// summing the three nearest branch contributions. For sigma well below the
// period (the paper's regime, sigma ~ 2.5 versus period 24) the truncation
// error is negligible.
func (g Gaussian) WrappedPDF(x, period float64) float64 {
	if g.Sigma <= 0 || period <= 0 {
		return 0
	}
	var s float64
	for k := -1; k <= 1; k++ {
		s += g.PDF(x + float64(k)*period)
	}
	return s
}

// Mixture is a weighted sum of Gaussian components, the model the paper
// fits to crowd placement histograms (§IV-B). Component weights should sum
// to one.
type Mixture []Gaussian

// Eval evaluates the mixture density at x on the circle of the given
// period.
func (m Mixture) Eval(x, period float64) float64 {
	var s float64
	for _, g := range m {
		s += g.Weight * g.WrappedPDF(x, period)
	}
	return s
}

// Curve samples the mixture at the integer bin centres 0..n-1 on a circle
// of period n. With unit-width bins the sampled curve approximates a
// probability distribution summing to the total mixture weight, so it is
// directly comparable with a placement histogram.
func (m Mixture) Curve(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m.Eval(float64(i), float64(n))
	}
	return out
}

// TotalWeight sums the component weights.
func (m Mixture) TotalWeight() float64 {
	var s float64
	for _, g := range m {
		s += g.Weight
	}
	return s
}

// Dominant returns the component with the largest weight. It returns an
// error for an empty mixture.
func (m Mixture) Dominant() (Gaussian, error) {
	if len(m) == 0 {
		return Gaussian{}, errors.New("stats: empty mixture")
	}
	best := 0
	for i := range m {
		if m[i].Weight > m[best].Weight {
			best = i
		}
	}
	return m[best], nil
}

// FitGaussianCircular fits a single scaled Gaussian to a histogram sampled
// at the integer bin centres 0..len(ys)-1 of a circle of period len(ys), by
// least squares. The amplitude is solved in closed form for every candidate
// (mean, sigma) pair on a fine grid, followed by a local refinement pass.
//
// The returned Gaussian has Weight equal to the fitted area (amplitude x
// sigma x sqrt(2 pi)), so that Curve reproduces the fitted curve.
func FitGaussianCircular(ys []float64) (Gaussian, error) {
	n := len(ys)
	if n < 3 {
		return Gaussian{}, fmt.Errorf("stats: need at least 3 bins, got %d", n)
	}
	period := float64(n)

	bestSSE := math.Inf(1)
	var best Gaussian
	try := func(mu, sigma float64) {
		if sigma <= 0 {
			return
		}
		// Closed-form amplitude: minimize sum (y_i - A g_i)^2 => A = <y,g>/<g,g>.
		var yg, gg float64
		for i := 0; i < n; i++ {
			g := wrappedUnitGaussian(float64(i), mu, sigma, period)
			yg += ys[i] * g
			gg += g * g
		}
		if gg == 0 {
			return
		}
		amp := yg / gg
		if amp < 0 {
			amp = 0
		}
		var sse float64
		for i := 0; i < n; i++ {
			g := amp * wrappedUnitGaussian(float64(i), mu, sigma, period)
			d := ys[i] - g
			sse += d * d
		}
		if sse < bestSSE {
			bestSSE = sse
			best = Gaussian{
				Weight: amp * sigma * math.Sqrt(2*math.Pi),
				Mean:   math.Mod(mu+period, period),
				Sigma:  sigma,
			}
		}
	}

	// Coarse grid.
	for mu := 0.0; mu < period; mu += 0.25 {
		for sigma := 0.5; sigma <= 6.0; sigma += 0.25 {
			try(mu, sigma)
		}
	}
	// Refinement around the best coarse solution.
	coarse := best
	for dmu := -0.25; dmu <= 0.25; dmu += 0.02 {
		for dsig := -0.25; dsig <= 0.25; dsig += 0.02 {
			try(coarse.Mean+dmu, coarse.Sigma+dsig)
		}
	}
	if math.IsInf(bestSSE, 1) {
		return Gaussian{}, errors.New("stats: gaussian fit failed")
	}
	return best, nil
}

// wrappedUnitGaussian is exp(-d^2 / (2 sigma^2)) with d the circular
// distance between x and mu on a circle of the given period.
func wrappedUnitGaussian(x, mu, sigma, period float64) float64 {
	d := math.Mod(math.Abs(x-mu), period)
	if d > period/2 {
		d = period - d
	}
	z := d / sigma
	return math.Exp(-0.5 * z * z)
}

// CircularDiff returns the signed difference a-b wrapped to
// (-period/2, period/2].
func CircularDiff(a, b, period float64) float64 {
	d := math.Mod(a-b, period)
	if d <= -period/2 {
		d += period
	}
	if d > period/2 {
		d -= period
	}
	return d
}
