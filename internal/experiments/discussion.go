package experiments

import (
	"fmt"
	"math"
	"net/http/httptest"
	"time"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/crawler"
	"darkcrowd/internal/forum"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/tz"
)

// The §VII Discussion experiments. The paper discusses three
// countermeasures a forum or its crowd could deploy; these experiments
// quantify each claim.

// DiscussionDelay tests the claim that randomly delaying displayed
// timestamps only defeats the methodology when the delay is "of at least a
// few hours": a known German crowd is scraped from forums with increasing
// timestamp jitter and the placement error is tracked.
func (l *Lab) DiscussionDelay() (*Result, error) {
	gen, err := l.Generic()
	if err != nil {
		return nil, err
	}
	de, err := tz.ByCode("de")
	if err != nil {
		return nil, err
	}
	crowd, err := synth.GenerateCrowd(l.cfg.Seed+701, synth.CrowdConfig{
		Name:   "delay-crowd",
		Groups: []synth.Group{{Region: de, Users: 80, PostsPerUser: 100}},
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		Title: "§VII — random timestamp delay as a countermeasure",
		Paper: "\"to be effective, the random delay must be of at least a few hours\"",
	}
	type sweep struct {
		jitter time.Duration
		err    float64
		sigma  float64
	}
	var rows []sweep
	for _, jitter := range []time.Duration{0, time.Hour, 3 * time.Hour, 6 * time.Hour, 12 * time.Hour} {
		f := forum.New(forum.Config{
			Name:            "delay-forum",
			TimestampJitter: jitter,
			PageSize:        50,
		})
		if err := f.ImportCrowd(crowd, forum.ImportOptions{}); err != nil {
			return nil, err
		}
		srv := httptest.NewServer(f.Handler())
		c := &crawler.Crawler{BaseURL: srv.URL}
		scraped, err := c.Scrape("delayed")
		srv.Close()
		if err != nil {
			return nil, err
		}
		profiles, err := profile.BuildUserProfiles(scraped.Dataset, l.buildOptions())
		if err != nil {
			return nil, err
		}
		placement, err := geoloc.PlaceUsers(profiles, gen.Generic, l.placeOptions())
		if err != nil {
			return nil, err
		}
		fit, err := geoloc.FitSingle(placement)
		if err != nil {
			return nil, err
		}
		// Placement error: distance of the fitted centre from the truth
		// (German crowds legitimately drift up to +1 with DST).
		errZones := math.Abs(fit.PeakOffset - 1.5)
		rows = append(rows, sweep{jitter, errZones, fit.Gaussian.Sigma})
		res.Lines = append(res.Lines, fmt.Sprintf(
			"  jitter +/-%-4s -> fitted centre UTC%+.2f (error %.2f zones), sigma %.2f",
			jitter, fit.PeakOffset, errZones, fit.Gaussian.Sigma))
	}
	// Claim check: small jitter (<= 1h) leaves the placement essentially
	// intact; large jitter (>= 6h) visibly degrades it (centre error or
	// blow-up of the fitted spread).
	small := rows[1]
	large := rows[4]
	smallIntact := small.err < 1.0
	largeDegraded := large.sigma > 2*rows[0].sigma || large.err > 1.0
	res.Measured = fmt.Sprintf("1h jitter: %.2f zones error; 12h jitter: %.2f zones error, sigma %.2f (x%.1f)",
		small.err, large.err, large.sigma, large.sigma/rows[0].sigma)
	res.Pass = smallIntact && largeDegraded
	return res, nil
}

// DiscussionAdversary tests the coordinated-crowd scenario: "What if the
// crowd coordinates and users deliberately post with a profile of a
// different region?" The paper assumes this away as impractical; the
// experiment confirms that *if* a crowd managed it, the methodology would
// place them at the pretended zone — the attack model matters.
func (l *Lab) DiscussionAdversary() (*Result, error) {
	gen, err := l.Generic()
	if err != nil {
		return nil, err
	}
	de, err := tz.ByCode("de")
	if err != nil {
		return nil, err
	}
	res := &Result{
		Title: "§VII — a coordinated crowd posting with a shifted profile",
		Paper: "\"coordinating the behavior of hundreds of anonymous users can be very hard\" — but if done, the method follows the behaviour, not the truth",
	}
	// A German crowd (UTC+1) shifting every posting 8 hours later in the
	// local day. Posting later in the day is what a crowd 8 zones further
	// *west* looks like, so the crowd masquerades as UTC-7 (roughly the
	// US Mountain zone).
	pretend := 8.0
	crowd, err := synth.GenerateCrowd(l.cfg.Seed+702, synth.CrowdConfig{
		Name: "adversary-crowd",
		Groups: []synth.Group{{
			Region:          de,
			Users:           80,
			PostsPerUser:    100,
			DeliberateShift: pretend,
		}},
	})
	if err != nil {
		return nil, err
	}
	profiles, err := profile.BuildUserProfiles(crowd, l.buildOptions())
	if err != nil {
		return nil, err
	}
	placement, err := geoloc.PlaceUsers(profiles, gen.Generic, l.placeOptions())
	if err != nil {
		return nil, err
	}
	fit, err := geoloc.FitSingle(placement)
	if err != nil {
		return nil, err
	}
	res.Lines = append(res.Lines, placementChart(placement.Histogram)...)
	res.Lines = append(res.Lines, fmt.Sprintf(
		"  true region: Germany (UTC+1); coordinated shift: +%.0fh; fitted centre: UTC%+.2f",
		pretend, fit.PeakOffset))
	// The crowd should appear near UTC-7 (+1 true offset, -8 apparent
	// displacement), i.e. the deception works under perfect coordination.
	wantApparent := 1.5 - pretend // +0.5 for the DST-season average
	errZones := math.Abs(fit.PeakOffset - wantApparent)
	res.Measured = fmt.Sprintf("crowd placed at UTC%+.2f (apparent target UTC%+.1f)", fit.PeakOffset, wantApparent)
	res.Pass = errZones <= 1.6
	return res, nil
}

// DiscussionMonitor tests the no-timestamps countermeasure: the forum
// hides every timestamp, and the observer falls back to monitoring —
// sweeping the forum on an interval and timestamping new posts with their
// own clock (§VII: "it is enough to monitor the forum, see when posts are
// made and timestamp them ourselves").
func (l *Lab) DiscussionMonitor() (*Result, error) {
	gen, err := l.Generic()
	if err != nil {
		return nil, err
	}
	it, err := tz.ByCode("it")
	if err != nil {
		return nil, err
	}
	// Heavy posters: §VII notes "one might need to monitor a sufficiently
	// large number of days ... to collect 30 post per user or more"; with
	// a ~3-month observation window, heavy users provide that.
	crowd, err := synth.GenerateCrowd(l.cfg.Seed+703, synth.CrowdConfig{
		Name:   "monitor-crowd",
		Groups: []synth.Group{{Region: it, Users: 30, PostsPerUser: 700}},
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Title: "§VII — forum without timestamps, defeated by monitoring",
		Paper: "\"it is enough to monitor the forum, see when posts are made and timestamp them ourselves\"",
	}

	// The forum hides timestamps; Scrape must refuse.
	f := forum.New(forum.Config{Name: "hidden-times", HideTimestamps: true, PageSize: 200})
	for _, u := range crowd.Users() {
		if _, err := f.Register(u); err != nil {
			return nil, err
		}
	}
	board, err := f.AddBoard("Main", "the only discussion board")
	if err != nil {
		return nil, err
	}
	threads := make([]int, 0, 2)
	for i := 0; i < 2; i++ {
		th, err := f.NewThread(board.ID, fmt.Sprintf("discussion #%d", i+1))
		if err != nil {
			return nil, err
		}
		threads = append(threads, th.ID)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	c := &crawler.Crawler{BaseURL: srv.URL}
	if _, err := c.Scrape("refused"); err == nil {
		return nil, fmt.Errorf("scrape of a timestamp-less forum unexpectedly succeeded")
	}
	res.Lines = append(res.Lines, "  direct scrape refused: forum renders no timestamps")

	// Monitor mode: replay the crowd's posts into the forum in hourly
	// batches of simulated time, sweeping after each batch. The monitor's
	// own clock supplies the timestamps.
	replay := crowd.Clone()
	replay.SortByTime()
	var simNow time.Time
	monitor := crawler.NewMonitor(c, "monitored")
	monitor.Clock = func() time.Time { return simNow }

	// Baseline sweep over the pre-existing (empty) forum.
	first, last, ok := replay.TimeRange()
	if !ok {
		return nil, fmt.Errorf("empty replay crowd")
	}
	simNow = first
	if _, err := monitor.Poll(); err != nil {
		return nil, err
	}

	// Hourly sweeps over a ~2-month observation window; sweeping mid-hour
	// keeps each observation in the same hour bucket as the true posting
	// time, so hour-of-day profiles survive intact.
	windowEnd := first.AddDate(0, 2, 0)
	if windowEnd.After(last) {
		windowEnd = last
	}
	idx := 0
	observed := 0
	for t := first; t.Before(windowEnd); t = t.Add(time.Hour) {
		for idx < len(replay.Posts) && replay.Posts[idx].Time.Before(t.Add(time.Hour)) {
			p := replay.Posts[idx]
			if !p.Time.Before(t) {
				if _, err := f.PostAt(threads[idx%len(threads)], p.UserID, "replayed", p.Time); err != nil {
					return nil, err
				}
			}
			idx++
		}
		simNow = t.Add(30 * time.Minute)
		n, err := monitor.Poll()
		if err != nil {
			return nil, err
		}
		observed += n
	}
	res.Lines = append(res.Lines, fmt.Sprintf(
		"  monitored %d hourly sweeps over ~2 months, observed %d posts", monitor.Polls(), observed))

	// Geolocate from the monitored dataset (30-post threshold as usual —
	// heavy users clear it within the window).
	profiles, err := profile.BuildUserProfiles(monitor.Dataset(), l.buildOptions())
	if err != nil {
		return nil, err
	}
	placement, err := geoloc.PlaceUsers(profiles, gen.Generic, l.placeOptions())
	if err != nil {
		return nil, err
	}
	fit, err := geoloc.FitSingle(placement)
	if err != nil {
		return nil, err
	}
	res.Lines = append(res.Lines, fmt.Sprintf(
		"  %d users profiled from observation times alone; fitted centre UTC%+.2f (truth: Italy, UTC+1/+2)",
		len(profiles), fit.PeakOffset))
	res.Measured = fmt.Sprintf("monitored crowd placed at UTC%+.2f with %d users", fit.PeakOffset, len(profiles))
	res.Pass = len(profiles) >= 20 && fit.PeakOffset > 0.2 && fit.PeakOffset < 3.0
	return res, nil
}
