package main

// benchgen -bench-ingest: measure the ingest data path — sequential CSV
// parse, sharded parallel parse, binary snapshot encode/decode, and the
// two ends of the ingest→profile pipeline (sequential read + columnar
// build vs. sharded read + fused build) — and write BENCH_ingest.json.
//
//	benchgen -bench-ingest                         # run suite, write BENCH_ingest.json
//	benchgen -bench-ingest -ingest-workers 8       # shard the parser differently
//	benchgen -bench-ingest -check                  # regression + speedup gates (CI)
//
// With -check the suite enforces two hard ratios on top of the usual 2x
// regression gate: snapshot_load must be at least 5x faster than
// csv_read (the point of the snapshot format is skipping the parse), and
// ingest_fused must beat ingest_seq outright (the point of fusing the
// profile build into the parse).

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"darkcrowd/internal/bench"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
)

// ingestGates are the hard cross-workload speedup floors -check enforces.
var ingestGates = map[string]float64{
	"snapshot_load_speedup_vs_csv_read": 5,
	"ingest_fused_speedup_vs_seq":       1,
}

// runIngestBench measures the ingest workloads and writes the JSON report
// to outPath. A non-empty checkPath gates on the committed report plus
// the hard speedup floors in ingestGates.
func runIngestBench(scale int, seed int64, workers int, outPath, checkPath string) int {
	ds, err := synth.TwitterDataset(seed, synth.TwitterOptions{Scale: scale})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: build dataset: %v\n", err)
		return 1
	}
	var csvBuf bytes.Buffer
	if err := ds.WriteCSV(&csvBuf); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: serialize dataset: %v\n", err)
		return 1
	}
	csvBytes := csvBuf.Bytes()
	var snapBuf bytes.Buffer
	if err := ds.WriteSnapshot(&snapBuf); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: serialize snapshot: %v\n", err)
		return 1
	}
	snapBytes := snapBuf.Bytes()

	workloads := []struct {
		name string
		fn   func(b *testing.B)
	}{
		// csv_read is the production sequential path: no row-count hint —
		// a real ingest learns the row count by parsing, exactly like
		// pipeline.Geolocate's CSV fallback.
		{"csv_read", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := trace.ReadCSV("bench", bytes.NewReader(csvBytes)); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"csv_read_parallel", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := trace.ReadCSVParallel("bench", csvBytes, trace.ReadCSVOptions{}, workers); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"snapshot_write", func(b *testing.B) {
			var buf bytes.Buffer
			buf.Grow(len(snapBytes))
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := ds.WriteSnapshot(&buf); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"snapshot_load", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := trace.ReadSnapshotBytes(snapBytes); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ingest_seq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got, err := trace.ReadCSV("bench", bytes.NewReader(csvBytes))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := profile.BuildUserProfiles(got, profile.BuildOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ingest_fused", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := trace.IngestCSV("bench", csvBytes, trace.IngestOptions{
					Workers:      workers,
					CollectCells: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := profile.BuildUserProfilesFused(res.Cells, profile.BuildOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	report := bench.NewReport("benchgen -bench-ingest", scale, seed)
	report.IngestWorkers = workers
	for _, w := range workloads {
		report.RunMinOf(os.Stdout, w.name, 3, w.fn)
	}
	report.Ratios = map[string]float64{
		"snapshot_load_speedup_vs_csv_read": report.Ratio("csv_read", "snapshot_load"),
		"parallel_read_speedup_vs_csv_read": report.Ratio("csv_read", "csv_read_parallel"),
		"ingest_fused_speedup_vs_seq":       report.Ratio("ingest_seq", "ingest_fused"),
	}
	for name, val := range report.Ratios {
		fmt.Printf("%-36s %6.2fx\n", name, val)
	}

	if checkPath != "" {
		if err := bench.CheckRegression(os.Stdout, checkPath, report.Workloads, 2); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: -check: %v\n", err)
			return 1
		}
		if err := bench.CheckFloors(os.Stderr, report.Ratios, ingestGates); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: -check: %v\n", err)
			return 1
		}
		fmt.Println("check passed: ingest speedup gates hold")
	}

	if err := report.WriteFile(outPath); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", outPath)
	return 0
}
