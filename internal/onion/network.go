package onion

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"darkcrowd/internal/obs"
)

// inboxSize bounds each node's cell queue. Links apply backpressure when a
// queue fills (blocking send), like TCP would.
const inboxSize = 256

// node is anything attached to the network fabric that can receive cells.
type node interface {
	// ID returns the node's unique identifier.
	ID() string
	// deliver enqueues a cell for the node; it blocks when the node's
	// inbox is full and drops the cell when the node has stopped.
	deliver(c Cell)
}

// Network is the in-process onion-routing fabric: a roster of relays, a
// directory authority, and the message router standing in for the TCP
// links between nodes.
type Network struct {
	directory *Directory

	mu        sync.RWMutex
	nodes     map[string]node
	externals map[string]func(net.Conn)
	closed    bool

	circSeq atomic.Uint32

	rngMu sync.Mutex
	rng   *rand.Rand

	ctrlTimeout time.Duration

	// faults, when set, vets every routed cell (deterministic
	// drop/delay/reset injection; see FaultInjector).
	faults *FaultInjector

	// Cell counters, resolved once by SetObserver so the routing hot path
	// never touches the registry; all nil (no-op) when unobserved.
	cellsSent, cellsDropped, cellsReset, cellsDelayed, cellsUnroutable *obs.Counter
}

// NewNetwork creates an empty network. The seed drives relay selection so
// that experiments are reproducible.
func NewNetwork(seed int64) *Network {
	return &Network{
		directory:   NewDirectory(),
		nodes:       make(map[string]node),
		externals:   make(map[string]func(net.Conn)),
		rng:         rand.New(rand.NewSource(seed)),
		ctrlTimeout: controlTimeout,
	}
}

// Directory exposes the network's directory authority.
func (n *Network) Directory() *Directory { return n.directory }

// SetControlTimeout overrides the circuit-level round-trip timeout
// (default 10s); tests exercising failures shorten it.
func (n *Network) SetControlTimeout(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if d > 0 {
		n.ctrlTimeout = d
	}
}

// controlDeadline returns the configured circuit round-trip timeout.
func (n *Network) controlDeadline() time.Duration {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.ctrlTimeout
}

// AddBridge spins up a relay that is NOT listed in the main directory —
// §II-A: "Some Tor relays - bridges - are not listed in the main Tor
// directory, to make it more difficult for ISPs or other entities to
// identify or block access to Tor". Clients configured with the bridge ID
// use it as their entry hop.
func (n *Network) AddBridge(id string) (*Relay, error) {
	r, err := newRelay(n, id)
	if err != nil {
		return nil, err
	}
	if err := n.attach(r); err != nil {
		return nil, err
	}
	r.start()
	return r, nil
}

// StopRelay stops a relay, removes it from the directory and detaches it
// from the fabric; circuits through it go dark, as when a real relay
// drops off the network.
func (n *Network) StopRelay(id string) error {
	n.mu.Lock()
	nd, ok := n.nodes[id]
	if ok {
		delete(n.nodes, id)
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("onion: no node %q", id)
	}
	n.directory.RemoveRelay(id)
	if s, ok := nd.(interface{ stop() }); ok {
		s.stop()
	}
	return nil
}

// nextCirc allocates a network-unique circuit ID.
func (n *Network) nextCirc() uint32 {
	return n.circSeq.Add(1)
}

// attach registers a node on the fabric.
func (n *Network) attach(nd node) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return errors.New("onion: network is closed")
	}
	if _, ok := n.nodes[nd.ID()]; ok {
		return fmt.Errorf("onion: node ID %q already attached", nd.ID())
	}
	n.nodes[nd.ID()] = nd
	return nil
}

// detach removes a node from the fabric.
func (n *Network) detach(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, id)
}

// SetFaultInjector installs (or, with nil, removes) a fault plan vetting
// every routed cell. Install before traffic starts for a reproducible
// decision sequence.
func (n *Network) SetFaultInjector(fi *FaultInjector) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.faults = fi
}

// SetObserver installs (or, with nil, removes) the fabric's cell counters:
// onion.cells_sent, onion.cells_dropped, onion.cells_reset,
// onion.cells_delayed and onion.cells_unroutable. The counters are
// resolved once here, so counting on the routing hot path is a single
// atomic add — and a no-op nil pointer when unobserved. Observation only:
// routing decisions are identical with or without it.
func (n *Network) SetObserver(o *obs.Observer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cellsSent = o.Counter("onion.cells_sent")
	n.cellsDropped = o.Counter("onion.cells_dropped")
	n.cellsReset = o.Counter("onion.cells_reset")
	n.cellsDelayed = o.Counter("onion.cells_delayed")
	n.cellsUnroutable = o.Counter("onion.cells_unroutable")
}

// send routes a cell to the destination node. Unknown destinations are
// dropped, as a failed TCP link would drop traffic.
func (n *Network) send(to string, c Cell) {
	n.mu.RLock()
	nd, ok := n.nodes[to]
	fi := n.faults
	sent, dropped, reset := n.cellsSent, n.cellsDropped, n.cellsReset
	delayed, unroutable := n.cellsDelayed, n.cellsUnroutable
	n.mu.RUnlock()
	if !ok {
		unroutable.Inc()
		return
	}
	if fi != nil {
		switch action, delay := fi.decide(c); action {
		case faultDrop:
			dropped.Inc()
			return
		case faultReset:
			// The link resets: the destination sees the circuit die
			// instead of the cell.
			reset.Inc()
			nd.deliver(Cell{Circ: c.Circ, Cmd: CmdDestroy, From: c.From})
			return
		case faultDelay:
			delayed.Inc()
			time.Sleep(delay)
		}
	}
	sent.Inc()
	nd.deliver(c)
}

// AddRelays spins up count relays named relay-0, relay-1, ... and registers
// them with the directory. It returns their IDs.
func (n *Network) AddRelays(count int) ([]string, error) {
	ids := make([]string, 0, count)
	for i := 0; i < count; i++ {
		id := fmt.Sprintf("relay-%d", i)
		if _, err := n.AddRelay(id); err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

// AddRelay spins up one named relay.
func (n *Network) AddRelay(id string) (*Relay, error) {
	r, err := newRelay(n, id)
	if err != nil {
		return nil, err
	}
	if err := n.attach(r); err != nil {
		return nil, err
	}
	n.directory.AddRelay(id)
	r.start()
	return r, nil
}

// RegisterExternal makes a non-onion destination reachable through exit
// relays (the "standard websites" of §II-A). The handler receives the
// server end of each connection and is responsible for closing it.
func (n *Network) RegisterExternal(host string, handler func(net.Conn)) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.externals[host]; ok {
		return fmt.Errorf("onion: external host %q already registered", host)
	}
	n.externals[host] = handler
	return nil
}

// externalHandler looks up an external destination.
func (n *Network) externalHandler(host string) (func(net.Conn), bool) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	h, ok := n.externals[host]
	return h, ok
}

// PickRelays selects k distinct relays uniformly at random, excluding the
// given IDs — the client's path selection.
func (n *Network) PickRelays(k int, exclude ...string) ([]string, error) {
	all := n.directory.Relays()
	skip := make(map[string]bool, len(exclude))
	for _, e := range exclude {
		skip[e] = true
	}
	var candidates []string
	for _, id := range all {
		if !skip[id] {
			candidates = append(candidates, id)
		}
	}
	if len(candidates) < k {
		return nil, fmt.Errorf("onion: need %d relays, only %d available", k, len(candidates))
	}
	n.rngMu.Lock()
	n.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	n.rngMu.Unlock()
	picked := candidates[:k]
	sort.Strings(picked) // deterministic presentation; order on path is caller's
	return append([]string(nil), picked...), nil
}

// Close stops every attached node and refuses new attachments.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	nodes := make([]node, 0, len(n.nodes))
	for _, nd := range n.nodes {
		nodes = append(nodes, nd)
	}
	n.mu.Unlock()
	for _, nd := range nodes {
		if s, ok := nd.(interface{ stop() }); ok {
			s.stop()
		}
	}
}
