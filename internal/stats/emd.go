package stats

import (
	"fmt"
	"math"
	"sort"
)

// The Earth Mover's Distance (EMD, Wasserstein-1) between one-dimensional
// histograms. The paper uses the EMD in three places:
//
//   - to place an anonymous user on the time zone whose reference profile
//     is "less distant" from the user's activity profile (§IV-A);
//   - to filter out flat (bot-like) profiles, by comparing each user's
//     profile against the artificial uniform 1/24 profile (§IV-C);
//   - to tell the northern from the southern hemisphere, by comparing
//     seasonal profiles under a ±1 hour shift (§V-F).
//
// Activity profiles live on the 24-hour circle, so the natural ground
// distance is circular; the package provides both the linear variant
// (useful as an ablation baseline) and the circular one.

// EMDLinear computes the Wasserstein-1 distance between two histograms on
// the line, with unit spacing between adjacent bins. Inputs must be the
// same length and have (approximately) equal total mass; they do not need
// to be normalized. The classical result reduces the 1-D optimal transport
// to the L1 distance between cumulative sums.
func EMDLinear(p, q []float64) (float64, error) {
	if err := checkEMDInputs(p, q); err != nil {
		return 0, err
	}
	var cum, total float64
	for i := range p {
		cum += p[i] - q[i]
		total += math.Abs(cum)
	}
	return total, nil
}

// EMDCircular computes the Wasserstein-1 distance between two histograms on
// a circle with unit spacing between adjacent bins, using the
// Rabin-Werman reduction: the circular EMD equals
//
//	min_mu sum_i |F(i) - G(i) - mu|
//
// where F and G are the cumulative sums of the two histograms, and the
// minimizing mu is the median of the differences F(i) - G(i).
func EMDCircular(p, q []float64) (float64, error) {
	return EMDCircularScratch(p, q, nil)
}

// EMDCircularScratch is EMDCircular with a caller-owned scratch buffer. The
// computation needs 2*len(p) floats of workspace; a nil or short scratch is
// grown transparently. Reusing one buffer per worker removes the two
// per-call allocations, which dominate when a placement run makes millions
// of EMD calls (24 per user). The arithmetic — and therefore the result —
// is identical to EMDCircular's.
func EMDCircularScratch(p, q, scratch []float64) (float64, error) {
	if err := checkEMDInputs(p, q); err != nil {
		return 0, err
	}
	n := len(p)
	if cap(scratch) < 2*n {
		scratch = make([]float64, 2*n)
	}
	diffs := scratch[:n]
	var cum float64
	for i := 0; i < n; i++ {
		cum += p[i] - q[i]
		diffs[i] = cum
	}
	mu := medianScratch(diffs, scratch[n:2*n])
	var total float64
	for _, d := range diffs {
		total += math.Abs(d - mu)
	}
	return total, nil
}

func checkEMDInputs(p, q []float64) error {
	if len(p) != len(q) {
		return fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(p), len(q))
	}
	if len(p) == 0 {
		return ErrEmptyInput
	}
	sp, sq := Sum(p), Sum(q)
	if math.Abs(sp-sq) > 1e-6*math.Max(1, math.Max(math.Abs(sp), math.Abs(sq))) {
		return fmt.Errorf("stats: EMD inputs have different total mass (%g vs %g)", sp, sq)
	}
	for i := range p {
		if p[i] < 0 || q[i] < 0 {
			return fmt.Errorf("stats: negative mass at index %d", i)
		}
		if math.IsNaN(p[i]) || math.IsNaN(q[i]) {
			return fmt.Errorf("stats: NaN mass at index %d", i)
		}
		if math.IsInf(p[i], 0) || math.IsInf(q[i], 0) {
			return fmt.Errorf("stats: infinite mass at index %d", i)
		}
	}
	return nil
}

func median(xs []float64) float64 {
	return medianScratch(xs, make([]float64, len(xs)))
}

// medianScratch computes the median without touching xs, sorting a copy
// held in tmp (which must have at least len(xs) capacity).
func medianScratch(xs, tmp []float64) float64 {
	tmp = tmp[:len(xs)]
	copy(tmp, xs)
	sort.Float64s(tmp)
	n := len(tmp)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}
