// Package onion implements a miniature in-process onion-routing network
// modelled on Tor as described in §II of the paper: a directory of relays,
// three-hop circuits with per-hop negotiated keys and layered encryption,
// and the full hidden-service machinery — service descriptors published to
// hidden-service directories, introduction points, and rendezvous points —
// so that a client and a hidden service communicate without either end
// learning the other's identity.
//
// The network carries real framed traffic with real cryptography (X25519
// key agreement, AES-CTR layer encryption, HMAC-SHA256 integrity,
// Ed25519-signed service descriptors); only the transport is simulated
// (in-process message passing instead of TCP links). The forum substrate
// (internal/forum) is hosted as a hidden service on this network and the
// scraper (internal/crawler) reaches it through a circuit, reproducing the
// paper's collection path end to end.
//
// Stream payloads between a client and a hidden service are additionally
// protected end to end: the client's ephemeral key travels in INTRODUCE1,
// the service's in RENDEZVOUS1/2, and the rendezvous point splices only
// ciphertext (see TestRendezvousPointSeesOnlyCiphertext).
//
// Deliberate simplifications, documented here and in DESIGN.md: directory
// and descriptor fetches are direct lookups rather than being tunnelled
// through circuits; there is no flow control or congestion handling; and
// cells are variable-length rather than fixed 512-byte.
package onion

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// macSize is the size of the truncated HMAC-SHA256 tag on each layer.
const macSize = 16

// keyPair is an ephemeral X25519 key pair used in circuit handshakes.
type keyPair struct {
	priv *ecdh.PrivateKey
	pub  []byte
}

func newKeyPair() (*keyPair, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("onion: generate X25519 key: %w", err)
	}
	return &keyPair{priv: priv, pub: priv.PublicKey().Bytes()}, nil
}

// hopKeys is the per-hop key material derived from the handshake: separate
// encryption and MAC keys for the forward (client-to-exit) and backward
// directions.
type hopKeys struct {
	fwdEnc, fwdMAC [32]byte
	bwdEnc, bwdMAC [32]byte
}

// deriveHopKeys computes the shared secret between a local private key and
// a remote public key and expands it into the four directional keys.
func deriveHopKeys(priv *ecdh.PrivateKey, remotePub []byte) (*hopKeys, error) {
	pub, err := ecdh.X25519().NewPublicKey(remotePub)
	if err != nil {
		return nil, fmt.Errorf("onion: parse peer public key: %w", err)
	}
	secret, err := priv.ECDH(pub)
	if err != nil {
		return nil, fmt.Errorf("onion: X25519 agreement: %w", err)
	}
	k := &hopKeys{}
	k.fwdEnc = expandKey(secret, "fwd-enc")
	k.fwdMAC = expandKey(secret, "fwd-mac")
	k.bwdEnc = expandKey(secret, "bwd-enc")
	k.bwdMAC = expandKey(secret, "bwd-mac")
	return k, nil
}

func expandKey(secret []byte, label string) [32]byte {
	h := sha256.New()
	h.Write(secret)
	h.Write([]byte(label))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// sealLayer encrypts plaintext with AES-256-CTR under a fresh IV and
// prepends a truncated HMAC-SHA256 tag: output is tag || iv || ciphertext.
func sealLayer(encKey, macKey [32]byte, plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		return nil, fmt.Errorf("onion: new cipher: %w", err)
	}
	iv := make([]byte, aes.BlockSize)
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("onion: read IV: %w", err)
	}
	ct := make([]byte, len(plaintext))
	cipher.NewCTR(block, iv).XORKeyStream(ct, plaintext)
	body := make([]byte, 0, len(iv)+len(ct))
	body = append(body, iv...)
	body = append(body, ct...)
	mac := hmac.New(sha256.New, macKey[:])
	mac.Write(body)
	tag := mac.Sum(nil)[:macSize]
	return append(tag, body...), nil
}

// errBadLayer is returned when a layer fails authentication — which is also
// how an endpoint discovers a cell was not meant for it.
var errBadLayer = errors.New("onion: layer authentication failed")

// openLayer verifies and decrypts a layer produced by sealLayer.
func openLayer(encKey, macKey [32]byte, sealed []byte) ([]byte, error) {
	if len(sealed) < macSize+aes.BlockSize {
		return nil, fmt.Errorf("onion: sealed layer too short (%d bytes)", len(sealed))
	}
	tag, body := sealed[:macSize], sealed[macSize:]
	mac := hmac.New(sha256.New, macKey[:])
	mac.Write(body)
	want := mac.Sum(nil)[:macSize]
	if !hmac.Equal(tag, want) {
		return nil, errBadLayer
	}
	iv, ct := body[:aes.BlockSize], body[aes.BlockSize:]
	block, err := aes.NewCipher(encKey[:])
	if err != nil {
		return nil, fmt.Errorf("onion: new cipher: %w", err)
	}
	pt := make([]byte, len(ct))
	cipher.NewCTR(block, iv).XORKeyStream(pt, ct)
	return pt, nil
}

// newCookie returns a 16-byte random rendezvous cookie.
func newCookie() ([]byte, error) {
	c := make([]byte, 16)
	if _, err := io.ReadFull(rand.Reader, c); err != nil {
		return nil, fmt.Errorf("onion: generate cookie: %w", err)
	}
	return c, nil
}
