package forum

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"darkcrowd/internal/synth"
	"darkcrowd/internal/tz"
)

func fixedClock(t time.Time) func() time.Time {
	return func() time.Time { return t }
}

var testInstant = time.Date(2017, time.June, 15, 12, 30, 45, 0, time.UTC)

func newTestForum() *Forum {
	return New(Config{
		Name:         "Test Forum",
		ServerOffset: 3 * time.Hour,
		PageSize:     5,
		Clock:        fixedClock(testInstant),
	})
}

func TestNewForumHasWelcomeThread(t *testing.T) {
	t.Parallel()
	f := newTestForum()
	th, err := f.Thread(f.WelcomeThreadID())
	if err != nil {
		t.Fatal(err)
	}
	if th.Title != WelcomeThreadTitle {
		t.Errorf("welcome thread title %q", th.Title)
	}
	boards := f.Boards()
	if len(boards) != 1 || boards[0].Name != "Reception" {
		t.Errorf("boards = %v", boards)
	}
}

// TestNewNeverPanicsAndNumbersFromBuiltins: construction is infallible —
// no config, however degenerate, can panic it — and the built-in
// Reception board and Welcome thread occupy ID 1, with later additions
// numbered after them exactly as when construction went through the
// locked AddBoard/NewThread path.
func TestNewNeverPanicsAndNumbersFromBuiltins(t *testing.T) {
	t.Parallel()
	for _, cfg := range []Config{{}, {PageSize: -3}, {Name: "", FailEvery: -1}} {
		f := New(cfg) // must not panic
		if f.WelcomeThreadID() != 1 {
			t.Errorf("welcome thread ID = %d, want 1", f.WelcomeThreadID())
		}
	}
	f := newTestForum()
	if got := f.Boards()[0].ID; got != 1 {
		t.Errorf("Reception board ID = %d, want 1", got)
	}
	b, err := f.AddBoard("Market", "goods")
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != 2 {
		t.Errorf("first added board ID = %d, want 2", b.ID)
	}
	th, err := f.NewThread(b.ID, "opening")
	if err != nil {
		t.Fatal(err)
	}
	if th.ID != 2 {
		t.Errorf("first added thread ID = %d, want 2", th.ID)
	}
}

func TestRegister(t *testing.T) {
	t.Parallel()
	f := newTestForum()
	m, err := f.Register("alice")
	if err != nil {
		t.Fatal(err)
	}
	if m.ID == 0 || m.Name != "alice" {
		t.Errorf("member = %+v", m)
	}
	if _, err := f.Register("alice"); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := f.Register("  "); err == nil {
		t.Error("blank name accepted")
	}
	got, err := f.MemberByName("alice")
	if err != nil || got.ID != m.ID {
		t.Errorf("MemberByName: %+v, %v", got, err)
	}
	if _, err := f.MemberByName("nobody"); err == nil {
		t.Error("missing member lookup should fail")
	}
	if f.NumMembers() != 1 {
		t.Errorf("NumMembers = %d", f.NumMembers())
	}
}

func TestPosting(t *testing.T) {
	t.Parallel()
	f := newTestForum()
	if _, err := f.Register("bob"); err != nil {
		t.Fatal(err)
	}
	p, err := f.PostNow(f.WelcomeThreadID(), "bob", "hello")
	if err != nil {
		t.Fatal(err)
	}
	if !p.At.Equal(testInstant) {
		t.Errorf("post at %v", p.At)
	}
	// Errors.
	if _, err := f.PostNow(999, "bob", "x"); err == nil {
		t.Error("post to missing thread accepted")
	}
	if _, err := f.PostNow(f.WelcomeThreadID(), "ghost", "x"); err == nil {
		t.Error("post by unregistered member accepted")
	}
	if _, err := f.PostNow(f.WelcomeThreadID(), "bob", "  "); err == nil {
		t.Error("empty body accepted")
	}
	if f.NumPosts() != 1 {
		t.Errorf("NumPosts = %d", f.NumPosts())
	}
}

func TestPostOrderingAndPagination(t *testing.T) {
	t.Parallel()
	f := newTestForum()
	if _, err := f.Register("carol"); err != nil {
		t.Fatal(err)
	}
	th := f.WelcomeThreadID()
	// Insert 12 posts out of order.
	for i := 11; i >= 0; i-- {
		at := testInstant.Add(time.Duration(i) * time.Minute)
		if _, err := f.PostAt(th, "carol", "post", at); err != nil {
			t.Fatal(err)
		}
	}
	posts, pages, err := f.PostsPage(th, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pages != 3 { // 12 posts, page size 5
		t.Errorf("pages = %d, want 3", pages)
	}
	if len(posts) != 5 {
		t.Errorf("page 0 has %d posts", len(posts))
	}
	for i := 1; i < len(posts); i++ {
		if posts[i].At.Before(posts[i-1].At) {
			t.Error("posts not chronological")
		}
	}
	last, _, err := f.PostsPage(th, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(last) != 2 {
		t.Errorf("last page has %d posts", len(last))
	}
	if _, _, err := f.PostsPage(th, 3); err == nil {
		t.Error("page out of range accepted")
	}
	if _, _, err := f.PostsPage(999, 0); err == nil {
		t.Error("missing thread accepted")
	}
}

func TestDisplayTimeOffset(t *testing.T) {
	t.Parallel()
	f := newTestForum()
	shown := f.DisplayTime(testInstant)
	want := testInstant.Add(3 * time.Hour)
	if !shown.Equal(want) {
		t.Errorf("DisplayTime = %v, want %v", shown, want)
	}
	parsed, err := ParseDisplayedTime(shown.Format(TimeLayout))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Hour() != want.Hour() || parsed.Minute() != want.Minute() {
		t.Errorf("parsed = %v", parsed)
	}
	if _, err := ParseDisplayedTime("not a time"); err == nil {
		t.Error("bad time accepted")
	}
}

func TestImportCrowd(t *testing.T) {
	t.Parallel()
	f := newTestForum()
	region, err := tz.ByCode("it")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.GenerateCrowd(42, synth.CrowdConfig{
		Name:   "import-test",
		Groups: []synth.Group{{Region: region, Users: 10, PostsPerUser: 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ImportCrowd(ds, ImportOptions{}); err != nil {
		t.Fatal(err)
	}
	if f.NumMembers() != 10 {
		t.Errorf("members = %d, want 10", f.NumMembers())
	}
	if f.NumPosts() != ds.NumPosts() {
		t.Errorf("posts = %d, want %d", f.NumPosts(), ds.NumPosts())
	}
	// Imported timestamps preserved: spot-check one member's first post.
	boards := f.Boards()
	if len(boards) != 4 { // Reception + 3 imported
		t.Errorf("boards = %d, want 4", len(boards))
	}
}

func TestHTTPIndexBoardThread(t *testing.T) {
	t.Parallel()
	f := newTestForum()
	if _, err := f.Register("dave"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.PostNow(f.WelcomeThreadID(), "dave", "first post"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/")
	if code != http.StatusOK || !strings.Contains(body, "Test Forum") {
		t.Errorf("index: %d %q", code, body)
	}
	code, body = get("/board?id=1")
	if code != http.StatusOK || !strings.Contains(body, WelcomeThreadTitle) {
		t.Errorf("board: %d", code)
	}
	code, body = get("/thread?id=1")
	if code != http.StatusOK {
		t.Fatalf("thread: %d", code)
	}
	if !strings.Contains(body, `data-author="dave"`) {
		t.Errorf("thread page missing post markup: %s", body)
	}
	// Displayed time is server time: 12:30:45 UTC + 3h = 15:30:45.
	if !strings.Contains(body, "2017-06-15 15:30:45") {
		t.Errorf("thread page missing offset timestamp: %s", body)
	}

	// Error paths.
	if code, _ := get("/board?id=99"); code != http.StatusNotFound {
		t.Errorf("missing board: %d", code)
	}
	if code, _ := get("/thread?id=99"); code != http.StatusNotFound {
		t.Errorf("missing thread: %d", code)
	}
	if code, _ := get("/board?id=x"); code != http.StatusBadRequest {
		t.Errorf("bad board id: %d", code)
	}
	if code, _ := get("/nonsense"); code != http.StatusNotFound {
		t.Errorf("unknown path: %d", code)
	}
}

func TestHTTPRegisterAndReply(t *testing.T) {
	t.Parallel()
	f := newTestForum()
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	resp, err := http.PostForm(srv.URL+"/register", url.Values{"name": {"erin"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	// Duplicate.
	resp, err = http.PostForm(srv.URL+"/register", url.Values{"name": {"erin"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate register: %d", resp.StatusCode)
	}

	resp, err = http.PostForm(srv.URL+"/reply", url.Values{
		"thread": {"1"}, "author": {"erin"}, "body": {"probing the clock"},
	})
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("reply: %d %s", resp.StatusCode, body)
	}
	// The echoed markup carries the displayed (offset) timestamp.
	if !strings.Contains(string(body), `data-time="2017-06-15 15:30:45"`) {
		t.Errorf("reply echo = %s", body)
	}

	// GET on POST-only endpoints.
	resp, err = http.Get(srv.URL + "/reply")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET reply: %d", resp.StatusCode)
	}
	// Reply by unknown member.
	resp, err = http.PostForm(srv.URL+"/reply", url.Values{
		"thread": {"1"}, "author": {"ghost"}, "body": {"x"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("ghost reply: %d", resp.StatusCode)
	}
}

func TestThreadPaginationLinks(t *testing.T) {
	t.Parallel()
	f := newTestForum()
	if _, err := f.Register("frank"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		at := testInstant.Add(time.Duration(i) * time.Minute)
		if _, err := f.PostAt(f.WelcomeThreadID(), "frank", "p", at); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/thread?id=1&page=1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	s := string(body)
	if !strings.Contains(s, `class="prev"`) || !strings.Contains(s, `class="next"`) {
		t.Errorf("page 1 of 3 should link both ways: %s", s)
	}
	if !strings.Contains(s, `data-pages="3"`) {
		t.Errorf("missing page count: %s", s)
	}
}
