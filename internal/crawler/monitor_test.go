package crawler

import (
	"net/http/httptest"
	"testing"
	"time"

	"darkcrowd/internal/forum"
)

func hiddenForum(t *testing.T) (*forum.Forum, []int) {
	t.Helper()
	f := forum.New(forum.Config{
		Name:           "hidden",
		HideTimestamps: true,
		PageSize:       10,
		Clock:          func() time.Time { return testNow },
	})
	for _, u := range []string{"u1", "u2"} {
		if _, err := f.Register(u); err != nil {
			t.Fatal(err)
		}
	}
	b, err := f.AddBoard("Main", "")
	if err != nil {
		t.Fatal(err)
	}
	th, err := f.NewThread(b.ID, "topic")
	if err != nil {
		t.Fatal(err)
	}
	return f, []int{th.ID}
}

func TestScrapeRefusesHiddenTimestamps(t *testing.T) {
	t.Parallel()
	f, _ := hiddenForum(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	c := &Crawler{BaseURL: srv.URL, Clock: func() time.Time { return testNow }}
	if _, err := c.Scrape("nope"); err == nil {
		t.Fatal("scrape of hidden-timestamp forum should fail")
	}
}

func TestMonitorObservesNewPosts(t *testing.T) {
	t.Parallel()
	f, threads := hiddenForum(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// Two pre-existing posts that the baseline sweep must skip.
	for i := 0; i < 2; i++ {
		if _, err := f.PostAt(threads[0], "u1", "old", testNow.Add(-time.Hour)); err != nil {
			t.Fatal(err)
		}
	}

	var simNow time.Time
	c := &Crawler{BaseURL: srv.URL}
	m := NewMonitor(c, "watched")
	m.Clock = func() time.Time { return simNow }

	simNow = testNow
	n, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("baseline sweep recorded %d posts, want 0", n)
	}

	// New posts appear; the monitor stamps them with its own clock.
	want := []struct {
		user string
		at   time.Time
	}{
		{"u1", testNow.Add(10 * time.Minute)},
		{"u2", testNow.Add(20 * time.Minute)},
		{"u2", testNow.Add(30 * time.Minute)},
	}
	for i, w := range want {
		if _, err := f.PostAt(threads[0], w.user, "new", w.at); err != nil {
			t.Fatal(err)
		}
		simNow = w.at.Add(time.Minute) // sweep shortly after the post
		n, err := m.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if n != 1 {
			t.Fatalf("sweep %d recorded %d posts, want 1", i, n)
		}
	}
	ds := m.Dataset()
	if ds.NumPosts() != 3 {
		t.Fatalf("monitored dataset has %d posts, want 3", ds.NumPosts())
	}
	counts := ds.PostCounts()
	if counts["u1"] != 1 || counts["u2"] != 2 {
		t.Errorf("per-user counts %v", counts)
	}
	// Observation times within a minute of the true posting times.
	for i, p := range ds.Posts {
		if d := p.Time.Sub(want[i].at); d < 0 || d > 2*time.Minute {
			t.Errorf("post %d observed at %v, posted at %v", i, p.Time, want[i].at)
		}
	}
	if m.Polls() != 4 {
		t.Errorf("Polls() = %d, want 4", m.Polls())
	}
}

func TestMonitorIdempotentSweeps(t *testing.T) {
	t.Parallel()
	f, threads := hiddenForum(t)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	c := &Crawler{BaseURL: srv.URL}
	m := NewMonitor(c, "idem")
	m.Clock = func() time.Time { return testNow }
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.PostAt(threads[0], "u1", "x", testNow); err != nil {
		t.Fatal(err)
	}
	n, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("first sweep after post: %d", n)
	}
	// Re-sweeping without new posts records nothing.
	for i := 0; i < 3; i++ {
		n, err := m.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if n != 0 {
			t.Fatalf("idle sweep recorded %d posts", n)
		}
	}
}

func TestMonitorSkipsProbeAuthor(t *testing.T) {
	t.Parallel()
	f, threads := hiddenForum(t)
	if _, err := f.Register(ProbeAuthor); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	c := &Crawler{BaseURL: srv.URL}
	m := NewMonitor(c, "probe-skip")
	m.Clock = func() time.Time { return testNow }
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.PostAt(threads[0], ProbeAuthor, "probe", testNow); err != nil {
		t.Fatal(err)
	}
	n, err := m.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || m.Dataset().NumPosts() != 0 {
		t.Errorf("probe post recorded: n=%d posts=%d", n, m.Dataset().NumPosts())
	}
}

func TestMonitorWorksWithVisibleTimestampsToo(t *testing.T) {
	t.Parallel()
	// Monitoring does not require hidden timestamps; it simply ignores
	// them.
	f, truth := buildForum(t, 2*time.Hour, 2)
	_ = truth
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	c := &Crawler{BaseURL: srv.URL}
	m := NewMonitor(c, "visible")
	m.Clock = func() time.Time { return testNow }
	if _, err := m.Poll(); err != nil {
		t.Fatal(err)
	}
	if m.Dataset().NumPosts() != 0 {
		t.Error("baseline sweep should record nothing")
	}
}
