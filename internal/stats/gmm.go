package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"darkcrowd/internal/obs"
	"darkcrowd/internal/par"
)

// Expectation-Maximization for one-dimensional Gaussian mixtures on a
// circle. The paper (§IV-B) fits a Gaussian Mixture Model to the placement
// histogram of a crowd because the number of regions the crowd comes from
// is unknown a priori; EM estimates the maximum-likelihood parameters for a
// fixed number of components, and this package selects the number of
// components with the Bayesian Information Criterion.

// EMConfig parameterizes mixture estimation.
type EMConfig struct {
	// Period is the circumference of the circular domain
	// (24 for time zones). Required.
	Period float64
	// InitSigma is the initial standard deviation of every component. The
	// paper initializes EM with the sigma ~ 2.5 observed on single-region
	// placements. Defaults to 2.5.
	InitSigma float64
	// MaxIter bounds EM iterations per run. Defaults to 200.
	MaxIter int
	// Tol is the log-likelihood convergence threshold. Defaults to 1e-7.
	Tol float64
	// MinSigma and MaxSigma clamp component widths to keep the model in
	// the wrapped-Gaussian regime. MinSigma defaults to 1.3: the paper's
	// single-region placements spread with sigma ~2.5, and DST smears
	// every DST-observing crowd across two adjacent zones, so narrower
	// components are always overfits of single histogram bins. MaxSigma
	// defaults to 6.
	MinSigma, MaxSigma float64
	// MinWeight prunes components that capture less than this share of
	// the crowd after convergence. Defaults to 0.04.
	MinWeight float64
	// MergeRadius merges converged components whose means are closer than
	// this many zones: DST spreads one region across two adjacent zones,
	// so sub-1.6-zone splits are artefacts, not separate regions.
	// Defaults to 1.6.
	MergeRadius float64
	// Obs, when non-nil, receives the EM diagnostics (per-k iteration
	// counts, convergence flags, BIC scores, the selected k and the final
	// log-likelihood). Observation only: the fitted model is identical
	// with or without it.
	Obs *obs.Observer
	// Parallelism is the number of workers SelectMixture uses to run the
	// per-k EM fits concurrently: 0 uses every core (GOMAXPROCS), 1 forces
	// the sequential path. Each fit is deterministic and the BIC winner is
	// chosen by scanning k in order, so the selected model is identical
	// for every setting.
	Parallelism int
}

func (c EMConfig) withDefaults() EMConfig {
	if c.InitSigma == 0 {
		c.InitSigma = 2.5
	}
	if c.MaxIter == 0 {
		c.MaxIter = 200
	}
	if c.Tol == 0 {
		c.Tol = 1e-7
	}
	if c.MinSigma == 0 {
		c.MinSigma = 1.3
	}
	if c.MaxSigma == 0 {
		c.MaxSigma = 6
	}
	if c.MinWeight == 0 {
		c.MinWeight = 0.04
	}
	if c.MergeRadius == 0 {
		c.MergeRadius = 1.6
	}
	return c
}

// EMResult is the outcome of one EM run. LogLikelihood and BIC always
// describe Mixture — the model actually returned — not an intermediate
// iterate.
type EMResult struct {
	Mixture       Mixture
	LogLikelihood float64
	Iterations    int
	BIC           float64
	// Converged reports whether EM stopped on its own (log-likelihood
	// improvement below Tol, or a clamping-induced decrease) rather than
	// by hitting MaxIter.
	Converged bool
	// Degraded is empty for a healthy fit; otherwise it names why the fit
	// is only best-effort (non-convergence, a degenerate component). A
	// degraded result is still the best recoverable model — callers decide
	// whether to serve it with a warning or to fail.
	Degraded string `json:"Degraded,omitempty"`
}

// FitDegradedError is the typed error for an EM run that finished in a
// degraded state — it hit MaxIter without converging, or produced a
// degenerate component. The best recoverable mixture rides along in
// Result, so a long-running pipeline can report a degraded crowd estimate
// instead of dying: the fit is usable, just not trustworthy to full
// precision.
type FitDegradedError struct {
	// Result is the best recoverable fit; Result.Degraded == Reason.
	Result EMResult
	// Reason says what degraded ("max-iterations: ...",
	// "degenerate-component: ...").
	Reason string
}

// Error implements the error interface.
func (e *FitDegradedError) Error() string {
	return fmt.Sprintf("stats: degraded EM fit (k=%d): %s", len(e.Result.Mixture), e.Reason)
}

// degradation inspects a finished EM run and returns the degradation
// reason, or "" for a healthy fit. A component with a non-finite or
// non-positive parameter is degenerate — EM collapsed it — and takes
// precedence over plain non-convergence.
func degradation(res EMResult) string {
	for i, g := range res.Mixture {
		finite := !math.IsNaN(g.Weight) && !math.IsInf(g.Weight, 0) &&
			!math.IsNaN(g.Mean) && !math.IsInf(g.Mean, 0) &&
			!math.IsNaN(g.Sigma) && !math.IsInf(g.Sigma, 0)
		if !finite || g.Sigma <= 0 || g.Weight < 0 {
			return fmt.Sprintf("degenerate-component: component %d collapsed (weight %g, mean %g, sigma %g)",
				i, g.Weight, g.Mean, g.Sigma)
		}
	}
	if !res.Converged {
		return fmt.Sprintf("max-iterations: no convergence after %d iterations", res.Iterations)
	}
	return ""
}

// FitMixtureEM runs EM with exactly k components on the samples (positions
// on the circle, e.g. per-user placement zones as indices 0..23).
//
// Invalid inputs (bad k, bad Period, too few samples) fail with an
// ordinary error and no result. A run that finishes in a degraded state —
// MaxIter exhausted without convergence, or a collapsed component —
// returns the best recoverable EMResult together with a *FitDegradedError
// wrapping that same result, so callers choose between failing hard and
// serving the fit with a warning.
func FitMixtureEM(samples []float64, k int, cfg EMConfig) (EMResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Period <= 0 {
		return EMResult{}, errors.New("stats: EMConfig.Period must be positive")
	}
	if k <= 0 {
		return EMResult{}, fmt.Errorf("stats: component count must be positive, got %d", k)
	}
	n := len(samples)
	if n < k {
		return EMResult{}, fmt.Errorf("stats: %d samples cannot support %d components", n, k)
	}

	mix := initComponents(samples, k, cfg)
	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}

	// The loop is structured E-then-M with the stopping test *between*
	// them, so the log-likelihood used for the stopping decision — and
	// ultimately reported — is always the one of the parameters it was
	// evaluated on. (The historical bug: the loop ran E,M,test and then
	// reported the pre-M-step likelihood for the post-M-step mixture.)
	// The best-evaluated iterate is snapshotted because MinSigma/MaxSigma
	// clamping can make an M-step *decrease* the likelihood; on such a
	// decrease EM stops and the better earlier iterate is returned.
	best := make(Mixture, k)
	bestLL := math.Inf(-1)
	prevLL := math.Inf(-1)
	converged := false
	iters := 0
	for iter := 0; iter < cfg.MaxIter; iter++ {
		iters = iter + 1
		// E-step: responsibilities and log-likelihood of the current mix.
		ll := eStep(samples, mix, resp, cfg.Period)
		if ll >= bestLL {
			bestLL = ll
			copy(best, mix)
		}
		if iter > 0 {
			delta := ll - prevLL
			if delta < 0 {
				// Clamping pushed the likelihood down: EM has left the
				// monotone regime, further iterations cannot be trusted to
				// improve. Stop and keep the best iterate seen.
				converged = true
				break
			}
			if delta < cfg.Tol {
				converged = true
				break
			}
		}
		prevLL = ll

		// M-step: re-estimate parameters from the responsibilities.
		mStep(samples, mix, resp, cfg)
	}

	bic := bicScore(k, n, bestLL)
	sortMixture(best)
	res := EMResult{Mixture: best, LogLikelihood: bestLL, Iterations: iters, BIC: bic, Converged: converged}
	if reason := degradation(res); reason != "" {
		res.Degraded = reason
		// The fit is degraded but not worthless: hand the best recoverable
		// mixture back alongside the typed error so callers can serve a
		// degraded result instead of dying mid-pipeline.
		return res, &FitDegradedError{Result: res, Reason: reason}
	}
	return res, nil
}

// eStep fills resp with the posterior responsibilities of each component
// for each sample and returns the samples' log-likelihood under mix.
func eStep(samples []float64, mix Mixture, resp [][]float64, period float64) float64 {
	k := len(mix)
	ll := 0.0
	for i, x := range samples {
		var total float64
		for j, g := range mix {
			p := g.Weight * g.WrappedPDF(x, period)
			resp[i][j] = p
			total += p
		}
		if total <= 0 {
			// Degenerate point: spread responsibility uniformly.
			for j := range resp[i] {
				resp[i][j] = 1 / float64(k)
			}
			total = 1e-300
		} else {
			for j := range resp[i] {
				resp[i][j] /= total
			}
		}
		ll += math.Log(total)
	}
	return ll
}

// mStep re-estimates mix in place from the responsibilities, clamping
// component widths to [MinSigma, MaxSigma].
func mStep(samples []float64, mix Mixture, resp [][]float64, cfg EMConfig) {
	n := len(samples)
	for j := range mix {
		var rsum, sinSum, cosSum float64
		for i, x := range samples {
			r := resp[i][j]
			rsum += r
			theta := 2 * math.Pi * x / cfg.Period
			sinSum += r * math.Sin(theta)
			cosSum += r * math.Cos(theta)
		}
		if rsum <= 0 {
			continue
		}
		mu := math.Atan2(sinSum, cosSum) * cfg.Period / (2 * math.Pi)
		mu = math.Mod(mu+cfg.Period, cfg.Period)
		var varSum float64
		for i, x := range samples {
			d := CircularDiff(x, mu, cfg.Period)
			varSum += resp[i][j] * d * d
		}
		sigma := math.Sqrt(varSum / rsum)
		sigma = math.Min(math.Max(sigma, cfg.MinSigma), cfg.MaxSigma)
		mix[j] = Gaussian{Weight: rsum / float64(n), Mean: mu, Sigma: sigma}
	}
}

// MixtureLogLikelihood returns the total log-likelihood of the samples
// under the mixture on the circular domain — the quantity EM maximizes
// and BIC penalizes. Degenerate zero-density points contribute log(1e-300)
// exactly as the EM loop counts them.
func MixtureLogLikelihood(samples []float64, mix Mixture, period float64) float64 {
	ll := 0.0
	for _, x := range samples {
		var total float64
		for _, g := range mix {
			total += g.Weight * g.WrappedPDF(x, period)
		}
		if total <= 0 {
			total = 1e-300
		}
		ll += math.Log(total)
	}
	return ll
}

// bicScore is the Bayesian Information Criterion for a k-component
// circular mixture on n samples: each component carries a mean and a
// sigma, plus k-1 free weights.
func bicScore(k, n int, ll float64) float64 {
	params := float64(3*k - 1)
	return params*math.Log(float64(n)) - 2*ll
}

// SelectMixture fits mixtures with 1..maxK components and returns the one
// minimizing BIC, after pruning components lighter than cfg.MinWeight and
// merging components closer than one zone. This reproduces the paper's
// uncovering of "the different number of regions per crowd given by the
// number of different Gaussian curves" (§IV-B).
//
// The returned LogLikelihood and BIC describe the *tidied* mixture — the
// model the caller actually receives — recomputed after pruning and
// merging. (Model selection itself compares the raw per-k fits: tidying
// changes the component count, so comparing tidied scores against raw
// ones would bias the search.)
//
// The per-k EM runs are independent, so they execute on cfg.Parallelism
// workers; every run is deterministic and the winner is picked by scanning
// the results in k order (ties go to the smaller model), so the outcome
// matches the sequential loop exactly.
//
// Degraded per-k fits (see FitMixtureEM) do not abort selection: their best
// recoverable models stay in the BIC race alongside the healthy candidates.
// If the winner itself is degraded, SelectMixture still returns it with a
// nil error and the Degraded field set — the model is the best available
// estimate, and the caller decides whether that warrants a warning.
func SelectMixture(samples []float64, maxK int, cfg EMConfig) (EMResult, error) {
	cfg = cfg.withDefaults()
	if maxK <= 0 {
		return EMResult{}, fmt.Errorf("stats: maxK must be positive, got %d", maxK)
	}
	kMax := maxK
	if kMax > len(samples) {
		kMax = len(samples)
	}
	if kMax < 1 {
		return EMResult{}, ErrEmptyInput
	}
	o := cfg.Obs.Stage("em-select")
	defer o.End()
	o.SetWorkers(par.Workers(cfg.Parallelism, kMax))
	// A typed-nil *Span must not become a non-nil ShardObserver.
	var so par.ShardObserver
	if sp := o.SpanRef(); sp != nil {
		so = sp
	}
	results := make([]EMResult, kMax)
	err := par.RangesObserved(nil, cfg.Parallelism, kMax, func(start, end int) error {
		for i := start; i < end; i++ {
			res, err := FitMixtureEM(samples, i+1, cfg)
			var deg *FitDegradedError
			if errors.As(err, &deg) {
				// A degraded fit still carries the best recoverable model.
				// It stays in the BIC race: aborting model selection because
				// one candidate k failed to converge would discard every
				// healthy candidate along with it.
				results[i] = deg.Result
				continue
			}
			if err != nil {
				return fmt.Errorf("stats: EM with k=%d: %w", i+1, err)
			}
			results[i] = res
		}
		return nil
	}, so)
	if err != nil {
		return EMResult{}, err
	}
	best := results[0]
	for _, res := range results[1:] {
		if res.BIC < best.BIC {
			best = res
		}
	}
	rawK := len(best.Mixture)
	best.Mixture = tidyMixture(best.Mixture, cfg)
	// Pruning/merging changed the model, so its reported score must be
	// recomputed; the BIC the caller sees always describes best.Mixture.
	best.LogLikelihood = MixtureLogLikelihood(samples, best.Mixture, cfg.Period)
	best.BIC = bicScore(len(best.Mixture), len(samples), best.LogLikelihood)
	if o.Enabled() {
		for i, res := range results {
			prefix := fmt.Sprintf("em.k%d.", i+1)
			o.Gauge(prefix + "iterations").Set(int64(res.Iterations))
			conv := int64(0)
			if res.Converged {
				conv = 1
			}
			o.Gauge(prefix + "converged").Set(conv)
			o.FloatGauge(prefix + "bic").Set(res.BIC)
			o.FloatGauge(prefix + "log_likelihood").Set(res.LogLikelihood)
		}
		o.Gauge("em.selected_raw_k").Set(int64(rawK))
		o.Gauge("em.selected_k").Set(int64(len(best.Mixture)))
		o.Gauge("em.selected_iterations").Set(int64(best.Iterations))
		conv := int64(0)
		if best.Converged {
			conv = 1
		}
		o.Gauge("em.selected_converged").Set(conv)
		degradedK := int64(0)
		for _, res := range results {
			if res.Degraded != "" {
				degradedK++
			}
		}
		o.Gauge("em.degraded_fits").Set(degradedK)
		selDeg := int64(0)
		if best.Degraded != "" {
			selDeg = 1
		}
		o.Gauge("em.selected_degraded").Set(selDeg)
		o.FloatGauge("em.final_log_likelihood").Set(best.LogLikelihood)
		o.FloatGauge("em.final_bic").Set(best.BIC)
		o.Eventf("em-select", "model selected",
			"raw_k", rawK, "k", len(best.Mixture), "iterations", best.Iterations, "converged", best.Converged)
		if best.Degraded != "" {
			o.Eventf("em-select", "selected model is degraded", "reason", best.Degraded)
		}
	}
	return best, nil
}

// initComponents places the initial means on the k strongest well-separated
// peaks of the sample histogram, falling back to even spacing. The
// initialization is deterministic, so every fit is reproducible.
func initComponents(samples []float64, k int, cfg EMConfig) Mixture {
	bins := int(math.Round(cfg.Period))
	if bins < 1 {
		bins = 1
	}
	hist := make([]float64, bins)
	for _, x := range samples {
		idx := int(math.Mod(math.Floor(x+0.5), float64(bins)))
		if idx < 0 {
			idx += bins
		}
		hist[idx]++
	}
	type peak struct {
		bin   int
		count float64
	}
	peaks := make([]peak, 0, bins)
	for i, c := range hist {
		peaks = append(peaks, peak{bin: i, count: c})
	}
	sort.Slice(peaks, func(i, j int) bool {
		if peaks[i].count != peaks[j].count {
			return peaks[i].count > peaks[j].count
		}
		return peaks[i].bin < peaks[j].bin
	})

	minSep := cfg.Period / float64(2*k)
	if minSep > 3 {
		minSep = 3
	}
	var means []float64
	for _, p := range peaks {
		if len(means) == k {
			break
		}
		ok := true
		for _, m := range means {
			if math.Abs(CircularDiff(float64(p.bin), m, cfg.Period)) < minSep {
				ok = false
				break
			}
		}
		if ok {
			means = append(means, float64(p.bin))
		}
	}
	// Fallback for histograms with fewer than k well-separated peaks:
	// evenly spaced candidates, *skipping positions that collide with an
	// already-picked mean* — a colliding fallback would seed two
	// near-duplicate components that EM then has to disentangle (or
	// worse, returns as a split artefact). Candidates are tried at even
	// spacing first, then at successively offset sub-grids, so the k
	// means stay as spread out as the occupied circle allows.
	for _, phase := range []float64{0, 0.5, 0.25, 0.75} {
		for i := 0; i < k && len(means) < k; i++ {
			cand := cfg.Period * (float64(i) + phase) / float64(k)
			collides := false
			for _, m := range means {
				if math.Abs(CircularDiff(cand, m, cfg.Period)) < minSep {
					collides = true
					break
				}
			}
			if !collides {
				means = append(means, cand)
			}
		}
	}
	// Degenerate geometry (the whole circle within minSep of picked
	// means) cannot happen for minSep <= Period/(2k), but guarantee k
	// means regardless.
	for i := len(means); i < k; i++ {
		means = append(means, cfg.Period*float64(i)/float64(k))
	}

	mix := make(Mixture, k)
	for i := range mix {
		mix[i] = Gaussian{Weight: 1 / float64(k), Mean: means[i], Sigma: cfg.InitSigma}
	}
	return mix
}

// tidyMixture prunes feather-weight components and merges near-duplicates,
// renormalizing the weights.
func tidyMixture(mix Mixture, cfg EMConfig) Mixture {
	kept := make(Mixture, 0, len(mix))
	for _, g := range mix {
		if g.Weight >= cfg.MinWeight {
			kept = append(kept, g)
		}
	}
	if len(kept) == 0 && len(mix) > 0 {
		d, err := mix.Dominant()
		if err == nil {
			kept = Mixture{d}
		}
	}
	// Merge components closer than the merge radius.
	merged := make(Mixture, 0, len(kept))
	used := make([]bool, len(kept))
	for i := range kept {
		if used[i] {
			continue
		}
		g := kept[i]
		for j := i + 1; j < len(kept); j++ {
			if used[j] {
				continue
			}
			if math.Abs(CircularDiff(g.Mean, kept[j].Mean, cfg.Period)) < cfg.MergeRadius {
				w := g.Weight + kept[j].Weight
				g.Mean = math.Mod(g.Mean+CircularDiff(kept[j].Mean, g.Mean, cfg.Period)*kept[j].Weight/w+cfg.Period, cfg.Period)
				g.Sigma = (g.Sigma*g.Weight + kept[j].Sigma*kept[j].Weight) / w
				g.Weight = w
				used[j] = true
			}
		}
		merged = append(merged, g)
	}
	total := merged.TotalWeight()
	if total > 0 {
		for i := range merged {
			merged[i].Weight /= total
		}
	}
	sortMixture(merged)
	return merged
}

// sortMixture orders components by descending weight, then ascending mean,
// so results have a canonical presentation.
func sortMixture(m Mixture) {
	sort.Slice(m, func(i, j int) bool {
		if m[i].Weight != m[j].Weight {
			return m[i].Weight > m[j].Weight
		}
		return m[i].Mean < m[j].Mean
	})
}
