package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestMetricsEndpoint(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	reg.Counter("crawler.requests").Add(7)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["crawler.requests"] != 7 {
		t.Errorf("counters = %v", s.Counters)
	}
}

func TestPprofEndpoint(t *testing.T) {
	t.Parallel()
	srv := httptest.NewServer(Handler(NewRegistry()))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("pprof goroutine: status %d, %d bytes", resp.StatusCode, len(body))
	}
}

func TestServeAndClose(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// A nil server closes cleanly, and a bad address fails synchronously.
	var nilSrv *DebugServer
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if _, err := Serve("256.256.256.256:0", reg); err == nil {
		t.Error("bad address should fail to bind")
	}
}

func TestServeHandlerShutdown(t *testing.T) {
	t.Parallel()
	srv, err := ServeHandler("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hello"))
	}))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "hello" {
		t.Fatalf("body = %q", body)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The listener is gone after a graceful drain.
	if _, err := http.Get("http://" + srv.Addr + "/"); err == nil {
		t.Error("server still accepting after Shutdown")
	}
	// Nil-receiver Shutdown is a no-op, like Close.
	var nilSrv *DebugServer
	if err := nilSrv.Shutdown(context.Background()); err != nil {
		t.Errorf("nil Shutdown: %v", err)
	}
}
