// Package trace defines the activity-trace data model every other part of
// the reproduction consumes: a post is a (user, UTC timestamp) pair, and a
// dataset is a named collection of posts with optional ground-truth region
// labels.
//
// This mirrors the paper's data handling: "The data collected (only author
// ID and time of posting, without the body of the forum post)" (§VIII). A
// trace "can be of any kind: posts, comments to posts, messages exchanged,
// access times, or even all the above" (§IV) — everything reduces to
// timestamped user activity.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"time"
	"unicode"
	"unicode/utf8"
)

// Post is a single activity event: a user posted at an instant, normalized
// to UTC.
type Post struct {
	UserID string    `json:"user_id"`
	Time   time.Time `json:"time"`
}

// Dataset is a named activity trace. GroundTruth optionally maps user IDs
// to region codes for datasets with verified origin (the Twitter dataset of
// Table I, or validation forums).
type Dataset struct {
	Name        string            `json:"name"`
	Posts       []Post            `json:"posts"`
	GroundTruth map[string]string `json:"ground_truth,omitempty"`

	// idx is the lazily built columnar index (see Index in columnar.go).
	idx *Store
}

// copyGroundTruth returns a deep copy of a ground-truth map (nil for nil).
// Derived datasets must never alias the source's map: a caller mutating the
// filtered copy would silently corrupt the original.
func copyGroundTruth(gt map[string]string) map[string]string {
	if gt == nil {
		return nil
	}
	out := make(map[string]string, len(gt))
	for k, v := range gt {
		out[k] = v
	}
	return out
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Name: d.Name, Posts: make([]Post, len(d.Posts))}
	copy(out.Posts, d.Posts)
	out.GroundTruth = copyGroundTruth(d.GroundTruth)
	return out
}

// NumPosts returns the number of posts.
func (d *Dataset) NumPosts() int { return len(d.Posts) }

// Users returns the distinct user IDs, sorted — a copy of the columnar
// index's interned dictionary.
func (d *Dataset) Users() []string {
	s := d.Index()
	out := make([]string, len(s.ids))
	copy(out, s.ids)
	return out
}

// ByUser groups posts by user ID. Post order within a user follows the
// dataset order. The groups are views carved out of one shared backing
// array (capped, so appending to one group cannot clobber a neighbour).
func (d *Dataset) ByUser() map[string][]Post {
	s := d.Index()
	backing := make([]Post, len(d.Posts))
	for k, pos := range s.posts {
		backing[k] = d.Posts[pos]
	}
	out := make(map[string][]Post, len(s.ids))
	for u, id := range s.ids {
		lo, hi := s.offsets[u], s.offsets[u+1]
		out[id] = backing[lo:hi:hi]
	}
	return out
}

// PostCounts returns the number of posts per user, read off the columnar
// index's offsets.
func (d *Dataset) PostCounts() map[string]int {
	s := d.Index()
	out := make(map[string]int, len(s.ids))
	for u, id := range s.ids {
		out[id] = int(s.offsets[u+1] - s.offsets[u])
	}
	return out
}

// TimeRange returns the earliest and latest post times. ok is false for an
// empty dataset.
func (d *Dataset) TimeRange() (first, last time.Time, ok bool) {
	if len(d.Posts) == 0 {
		return time.Time{}, time.Time{}, false
	}
	first, last = d.Posts[0].Time, d.Posts[0].Time
	for _, p := range d.Posts[1:] {
		if p.Time.Before(first) {
			first = p.Time
		}
		if p.Time.After(last) {
			last = p.Time
		}
	}
	return first, last, true
}

// FilterUsers returns a new dataset keeping only posts whose user the
// predicate accepts. Ground truth entries for dropped users are removed.
// The predicate is evaluated once per distinct user (via the columnar
// index), not once per post.
func (d *Dataset) FilterUsers(keep func(userID string) bool) *Dataset {
	s := d.Index()
	keepUser := make([]bool, s.NumUsers())
	kept := 0
	for u, id := range s.ids {
		if keep(id) {
			keepUser[u] = true
			kept += s.Count(u)
		}
	}
	out := &Dataset{Name: d.Name}
	if kept > 0 {
		out.Posts = make([]Post, 0, kept)
		for i, p := range d.Posts {
			if keepUser[s.userOf[i]] {
				out.Posts = append(out.Posts, p)
			}
		}
	}
	if d.GroundTruth != nil {
		out.GroundTruth = make(map[string]string)
		for u, r := range d.GroundTruth {
			if keep(u) {
				out.GroundTruth[u] = r
			}
		}
	}
	return out
}

// FilterPosts returns a new dataset keeping only posts the predicate
// accepts. Ground truth is carried over (as a copy, so the datasets stay
// independent).
func (d *Dataset) FilterPosts(keep func(Post) bool) *Dataset {
	out := &Dataset{Name: d.Name, GroundTruth: copyGroundTruth(d.GroundTruth)}
	for _, p := range d.Posts {
		if keep(p) {
			out.Posts = append(out.Posts, p)
		}
	}
	return out
}

// FilterMinPosts drops users with fewer than min posts — the paper's
// active-user threshold ("we chose the threshold to be 30 posts", §IV).
func (d *Dataset) FilterMinPosts(min int) *Dataset {
	s := d.Index()
	return d.FilterUsers(func(id string) bool {
		u, ok := s.Lookup(id)
		return ok && s.Count(u) >= min
	})
}

// Window returns the posts falling in [from, to). When the dataset is
// chronologically sorted (the common case — generators and loaders sort),
// the boundaries are binary-searched instead of scanning every post.
func (d *Dataset) Window(from, to time.Time) *Dataset {
	s := d.Index()
	if !s.SortedByTime() {
		return d.FilterPosts(func(p Post) bool {
			return !p.Time.Before(from) && p.Time.Before(to)
		})
	}
	lo := sort.Search(len(d.Posts), func(i int) bool { return !d.Posts[i].Time.Before(from) })
	hi := sort.Search(len(d.Posts), func(i int) bool { return !d.Posts[i].Time.Before(to) })
	out := &Dataset{Name: d.Name, GroundTruth: copyGroundTruth(d.GroundTruth)}
	if lo < hi {
		out.Posts = make([]Post, hi-lo)
		copy(out.Posts, d.Posts[lo:hi])
	}
	return out
}

// Merge combines several datasets into one. Ground-truth maps are merged;
// conflicting labels for the same user are an error, never a silent
// last-dataset-wins overwrite. Every conflicting user is collected before
// failing, and the error names them in sorted order with both datasets
// involved — so one merge attempt diagnoses all the label damage, and the
// message is deterministic regardless of map iteration order.
func Merge(name string, datasets ...*Dataset) (*Dataset, error) {
	out := &Dataset{Name: name, GroundTruth: make(map[string]string)}
	labelledBy := make(map[string]string) // user -> name of the dataset that labelled them
	var conflicts []string
	conflictSeen := make(map[string]bool)
	for _, d := range datasets {
		out.Posts = append(out.Posts, d.Posts...)
		for u, r := range d.GroundTruth {
			if prev, ok := out.GroundTruth[u]; ok && prev != r {
				if !conflictSeen[u] {
					conflictSeen[u] = true
					conflicts = append(conflicts, fmt.Sprintf("user %q labelled %q (dataset %q) and %q (dataset %q)",
						u, prev, labelledBy[u], r, d.Name))
				}
				continue
			}
			out.GroundTruth[u] = r
			labelledBy[u] = d.Name
		}
	}
	if len(conflicts) > 0 {
		sort.Strings(conflicts)
		const show = 5
		listed := conflicts
		suffix := ""
		if len(listed) > show {
			listed = listed[:show]
			suffix = fmt.Sprintf("; and %d more", len(conflicts)-show)
		}
		return nil, fmt.Errorf("trace: merge %q: %d conflicting ground-truth label(s): %s%s",
			name, len(conflicts), strings.Join(listed, "; "), suffix)
	}
	if len(out.GroundTruth) == 0 {
		out.GroundTruth = nil
	}
	return out, nil
}

// SortByTime orders posts chronologically in place (stable, so same-instant
// posts keep their relative order). The cached columnar index is dropped:
// its post-parallel columns no longer match the new order.
func (d *Dataset) SortByTime() {
	sort.SliceStable(d.Posts, func(i, j int) bool {
		return d.Posts[i].Time.Before(d.Posts[j].Time)
	})
	d.idx = nil
}

// WriteJSON serializes the dataset.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("trace: encode dataset: %w", err)
	}
	return nil
}

// ReadJSON deserializes a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("trace: decode dataset: %w", err)
	}
	return &d, nil
}

// csvHeader is the column layout used by WriteCSV/ReadCSV.
var csvHeader = []string{"user_id", "time_rfc3339"}

// WriteCSV writes the posts as CSV with a header row. Ground truth is not
// part of the CSV format. Rows are assembled in a reused byte buffer — the
// timestamp field never needs quoting and the user-ID field is quoted only
// when it contains a CSV metacharacter, so the common row costs zero
// allocations. The byte output is identical to encoding/csv's.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	buf := make([]byte, 0, 64)
	buf = append(buf, csvHeader[0]...)
	buf = append(buf, ',')
	buf = append(buf, csvHeader[1]...)
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return fmt.Errorf("trace: write CSV header: %w", err)
	}
	for _, p := range d.Posts {
		buf = appendCSVField(buf[:0], p.UserID)
		buf = append(buf, ',')
		buf = appendRFC3339(buf, p.Time)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("trace: write CSV row: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush CSV: %w", err)
	}
	return nil
}

// appendCSVField appends a CSV field, quoting it exactly when encoding/csv
// would (field contains a quote, comma, CR, or LF, or begins with a space).
func appendCSVField(buf []byte, field string) []byte {
	if !csvFieldNeedsQuotes(field) {
		return append(buf, field...)
	}
	buf = append(buf, '"')
	for i := 0; i < len(field); i++ {
		if c := field[i]; c == '"' {
			buf = append(buf, '"', '"')
		} else {
			// CR and LF pass through unchanged, matching csv.Writer with
			// UseCRLF off.
			buf = append(buf, c)
		}
	}
	return append(buf, '"')
}

// csvFieldNeedsQuotes mirrors encoding/csv's unexported fieldNeedsQuotes
// for the default (comma, non-CRLF) writer: quote on comma, quote, CR, LF,
// a leading Unicode space, or the literal field `\.`.
func csvFieldNeedsQuotes(field string) bool {
	if field == "" {
		return false
	}
	if field == `\.` {
		return true
	}
	if strings.ContainsAny(field, `",`) || strings.ContainsAny(field, "\r\n") {
		return true
	}
	r1, _ := utf8.DecodeRuneInString(field)
	return unicode.IsSpace(r1)
}

// ReadCSV reads a CSV produced by WriteCSV.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	return ReadCSVHint(name, r, 0)
}

// ReadCSVHint is ReadCSV with a post-count hint used to preallocate the
// post slice — pass the expected number of rows (0 is fine). Rows are
// parsed through a fixed-layout RFC3339 fast path (falling back to
// time.Parse for offsets, fractional seconds, or anything unusual), and
// user-ID strings are interned so a million-post file holds one string per
// distinct user instead of one per row.
func ReadCSVHint(name string, r io.Reader, postHint int) (*Dataset, error) {
	ds, _, err := ReadCSVOpts(name, r, ReadCSVOptions{PostHint: postHint})
	return ds, err
}

// DefaultQuarantineSample is how many quarantined rows a lenient read keeps
// verbatim for diagnosis when ReadCSVOptions.SampleCap is zero.
const DefaultQuarantineSample = 10

// ReadCSVOptions tunes ReadCSVOpts.
type ReadCSVOptions struct {
	// PostHint preallocates the post slice (0 is fine) — see ReadCSVHint.
	PostHint int
	// Lenient switches the reader from fail-fast to quarantining: a
	// malformed row is recorded in the QuarantineReport and skipped instead
	// of aborting the whole load. The header is always strict — a missing
	// or wrong header means the wrong file, not a dirty row.
	Lenient bool
	// MaxBadRows is the lenient mode's bad-row budget: quarantining more
	// than this many rows aborts the read with a *BadRowBudgetError. Zero
	// or negative means no budget (quarantine everything).
	MaxBadRows int
	// SampleCap bounds how many quarantined rows are kept verbatim in the
	// report (default DefaultQuarantineSample). The total count is always
	// exact; only the per-row detail is capped.
	SampleCap int
}

// QuarantinedRow describes one malformed row a lenient read skipped.
type QuarantinedRow struct {
	// Line is the 1-based record number in the file (the header is record
	// 1; for files without quoted newlines this is the line number).
	Line int `json:"line"`
	// Field names what was malformed: "record" for CSV-level damage
	// (quoting, field count), or the column name for a bad value.
	Field string `json:"field"`
	// Reason is the parse error, verbatim.
	Reason string `json:"reason"`
	// Raw is the offending value (truncated), empty when the row never
	// parsed into fields.
	Raw string `json:"raw,omitempty"`
}

// QuarantineReport is the structured outcome of a lenient read: how many
// rows were skipped and a capped sample of them. A nil report (strict mode)
// and an empty report (lenient, clean file) both mean nothing was skipped.
type QuarantineReport struct {
	// BadRows is the exact number of quarantined rows.
	BadRows int `json:"bad_rows"`
	// Rows is the kept sample, in file order, capped at SampleCap.
	Rows []QuarantinedRow `json:"rows,omitempty"`
}

// Empty reports whether nothing was quarantined.
func (q *QuarantineReport) Empty() bool { return q == nil || q.BadRows == 0 }

// String renders a one-line summary.
func (q *QuarantineReport) String() string {
	if q.Empty() {
		return "0 rows quarantined"
	}
	return fmt.Sprintf("%d row(s) quarantined (first: line %d, %s: %s)",
		q.BadRows, q.Rows[0].Line, q.Rows[0].Field, q.Rows[0].Reason)
}

// BadRowBudgetError aborts a lenient read whose quarantine outgrew the
// configured budget: a file this dirty is more likely the wrong file than a
// damaged one, and silently skipping most of it would fabricate a dataset.
type BadRowBudgetError struct {
	// Budget is the configured MaxBadRows.
	Budget int
	// Report is the quarantine state at abort time (Budget+1 bad rows).
	Report *QuarantineReport
}

// Error implements the error interface.
func (e *BadRowBudgetError) Error() string {
	return fmt.Sprintf("trace: bad-row budget exhausted: %s, budget %d", e.Report, e.Budget)
}

// quarantine records one bad row, enforcing the sample cap and the budget.
// It returns the budget error once the count passes MaxBadRows.
func (opts *ReadCSVOptions) quarantine(q *QuarantineReport, row QuarantinedRow) error {
	q.BadRows++
	keep := opts.SampleCap
	if keep <= 0 {
		keep = DefaultQuarantineSample
	}
	if len(q.Rows) < keep {
		const rawCap = 80
		if len(row.Raw) > rawCap {
			row.Raw = row.Raw[:rawCap] + "..."
		}
		q.Rows = append(q.Rows, row)
	}
	if opts.MaxBadRows > 0 && q.BadRows > opts.MaxBadRows {
		return &BadRowBudgetError{Budget: opts.MaxBadRows, Report: q}
	}
	return nil
}

// ReadCSVOpts is the configurable CSV reader behind ReadCSV/ReadCSVHint.
// In strict mode (the default) it behaves exactly like ReadCSVHint: the
// first malformed row aborts the read, and the returned report is nil. In
// lenient mode malformed rows are skipped into the returned
// QuarantineReport — the paper's real-world corpora are full of gap-ridden
// records, and a longitudinal pipeline must survive them — up to the
// MaxBadRows budget. Well-formed rows parse identically in both modes.
func ReadCSVOpts(name string, r io.Reader, opts ReadCSVOptions) (*Dataset, *QuarantineReport, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if errors.Is(err, io.EOF) {
		return nil, nil, errors.New("trace: empty CSV")
	}
	if err != nil {
		return nil, nil, fmt.Errorf("trace: read CSV header: %w", err)
	}
	if len(header) != len(csvHeader) || header[0] != csvHeader[0] || header[1] != csvHeader[1] {
		return nil, nil, fmt.Errorf("trace: unexpected CSV header %v", header)
	}
	out := &Dataset{Name: name}
	if opts.PostHint > 0 {
		out.Posts = make([]Post, 0, opts.PostHint)
	}
	var report *QuarantineReport
	if opts.Lenient {
		report = &QuarantineReport{}
	}
	intern := make(map[string]string)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			if !opts.Lenient {
				return nil, nil, fmt.Errorf("trace: read CSV line %d: %w", line, err)
			}
			if qerr := opts.quarantine(report, QuarantinedRow{Line: line, Field: "record", Reason: err.Error()}); qerr != nil {
				return nil, report, qerr
			}
			continue
		}
		ts, err := parseRFC3339(rec[1])
		if err != nil {
			if !opts.Lenient {
				return nil, nil, fmt.Errorf("trace: parse time on line %d: %w", line, err)
			}
			// Clone the sample: rec aliases the reader's reusable record
			// buffer, and the report outlives this iteration.
			if qerr := opts.quarantine(report, QuarantinedRow{Line: line, Field: csvHeader[1], Reason: err.Error(), Raw: strings.Clone(rec[1])}); qerr != nil {
				return nil, report, qerr
			}
			continue
		}
		// Intern the user ID: csv fields are substrings of a fresh per-row
		// string (safe to retain even with ReuseRecord), and the map keeps
		// one string per distinct user rather than one per row.
		id, ok := intern[rec[0]]
		if !ok {
			id = rec[0]
			intern[id] = id
		}
		out.Posts = append(out.Posts, Post{UserID: id, Time: ts})
	}
	return out, report, nil
}

// parseRFC3339 parses an RFC3339 timestamp and normalizes it to UTC. The
// overwhelmingly common shape in our files — "2006-01-02T15:04:05Z",
// exactly what WriteCSV emits — is decoded with integer arithmetic; any
// other shape falls back to time.Parse so accepted inputs and error
// behavior match the stdlib exactly.
func parseRFC3339(s string) (time.Time, error) {
	sec, ts, fast, err := parseStamp(s)
	if err != nil {
		return time.Time{}, err
	}
	if fast {
		return time.Unix(sec, 0).UTC(), nil
	}
	return ts, nil
}

// ParseStamp parses an RFC3339 timestamp from a byte slice without
// allocating: fast reports that the instant is the whole second sec —
// exactly time.Unix(sec, 0).UTC() — while the fallback path returns the
// stdlib-parsed, UTC-normalized ts. Exported for the streaming daemon's
// zero-alloc NDJSON ingest decoder; accepted inputs and error behaviour
// match time.Parse(time.RFC3339, ...) exactly.
func ParseStamp(s []byte) (sec int64, ts time.Time, fast bool, err error) {
	return parseStamp(s)
}

// parseStamp is the RFC3339 scanner shared by the sequential reader
// (strings) and the sharded parallel reader (byte slices without a
// per-row string allocation). fast reports that the instant is the whole
// second sec — exactly time.Unix(sec, 0).UTC() — while the fallback path
// returns the stdlib-parsed, UTC-normalized ts.
func parseStamp[T ~string | ~[]byte](s T) (sec int64, ts time.Time, fast bool, err error) {
	if len(s) == 20 && s[4] == '-' && s[7] == '-' && s[10] == 'T' &&
		s[13] == ':' && s[16] == ':' && s[19] == 'Z' {
		year, ok1 := atoi4(s, 0)
		month, ok2 := atoi2(s, 5)
		day, ok3 := atoi2(s, 8)
		hour, ok4 := atoi2(s, 11)
		min, ok5 := atoi2(s, 14)
		secs, ok6 := atoi2(s, 17)
		if ok1 && ok2 && ok3 && ok4 && ok5 && ok6 &&
			month >= 1 && month <= 12 && day >= 1 && day <= daysIn(year, month) &&
			hour <= 23 && min <= 59 && secs <= 59 {
			return unixFromCivil(year, month, day) + int64(hour)*3600 + int64(min)*60 + int64(secs), time.Time{}, true, nil
		}
	}
	ts, err = time.Parse(time.RFC3339, string(s))
	if err != nil {
		return 0, time.Time{}, false, err
	}
	return 0, ts.UTC(), false, nil
}

func atoi2[T ~string | ~[]byte](s T, i int) (int, bool) {
	a, b := s[i]-'0', s[i+1]-'0'
	if a > 9 || b > 9 {
		return 0, false
	}
	return int(a)*10 + int(b), true
}

func atoi4[T ~string | ~[]byte](s T, i int) (int, bool) {
	hi, ok1 := atoi2(s, i)
	lo, ok2 := atoi2(s, i+2)
	return hi*100 + lo, ok1 && ok2
}

func daysIn(year, month int) int {
	switch month {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	}
	if year%4 == 0 && (year%100 != 0 || year%400 == 0) {
		return 29
	}
	return 28
}

// appendRFC3339 appends t in UTC as RFC3339, producing the same bytes as
// t.UTC().Format(time.RFC3339). Whole-second instants in years 0000-9999 —
// every timestamp this package produces — take an integer fast path; the
// rest fall back to AppendFormat.
func appendRFC3339(buf []byte, t time.Time) []byte {
	sec := t.Unix()
	if t.Nanosecond() == 0 {
		days := sec / 86400
		rem := sec % 86400
		if rem < 0 {
			days--
			rem += 86400
		}
		year, month, day := civilFromDays(days)
		if year >= 0 && year <= 9999 {
			buf = appendDigits4(buf, int(year))
			buf = append(buf, '-')
			buf = appendDigits2(buf, month)
			buf = append(buf, '-')
			buf = appendDigits2(buf, day)
			buf = append(buf, 'T')
			buf = appendDigits2(buf, int(rem/3600))
			buf = append(buf, ':')
			buf = appendDigits2(buf, int(rem/60%60))
			buf = append(buf, ':')
			buf = appendDigits2(buf, int(rem%60))
			return append(buf, 'Z')
		}
	}
	return t.UTC().AppendFormat(buf, time.RFC3339)
}

func appendDigits2(buf []byte, v int) []byte {
	return append(buf, byte('0'+v/10), byte('0'+v%10))
}

func appendDigits4(buf []byte, v int) []byte {
	return append(appendDigits2(buf, v/100), byte('0'+v/10%10), byte('0'+v%10))
}

// civilFromDays is the inverse of unixFromCivil: Unix day number to
// proleptic-Gregorian (year, month, day), via Hinnant's civil-from-days.
func civilFromDays(z int64) (year int64, month, day int) {
	z += 719468
	era := z / 146097
	if z < 0 {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	day = int(doy - (153*mp+2)/5 + 1)
	month = int(mp) + 3
	if mp >= 10 {
		month = int(mp) - 9
	}
	year = yoe + era*400
	if month <= 2 {
		year++
	}
	return year, month, day
}

// unixFromCivil converts a proleptic-Gregorian UTC calendar date to Unix
// days*86400 using Howard Hinnant's days-from-civil algorithm.
func unixFromCivil(year, month, day int) int64 {
	y := int64(year)
	if month <= 2 {
		y--
	}
	var era int64
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400 // [0, 399]
	var mp int64
	if month > 2 {
		mp = int64(month) - 3
	} else {
		mp = int64(month) + 9
	}
	doy := (153*mp+2)/5 + int64(day) - 1   // [0, 365]
	doe := yoe*365 + yoe/4 - yoe/100 + doy // [0, 146096]
	days := era*146097 + doe - 719468      // days since 1970-01-01
	return days * 86400
}

// Summary holds headline statistics of a dataset.
type Summary struct {
	Name      string
	Users     int
	Posts     int
	First     time.Time
	Last      time.Time
	MeanPosts float64
}

// Summarize computes a dataset's Summary.
func (d *Dataset) Summarize() Summary {
	s := Summary{Name: d.Name, Posts: len(d.Posts)}
	users := d.Users()
	s.Users = len(users)
	if s.Users > 0 {
		s.MeanPosts = float64(s.Posts) / float64(s.Users)
	}
	if first, last, ok := d.TimeRange(); ok {
		s.First, s.Last = first, last
	}
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("%s: %d users, %d posts (%.1f posts/user), %s .. %s",
		s.Name, s.Users, s.Posts, s.MeanPosts,
		s.First.Format("2006-01-02"), s.Last.Format("2006-01-02"))
}

// Subsample keeps each post independently with the given probability,
// deterministically under the seed — used to study how the methodology
// degrades as data thins out. Ground truth is carried over unchanged.
func (d *Dataset) Subsample(prob float64, seed int64) (*Dataset, error) {
	if prob < 0 || prob > 1 {
		return nil, fmt.Errorf("trace: subsample probability %g outside [0,1]", prob)
	}
	rng := rand.New(rand.NewSource(seed))
	out := &Dataset{Name: d.Name, GroundTruth: copyGroundTruth(d.GroundTruth)}
	for _, p := range d.Posts {
		if rng.Float64() < prob {
			out.Posts = append(out.Posts, p)
		}
	}
	return out, nil
}
