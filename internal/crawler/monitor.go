package crawler

import (
	"context"
	"fmt"
	"html"
	"strconv"
	"time"

	"darkcrowd/internal/trace"
)

// Monitor implements the §VII fallback for forums that remove timestamps
// to protect their users:
//
//	"This is actually not stopping our methodology — it is enough to
//	monitor the forum, see when posts are made and timestamp them
//	ourselves. ... One might need to monitor a sufficiently large number
//	of days, depending on the frequency of the posts, in order to collect
//	30 post per user or more necessary to build meaningful profiles."
//
// Each Poll sweeps the whole forum, diffs the post IDs against what was
// seen before, and records every new post with the *observer's* UTC clock
// as its timestamp. No server-offset probe is needed: the observer's own
// clock is already UTC. The accumulated dataset feeds the geolocation
// pipeline exactly like a scraped one.
type Monitor struct {
	// Crawler performs the page fetches (and carries the HTTP client, so
	// monitoring works through the onion network too).
	Crawler *Crawler
	// Clock supplies observation timestamps. Defaults to time.Now. Tests
	// and simulations drive it to compress months into milliseconds.
	Clock func() time.Time

	seen    map[int]bool
	dataset *trace.Dataset
	// FirstSweepBaseline controls whether the posts found by the very
	// first Poll are recorded (false, the default) or only used to seed
	// the seen-set (true). Pre-existing posts have unknown true times, so
	// treating the first sweep as a baseline is almost always right.
	FirstSweepBaseline bool
	polls              int
}

// NewMonitor creates a monitor accumulating into a dataset with the given
// name.
func NewMonitor(c *Crawler, datasetName string) *Monitor {
	return &Monitor{
		Crawler:            c,
		seen:               make(map[int]bool),
		dataset:            &trace.Dataset{Name: datasetName},
		FirstSweepBaseline: true,
	}
}

// Dataset returns the accumulated observations (live view, not a copy).
func (m *Monitor) Dataset() *trace.Dataset { return m.dataset }

// Polls returns how many sweeps have run.
func (m *Monitor) Polls() int { return m.polls }

func (m *Monitor) now() time.Time {
	if m.Clock != nil {
		return m.Clock().UTC()
	}
	return time.Now().UTC()
}

// Poll runs PollContext with a background context.
func (m *Monitor) Poll() (int, error) {
	return m.PollContext(context.Background())
}

// PollContext sweeps every thread page of the forum once and records
// posts not seen before, timestamped with the observer's clock. It
// returns the number of new posts observed. Fetches inherit the
// crawler's robustness layer (timeouts, retries, politeness).
func (m *Monitor) PollContext(ctx context.Context) (int, error) {
	observedAt := m.now()
	baseline := m.polls == 0 && m.FirstSweepBaseline
	m.polls++

	index, err := m.Crawler.get(ctx, "/")
	if err != nil {
		return 0, fmt.Errorf("crawler: monitor index sweep: %w", err)
	}
	newPosts := 0
	seenThreads := map[string]bool{}
	for _, bm := range boardLinkRe.FindAllStringSubmatch(index, -1) {
		boardPage, err := m.Crawler.get(ctx, "/board?id="+bm[1])
		if err != nil {
			return newPosts, err
		}
		for _, tm := range threadLinkRe.FindAllStringSubmatch(boardPage, -1) {
			if seenThreads[tm[1]] {
				continue
			}
			seenThreads[tm[1]] = true
			n, err := m.pollThread(ctx, tm[1], observedAt, baseline)
			if err != nil {
				return newPosts, err
			}
			newPosts += n
		}
	}
	return newPosts, nil
}

// pollThread walks one thread's pages, recording unseen posts.
func (m *Monitor) pollThread(ctx context.Context, threadID string, observedAt time.Time, baseline bool) (int, error) {
	newPosts := 0
	for page := 0; ; page++ {
		body, err := m.Crawler.get(ctx, fmt.Sprintf("/thread?id=%s&page=%d", threadID, page))
		if err != nil {
			return newPosts, err
		}
		for _, pm := range postRe.FindAllStringSubmatch(body, -1) {
			id, err := strconv.Atoi(pm[1])
			if err != nil {
				return newPosts, fmt.Errorf("crawler: monitor: bad post id %q: %w", pm[1], err)
			}
			if m.seen[id] {
				continue
			}
			m.seen[id] = true
			author := html.UnescapeString(pm[2])
			if author == ProbeAuthor {
				continue
			}
			if baseline {
				continue
			}
			m.dataset.Posts = append(m.dataset.Posts, trace.Post{
				UserID: author,
				Time:   observedAt,
			})
			newPosts++
		}
		pg := pagesRe.FindStringSubmatch(body)
		if pg == nil {
			return newPosts, fmt.Errorf("crawler: monitor: thread %s page %d has no page count", threadID, page)
		}
		total, err := strconv.Atoi(pg[1])
		if err != nil {
			return newPosts, fmt.Errorf("crawler: monitor: bad page count %q: %w", pg[1], err)
		}
		if page >= total-1 {
			return newPosts, nil
		}
	}
}
