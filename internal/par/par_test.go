package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	t.Parallel()
	if got := Workers(0, 1000); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 1000) = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3, 1000); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3, 1000) = %d", got)
	}
	if got := Workers(7, 1000); got != 7 {
		t.Errorf("Workers(7, 1000) = %d", got)
	}
	if got := Workers(7, 3); got != 3 {
		t.Errorf("Workers(7, 3) = %d, want clamp to items", got)
	}
	if got := Workers(7, 0); got != 1 {
		t.Errorf("Workers(7, 0) = %d, want 1", got)
	}
}

func TestRangesCoversEveryItemExactlyOnce(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		const n = 137
		visits := make([]int32, n)
		err := Ranges(context.Background(), workers, n, func(start, end int) error {
			for i := start; i < end; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestRangesEmpty(t *testing.T) {
	t.Parallel()
	called := false
	if err := Ranges(context.Background(), 4, 0, func(start, end int) error {
		called = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called for n=0")
	}
}

func TestRangesNilContext(t *testing.T) {
	t.Parallel()
	if err := Ranges(nil, 2, 10, func(start, end int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRangesLowestShardErrorWins(t *testing.T) {
	t.Parallel()
	errLow := errors.New("low shard")
	errHigh := errors.New("high shard")
	// Every shard fails; the lowest-indexed shard's error must be returned
	// deterministically on every run.
	for trial := 0; trial < 20; trial++ {
		err := Ranges(context.Background(), 8, 64, func(start, end int) error {
			if start == 0 {
				return errLow
			}
			return errHigh
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want lowest shard error", trial, err)
		}
	}
}

func TestRangesCancelledContext(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Ranges(ctx, 1, 10, func(start, end int) error {
		t.Error("fn ran despite cancelled context on sequential path")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
	// Parallel path: fn may run, but the error must surface.
	err = Ranges(ctx, 4, 10, func(start, end int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("parallel: got %v, want context.Canceled", err)
	}
}
