package profile

import (
	"context"
	"fmt"
	"sort"

	"darkcrowd/internal/par"
	"darkcrowd/internal/stats"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

// Generic-profile construction (§IV, Fig. 2b). The paper observes that
// once country crowds are shifted to a common time zone their profiles are
// nearly identical (Pearson ~ 0.9), so a single "generic profile" built on
// the whole labelled dataset serves as the reference pattern for *every*
// time zone: "we can easily build the profile for every region, even those
// not present in Table I, by just shifting the generic profile".

// RegionResolver maps a ground-truth region code to its tz.Region.
type RegionResolver func(code string) (tz.Region, error)

// CatalogueResolver resolves codes against the built-in tz catalogue.
func CatalogueResolver() RegionResolver {
	return tz.ByCode
}

// GenericOptions configures BuildGeneric.
type GenericOptions struct {
	// MinPosts is the active-user threshold (default 30).
	MinPosts int
	// Resolver maps ground-truth codes to regions
	// (default: the tz catalogue).
	Resolver RegionResolver
	// SkipHolidayFilter disables per-region holiday removal.
	SkipHolidayFilter bool
	// Parallelism is the number of workers building per-region profiles:
	// 0 uses every core (GOMAXPROCS), 1 forces the sequential path. The
	// per-region results are merged in sorted-code order, so the generic
	// profile is bit-identical for every setting.
	Parallelism int
	// Context, when non-nil, cancels a long build between regions.
	Context context.Context
}

// GenericResult is the outcome of BuildGeneric.
type GenericResult struct {
	// Generic is the local-frame population profile over all users.
	Generic Profile
	// PerRegion holds each region's local-frame population profile, keyed
	// by region code.
	PerRegion map[string]Profile
	// UserProfiles holds every active user's local-frame profile.
	UserProfiles map[string]Profile
	// ActiveUsers counts active (threshold-surviving) users per region
	// code — the Table I quantity.
	ActiveUsers map[string]int
}

// BuildGeneric builds the generic local-frame profile from a labelled
// dataset: every user's posts are bucketed by their region's DST-aware
// local hour, holidays are filtered on the region's calendar, users below
// the post threshold are dropped, and the surviving profiles are
// aggregated.
//
// Regions build concurrently (opts.Parallelism workers), each into its own
// slot of a code-ordered result slice; the cross-region aggregation then
// runs on one goroutine in sorted-code order. Besides enabling parallelism,
// the ordered merge makes the generic profile bit-deterministic — the
// previous map-iteration loop summed user profiles in a random order, so
// the aggregate drifted at the last-ulp level between runs.
func BuildGeneric(ds *trace.Dataset, opts GenericOptions) (*GenericResult, error) {
	if len(ds.GroundTruth) == 0 {
		return nil, fmt.Errorf("profile: dataset %q has no ground truth labels", ds.Name)
	}
	if opts.MinPosts == 0 {
		opts.MinPosts = DefaultMinPosts
	}
	if opts.Resolver == nil {
		opts.Resolver = CatalogueResolver()
	}

	// Group users by region code.
	usersByRegion := make(map[string][]string)
	for user, code := range ds.GroundTruth {
		usersByRegion[code] = append(usersByRegion[code], user)
	}
	codes := make([]string, 0, len(usersByRegion))
	for code := range usersByRegion {
		codes = append(codes, code)
	}
	sort.Strings(codes)

	// regionBuild is one region's shard result: the code-ordered slice slot
	// it fills is the only state a worker touches.
	type regionBuild struct {
		ok       bool      // region survived (has active users)
		ids      []string  // sorted active-user IDs
		profiles []Profile // their profiles, same order
		region   Profile   // the aggregated region profile
	}
	builds := make([]regionBuild, len(codes))
	err := par.Ranges(opts.Context, opts.Parallelism, len(codes), func(start, end int) error {
		for i := start; i < end; i++ {
			code := codes[i]
			region, err := opts.Resolver(code)
			if err != nil {
				return fmt.Errorf("profile: resolve region for code %q: %w", code, err)
			}
			users := usersByRegion[code]
			inRegion := make(map[string]bool, len(users))
			for _, u := range users {
				inRegion[u] = true
			}
			sub := ds.FilterUsers(func(u string) bool { return inRegion[u] })
			if !opts.SkipHolidayFilter {
				sub = RemoveHolidays(sub, region)
			}
			userProfiles, err := BuildUserProfiles(sub, BuildOptions{
				MinPosts:    opts.MinPosts,
				Cells:       LocalCells(region),
				Parallelism: opts.Parallelism,
				Context:     opts.Context,
			})
			if err != nil {
				continue // region has no active users; skip it
			}
			b := regionBuild{ids: SortedUserIDs(userProfiles)}
			for _, id := range b.ids {
				b.profiles = append(b.profiles, userProfiles[id])
			}
			regionProfile, err := Aggregate(b.profiles)
			if err != nil {
				continue
			}
			b.region = regionProfile
			b.ok = true
			builds[i] = b
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &GenericResult{
		PerRegion:    make(map[string]Profile),
		UserProfiles: make(map[string]Profile),
		ActiveUsers:  make(map[string]int),
	}
	var all []Profile
	for i, code := range codes {
		b := builds[i]
		if !b.ok {
			continue
		}
		for j, id := range b.ids {
			res.UserProfiles[id] = b.profiles[j]
		}
		all = append(all, b.profiles...)
		res.PerRegion[code] = b.region
		res.ActiveUsers[code] = len(b.ids)
	}
	generic, err := Aggregate(all)
	if err != nil {
		return nil, fmt.Errorf("profile: aggregate generic profile: %w", err)
	}
	res.Generic = generic
	return res, nil
}

// PolishResult reports the outcome of flat-profile polishing.
type PolishResult struct {
	// Kept maps surviving users to their profiles.
	Kept map[string]Profile
	// Removed lists the users discarded as flat, in removal order.
	Removed []string
	// Iterations is the number of polish passes run.
	Iterations int
}

// Polish implements the iterative flat-profile removal of §IV-C: a user is
// discarded when their profile is closer (under the circular EMD) to the
// artificial uniform 1/24 profile than to every one of the 24 time-zone
// reference profiles derived from the generic profile. Because removing
// users does not change the reference profiles but the paper applies the
// procedure "in an iterative way to polish all the generic timezone
// profiles", Polish optionally rebuilds the generic profile from the kept
// users after each pass when rebuild is true.
func Polish(profiles map[string]Profile, generic Profile, rebuild bool) (*PolishResult, error) {
	kept := make(map[string]Profile, len(profiles))
	for id, p := range profiles {
		kept[id] = p
	}
	res := &PolishResult{}
	uniform := Uniform()

	// One all-rotations kernel call per user replaces the former 24
	// independent p.EMD(zone) calls; the distance, rotation, and workspace
	// buffers are reused across every user and pass.
	dists := make([]float64, tz.HoursPerDay)
	rot := make([]float64, tz.HoursPerDay)
	scratch := make([]float64, 2*tz.HoursPerDay)

	const maxIterations = 10
	for iter := 0; iter < maxIterations; iter++ {
		res.Iterations = iter + 1
		var removedThisPass []string
		for _, id := range SortedUserIDs(kept) {
			p := kept[id]
			flat, err := isFlat(p, uniform, generic, dists, rot, scratch)
			if err != nil {
				return nil, fmt.Errorf("profile: polish user %q: %w", id, err)
			}
			if flat {
				removedThisPass = append(removedThisPass, id)
			}
		}
		for _, id := range removedThisPass {
			delete(kept, id)
			res.Removed = append(res.Removed, id)
		}
		if len(removedThisPass) == 0 {
			break
		}
		if !rebuild || len(kept) == 0 {
			break
		}
		// Rebuild the generic profile from the kept users, aligning each
		// user to its best zone so profiles from different zones stack.
		var aligned []Profile
		for _, id := range SortedUserIDs(kept) {
			p := kept[id]
			if err := zoneDistances(p, generic, dists, rot, scratch); err != nil {
				return nil, err
			}
			aligned = append(aligned, p.ToLocal(OffsetOf(nearestZone(dists))))
		}
		g, err := Aggregate(aligned)
		if err != nil {
			return nil, fmt.Errorf("profile: rebuild generic during polish: %w", err)
		}
		generic = g
	}
	res.Kept = kept
	return res, nil
}

// zoneDistances fills dists[zi] with the circular EMD between p and the
// zone-zi reference profile derived from generic, for all 24 zones, using
// one EMDCircularAllRotations call. ZoneProfile(generic, off) is
// generic.Shift(-off), i.e. the rotation q_r of generic with r = off mod
// 24; with off = zi + tz.MinOffset the kernel's out[r] lands at
// dists[zi] = out[(zi + MinOffset) mod 24]. Each value is bit-identical to
// p.EMD(ZoneProfiles(generic)[zi]) — the kernel keeps EMDCircular's exact
// accumulation order and Shift copies values without arithmetic.
//
// dists and rot must hold 24 floats, scratch 48; all three are reused
// across calls.
func zoneDistances(p, generic Profile, dists, rot, scratch []float64) error {
	rot, err := stats.EMDCircularAllRotations(p[:], generic[:], rot, scratch)
	if err != nil {
		return err
	}
	for zi := 0; zi < tz.HoursPerDay; zi++ {
		dists[zi] = rot[(zi+int(tz.MinOffset)+tz.HoursPerDay)%tz.HoursPerDay]
	}
	return nil
}

// isFlat reports whether p is EMD-closer to the uniform profile than to
// every zone profile derived from generic.
func isFlat(p, uniform, generic Profile, dists, rot, scratch []float64) (bool, error) {
	dUniform, err := stats.EMDCircularScratch(p[:], uniform[:], scratch)
	if err != nil {
		return false, err
	}
	if err := zoneDistances(p, generic, dists, rot, scratch); err != nil {
		return false, err
	}
	for _, dz := range dists {
		if dz <= dUniform {
			return false, nil
		}
	}
	return true, nil
}

// nearestZone returns the zone index with minimal distance, breaking ties
// toward the lower index (strict less-than scan, matching the historical
// per-zone loop).
func nearestZone(dists []float64) int {
	best := 0
	for zi := 1; zi < len(dists); zi++ {
		if dists[zi] < dists[best] {
			best = zi
		}
	}
	return best
}
