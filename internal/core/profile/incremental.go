package profile

// Incremental profile accumulation for the streaming ingest daemon. The
// batch builder (BuildUserProfiles) derives each user's Eq. 1 profile from
// scratch: sort the packed epochDay*24+h cell keys, count distinct cells
// per hour, divide. Accumulator maintains exactly those integer counts
// post-by-post — a per-user set of seen cells, the per-hour distinct-cell
// tally, and the distinct total — so the profile it emits divides the same
// integers as fromCellKeys and is therefore bit-identical to the batch
// build over the same posts, in any arrival order.
//
// Accumulator is not goroutine-safe; the daemon serializes access under
// its state lock.

// userCells is one user's running cell tally.
type userCells struct {
	posts    int             // raw post count (the MinPosts threshold input)
	cells    map[int64]int32 // packed cell key -> posts seen in that cell
	hours    [HoursPerDay]int32
	distinct int    // number of distinct cells = sum(hours)
	version  uint64 // bumped whenever the profile's value changes
}

// Accumulator builds Eq. 1 user profiles incrementally, one post at a
// time. The zero value is not usable; construct with NewAccumulator.
type Accumulator struct {
	minPosts int
	users    map[string]*userCells
	posts    int
}

// NewAccumulator returns an empty accumulator with the given active-user
// threshold (0 = DefaultMinPosts, matching BuildOptions.MinPosts).
func NewAccumulator(minPosts int) *Accumulator {
	if minPosts == 0 {
		minPosts = DefaultMinPosts
	}
	return &Accumulator{minPosts: minPosts, users: make(map[string]*userCells)}
}

// MinPosts returns the active-user threshold.
func (a *Accumulator) MinPosts() int { return a.minPosts }

// Add records one post by userID at the given Unix second (UTC cell frame,
// like the batch builder's default). It reports whether the user's profile
// changed value — i.e. the post opened a previously unseen (day, hour)
// activity cell; duplicate cells change only the post count.
func (a *Accumulator) Add(userID string, unixSec int64) bool {
	uc := a.users[userID]
	if uc == nil {
		uc = &userCells{cells: make(map[int64]int32)}
		a.users[userID] = uc
	}
	return a.add(uc, unixSec)
}

// AddBytes is Add for callers holding the user ID as a byte slice (the
// daemon's NDJSON fast path): the map lookup elides the []byte→string
// conversion, so the ID is only copied when the user is new.
func (a *Accumulator) AddBytes(userID []byte, unixSec int64) bool {
	uc := a.users[string(userID)]
	if uc == nil {
		uc = &userCells{cells: make(map[int64]int32)}
		a.users[string(userID)] = uc
	}
	return a.add(uc, unixSec)
}

func (a *Accumulator) add(uc *userCells, unixSec int64) bool {
	uc.posts++
	a.posts++
	hour, day := cellOfUnix(unixSec)
	key := cellKey(hour, day)
	uc.cells[key]++
	if uc.cells[key] > 1 {
		return false
	}
	uc.hours[hour]++
	uc.distinct++
	uc.version++
	return true
}

// Posts returns userID's raw post count (0 for unknown users).
func (a *Accumulator) Posts(userID string) int {
	if uc := a.users[userID]; uc != nil {
		return uc.posts
	}
	return 0
}

// Version returns userID's profile version: it changes exactly when the
// profile's value does, so (userID, version) keys derived results such as
// cached zone placements. Unknown users have version 0.
func (a *Accumulator) Version(userID string) uint64 {
	if uc := a.users[userID]; uc != nil {
		return uc.version
	}
	return 0
}

// TotalPosts returns the number of posts recorded so far.
func (a *Accumulator) TotalPosts() int { return a.posts }

// NumUsers returns the number of distinct users seen so far.
func (a *Accumulator) NumUsers() int { return len(a.users) }

// Active reports whether userID has reached the active-user threshold.
func (a *Accumulator) Active(userID string) bool {
	uc := a.users[userID]
	return uc != nil && uc.posts >= a.minPosts
}

func (uc *userCells) profile() Profile {
	var p Profile
	total := float64(uc.distinct)
	for h := range p {
		p[h] = float64(uc.hours[h]) / total
	}
	return p
}

// ProfileOf returns userID's current profile. ok is false for unknown
// users and users below the active threshold — the same users
// BuildUserProfiles would drop.
func (a *Accumulator) ProfileOf(userID string) (Profile, bool) {
	uc := a.users[userID]
	if uc == nil || uc.posts < a.minPosts || uc.distinct == 0 {
		return Profile{}, false
	}
	return uc.profile(), true
}

// ActiveProfiles snapshots the profiles (and their versions) of every
// active user. The result is bit-identical to
// BuildUserProfiles(batch-of-the-same-posts, BuildOptions{MinPosts: ...}):
// both divide the same per-hour distinct-cell integers by the same total.
func (a *Accumulator) ActiveProfiles() (map[string]Profile, map[string]uint64) {
	profiles := make(map[string]Profile)
	versions := make(map[string]uint64)
	for id, uc := range a.users {
		if uc.posts < a.minPosts || uc.distinct == 0 {
			continue
		}
		profiles[id] = uc.profile()
		versions[id] = uc.version
	}
	return profiles, versions
}
