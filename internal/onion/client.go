package onion

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Client is a Tor user: it builds three-hop circuits, fetches hidden-
// service descriptors, runs the rendezvous protocol and exposes ordinary
// net.Conn dialing to both hidden services and registered external
// destinations (§II-A/B).
type Client struct {
	ep *endpoint

	mu sync.Mutex
	// rendCircs caches one joined rendezvous circuit per onion address so
	// that multiple connections reuse it, like Tor reuses circuits.
	rendCircs map[string]*circuit
	// exitCircs caches one general-purpose exit circuit for external
	// destinations.
	exitCirc *circuit
	closed   bool
	// bridge, when set, replaces the directory-picked guard on every
	// circuit.
	bridge string
	// guard is the client's persistent entry relay (§II-A: "the guard is
	// the only relay that communicates with the user"); picked lazily on
	// the first circuit and reused for every later one.
	guard string
}

// NewClient attaches a client with the given identifier to the network.
func NewClient(n *Network, id string) (*Client, error) {
	ep, err := newEndpoint(n, id)
	if err != nil {
		return nil, err
	}
	return &Client{ep: ep, rendCircs: make(map[string]*circuit)}, nil
}

// NewClientWithBridge attaches a client that enters the network through an
// unlisted bridge relay instead of a directory guard (§II-A). All of the
// client's circuits use the bridge as their first hop.
func NewClientWithBridge(n *Network, id, bridge string) (*Client, error) {
	c, err := NewClient(n, id)
	if err != nil {
		return nil, err
	}
	c.bridge = bridge
	return c, nil
}

// Close tears down the client's circuits and detaches it.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.ep.stop()
}

// FetchDescriptor looks a hidden service up through its responsible
// HSDirs, verifying the signature.
func (c *Client) FetchDescriptor(onion string) (*Descriptor, error) {
	dirs, err := c.ep.net.directory.HSDirs(onion, hsDirReplicas)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for _, dir := range dirs {
		c.ep.net.mu.RLock()
		nd := c.ep.net.nodes[dir]
		c.ep.net.mu.RUnlock()
		relay, ok := nd.(*Relay)
		if !ok {
			continue
		}
		desc, err := relay.FetchDescriptor(onion)
		if err != nil {
			lastErr = err
			continue
		}
		if err := desc.Verify(); err != nil {
			lastErr = err
			continue
		}
		return desc, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("onion: no HSDir holds %q", onion)
	}
	return nil, lastErr
}

// Dial connects to an address: a ".onion" hostname is reached via the
// rendezvous protocol, anything else through an exit circuit to a
// registered external destination. Port suffixes are accepted and ignored
// (the simulated fabric has no ports).
func (c *Client) Dial(address string) (net.Conn, error) {
	host := address
	if h, _, err := net.SplitHostPort(address); err == nil {
		host = h
	}
	if strings.HasSuffix(host, OnionSuffix) {
		return c.dialOnion(host)
	}
	return c.dialExternal(host)
}

// DialContext adapts Dial for http.Transport.
func (c *Client) DialContext(ctx context.Context, _, address string) (net.Conn, error) {
	type result struct {
		conn net.Conn
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		conn, err := c.Dial(address)
		ch <- result{conn, err}
	}()
	select {
	case r := <-ch:
		return r.conn, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// dialOnion reaches a hidden service: descriptor fetch, rendezvous
// establishment, introduction, then a stream on the joined circuit. Any
// dial failure — a dead cached circuit, a lost BEGIN, a connect timeout
// because the service's leg of the rendezvous died — evicts the cached
// circuit and retries once on a fresh rendezvous. (A circuit can look
// healthy from the client's side while its far leg is gone, so eviction
// must cover connect timeouts, not just stream-allocation failures.)
func (c *Client) dialOnion(onion string) (net.Conn, error) {
	conn, circ, err := c.dialOnionOnce(onion)
	if err == nil {
		return conn, nil
	}
	c.evictRendCirc(onion, circ)
	conn, _, retryErr := c.dialOnionOnce(onion)
	if retryErr != nil {
		return nil, fmt.Errorf("onion: dial %q failed and retry failed (%v): %w", onion, retryErr, err)
	}
	return conn, nil
}

// evictRendCirc drops a rendezvous circuit from the cache (if still
// cached) and tears it down.
func (c *Client) evictRendCirc(onion string, circ *circuit) {
	if circ == nil {
		return
	}
	c.mu.Lock()
	if c.rendCircs[onion] == circ {
		delete(c.rendCircs, onion)
	}
	c.mu.Unlock()
	circ.teardown()
}

// dialOnionOnce performs a single dial attempt; on failure it returns
// the circuit involved (if any) so the caller can evict it.
func (c *Client) dialOnionOnce(onion string) (net.Conn, *circuit, error) {
	circ, err := c.rendezvousCircuit(onion)
	if err != nil {
		return nil, nil, err
	}
	stream, err := circ.allocStream()
	if err != nil {
		return nil, circ, err
	}
	if err := circ.sendForward(relayMsg{Cmd: relayBegin, Stream: stream.id}); err != nil {
		stream.remoteClose()
		return nil, circ, err
	}
	if err := stream.waitConnected(c.ep.net.controlDeadline()); err != nil {
		stream.remoteClose()
		return nil, circ, err
	}
	return stream, circ, nil
}

// rendezvousCircuit returns (building if needed) the joined rendezvous
// circuit for an onion address.
func (c *Client) rendezvousCircuit(onion string) (*circuit, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("onion: client closed")
	}
	if circ, ok := c.rendCircs[onion]; ok {
		c.mu.Unlock()
		return circ, nil
	}
	c.mu.Unlock()

	desc, err := c.FetchDescriptor(onion)
	if err != nil {
		return nil, err
	}
	if len(desc.IntroPoints) == 0 {
		return nil, fmt.Errorf("onion: descriptor for %q lists no introduction points", onion)
	}

	// Choose and establish the rendezvous point.
	rpPick, err := c.ep.net.PickRelays(1)
	if err != nil {
		return nil, err
	}
	rp := rpPick[0]
	rendPath, err := c.circuitPathTo(rp)
	if err != nil {
		return nil, err
	}
	rendCirc, err := c.ep.buildCircuit(rendPath)
	if err != nil {
		return nil, fmt.Errorf("onion: rendezvous circuit: %w", err)
	}
	cookie, err := newCookie()
	if err != nil {
		rendCirc.teardown()
		return nil, err
	}
	if err := rendCirc.sendForward(relayMsg{Cmd: relayEstablishRendezvous, Body: writeBytes(nil, cookie)}); err != nil {
		rendCirc.teardown()
		return nil, err
	}
	if _, err := rendCirc.waitControl(relayRendezvousEstablished); err != nil {
		rendCirc.teardown()
		return nil, fmt.Errorf("onion: establish rendezvous at %s: %w", rp, err)
	}

	// Introduce ourselves through the service's intro points, carrying an
	// ephemeral key for the end-to-end handshake. Intro points are tried
	// in order: one whose service-side circuit has died forwards the
	// introduction into the void and the rendezvous never completes, so a
	// rendezvous timeout moves on to the next intro point (as Tor clients
	// fail over between introduction points).
	e2eKey, err := newKeyPair()
	if err != nil {
		rendCirc.teardown()
		return nil, err
	}
	var reply relayMsg
	joined := false
	var lastErr error
	for _, intro := range desc.IntroPoints {
		if err := c.introduce1(onion, intro, rp, cookie, e2eKey.pub); err != nil {
			lastErr = err
			continue
		}
		// Wait for the service to join us at the rendezvous point; its
		// reply carries the service's ephemeral key, completing the
		// end-to-end handshake.
		r, err := rendCirc.waitControl(relayRendezvous2)
		if err != nil {
			lastErr = fmt.Errorf("onion: rendezvous with %s (intro %s): %w", onion, intro, err)
			continue
		}
		reply = r
		joined = true
		break
	}
	if !joined {
		rendCirc.teardown()
		return nil, lastErr
	}
	e2eKeys, err := deriveHopKeys(e2eKey.priv, reply.Body)
	if err != nil {
		rendCirc.teardown()
		return nil, fmt.Errorf("onion: end-to-end handshake with %s: %w", onion, err)
	}
	rendCirc.setE2E(e2eKeys, true)

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		rendCirc.teardown()
		return nil, errors.New("onion: client closed")
	}
	if existing, ok := c.rendCircs[onion]; ok {
		rendCirc.teardown()
		return existing, nil
	}
	c.rendCircs[onion] = rendCirc
	return rendCirc, nil
}

// introduce1 sends one INTRODUCE1 through a fresh circuit to the given
// intro point and waits for the acknowledgement.
func (c *Client) introduce1(onion, intro, rp string, cookie, clientPub []byte) error {
	introPath, err := c.circuitPathTo(intro, rp)
	if err != nil {
		return err
	}
	introCirc, err := c.ep.buildCircuit(introPath)
	if err != nil {
		return fmt.Errorf("onion: introduction circuit: %w", err)
	}
	// The introduction circuit has served its purpose once acked.
	defer introCirc.teardown()
	body := encodeIntroduce1(introduce1Payload{
		Onion:           onion,
		RendezvousPoint: rp,
		Cookie:          cookie,
		ClientPub:       clientPub,
	})
	if err := introCirc.sendForward(relayMsg{Cmd: relayIntroduce1, Body: body}); err != nil {
		return err
	}
	if _, err := introCirc.waitControl(relayIntroduceAck); err != nil {
		return fmt.Errorf("onion: introduce to %s: %w", onion, err)
	}
	return nil
}

// entryRelay returns the client's persistent first hop: the configured
// bridge if any, otherwise a directory guard picked once and kept.
func (c *Client) entryRelay(exclude ...string) (string, error) {
	if c.bridge != "" {
		return c.bridge, nil
	}
	c.mu.Lock()
	guard := c.guard
	c.mu.Unlock()
	skip := map[string]bool{}
	for _, e := range exclude {
		skip[e] = true
	}
	if guard != "" && !skip[guard] {
		return guard, nil
	}
	pick, err := c.ep.net.PickRelays(1, exclude...)
	if err != nil {
		return "", err
	}
	c.mu.Lock()
	if c.guard == "" {
		c.guard = pick[0]
	}
	c.mu.Unlock()
	return pick[0], nil
}

// circuitPath builds a k-hop path entering through the client's persistent
// guard (or bridge), with the remaining hops picked from the directory.
func (c *Client) circuitPath(k int, exclude ...string) ([]string, error) {
	entry, err := c.entryRelay(exclude...)
	if err != nil {
		return nil, err
	}
	if k == 1 {
		return []string{entry}, nil
	}
	rest, err := c.ep.net.PickRelays(k-1, append(exclude, entry)...)
	if err != nil {
		return nil, err
	}
	return append([]string{entry}, rest...), nil
}

// circuitPathTo builds a 3-hop path ending at a specific relay.
func (c *Client) circuitPathTo(target string, exclude ...string) ([]string, error) {
	lead, err := c.circuitPath(2, append(exclude, target)...)
	if err != nil {
		return nil, err
	}
	return append(lead, target), nil
}

// dialExternal opens a stream through a three-hop exit circuit to a
// registered external destination. A dead cached circuit (e.g. a relay on
// it went away) is torn down, the guard is re-evaluated, and the dial is
// retried once on a fresh circuit.
func (c *Client) dialExternal(host string) (net.Conn, error) {
	conn, err := c.dialExternalOnce(host)
	if err == nil {
		return conn, nil
	}
	// Retry on a fresh circuit: drop the cached circuit and, if the
	// guard itself died, let entryRelay pick a new one.
	c.mu.Lock()
	broken := c.exitCirc
	c.exitCirc = nil
	guard := c.guard
	c.mu.Unlock()
	if broken != nil {
		broken.teardown()
	}
	if guard != "" && !c.relayAlive(guard) {
		c.mu.Lock()
		c.guard = ""
		c.mu.Unlock()
	}
	conn, retryErr := c.dialExternalOnce(host)
	if retryErr != nil {
		return nil, fmt.Errorf("onion: dial %q failed and retry failed (%v): %w", host, retryErr, err)
	}
	return conn, nil
}

// relayAlive reports whether a relay is still attached to the fabric.
func (c *Client) relayAlive(id string) bool {
	c.ep.net.mu.RLock()
	defer c.ep.net.mu.RUnlock()
	_, ok := c.ep.net.nodes[id]
	return ok
}

func (c *Client) dialExternalOnce(host string) (net.Conn, error) {
	circ, err := c.exitCircuit()
	if err != nil {
		return nil, err
	}
	stream, err := circ.allocStream()
	if err != nil {
		return nil, err
	}
	if err := circ.sendForward(relayMsg{Cmd: relayBegin, Stream: stream.id, Body: writeString(nil, host)}); err != nil {
		stream.remoteClose()
		return nil, err
	}
	if err := stream.waitConnected(c.ep.net.controlDeadline()); err != nil {
		stream.remoteClose()
		return nil, fmt.Errorf("onion: begin to %q: %w", host, err)
	}
	return stream, nil
}

// exitCircuit returns (building if needed) the client's general-purpose
// three-hop circuit.
func (c *Client) exitCircuit() (*circuit, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("onion: client closed")
	}
	if c.exitCirc != nil {
		circ := c.exitCirc
		c.mu.Unlock()
		return circ, nil
	}
	c.mu.Unlock()

	path, err := c.circuitPath(3)
	if err != nil {
		return nil, err
	}
	circ, err := c.ep.buildCircuit(path)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.exitCirc != nil {
		circ.teardown()
		return c.exitCirc, nil
	}
	c.exitCirc = circ
	return circ, nil
}

// Path returns the relay IDs of the client's current exit circuit, building
// one if absent — used by tests and examples to show the three-hop path.
func (c *Client) Path() ([]string, error) {
	circ, err := c.exitCircuit()
	if err != nil {
		return nil, err
	}
	circ.mu.Lock()
	defer circ.mu.Unlock()
	out := make([]string, 0, len(circ.hops))
	for _, h := range circ.hops {
		out = append(out, h.relay)
	}
	return out, nil
}
