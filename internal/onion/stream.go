package onion

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"
)

// maxDataBody caps the payload of one DATA cell.
const maxDataBody = 2048

// streamQueue bounds the per-stream receive queue.
const streamQueue = 256

// ErrStreamClosed is returned by operations on a closed stream.
var ErrStreamClosed = errors.New("onion: stream closed")

// Stream is one bidirectional byte stream multiplexed over a circuit. It
// implements net.Conn, so standard protocols (the forum's HTTP, §V) run
// over it unchanged.
type Stream struct {
	circ *circuit
	id   uint16

	incoming chan []byte

	mu        sync.Mutex
	connected chan struct{} // closed when CONNECTED arrives
	connOnce  sync.Once
	closed    chan struct{}
	closeOnce sync.Once
	buf       []byte // partially consumed incoming chunk

	readDeadline  time.Time
	writeDeadline time.Time
}

var _ net.Conn = (*Stream)(nil)

func newStream(c *circuit, id uint16) *Stream {
	return &Stream{
		circ:      c,
		id:        id,
		incoming:  make(chan []byte, streamQueue),
		connected: make(chan struct{}),
		closed:    make(chan struct{}),
	}
}

// push delivers a backward message addressed to this stream.
func (s *Stream) push(msg relayMsg) {
	switch msg.Cmd {
	case relayConnected:
		s.connOnce.Do(func() { close(s.connected) })
	case relayData:
		body := append([]byte(nil), msg.Body...)
		select {
		case s.incoming <- body:
		case <-s.closed:
		}
	case relayEnd:
		s.remoteClose()
	}
}

// markConnected is used by the service side, which never receives a
// CONNECTED for streams it accepted.
func (s *Stream) markConnected() {
	s.connOnce.Do(func() { close(s.connected) })
}

// waitConnected blocks until the stream is established.
func (s *Stream) waitConnected(timeout time.Duration) error {
	select {
	case <-s.connected:
		return nil
	case <-s.closed:
		return ErrStreamClosed
	case <-time.After(timeout):
		return fmt.Errorf("onion: stream %d connect timeout", s.id)
	}
}

// Read implements net.Conn.
func (s *Stream) Read(p []byte) (int, error) {
	s.mu.Lock()
	if len(s.buf) > 0 {
		n := copy(p, s.buf)
		s.buf = s.buf[n:]
		s.mu.Unlock()
		return n, nil
	}
	deadline := s.readDeadline
	s.mu.Unlock()

	var timeout <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return 0, os.ErrDeadlineExceeded
		}
		timer := time.NewTimer(d)
		defer timer.Stop()
		timeout = timer.C
	}

	select {
	case chunk := <-s.incoming:
		n := copy(p, chunk)
		if n < len(chunk) {
			s.mu.Lock()
			s.buf = chunk[n:]
			s.mu.Unlock()
		}
		return n, nil
	case <-s.closed:
		// Drain anything that raced with the close.
		select {
		case chunk := <-s.incoming:
			n := copy(p, chunk)
			if n < len(chunk) {
				s.mu.Lock()
				s.buf = chunk[n:]
				s.mu.Unlock()
			}
			return n, nil
		default:
		}
		return 0, io.EOF
	case <-timeout:
		return 0, os.ErrDeadlineExceeded
	}
}

// Write implements net.Conn, chunking into DATA cells. Closure and the
// write deadline are re-checked per chunk: a stream closed or expired
// mid-write stops immediately with the partial byte count instead of
// sealing and sending DATA cells onto a dead circuit.
func (s *Stream) Write(p []byte) (int, error) {
	written := 0
	for {
		select {
		case <-s.closed:
			return written, ErrStreamClosed
		default:
		}
		s.mu.Lock()
		deadline := s.writeDeadline
		s.mu.Unlock()
		if !deadline.IsZero() && time.Now().After(deadline) {
			return written, os.ErrDeadlineExceeded
		}
		if len(p) == 0 {
			return written, nil
		}
		n := len(p)
		if n > maxDataBody {
			n = maxDataBody
		}
		body := make([]byte, n)
		copy(body, p[:n])
		sealed, err := s.circ.sealE2E(body)
		if err != nil {
			return written, err
		}
		if err := s.circ.sendForward(relayMsg{Cmd: relayData, Stream: s.id, Body: sealed}); err != nil {
			return written, err
		}
		written += n
		p = p[n:]
	}
}

// Close implements net.Conn: it ends the stream on both sides. The local
// side is marked closed BEFORE the END cell is sent: under heavy inbound
// backpressure the endpoint may be parked in push() on this stream's full
// queue, and sending first would deadlock — END queues behind the flood,
// the flood can't drain until push() sees s.closed.
func (s *Stream) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		err = s.circ.sendForward(relayMsg{Cmd: relayEnd, Stream: s.id})
		s.circ.removeStream(s.id)
	})
	return err
}

// remoteClose closes the stream without notifying the peer (the peer
// initiated the close).
func (s *Stream) remoteClose() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.circ.removeStream(s.id)
	})
}

// onionAddr is the net.Addr of onion streams.
type onionAddr struct{ host string }

func (a onionAddr) Network() string { return "onion" }
func (a onionAddr) String() string  { return a.host }

// LocalAddr implements net.Conn.
func (s *Stream) LocalAddr() net.Addr { return onionAddr{host: s.circ.ep.id} }

// RemoteAddr implements net.Conn.
func (s *Stream) RemoteAddr() net.Addr {
	return onionAddr{host: fmt.Sprintf("circuit-%d-stream-%d", s.circ.id, s.id)}
}

// SetDeadline implements net.Conn.
func (s *Stream) SetDeadline(t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readDeadline = t
	s.writeDeadline = t
	return nil
}

// SetReadDeadline implements net.Conn.
func (s *Stream) SetReadDeadline(t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readDeadline = t
	return nil
}

// SetWriteDeadline implements net.Conn.
func (s *Stream) SetWriteDeadline(t time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeDeadline = t
	return nil
}
