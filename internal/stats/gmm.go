package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"darkcrowd/internal/par"
)

// Expectation-Maximization for one-dimensional Gaussian mixtures on a
// circle. The paper (§IV-B) fits a Gaussian Mixture Model to the placement
// histogram of a crowd because the number of regions the crowd comes from
// is unknown a priori; EM estimates the maximum-likelihood parameters for a
// fixed number of components, and this package selects the number of
// components with the Bayesian Information Criterion.

// EMConfig parameterizes mixture estimation.
type EMConfig struct {
	// Period is the circumference of the circular domain
	// (24 for time zones). Required.
	Period float64
	// InitSigma is the initial standard deviation of every component. The
	// paper initializes EM with the sigma ~ 2.5 observed on single-region
	// placements. Defaults to 2.5.
	InitSigma float64
	// MaxIter bounds EM iterations per run. Defaults to 200.
	MaxIter int
	// Tol is the log-likelihood convergence threshold. Defaults to 1e-7.
	Tol float64
	// MinSigma and MaxSigma clamp component widths to keep the model in
	// the wrapped-Gaussian regime. MinSigma defaults to 1.3: the paper's
	// single-region placements spread with sigma ~2.5, and DST smears
	// every DST-observing crowd across two adjacent zones, so narrower
	// components are always overfits of single histogram bins. MaxSigma
	// defaults to 6.
	MinSigma, MaxSigma float64
	// MinWeight prunes components that capture less than this share of
	// the crowd after convergence. Defaults to 0.04.
	MinWeight float64
	// MergeRadius merges converged components whose means are closer than
	// this many zones: DST spreads one region across two adjacent zones,
	// so sub-1.6-zone splits are artefacts, not separate regions.
	// Defaults to 1.6.
	MergeRadius float64
	// Parallelism is the number of workers SelectMixture uses to run the
	// per-k EM fits concurrently: 0 uses every core (GOMAXPROCS), 1 forces
	// the sequential path. Each fit is deterministic and the BIC winner is
	// chosen by scanning k in order, so the selected model is identical
	// for every setting.
	Parallelism int
}

func (c EMConfig) withDefaults() EMConfig {
	if c.InitSigma == 0 {
		c.InitSigma = 2.5
	}
	if c.MaxIter == 0 {
		c.MaxIter = 200
	}
	if c.Tol == 0 {
		c.Tol = 1e-7
	}
	if c.MinSigma == 0 {
		c.MinSigma = 1.3
	}
	if c.MaxSigma == 0 {
		c.MaxSigma = 6
	}
	if c.MinWeight == 0 {
		c.MinWeight = 0.04
	}
	if c.MergeRadius == 0 {
		c.MergeRadius = 1.6
	}
	return c
}

// EMResult is the outcome of one EM run.
type EMResult struct {
	Mixture       Mixture
	LogLikelihood float64
	Iterations    int
	BIC           float64
}

// FitMixtureEM runs EM with exactly k components on the samples (positions
// on the circle, e.g. per-user placement zones as indices 0..23).
func FitMixtureEM(samples []float64, k int, cfg EMConfig) (EMResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Period <= 0 {
		return EMResult{}, errors.New("stats: EMConfig.Period must be positive")
	}
	if k <= 0 {
		return EMResult{}, fmt.Errorf("stats: component count must be positive, got %d", k)
	}
	n := len(samples)
	if n < k {
		return EMResult{}, fmt.Errorf("stats: %d samples cannot support %d components", n, k)
	}

	mix := initComponents(samples, k, cfg)
	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}

	prevLL := math.Inf(-1)
	var iter int
	var ll float64
	for iter = 0; iter < cfg.MaxIter; iter++ {
		// E-step.
		ll = 0
		for i, x := range samples {
			var total float64
			for j, g := range mix {
				p := g.Weight * g.WrappedPDF(x, cfg.Period)
				resp[i][j] = p
				total += p
			}
			if total <= 0 {
				// Degenerate point: spread responsibility uniformly.
				for j := range resp[i] {
					resp[i][j] = 1 / float64(k)
				}
				total = 1e-300
			} else {
				for j := range resp[i] {
					resp[i][j] /= total
				}
			}
			ll += math.Log(total)
		}

		// M-step.
		for j := range mix {
			var rsum, sinSum, cosSum float64
			for i, x := range samples {
				r := resp[i][j]
				rsum += r
				theta := 2 * math.Pi * x / cfg.Period
				sinSum += r * math.Sin(theta)
				cosSum += r * math.Cos(theta)
			}
			if rsum <= 0 {
				continue
			}
			mu := math.Atan2(sinSum, cosSum) * cfg.Period / (2 * math.Pi)
			mu = math.Mod(mu+cfg.Period, cfg.Period)
			var varSum float64
			for i, x := range samples {
				d := CircularDiff(x, mu, cfg.Period)
				varSum += resp[i][j] * d * d
			}
			sigma := math.Sqrt(varSum / rsum)
			sigma = math.Min(math.Max(sigma, cfg.MinSigma), cfg.MaxSigma)
			mix[j] = Gaussian{Weight: rsum / float64(n), Mean: mu, Sigma: sigma}
		}

		if ll-prevLL < cfg.Tol && iter > 0 {
			break
		}
		prevLL = ll
	}

	params := float64(3*k - 1)
	bic := params*math.Log(float64(n)) - 2*ll
	sortMixture(mix)
	return EMResult{Mixture: mix, LogLikelihood: ll, Iterations: iter + 1, BIC: bic}, nil
}

// SelectMixture fits mixtures with 1..maxK components and returns the one
// minimizing BIC, after pruning components lighter than cfg.MinWeight and
// merging components closer than one zone. This reproduces the paper's
// uncovering of "the different number of regions per crowd given by the
// number of different Gaussian curves" (§IV-B).
//
// The per-k EM runs are independent, so they execute on cfg.Parallelism
// workers; every run is deterministic and the winner is picked by scanning
// the results in k order (ties go to the smaller model), so the outcome
// matches the sequential loop exactly.
func SelectMixture(samples []float64, maxK int, cfg EMConfig) (EMResult, error) {
	cfg = cfg.withDefaults()
	if maxK <= 0 {
		return EMResult{}, fmt.Errorf("stats: maxK must be positive, got %d", maxK)
	}
	kMax := maxK
	if kMax > len(samples) {
		kMax = len(samples)
	}
	if kMax < 1 {
		return EMResult{}, ErrEmptyInput
	}
	results := make([]EMResult, kMax)
	err := par.Ranges(nil, cfg.Parallelism, kMax, func(start, end int) error {
		for i := start; i < end; i++ {
			res, err := FitMixtureEM(samples, i+1, cfg)
			if err != nil {
				return fmt.Errorf("stats: EM with k=%d: %w", i+1, err)
			}
			results[i] = res
		}
		return nil
	})
	if err != nil {
		return EMResult{}, err
	}
	best := results[0]
	for _, res := range results[1:] {
		if res.BIC < best.BIC {
			best = res
		}
	}
	best.Mixture = tidyMixture(best.Mixture, cfg)
	return best, nil
}

// initComponents places the initial means on the k strongest well-separated
// peaks of the sample histogram, falling back to even spacing. The
// initialization is deterministic, so every fit is reproducible.
func initComponents(samples []float64, k int, cfg EMConfig) Mixture {
	bins := int(math.Round(cfg.Period))
	if bins < 1 {
		bins = 1
	}
	hist := make([]float64, bins)
	for _, x := range samples {
		idx := int(math.Mod(math.Floor(x+0.5), float64(bins)))
		if idx < 0 {
			idx += bins
		}
		hist[idx]++
	}
	type peak struct {
		bin   int
		count float64
	}
	peaks := make([]peak, 0, bins)
	for i, c := range hist {
		peaks = append(peaks, peak{bin: i, count: c})
	}
	sort.Slice(peaks, func(i, j int) bool {
		if peaks[i].count != peaks[j].count {
			return peaks[i].count > peaks[j].count
		}
		return peaks[i].bin < peaks[j].bin
	})

	minSep := cfg.Period / float64(2*k)
	if minSep > 3 {
		minSep = 3
	}
	var means []float64
	for _, p := range peaks {
		if len(means) == k {
			break
		}
		ok := true
		for _, m := range means {
			if math.Abs(CircularDiff(float64(p.bin), m, cfg.Period)) < minSep {
				ok = false
				break
			}
		}
		if ok {
			means = append(means, float64(p.bin))
		}
	}
	for i := len(means); i < k; i++ {
		means = append(means, cfg.Period*float64(i)/float64(k))
	}

	mix := make(Mixture, k)
	for i := range mix {
		mix[i] = Gaussian{Weight: 1 / float64(k), Mean: means[i], Sigma: cfg.InitSigma}
	}
	return mix
}

// tidyMixture prunes feather-weight components and merges near-duplicates,
// renormalizing the weights.
func tidyMixture(mix Mixture, cfg EMConfig) Mixture {
	kept := make(Mixture, 0, len(mix))
	for _, g := range mix {
		if g.Weight >= cfg.MinWeight {
			kept = append(kept, g)
		}
	}
	if len(kept) == 0 && len(mix) > 0 {
		d, err := mix.Dominant()
		if err == nil {
			kept = Mixture{d}
		}
	}
	// Merge components closer than the merge radius.
	merged := make(Mixture, 0, len(kept))
	used := make([]bool, len(kept))
	for i := range kept {
		if used[i] {
			continue
		}
		g := kept[i]
		for j := i + 1; j < len(kept); j++ {
			if used[j] {
				continue
			}
			if math.Abs(CircularDiff(g.Mean, kept[j].Mean, cfg.Period)) < cfg.MergeRadius {
				w := g.Weight + kept[j].Weight
				g.Mean = math.Mod(g.Mean+CircularDiff(kept[j].Mean, g.Mean, cfg.Period)*kept[j].Weight/w+cfg.Period, cfg.Period)
				g.Sigma = (g.Sigma*g.Weight + kept[j].Sigma*kept[j].Weight) / w
				g.Weight = w
				used[j] = true
			}
		}
		merged = append(merged, g)
	}
	total := merged.TotalWeight()
	if total > 0 {
		for i := range merged {
			merged[i].Weight /= total
		}
	}
	sortMixture(merged)
	return merged
}

// sortMixture orders components by descending weight, then ascending mean,
// so results have a canonical presentation.
func sortMixture(m Mixture) {
	sort.Slice(m, func(i, j int) bool {
		if m[i].Weight != m[j].Weight {
			return m[i].Weight > m[j].Weight
		}
		return m[i].Mean < m[j].Mean
	})
}
