package pipeline

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestReportBackCompat: with margins, bootstrap and provenance all off,
// the report document is byte-identical to the pre-ISSUE-10 layout — a
// plain indented Geolocation with no trace of the new sections. Golden
// consumers parsing the old shape keep working untouched.
func TestReportBackCompat(t *testing.T) {
	dir := t.TempDir()
	res, err := Geolocate(Config{
		TracePath:   writeCrowd(t, dir),
		Reference:   testReference(t),
		ReferenceID: "test-ref",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Provenance != nil {
		t.Fatal("provenance produced without being requested")
	}
	doc, err := (&Report{Geolocation: res.Geo, Provenance: res.Provenance}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := json.MarshalIndent(res.Geo, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	legacy = append(legacy, '\n')
	if !bytes.Equal(doc, legacy) {
		t.Errorf("features-off report differs from the legacy layout:\n%s\nvs\n%s", doc, legacy)
	}
	for _, absent := range []string{`"provenance"`, `"confidence"`, `"MarginSummary"`, `"Margins"`} {
		if bytes.Contains(doc, []byte(absent)) {
			t.Errorf("features-off report leaks %s", absent)
		}
	}

	// And the other direction: with everything on, all sections appear.
	on, err := Geolocate(Config{
		TracePath:           writeCrowd(t, dir),
		Reference:           testReference(t),
		ReferenceID:         "test-ref",
		Margins:             true,
		BootstrapReplicates: 8,
		BootstrapSeed:       1,
		Provenance:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	onDoc, err := (&Report{Geolocation: on.Geo, Provenance: on.Provenance}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, present := range []string{`"provenance"`, `"confidence"`, `"MarginSummary"`, `"Margins"`} {
		if !bytes.Contains(onDoc, []byte(present)) {
			t.Errorf("features-on report lacks %s", present)
		}
	}
}
