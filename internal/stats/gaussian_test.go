package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGaussianPDF(t *testing.T) {
	t.Parallel()
	g := Gaussian{Weight: 1, Mean: 0, Sigma: 1}
	if got := g.PDF(0); !almostEqual(got, 1/math.Sqrt(2*math.Pi), 1e-12) {
		t.Errorf("standard normal at 0 = %g", got)
	}
	if got := g.PDF(1); !almostEqual(got, math.Exp(-0.5)/math.Sqrt(2*math.Pi), 1e-12) {
		t.Errorf("standard normal at 1 = %g", got)
	}
	if got := g.PDF(3) >= g.PDF(2); got {
		t.Error("pdf should decrease away from the mean")
	}
	bad := Gaussian{Weight: 1, Mean: 0, Sigma: 0}
	if bad.PDF(0) != 0 {
		t.Error("zero-sigma pdf should be 0")
	}
}

func TestWrappedPDFSymmetry(t *testing.T) {
	t.Parallel()
	g := Gaussian{Weight: 1, Mean: 23, Sigma: 2}
	// Points equidistant on the circle must have equal density: 23±1 are
	// 0 and 22.
	if !almostEqual(g.WrappedPDF(0, 24), g.WrappedPDF(22, 24), 1e-9) {
		t.Errorf("wrapped pdf not symmetric across the seam: %g vs %g",
			g.WrappedPDF(0, 24), g.WrappedPDF(22, 24))
	}
	if g.WrappedPDF(0, 24) <= g.PDF(0) {
		t.Error("wrapping should add mass near the seam")
	}
	if g.WrappedPDF(0, 0) != 0 {
		t.Error("non-positive period should yield 0")
	}
}

func TestMixtureCurveMassProperty(t *testing.T) {
	t.Parallel()
	// A unit-weight mixture sampled on unit-width bins of the full circle
	// should carry total mass close to 1.
	prop := func(rawMean uint8, rawSigma uint8) bool {
		mean := float64(rawMean % 24)
		sigma := 0.5 + float64(rawSigma%40)/10 // 0.5 .. 4.4
		m := Mixture{{Weight: 1, Mean: mean, Sigma: sigma}}
		return almostEqual(Sum(m.Curve(24)), 1, 0.02)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMixtureDominant(t *testing.T) {
	t.Parallel()
	m := Mixture{
		{Weight: 0.3, Mean: 1, Sigma: 2},
		{Weight: 0.7, Mean: 18, Sigma: 2},
	}
	d, err := m.Dominant()
	if err != nil {
		t.Fatal(err)
	}
	if d.Mean != 18 {
		t.Errorf("dominant mean = %g, want 18", d.Mean)
	}
	if _, err := (Mixture{}).Dominant(); err == nil {
		t.Error("empty mixture should fail")
	}
	if got := m.TotalWeight(); !almostEqual(got, 1, 1e-12) {
		t.Errorf("TotalWeight = %g", got)
	}
}

func TestFitGaussianCircularRecovers(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name        string
		mean, sigma float64
	}{
		{"centered", 12, 2.5},
		{"near seam", 23, 2.0},
		{"at zero", 0, 1.5},
		{"narrow", 6, 1.0},
		{"wide", 15, 4.0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			truth := Mixture{{Weight: 1, Mean: tt.mean, Sigma: tt.sigma}}
			ys := truth.Curve(24)
			got, err := FitGaussianCircular(ys)
			if err != nil {
				t.Fatal(err)
			}
			if d := math.Abs(CircularDiff(got.Mean, tt.mean, 24)); d > 0.2 {
				t.Errorf("fitted mean = %g, want %g (err %g)", got.Mean, tt.mean, d)
			}
			if math.Abs(got.Sigma-tt.sigma) > 0.25 {
				t.Errorf("fitted sigma = %g, want %g", got.Sigma, tt.sigma)
			}
			if math.Abs(got.Weight-1) > 0.1 {
				t.Errorf("fitted weight = %g, want ~1", got.Weight)
			}
		})
	}
}

func TestFitGaussianCircularNoisy(t *testing.T) {
	t.Parallel()
	truth := Mixture{{Weight: 1, Mean: 9, Sigma: 2.5}}
	ys := truth.Curve(24)
	// Deterministic "noise".
	for i := range ys {
		ys[i] += 0.005 * math.Sin(float64(7*i))
		if ys[i] < 0 {
			ys[i] = 0
		}
	}
	got, err := FitGaussianCircular(ys)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(CircularDiff(got.Mean, 9, 24)); d > 0.5 {
		t.Errorf("fitted mean = %g, want ~9", got.Mean)
	}
}

func TestFitGaussianCircularErrors(t *testing.T) {
	t.Parallel()
	if _, err := FitGaussianCircular([]float64{1, 2}); err == nil {
		t.Error("too few bins should fail")
	}
}

func TestCircularDiff(t *testing.T) {
	t.Parallel()
	tests := []struct {
		a, b, period, want float64
	}{
		{1, 23, 24, 2},
		{23, 1, 24, -2},
		{0, 12, 24, 12}, // boundary maps to +period/2
		{5, 5, 24, 0},
		{20, 4, 24, -8},
	}
	for _, tt := range tests {
		if got := CircularDiff(tt.a, tt.b, tt.period); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("CircularDiff(%g, %g) = %g, want %g", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCircularDiffProperty(t *testing.T) {
	t.Parallel()
	bounded := func(a, b uint16) bool {
		d := CircularDiff(float64(a%240)/10, float64(b%240)/10, 24)
		return d > -12-1e-9 && d <= 12+1e-9
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Error(err)
	}
	antisym := func(a, b uint16) bool {
		x := float64(a%240) / 10
		y := float64(b%240) / 10
		d1 := CircularDiff(x, y, 24)
		d2 := CircularDiff(y, x, 24)
		// Antisymmetric except at the +12 boundary, where both map to +12.
		return almostEqual(d1, -d2, 1e-9) || (almostEqual(math.Abs(d1), 12, 1e-9) && almostEqual(math.Abs(d2), 12, 1e-9))
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
}
