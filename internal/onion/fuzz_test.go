package onion

import (
	"bytes"
	"testing"
)

// Fuzz targets for the wire codecs: decoders must never panic and must
// round-trip whatever they accept.

func FuzzDecodeRelayMsg(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0})
	f.Add(encodeRelayMsg(relayMsg{Cmd: relayData, Stream: 3, Body: []byte("x")}))
	f.Add([]byte{255, 255, 255, 255, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := decodeRelayMsg(data)
		if err != nil {
			return
		}
		// Anything accepted must re-encode to a decodable message with
		// the same content.
		again, err := decodeRelayMsg(encodeRelayMsg(msg))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Cmd != msg.Cmd || again.Stream != msg.Stream || !bytes.Equal(again.Body, msg.Body) {
			t.Fatalf("round trip mismatch: %+v vs %+v", again, msg)
		}
	})
}

func FuzzDecodeExtend(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeExtend(extendPayload{Target: "relay-1", ClientPub: bytes.Repeat([]byte{7}, 32)}))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := decodeExtend(data)
		if err != nil {
			return
		}
		again, err := decodeExtend(encodeExtend(p))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Target != p.Target || !bytes.Equal(again.ClientPub, p.ClientPub) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzDecodeIntroduce1(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeIntroduce1(introduce1Payload{
		Onion:           "abcdefghij123456.onion",
		RendezvousPoint: "relay-3",
		Cookie:          bytes.Repeat([]byte{1}, 16),
		ClientPub:       bytes.Repeat([]byte{2}, 32),
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := decodeIntroduce1(data)
		if err != nil {
			return
		}
		again, err := decodeIntroduce1(encodeIntroduce1(p))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Onion != p.Onion || again.RendezvousPoint != p.RendezvousPoint ||
			!bytes.Equal(again.Cookie, p.Cookie) || !bytes.Equal(again.ClientPub, p.ClientPub) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzDecodeRendezvous1(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeRendezvous1(rendezvous1Payload{
		Cookie:     bytes.Repeat([]byte{1}, 16),
		ServicePub: bytes.Repeat([]byte{2}, 32),
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := decodeRendezvous1(data)
		if err != nil {
			return
		}
		again, err := decodeRendezvous1(encodeRendezvous1(p))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(again.Cookie, p.Cookie) || !bytes.Equal(again.ServicePub, p.ServicePub) {
			t.Fatal("round trip mismatch")
		}
	})
}

func FuzzOpenLayer(f *testing.F) {
	var enc, mac [32]byte
	sealed, err := sealLayer(enc, mac, []byte("seed payload"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(sealed)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xAA}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; acceptance implies MAC validity which random
		// data essentially never has, but either outcome is fine.
		_, _ = openLayer(enc, mac, data)
	})
}
