package viz

import (
	"strings"
	"testing"
)

func TestBarChartSVG(t *testing.T) {
	t.Parallel()
	c := &BarChart{
		Title:  "Test profile",
		Labels: HourLabels(),
		Values: make([]float64, 24),
		YLabel: "probability",
	}
	for i := range c.Values {
		c.Values[i] = float64(i%7) / 10
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if strings.Count(svg, "<rect") < 20 {
		t.Errorf("too few bars: %d rects", strings.Count(svg, "<rect"))
	}
	if !strings.Contains(svg, "Test profile") {
		t.Error("title missing")
	}
	if !strings.Contains(svg, "probability") {
		t.Error("y label missing")
	}
	if strings.Contains(svg, "<polyline") {
		t.Error("unexpected overlay")
	}
}

func TestBarChartOverlay(t *testing.T) {
	t.Parallel()
	c := &BarChart{
		Title:   "With fit",
		Labels:  ZoneLabels(),
		Values:  make([]float64, 24),
		Overlay: make([]float64, 24),
	}
	c.Values[12] = 0.5
	for i := range c.Overlay {
		c.Overlay[i] = 0.1
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "<polyline") {
		t.Error("overlay curve missing")
	}
}

func TestBarChartErrors(t *testing.T) {
	t.Parallel()
	if _, err := (&BarChart{Labels: []string{"a"}, Values: nil}).SVG(); err == nil {
		t.Error("label/value mismatch accepted")
	}
	if _, err := (&BarChart{}).SVG(); err == nil {
		t.Error("empty chart accepted")
	}
	if _, err := (&BarChart{Labels: []string{"a"}, Values: []float64{-1}}).SVG(); err == nil {
		t.Error("negative value accepted")
	}
	if _, err := (&BarChart{Labels: []string{"a"}, Values: []float64{1}, Overlay: []float64{1, 2}}).SVG(); err == nil {
		t.Error("overlay length mismatch accepted")
	}
}

func TestBarChartEscaping(t *testing.T) {
	t.Parallel()
	c := &BarChart{
		Title:  `<script>"bad" & dangerous</script>`,
		Labels: []string{"a"},
		Values: []float64{1},
	}
	svg, err := c.SVG()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(svg, "<script>") {
		t.Error("XML not escaped")
	}
	if !strings.Contains(svg, "&lt;script&gt;") {
		t.Error("escaped title missing")
	}
}

func TestLabelHelpers(t *testing.T) {
	t.Parallel()
	h := HourLabels()
	if len(h) != 24 || h[0] != "0h" || h[23] != "23h" {
		t.Errorf("HourLabels = %v", h)
	}
	z := ZoneLabels()
	if len(z) != 24 || z[0] != "-11" || z[11] != "0" || z[23] != "+12" {
		t.Errorf("ZoneLabels = %v", z)
	}
}

func TestAllZeroValues(t *testing.T) {
	t.Parallel()
	c := &BarChart{Labels: []string{"a", "b"}, Values: []float64{0, 0}}
	if _, err := c.SVG(); err != nil {
		t.Fatalf("all-zero chart should render: %v", err)
	}
}
