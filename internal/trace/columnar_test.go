package trace

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// randomDataset builds a seeded random dataset with duplicate timestamps,
// out-of-order posts, and a skewed user distribution — the shapes the
// columnar index has to index correctly.
func randomDataset(seed int64, users, posts int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Name: fmt.Sprintf("rand-%d", seed), GroundTruth: map[string]string{}}
	base := time.Date(2017, time.March, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < posts; i++ {
		// Zipf-ish skew: low user indices post much more often.
		u := int(float64(users) * rng.Float64() * rng.Float64())
		if u >= users {
			u = users - 1
		}
		d.Posts = append(d.Posts, Post{
			UserID: fmt.Sprintf("user-%03d", u),
			Time:   base.Add(time.Duration(rng.Intn(90*24*3600)) * time.Second),
		})
	}
	for u := 0; u < users; u++ {
		if rng.Intn(2) == 0 {
			d.GroundTruth[fmt.Sprintf("user-%03d", u)] = []string{"de", "fr", "it"}[rng.Intn(3)]
		}
	}
	return d
}

// Legacy reference implementations — the pre-columnar method bodies — that
// the property tests compare the view-based methods against.

func legacyUsers(d *Dataset) []string {
	seen := make(map[string]bool)
	for _, p := range d.Posts {
		seen[p.UserID] = true
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

func legacyByUser(d *Dataset) map[string][]Post {
	out := make(map[string][]Post)
	for _, p := range d.Posts {
		out[p.UserID] = append(out[p.UserID], p)
	}
	return out
}

func legacyPostCounts(d *Dataset) map[string]int {
	out := make(map[string]int)
	for _, p := range d.Posts {
		out[p.UserID]++
	}
	return out
}

func legacyWindow(d *Dataset, from, to time.Time) []Post {
	var out []Post
	for _, p := range d.Posts {
		if !p.Time.Before(from) && p.Time.Before(to) {
			out = append(out, p)
		}
	}
	return out
}

func samePosts(a, b []Post) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].UserID != b[i].UserID || !a[i].Time.Equal(b[i].Time) {
			return false
		}
	}
	return true
}

func TestColumnarViewsMatchLegacy(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 8; seed++ {
		d := randomDataset(seed, 40, 1500)
		if seed%2 == 0 {
			d.SortByTime() // exercise both the sorted and unsorted index paths
		}

		if got, want := d.Users(), legacyUsers(d); len(got) != len(want) {
			t.Fatalf("seed %d: Users() len %d, want %d", seed, len(got), len(want))
		} else {
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d: Users()[%d] = %q, want %q", seed, i, got[i], want[i])
				}
			}
		}

		wantBy := legacyByUser(d)
		gotBy := d.ByUser()
		if len(gotBy) != len(wantBy) {
			t.Fatalf("seed %d: ByUser() has %d users, want %d", seed, len(gotBy), len(wantBy))
		}
		for u, want := range wantBy {
			if !samePosts(gotBy[u], want) {
				t.Fatalf("seed %d: ByUser()[%q] differs", seed, u)
			}
		}

		wantCounts := legacyPostCounts(d)
		for u, c := range d.PostCounts() {
			if wantCounts[u] != c {
				t.Fatalf("seed %d: PostCounts()[%q] = %d, want %d", seed, u, c, wantCounts[u])
			}
		}

		// FilterUsers evaluates the predicate per distinct user now; the kept
		// posts must match a per-post filter.
		keep := func(id string) bool { return id[len(id)-1]%2 == 0 }
		gotF := d.FilterUsers(keep)
		var wantF []Post
		for _, p := range d.Posts {
			if keep(p.UserID) {
				wantF = append(wantF, p)
			}
		}
		if !samePosts(gotF.Posts, wantF) {
			t.Fatalf("seed %d: FilterUsers posts differ", seed)
		}
		for u := range gotF.GroundTruth {
			if !keep(u) {
				t.Fatalf("seed %d: FilterUsers kept ground truth for dropped user %q", seed, u)
			}
		}

		from := time.Date(2017, time.March, 20, 0, 0, 0, 0, time.UTC)
		to := time.Date(2017, time.April, 10, 0, 0, 0, 0, time.UTC)
		if got := d.Window(from, to); !samePosts(got.Posts, legacyWindow(d, from, to)) {
			t.Fatalf("seed %d: Window posts differ from per-post scan", seed)
		}
	}
}

func TestStoreLayout(t *testing.T) {
	t.Parallel()
	d := sample()
	s := d.Index()
	if s.NumUsers() != 3 || s.NumPosts() != 5 {
		t.Fatalf("store has %d users / %d posts, want 3 / 5", s.NumUsers(), s.NumPosts())
	}
	// Dense indices are sorted by user ID.
	for u, want := range []string{"alice", "bob", "carol"} {
		if s.UserID(u) != want {
			t.Errorf("UserID(%d) = %q, want %q", u, s.UserID(u), want)
		}
		if got, ok := s.Lookup(want); !ok || got != u {
			t.Errorf("Lookup(%q) = %d,%v, want %d,true", want, got, ok, u)
		}
	}
	if _, ok := s.Lookup("mallory"); ok {
		t.Error("Lookup of unknown user succeeded")
	}
	if s.Count(0) != 3 || s.Count(1) != 1 || s.Count(2) != 1 {
		t.Errorf("counts = %d,%d,%d", s.Count(0), s.Count(1), s.Count(2))
	}
	if !s.SortedByTime() {
		t.Error("sample is chronological but SortedByTime() = false")
	}
	// CSR positions preserve dataset order within a user.
	alicePos := s.PostPositions(0)
	want := []int32{0, 2, 4}
	for i := range want {
		if alicePos[i] != want[i] {
			t.Fatalf("PostPositions(alice) = %v, want %v", alicePos, want)
		}
	}
	times := s.AppendUserTimes(nil, 0)
	if len(times) != 3 || times[0] != at(9).Unix() || times[2] != at(13).Unix() {
		t.Errorf("AppendUserTimes(alice) = %v", times)
	}

	unsorted := &Dataset{Posts: []Post{{UserID: "b", Time: at(12)}, {UserID: "a", Time: at(9)}}}
	if unsorted.Index().SortedByTime() {
		t.Error("out-of-order dataset reported SortedByTime")
	}
}

func TestIndexInvalidation(t *testing.T) {
	t.Parallel()
	d := &Dataset{Posts: []Post{{UserID: "b", Time: at(12)}, {UserID: "a", Time: at(9)}}}
	s1 := d.Index()
	if d.Index() != s1 {
		t.Error("index not cached across calls")
	}
	// SortByTime reorders posts in place: the index must be rebuilt even
	// though the post count is unchanged.
	d.SortByTime()
	s2 := d.Index()
	if s2 == s1 {
		t.Fatal("SortByTime did not invalidate the index")
	}
	if got := s2.PostPositions(0); got[0] != 0 { // "a" is now first
		t.Errorf("rebuilt index stale: positions of a = %v", got)
	}
	// Appending posts changes the length; Index notices by itself.
	d.Posts = append(d.Posts, Post{UserID: "c", Time: at(15)})
	if d.Index().NumUsers() != 3 {
		t.Error("length change not detected")
	}
	// In-place mutation keeps the length; caller must invalidate explicitly.
	d.Posts[0].UserID = "z"
	d.InvalidateIndex()
	if _, ok := d.Index().Lookup("z"); !ok {
		t.Error("InvalidateIndex did not force a rebuild")
	}
}

// TestByUserAppendSafe pins down that appending to one user's group cannot
// bleed into a neighbour's, even though the groups share a backing array.
func TestByUserAppendSafe(t *testing.T) {
	t.Parallel()
	d := sample()
	byUser := d.ByUser()
	grown := append(byUser["alice"], Post{UserID: "alice", Time: at(20)})
	_ = grown
	if byUser["bob"][0].UserID != "bob" {
		t.Error("append to alice's group clobbered bob's")
	}
}

// TestGroundTruthNotAliased is the regression test for the satellite fix:
// FilterPosts, Window, and Subsample used to share the ground-truth map
// with the source, so mutating a derived dataset corrupted the original.
func TestGroundTruthNotAliased(t *testing.T) {
	t.Parallel()
	derive := map[string]func(d *Dataset) *Dataset{
		"FilterPosts": func(d *Dataset) *Dataset {
			return d.FilterPosts(func(Post) bool { return true })
		},
		"Window": func(d *Dataset) *Dataset {
			return d.Window(at(0), at(23))
		},
		"WindowUnsorted": func(d *Dataset) *Dataset {
			d.Posts[0], d.Posts[1] = d.Posts[1], d.Posts[0]
			d.InvalidateIndex()
			return d.Window(at(0), at(23))
		},
		"Subsample": func(d *Dataset) *Dataset {
			out, err := d.Subsample(1, 1)
			if err != nil {
				t.Fatal(err)
			}
			return out
		},
	}
	for name, fn := range derive {
		d := sample()
		got := fn(d)
		got.GroundTruth["alice"] = "xx"
		got.GroundTruth["mallory"] = "yy"
		if d.GroundTruth["alice"] != "de" || len(d.GroundTruth) != 3 {
			t.Errorf("%s: derived dataset aliases source ground truth: %v", name, d.GroundTruth)
		}
	}
}

func TestBuilderMatchesAppendAndSort(t *testing.T) {
	t.Parallel()
	for seed := int64(1); seed <= 4; seed++ {
		want := randomDataset(seed, 25, 800)
		want.GroundTruth = nil
		b := NewBuilder(len(want.Posts))
		for _, p := range want.Posts {
			b.Add(b.User(p.UserID), p.Time.Unix())
		}
		if b.NumPosts() != len(want.Posts) {
			t.Fatalf("seed %d: builder has %d posts, want %d", seed, b.NumPosts(), len(want.Posts))
		}
		got := b.Dataset(want.Name, true)
		want.SortByTime()
		if got.Name != want.Name || !samePosts(got.Posts, want.Posts) {
			t.Fatalf("seed %d: Builder dataset differs from append+SortByTime", seed)
		}
		// Bit-compatible time.Time: materialized values must be == to the
		// time.Date-derived ones, not merely Equal.
		for i := range got.Posts {
			if got.Posts[i].Time != want.Posts[i].Time {
				t.Fatalf("seed %d: post %d time representation differs", seed, i)
			}
		}
	}

	unsorted := NewBuilder(0)
	u := unsorted.User("x")
	unsorted.Add(u, at(12).Unix())
	unsorted.Add(u, at(9).Unix())
	got := unsorted.Dataset("x", false)
	if got.Posts[0].Time != at(12) {
		t.Error("sortByTime=false should keep insertion order")
	}
}

func TestParseRFC3339FastPath(t *testing.T) {
	t.Parallel()
	cases := []string{
		"2017-06-01T09:00:00Z",
		"1970-01-01T00:00:00Z",
		"1969-12-31T23:59:59Z", // pre-epoch
		"2000-02-29T12:00:00Z", // leap day in a %400 year
		"2016-02-29T23:59:59Z",
		"2100-01-01T00:00:00Z", // 2100 is not a leap year; Jan 1 still valid
		"0001-01-01T00:00:00Z",
		"9999-12-31T23:59:59Z",
		"2017-06-01T09:00:00+02:00", // offset: falls back to time.Parse
		"2017-06-01T09:00:00.5Z",    // fractional seconds: fallback
		"2017-06-01t09:00:00z",      // lowercase accepted by RFC3339
		"2017-13-01T00:00:00Z",      // bad month
		"2017-02-29T00:00:00Z",      // not a leap year
		"2100-02-29T00:00:00Z",      // century non-leap
		"2017-06-01T24:00:00Z",      // bad hour
		"2017-06-01T09:60:00Z",      // bad minute
		"2017-06-01T09:00:60Z",      // bad second (RFC3339 in Go rejects :60)
		"2017-06-0xT09:00:00Z",      // non-digit
		"2017-06-01 09:00:00Z",      // wrong separator
		"not-a-time",
		"",
	}
	for _, s := range cases {
		want, wantErr := time.Parse(time.RFC3339, s)
		got, gotErr := parseRFC3339(s)
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("%q: err = %v, time.Parse err = %v", s, gotErr, wantErr)
			continue
		}
		if gotErr == nil && got != want.UTC() {
			t.Errorf("%q: parsed %v, want %v", s, got, want.UTC())
		}
	}

	// Randomized agreement with the stdlib over a wide range of instants.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		sec := rng.Int63n(4e10) - 1e9 // ~1938 .. ~3237
		s := time.Unix(sec, 0).UTC().Format(time.RFC3339)
		want, err := time.Parse(time.RFC3339, s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := parseRFC3339(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if got != want.UTC() {
			t.Fatalf("%q: parsed %v, want %v", s, got, want.UTC())
		}
	}
}

// TestWriteCSVMatchesEncodingCSV pins the hand-rolled CSV writer to
// encoding/csv byte for byte, including fields that need quoting.
func TestWriteCSVMatchesEncodingCSV(t *testing.T) {
	t.Parallel()
	ids := []string{
		"plain", "with,comma", `with"quote`, "with\nnewline", "with\rcr",
		" leadingspace", "\tleadingtab", " nbsp", `\.`, "", "trailing ",
		"ünïcode", `"`, `a,"b",c`,
	}
	d := &Dataset{Name: "quoting"}
	for i, id := range ids {
		d.Posts = append(d.Posts, Post{UserID: id, Time: at(i % 24)})
	}
	var got bytes.Buffer
	if err := d.WriteCSV(&got); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	cw := csv.NewWriter(&want)
	if err := cw.Write([]string{"user_id", "time_rfc3339"}); err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Posts {
		if err := cw.Write([]string{p.UserID, p.Time.UTC().Format(time.RFC3339)}); err != nil {
			t.Fatal(err)
		}
	}
	cw.Flush()
	if got.String() != want.String() {
		t.Fatalf("WriteCSV output differs from encoding/csv:\n got %q\nwant %q", got.String(), want.String())
	}
	// And it must round-trip through the reader.
	back, err := ReadCSV("quoting", bytes.NewReader(got.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !samePosts(back.Posts, d.Posts) {
		t.Fatal("quoted round trip differs")
	}
}

// TestAppendRFC3339MatchesFormat pins the integer fast-path formatter to
// the stdlib across edge dates and a wide random sweep, nanoseconds and
// out-of-range years included (those take the fallback).
func TestAppendRFC3339MatchesFormat(t *testing.T) {
	t.Parallel()
	check := func(at time.Time) {
		t.Helper()
		got := string(appendRFC3339(nil, at))
		want := at.UTC().Format(time.RFC3339)
		if got != want {
			t.Fatalf("appendRFC3339(%v) = %q, want %q", at, got, want)
		}
	}
	for _, at := range []time.Time{
		time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(1969, 12, 31, 23, 59, 59, 0, time.UTC),
		time.Date(2000, 2, 29, 12, 0, 0, 0, time.UTC),
		time.Date(2100, 3, 1, 0, 0, 0, 0, time.UTC),
		time.Date(1, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(9999, 12, 31, 23, 59, 59, 0, time.UTC),
		time.Date(2017, 6, 1, 9, 0, 0, 500, time.UTC),                // nanos: fallback
		time.Date(2017, 6, 1, 9, 0, 0, 0, time.FixedZone("x", 7200)), // non-UTC loc
	} {
		check(at)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 5000; i++ {
		check(time.Unix(rng.Int63n(4e10)-1e9, 0))
	}
}

func TestReadCSVHintAndInterning(t *testing.T) {
	t.Parallel()
	d := randomDataset(3, 10, 500)
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSVHint("hinted", bytes.NewReader(buf.Bytes()), d.NumPosts())
	if err != nil {
		t.Fatal(err)
	}
	if !samePosts(got.Posts, d.Posts) {
		t.Fatal("ReadCSVHint round trip differs")
	}
	if cap(got.Posts) != d.NumPosts() {
		t.Errorf("hint ignored: cap = %d, want %d", cap(got.Posts), d.NumPosts())
	}
}
