package darkcrowd

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func TestEndToEndFacade(t *testing.T) {
	labelled, err := SyntheticTwitterDataset(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildReference(labelled)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.PerRegion) != 14 {
		t.Errorf("reference has %d regions", len(ref.PerRegion))
	}

	crowd, err := SyntheticCrowd(2, map[string]int{"jp": 60, "us-il": 30}, 100)
	if err != nil {
		t.Fatal(err)
	}
	report, err := GeolocateCrowd(crowd.Posts, ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Components) != 2 {
		t.Fatalf("components = %v", report.Components)
	}
	// Japan (2/3 of crowd) must dominate at ~UTC+9.
	if math.Abs(report.Components[0].Offset-9) > 1.2 {
		t.Errorf("dominant component at UTC%+.1f, want +9", report.Components[0].Offset)
	}
	found := false
	for _, c := range report.Components {
		if math.Abs(c.Offset-(-6)) <= 1.6 {
			found = true
		}
	}
	if !found {
		t.Errorf("no Illinois component in %v", report.Components)
	}
	if report.ActiveUsers == 0 || len(report.PlacementHistogram) != 24 {
		t.Errorf("report incomplete: %+v", report)
	}
	if report.AvgFitDistance > 0.05 {
		t.Errorf("fit distance %g", report.AvgFitDistance)
	}
}

func TestGeolocateCrowdErrors(t *testing.T) {
	if _, err := GeolocateCrowd(nil, nil, Options{}); err == nil {
		t.Error("nil reference accepted")
	}
	labelled, err := SyntheticTwitterDataset(3, 400)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildReference(labelled)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := GeolocateCrowd(nil, ref, Options{}); err == nil {
		t.Error("empty crowd accepted")
	}
}

func TestSyntheticCrowdErrors(t *testing.T) {
	if _, err := SyntheticCrowd(1, map[string]int{"xx": 5}, 50); err == nil {
		t.Error("unknown region accepted")
	}
}

func TestClassifyHemisphereFacade(t *testing.T) {
	crowd, err := SyntheticCrowd(4, map[string]int{"br": 1}, 4000)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ClassifyHemisphere(crowd.Posts)
	if err != nil {
		t.Fatal(err)
	}
	if h != HemisphereSouth {
		t.Errorf("Brazilian user ruled %v", h)
	}
	if _, err := ClassifyHemisphere(nil); err == nil {
		t.Error("no posts accepted")
	}
}

func TestRegionCodes(t *testing.T) {
	codes := RegionCodes()
	if len(codes) < 14 {
		t.Errorf("%d region codes", len(codes))
	}
	if codes["de"] == "" {
		t.Error("missing Germany")
	}
}

func TestOffsetOfZoneIndex(t *testing.T) {
	if OffsetOfZoneIndex(0) != -11 || OffsetOfZoneIndex(23) != 12 {
		t.Error("zone index translation wrong")
	}
}

func TestServerOffset(t *testing.T) {
	trueUTC := time.Date(2017, 6, 1, 10, 0, 0, 0, time.UTC)
	displayed := time.Date(2017, 6, 1, 13, 0, 2, 0, time.UTC) // +3h and 2s latency
	if got := ServerOffset(displayed, trueUTC); got != 3*time.Hour {
		t.Errorf("ServerOffset = %v", got)
	}
}

func TestReferenceJSONRoundTrip(t *testing.T) {
	labelled, err := SyntheticTwitterDataset(5, 300)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildReference(labelled)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ref.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReference(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generic != ref.Generic {
		t.Error("generic profile lost in round trip")
	}
	if len(got.PerRegion) != len(ref.PerRegion) {
		t.Errorf("regions %d, want %d", len(got.PerRegion), len(ref.PerRegion))
	}
	// Corrupt and empty inputs fail.
	if _, err := ReadReference(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON accepted")
	}
	if _, err := ReadReference(strings.NewReader("{}")); err == nil {
		t.Error("empty reference accepted")
	}
}
