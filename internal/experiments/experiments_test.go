package experiments

import (
	"strings"
	"testing"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/synth"
)

// TestAllExperimentsReproduce runs every table, figure and ablation at the
// paper's forum scale and asserts the paper's qualitative shape holds.
// This is the repository's headline integration test.
func TestAllExperimentsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	lab := NewLab(Config{TwitterScale: 40, ForumScale: 1})
	for _, id := range AllIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := lab.Run(id)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !res.Pass {
				t.Errorf("shape check failed.\n  paper:    %s\n  measured: %s\n%s",
					res.Paper, res.Measured, strings.Join(res.Lines, "\n"))
			}
			if res.Title == "" || res.Measured == "" || len(res.Lines) == 0 {
				t.Error("incomplete result rendering")
			}
			if res.ID != id {
				t.Errorf("result ID %q, want %q", res.ID, id)
			}
			if strings.HasPrefix(id, "fig") && len(res.Charts) == 0 {
				t.Errorf("figure experiment %s attaches no charts", id)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	lab := NewLab(Config{})
	if _, err := lab.Run("fig99"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestAllIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range AllIDs() {
		if seen[id] {
			t.Errorf("duplicate experiment id %q", id)
		}
		seen[id] = true
	}
	if len(seen) != 26 {
		t.Errorf("%d experiments, want 26 (17 paper artefacts + 3 discussion + 5 ablations + crawl-faults)", len(seen))
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Seed != 2018 || cfg.TwitterScale != 20 || cfg.ForumScale != 1 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestLabCaching(t *testing.T) {
	lab := NewLab(Config{TwitterScale: 200})
	a, err := lab.Twitter()
	if err != nil {
		t.Fatal(err)
	}
	b, err := lab.Twitter()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Twitter dataset rebuilt instead of cached")
	}
	g1, err := lab.Generic()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := lab.Generic()
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("generic profile rebuilt instead of cached")
	}
}

func TestExpectationClustering(t *testing.T) {
	// CRD Club's +3/+4 mix clusters into one expected component; the Pedo
	// Support mix stays three.
	crd, err := expectationFor(mustSpec(t, "CRD Club"))
	if err != nil {
		t.Fatal(err)
	}
	if len(crd.centers) != 1 {
		t.Errorf("CRD clusters = %v, want 1", crd.centers)
	}
	if crd.centers[0] < 3 || crd.centers[0] > 4 {
		t.Errorf("CRD cluster center %v, want within 3..4", crd.centers[0])
	}
	pedo, err := expectationFor(mustSpec(t, "Pedo Support Community"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pedo.centers) != 3 {
		t.Errorf("Pedo clusters = %v, want 3", pedo.centers)
	}
}

func TestBarChartRendering(t *testing.T) {
	lines := barChart([]string{"a", "b"}, []float64{1, 2}, 10)
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[1], "##########") {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Errorf("half bar wrong: %q", lines[0])
	}
	// All-zero series renders without bars.
	zero := barChart([]string{"x"}, []float64{0}, 10)
	if strings.Contains(zero[0], "#") {
		t.Errorf("zero series rendered bars: %q", zero[0])
	}
}

func TestHasComponentNear(t *testing.T) {
	if hasComponentNear(nil, 3, 1) {
		t.Error("empty components should not match")
	}
	comps := []geoloc.Component{{Offset: -11.5}}
	if !hasComponentNear(comps, 12, 1) {
		t.Error("wraparound proximity missed: -11.5 and +12 are 0.5 apart")
	}
	if hasComponentNear(comps, 0, 1) {
		t.Error("distant component matched")
	}
}

func mustSpec(t *testing.T, name string) synth.ForumSpec {
	t.Helper()
	spec, err := synth.ForumSpecByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}
