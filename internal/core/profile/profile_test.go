package profile

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

func postAt(day, hour int) trace.Post {
	return trace.Post{
		UserID: "u",
		Time:   time.Date(2017, time.June, 1, hour, 30, 0, 0, time.UTC).AddDate(0, 0, day),
	}
}

func TestFromPostsEquationOne(t *testing.T) {
	t.Parallel()
	// 2 days: day 0 active at hours 9 and 21; day 1 active at hour 9.
	// Multiple posts within the same (day, hour) cell count once.
	posts := []trace.Post{
		postAt(0, 9), postAt(0, 9), // same cell, counts once
		postAt(0, 21),
		postAt(1, 9),
	}
	p, err := FromPosts(posts, UTCHours())
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p[9], 2.0/3, 1e-12) {
		t.Errorf("P[9] = %g, want 2/3", p[9])
	}
	if !almostEqual(p[21], 1.0/3, 1e-12) {
		t.Errorf("P[21] = %g, want 1/3", p[21])
	}
	if !almostEqual(p.Sum(), 1, 1e-12) {
		t.Errorf("profile sums to %g", p.Sum())
	}
}

func TestFromPostsEmpty(t *testing.T) {
	t.Parallel()
	if _, err := FromPosts(nil, nil); err == nil {
		t.Error("empty posts should fail")
	}
}

func TestFromPostsLocalFrame(t *testing.T) {
	t.Parallel()
	jp, err := tz.ByCode("jp")
	if err != nil {
		t.Fatal(err)
	}
	// 20:00 UTC is 05:00 in Japan (UTC+9).
	posts := []trace.Post{{UserID: "u", Time: time.Date(2017, time.June, 1, 20, 0, 0, 0, time.UTC)}}
	p, err := FromPosts(posts, LocalHours(jp))
	if err != nil {
		t.Fatal(err)
	}
	if p[5] != 1 {
		t.Errorf("local-frame bucket: got %v, want all mass at hour 5", p)
	}
}

func TestFromPostsLocalFrameDST(t *testing.T) {
	t.Parallel()
	de, err := tz.ByCode("de")
	if err != nil {
		t.Fatal(err)
	}
	// In June Germany is UTC+2: 20:00 UTC -> 22:00 local.
	june := trace.Post{UserID: "u", Time: time.Date(2017, time.June, 1, 20, 0, 0, 0, time.UTC)}
	// In January Germany is UTC+1: 20:00 UTC -> 21:00 local.
	january := trace.Post{UserID: "u", Time: time.Date(2017, time.January, 10, 20, 0, 0, 0, time.UTC)}
	p, err := FromPosts([]trace.Post{june, january}, LocalHours(de))
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(p[22], 0.5, 1e-12) || !almostEqual(p[21], 0.5, 1e-12) {
		t.Errorf("DST-aware bucketing wrong: %v", p)
	}
}

func TestShiftRoundTrip(t *testing.T) {
	t.Parallel()
	var p Profile
	p[21] = 1
	shifted := p.Shift(3)
	if shifted[0] != 1 {
		t.Errorf("Shift(3) of peak-21: %v, want peak at 0", shifted)
	}
	back := shifted.Shift(-3)
	if back != p {
		t.Error("Shift(-k) does not invert Shift(k)")
	}
	if p.Shift(24) != p || p.Shift(-24) != p {
		t.Error("Shift by full day should be identity")
	}
}

func TestShiftProperty(t *testing.T) {
	t.Parallel()
	prop := func(raw [24]uint8, k int8) bool {
		var p Profile
		var total float64
		for i, r := range raw {
			p[i] = float64(r)
			total += p[i]
		}
		if total == 0 {
			return true
		}
		for i := range p {
			p[i] /= total
		}
		s := p.Shift(int(k))
		// Mass is conserved and round trip restores.
		if !almostEqual(s.Sum(), 1, 1e-9) {
			return false
		}
		return s.Shift(-int(k)) == p
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestZoneProfileConvention(t *testing.T) {
	t.Parallel()
	// Generic local pattern peaking at local hour 21. A crowd at UTC+1
	// (Germany) exhibits that peak at 20:00 UTC.
	var generic Profile
	generic[21] = 1
	zone := ZoneProfile(generic, 1)
	if zone[20] != 1 {
		t.Errorf("UTC+1 zone profile: %v, want peak at UTC hour 20", zone)
	}
	// A crowd at UTC-6 peaks at 21+6 = 27 mod 24 = 3:00 UTC.
	zone = ZoneProfile(generic, -6)
	if zone[3] != 1 {
		t.Errorf("UTC-6 zone profile: %v, want peak at UTC hour 3", zone)
	}
	// ToLocal inverts ZoneProfile.
	if got := ZoneProfile(generic, 5).ToLocal(5); got != generic {
		t.Error("ToLocal does not invert ZoneProfile")
	}
}

func TestZoneProfilesIndexing(t *testing.T) {
	t.Parallel()
	var generic Profile
	generic[12] = 1
	zones := ZoneProfiles(generic)
	if len(zones) != 24 {
		t.Fatalf("got %d zones", len(zones))
	}
	for i, z := range zones {
		off := OffsetOf(i)
		if ZoneIndex(off) != i {
			t.Errorf("ZoneIndex(OffsetOf(%d)) = %d", i, ZoneIndex(off))
		}
		want := ZoneProfile(generic, off)
		if z != want {
			t.Errorf("zone %d (offset %v) mismatch", i, off)
		}
	}
	if OffsetOf(0) != tz.MinOffset || OffsetOf(23) != tz.MaxOffset {
		t.Error("OffsetOf boundary mapping wrong")
	}
}

func TestAggregateEquationTwo(t *testing.T) {
	t.Parallel()
	var a, b Profile
	a[0] = 1
	b[12] = 1
	pop, err := Aggregate([]Profile{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pop[0], 0.5, 1e-12) || !almostEqual(pop[12], 0.5, 1e-12) {
		t.Errorf("Aggregate = %v", pop)
	}
	if _, err := Aggregate(nil); err == nil {
		t.Error("empty aggregate should fail")
	}
}

func TestUniform(t *testing.T) {
	t.Parallel()
	u := Uniform()
	if !almostEqual(u.Sum(), 1, 1e-12) {
		t.Errorf("uniform sums to %g", u.Sum())
	}
	for h, v := range u {
		if !almostEqual(v, 1.0/24, 1e-15) {
			t.Errorf("uniform[%d] = %g", h, v)
		}
	}
}

func TestBuildUserProfilesThreshold(t *testing.T) {
	t.Parallel()
	ds := &trace.Dataset{Name: "t"}
	// "active" posts 35 times across distinct hours/days, "casual" posts 3 times.
	for i := 0; i < 35; i++ {
		ds.Posts = append(ds.Posts, trace.Post{
			UserID: "active",
			Time:   time.Date(2017, time.March, 1+i%28, (9+i)%24, 0, 0, 0, time.UTC),
		})
	}
	for i := 0; i < 3; i++ {
		ds.Posts = append(ds.Posts, trace.Post{
			UserID: "casual",
			Time:   time.Date(2017, time.March, 1+i, 10, 0, 0, 0, time.UTC),
		})
	}
	profiles, err := BuildUserProfiles(ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := profiles["active"]; !ok {
		t.Error("active user missing")
	}
	if _, ok := profiles["casual"]; ok {
		t.Error("casual user should be filtered by the 30-post threshold")
	}
	// With a lower threshold the casual user survives.
	profiles, err = BuildUserProfiles(ds, BuildOptions{MinPosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := profiles["casual"]; !ok {
		t.Error("casual user should survive MinPosts=2")
	}
	// All below threshold: error.
	tiny := &trace.Dataset{Posts: []trace.Post{{UserID: "x", Time: time.Now().UTC()}}}
	if _, err := BuildUserProfiles(tiny, BuildOptions{}); err == nil {
		t.Error("no surviving users should fail")
	}
}

func TestRemoveHolidays(t *testing.T) {
	t.Parallel()
	de, err := tz.ByCode("de")
	if err != nil {
		t.Fatal(err)
	}
	ds := &trace.Dataset{Posts: []trace.Post{
		{UserID: "u", Time: time.Date(2017, time.December, 25, 12, 0, 0, 0, time.UTC)},
		{UserID: "u", Time: time.Date(2017, time.May, 25, 12, 0, 0, 0, time.UTC)},
	}}
	got := RemoveHolidays(ds, de)
	if got.NumPosts() != 1 {
		t.Fatalf("RemoveHolidays kept %d posts, want 1", got.NumPosts())
	}
	if got.Posts[0].Time.Month() != time.May {
		t.Error("wrong post removed")
	}
}

func TestSortedUserIDs(t *testing.T) {
	t.Parallel()
	m := map[string]Profile{"b": {}, "a": {}, "c": {}}
	ids := SortedUserIDs(m)
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Errorf("SortedUserIDs = %v", ids)
	}
}

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestProfileEntropy(t *testing.T) {
	t.Parallel()
	u := Uniform()
	h, err := u.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	if h < 4.58 || h > 4.59 {
		t.Errorf("uniform profile entropy = %g, want ~4.585", h)
	}
	var peaked Profile
	peaked[21] = 0.5
	peaked[20] = 0.5
	hp, err := peaked.Entropy()
	if err != nil {
		t.Fatal(err)
	}
	if hp >= h {
		t.Errorf("peaked entropy %g not below uniform %g", hp, h)
	}
}
