package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEMDLinear(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		p, q []float64
		want float64
	}{
		{"identical", []float64{0.5, 0.5}, []float64{0.5, 0.5}, 0},
		{"adjacent move", []float64{1, 0}, []float64{0, 1}, 1},
		{"two bins away", []float64{1, 0, 0}, []float64{0, 0, 1}, 2},
		{"split", []float64{1, 0, 0}, []float64{0.5, 0, 0.5}, 1},
		{"symmetric mass", []float64{0.5, 0, 0.5}, []float64{0, 1, 0}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := EMDLinear(tt.p, tt.q)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("EMDLinear = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestEMDCircular(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		p, q []float64
		want float64
	}{
		{"identical", []float64{0.25, 0.25, 0.25, 0.25}, []float64{0.25, 0.25, 0.25, 0.25}, 0},
		// On the circle, bin 0 and bin 3 of a 4-bin circle are adjacent.
		{"wraparound", []float64{1, 0, 0, 0}, []float64{0, 0, 0, 1}, 1},
		{"linear would be 3", []float64{1, 0, 0, 0}, []float64{0, 0, 0, 1}, 1},
		{"opposite", []float64{1, 0, 0, 0}, []float64{0, 0, 1, 0}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := EMDCircular(tt.p, tt.q)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("EMDCircular = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestEMDCircularNeverExceedsLinear(t *testing.T) {
	t.Parallel()
	prop := func(rawP, rawQ [12]uint8) bool {
		p := make([]float64, 12)
		q := make([]float64, 12)
		var sp, sq float64
		for i := 0; i < 12; i++ {
			p[i] = float64(rawP[i])
			q[i] = float64(rawQ[i])
			sp += p[i]
			sq += q[i]
		}
		if sp == 0 || sq == 0 {
			return true
		}
		pn, err := Normalize(p)
		if err != nil {
			return false
		}
		qn, err := Normalize(q)
		if err != nil {
			return false
		}
		lin, err1 := EMDLinear(pn, qn)
		circ, err2 := EMDCircular(pn, qn)
		if err1 != nil || err2 != nil {
			return false
		}
		return circ <= lin+1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestEMDMetricProperties(t *testing.T) {
	t.Parallel()
	mk := func(raw [8]uint8) ([]float64, bool) {
		xs := make([]float64, 8)
		var s float64
		for i := range raw {
			xs[i] = float64(raw[i])
			s += xs[i]
		}
		if s == 0 {
			return nil, false
		}
		n, err := Normalize(xs)
		if err != nil {
			return nil, false
		}
		return n, true
	}

	t.Run("symmetry", func(t *testing.T) {
		prop := func(rawP, rawQ [8]uint8) bool {
			p, okP := mk(rawP)
			q, okQ := mk(rawQ)
			if !okP || !okQ {
				return true
			}
			ab, _ := EMDCircular(p, q)
			ba, _ := EMDCircular(q, p)
			return almostEqual(ab, ba, 1e-9)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})

	t.Run("identity", func(t *testing.T) {
		prop := func(raw [8]uint8) bool {
			p, ok := mk(raw)
			if !ok {
				return true
			}
			d, _ := EMDCircular(p, p)
			return almostEqual(d, 0, 1e-9)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})

	t.Run("non-negativity", func(t *testing.T) {
		prop := func(rawP, rawQ [8]uint8) bool {
			p, okP := mk(rawP)
			q, okQ := mk(rawQ)
			if !okP || !okQ {
				return true
			}
			d, _ := EMDCircular(p, q)
			return d >= -1e-12
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})

	t.Run("triangle inequality", func(t *testing.T) {
		prop := func(rawP, rawQ, rawR [8]uint8) bool {
			p, okP := mk(rawP)
			q, okQ := mk(rawQ)
			r, okR := mk(rawR)
			if !okP || !okQ || !okR {
				return true
			}
			pq, _ := EMDCircular(p, q)
			qr, _ := EMDCircular(q, r)
			pr, _ := EMDCircular(p, r)
			return pr <= pq+qr+1e-9
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})

	t.Run("rotation invariance", func(t *testing.T) {
		prop := func(rawP, rawQ [8]uint8, k int8) bool {
			p, okP := mk(rawP)
			q, okQ := mk(rawQ)
			if !okP || !okQ {
				return true
			}
			d1, _ := EMDCircular(p, q)
			d2, _ := EMDCircular(Rotate(p, int(k)), Rotate(q, int(k)))
			return almostEqual(d1, d2, 1e-9)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})
}

func TestEMDErrors(t *testing.T) {
	t.Parallel()
	if _, err := EMDLinear([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := EMDLinear(nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := EMDLinear([]float64{1, 0}, []float64{0.2, 0.2}); err == nil {
		t.Error("unequal mass should fail")
	}
	if _, err := EMDCircular([]float64{1, -0.5, 0.5}, []float64{0.5, 0, 0.5}); err == nil {
		t.Error("negative mass should fail")
	}
}

func TestEMDShiftCost(t *testing.T) {
	t.Parallel()
	// Shifting a concentrated distribution by k bins on a 24-bin circle
	// should cost about min(k, 24-k) per unit mass.
	base := make([]float64, 24)
	base[12] = 1
	for k := 0; k <= 23; k++ {
		shifted := Rotate(base, -k)
		d, err := EMDCircular(base, shifted)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(k)
		if k > 12 {
			want = float64(24 - k)
		}
		if !almostEqual(d, want, 1e-9) {
			t.Errorf("shift %d: EMD = %g, want %g", k, d, want)
		}
	}
}

func TestMedian(t *testing.T) {
	t.Parallel()
	med := func(xs []float64) float64 {
		return medianScratch(xs, make([]float64, len(xs)))
	}
	tests := []struct {
		in   []float64
		want float64
	}{
		{[]float64{}, 0},
		{[]float64{5}, 5},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, tt := range tests {
		if got := med(tt.in); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("median(%v) = %g, want %g", tt.in, got, tt.want)
		}
	}
	// medianScratch must not mutate its input.
	in := []float64{3, 1, 2}
	med(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Error("medianScratch mutated its input")
	}
}

// TestMedianSelectionMatchesSort cross-checks the insertion-sort and
// quickselect median paths against a reference full sort, over sizes on
// both sides of the n=32 switchover, with duplicates and adversarial
// (sorted / reversed) inputs.
func TestMedianSelectionMatchesSort(t *testing.T) {
	t.Parallel()
	ref := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		n := len(s)
		if n == 0 {
			return 0
		}
		if n%2 == 1 {
			return s[n/2]
		}
		return (s[n/2-1] + s[n/2]) / 2
	}
	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{1, 2, 3, 5, 24, 31, 32, 33, 64, 101, 500} {
		for trial := 0; trial < 20; trial++ {
			xs := make([]float64, n)
			for i := range xs {
				switch trial % 4 {
				case 0:
					xs[i] = rng.NormFloat64()
				case 1:
					xs[i] = float64(rng.Intn(5)) // heavy duplicates
				case 2:
					xs[i] = float64(i) // sorted
				default:
					xs[i] = float64(n - i) // reversed
				}
			}
			want := ref(xs)
			got := medianScratch(xs, make([]float64, n))
			if got != want {
				t.Fatalf("n=%d trial=%d: medianScratch = %g, sort median = %g", n, trial, got, want)
			}
		}
	}
}

// TestEMDCircularAllRotationsEquivalence is the kernel's bit-identity
// property: every out[r] must equal EMDCircular(p, q rotated by r) exactly,
// across random histogram pairs and sizes (including the 24-bin profile
// size the placement path uses).
func TestEMDCircularAllRotationsEquivalence(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(2018))
	for _, n := range []int{1, 2, 3, 8, 24} {
		out := make([]float64, n)
		scratch := make([]float64, 2*n)
		for trial := 0; trial < 50; trial++ {
			p := make([]float64, n)
			q := make([]float64, n)
			for i := 0; i < n; i++ {
				p[i] = rng.Float64()
				q[i] = rng.Float64()
			}
			pn, err := Normalize(p)
			if err != nil {
				t.Fatal(err)
			}
			qn, err := Normalize(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := EMDCircularAllRotations(pn, qn, out, scratch)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < n; r++ {
				qr := Rotate(qn, r) // Rotate(r)[i] = q[(i+r) mod n] = q_r[i]
				want, err := EMDCircular(pn, qr)
				if err != nil {
					t.Fatal(err)
				}
				if got[r] != want {
					t.Fatalf("n=%d trial=%d rotation=%d: kernel = %v (bits %x), EMDCircular = %v (bits %x)",
						n, trial, r, got[r], math.Float64bits(got[r]), want, math.Float64bits(want))
				}
			}
		}
	}
}

func TestEMDCircularAllRotationsErrors(t *testing.T) {
	t.Parallel()
	if _, err := EMDCircularAllRotations([]float64{1}, []float64{0.5, 0.5}, nil, nil); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := EMDCircularAllRotations(nil, nil, nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := EMDCircularAllRotations([]float64{1, 0}, []float64{0.2, 0.2}, nil, nil); err == nil {
		t.Error("unequal mass should fail")
	}
}

// TestEMDCircularAllRotationsNoAlloc verifies the kernel is allocation-free
// once the caller owns out and scratch.
func TestEMDCircularAllRotationsNoAlloc(t *testing.T) {
	p := make([]float64, 24)
	q := make([]float64, 24)
	for i := range p {
		p[i] = 1.0 / 24
		q[i] = 1.0 / 24
	}
	p[3], p[4] = p[3]+0.01, p[4]-0.01
	out := make([]float64, 24)
	scratch := make([]float64, 48)
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := EMDCircularAllRotations(p, q, out, scratch); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Errorf("EMDCircularAllRotations allocates %v times per call, want 0", allocs)
	}
}

func TestEMDUniformVsPeaked(t *testing.T) {
	t.Parallel()
	// A peaked profile should be far from uniform; this is the flat-profile
	// polishing criterion's discriminative signal (§IV-C).
	uniform := make([]float64, 24)
	for i := range uniform {
		uniform[i] = 1.0 / 24
	}
	peaked := make([]float64, 24)
	peaked[21] = 1
	d, err := EMDCircular(uniform, peaked)
	if err != nil {
		t.Fatal(err)
	}
	if d < 3 {
		t.Errorf("EMD(uniform, peaked) = %g, expected substantial distance", d)
	}
	if math.IsNaN(d) {
		t.Error("NaN distance")
	}
}
