package tz

import (
	"fmt"
	"sort"
	"time"
)

// The region catalogue. Offsets are standard (non-DST) offsets as of the
// paper's data-collection period (2016-2018). Sources are noted inline
// where the paper is explicit.

func winterHolidays() []HolidayWindow {
	return []HolidayWindow{{
		Name:       "winter holidays",
		StartMonth: time.December, StartDay: 20,
		EndMonth: time.January, EndDay: 6,
	}}
}

// Catalogue returns all built-in regions, sorted by name. The slice and its
// contents are fresh copies; callers may mutate them freely.
func Catalogue() []Region {
	regions := []Region{
		// The 14 Table I regions.
		{Name: "Brazil", Code: "br", StandardOffset: -3, DST: SouthernDST(), Holidays: winterHolidays()},
		{Name: "California", Code: "us-ca", StandardOffset: -8, DST: NorthernDST(), Holidays: winterHolidays()},
		{Name: "Finland", Code: "fi", StandardOffset: 2, DST: NorthernDST(), Holidays: winterHolidays()},
		{Name: "France", Code: "fr", StandardOffset: 1, DST: NorthernDST(), Holidays: winterHolidays()},
		{Name: "Germany", Code: "de", StandardOffset: 1, DST: NorthernDST(), Holidays: winterHolidays()},
		{Name: "Illinois", Code: "us-il", StandardOffset: -6, DST: NorthernDST(), Holidays: winterHolidays()},
		{Name: "Italy", Code: "it", StandardOffset: 1, DST: NorthernDST(), Holidays: winterHolidays()},
		{Name: "Japan", Code: "jp", StandardOffset: 9, DST: NoDST(), Holidays: winterHolidays()},
		{Name: "Malaysia", Code: "my", StandardOffset: 8, DST: NoDST(), Holidays: winterHolidays()},
		{Name: "New South Wales", Code: "au-nsw", StandardOffset: 10, DST: SouthernDST(), Holidays: winterHolidays()},
		{Name: "New York", Code: "us-ny", StandardOffset: -5, DST: NorthernDST(), Holidays: winterHolidays()},
		{Name: "Poland", Code: "pl", StandardOffset: 1, DST: NorthernDST(), Holidays: winterHolidays()},
		// Turkey abandoned DST in September 2016 and stays on UTC+3.
		{Name: "Turkey", Code: "tr", StandardOffset: 3, DST: NoDST(), Holidays: winterHolidays()},
		{Name: "United Kingdom", Code: "uk", StandardOffset: 0, DST: NorthernDST(), Holidays: winterHolidays()},

		// Additional regions needed by the Dark Web evaluation (§V).
		// Russia dropped DST in 2014; Moscow is UTC+3 year round.
		{Name: "Russia (Moscow)", Code: "ru-msk", StandardOffset: 3, DST: NoDST(), Holidays: winterHolidays()},
		// The Caucasus / Gulf component of the Pedo Support crowd (UTC+4).
		{Name: "United Arab Emirates", Code: "ae", StandardOffset: 4, DST: NoDST(), Holidays: nil},
		// Southern Brazil / Paraguay: UTC-3 in (southern) summer because
		// Paraguay's standard offset is UTC-4 with southern DST; the paper
		// treats the component as "UTC-3, southern hemisphere, uses DST".
		{Name: "Paraguay", Code: "py", StandardOffset: -4, DST: SouthernDST(), Holidays: nil},
		// US Pacific component of the Pedo Support crowd (UTC-8/-7).
		{Name: "US Pacific", Code: "us-pac", StandardOffset: -8, DST: NorthernDST(), Holidays: winterHolidays()},
		// Central US (Chicago, New Orleans, Mexico City) component of the
		// Dream Market and Majestic Garden crowds.
		{Name: "US Central", Code: "us-cen", StandardOffset: -6, DST: NorthernDST(), Holidays: winterHolidays()},
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i].Name < regions[j].Name })
	return regions
}

// TableIRegions returns the 14 regions of Table I, sorted by name as in the
// paper's table.
func TableIRegions() []Region {
	table := map[string]bool{
		"Brazil": true, "California": true, "Finland": true, "France": true,
		"Germany": true, "Illinois": true, "Italy": true, "Japan": true,
		"Malaysia": true, "New South Wales": true, "New York": true,
		"Poland": true, "Turkey": true, "United Kingdom": true,
	}
	var out []Region
	for _, r := range Catalogue() {
		if table[r.Name] {
			out = append(out, r)
		}
	}
	return out
}

// ByCode looks a region up by its short code.
func ByCode(code string) (Region, error) {
	for _, r := range Catalogue() {
		if r.Code == code {
			return r, nil
		}
	}
	return Region{}, fmt.Errorf("tz: unknown region code %q", code)
}

// ByName looks a region up by its display name.
func ByName(name string) (Region, error) {
	for _, r := range Catalogue() {
		if r.Name == name {
			return r, nil
		}
	}
	return Region{}, fmt.Errorf("tz: unknown region %q", name)
}
