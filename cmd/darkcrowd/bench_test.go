package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"darkcrowd/internal/bench"
)

// TestBenchCommand boots a real daemon via the serve subcommand and runs
// the bench subcommand against it end-to-end: a short mixed run, the
// report written with an embedded baseline, and the -check gate.
func TestBenchCommand(t *testing.T) {
	type hooked struct {
		addr string
		stop context.CancelFunc
	}
	ready := make(chan hooked, 1)
	serveTestHook = func(addr string, stop context.CancelFunc) {
		ready <- hooked{addr, stop}
	}
	defer func() { serveTestHook = nil }()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve",
			"-addr", "127.0.0.1:0",
			"-twitter-scale", "300",
			"-min-posts", "3",
			"-skip-polish",
			"-shards", "4",
			"-refit-debounce", "5ms",
		})
	}()
	var h hooked
	select {
	case h = <-ready:
	case err := <-done:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("timed out waiting for the daemon to bind")
	}
	url := "http://" + h.addr
	defer func() {
		h.stop()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("daemon shutdown: %v", err)
			}
		case <-time.After(60 * time.Second):
			t.Error("timed out waiting for graceful shutdown")
		}
	}()

	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_serve.json")

	// Baseline run first, then the current run into the same file: both
	// sections must survive.
	baseArgs := []string{"bench", "-url", url, "-concurrent", "2",
		"-duration", "300ms", "-ingest-batch", "16", "-out", out}
	stdout := captureStdout(t, func() error {
		return run(append(baseArgs, "-as-baseline"))
	})
	if !strings.Contains(stdout, "ops/s") {
		t.Errorf("bench printed no throughput:\n%s", stdout)
	}
	stdout = captureStdout(t, func() error { return run(baseArgs) })
	if !strings.Contains(stdout, "wrote "+out) {
		t.Errorf("bench did not report writing the report:\n%s", stdout)
	}
	rep, err := bench.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Serve == nil || rep.ServeBaseline == nil {
		t.Fatalf("report missing a section: serve=%v baseline=%v", rep.Serve, rep.ServeBaseline)
	}
	if rep.Serve.TotalOps == 0 || rep.Serve.OpsPerSec <= 0 {
		t.Errorf("serve section empty: %+v", rep.Serve)
	}
	if rep.Ratios["serve_speedup_vs_baseline"] == 0 {
		t.Errorf("speedup ratio not derived: %v", rep.Ratios)
	}

	// The -check gate passes against the report this same machine just
	// wrote (same daemon, same load — far within 2x).
	if err := run([]string{"bench", "-url", url, "-concurrent", "2",
		"-duration", "300ms", "-ingest-batch", "16", "-check", out}); err != nil {
		t.Errorf("bench -check against own report failed: %v", err)
	}

	// Flag errors.
	if err := run([]string{"bench"}); err == nil || !strings.Contains(err.Error(), "required") {
		t.Errorf("bench without -url: %v", err)
	}
	if err := run([]string{"bench", "-url", url, "-workload", "bogus"}); err == nil {
		t.Error("bench with unknown workload should fail")
	}
	_ = os.Remove(out)
}
