package trace

import (
	"bytes"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to both the strict and the lenient CSV
// reader. Invariants:
//
//   - neither reader may ever panic, whatever the input;
//   - the lenient reader never keeps more rows than it saw, and its
//     quarantine sample never exceeds the cap;
//   - any input the strict reader accepts is a valid dataset, and encoding
//     it with WriteCSV and reading it back reproduces the posts exactly,
//     with the re-encoding byte-identical (WriteCSV output is a fixpoint).
func FuzzReadCSV(f *testing.F) {
	f.Add([]byte("user_id,time_rfc3339\nu1,2017-03-01T10:00:00Z\n"))
	f.Add([]byte("user_id,time_rfc3339\n\"u,1\",2017-03-01T10:00:00Z\nu2,2017-12-31T23:59:59Z\n"))
	f.Add([]byte("user_id,time_rfc3339\nu1,notatime\nu2,2017-03-01T10:00:00Z\n"))
	f.Add([]byte("user_id,time_rfc3339\nu1,2017-03-01T10:00:00+02:00\n"))
	f.Add([]byte("user_id,time_rfc3339"))
	f.Add([]byte(""))
	f.Add([]byte("\"\n\x00,"))
	f.Fuzz(func(t *testing.T, data []byte) {
		strict, err := ReadCSV("fuzz", bytes.NewReader(data))
		lenient, report, lerr := ReadCSVOpts("fuzz", bytes.NewReader(data),
			ReadCSVOptions{Lenient: true, MaxBadRows: 1 << 20, SampleCap: 4})
		if lerr == nil && len(report.Rows) > 4 {
			t.Fatalf("quarantine sample %d rows, cap 4", len(report.Rows))
		}
		if err != nil {
			return
		}
		// Strict success implies lenient success with an empty quarantine
		// and the identical dataset.
		if lerr != nil {
			t.Fatalf("strict accepted but lenient failed: %v", lerr)
		}
		if !report.Empty() {
			t.Fatalf("strict accepted but lenient quarantined %d rows", report.BadRows)
		}
		if len(lenient.Posts) != len(strict.Posts) {
			t.Fatalf("lenient kept %d posts, strict %d", len(lenient.Posts), len(strict.Posts))
		}
		// Round trip: encode, re-read, re-encode. Posts must survive
		// exactly and the encoding must be a byte-identical fixpoint.
		var once bytes.Buffer
		if err := strict.WriteCSV(&once); err != nil {
			t.Fatalf("WriteCSV of accepted dataset: %v", err)
		}
		back, err := ReadCSV("fuzz", bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("re-read of WriteCSV output: %v\n%q", err, once.Bytes())
		}
		if len(back.Posts) != len(strict.Posts) {
			t.Fatalf("round trip kept %d posts, want %d", len(back.Posts), len(strict.Posts))
		}
		for i := range strict.Posts {
			if back.Posts[i].UserID != strict.Posts[i].UserID || !back.Posts[i].Time.Equal(strict.Posts[i].Time) {
				t.Fatalf("post %d drifted in round trip: %+v vs %+v", i, back.Posts[i], strict.Posts[i])
			}
		}
		var twice bytes.Buffer
		if err := back.WriteCSV(&twice); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("WriteCSV is not a fixpoint:\n%q\nvs\n%q", once.Bytes(), twice.Bytes())
		}
	})
}
