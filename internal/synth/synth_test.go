package synth

import (
	"math"
	"testing"
	"time"

	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

func TestDefaultRhythmShape(t *testing.T) {
	t.Parallel()
	r := DefaultRhythm()
	// Night trough between 1h and 7h (§IV): every night hour below every
	// daytime hour.
	for night := 1; night <= 6; night++ {
		for day := 9; day <= 22; day++ {
			if r[night] >= r[day] {
				t.Errorf("rhythm[%d]=%g not below rhythm[%d]=%g", night, r[night], day, r[day])
			}
		}
	}
	// Peak at 21h local.
	for h := range r {
		if r[h] > r[21] {
			t.Errorf("peak at %d (%g), want 21", h, r[h])
		}
	}
	// Lunch dip: 13h below late morning and mid-afternoon.
	if r[13] >= r[11] || r[13] >= r[15] {
		t.Errorf("no lunch dip: r[11]=%g r[13]=%g r[15]=%g", r[11], r[13], r[15])
	}
	// Lowest activity around 4am-5am (§IV-A).
	if rMin := minIndex(r); rMin != 4 {
		t.Errorf("minimum at %d, want 4", rMin)
	}
}

func minIndex(r Rhythm) int {
	best := 0
	for i := range r {
		if r[i] < r[best] {
			best = i
		}
	}
	return best
}

func TestRhythmShifted(t *testing.T) {
	t.Parallel()
	r := DefaultRhythm()
	s := r.Shifted(3)
	// Peak moves from 21 to 0.
	if got := maxIndex(s); got != 0 {
		t.Errorf("Shifted(3) peak at %d, want 0", got)
	}
	// Integer shift is exact.
	for h := 0; h < 24; h++ {
		if math.Abs(s[(h+3)%24]-r[h]) > 1e-12 {
			t.Errorf("Shifted(3)[%d] = %g, want %g", (h+3)%24, s[(h+3)%24], r[h])
		}
	}
	// Fractional shift interpolates between neighbours.
	half := r.Shifted(0.5)
	for h := 0; h < 24; h++ {
		lo := r[(h-1+24)%24]
		hi := r[h]
		want := (lo + hi) / 2
		if math.Abs(half[h]-want) > 1e-12 {
			t.Errorf("Shifted(0.5)[%d] = %g, want %g", h, half[h], want)
		}
	}
	// Zero shift is identity.
	if r.Shifted(0) != r {
		t.Error("Shifted(0) not identity")
	}
}

func maxIndex(r Rhythm) int {
	best := 0
	for i := range r {
		if r[i] > r[best] {
			best = i
		}
	}
	return best
}

func TestFlatRhythm(t *testing.T) {
	t.Parallel()
	f := FlatRhythm()
	for h := 1; h < 24; h++ {
		if f[h] != f[0] {
			t.Fatal("flat rhythm is not flat")
		}
	}
	if got := f.Scale(2).Total(); math.Abs(got-2*f.Total()) > 1e-12 {
		t.Errorf("Scale/Total: %g", got)
	}
}

func TestGenerateCrowdDeterminism(t *testing.T) {
	t.Parallel()
	cfg := CrowdConfig{
		Name:   "det",
		Groups: []Group{{Region: mustRegion("de"), Users: 5, PostsPerUser: 50}},
	}
	a, err := GenerateCrowd(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateCrowd(42, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumPosts() != b.NumPosts() {
		t.Fatalf("same seed, different post counts: %d vs %d", a.NumPosts(), b.NumPosts())
	}
	for i := range a.Posts {
		if a.Posts[i] != b.Posts[i] {
			t.Fatalf("post %d differs", i)
		}
	}
	c, err := GenerateCrowd(43, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := a.NumPosts() == c.NumPosts()
	if same {
		for i := range a.Posts {
			if a.Posts[i] != c.Posts[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateCrowdVolume(t *testing.T) {
	t.Parallel()
	ds, err := GenerateCrowd(1, CrowdConfig{
		Name:   "vol",
		Groups: []Group{{Region: mustRegion("jp"), Users: 40, PostsPerUser: 80}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mean := float64(ds.NumPosts()) / 40
	if mean < 50 || mean > 120 {
		t.Errorf("mean posts per user = %g, want ~80", mean)
	}
	if got := len(ds.Users()); got != 40 {
		t.Errorf("generated %d users, want 40", got)
	}
	for u, label := range ds.GroundTruth {
		if label != "jp" {
			t.Errorf("user %s labelled %q", u, label)
		}
	}
}

func TestGenerateCrowdErrors(t *testing.T) {
	t.Parallel()
	if _, err := GenerateCrowd(1, CrowdConfig{}); err == nil {
		t.Error("no groups should fail")
	}
	if _, err := GenerateCrowd(1, CrowdConfig{
		Groups: []Group{{Region: mustRegion("de"), Users: 0}},
	}); err == nil {
		t.Error("zero users should fail")
	}
	if _, err := GenerateCrowd(1, CrowdConfig{
		Groups: []Group{{Region: mustRegion("de"), Users: 1}},
		Start:  time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC),
		End:    time.Date(2017, 1, 1, 0, 0, 0, 0, time.UTC),
	}); err == nil {
		t.Error("inverted window should fail")
	}
}

func TestGeneratedProfileMatchesRegion(t *testing.T) {
	t.Parallel()
	// A German crowd's UTC-frame population profile should peak in the
	// evening German local hours (19-22 local => 17-21 UTC depending on
	// DST) and trough during the German night.
	ds, err := GenerateCrowd(7, CrowdConfig{
		Name:   "de-check",
		Groups: []Group{{Region: mustRegion("de"), Users: 60, PostsPerUser: 120}},
	})
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := profile.BuildUserProfiles(ds, profile.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var list []profile.Profile
	for _, id := range profile.SortedUserIDs(profiles) {
		list = append(list, profiles[id])
	}
	pop, err := profile.Aggregate(list)
	if err != nil {
		t.Fatal(err)
	}
	peak := argmaxProfile(pop)
	if peak < 17 && peak > 21 {
		t.Errorf("German UTC-frame peak at %d, want 17..21", peak)
	}
	// Night trough: local 4am is 2-3 UTC.
	if pop[2] > pop[19]/3 {
		t.Errorf("night activity too high: pop[2]=%g pop[19]=%g", pop[2], pop[19])
	}
}

func argmaxProfile(p profile.Profile) int {
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

func TestBotProfileIsFlat(t *testing.T) {
	t.Parallel()
	ds, err := GenerateCrowd(11, CrowdConfig{
		Name:   "bots",
		Groups: []Group{{Region: mustRegion("de"), Users: 10, PostsPerUser: 200, Kind: KindBot}},
	})
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := profile.BuildUserProfiles(ds, profile.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	uniform := profile.Uniform()
	for id, p := range profiles {
		d, err := p.EMD(uniform)
		if err != nil {
			t.Fatal(err)
		}
		if d > 1.5 {
			t.Errorf("bot %s EMD from uniform = %g, want close to 0", id, d)
		}
	}
}

func TestShiftWorkerDisplaced(t *testing.T) {
	t.Parallel()
	regular, err := GenerateCrowd(12, CrowdConfig{
		Name:   "reg",
		Groups: []Group{{Region: mustRegion("jp"), Users: 30, PostsPerUser: 150}},
	})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := GenerateCrowd(12, CrowdConfig{
		Name:   "shift",
		Groups: []Group{{Region: mustRegion("jp"), Users: 30, PostsPerUser: 150, Kind: KindShiftWorker}},
	})
	if err != nil {
		t.Fatal(err)
	}
	pr := mustPopulation(t, regular)
	ps := mustPopulation(t, shifted)
	dr := argmaxProfile(pr)
	dsPeak := argmaxProfile(ps)
	dist := dr - dsPeak
	if dist < 0 {
		dist = -dist
	}
	if dist > 12 {
		dist = 24 - dist
	}
	if dist < 6 {
		t.Errorf("shift-worker peak only %dh from regular peak", dist)
	}
}

func mustPopulation(t *testing.T, ds *trace.Dataset) profile.Profile {
	t.Helper()
	profiles, err := profile.BuildUserProfiles(ds, profile.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var list []profile.Profile
	for _, id := range profile.SortedUserIDs(profiles) {
		list = append(list, profiles[id])
	}
	pop, err := profile.Aggregate(list)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestTwitterDatasetScaled(t *testing.T) {
	t.Parallel()
	ds, err := TwitterDataset(1, TwitterOptions{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, label := range ds.GroundTruth {
		counts[label]++
	}
	if len(counts) != 14 {
		t.Fatalf("got %d regions, want 14", len(counts))
	}
	// Scaled counts: Brazil 3763/100 = 37, Finland 73/100 -> floor 0 -> 1.
	if counts["br"] != 37 {
		t.Errorf("Brazil users = %d, want 37", counts["br"])
	}
	if counts["fi"] != 1 {
		t.Errorf("Finland users = %d, want 1 (floored)", counts["fi"])
	}
}

func TestTableIUserCount(t *testing.T) {
	t.Parallel()
	n, err := TableIUserCount("de")
	if err != nil {
		t.Fatal(err)
	}
	if n != 470 {
		t.Errorf("Germany = %d, want 470", n)
	}
	if _, err := TableIUserCount("xx"); err == nil {
		t.Error("unknown code should fail")
	}
	var total int
	for code := range tableIUserCounts {
		n, err := TableIUserCount(code)
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 22576 {
		t.Errorf("Table I total = %d, want 22576", total)
	}
}

func TestForumSpecs(t *testing.T) {
	t.Parallel()
	specs := ForumSpecs()
	if len(specs) != 5 {
		t.Fatalf("%d forum specs, want 5", len(specs))
	}
	var users, posts int
	for _, s := range specs {
		users += s.Users
		posts += s.Posts
		var mixTotal float64
		for _, share := range s.Mix {
			mixTotal += share
		}
		if math.Abs(mixTotal-1) > 1e-9 {
			t.Errorf("%s mix sums to %g", s.Name, mixTotal)
		}
		for code := range s.Mix {
			if _, err := tz.ByCode(code); err != nil {
				t.Errorf("%s: mix region %q unknown: %v", s.Name, code, err)
			}
		}
	}
	// §VIII: "we analyzed 1,378 anonymous users ... 151,770 posts".
	if users != 1378 {
		t.Errorf("total forum users = %d, want 1378", users)
	}
	if posts != 151770 {
		t.Errorf("total forum posts = %d, want 151770", posts)
	}
	if _, err := ForumSpecByName("CRD Club"); err != nil {
		t.Errorf("ForumSpecByName: %v", err)
	}
	if _, err := ForumSpecByName("nope"); err == nil {
		t.Error("unknown forum should fail")
	}
}

func TestForumCrowdCensus(t *testing.T) {
	t.Parallel()
	spec, err := ForumSpecByName("Italian DarkNet Community")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := ForumCrowd(3, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Users()); got != spec.Users {
		t.Errorf("IDC users = %d, want %d", got, spec.Users)
	}
	ratio := float64(ds.NumPosts()) / float64(spec.Posts)
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("IDC posts = %d, want within 60%% of %d", ds.NumPosts(), spec.Posts)
	}
	bad := ForumSpec{Name: "bad", Users: 0, Posts: 0}
	if _, err := ForumCrowd(1, bad); err == nil {
		t.Error("invalid census should fail")
	}
}

func TestRezonedRegion(t *testing.T) {
	t.Parallel()
	my := mustRegion("my")
	r := RezonedRegion(my, -7)
	if r.StandardOffset != -7 {
		t.Errorf("offset = %d, want -7", r.StandardOffset)
	}
	if r.DST.Observed {
		t.Error("rezoned region should not observe DST")
	}
	if r.Code == my.Code {
		t.Error("rezoned region should have a distinct code")
	}
	// Original untouched.
	if my.StandardOffset != 8 {
		t.Error("RezonedRegion mutated its input")
	}
}

func TestFig6Datasets(t *testing.T) {
	t.Parallel()
	a, err := Fig6aDataset(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	labels := make(map[string]bool)
	for _, l := range a.GroundTruth {
		labels[l] = true
	}
	if len(labels) != 3 {
		t.Errorf("Fig6a has %d labels, want 3: %v", len(labels), labels)
	}
	b, err := Fig6bDataset(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Users()); got != 30 {
		t.Errorf("Fig6b users = %d, want 30", got)
	}
	if _, err := Fig6aDataset(1, 0); err == nil {
		t.Error("zero users should fail")
	}
	if _, err := Fig6bDataset(1, -1); err == nil {
		t.Error("negative users should fail")
	}
}

func TestUserKindString(t *testing.T) {
	t.Parallel()
	if KindRegular.String() != "regular" || KindBot.String() != "bot" || KindShiftWorker.String() != "shift-worker" {
		t.Error("kind strings wrong")
	}
	if UserKind(99).String() != "UserKind(99)" {
		t.Error("unknown kind string wrong")
	}
}

func TestDeliberateShift(t *testing.T) {
	t.Parallel()
	// A coordinated crowd posting 6 hours later must show a population
	// profile displaced ~6h from an honest crowd of the same region.
	honest, err := GenerateCrowd(21, CrowdConfig{
		Name:   "honest",
		Groups: []Group{{Region: mustRegion("jp"), Users: 40, PostsPerUser: 150}},
	})
	if err != nil {
		t.Fatal(err)
	}
	shifted, err := GenerateCrowd(21, CrowdConfig{
		Name:   "shifted",
		Groups: []Group{{Region: mustRegion("jp"), Users: 40, PostsPerUser: 150, DeliberateShift: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ph := mustPopulation(t, honest)
	ps := mustPopulation(t, shifted)
	dh := argmaxProfile(ph)
	dsPeak := argmaxProfile(ps)
	diff := (dsPeak - dh + 24) % 24
	if diff < 5 || diff > 7 {
		t.Errorf("peak displaced by %dh, want ~6 (honest %d, shifted %d)", diff, dh, dsPeak)
	}
}

func TestWeekendEffect(t *testing.T) {
	t.Parallel()
	// With WeekendEffect, weekend activity per day should exceed weekday
	// activity per day, and the weekend pattern should run later.
	ds, err := GenerateCrowd(31, CrowdConfig{
		Name:          "weekend",
		Groups:        []Group{{Region: mustRegion("jp"), Users: 40, PostsPerUser: 300}},
		WeekendEffect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	jp := mustRegion("jp")
	var weekendPosts, weekdayPosts int
	for _, p := range ds.Posts {
		switch jp.LocalTime(p.Time).Weekday() {
		case time.Saturday, time.Sunday:
			weekendPosts++
		default:
			weekdayPosts++
		}
	}
	perWeekendDay := float64(weekendPosts) / 2
	perWeekday := float64(weekdayPosts) / 5
	if perWeekendDay <= perWeekday {
		t.Errorf("weekend/day %f not above weekday/day %f", perWeekendDay, perWeekday)
	}
	// Without the flag the ratio is ~1.
	plain, err := GenerateCrowd(31, CrowdConfig{
		Name:   "plain",
		Groups: []Group{{Region: jp, Users: 40, PostsPerUser: 300}},
	})
	if err != nil {
		t.Fatal(err)
	}
	weekendPosts, weekdayPosts = 0, 0
	for _, p := range plain.Posts {
		switch jp.LocalTime(p.Time).Weekday() {
		case time.Saturday, time.Sunday:
			weekendPosts++
		default:
			weekdayPosts++
		}
	}
	ratio := (float64(weekendPosts) / 2) / (float64(weekdayPosts) / 5)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("plain weekend/weekday ratio = %f, want ~1", ratio)
	}
}
