package darkcrowd

// Golden-fixture regression test: a seeded end-to-end GeolocateCrowd run
// is snapshotted to testdata/geolocate_golden.json and every future run
// must reproduce it exactly. The fixture freezes the whole numeric
// pipeline — synthesis, profile building, polishing, EMD placement, EM —
// so any unintended change to the math shows up as a diff, not as a
// silently shifted result. Regenerate after an *intended* change with:
//
//	go test -run TestGeolocateCrowdGolden -update
//
// and review the fixture diff like any other code change.

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"darkcrowd/internal/obs"
	"darkcrowd/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden fixtures")

const goldenPath = "testdata/geolocate_golden.json"

// goldenReport is the serialized snapshot. Floats are stored as exact
// bit patterns alongside their readable values, so the comparison is
// bit-for-bit while the fixture stays reviewable.
type goldenReport struct {
	Components         []goldenComponent `json:"components"`
	PlacementHistogram []string          `json:"placement_histogram_bits"`
	HistogramReadable  []float64         `json:"placement_histogram"`
	ActiveUsers        int               `json:"active_users"`
	RemovedUsers       []string          `json:"removed_users"`
	AvgFitDistance     string            `json:"avg_fit_distance_bits"`
	StdFitDistance     string            `json:"std_fit_distance_bits"`
}

type goldenComponent struct {
	WeightBits    string  `json:"weight_bits"`
	OffsetBits    string  `json:"offset_bits"`
	SigmaBits     string  `json:"sigma_bits"`
	Weight        float64 `json:"weight"`
	Offset        float64 `json:"offset"`
	NearestOffset string  `json:"nearest_offset"`
	Sigma         float64 `json:"sigma"`
}

func bits(v float64) string {
	return fmt.Sprintf("%016x", math.Float64bits(v))
}

func snapshotReport(r *Report) goldenReport {
	g := goldenReport{
		ActiveUsers:       r.ActiveUsers,
		RemovedUsers:      r.RemovedUsers,
		HistogramReadable: r.PlacementHistogram,
		AvgFitDistance:    bits(r.AvgFitDistance),
		StdFitDistance:    bits(r.StdFitDistance),
	}
	for _, v := range r.PlacementHistogram {
		g.PlacementHistogram = append(g.PlacementHistogram, bits(v))
	}
	for _, c := range r.Components {
		g.Components = append(g.Components, goldenComponent{
			WeightBits:    bits(c.Weight),
			OffsetBits:    bits(c.Offset),
			SigmaBits:     bits(c.Sigma),
			Weight:        c.Weight,
			Offset:        c.Offset,
			NearestOffset: c.NearestOffset.String(),
			Sigma:         c.Sigma,
		})
	}
	return g
}

// goldenRun is the frozen pipeline configuration. Changing any seed or
// size here invalidates the fixture.
func goldenRun(t *testing.T) *Report {
	t.Helper()
	labelled, err := SyntheticTwitterDataset(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildReference(labelled)
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := SyntheticCrowd(2, map[string]int{"jp": 60, "us-il": 30}, 100)
	if err != nil {
		t.Fatal(err)
	}
	report, err := GeolocateCrowd(crowd.Posts, ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return report
}

func TestGeolocateCrowdGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end golden run in -short mode")
	}
	got := snapshotReport(goldenRun(t))

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read fixture (run with -update to create it): %v", err)
	}
	var want goldenReport
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Errorf("geolocation drifted from golden fixture %s\n"+
			"if the change is intended, regenerate with -update and review the diff\ngot:\n%s",
			goldenPath, gotJSON)
	}
}

// TestGeolocateCrowdGoldenIngestInvariant round-trips the golden crowd
// through every ingest path — sequential CSV read, sharded parallel read,
// binary snapshot round-trip, and the fused parse+cell-collect path — and
// demands each one reproduce the committed fixture bit for bit. The
// fixture pins not just the math but every road into it.
func TestGeolocateCrowdGoldenIngestInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end ingest sweep in -short mode")
	}
	labelled, err := SyntheticTwitterDataset(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildReference(labelled)
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := SyntheticCrowd(2, map[string]int{"jp": 60, "us-il": 30}, 100)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := crowd.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	csvBytes := csvBuf.Bytes()

	seq, err := trace.ReadCSV("golden", bytes.NewReader(csvBytes))
	if err != nil {
		t.Fatal(err)
	}
	sharded, _, err := trace.ReadCSVParallel("golden", csvBytes, trace.ReadCSVOptions{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	var snapBuf bytes.Buffer
	if err := seq.WriteSnapshot(&snapBuf); err != nil {
		t.Fatal(err)
	}
	snapped, err := trace.ReadSnapshotBytes(snapBuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	fused, err := trace.IngestCSV("golden", csvBytes, trace.IngestOptions{Workers: 3, CollectCells: true})
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read fixture (run with -update to create it): %v", err)
	}
	var want goldenReport
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	paths := []struct {
		name string
		ds   *Dataset
	}{
		{"sequential", seq},
		{"sharded", sharded},
		{"snapshot", snapped},
		{"fused", fused.Dataset},
	}
	for _, p := range paths {
		report, err := GeolocateCrowd(p.ds.Posts, ref, Options{})
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if got := snapshotReport(report); !reflect.DeepEqual(want, got) {
			t.Errorf("%s ingest path drifted from golden fixture %s", p.name, goldenPath)
		}
	}
}

// TestGeolocateCrowdGoldenParallelismInvariant re-runs the golden
// pipeline at several worker counts and demands the identical snapshot —
// the facade-level version of the placement determinism property.
func TestGeolocateCrowdGoldenParallelismInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end determinism sweep in -short mode")
	}
	labelled, err := SyntheticTwitterDataset(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildReference(labelled)
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := SyntheticCrowd(2, map[string]int{"jp": 60, "us-il": 30}, 100)
	if err != nil {
		t.Fatal(err)
	}
	var base goldenReport
	for i, workers := range []int{1, 2, 4, 7, 16} {
		report, err := GeolocateCrowd(crowd.Posts, ref, Options{Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		snap := snapshotReport(report)
		if i == 0 {
			base = snap
			continue
		}
		if !reflect.DeepEqual(base, snap) {
			t.Errorf("workers=%d: report differs from workers=1", workers)
		}
	}
}

// TestGeolocateCrowdObservationInvariant runs the golden pipeline
// unobserved and fully observed (metrics registry + stage span + logger)
// and demands bit-identical snapshots — instrumentation must never
// perturb the numbers. It also sanity-checks that the observed run
// actually recorded the pipeline stages and counters.
func TestGeolocateCrowdObservationInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end observation sweep in -short mode")
	}
	labelled, err := SyntheticTwitterDataset(1, 60)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildReference(labelled)
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := SyntheticCrowd(2, map[string]int{"jp": 60, "us-il": 30}, 100)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := GeolocateCrowd(crowd.Posts, ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	o := &obs.Observer{
		Metrics: obs.NewRegistry(),
		Span:    obs.StartSpan("geolocate"),
		Log:     obs.NewLogger(&logBuf),
	}
	observed, err := GeolocateCrowd(crowd.Posts, ref, Options{Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	o.Span.End()
	if !reflect.DeepEqual(snapshotReport(plain), snapshotReport(observed)) {
		t.Error("observed run differs from unobserved run — instrumentation perturbed the pipeline")
	}
	for _, stage := range []string{"profile-build", "polish", "placement", "em-select"} {
		if o.Span.Find(stage) == nil {
			t.Errorf("stage %q missing from span tree:\n%s", stage, o.Span.Tree())
		}
	}
	snap := o.Metrics.Snapshot()
	if got := snap.Counters["placement.users_placed"]; got != int64(observed.ActiveUsers) {
		t.Errorf("placement.users_placed = %d, want %d", got, observed.ActiveUsers)
	}
	if snap.Counters["profile.users_built"] == 0 {
		t.Error("profile.users_built not recorded")
	}
	if snap.Gauges["em.selected_k"] != int64(len(observed.Components)) {
		t.Errorf("em.selected_k = %d, want %d", snap.Gauges["em.selected_k"], len(observed.Components))
	}
	if !strings.Contains(logBuf.String(), "stage=em-select") {
		t.Errorf("progress log missing em-select event:\n%s", logBuf.String())
	}
}
