package experiments

import (
	"fmt"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/tz"
)

// Ablation benches for the design choices DESIGN.md calls out. These have
// no counterpart figure in the paper; they quantify why the methodology is
// built the way it is.

// placementAccuracy measures the fraction of users of a labelled dataset
// placed within one zone of their region's standard offset.
func (l *Lab) placementAccuracy(dist geoloc.DistanceKind, minPosts int, polish bool) (float64, int, error) {
	gen, err := l.Generic()
	if err != nil {
		return 0, 0, err
	}
	ds, err := l.Twitter()
	if err != nil {
		return 0, 0, err
	}
	buildOpts := l.buildOptions()
	buildOpts.MinPosts = minPosts
	profiles, err := profile.BuildUserProfiles(ds, buildOpts)
	if err != nil {
		return 0, 0, err
	}
	if polish {
		polished, err := profile.Polish(profiles, gen.Generic, true)
		if err != nil {
			return 0, 0, err
		}
		profiles = polished.Kept
	}
	placeOpts := l.placeOptions()
	placeOpts.Distance = dist
	placement, err := geoloc.PlaceUsers(profiles, gen.Generic, placeOpts)
	if err != nil {
		return 0, 0, err
	}
	correct, total := 0, 0
	for user, placed := range placement.Assignments {
		code, ok := ds.GroundTruth[user]
		if !ok {
			continue
		}
		region, err := tz.ByCode(code)
		if err != nil {
			continue
		}
		total++
		// DST-observing regions legitimately place one zone east for a
		// large part of the year; accept offset..offset+1 +/- 1.
		d := placed.CircularDistance(region.StandardOffset)
		dDST := placed.CircularDistance((region.StandardOffset + 1).Normalize())
		if d <= 1 || (region.DST.Observed && dDST <= 1) {
			correct++
		}
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("no labelled users to score")
	}
	return float64(correct) / float64(total), total, nil
}

// AblateDistance compares circular versus linear EMD for placement.
func (l *Lab) AblateDistance() (*Result, error) {
	res := &Result{
		Title: "Ablation — circular vs linear EMD as the placement distance",
		Paper: "(design choice: profiles live on the 24-hour circle, so the transport metric should wrap)",
	}
	circ, total, err := l.placementAccuracy(geoloc.DistanceCircularEMD, profile.DefaultMinPosts, false)
	if err != nil {
		return nil, err
	}
	lin, _, err := l.placementAccuracy(geoloc.DistanceLinearEMD, profile.DefaultMinPosts, false)
	if err != nil {
		return nil, err
	}
	res.Lines = append(res.Lines,
		fmt.Sprintf("  circular EMD: %.1f%% of %d users within +/-1 zone", circ*100, total),
		fmt.Sprintf("  linear EMD:   %.1f%% of %d users within +/-1 zone", lin*100, total))
	res.Measured = fmt.Sprintf("circular %.1f%% vs linear %.1f%%", circ*100, lin*100)
	// The circular metric must not lose to the linear one; it usually
	// wins because crowds near the +/-12 seam otherwise pay a phantom
	// transport cost.
	res.Pass = circ >= lin-0.01 && circ > 0.7
	return res, nil
}

// AblatePolish measures the effect of flat-profile polishing on a
// bot-contaminated crowd.
func (l *Lab) AblatePolish() (*Result, error) {
	res := &Result{
		Title: "Ablation — flat-profile polishing on vs off (bot-contaminated crowd)",
		Paper: "(design choice §IV-C: bots otherwise contaminate placements)",
	}
	gen, err := l.Generic()
	if err != nil {
		return nil, err
	}
	de, err := tz.ByCode("de")
	if err != nil {
		return nil, err
	}
	ds, err := synth.GenerateCrowd(l.cfg.Seed+77, synth.CrowdConfig{
		Name: "ablate-polish",
		Groups: []synth.Group{
			{Region: de, Users: 60, PostsPerUser: 120},
			{Region: de, Users: 20, PostsPerUser: 240, Kind: synth.KindBot, IDPrefix: "bot"},
		},
	})
	if err != nil {
		return nil, err
	}
	profiles, err := profile.BuildUserProfiles(ds, l.buildOptions())
	if err != nil {
		return nil, err
	}

	score := func(profs map[string]profile.Profile) (float64, error) {
		placement, err := geoloc.PlaceUsers(profs, gen.Generic, l.placeOptions())
		if err != nil {
			return 0, err
		}
		fit, err := geoloc.FitSingle(placement)
		if err != nil {
			return 0, err
		}
		return fit.AvgDistance, nil
	}

	rawDist, err := score(profiles)
	if err != nil {
		return nil, err
	}
	polished, err := profile.Polish(profiles, gen.Generic, true)
	if err != nil {
		return nil, err
	}
	cleanDist, err := score(polished.Kept)
	if err != nil {
		return nil, err
	}
	res.Lines = append(res.Lines,
		fmt.Sprintf("  without polishing: %d users, Gaussian fit avg distance %.4f", len(profiles), rawDist),
		fmt.Sprintf("  with polishing:    %d users (removed %d), avg distance %.4f",
			len(polished.Kept), len(polished.Removed), cleanDist))
	res.Measured = fmt.Sprintf("fit avg distance %.4f -> %.4f after polishing", rawDist, cleanDist)
	res.Pass = cleanDist <= rawDist+1e-9 && len(polished.Removed) >= 10
	return res, nil
}

// AblateThreshold validates the paper's 30-post active-user threshold:
// on a heavy-tailed crowd, users below the threshold place markedly worse
// than users above it, which is why "users with just a handful of posts
// ... do not give enough information to profile their behavior" (§IV).
func (l *Lab) AblateThreshold() (*Result, error) {
	res := &Result{
		Title: "Ablation — placement accuracy below vs above the 30-post threshold",
		Paper: "\"users with just a handful of posts ... do not give enough information to profile their behavior\" (§IV)",
	}
	gen, err := l.Generic()
	if err != nil {
		return nil, err
	}
	jp, err := tz.ByCode("jp")
	if err != nil {
		return nil, err
	}
	// Heavy-tailed volume: many users land well below 30 posts.
	ds, err := synth.GenerateCrowd(l.cfg.Seed+88, synth.CrowdConfig{
		Name:        "ablate-threshold",
		Groups:      []synth.Group{{Region: jp, Users: 250, PostsPerUser: 28}},
		VolumeSigma: 1.1,
	})
	if err != nil {
		return nil, err
	}
	buildOpts := l.buildOptions()
	buildOpts.MinPosts = 5
	profiles, err := profile.BuildUserProfiles(ds, buildOpts)
	if err != nil {
		return nil, err
	}
	placement, err := geoloc.PlaceUsers(profiles, gen.Generic, l.placeOptions())
	if err != nil {
		return nil, err
	}
	counts := ds.PostCounts()
	accFor := func(low, high int) (float64, int) {
		correct, total := 0, 0
		for user, placed := range placement.Assignments {
			n := counts[user]
			if n < low || n >= high {
				continue
			}
			total++
			if placed.CircularDistance(jp.StandardOffset) <= 1 {
				correct++
			}
		}
		if total == 0 {
			return 0, 0
		}
		return float64(correct) / float64(total), total
	}
	lowAcc, lowN := accFor(5, profile.DefaultMinPosts)
	highAcc, highN := accFor(profile.DefaultMinPosts, 1<<30)
	res.Lines = append(res.Lines,
		fmt.Sprintf("  users with 5-29 posts:  %.1f%% within +/-1 zone (%d users)", lowAcc*100, lowN),
		fmt.Sprintf("  users with >=30 posts:  %.1f%% within +/-1 zone (%d users)", highAcc*100, highN))
	res.Measured = fmt.Sprintf("below threshold %.1f%% vs above %.1f%%", lowAcc*100, highAcc*100)
	res.Pass = lowN >= 20 && highN >= 20 && highAcc > lowAcc
	return res, nil
}

// AblateReference compares the two ways of building the 24 time-zone
// reference profiles: the paper's choice — one generic profile shifted per
// zone ("we can easily build the profile for every region ... by just
// shifting the generic profile") — against using each region's own
// measured profile where one exists. If shifting loses little accuracy,
// the generic profile is justified (and it covers zones with no labelled
// data at all, which measured profiles cannot).
func (l *Lab) AblateReference() (*Result, error) {
	res := &Result{
		Title: "Ablation — shifted-generic reference profiles vs measured per-region profiles",
		Paper: "\"we can easily build the profile for every region, even those not present in Table I, by just shifting the generic profile\"",
	}
	gen, err := l.Generic()
	if err != nil {
		return nil, err
	}
	ds, err := l.Twitter()
	if err != nil {
		return nil, err
	}
	profiles, err := profile.BuildUserProfiles(ds, l.buildOptions())
	if err != nil {
		return nil, err
	}

	// (a) Generic-based placement accuracy (within one zone of the truth,
	// allowing the DST drift).
	genericAcc, total, err := l.placementAccuracy(geoloc.DistanceCircularEMD, profile.DefaultMinPosts, false)
	if err != nil {
		return nil, err
	}

	// (b) Measured-profile placement: classify each user to the Table I
	// region whose UTC-frame measured profile is EMD-closest, then score
	// by the region's offset.
	type refProfile struct {
		code    string
		region  tz.Region
		utcProf profile.Profile
	}
	var refs []refProfile
	for _, region := range tz.TableIRegions() {
		rp, ok := gen.PerRegion[region.Code]
		if !ok {
			continue
		}
		refs = append(refs, refProfile{
			code:   region.Code,
			region: region,
			// Measured profiles are local-frame; move to the UTC frame
			// at the region's standard offset.
			utcProf: profile.ZoneProfile(rp, region.StandardOffset),
		})
	}
	correct, scored := 0, 0
	for user, p := range profiles {
		truthCode, ok := ds.GroundTruth[user]
		if !ok {
			continue
		}
		truthRegion, err := tz.ByCode(truthCode)
		if err != nil {
			continue
		}
		best := -1
		bestDist := 0.0
		for i, ref := range refs {
			d, err := p.EMD(ref.utcProf)
			if err != nil {
				return nil, err
			}
			if best == -1 || d < bestDist {
				best = i
				bestDist = d
			}
		}
		if best == -1 {
			continue
		}
		scored++
		placed := refs[best].region.StandardOffset
		d := placed.CircularDistance(truthRegion.StandardOffset)
		dDST := placed.CircularDistance((truthRegion.StandardOffset + 1).Normalize())
		if d <= 1 || (truthRegion.DST.Observed && dDST <= 1) {
			correct++
		}
	}
	measuredAcc := float64(correct) / float64(scored)
	res.Lines = append(res.Lines,
		fmt.Sprintf("  shifted generic profiles: %.1f%% of %d users within +/-1 zone", genericAcc*100, total),
		fmt.Sprintf("  measured region profiles: %.1f%% of %d users within +/-1 zone", measuredAcc*100, scored),
		"  (measured profiles only exist for the 14 labelled regions; the",
		"   generic profile covers all 24 zones)")
	res.Measured = fmt.Sprintf("generic %.1f%% vs measured %.1f%%", genericAcc*100, measuredAcc*100)
	// The generic approach must stay within a few points of the measured
	// one — that closeness is what licenses zone coverage by shifting.
	res.Pass = genericAcc >= measuredAcc-0.05
	return res, nil
}

// AblateCrowdSize measures how many users a crowd needs before the
// single-Gaussian fit pins the right zone — the reproduction's analogue of
// a sample-size sensitivity analysis. The paper's smallest forum (IDC) has
// 52 users; this shows why that is still enough.
func (l *Lab) AblateCrowdSize() (*Result, error) {
	res := &Result{
		Title: "Ablation — placement stability vs crowd size",
		Paper: "(the paper's forums range from 52 to 638 users; how small can a crowd be?)",
	}
	gen, err := l.Generic()
	if err != nil {
		return nil, err
	}
	jp, err := tz.ByCode("jp")
	if err != nil {
		return nil, err
	}
	pass := true
	for _, users := range []int{10, 25, 52, 100, 200} {
		ds, err := synth.GenerateCrowd(l.cfg.Seed+int64(users), synth.CrowdConfig{
			Name:   "size-sweep",
			Groups: []synth.Group{{Region: jp, Users: users, PostsPerUser: 80}},
		})
		if err != nil {
			return nil, err
		}
		profiles, err := profile.BuildUserProfiles(ds, l.buildOptions())
		if err != nil {
			return nil, err
		}
		placement, err := geoloc.PlaceUsers(profiles, gen.Generic, l.placeOptions())
		if err != nil {
			return nil, err
		}
		fit, err := geoloc.FitSingle(placement)
		if err != nil {
			return nil, err
		}
		errZones := fit.PeakOffset - 9
		if errZones < 0 {
			errZones = -errZones
		}
		res.Lines = append(res.Lines, fmt.Sprintf(
			"  %3d users -> fitted centre UTC%+.2f (error %.2f zones), sigma %.2f",
			users, fit.PeakOffset, errZones, fit.Gaussian.Sigma))
		// From the IDC-sized crowd up, the centre must hold within a zone.
		if users >= 52 && errZones > 1.0 {
			pass = false
		}
	}
	res.Measured = "see per-size rows; paper-scale crowds (>=52 users) stay within one zone"
	res.Pass = pass
	return res, nil
}
