package geoloc

// Property tests for the sharded placement engine: every Parallelism
// setting must produce bit-for-bit the same Placement — same Histogram,
// Counts, Assignments and Samples — as the sequential path, on random
// crowds and on the degenerate shapes (single user, all-identical
// profiles). "Bit-for-bit" is literal: float64 equality, not tolerance.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"darkcrowd/internal/core/profile"
)

// workerCounts are the pool sizes the properties quantify over; 7 and 16
// deliberately do not divide typical crowd sizes, and 16 exceeds the
// shard count for small crowds.
var workerCounts = []int{1, 2, 4, 7, 16}

// randomCrowd builds n seeded-random normalized profiles.
func randomCrowd(seed int64, n int) map[string]profile.Profile {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string]profile.Profile, n)
	for i := 0; i < n; i++ {
		var p profile.Profile
		total := 0.0
		for h := range p {
			v := rng.Float64()
			p[h] = v
			total += v
		}
		for h := range p {
			p[h] /= total
		}
		out[fmt.Sprintf("u%04d", i)] = p
	}
	return out
}

// samePlacement fails the test unless a and b are bit-identical.
func samePlacement(t *testing.T, want, got *Placement, workers int) {
	t.Helper()
	if !reflect.DeepEqual(want.Assignments, got.Assignments) {
		t.Errorf("workers=%d: Assignments differ from sequential", workers)
	}
	if !reflect.DeepEqual(want.Counts, got.Counts) {
		t.Errorf("workers=%d: Counts differ: want %v, got %v", workers, want.Counts, got.Counts)
	}
	for zi := range want.Histogram {
		if math.Float64bits(want.Histogram[zi]) != math.Float64bits(got.Histogram[zi]) {
			t.Errorf("workers=%d: Histogram[%d] not bit-identical: %v vs %v",
				workers, zi, want.Histogram[zi], got.Histogram[zi])
		}
	}
	wantS, gotS := want.Samples(), got.Samples()
	if !reflect.DeepEqual(wantS, gotS) {
		t.Errorf("workers=%d: Samples differ", workers)
	}
}

func TestPlaceUsersDeterministic(t *testing.T) {
	t.Parallel()
	generic := testGeneric(t)
	crowds := map[string]map[string]profile.Profile{
		"random-307": randomCrowd(1, 307),
		"random-64":  randomCrowd(2, 64),
		"single-user": {
			"only": randomCrowd(3, 1)["u0000"],
		},
		"all-identical": func() map[string]profile.Profile {
			p := randomCrowd(4, 1)["u0000"]
			out := make(map[string]profile.Profile)
			for i := 0; i < 50; i++ {
				out[fmt.Sprintf("clone-%02d", i)] = p
			}
			return out
		}(),
	}
	for name, crowd := range crowds {
		crowd := crowd
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			seq, err := PlaceUsers(crowd, generic, PlaceOptions{Parallelism: 1})
			if err != nil {
				t.Fatalf("sequential placement: %v", err)
			}
			for _, workers := range workerCounts[1:] {
				par, err := PlaceUsers(crowd, generic, PlaceOptions{Parallelism: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				samePlacement(t, seq, par, workers)
			}
		})
	}
}

func TestPlaceUsersEmptyCrowdAllWorkerCounts(t *testing.T) {
	t.Parallel()
	generic := testGeneric(t)
	for _, workers := range workerCounts {
		if _, err := PlaceUsers(nil, generic, PlaceOptions{Parallelism: workers}); err == nil {
			t.Errorf("workers=%d: expected error on empty crowd", workers)
		}
	}
}

func TestGeolocateDeterministic(t *testing.T) {
	t.Parallel()
	generic := testGeneric(t)
	crowd := randomCrowd(5, 200)
	seq, err := Geolocate(crowd, generic, GeolocateOptions{Place: PlaceOptions{Parallelism: 1}})
	if err != nil {
		t.Fatalf("sequential geolocate: %v", err)
	}
	for _, workers := range workerCounts[1:] {
		par, err := Geolocate(crowd, generic, GeolocateOptions{Place: PlaceOptions{Parallelism: workers}})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		samePlacement(t, seq.Placement, par.Placement, workers)
		if !reflect.DeepEqual(seq.Mixture, par.Mixture) {
			t.Errorf("workers=%d: mixtures differ: %+v vs %+v", workers, seq.Mixture, par.Mixture)
		}
		if !reflect.DeepEqual(seq.Components, par.Components) {
			t.Errorf("workers=%d: components differ", workers)
		}
		if math.Float64bits(seq.BIC) != math.Float64bits(par.BIC) ||
			math.Float64bits(seq.AvgDistance) != math.Float64bits(par.AvgDistance) ||
			math.Float64bits(seq.StdDistance) != math.Float64bits(par.StdDistance) {
			t.Errorf("workers=%d: fit metrics not bit-identical", workers)
		}
	}
}

func TestPlaceUsersCancelledContext(t *testing.T) {
	t.Parallel()
	generic := testGeneric(t)
	crowd := randomCrowd(6, 600)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := PlaceUsers(crowd, generic, PlaceOptions{Parallelism: workers, Context: ctx})
		if err == nil {
			t.Errorf("workers=%d: expected context error", workers)
		}
	}
}
