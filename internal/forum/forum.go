// Package forum implements a phpBB-style message-board engine, the
// substrate standing in for the five Dark Web forums of §V (CRD Club, the
// Italian DarkNet Community, Dream Market, The Majestic Garden, the Pedo
// Support Community).
//
// The engine models exactly what the paper's collection procedure needs:
//
//   - members, boards, threads and paginated posts rendered as HTML over
//     net/http (hostable as a hidden service via internal/onion);
//   - a Welcome thread where a fresh member can post to compare the
//     displayed server time against their own clock — "we sign up in the
//     forum and write a post in the Welcome or Spam thread to calculate
//     the offset between the server time and UTC" (§V);
//   - a configurable server clock offset: displayed timestamps carry no
//     time-zone information and may be "deliberately shifted" (§V);
//   - bulk import of a synthetic crowd's activity trace, so the forum's
//     content reproduces a ground-truth posting history.
package forum

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"darkcrowd/internal/trace"
)

// TimeLayout is how the forum renders timestamps: server local time with no
// zone designator, as real forum software typically does.
const TimeLayout = "2006-01-02 15:04:05"

// DefaultPageSize is the number of posts per thread page.
const DefaultPageSize = 20

// WelcomeThreadTitle names the thread used for server-offset probes.
const WelcomeThreadTitle = "Welcome"

// Errors returned by the engine.
var (
	ErrNotFound     = errors.New("forum: not found")
	ErrBadRequest   = errors.New("forum: bad request")
	ErrNameTaken    = errors.New("forum: member name already taken")
	ErrEmptyContent = errors.New("forum: empty content")
)

// Member is a registered forum user.
type Member struct {
	ID       int
	Name     string
	JoinedAt time.Time // true UTC
}

// Board is a top-level section of the forum.
type Board struct {
	ID          int
	Name        string
	Description string
}

// Thread is a discussion within a board.
type Thread struct {
	ID      int
	BoardID int
	Title   string
}

// Post is one message. At is the true UTC instant; the engine renders
// At + ServerOffset when displaying.
type Post struct {
	ID       int
	ThreadID int
	Author   string
	Body     string
	At       time.Time
}

// Config configures a Forum.
type Config struct {
	// Name is the forum's display name.
	Name string
	// ServerOffset shifts every displayed timestamp away from UTC,
	// modelling a server clock in another zone or deliberately skewed.
	ServerOffset time.Duration
	// PageSize is the number of posts per page
	// (default DefaultPageSize).
	PageSize int
	// Clock supplies "now" for live posts; defaults to time.Now. Tests
	// and imports override it for determinism.
	Clock func() time.Time
	// TimestampJitter, when positive, displays each post's timestamp
	// shifted by a deterministic pseudo-random amount in
	// [-TimestampJitter, +TimestampJitter] — the §VII countermeasure
	// "forum shows and timestamps posts with random delay". The paper
	// argues the delay "must be of at least a few hours" to be
	// effective; the discussion-delay experiment verifies that.
	TimestampJitter time.Duration
	// HideTimestamps removes timestamps from rendered posts entirely
	// (the §VII "no timestamp on posts" countermeasure). Scrapers must
	// fall back to monitoring the forum and timestamping posts
	// themselves (crawler.Monitor).
	HideTimestamps bool
	// FailEvery, when positive, makes every FailEvery-th HTTP request
	// answer 503 — a deterministic stand-in for the intermittent
	// overload a real hidden service shows, used to exercise crawler
	// retries end to end.
	FailEvery int
	// Latency, when positive, delays every HTTP response — a slow
	// server, for exercising crawler timeouts.
	Latency time.Duration
}

// Forum is the engine state.
type Forum struct {
	cfg Config

	// reqCount numbers HTTP requests for the FailEvery fault knob.
	reqCount atomic.Int64

	mu      sync.RWMutex
	members map[string]*Member // by name
	boards  []*Board
	threads map[int]*Thread
	posts   map[int][]*Post // by thread ID, chronological

	nextMember, nextBoard, nextThread, nextPost int

	welcomeThread int
}

// New creates a forum with a Welcome board and thread.
func New(cfg Config) *Forum {
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	// The Reception board and Welcome thread are built directly, before
	// the forum is published to any other goroutine: construction cannot
	// fail, so it never has to panic.
	welcome := &Board{ID: 1, Name: "Reception", Description: "Introductions, rules, and the Welcome thread"}
	th := &Thread{ID: 1, BoardID: welcome.ID, Title: WelcomeThreadTitle}
	f := &Forum{
		cfg:        cfg,
		members:    make(map[string]*Member),
		boards:     []*Board{welcome},
		threads:    map[int]*Thread{th.ID: th},
		posts:      make(map[int][]*Post),
		nextMember: 1, nextBoard: 2, nextThread: 2, nextPost: 1,

		welcomeThread: th.ID,
	}
	return f
}

// Name returns the forum's display name.
func (f *Forum) Name() string { return f.cfg.Name }

// ServerOffset returns the configured clock skew.
func (f *Forum) ServerOffset() time.Duration { return f.cfg.ServerOffset }

// WelcomeThreadID returns the ID of the Welcome thread.
func (f *Forum) WelcomeThreadID() int { return f.welcomeThread }

// DisplayTime converts a true UTC instant to the forum's displayed server
// time (before per-post jitter).
func (f *Forum) DisplayTime(t time.Time) time.Time {
	return t.UTC().Add(f.cfg.ServerOffset)
}

// displayTimeFor renders the timestamp shown for a specific post,
// including the per-post jitter. The jitter is a deterministic hash of the
// post ID so repeated page loads agree, as a real implementation of the
// countermeasure would need (otherwise diffs between loads leak the truth).
func (f *Forum) displayTimeFor(p *Post) time.Time {
	shown := f.DisplayTime(p.At)
	if f.cfg.TimestampJitter <= 0 {
		return shown
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", p.ID)
	span := int64(2*f.cfg.TimestampJitter + 1)
	jitter := time.Duration(int64(h.Sum64()%uint64(span))) - f.cfg.TimestampJitter
	return shown.Add(jitter)
}

// HidesTimestamps reports whether the forum suppresses timestamps.
func (f *Forum) HidesTimestamps() bool { return f.cfg.HideTimestamps }

// ParseDisplayedTime parses a rendered timestamp back to the (zone-less)
// server time.
func ParseDisplayedTime(s string) (time.Time, error) {
	t, err := time.Parse(TimeLayout, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("forum: parse displayed time %q: %w", s, err)
	}
	return t, nil
}

// AddBoard creates a new board.
func (f *Forum) AddBoard(name, desc string) (*Board, error) {
	if strings.TrimSpace(name) == "" {
		return nil, fmt.Errorf("%w: board name", ErrEmptyContent)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	b := &Board{ID: f.nextBoard, Name: name, Description: desc}
	f.nextBoard++
	f.boards = append(f.boards, b)
	return b, nil
}

// Boards lists the boards in creation order.
func (f *Forum) Boards() []*Board {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]*Board, len(f.boards))
	copy(out, f.boards)
	return out
}

// Register creates a member with a unique name.
func (f *Forum) Register(name string) (*Member, error) {
	if strings.TrimSpace(name) == "" {
		return nil, fmt.Errorf("%w: member name", ErrEmptyContent)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.members[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrNameTaken, name)
	}
	m := &Member{ID: f.nextMember, Name: name, JoinedAt: f.cfg.Clock().UTC()}
	f.nextMember++
	f.members[name] = m
	return m, nil
}

// MemberByName looks a member up.
func (f *Forum) MemberByName(name string) (*Member, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	m, ok := f.members[name]
	if !ok {
		return nil, fmt.Errorf("%w: member %q", ErrNotFound, name)
	}
	return m, nil
}

// NumMembers returns the number of registered members.
func (f *Forum) NumMembers() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.members)
}

// NewThread opens a thread on a board.
func (f *Forum) NewThread(boardID int, title string) (*Thread, error) {
	if strings.TrimSpace(title) == "" {
		return nil, fmt.Errorf("%w: thread title", ErrEmptyContent)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	found := false
	for _, b := range f.boards {
		if b.ID == boardID {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: board %d", ErrNotFound, boardID)
	}
	th := &Thread{ID: f.nextThread, BoardID: boardID, Title: title}
	f.nextThread++
	f.threads[th.ID] = th
	return th, nil
}

// Threads lists a board's threads by ID.
func (f *Forum) Threads(boardID int) []*Thread {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var out []*Thread
	for _, th := range f.threads {
		if th.BoardID == boardID {
			out = append(out, th)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Thread returns a thread by ID.
func (f *Forum) Thread(id int) (*Thread, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	th, ok := f.threads[id]
	if !ok {
		return nil, fmt.Errorf("%w: thread %d", ErrNotFound, id)
	}
	return th, nil
}

// PostNow appends a post authored at the forum clock's current instant.
func (f *Forum) PostNow(threadID int, author, body string) (*Post, error) {
	return f.PostAt(threadID, author, body, f.cfg.Clock())
}

// PostAt appends a post with an explicit true-UTC timestamp (used by the
// crowd importer). The member must exist.
func (f *Forum) PostAt(threadID int, author, body string, at time.Time) (*Post, error) {
	if strings.TrimSpace(body) == "" {
		return nil, fmt.Errorf("%w: post body", ErrEmptyContent)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.threads[threadID]; !ok {
		return nil, fmt.Errorf("%w: thread %d", ErrNotFound, threadID)
	}
	if _, ok := f.members[author]; !ok {
		return nil, fmt.Errorf("%w: member %q", ErrNotFound, author)
	}
	p := &Post{
		ID:       f.nextPost,
		ThreadID: threadID,
		Author:   author,
		Body:     body,
		At:       at.UTC(),
	}
	f.nextPost++
	f.posts[threadID] = append(f.posts[threadID], p)
	// Keep chronological order even for out-of-order imports.
	list := f.posts[threadID]
	for i := len(list) - 1; i > 0 && list[i].At.Before(list[i-1].At); i-- {
		list[i], list[i-1] = list[i-1], list[i]
	}
	return p, nil
}

// PostsPage returns one page of a thread's posts (0-based) and the total
// page count.
func (f *Forum) PostsPage(threadID, page int) ([]*Post, int, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	list, ok := f.posts[threadID]
	if !ok {
		if _, exists := f.threads[threadID]; !exists {
			return nil, 0, fmt.Errorf("%w: thread %d", ErrNotFound, threadID)
		}
		return nil, 0, nil
	}
	pages := (len(list) + f.cfg.PageSize - 1) / f.cfg.PageSize
	if page < 0 || (page >= pages && pages > 0) {
		return nil, pages, fmt.Errorf("%w: page %d of %d", ErrNotFound, page, pages)
	}
	lo := page * f.cfg.PageSize
	hi := lo + f.cfg.PageSize
	if hi > len(list) {
		hi = len(list)
	}
	out := make([]*Post, hi-lo)
	copy(out, list[lo:hi])
	return out, pages, nil
}

// NumPosts counts all posts in the forum.
func (f *Forum) NumPosts() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	total := 0
	for _, list := range f.posts {
		total += len(list)
	}
	return total
}

// ImportOptions tunes ImportCrowd.
type ImportOptions struct {
	// BoardNames seeds discussion boards; a reasonable default set is
	// used when empty.
	BoardNames []string
	// ThreadsPerBoard controls how many threads each board gets
	// (default 6).
	ThreadsPerBoard int
}

// ImportCrowd registers every user of an activity trace as a member and
// replays every post into discussion threads, preserving the true UTC
// timestamps. Posts are distributed across threads deterministically by
// post index.
func (f *Forum) ImportCrowd(ds *trace.Dataset, opts ImportOptions) error {
	if len(opts.BoardNames) == 0 {
		opts.BoardNames = []string{"Main", "Market", "Bad Stuff"}
	}
	if opts.ThreadsPerBoard <= 0 {
		opts.ThreadsPerBoard = 6
	}
	var threadIDs []int
	for _, bn := range opts.BoardNames {
		b, err := f.AddBoard(bn, "Imported board")
		if err != nil {
			return fmt.Errorf("forum: import board %q: %w", bn, err)
		}
		for i := 0; i < opts.ThreadsPerBoard; i++ {
			th, err := f.NewThread(b.ID, fmt.Sprintf("%s discussion #%d", bn, i+1))
			if err != nil {
				return fmt.Errorf("forum: import thread: %w", err)
			}
			threadIDs = append(threadIDs, th.ID)
		}
	}
	for _, u := range ds.Users() {
		if _, err := f.Register(u); err != nil {
			return fmt.Errorf("forum: import member %q: %w", u, err)
		}
	}
	sorted := ds.Clone()
	sorted.SortByTime()
	for i, p := range sorted.Posts {
		thread := threadIDs[i%len(threadIDs)]
		body := fmt.Sprintf("Post %d by %s.", i+1, p.UserID)
		if _, err := f.PostAt(thread, p.UserID, body, p.Time); err != nil {
			return fmt.Errorf("forum: import post %d: %w", i, err)
		}
	}
	return nil
}
