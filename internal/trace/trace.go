// Package trace defines the activity-trace data model every other part of
// the reproduction consumes: a post is a (user, UTC timestamp) pair, and a
// dataset is a named collection of posts with optional ground-truth region
// labels.
//
// This mirrors the paper's data handling: "The data collected (only author
// ID and time of posting, without the body of the forum post)" (§VIII). A
// trace "can be of any kind: posts, comments to posts, messages exchanged,
// access times, or even all the above" (§IV) — everything reduces to
// timestamped user activity.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Post is a single activity event: a user posted at an instant, normalized
// to UTC.
type Post struct {
	UserID string    `json:"user_id"`
	Time   time.Time `json:"time"`
}

// Dataset is a named activity trace. GroundTruth optionally maps user IDs
// to region codes for datasets with verified origin (the Twitter dataset of
// Table I, or validation forums).
type Dataset struct {
	Name        string            `json:"name"`
	Posts       []Post            `json:"posts"`
	GroundTruth map[string]string `json:"ground_truth,omitempty"`
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{Name: d.Name, Posts: make([]Post, len(d.Posts))}
	copy(out.Posts, d.Posts)
	if d.GroundTruth != nil {
		out.GroundTruth = make(map[string]string, len(d.GroundTruth))
		for k, v := range d.GroundTruth {
			out.GroundTruth[k] = v
		}
	}
	return out
}

// NumPosts returns the number of posts.
func (d *Dataset) NumPosts() int { return len(d.Posts) }

// Users returns the distinct user IDs, sorted.
func (d *Dataset) Users() []string {
	seen := make(map[string]bool)
	for _, p := range d.Posts {
		seen[p.UserID] = true
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// ByUser groups posts by user ID. Post order within a user follows the
// dataset order.
func (d *Dataset) ByUser() map[string][]Post {
	out := make(map[string][]Post)
	for _, p := range d.Posts {
		out[p.UserID] = append(out[p.UserID], p)
	}
	return out
}

// PostCounts returns the number of posts per user.
func (d *Dataset) PostCounts() map[string]int {
	out := make(map[string]int)
	for _, p := range d.Posts {
		out[p.UserID]++
	}
	return out
}

// TimeRange returns the earliest and latest post times. ok is false for an
// empty dataset.
func (d *Dataset) TimeRange() (first, last time.Time, ok bool) {
	if len(d.Posts) == 0 {
		return time.Time{}, time.Time{}, false
	}
	first, last = d.Posts[0].Time, d.Posts[0].Time
	for _, p := range d.Posts[1:] {
		if p.Time.Before(first) {
			first = p.Time
		}
		if p.Time.After(last) {
			last = p.Time
		}
	}
	return first, last, true
}

// FilterUsers returns a new dataset keeping only posts whose user the
// predicate accepts. Ground truth entries for dropped users are removed.
func (d *Dataset) FilterUsers(keep func(userID string) bool) *Dataset {
	out := &Dataset{Name: d.Name}
	for _, p := range d.Posts {
		if keep(p.UserID) {
			out.Posts = append(out.Posts, p)
		}
	}
	if d.GroundTruth != nil {
		out.GroundTruth = make(map[string]string)
		for u, r := range d.GroundTruth {
			if keep(u) {
				out.GroundTruth[u] = r
			}
		}
	}
	return out
}

// FilterPosts returns a new dataset keeping only posts the predicate
// accepts. Ground truth is carried over unchanged.
func (d *Dataset) FilterPosts(keep func(Post) bool) *Dataset {
	out := &Dataset{Name: d.Name, GroundTruth: d.GroundTruth}
	for _, p := range d.Posts {
		if keep(p) {
			out.Posts = append(out.Posts, p)
		}
	}
	return out
}

// FilterMinPosts drops users with fewer than min posts — the paper's
// active-user threshold ("we chose the threshold to be 30 posts", §IV).
func (d *Dataset) FilterMinPosts(min int) *Dataset {
	counts := d.PostCounts()
	return d.FilterUsers(func(u string) bool { return counts[u] >= min })
}

// Window returns the posts falling in [from, to).
func (d *Dataset) Window(from, to time.Time) *Dataset {
	return d.FilterPosts(func(p Post) bool {
		return !p.Time.Before(from) && p.Time.Before(to)
	})
}

// Merge combines several datasets into one. Ground-truth maps are merged;
// conflicting labels for the same user are an error.
func Merge(name string, datasets ...*Dataset) (*Dataset, error) {
	out := &Dataset{Name: name, GroundTruth: make(map[string]string)}
	for _, d := range datasets {
		out.Posts = append(out.Posts, d.Posts...)
		for u, r := range d.GroundTruth {
			if prev, ok := out.GroundTruth[u]; ok && prev != r {
				return nil, fmt.Errorf("trace: user %q labelled both %q and %q", u, prev, r)
			}
			out.GroundTruth[u] = r
		}
	}
	if len(out.GroundTruth) == 0 {
		out.GroundTruth = nil
	}
	return out, nil
}

// SortByTime orders posts chronologically in place (stable, so same-instant
// posts keep their relative order).
func (d *Dataset) SortByTime() {
	sort.SliceStable(d.Posts, func(i, j int) bool {
		return d.Posts[i].Time.Before(d.Posts[j].Time)
	})
}

// WriteJSON serializes the dataset.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("trace: encode dataset: %w", err)
	}
	return nil
}

// ReadJSON deserializes a dataset written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var d Dataset
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("trace: decode dataset: %w", err)
	}
	return &d, nil
}

// csvHeader is the column layout used by WriteCSV/ReadCSV.
var csvHeader = []string{"user_id", "time_rfc3339"}

// WriteCSV writes the posts as CSV with a header row. Ground truth is not
// part of the CSV format.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write CSV header: %w", err)
	}
	for _, p := range d.Posts {
		if err := cw.Write([]string{p.UserID, p.Time.UTC().Format(time.RFC3339)}); err != nil {
			return fmt.Errorf("trace: write CSV row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush CSV: %w", err)
	}
	return nil
}

// ReadCSV reads a CSV produced by WriteCSV.
func ReadCSV(name string, r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if errors.Is(err, io.EOF) {
		return nil, errors.New("trace: empty CSV")
	}
	if err != nil {
		return nil, fmt.Errorf("trace: read CSV header: %w", err)
	}
	if len(header) != len(csvHeader) || header[0] != csvHeader[0] || header[1] != csvHeader[1] {
		return nil, fmt.Errorf("trace: unexpected CSV header %v", header)
	}
	out := &Dataset{Name: name}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: read CSV line %d: %w", line, err)
		}
		ts, err := time.Parse(time.RFC3339, rec[1])
		if err != nil {
			return nil, fmt.Errorf("trace: parse time on line %d: %w", line, err)
		}
		out.Posts = append(out.Posts, Post{UserID: rec[0], Time: ts.UTC()})
	}
	return out, nil
}

// Summary holds headline statistics of a dataset.
type Summary struct {
	Name      string
	Users     int
	Posts     int
	First     time.Time
	Last      time.Time
	MeanPosts float64
}

// Summarize computes a dataset's Summary.
func (d *Dataset) Summarize() Summary {
	s := Summary{Name: d.Name, Posts: len(d.Posts)}
	users := d.Users()
	s.Users = len(users)
	if s.Users > 0 {
		s.MeanPosts = float64(s.Posts) / float64(s.Users)
	}
	if first, last, ok := d.TimeRange(); ok {
		s.First, s.Last = first, last
	}
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("%s: %d users, %d posts (%.1f posts/user), %s .. %s",
		s.Name, s.Users, s.Posts, s.MeanPosts,
		s.First.Format("2006-01-02"), s.Last.Format("2006-01-02"))
}

// Subsample keeps each post independently with the given probability,
// deterministically under the seed — used to study how the methodology
// degrades as data thins out. Ground truth is carried over unchanged.
func (d *Dataset) Subsample(prob float64, seed int64) (*Dataset, error) {
	if prob < 0 || prob > 1 {
		return nil, fmt.Errorf("trace: subsample probability %g outside [0,1]", prob)
	}
	rng := rand.New(rand.NewSource(seed))
	out := &Dataset{Name: d.Name, GroundTruth: d.GroundTruth}
	for _, p := range d.Posts {
		if rng.Float64() < prob {
			out.Posts = append(out.Posts, p)
		}
	}
	return out, nil
}
