package experiments

import (
	"fmt"
	"math"
	"sort"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/stats"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

// TableI regenerates Table I: active users by country/state in the Twitter
// dataset, after the 30-post threshold.
func (l *Lab) TableI() (*Result, error) {
	gen, err := l.Generic()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Title: "Table I — Twitter dataset: active users by Country/State",
		Paper: "14 regions, 22,576 active users total (Brazil 3,763 ... Finland 73)",
	}
	total := 0
	pass := true
	res.Lines = append(res.Lines, fmt.Sprintf("  %-18s %12s %12s", "Country/State", "paper", "measured"))
	for _, region := range tz.TableIRegions() {
		paperCount, err := synth.TableIUserCount(region.Code)
		if err != nil {
			return nil, err
		}
		want := paperCount / l.cfg.TwitterScale
		if want < 1 {
			want = 1
		}
		got := gen.ActiveUsers[region.Code]
		total += got
		res.Lines = append(res.Lines, fmt.Sprintf("  %-18s %12d %12d", region.Name, paperCount, got))
		// Every region must survive with most of its generated users.
		if got < (want*7)/10 {
			pass = false
		}
	}
	res.Lines = append(res.Lines, fmt.Sprintf("  %-18s %12d %12d", "TOTAL", 22576, total))
	res.Measured = fmt.Sprintf("%d active users across %d regions at scale 1/%d",
		total, len(gen.ActiveUsers), l.cfg.TwitterScale)
	res.Pass = pass && len(gen.ActiveUsers) == 14
	return res, nil
}

// Fig1 regenerates Figure 1: a typical single German user's activity
// profile.
func (l *Lab) Fig1() (*Result, error) {
	ds, err := l.Twitter()
	if err != nil {
		return nil, err
	}
	de, err := tz.ByCode("de")
	if err != nil {
		return nil, err
	}
	sub := ds.FilterUsers(func(u string) bool { return ds.GroundTruth[u] == "de" })
	users := geoloc.MostActiveUsers(sub, 1)
	if len(users) == 0 {
		return nil, fmt.Errorf("no German users at scale 1/%d", l.cfg.TwitterScale)
	}
	posts := sub.ByUser()[users[0]]
	p, err := profile.FromPosts(posts, profile.LocalHours(de))
	if err != nil {
		return nil, err
	}
	res := &Result{
		Title: "Figure 1 — A German user profile (local time)",
		Paper: "first peak in the morning, drop at lunch, growth to the evening peak, night trough 1h-7h",
	}
	res.Lines = append(res.Lines, fmt.Sprintf("  user %s, %d posts", users[0], len(posts)))
	res.Lines = append(res.Lines, profileChart(p)...)
	res.addProfileChart("german-user", "A German user profile (local time)", p)

	peak := argmax(p.Slice())
	var night, evening float64
	for h := 1; h <= 6; h++ {
		night += p[h]
	}
	for h := 17; h <= 22; h++ {
		evening += p[h]
	}
	res.Measured = fmt.Sprintf("peak at %02dh local, night mass %.3f vs evening mass %.3f", peak, night, evening)
	res.Pass = peak >= 9 && night < evening/2
	return res, nil
}

// Fig2 regenerates Figure 2: the German population profile versus the
// generic profile, plus the cross-country Pearson claim.
func (l *Lab) Fig2() (*Result, error) {
	gen, err := l.Generic()
	if err != nil {
		return nil, err
	}
	german, ok := gen.PerRegion["de"]
	if !ok {
		return nil, fmt.Errorf("no German region profile")
	}
	res := &Result{
		Title: "Figure 2 — German crowd profile (a) vs generic profile (b), both in local frame",
		Paper: "profiles nearly identical after shifting to a common zone; Pearson ~0.9 between any two countries",
	}
	res.Lines = append(res.Lines, "  (a) German population profile:")
	res.Lines = append(res.Lines, profileChart(german)...)
	res.Lines = append(res.Lines, "  (b) generic profile (all regions):")
	res.Lines = append(res.Lines, profileChart(gen.Generic)...)
	res.addProfileChart("german-crowd", "German crowd profile (local frame)", german)
	res.addProfileChart("generic", "Generic profile, all regions (local frame)", gen.Generic)

	rDE, err := german.Pearson(gen.Generic)
	if err != nil {
		return nil, err
	}
	// Average pairwise Pearson across all regions with enough users.
	var sum float64
	var n int
	codes := make([]string, 0, len(gen.PerRegion))
	for code, rp := range gen.PerRegion {
		_ = rp
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for i := 0; i < len(codes); i++ {
		for j := i + 1; j < len(codes); j++ {
			r, err := gen.PerRegion[codes[i]].Pearson(gen.PerRegion[codes[j]])
			if err != nil {
				continue
			}
			sum += r
			n++
		}
	}
	avg := sum / float64(n)
	res.Lines = append(res.Lines, fmt.Sprintf("  Pearson(German, generic) = %.3f", rDE))
	res.Lines = append(res.Lines, fmt.Sprintf("  mean pairwise Pearson over %d country pairs = %.3f (paper: ~0.9)", n, avg))
	res.Measured = fmt.Sprintf("Pearson(de, generic)=%.3f, mean pairwise=%.3f", rDE, avg)
	res.Pass = rDE > 0.9 && avg > 0.8
	return res, nil
}

// SingleCountryPlacement regenerates Figures 3-5: the EMD placement of one
// country's crowd across the 24 zones, with the Gaussian fit.
func (l *Lab) SingleCountryPlacement(id, code string, wantOffset float64) (*Result, error) {
	region, err := tz.ByCode(code)
	if err != nil {
		return nil, err
	}
	placement, err := l.placementFor(code)
	if err != nil {
		return nil, err
	}
	fit, err := geoloc.FitSingle(placement)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Title: fmt.Sprintf("Figure %s — EMD placement of the %s Twitter crowd", id[3:], region.Name),
		Paper: fmt.Sprintf("Gaussian centered at UTC%+g, sigma ~2.5", wantOffset),
	}
	res.Lines = append(res.Lines, placementChart(placement.Histogram)...)
	res.Lines = append(res.Lines, fmt.Sprintf("  Gaussian fit: center UTC%+.2f, sigma %.2f, avg dist %.4f, std %.4f",
		fit.PeakOffset, fit.Gaussian.Sigma, fit.AvgDistance, fit.StdDistance))
	res.addPlacementChart("placement",
		fmt.Sprintf("EMD placement of the %s Twitter crowd", region.Name),
		placement.Histogram, stats.Mixture{fit.Gaussian}.Curve(tz.HoursPerDay))
	res.Measured = fmt.Sprintf("center UTC%+.2f, sigma %.2f", fit.PeakOffset, fit.Gaussian.Sigma)
	// DST smears DST-observing countries up to one zone eastward.
	tol := 0.8
	if region.DST.Observed {
		tol = 1.6
	}
	res.Pass = math.Abs(fit.PeakOffset-wantOffset) <= tol &&
		fit.Gaussian.Sigma > 0.6 && fit.Gaussian.Sigma < 4.5
	return res, nil
}

// mixtureExperiment geolocates a synthetic multi-region crowd and checks
// the recovered components.
func (l *Lab) mixtureExperiment(title, paper string, ds *trace.Dataset, wantOffsets []float64) (*Result, error) {
	gen, err := l.Generic()
	if err != nil {
		return nil, err
	}
	profiles, err := profile.BuildUserProfiles(ds, l.buildOptions())
	if err != nil {
		return nil, err
	}
	geo, err := geoloc.Geolocate(profiles, gen.Generic, l.geoOptions())
	if err != nil {
		return nil, err
	}
	res := &Result{Title: title, Paper: paper}
	res.Lines = append(res.Lines, placementChart(geo.Placement.Histogram)...)
	res.Lines = append(res.Lines, describeComponents(geo.Components)...)
	res.addPlacementChart("placement", title, geo.Placement.Histogram, geo.Mixture.Curve(tz.HoursPerDay))
	res.Lines = append(res.Lines, fmt.Sprintf("  fit: avg dist %.4f, std %.4f, BIC %.1f",
		geo.AvgDistance, geo.StdDistance, geo.BIC))

	pass := len(geo.Components) == len(wantOffsets)
	for _, want := range wantOffsets {
		if !hasComponentNear(geo.Components, want, 1.6) {
			pass = false
		}
	}
	res.Measured = fmt.Sprintf("%d components: %v", len(geo.Components), summarizeCenters(geo.Components))
	res.Pass = pass
	return res, nil
}

// Fig6a regenerates Figure 6(a): Malaysian behaviour repeated in UTC,
// UTC-7 and UTC+9.
func (l *Lab) Fig6a() (*Result, error) {
	users := fig6Users(l.cfg.TwitterScale)
	ds, err := synth.Fig6aDataset(l.cfg.Seed+61, users)
	if err != nil {
		return nil, err
	}
	return l.mixtureExperiment(
		"Figure 6(a) — synthetic crowd: Malaysian behaviour in UTC, UTC-7, UTC+9",
		"three Gaussian components centered at UTC, UTC-7 and UTC+9",
		ds, []float64{0, -7, 9})
}

// Fig6b regenerates Figure 6(b): merged Illinois, German and Malaysian
// users.
func (l *Lab) Fig6b() (*Result, error) {
	users := fig6Users(l.cfg.TwitterScale)
	ds, err := synth.Fig6bDataset(l.cfg.Seed+62, users)
	if err != nil {
		return nil, err
	}
	return l.mixtureExperiment(
		"Figure 6(b) — synthetic crowd: Illinois + Germany + Malaysia",
		"three Gaussian components centered at UTC-6, UTC+1 and UTC+8",
		ds, []float64{-6, 1, 8})
}

// Fig7 regenerates Figure 7: an example flat (bot) profile, and shows the
// polishing step removing it.
func (l *Lab) Fig7() (*Result, error) {
	gen, err := l.Generic()
	if err != nil {
		return nil, err
	}
	de, err := tz.ByCode("de")
	if err != nil {
		return nil, err
	}
	ds, err := synth.GenerateCrowd(l.cfg.Seed+7, synth.CrowdConfig{
		Name: "fig7",
		Groups: []synth.Group{
			{Region: de, Users: 30, PostsPerUser: 120},
			{Region: de, Users: 5, PostsPerUser: 300, Kind: synth.KindBot, IDPrefix: "bot"},
		},
	})
	if err != nil {
		return nil, err
	}
	profiles, err := profile.BuildUserProfiles(ds, l.buildOptions())
	if err != nil {
		return nil, err
	}
	res := &Result{
		Title: "Figure 7 — example of a flat profile, removed by polishing",
		Paper: "flat profiles (bots, rarely shift workers) are filtered via EMD against the uniform 1/24 profile",
	}
	// Show the flattest bot profile.
	uniform := profile.Uniform()
	var flattest string
	best := math.Inf(1)
	for id, p := range profiles {
		d, err := p.EMD(uniform)
		if err != nil {
			continue
		}
		if d < best {
			best = d
			flattest = id
		}
	}
	res.Lines = append(res.Lines, fmt.Sprintf("  flattest profile (%s, EMD to uniform %.3f):", flattest, best))
	res.Lines = append(res.Lines, profileChart(profiles[flattest])...)
	res.addProfileChart("flat-profile", "Example of a flat (bot) profile", profiles[flattest])

	polished, err := profile.Polish(profiles, gen.Generic, true)
	if err != nil {
		return nil, err
	}
	botsRemoved, humansRemoved := 0, 0
	for _, id := range polished.Removed {
		if len(id) >= 3 && id[:3] == "bot" {
			botsRemoved++
		} else {
			humansRemoved++
		}
	}
	res.Lines = append(res.Lines, fmt.Sprintf("  polishing removed %d/5 bots and %d/30 regular users in %d iterations",
		botsRemoved, humansRemoved, polished.Iterations))
	res.Measured = fmt.Sprintf("%d/5 bots removed, %d false positives", botsRemoved, humansRemoved)
	res.Pass = botsRemoved >= 4 && humansRemoved <= 3
	return res, nil
}

// TableII regenerates Table II: the Gaussian-fit quality metrics for every
// dataset in the paper plus the 12h-shifted baseline.
func (l *Lab) TableII() (*Result, error) {
	res := &Result{
		Title: "Table II — Gaussian fitting metrics (avg / std of point-by-point distance)",
		Paper: "real fits 0.007-0.016 avg; baseline (Malaysian fit shifted 12h) 0.081 / 0.070",
	}
	res.Lines = append(res.Lines, fmt.Sprintf("  %-28s %10s %10s", "Dataset", "average", "std dev"))

	type row struct {
		name     string
		avg, std float64
	}
	var rows []row

	// Single-country Twitter fits.
	var malaysiaFit *geoloc.SingleFit
	var malaysiaPlacement *geoloc.Placement
	for _, tc := range []struct{ name, code string }{
		{"Malaysian Twitter", "my"},
		{"German Twitter", "de"},
		{"French Twitter", "fr"},
	} {
		placement, err := l.placementFor(tc.code)
		if err != nil {
			return nil, err
		}
		fit, err := geoloc.FitSingle(placement)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{tc.name, fit.AvgDistance, fit.StdDistance})
		if tc.code == "my" {
			malaysiaFit = fit
			malaysiaPlacement = placement
		}
	}

	// Synthetic multi-region fits.
	users := fig6Users(l.cfg.TwitterScale)
	synthA, err := synth.Fig6aDataset(l.cfg.Seed+61, users)
	if err != nil {
		return nil, err
	}
	synthB, err := synth.Fig6bDataset(l.cfg.Seed+62, users)
	if err != nil {
		return nil, err
	}
	for _, tc := range []struct {
		name string
		ds   *trace.Dataset
	}{
		{"Synthetic dataset (a)", synthA},
		{"Synthetic dataset (b)", synthB},
	} {
		gen, err := l.Generic()
		if err != nil {
			return nil, err
		}
		profiles, err := profile.BuildUserProfiles(tc.ds, l.buildOptions())
		if err != nil {
			return nil, err
		}
		geo, err := geoloc.Geolocate(profiles, gen.Generic, l.geoOptions())
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{tc.name, geo.AvgDistance, geo.StdDistance})
	}

	// The five forums.
	for _, name := range sortedForumNames() {
		fr, err := l.runForum(name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{name, fr.geo.AvgDistance, fr.geo.StdDistance})
	}

	// Baseline: the Malaysian Gaussian fit shifted by 12 hours.
	shiftedCurve := stats.Rotate(stats.Mixture{malaysiaFit.Gaussian}.Curve(24), -12)
	bAvg, bStd, err := stats.PointwiseDistanceStats(shiftedCurve, malaysiaPlacement.Histogram)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row{"Baseline", bAvg, bStd})

	worstReal := 0.0
	for _, r := range rows[:len(rows)-1] {
		if r.avg > worstReal {
			worstReal = r.avg
		}
		res.Lines = append(res.Lines, fmt.Sprintf("  %-28s %10.4f %10.4f", r.name, r.avg, r.std))
	}
	res.Lines = append(res.Lines, fmt.Sprintf("  %-28s %10.4f %10.4f", "Baseline", bAvg, bStd))

	res.Measured = fmt.Sprintf("worst real fit %.4f avg; baseline %.4f avg", worstReal, bAvg)
	res.Pass = worstReal < 0.05 && bAvg > 1.5*worstReal
	return res, nil
}

// fig6Users sizes the per-region groups of the Fig. 6 synthetic crowds:
// enough users that the mixture components are resolvable regardless of
// the Twitter scale.
func fig6Users(scale int) int {
	users := 220 / scale
	if users < 60 {
		users = 60
	}
	return users
}

func argmax(xs []float64) int {
	best := 0
	for i := range xs {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

func summarizeCenters(components []geoloc.Component) []string {
	out := make([]string, 0, len(components))
	for _, c := range components {
		out = append(out, fmt.Sprintf("%.0f%%@UTC%+.1f", c.Weight*100, c.Offset))
	}
	return out
}
