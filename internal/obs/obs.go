// Package obs is the pipeline's observability layer: a dependency-free
// metrics registry (atomic counters, gauges and histograms with a
// lock-free hot path and snapshot-on-read), a hierarchical stage tracer
// (Span), a structured progress logger, and an optional debug HTTP
// server exposing /metrics and net/http/pprof.
//
// Two properties govern every type in this package:
//
//   - Observation only. Nothing here feeds back into the pipeline:
//     instrumented code produces bit-identical output whether metrics are
//     on, off, or racing with a snapshot. Counters are updated with atomic
//     adds; reads assemble a consistent-enough snapshot without stopping
//     writers.
//
//   - Free when disabled. Every exported method tolerates a nil receiver
//     and returns immediately, allocating nothing, so instrumented hot
//     loops pay a single predictable nil check when observability is off.
//     Call sites that would build metric names dynamically must guard with
//     Observer.Enabled (name formatting is where allocations hide).
//
// Hot loops should resolve their instruments once, outside the loop
// (Registry lookups take a mutex; Counter.Add does not), exactly like
// caching a logger field.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic count. The zero value is
// ready to use; a nil *Counter ignores all updates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value-wins integer instrument. A nil *Gauge
// ignores all updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta (gauges may go down, unlike counters).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a last-value-wins float64 instrument (EM log-likelihoods,
// BIC scores). A nil *FloatGauge ignores all updates.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Load returns the current value (0 for a nil gauge).
func (g *FloatGauge) Load() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bit length i, i.e. 2^(i-1) <= v < 2^i;
// non-positive observations land in bucket 0.
const histBuckets = 64

// Histogram records the distribution of an int64-valued observation
// (durations in nanoseconds, batch sizes) in power-of-two buckets. All
// updates are single atomic adds; min/max are maintained with CAS loops.
// A nil *Histogram ignores all updates.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	var b int
	if v > 0 {
		b = bits.Len64(uint64(v))
	}
	h.buckets[b].Add(1)
}

// HistogramSnapshot is a point-in-time read of a Histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	// Buckets maps the inclusive upper bound of each non-empty
	// power-of-two bucket (rendered as a decimal string, so JSON keys
	// stay exact) to its count.
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot reads the histogram without stopping writers. Concurrent
// observations may straddle the read; the snapshot is still internally
// plausible (counts never negative, mean from the same count/sum read).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
	}
	if s.Count > 0 {
		s.Min = h.min.Load()
		s.Max = h.max.Load()
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[string]int64)
			}
			upper := int64(math.MaxInt64)
			if i < 63 {
				upper = (int64(1) << i) - 1
			}
			s.Buckets[fmt.Sprintf("%d", upper)] = n
		}
	}
	return s
}

// Registry holds named instruments. Registration (the name -> instrument
// lookup) takes a mutex and may allocate; the instruments themselves are
// lock-free, so hot loops resolve once and update atomically. A nil
// *Registry hands out nil instruments, which ignore all updates.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	floats   map[string]*FloatGauge
	hists    map[string]*Histogram
	lats     map[string]*LatencyHist
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		floats:   make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
		lats:     make(map[string]*LatencyHist),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.floats[name]
	if g == nil {
		g = &FloatGauge{}
		r.floats[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	return h
}

// Latency returns the named latency histogram, creating it on first use.
func (r *Registry) Latency(name string) *LatencyHist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.lats[name]
	if h == nil {
		h = &LatencyHist{}
		r.lats[name] = h
	}
	return h
}

// Snapshot is a point-in-time JSON-ready read of every instrument.
type Snapshot struct {
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Latencies   map[string]LatencySnapshot   `json:"latencies,omitempty"`
}

// Snapshot reads every registered instrument. Writers are never blocked:
// the registration lock is held only to copy the instrument pointers, and
// each value is then read atomically.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	floats := make(map[string]*FloatGauge, len(r.floats))
	for k, v := range r.floats {
		floats[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	lats := make(map[string]*LatencyHist, len(r.lats))
	for k, v := range r.lats {
		lats[k] = v
	}
	r.mu.Unlock()

	if len(counters) > 0 {
		s.Counters = make(map[string]int64, len(counters))
		for k, v := range counters {
			s.Counters[k] = v.Load()
		}
	}
	if len(gauges) > 0 {
		s.Gauges = make(map[string]int64, len(gauges))
		for k, v := range gauges {
			s.Gauges[k] = v.Load()
		}
	}
	if len(floats) > 0 {
		s.FloatGauges = make(map[string]float64, len(floats))
		for k, v := range floats {
			s.FloatGauges[k] = v.Load()
		}
	}
	if len(hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(hists))
		for k, v := range hists {
			s.Histograms[k] = v.Snapshot()
		}
	}
	if len(lats) > 0 {
		s.Latencies = make(map[string]LatencySnapshot, len(lats))
		for k, v := range lats {
			s.Latencies[k] = v.Snapshot()
		}
	}
	return s
}

// WriteJSON writes an indented JSON snapshot of the registry. Map keys
// are emitted in sorted order (encoding/json's behaviour), so the report
// is diff-friendly.
func (r *Registry) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal metrics snapshot: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.Write(data); err != nil {
		return fmt.Errorf("obs: write metrics snapshot: %w", err)
	}
	return nil
}

// Names returns the sorted names of all registered instruments of every
// kind, mainly for tests and debugging.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.floats)+len(r.hists)+len(r.lats))
	for k := range r.counters {
		out = append(out, k)
	}
	for k := range r.gauges {
		out = append(out, k)
	}
	for k := range r.floats {
		out = append(out, k)
	}
	for k := range r.hists {
		out = append(out, k)
	}
	for k := range r.lats {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
