package pipeline

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"darkcrowd/internal/atomicio"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

// writeCrowd generates a small two-region crowd and writes it as a CSV
// trace, returning the path.
func writeCrowd(t *testing.T, dir string) string {
	t.Helper()
	jp, err := tz.ByCode("jp")
	if err != nil {
		t.Fatal(err)
	}
	it, err := tz.ByCode("it")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.GenerateCrowd(11, synth.CrowdConfig{
		Name: "pipeline-test",
		Groups: []synth.Group{
			{Region: jp, Users: 25, PostsPerUser: 60},
			{Region: it, Users: 15, PostsPerUser: 60},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "crowd.csv")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(fh); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// testReference builds one small synthetic reference per test binary; the
// build is deterministic, so sharing it across tests changes nothing.
var refOnce *profile.GenericResult

func testReference(t *testing.T) func() (*profile.GenericResult, error) {
	t.Helper()
	return func() (*profile.GenericResult, error) {
		if refOnce == nil {
			twitter, err := synth.TwitterDataset(2018, synth.TwitterOptions{Scale: 300})
			if err != nil {
				return nil, err
			}
			refOnce, err = profile.BuildGeneric(twitter, profile.GenericOptions{})
			if err != nil {
				return nil, err
			}
		}
		return refOnce, nil
	}
}

func geoJSON(t *testing.T, res *Result) string {
	t.Helper()
	data, err := json.Marshal(res.Geo)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestGeolocateCheckpointedMatchesClean(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeCrowd(t, dir)
	base := Config{
		TracePath:   tracePath,
		Reference:   testReference(t),
		ReferenceID: "test-ref",
	}

	clean, err := Geolocate(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Restored) != 0 {
		t.Errorf("clean run restored stages: %v", clean.Restored)
	}
	if clean.ActiveUsers == 0 || clean.Geo == nil || len(clean.Geo.Components) == 0 {
		t.Fatalf("clean run produced no geolocation: %+v", clean)
	}
	want := geoJSON(t, clean)

	// A checkpointing run from scratch must agree byte for byte.
	ckCfg := base
	ckCfg.CheckpointPath = filepath.Join(dir, "stage.ckpt")
	first, err := Geolocate(ckCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := geoJSON(t, first); got != want {
		t.Errorf("checkpointing run diverged from clean run:\n%s\nvs\n%s", got, want)
	}
	if _, err := os.Stat(ckCfg.CheckpointPath); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Rerunning against the finished checkpoint restores every stage and
	// still agrees byte for byte.
	second, err := Geolocate(ckCfg)
	if err != nil {
		t.Fatal(err)
	}
	wantStages := []string{"reference", "profile-build", "placement", "em-select"}
	if len(second.Restored) != len(wantStages) {
		t.Fatalf("restored %v, want %v", second.Restored, wantStages)
	}
	for i, s := range wantStages {
		if second.Restored[i] != s {
			t.Fatalf("restored %v, want %v", second.Restored, wantStages)
		}
	}
	if got := geoJSON(t, second); got != want {
		t.Errorf("resumed run diverged from clean run:\n%s\nvs\n%s", got, want)
	}
}

// TestGeolocateResumesAfterCheckpointWriteFailure: a checkpoint-save I/O
// failure aborts the run, but the previous checkpoint survives intact and
// a rerun resumes from it to the byte-identical final result.
func TestGeolocateResumesAfterCheckpointWriteFailure(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeCrowd(t, dir)
	base := Config{
		TracePath:   tracePath,
		Reference:   testReference(t),
		ReferenceID: "test-ref",
	}
	clean, err := Geolocate(base)
	if err != nil {
		t.Fatal(err)
	}
	want := geoJSON(t, clean)

	cfg := base
	cfg.CheckpointPath = filepath.Join(dir, "stage.ckpt")
	// Fail the second checkpoint save (after profile-build) at the rename
	// step — the worst point: content fully written, not yet installed.
	saves := 0
	injected := errors.New("disk detached")
	cfg.CheckpointHook = func(op, path string) error {
		if op == atomicio.OpRename {
			saves++
			if saves == 2 {
				return injected
			}
		}
		return nil
	}
	_, err = Geolocate(cfg)
	if !errors.Is(err, injected) {
		t.Fatalf("got %v, want injected checkpoint failure", err)
	}
	// The first save (reference) must still be installed and parseable.
	ck, err := loadCheckpoint(cfg.CheckpointPath, fingerprint(clean.Dataset, cfg))
	if err != nil || ck == nil {
		t.Fatalf("previous checkpoint lost: ck=%v err=%v", ck, err)
	}
	if ck.Reference == nil || ck.Profiles != nil {
		t.Fatalf("checkpoint holds the wrong stages: %+v", ck)
	}
	// No temp files may survive the failure.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leftover temp file %q", e.Name())
		}
	}

	// Resume without the fault: reference is restored, the rest recomputes,
	// and the final result is byte-identical to the clean run.
	cfg.CheckpointHook = nil
	res, err := Geolocate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Restored) != 1 || res.Restored[0] != "reference" {
		t.Errorf("restored %v, want [reference]", res.Restored)
	}
	if got := geoJSON(t, res); got != want {
		t.Errorf("post-failure resume diverged from clean run")
	}
}

// TestGeolocateCheckpointFingerprintGuard: a checkpoint from different
// inputs or settings must refuse to resume instead of corrupting the run.
func TestGeolocateCheckpointFingerprintGuard(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeCrowd(t, dir)
	cfg := Config{
		TracePath:      tracePath,
		Reference:      testReference(t),
		ReferenceID:    "test-ref",
		CheckpointPath: filepath.Join(dir, "stage.ckpt"),
	}
	if _, err := Geolocate(cfg); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*Config){
		"reference": func(c *Config) { c.ReferenceID = "other-ref" },
		"minposts":  func(c *Config) { c.MinPosts = 10 },
		"polish":    func(c *Config) { c.SkipPolish = true },
	} {
		changed := cfg
		mutate(&changed)
		if _, err := Geolocate(changed); err == nil || !strings.Contains(err.Error(), "fingerprint") {
			t.Errorf("%s change resumed a stale checkpoint: %v", name, err)
		}
	}
	// Changing the trace content itself must also refuse.
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	extra := append(data, []byte("zz-user,2017-06-01T10:00:00Z\n")...)
	if err := os.WriteFile(tracePath, extra, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Geolocate(cfg); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("trace change resumed a stale checkpoint: %v", err)
	}
}

// TestGeolocateLenientTrace: a damaged trace fails strict ingest but runs
// to completion leniently, with the damage accounted for in the report.
func TestGeolocateLenientTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeCrowd(t, dir)
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	damaged := append([]byte{}, data...)
	damaged = append(damaged, []byte("broken-row-no-comma\nux,notatime\n")...)
	if err := os.WriteFile(tracePath, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		TracePath:   tracePath,
		Reference:   testReference(t),
		ReferenceID: "test-ref",
	}
	if _, err := Geolocate(cfg); err == nil {
		t.Fatal("strict ingest of a damaged trace should fail")
	}
	cfg.Lenient = true
	res, err := Geolocate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quarantine == nil || res.Quarantine.BadRows != 2 {
		t.Fatalf("quarantine = %+v, want 2 bad rows", res.Quarantine)
	}
	if res.Geo == nil || len(res.Geo.Components) == 0 {
		t.Fatal("lenient run produced no geolocation")
	}
	// A tight budget still fails.
	cfg.MaxBadRows = 1
	if _, err := Geolocate(cfg); err == nil {
		t.Fatal("bad-row budget should fail the run")
	}
}

func TestGeolocateConfigErrors(t *testing.T) {
	t.Parallel()
	if _, err := Geolocate(Config{TracePath: "x"}); err == nil || !strings.Contains(err.Error(), "Reference") {
		t.Errorf("missing Reference: %v", err)
	}
	if _, err := Geolocate(Config{
		TracePath: filepath.Join(t.TempDir(), "missing.csv"),
		Reference: func() (*profile.GenericResult, error) { return nil, nil },
	}); err == nil {
		t.Error("missing trace should fail")
	}
}

// TestGeolocateSnapshotPaths: every ingest path — sequential CSV, sharded
// CSV, snapshot write, snapshot load, and the unfused profile build —
// yields a byte-identical geolocation.
func TestGeolocateSnapshotPaths(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeCrowd(t, dir)
	base := Config{
		TracePath:   tracePath,
		Reference:   testReference(t),
		ReferenceID: "test-ref",
	}
	clean, err := Geolocate(base)
	if err != nil {
		t.Fatal(err)
	}
	want := geoJSON(t, clean)

	sharded := base
	sharded.IngestWorkers = 7
	res, err := Geolocate(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if got := geoJSON(t, res); got != want {
		t.Errorf("sharded ingest diverged from sequential")
	}

	// Forcing the unfused build (explicit UTC cell hook) must not change
	// the output either — it pins fused/unfused equivalence in situ.
	unfused := base
	unfused.Cells = profile.UTCCells()
	res, err = Geolocate(unfused)
	if err != nil {
		t.Fatal(err)
	}
	if got := geoJSON(t, res); got != want {
		t.Errorf("unfused profile build diverged")
	}

	// First snapshot run ingests the CSV and installs the snapshot …
	snap := base
	snap.SnapshotPath = filepath.Join(dir, "crowd.dcs")
	res, err = Geolocate(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SnapshotWritten || res.SnapshotLoaded {
		t.Fatalf("first snapshot run: written=%v loaded=%v", res.SnapshotWritten, res.SnapshotLoaded)
	}
	if got := geoJSON(t, res); got != want {
		t.Errorf("snapshot-writing run diverged")
	}

	// … the second loads it without touching the CSV at all.
	if err := os.Remove(tracePath); err != nil {
		t.Fatal(err)
	}
	res, err = Geolocate(snap)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotWritten || !res.SnapshotLoaded {
		t.Fatalf("second snapshot run: written=%v loaded=%v", res.SnapshotWritten, res.SnapshotLoaded)
	}
	if res.Quarantine != nil {
		t.Errorf("snapshot load reported a quarantine: %+v", res.Quarantine)
	}
	if got := geoJSON(t, res); got != want {
		t.Errorf("snapshot-loading run diverged")
	}

	// A corrupted snapshot fails loudly with recovery advice, never
	// silently falls back to the (here: deleted) CSV.
	raw, err := os.ReadFile(snap.SnapshotPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 1
	if err := os.WriteFile(snap.SnapshotPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Geolocate(snap); err == nil || !strings.Contains(err.Error(), "delete it to re-ingest") {
		t.Errorf("corrupt snapshot: %v", err)
	}
}

// TestFingerprintSensitivity: the fingerprint moves with everything the
// output depends on and ignores what it doesn't (worker count).
func TestFingerprintSensitivity(t *testing.T) {
	t.Parallel()
	ds := &trace.Dataset{Name: "fp"}
	base := Config{ReferenceID: "r"}
	fp := fingerprint(ds, base)
	if fp != fingerprint(ds, base) {
		t.Error("fingerprint is not deterministic")
	}
	workers := base
	workers.Workers = 7
	if fingerprint(ds, workers) != fp {
		t.Error("worker count must not change the fingerprint")
	}
	minPosts := base
	minPosts.MinPosts = 3
	if fingerprint(ds, minPosts) == fp {
		t.Error("MinPosts change must change the fingerprint")
	}
}
