// Dark Web forum example: the paper's full collection path, in process.
//
// A Pedo-Support-Community-like crowd (47% US Pacific, 36% Brazil, 17%
// UAE) posts on a forum hosted as a hidden service on a simulated Tor
// network with a skewed server clock. The example scrapes the forum
// through a three-hop circuit — signing up and posting in the Welcome
// thread to learn the clock offset, as §V describes — then geolocates the
// crowd and runs the §V-F hemisphere test on the most active users.
//
//	go run ./examples/darkwebforum
package main

import (
	"fmt"
	"log"
	"net/http"
	"time"

	"darkcrowd"
	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/crawler"
	"darkcrowd/internal/forum"
	"darkcrowd/internal/onion"
	"darkcrowd/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The §V forum spec, scaled to a quarter for a snappy demo.
	spec, err := synth.ForumSpecByName("Pedo Support Community")
	if err != nil {
		return err
	}
	spec.Users /= 4
	spec.Posts /= 4

	crowd, err := synth.ForumCrowd(1234, spec)
	if err != nil {
		return err
	}

	// The forum, with a deliberately skewed clock.
	f := forum.New(forum.Config{
		Name:         spec.Name,
		ServerOffset: time.Duration(spec.ServerOffsetHours) * time.Hour,
		PageSize:     50,
	})
	if err := f.ImportCrowd(crowd, forum.ImportOptions{}); err != nil {
		return err
	}

	// The Tor stand-in: relays, directory, hidden service.
	network := onion.NewNetwork(5)
	defer network.Close()
	if _, err := network.AddRelays(9); err != nil {
		return err
	}
	svc, err := onion.HostService(network, "forum-host", onion.DefaultIntroPoints)
	if err != nil {
		return err
	}
	defer svc.Close()
	server := &http.Server{Handler: f.Handler()}
	go func() { _ = server.Serve(svc.Listener()) }()
	defer server.Close()
	fmt.Printf("forum live at %s (%d posts, clock skew %+dh)\n",
		svc.Onion(), f.NumPosts(), spec.ServerOffsetHours)

	// Scrape through a circuit.
	torClient, err := onion.NewClient(network, "researcher")
	if err != nil {
		return err
	}
	defer torClient.Close()
	c := &crawler.Crawler{
		HTTPClient: &http.Client{Transport: &http.Transport{DialContext: torClient.DialContext}},
		BaseURL:    "http://" + svc.Onion(),
	}
	res, err := c.Scrape(spec.Name)
	if err != nil {
		return err
	}
	fmt.Printf("scraped %d posts; measured server offset %v\n",
		res.Dataset.NumPosts(), res.ServerOffset)

	// Geolocate with the public API.
	labelled, err := darkcrowd.SyntheticTwitterDataset(1, 40)
	if err != nil {
		return err
	}
	ref, err := darkcrowd.BuildReference(labelled)
	if err != nil {
		return err
	}
	report, err := darkcrowd.GeolocateCrowd(res.Dataset.Posts, ref, darkcrowd.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("\ncrowd components (truth: 47%% UTC-8, 36%% UTC-3, 17%% UTC+4):\n")
	for i, component := range report.Components {
		fmt.Printf("  %d. %s\n", i+1, component)
	}

	// Hemisphere test on the five most active users (§V-F).
	fmt.Println("\nhemisphere of the five most active users:")
	verdicts, err := geoloc.ClassifyTopUsers(res.Dataset, 5, geoloc.HemisphereOptions{})
	if err != nil {
		return err
	}
	for u, v := range verdicts {
		truth := crowd.GroundTruth[u]
		if v == nil {
			fmt.Printf("  %-16s too little seasonal activity (truth: %s)\n", u, truth)
			continue
		}
		fmt.Printf("  %-16s ruled %-6s (truth: %s)\n", u, v.Hemisphere, truth)
	}
	return nil
}
