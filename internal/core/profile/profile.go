// Package profile implements the paper's activity-profile machinery (§IV):
// per-user 24-hour activity distributions (Eq. 1), population aggregation
// (Eq. 2), time-zone shifting, the generic (UTC-aligned) profile, and the
// dataset-polishing pipeline (active-user threshold, holiday filtering and
// iterative flat-profile removal, §IV-C).
//
// Conventions. A Profile is a probability distribution over the 24 hours of
// a day. Profiles can live in two frames:
//
//   - the UTC frame: bin h holds the probability of activity during UTC
//     hour h. Profiles of anonymous crowds are always in this frame, since
//     Dark Web post timestamps are normalized to UTC.
//   - the local frame: bin h holds the probability of activity during the
//     *local* hour h of the user's region. Ground-truth datasets (with
//     known regions and DST rules) can be converted to this frame; the
//     paper's "generic profile" (Fig. 2b) is the aggregate of all users'
//     local-frame profiles.
//
// A crowd living at UTC offset k that behaves like the generic local
// pattern produces, in the UTC frame, the generic profile shifted so that
// its evening peak occurs k hours earlier on the UTC axis. ZoneProfile
// encodes that relation.
package profile

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"time"

	"darkcrowd/internal/obs"
	"darkcrowd/internal/par"
	"darkcrowd/internal/stats"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

// HoursPerDay is the number of bins in a profile.
const HoursPerDay = tz.HoursPerDay

// DefaultMinPosts is the paper's active-user threshold: "we chose the
// threshold to be 30 posts, as we noticed that it is a reasonable value to
// get a meaningful profile" (§IV).
const DefaultMinPosts = 30

// Profile is a probability distribution of activity over the 24 hours of
// the day (Eq. 1 and 2 of the paper). It always sums to 1 (within floating
// point error) unless it is the zero value.
type Profile [HoursPerDay]float64

// ErrNoActivity is returned when a profile would be built from no posts.
var ErrNoActivity = errors.New("profile: no activity to build a profile from")

// Uniform returns the artificial flat profile where every value is 1/24,
// used by the polishing step to detect bots (§IV-C).
func Uniform() Profile {
	var p Profile
	for i := range p {
		p[i] = 1.0 / HoursPerDay
	}
	return p
}

// Slice returns the profile as a fresh []float64.
func (p Profile) Slice() []float64 {
	out := make([]float64, HoursPerDay)
	copy(out, p[:])
	return out
}

// Sum returns the total mass (1 for a well-formed profile).
func (p Profile) Sum() float64 {
	return stats.Sum(p[:])
}

// Shift moves the activity pattern k hours later in the day: the value at
// bin h of the result is the value at bin (h-k) mod 24 of p. See
// ZoneProfile and ToLocal for the two frame conversions built on it.
func (p Profile) Shift(k int) Profile {
	var out Profile
	k = ((k % HoursPerDay) + HoursPerDay) % HoursPerDay
	for h := 0; h < HoursPerDay; h++ {
		out[h] = p[(h-k+HoursPerDay)%HoursPerDay]
	}
	return out
}

// ShiftFractional moves the activity pattern a fractional number of hours
// later in the day, redistributing each bin's mass between the two
// neighbouring destination bins (circular linear interpolation). Mass is
// conserved exactly; ShiftFractional(k) for integer k equals Shift(k).
func (p Profile) ShiftFractional(hours float64) Profile {
	var out Profile
	n := float64(HoursPerDay)
	shift := hours - n*float64(int(hours/n)) // reduce magnitude, keep sign
	if shift < 0 {
		shift += n
	}
	whole := int(shift)
	frac := shift - float64(whole)
	for h := 0; h < HoursPerDay; h++ {
		dst1 := (h + whole) % HoursPerDay
		dst2 := (dst1 + 1) % HoursPerDay
		out[dst1] += p[h] * (1 - frac)
		out[dst2] += p[h] * frac
	}
	return out
}

// ToLocal converts a UTC-frame profile of a crowd living at the given
// offset into the local frame: local hour h corresponds to UTC hour h-k.
func (p Profile) ToLocal(offset tz.Offset) Profile {
	return p.Shift(int(offset.Normalize()))
}

// ZoneProfile returns the UTC-frame reference profile of a crowd living at
// the given offset and behaving like the generic local-frame pattern: UTC
// hour h corresponds to local hour h+k.
func ZoneProfile(generic Profile, offset tz.Offset) Profile {
	return generic.Shift(-int(offset.Normalize()))
}

// ZoneProfiles returns the 24 UTC-frame reference profiles, indexed by
// zone index 0..23 (zone index i corresponds to offset i+MinOffset; see
// ZoneIndex/OffsetOf).
func ZoneProfiles(generic Profile) []Profile {
	offsets := tz.AllOffsets()
	out := make([]Profile, len(offsets))
	for i, off := range offsets {
		out[i] = ZoneProfile(generic, off)
	}
	return out
}

// ZoneIndex maps a UTC offset to its index in ZoneProfiles (0..23).
func ZoneIndex(o tz.Offset) int {
	return int(o.Normalize() - tz.MinOffset)
}

// OffsetOf is the inverse of ZoneIndex.
func OffsetOf(index int) tz.Offset {
	return (tz.Offset(index) + tz.MinOffset).Normalize()
}

// Pearson returns the Pearson correlation between two profiles. The paper
// reports r ~ 0.9 between any two country profiles shifted to a common
// frame, and r = 0.93 between the CRD Club profile and the generic Twitter
// profile.
func (p Profile) Pearson(q Profile) (float64, error) {
	return stats.Pearson(p[:], q[:])
}

// EMD returns the circular Earth Mover's Distance between two profiles on
// the 24-hour circle.
func (p Profile) EMD(q Profile) (float64, error) {
	return stats.EMDCircular(p[:], q[:])
}

// EMDLinear returns the linear (non-circular) EMD, kept for the ablation
// comparison.
func (p Profile) EMDLinear(q Profile) (float64, error) {
	return stats.EMDLinear(p[:], q[:])
}

// Entropy returns the Shannon entropy of the profile in bits: log2(24) for
// the uniform bot profile, noticeably lower for human diurnal profiles.
func (p Profile) Entropy() (float64, error) {
	return stats.Entropy(p[:])
}

// HourOf selects which civil frame posts are bucketed in: it returns the
// hour bin 0..23 and an integer day key (days since the Unix epoch on that
// frame's calendar) that together identify the post's (day, hour) activity
// cell. Integer day keys replace the old "2006-01-02" strings: the mapping
// between calendar days and epoch-day numbers is a bijection, so cell
// identity — the only thing FromPosts uses the key for — is unchanged,
// while the hot loop sheds time.Format and fmt.Sprintf entirely.
type HourOf func(t time.Time) (hour int, epochDay int64)

// CellOf is the columnar counterpart of HourOf: it buckets a post given
// only its Unix-seconds timestamp, exactly as stored in the trace index's
// time column, so profile building never materializes a time.Time.
type CellOf func(unixSec int64) (hour int, epochDay int64)

// cellOfUnix maps Unix seconds to (UTC hour, UTC epoch day) with floor
// division, so pre-1970 instants land on the correct calendar day.
func cellOfUnix(u int64) (int, int64) {
	day := u / 86400
	rem := u % 86400
	if rem < 0 {
		day--
		rem += 86400
	}
	return int(rem / 3600), day
}

// UTCHours buckets posts by UTC hour; day keys follow the UTC calendar.
func UTCHours() HourOf {
	return func(t time.Time) (int, int64) {
		return cellOfUnix(t.Unix())
	}
}

// LocalHours buckets posts by the region's DST-aware local hour; day keys
// follow the local calendar. This implements the paper's "we have
// considered daylight saving time for all regions where it is used".
func LocalHours(region tz.Region) HourOf {
	return func(t time.Time) (int, int64) {
		// Offsets are whole hours (tz.Offset), so the local civil hour and
		// day fall out of integer arithmetic on the shifted epoch seconds —
		// identical to region.LocalTime(t).Hour() / its calendar day.
		return cellOfUnix(t.Unix() + int64(region.OffsetAt(t))*3600)
	}
}

// UTCCells is the CellOf equivalent of UTCHours.
func UTCCells() CellOf { return cellOfUnix }

// LocalCells is the CellOf equivalent of LocalHours. DST boundaries sit on
// whole-hour instants, so evaluating the offset at the floor-to-second
// time.Unix(u, 0) agrees with evaluating it at the original post time.
func LocalCells(region tz.Region) CellOf {
	return func(u int64) (int, int64) {
		off := region.OffsetAt(time.Unix(u, 0).UTC())
		return cellOfUnix(u + int64(off)*3600)
	}
}

// cellKey packs a (day, hour) activity cell into one int64.
func cellKey(hour int, epochDay int64) int64 {
	return epochDay*HoursPerDay + int64(hour)
}

// fromCellKeys builds the Eq. 1 profile from packed cell keys, counting
// each distinct cell once. It sorts keys in place (the caller's slice is
// scratch) and allocates nothing — duplicate detection is a comparison with
// the previous sorted key, not a map insert.
func fromCellKeys(keys []int64) (Profile, error) {
	if len(keys) == 0 {
		return Profile{}, ErrNoActivity
	}
	slices.Sort(keys)
	var counts [HoursPerDay]float64
	var total float64
	for i, k := range keys {
		if i > 0 && k == keys[i-1] {
			continue
		}
		counts[((k%HoursPerDay)+HoursPerDay)%HoursPerDay]++
		total++
	}
	var p Profile
	for h := range counts {
		p[h] = counts[h] / total
	}
	return p, nil
}

// FromPosts builds the Eq. 1 user profile from a post list using the given
// bucketing frame:
//
//	P_u[h] = sum_d a_d(h) / sum_{d,h} a_d(h)
//
// where the boolean a_d(h) indicates whether the user posted during hour h
// of day d. Multiple posts in the same (day, hour) cell count once, which
// is what makes the profile a distribution of *activity* rather than of
// post volume.
func FromPosts(posts []trace.Post, hourOf HourOf) (Profile, error) {
	if hourOf == nil {
		hourOf = UTCHours()
	}
	keys := make([]int64, 0, len(posts))
	for _, post := range posts {
		keys = append(keys, cellKey(hourOf(post.Time)))
	}
	return fromCellKeys(keys)
}

// Aggregate builds the Eq. 2 population profile from user profiles:
//
//	P[h] = sum_u P_u[h] / sum_{u,h} P_u[h]
//
// Since every user profile sums to one, this is the arithmetic mean of the
// user profiles.
func Aggregate(profiles []Profile) (Profile, error) {
	if len(profiles) == 0 {
		return Profile{}, ErrNoActivity
	}
	var sum Profile
	var total float64
	for _, up := range profiles {
		for h := range sum {
			sum[h] += up[h]
			total += up[h]
		}
	}
	if total == 0 {
		return Profile{}, ErrNoActivity
	}
	for h := range sum {
		sum[h] /= total
	}
	return sum, nil
}

// BuildOptions configures BuildUserProfiles.
type BuildOptions struct {
	// MinPosts is the active-user threshold; users with fewer posts are
	// dropped. Defaults to DefaultMinPosts (30).
	MinPosts int
	// HourOf selects the bucketing frame for the row-oriented path. Leave
	// nil (the default) to take the columnar fast path; setting it forces
	// per-post time.Time bucketing via ds.ByUser.
	HourOf HourOf
	// Cells selects the bucketing frame for the columnar fast path, which
	// feeds epoch seconds straight from the trace index into the cell
	// function. Defaults to UTCCells(). Ignored when HourOf is set.
	Cells CellOf
	// Parallelism is the number of workers building per-user profiles:
	// 0 uses every core (GOMAXPROCS), 1 forces the sequential path. Each
	// user's profile depends only on that user's posts, so the output map
	// is identical for every setting.
	Parallelism int
	// Context, when non-nil, cancels a long build between users.
	Context context.Context
	// Obs, when non-nil, receives build metrics (profile.users_active,
	// profile.users_built, profile.cells_emitted) and a "profile-build"
	// stage span with per-shard timings. Observation only: the output map
	// is identical with or without it.
	Obs *obs.Observer
}

// BuildUserProfiles builds one profile per active user of the dataset.
// Users below the post threshold are silently dropped ("we have also
// filtered out non active users", §IV); an error is returned only if no
// user survives. The per-user builds run on opts.Parallelism workers, each
// writing its own slots of an index-addressed result slice.
//
// With a nil opts.HourOf the build runs on the dataset's columnar index:
// each worker streams a user's epoch seconds into a reused key buffer and
// dedups cells by sorting, allocating nothing per user. The result is
// bit-identical to the row path (integer cell counts divide the same way
// regardless of visit order).
func BuildUserProfiles(ds *trace.Dataset, opts BuildOptions) (map[string]Profile, error) {
	if opts.MinPosts == 0 {
		opts.MinPosts = DefaultMinPosts
	}
	if opts.HourOf != nil {
		return buildUserProfilesRows(ds, opts)
	}
	cells := opts.Cells
	if cells == nil {
		cells = UTCCells()
	}
	s := ds.Index()
	active := make([]int, 0, s.NumUsers())
	for u := 0; u < s.NumUsers(); u++ {
		if s.Count(u) >= opts.MinPosts {
			active = append(active, u)
		}
	}
	o := opts.Obs.Stage("profile-build")
	defer o.End()
	o.SetWorkers(par.Workers(opts.Parallelism, len(active)))
	o.Counter("profile.users_active").Add(int64(len(active)))
	usersBuilt := o.Counter("profile.users_built")
	cellsEmitted := o.Counter("profile.cells_emitted")
	// A typed-nil *Span must not become a non-nil ShardObserver.
	var so par.ShardObserver
	if sp := o.SpanRef(); sp != nil {
		so = sp
	}
	built := make([]Profile, len(active))
	ok := make([]bool, len(active))
	err := par.RangesObserved(opts.Context, opts.Parallelism, len(active), func(start, end int) error {
		var times, keys []int64 // per-worker scratch, reused across users
		var builtN, cellsN int64
		for i := start; i < end; i++ {
			if opts.Context != nil && i&0xff == 0 {
				if err := opts.Context.Err(); err != nil {
					return err
				}
			}
			times = s.AppendUserTimes(times[:0], active[i])
			keys = keys[:0]
			for _, sec := range times {
				keys = append(keys, cellKey(cells(sec)))
			}
			cellsN += int64(len(keys))
			p, err := fromCellKeys(keys)
			if err != nil {
				continue // no usable activity cells
			}
			built[i], ok[i] = p, true
			builtN++
		}
		usersBuilt.Add(builtN)
		cellsEmitted.Add(cellsN)
		return nil
	}, so)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Profile, len(active))
	for i, u := range active {
		if ok[i] {
			out[s.UserID(u)] = built[i]
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w (threshold %d)", ErrNoActivity, opts.MinPosts)
	}
	return out, nil
}

// buildUserProfilesRows is the row-oriented build used when a custom HourOf
// is set: per-user []trace.Post groups through FromPosts. Active users are
// visited in sorted-ID order, matching the columnar path.
func buildUserProfilesRows(ds *trace.Dataset, opts BuildOptions) (map[string]Profile, error) {
	byUser := ds.ByUser()
	active := make([]string, 0, len(byUser))
	for userID, posts := range byUser {
		if len(posts) >= opts.MinPosts {
			active = append(active, userID)
		}
	}
	sort.Strings(active)
	o := opts.Obs.Stage("profile-build")
	defer o.End()
	o.SetWorkers(par.Workers(opts.Parallelism, len(active)))
	o.Counter("profile.users_active").Add(int64(len(active)))
	usersBuilt := o.Counter("profile.users_built")
	var so par.ShardObserver
	if sp := o.SpanRef(); sp != nil {
		so = sp
	}
	built := make([]Profile, len(active))
	ok := make([]bool, len(active))
	err := par.RangesObserved(opts.Context, opts.Parallelism, len(active), func(start, end int) error {
		var builtN int64
		for i := start; i < end; i++ {
			if opts.Context != nil && i&0xff == 0 {
				if err := opts.Context.Err(); err != nil {
					return err
				}
			}
			p, err := FromPosts(byUser[active[i]], opts.HourOf)
			if err != nil {
				continue // no usable activity cells
			}
			built[i], ok[i] = p, true
			builtN++
		}
		usersBuilt.Add(builtN)
		return nil
	}, so)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Profile, len(active))
	for i, userID := range active {
		if ok[i] {
			out[userID] = built[i]
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w (threshold %d)", ErrNoActivity, opts.MinPosts)
	}
	return out, nil
}

// SortedUserIDs returns the profile map's keys in sorted order, for
// deterministic iteration.
func SortedUserIDs(profiles map[string]Profile) []string {
	out := make([]string, 0, len(profiles))
	for id := range profiles {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// RemoveHolidays drops posts falling in the region's holiday windows —
// "we have filtered out periods of particularly low activity, like
// holidays" (§IV).
func RemoveHolidays(ds *trace.Dataset, region tz.Region) *trace.Dataset {
	return ds.FilterPosts(func(p trace.Post) bool {
		return !region.IsHoliday(p.Time)
	})
}
