package profile

// Old-vs-new equivalence property tests for the allocation-free profile
// path: the legacy string-keyed cell dedup, the legacy time.Format hour
// bucketing, and the legacy per-zone EMD loops are reproduced here verbatim
// and the optimized implementations must match them bit for bit.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

// legacyHourOf is the pre-optimization bucketing contract: hour bin plus a
// calendar-day string key.
type legacyHourOf func(t time.Time) (hour int, day string)

func legacyUTCHours() legacyHourOf {
	return func(t time.Time) (int, string) {
		u := t.UTC()
		return u.Hour(), u.Format("2006-01-02")
	}
}

func legacyLocalHours(region tz.Region) legacyHourOf {
	return func(t time.Time) (int, string) {
		local := region.LocalTime(t)
		return local.Hour(), local.Format("2006-01-02")
	}
}

// legacyFromPosts is the pre-optimization Eq. 1 builder: map[string]bool
// dedup over fmt.Sprintf cell keys.
func legacyFromPosts(posts []trace.Post, hourOf legacyHourOf) (Profile, error) {
	seen := make(map[string]bool)
	var counts [HoursPerDay]float64
	var total float64
	for _, post := range posts {
		h, day := hourOf(post.Time)
		key := fmt.Sprintf("%s#%02d", day, h)
		if seen[key] {
			continue
		}
		seen[key] = true
		counts[h]++
		total++
	}
	if total == 0 {
		return Profile{}, ErrNoActivity
	}
	var p Profile
	for h := range counts {
		p[h] = counts[h] / total
	}
	return p, nil
}

// randomTimes produces instants spread over a year, concentrated enough to
// produce duplicate (day, hour) cells, including sub-second fractions and
// pre-1970 values.
func randomTimes(rng *rand.Rand, n int) []time.Time {
	out := make([]time.Time, 0, n)
	for i := 0; i < n; i++ {
		sec := int64(rng.Intn(365 * 24 * 3600))
		base := time.Date(2017, time.January, 1, 0, 0, 0, 0, time.UTC)
		if rng.Intn(10) == 0 {
			base = time.Date(1969, time.July, 1, 0, 0, 0, 0, time.UTC) // pre-epoch days
		}
		t := base.Add(time.Duration(sec) * time.Second)
		if rng.Intn(3) == 0 {
			t = t.Add(time.Duration(rng.Intn(1e9)) * time.Nanosecond)
		}
		out = append(out, t)
	}
	return out
}

func equivalenceRegions(t *testing.T) []tz.Region {
	t.Helper()
	out := []tz.Region{}
	for _, code := range []string{"de", "jp", "us-ca", "au-nsw", "uk", "br"} {
		r, err := tz.ByCode(code)
		if err != nil {
			t.Fatalf("resolve %q: %v", code, err)
		}
		out = append(out, r)
	}
	return out
}

// TestHourOfMatchesLegacyStringKeys pins the re-typed HourOf (and the
// columnar CellOf) to the legacy time.Format implementation: same hour, and
// a day key that distinguishes exactly the same calendar days.
func TestHourOfMatchesLegacyStringKeys(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(41))
	times := randomTimes(rng, 3000)
	regions := equivalenceRegions(t)
	for _, tc := range []struct {
		name   string
		hourOf HourOf
		cells  CellOf
		legacy legacyHourOf
	}{
		{"utc", UTCHours(), UTCCells(), legacyUTCHours()},
		{"de", LocalHours(regions[0]), LocalCells(regions[0]), legacyLocalHours(regions[0])},
		{"jp", LocalHours(regions[1]), LocalCells(regions[1]), legacyLocalHours(regions[1])},
		{"us-ca", LocalHours(regions[2]), LocalCells(regions[2]), legacyLocalHours(regions[2])},
		{"au-nsw", LocalHours(regions[3]), LocalCells(regions[3]), legacyLocalHours(regions[3])},
	} {
		dayOfString := map[string]int64{}
		stringOfDay := map[int64]string{}
		for _, at := range times {
			h, day := tc.hourOf(at)
			lh, lday := tc.legacy(at)
			if h != lh {
				t.Fatalf("%s: hour(%v) = %d, legacy %d", tc.name, at, h, lh)
			}
			// The integer day key must induce the same partition into days
			// as the legacy string key (bijective on observed days).
			if prev, ok := dayOfString[lday]; ok && prev != day {
				t.Fatalf("%s: day %q mapped to both %d and %d", tc.name, lday, prev, day)
			}
			if prev, ok := stringOfDay[day]; ok && prev != lday {
				t.Fatalf("%s: day key %d mapped to both %q and %q", tc.name, day, prev, lday)
			}
			dayOfString[lday] = day
			stringOfDay[day] = lday
			// CellOf must agree with HourOf at whole-second resolution.
			ch, cday := tc.cells(at.Unix())
			if ch != h || cday != day {
				t.Fatalf("%s: CellOf(%d) = (%d,%d), HourOf = (%d,%d)", tc.name, at.Unix(), ch, cday, h, day)
			}
		}
	}
}

// TestHourOfDSTBoundaries sweeps second-by-second windows around every DST
// transition of 2017 for a northern and a southern region.
func TestHourOfDSTBoundaries(t *testing.T) {
	t.Parallel()
	regions := equivalenceRegions(t)
	boundaries := []time.Time{}
	for _, r := range regions {
		prev := r.OffsetAt(time.Date(2017, time.January, 1, 0, 0, 0, 0, time.UTC))
		for d := time.Date(2017, time.January, 1, 0, 0, 0, 0, time.UTC); d.Year() == 2017; d = d.Add(time.Hour) {
			if cur := r.OffsetAt(d); cur != prev {
				boundaries = append(boundaries, d)
				prev = cur
			}
		}
	}
	if len(boundaries) == 0 {
		t.Fatal("no DST boundaries found in catalogue regions")
	}
	for _, r := range regions {
		hourOf, cells, legacy := LocalHours(r), LocalCells(r), legacyLocalHours(r)
		for _, b := range boundaries {
			for s := -3700; s <= 3700; s += 97 {
				at := b.Add(time.Duration(s) * time.Second)
				h, day := hourOf(at)
				lh, _ := legacy(at)
				if h != lh {
					t.Fatalf("%s at %v: hour %d, legacy %d", r.Code, at, h, lh)
				}
				ch, cday := cells(at.Unix())
				if ch != h || cday != day {
					t.Fatalf("%s at %v: CellOf disagrees with HourOf", r.Code, at)
				}
			}
		}
	}
}

// TestFromPostsMatchesLegacy asserts bit-identical profiles between the
// integer-keyed FromPosts and the string-keyed legacy implementation.
func TestFromPostsMatchesLegacy(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	regions := equivalenceRegions(t)
	for trial := 0; trial < 30; trial++ {
		times := randomTimes(rng, 50+rng.Intn(400))
		posts := make([]trace.Post, len(times))
		for i, at := range times {
			posts[i] = trace.Post{UserID: "u", Time: at}
		}
		region := regions[trial%len(regions)]
		for _, tc := range []struct {
			name   string
			hourOf HourOf
			legacy legacyHourOf
		}{
			{"utc", UTCHours(), legacyUTCHours()},
			{region.Code, LocalHours(region), legacyLocalHours(region)},
		} {
			got, err := FromPosts(posts, tc.hourOf)
			if err != nil {
				t.Fatal(err)
			}
			want, err := legacyFromPosts(posts, tc.legacy)
			if err != nil {
				t.Fatal(err)
			}
			if got != want { // array equality: bit-identical bins
				t.Fatalf("trial %d (%s): FromPosts differs from legacy\n got %v\nwant %v", trial, tc.name, got, want)
			}
		}
	}
}

// TestBuildUserProfilesColumnarMatchesRows asserts the columnar fast path
// (nil HourOf) and the row path produce bit-identical profile maps, in UTC
// and local frames, sequential and parallel.
func TestBuildUserProfilesColumnarMatchesRows(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(43))
	ds := &trace.Dataset{Name: "eq"}
	for u := 0; u < 30; u++ {
		id := fmt.Sprintf("user-%02d", u)
		for _, at := range randomTimes(rng, 20+rng.Intn(60)) {
			ds.Posts = append(ds.Posts, trace.Post{UserID: id, Time: at})
		}
	}
	de, err := tz.ByCode("de")
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range []struct {
		name   string
		cells  CellOf
		hourOf HourOf
	}{
		{"utc", nil, UTCHours()},
		{"de", LocalCells(de), LocalHours(de)},
	} {
		for _, workers := range []int{1, 4} {
			columnar, err := BuildUserProfiles(ds, BuildOptions{
				MinPosts: 10, Cells: frame.cells, Parallelism: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			rows, err := BuildUserProfiles(ds, BuildOptions{
				MinPosts: 10, HourOf: frame.hourOf, Parallelism: workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(columnar) != len(rows) {
				t.Fatalf("%s/%d workers: %d vs %d users", frame.name, workers, len(columnar), len(rows))
			}
			for id, p := range rows {
				if columnar[id] != p {
					t.Fatalf("%s/%d workers: user %q differs", frame.name, workers, id)
				}
			}
		}
	}
}

// TestZoneDistancesMatchPerZoneEMD pins the all-rotations kernel wiring
// (zoneDistances, nearestZone) to the legacy 24-call p.EMD(zone) loop.
func TestZoneDistancesMatchPerZoneEMD(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(44))
	dists := make([]float64, tz.HoursPerDay)
	rot := make([]float64, tz.HoursPerDay)
	scratch := make([]float64, 2*tz.HoursPerDay)
	for trial := 0; trial < 50; trial++ {
		var p, generic Profile
		var sp, sg float64
		for h := range p {
			p[h], generic[h] = rng.Float64(), rng.Float64()
			sp += p[h]
			sg += generic[h]
		}
		for h := range p {
			p[h] /= sp
			generic[h] /= sg
		}
		if err := zoneDistances(p, generic, dists, rot, scratch); err != nil {
			t.Fatal(err)
		}
		zones := ZoneProfiles(generic)
		legacyBest, legacyBestDist := -1, 0.0
		for zi, z := range zones {
			want, err := p.EMD(z)
			if err != nil {
				t.Fatal(err)
			}
			if dists[zi] != want {
				t.Fatalf("trial %d zone %d: dist %v, legacy %v", trial, zi, dists[zi], want)
			}
			if legacyBest == -1 || want < legacyBestDist {
				legacyBest, legacyBestDist = zi, want
			}
		}
		if got := nearestZone(dists); got != legacyBest {
			t.Fatalf("trial %d: nearestZone = %d, legacy argmin %d", trial, got, legacyBest)
		}
	}
}

// TestBuildUserProfilesSteadyStateAllocs verifies the ≥3x allocs/op claim
// structurally: the columnar per-user work (cell keys, dedup, profile)
// allocates nothing once worker scratch is warm.
func TestBuildUserProfilesSteadyStateAllocs(t *testing.T) {
	ds := &trace.Dataset{Name: "allocs"}
	base := time.Date(2017, time.May, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 200; i++ {
		ds.Posts = append(ds.Posts, trace.Post{
			UserID: "u",
			Time:   base.Add(time.Duration(i*7) * time.Hour),
		})
	}
	s := ds.Index()
	cells := UTCCells()
	times := make([]int64, 0, 256)
	keys := make([]int64, 0, 256)
	avg := testing.AllocsPerRun(100, func() {
		times = s.AppendUserTimes(times[:0], 0)
		keys = keys[:0]
		for _, sec := range times {
			h, day := cells(sec)
			keys = append(keys, day*HoursPerDay+int64(h))
		}
		if _, err := fromCellKeys(keys); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("per-user profile build allocates %v times, want 0", avg)
	}
}
