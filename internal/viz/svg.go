// Package viz renders the reproduction's figures as standalone SVG files:
// 24-bin activity profiles (Figures 1, 2, 7, 8) and placement histograms
// with fitted Gaussian-mixture overlays (Figures 3-6, 9-13). Stdlib only;
// the output opens in any browser.
package viz

import (
	"fmt"
	"strings"
)

// Chart geometry.
const (
	chartWidth   = 720
	chartHeight  = 360
	marginLeft   = 56
	marginRight  = 16
	marginTop    = 40
	marginBottom = 48
)

// palette: a bar fill, a curve stroke, axis grey.
const (
	barFill     = "#4878a8"
	curveStroke = "#c44e52"
	axisColor   = "#444444"
	gridColor   = "#dddddd"
	textColor   = "#222222"
)

// BarChart renders labelled bars (e.g. an activity profile or placement
// histogram).
type BarChart struct {
	// Title is drawn across the top.
	Title string
	// Labels names each bar (len must equal len(Values)).
	Labels []string
	// Values are the bar heights (non-negative).
	Values []float64
	// Overlay, when non-empty, is a curve sampled at the bar centres and
	// drawn over the bars (the fitted Gaussian mixture).
	Overlay []float64
	// YLabel annotates the vertical axis.
	YLabel string
}

// SVG renders the chart.
func (c *BarChart) SVG() (string, error) {
	if len(c.Labels) != len(c.Values) {
		return "", fmt.Errorf("viz: %d labels for %d values", len(c.Labels), len(c.Values))
	}
	if len(c.Values) == 0 {
		return "", fmt.Errorf("viz: empty chart")
	}
	if len(c.Overlay) != 0 && len(c.Overlay) != len(c.Values) {
		return "", fmt.Errorf("viz: overlay has %d points for %d bars", len(c.Overlay), len(c.Values))
	}
	maxVal := 0.0
	for _, v := range c.Values {
		if v < 0 {
			return "", fmt.Errorf("viz: negative value %g", v)
		}
		if v > maxVal {
			maxVal = v
		}
	}
	for _, v := range c.Overlay {
		if v > maxVal {
			maxVal = v
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}

	plotW := float64(chartWidth - marginLeft - marginRight)
	plotH := float64(chartHeight - marginTop - marginBottom)
	n := len(c.Values)
	slot := plotW / float64(n)
	barW := slot * 0.8

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		chartWidth, chartHeight, chartWidth, chartHeight)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", chartWidth, chartHeight)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-family="sans-serif" font-size="15" fill="%s">%s</text>`+"\n",
		marginLeft, textColor, escapeXML(c.Title))

	// Horizontal gridlines and y ticks at quarters.
	for i := 0; i <= 4; i++ {
		yVal := maxVal * float64(i) / 4
		y := float64(marginTop) + plotH - yVal/maxVal*plotH
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			marginLeft, y, chartWidth-marginRight, y, gridColor)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-family="sans-serif" font-size="10" fill="%s" text-anchor="end">%.3f</text>`+"\n",
			marginLeft-6, y+3, textColor, yVal)
	}

	// Bars.
	for i, v := range c.Values {
		h := v / maxVal * plotH
		x := float64(marginLeft) + float64(i)*slot + (slot-barW)/2
		y := float64(marginTop) + plotH - h
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
			x, y, barW, h, barFill)
	}

	// X labels: thin out when crowded.
	step := 1
	if n > 12 {
		step = 2
	}
	for i := 0; i < n; i += step {
		x := float64(marginLeft) + float64(i)*slot + slot/2
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="sans-serif" font-size="9" fill="%s" text-anchor="middle">%s</text>`+"\n",
			x, chartHeight-marginBottom+16, textColor, escapeXML(c.Labels[i]))
	}

	// Overlay curve.
	if len(c.Overlay) > 0 {
		var points []string
		for i, v := range c.Overlay {
			x := float64(marginLeft) + float64(i)*slot + slot/2
			y := float64(marginTop) + plotH - v/maxVal*plotH
			points = append(points, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.Join(points, " "), curveStroke)
	}

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%.1f" stroke="%s" stroke-width="1.5"/>`+"\n",
		marginLeft, marginTop, marginLeft, float64(marginTop)+plotH, axisColor)
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1.5"/>`+"\n",
		marginLeft, float64(marginTop)+plotH, chartWidth-marginRight, float64(marginTop)+plotH, axisColor)
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="14" y="%.1f" font-family="sans-serif" font-size="11" fill="%s" transform="rotate(-90 14 %.1f)" text-anchor="middle">%s</text>`+"\n",
			float64(marginTop)+plotH/2, textColor, float64(marginTop)+plotH/2, escapeXML(c.YLabel))
	}

	b.WriteString("</svg>\n")
	return b.String(), nil
}

func escapeXML(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;",
		"<", "&lt;",
		">", "&gt;",
		`"`, "&quot;",
	)
	return r.Replace(s)
}

// HourLabels returns "0h".."23h" for profile charts.
func HourLabels() []string {
	out := make([]string, 24)
	for h := range out {
		out[h] = fmt.Sprintf("%dh", h)
	}
	return out
}

// ZoneLabels returns "-11".."+12" for placement charts.
func ZoneLabels() []string {
	out := make([]string, 0, 24)
	for o := -11; o <= 12; o++ {
		if o <= 0 {
			out = append(out, fmt.Sprintf("%d", o))
		} else {
			out = append(out, fmt.Sprintf("+%d", o))
		}
	}
	return out
}
