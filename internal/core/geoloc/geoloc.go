// Package geoloc implements the paper's crowd-geolocation methodology
// (§IV-A/B): every anonymous user is placed on the time zone whose
// reference profile is closest under the Earth Mover's Distance, the
// resulting placement histogram is fitted with a single Gaussian
// (single-country crowds) or a Gaussian mixture estimated by EM
// (multiple-country crowds), and the fitted component means reveal the
// time zones the crowd lives in. The package also provides the Table II
// fit-quality metrics and the §V-F DST-based hemisphere classifier.
package geoloc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/obs"
	"darkcrowd/internal/par"
	"darkcrowd/internal/stats"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

// DistanceKind selects the profile distance used for placement.
type DistanceKind int

// Distance kinds. The paper's methodology calls for the EMD on profiles
// that live on the 24-hour circle; the linear variant is kept for the
// ablation benchmark.
const (
	DistanceCircularEMD DistanceKind = iota + 1
	DistanceLinearEMD
)

// String implements fmt.Stringer.
func (d DistanceKind) String() string {
	switch d {
	case DistanceCircularEMD:
		return "circular-emd"
	case DistanceLinearEMD:
		return "linear-emd"
	default:
		return fmt.Sprintf("DistanceKind(%d)", int(d))
	}
}

// Placement is the outcome of assigning every member of a crowd to the
// nearest time zone (§IV-A).
type Placement struct {
	// Assignments maps each user to the offset of their nearest zone.
	Assignments map[string]tz.Offset
	// Histogram is the fraction of the crowd placed on each zone, indexed
	// by zone index (see profile.ZoneIndex); it sums to 1.
	Histogram []float64
	// Counts is the raw user count per zone index.
	Counts []int
	// Margins, when placement ran with PlaceOptions.Margins, maps each
	// user to their placement margin: the EMD gap between the runner-up
	// zone and the winning zone. A margin near zero means the placement
	// was nearly a coin flip between two zones; a large margin means the
	// user's profile points unambiguously at one zone. Nil when margin
	// recording was off, so pre-margin reports and checkpoints are
	// unaffected.
	Margins map[string]float64 `json:",omitempty"`
}

// Samples returns one value per user — the zone index of the user's
// placement — in sorted-user order, ready to be fed to EM.
func (p *Placement) Samples() []float64 {
	users := make([]string, 0, len(p.Assignments))
	for u := range p.Assignments {
		users = append(users, u)
	}
	sort.Strings(users)
	out := make([]float64, 0, len(users))
	for _, u := range users {
		out = append(out, float64(profile.ZoneIndex(p.Assignments[u])))
	}
	return out
}

// PlaceOptions configures PlaceUsers.
type PlaceOptions struct {
	// Distance selects the placement metric.
	// Defaults to DistanceCircularEMD.
	Distance DistanceKind
	// Parallelism is the number of worker goroutines placing users: 0 uses
	// every core (GOMAXPROCS), 1 forces the sequential path, any other
	// value pins the pool size. Placement is deterministic: the output is
	// bit-for-bit identical for every setting (see the shard/merge note on
	// PlaceUsers).
	Parallelism int
	// Context, when non-nil, cancels a long placement run between users.
	Context context.Context
	// Obs, when non-nil, receives placement metrics
	// (placement.users_placed, per-zone counts) and a "placement" stage
	// span with per-shard timings. Observation only: the placement is
	// identical with or without it.
	Obs *obs.Observer
	// Margins records each user's placement margin (best-vs-runner-up EMD
	// gap) into Placement.Margins. The margin falls out of the same
	// all-rotations kernel call that picks the winning zone — no second
	// distance pass — so recording it does not change any assignment.
	Margins bool
}

// PlaceUsers assigns every profile to its nearest time zone, comparing the
// user's UTC-frame profile against the 24 zone reference profiles derived
// from the generic profile: "we geolocate that member on the timezone whose
// activity profile is less distant" (§IV-A).
//
// Per-user placements are independent, so the sorted user list is split
// into contiguous shards, one per worker. Every worker writes only its own
// index range of a position-addressed result slice (plus a private EMD
// scratch buffer), and the histogram/count/assignment merge runs after the
// join, on one goroutine, in user order — which makes the result identical
// to the sequential path regardless of worker count or scheduling.
func PlaceUsers(profiles map[string]profile.Profile, generic profile.Profile, opts PlaceOptions) (*Placement, error) {
	if len(profiles) == 0 {
		return nil, errors.New("geoloc: no profiles to place")
	}
	if opts.Distance == 0 {
		opts.Distance = DistanceCircularEMD
	}
	users := profile.SortedUserIDs(profiles)
	best := make([]int, len(users))
	var margins []float64
	if opts.Margins {
		margins = make([]float64, len(users))
	}
	// The circular path never materializes the 24 zone profiles: one
	// all-rotations kernel call against the generic profile yields every
	// zone distance. The linear ablation keeps the explicit zone loop.
	var zones []profile.Profile
	if opts.Distance == DistanceLinearEMD {
		zones = profile.ZoneProfiles(generic)
	}
	o := opts.Obs.Stage("placement")
	defer o.End()
	o.SetWorkers(par.Workers(opts.Parallelism, len(users)))
	usersPlaced := o.Counter("placement.users_placed")
	// A typed-nil *Span must not become a non-nil ShardObserver.
	var so par.ShardObserver
	if sp := o.SpanRef(); sp != nil {
		so = sp
	}
	err := par.RangesObserved(opts.Context, opts.Parallelism, len(users), func(start, end int) error {
		dists := make([]float64, tz.HoursPerDay)
		scratch := make([]float64, 2*tz.HoursPerDay)
		for i := start; i < end; i++ {
			if opts.Context != nil && i&0xff == 0 {
				if err := opts.Context.Err(); err != nil {
					return err
				}
			}
			zi, margin, err := nearestZoneIndex(profiles[users[i]], generic, zones, opts.Distance, dists, scratch)
			if err != nil {
				return fmt.Errorf("geoloc: distance for user %q: %w", users[i], err)
			}
			best[i] = zi
			if margins != nil {
				margins[i] = margin
			}
		}
		usersPlaced.Add(int64(end - start))
		return nil
	}, so)
	if err != nil {
		return nil, err
	}
	out := &Placement{
		Assignments: make(map[string]tz.Offset, len(profiles)),
		Histogram:   make([]float64, tz.HoursPerDay),
		Counts:      make([]int, tz.HoursPerDay),
	}
	if margins != nil {
		out.Margins = make(map[string]float64, len(users))
	}
	for i, userID := range users {
		out.Assignments[userID] = profile.OffsetOf(best[i])
		out.Counts[best[i]]++
		if margins != nil {
			out.Margins[userID] = margins[i]
		}
	}
	total := float64(len(profiles))
	for zi, c := range out.Counts {
		out.Histogram[zi] = float64(c) / total
	}
	return out, nil
}

// nearestZoneIndex returns the index of the zone profile with minimal
// distance from p, breaking ties toward the lower index, together with the
// placement margin — the distance gap between the runner-up zone and the
// winner (0 on an exact tie). dists and scratch are worker-owned
// workspaces (HoursPerDay and 2*HoursPerDay floats).
//
// The circular metric computes all 24 distances with one
// EMDCircularAllRotations call on the generic profile. The zone-zi
// reference is generic.Shift(-(zi+MinOffset)) — the rotation of generic by
// r = (zi + MinOffset) mod 24 — so the kernel's out[r] is bit-identical to
// EMDCircularScratch(p, zones[zi]), and the strict less-than argmin over
// ascending zi reproduces the historical per-zone loop exactly, ties
// included. The margin falls out of the same scan (a second running
// minimum over the distances already in hand — no extra kernel work), so
// the winning zone is identical whether or not the caller consumes it.
// zones is only consulted by the linear ablation metric.
func nearestZoneIndex(p profile.Profile, generic profile.Profile, zones []profile.Profile, dist DistanceKind, dists, scratch []float64) (int, float64, error) {
	if dist == DistanceLinearEMD {
		best := -1
		bestDist := 0.0
		second := math.Inf(1)
		for zi := range zones {
			d, err := stats.EMDLinear(p[:], zones[zi][:])
			if err != nil {
				return 0, 0, fmt.Errorf("zone %d: %w", zi, err)
			}
			switch {
			case best == -1:
				best, bestDist = zi, d
			case d < bestDist:
				best, bestDist, second = zi, d, bestDist
			case d < second:
				second = d
			}
		}
		if math.IsInf(second, 1) {
			second = bestDist // single-zone ablation: no runner-up
		}
		return best, second - bestDist, nil
	}
	rot, err := stats.EMDCircularAllRotations(p[:], generic[:], dists, scratch)
	if err != nil {
		return 0, 0, err
	}
	best := 0
	bestDist := rot[(int(tz.MinOffset)+tz.HoursPerDay)%tz.HoursPerDay]
	second := math.Inf(1)
	for zi := 1; zi < tz.HoursPerDay; zi++ {
		d := rot[(zi+int(tz.MinOffset)+tz.HoursPerDay)%tz.HoursPerDay]
		switch {
		case d < bestDist:
			best, bestDist, second = zi, d, bestDist
		case d < second:
			second = d
		}
	}
	return best, second - bestDist, nil
}

// SingleFit is the single-Gaussian placement fit used for single-country
// crowds (Figures 3-5): the center of the Gaussian uncovers the crowd's
// time zone.
type SingleFit struct {
	// Gaussian is the fitted curve, with Mean on the zone-index axis.
	Gaussian stats.Gaussian
	// PeakOffset is the fitted mean translated to a UTC offset (fractional
	// part carries sub-zone precision).
	PeakOffset float64
	// NearestOffset is PeakOffset rounded to the nearest integer zone.
	NearestOffset tz.Offset
	// AvgDistance and StdDistance are the Table II point-by-point
	// curve-to-histogram distance statistics.
	AvgDistance, StdDistance float64
}

// FitSingle fits one Gaussian to the placement histogram by least squares
// ("curve-fit the resulting distribution with a Gaussian", §IV-A).
func FitSingle(p *Placement) (*SingleFit, error) {
	g, err := stats.FitGaussianCircular(p.Histogram)
	if err != nil {
		return nil, fmt.Errorf("geoloc: single Gaussian fit: %w", err)
	}
	curve := stats.Mixture{g}.Curve(tz.HoursPerDay)
	avg, std, err := stats.PointwiseDistanceStats(curve, p.Histogram)
	if err != nil {
		return nil, fmt.Errorf("geoloc: fit-quality metrics: %w", err)
	}
	peak := zoneAxisToOffset(g.Mean)
	return &SingleFit{
		Gaussian:      g,
		PeakOffset:    peak,
		NearestOffset: nearestOffset(g.Mean),
		AvgDistance:   avg,
		StdDistance:   std,
	}, nil
}

// Component is one region of a mixed crowd, as uncovered by the GMM.
type Component struct {
	// Weight is the share of the crowd in this component.
	Weight float64
	// Offset is the component center translated to a (fractional) UTC
	// offset.
	Offset float64
	// NearestOffset is Offset rounded to the nearest integer zone.
	NearestOffset tz.Offset
	// Sigma is the component's standard deviation in zones.
	Sigma float64
}

// String renders the component the way the paper discusses them.
func (c Component) String() string {
	return fmt.Sprintf("%.0f%% of the crowd at %s (center %+.2f, sigma %.2f)",
		c.Weight*100, c.NearestOffset, c.Offset, c.Sigma)
}

// Geolocation is the full §IV-B result for a crowd of unknown origin.
type Geolocation struct {
	// Placement is the per-user zone assignment.
	Placement *Placement
	// Mixture is the EM-fitted model on the zone-index axis.
	Mixture stats.Mixture
	// Components lists the uncovered regions, heaviest first.
	Components []Component
	// AvgDistance and StdDistance are the Table II metrics for the
	// mixture curve against the placement histogram.
	AvgDistance, StdDistance float64
	// BIC is the selected model's Bayesian Information Criterion.
	BIC float64
	// Degraded is empty for a healthy mixture fit; otherwise it carries the
	// stats degradation reason (non-convergence, degenerate component). A
	// degraded geolocation is still the best available estimate — callers
	// should surface the reason as a warning rather than discard the result.
	Degraded string `json:",omitempty"`
	// MarginSummary aggregates the per-user placement margins when the
	// placement recorded them (PlaceOptions.Margins); nil otherwise, so
	// margin-off reports serialize exactly as before the field existed.
	MarginSummary *MarginStats `json:",omitempty"`
	// Confidence carries the bootstrap confidence intervals on the mixture
	// components when the caller ran BootstrapMixtureCI; nil otherwise.
	Confidence *BootstrapResult `json:"confidence,omitempty"`
}

// MarginStats summarizes the distribution of per-user placement margins —
// how decisively the crowd's members landed on their zones. All values are
// EMD gaps on the same scale as the placement distance.
type MarginStats struct {
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Mean   float64 `json:"mean"`
	Max    float64 `json:"max"`
}

// SummarizeMargins computes MarginStats over a placement's recorded
// margins; nil when the placement carries none. The median of an even
// count is the mean of the two middle values.
func SummarizeMargins(p *Placement) *MarginStats {
	if len(p.Margins) == 0 {
		return nil
	}
	vals := make([]float64, 0, len(p.Margins))
	for _, m := range p.Margins {
		vals = append(vals, m)
	}
	sort.Float64s(vals)
	s := &MarginStats{Min: vals[0], Max: vals[len(vals)-1]}
	n := len(vals)
	if n%2 == 1 {
		s.Median = vals[n/2]
	} else {
		s.Median = (vals[n/2-1] + vals[n/2]) / 2
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	s.Mean = sum / float64(n)
	return s
}

// GeolocateOptions configures Geolocate.
type GeolocateOptions struct {
	// Place configures the placement stage.
	Place PlaceOptions
	// MaxComponents bounds the GMM model search. Defaults to 4.
	MaxComponents int
	// EM tunes the EM runs; Period is forced to 24.
	EM stats.EMConfig
	// Obs, when non-nil, is propagated to the placement and EM stages
	// (unless those carry their own observer already). Observation only.
	Obs *obs.Observer
}

// Geolocate runs the full §IV-B pipeline on a polished set of user
// profiles: EMD placement, then EM-fitted Gaussian mixture with BIC model
// selection, then the Table II fit-quality metrics. It is exactly
// PlaceUsers followed by FitPlacement; the split exists so a checkpointing
// pipeline can resume between the two expensive stages.
func Geolocate(profiles map[string]profile.Profile, generic profile.Profile, opts GeolocateOptions) (*Geolocation, error) {
	if opts.Place.Obs == nil {
		opts.Place.Obs = opts.Obs
	}
	placement, err := PlaceUsers(profiles, generic, opts.Place)
	if err != nil {
		return nil, err
	}
	return FitPlacement(placement, opts)
}

// FitPlacement runs the model-fitting half of Geolocate on an existing
// placement: EM mixture selection with BIC, then the Table II fit-quality
// metrics. The placement may come from a fresh PlaceUsers run or from a
// stage checkpoint — the result is identical either way.
func FitPlacement(placement *Placement, opts GeolocateOptions) (*Geolocation, error) {
	if opts.MaxComponents == 0 {
		opts.MaxComponents = 4
	}
	emCfg := opts.EM
	emCfg.Period = tz.HoursPerDay
	if emCfg.Obs == nil {
		emCfg.Obs = opts.Obs
	}
	if emCfg.Parallelism == 0 {
		// One knob steers the whole pipeline: a pinned placement pool size
		// carries over to the per-k EM fits unless EM overrides it.
		emCfg.Parallelism = opts.Place.Parallelism
	}
	res, err := stats.SelectMixture(placement.Samples(), opts.MaxComponents, emCfg)
	if err != nil {
		return nil, fmt.Errorf("geoloc: mixture selection: %w", err)
	}
	curve := res.Mixture.Curve(tz.HoursPerDay)
	avg, std, err := stats.PointwiseDistanceStats(curve, placement.Histogram)
	if err != nil {
		return nil, fmt.Errorf("geoloc: fit-quality metrics: %w", err)
	}
	components := make([]Component, 0, len(res.Mixture))
	for _, g := range res.Mixture {
		components = append(components, Component{
			Weight:        g.Weight,
			Offset:        zoneAxisToOffset(g.Mean),
			NearestOffset: nearestOffset(g.Mean),
			Sigma:         g.Sigma,
		})
	}
	return &Geolocation{
		Placement:     placement,
		Mixture:       res.Mixture,
		Components:    components,
		AvgDistance:   avg,
		StdDistance:   std,
		BIC:           res.BIC,
		Degraded:      res.Degraded,
		MarginSummary: SummarizeMargins(placement),
	}, nil
}

// zoneAxisToOffset converts a (possibly fractional) zone index on the EM
// axis to a UTC offset value.
func zoneAxisToOffset(mean float64) float64 {
	off := mean + float64(tz.MinOffset)
	// Wrap into (-12, +12].
	for off > 12 {
		off -= tz.HoursPerDay
	}
	for off <= -12 {
		off += tz.HoursPerDay
	}
	return off
}

func nearestOffset(mean float64) tz.Offset {
	// math.Floor, not int(): int truncates toward zero, so a slightly
	// negative mean (legal on the circular zone axis) would round to
	// zone 0 instead of wrapping to zone 23.
	zi := int(math.Floor(mean + 0.5))
	return profile.OffsetOf(((zi % tz.HoursPerDay) + tz.HoursPerDay) % tz.HoursPerDay)
}

// MostActiveUsers returns the n users with the most posts, most active
// first; ties break alphabetically. The paper uses the five most active
// users of a forum for hemisphere analysis (§V-F).
func MostActiveUsers(ds *trace.Dataset, n int) []string {
	counts := ds.PostCounts()
	users := make([]string, 0, len(counts))
	for u := range counts {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool {
		if counts[users[i]] != counts[users[j]] {
			return counts[users[i]] > counts[users[j]]
		}
		return users[i] < users[j]
	})
	if n > len(users) {
		n = len(users)
	}
	return users[:n]
}
