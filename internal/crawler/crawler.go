// Package crawler implements the paper's data-collection procedure (§V)
// against a forum (plain HTTP or hidden service via internal/onion):
//
//	"First, we sign up in the forum and write a post in the Welcome or
//	Spam thread to calculate the offset between the server time (the one
//	on the post) and UTC. ... once the offset from UTC is known we can
//	collect the timestamps of the posts in a sound and consistent way."
//
// The crawler registers a probe account, posts in the Welcome thread,
// reads back its own post's displayed timestamp to learn the server-clock
// offset, then paginates every thread of every board extracting
// (author, displayed time) pairs and normalizing them to UTC. The output
// is a trace.Dataset ready for the geolocation pipeline; only author IDs
// and posting times are retained, as in the paper's ethics statement
// (§VIII).
package crawler

import (
	"errors"
	"fmt"
	"html"
	"io"
	"net/http"
	"net/url"
	"regexp"
	"strconv"
	"strings"
	"time"

	"darkcrowd/internal/forum"
	"darkcrowd/internal/trace"
)

// ProbeAuthor is the account name the crawler registers for the clock
// probe; its posts are excluded from the scraped dataset.
const ProbeAuthor = "tz-probe-account"

// ErrNoTimestamps is returned when the forum renders posts without
// timestamps (the §VII countermeasure); use Monitor instead of Scrape.
var ErrNoTimestamps = errors.New("crawler: forum hides post timestamps (use Monitor)")

// Crawler scrapes one forum.
type Crawler struct {
	// HTTPClient performs the requests; wire its transport through an
	// onion client to scrape a hidden service. Defaults to
	// http.DefaultClient.
	HTTPClient *http.Client
	// BaseURL is the forum root, e.g. "http://crdclub4wraumez4.onion".
	BaseURL string
	// Clock supplies the crawler's own UTC time for the offset probe.
	// Defaults to time.Now.
	Clock func() time.Time
}

// Result is a completed scrape.
type Result struct {
	// Dataset holds the UTC-normalized (author, time) pairs.
	Dataset *trace.Dataset
	// ServerOffset is the measured server-clock offset from UTC.
	ServerOffset time.Duration
	// Boards, Threads and Pages count what was crawled.
	Boards, Threads, Pages int
}

var (
	boardLinkRe  = regexp.MustCompile(`href="/board\?id=(\d+)"`)
	threadLinkRe = regexp.MustCompile(`href="/thread\?id=(\d+)"`)
	postRe       = regexp.MustCompile(`<div class="post" data-id="(\d+)" data-author="([^"]*)"(?: data-time="([^"]*)")?>`)
	pagesRe      = regexp.MustCompile(`data-pages="(\d+)"`)
)

func (c *Crawler) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Crawler) now() time.Time {
	if c.Clock != nil {
		return c.Clock().UTC()
	}
	return time.Now().UTC()
}

// get fetches a page and returns its body.
func (c *Crawler) get(path string) (string, error) {
	resp, err := c.client().Get(c.BaseURL + path)
	if err != nil {
		return "", fmt.Errorf("crawler: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("crawler: read %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("crawler: GET %s: status %d", path, resp.StatusCode)
	}
	return string(body), nil
}

// MeasureOffset runs the Welcome-thread probe: register, post, read the
// displayed timestamp of our own post, and compare it to our clock. The
// offset is rounded to the nearest minute (network latency is well below
// that).
func (c *Crawler) MeasureOffset() (time.Duration, error) {
	// Registration may 409 if a previous probe ran; that is fine.
	resp, err := c.client().PostForm(c.BaseURL+"/register", url.Values{"name": {ProbeAuthor}})
	if err != nil {
		return 0, fmt.Errorf("crawler: register probe: %w", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return 0, fmt.Errorf("crawler: register probe: status %d", resp.StatusCode)
	}

	welcomeThread, err := c.findWelcomeThread()
	if err != nil {
		return 0, err
	}
	sent := c.now()
	resp, err = c.client().PostForm(c.BaseURL+"/reply", url.Values{
		"thread": {strconv.Itoa(welcomeThread)},
		"author": {ProbeAuthor},
		"body":   {"hello from a new member"},
	})
	if err != nil {
		return 0, fmt.Errorf("crawler: probe post: %w", err)
	}
	echo, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return 0, fmt.Errorf("crawler: read probe echo: %w", err)
	}
	if resp.StatusCode != http.StatusCreated {
		return 0, fmt.Errorf("crawler: probe post: status %d (%s)", resp.StatusCode, echo)
	}
	m := postRe.FindStringSubmatch(string(echo))
	if m == nil {
		return 0, errors.New("crawler: probe echo carries no post markup")
	}
	if m[3] == "" {
		return 0, ErrNoTimestamps
	}
	displayed, err := forum.ParseDisplayedTime(m[3])
	if err != nil {
		return 0, err
	}
	// Both timestamps are wall clocks; the difference is the server
	// offset plus network latency.
	delta := displayed.Sub(time.Date(sent.Year(), sent.Month(), sent.Day(),
		sent.Hour(), sent.Minute(), sent.Second(), 0, time.UTC))
	return delta.Round(time.Minute), nil
}

// findWelcomeThread locates the Welcome thread by scanning boards in
// order; the forum engine always places it on the first board.
func (c *Crawler) findWelcomeThread() (int, error) {
	index, err := c.get("/")
	if err != nil {
		return 0, err
	}
	boards := boardLinkRe.FindAllStringSubmatch(index, -1)
	if len(boards) == 0 {
		return 0, errors.New("crawler: no boards found on index page")
	}
	for _, bm := range boards {
		page, err := c.get("/board?id=" + bm[1])
		if err != nil {
			return 0, err
		}
		// Look for the Welcome link: threads render as
		// <a href="/thread?id=N">Title</a>.
		for _, tm := range regexp.MustCompile(`href="/thread\?id=(\d+)">([^<]+)<`).FindAllStringSubmatch(page, -1) {
			if strings.EqualFold(html.UnescapeString(tm[2]), forum.WelcomeThreadTitle) {
				id, err := strconv.Atoi(tm[1])
				if err != nil {
					return 0, fmt.Errorf("crawler: bad thread id %q: %w", tm[1], err)
				}
				return id, nil
			}
		}
	}
	return 0, errors.New("crawler: Welcome thread not found")
}

// Scrape crawls the whole forum: offset probe first, then every page of
// every thread, normalizing displayed timestamps back to UTC.
func (c *Crawler) Scrape(datasetName string) (*Result, error) {
	offset, err := c.MeasureOffset()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Dataset:      &trace.Dataset{Name: datasetName},
		ServerOffset: offset,
	}

	index, err := c.get("/")
	if err != nil {
		return nil, err
	}
	seenThreads := map[string]bool{}
	for _, bm := range boardLinkRe.FindAllStringSubmatch(index, -1) {
		res.Boards++
		boardPage, err := c.get("/board?id=" + bm[1])
		if err != nil {
			return nil, err
		}
		for _, tm := range threadLinkRe.FindAllStringSubmatch(boardPage, -1) {
			if seenThreads[tm[1]] {
				continue
			}
			seenThreads[tm[1]] = true
			res.Threads++
			if err := c.scrapeThread(tm[1], offset, res); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// scrapeThread walks every page of one thread.
func (c *Crawler) scrapeThread(threadID string, offset time.Duration, res *Result) error {
	for page := 0; ; page++ {
		body, err := c.get(fmt.Sprintf("/thread?id=%s&page=%d", threadID, page))
		if err != nil {
			return err
		}
		res.Pages++
		for _, pm := range postRe.FindAllStringSubmatch(body, -1) {
			author := html.UnescapeString(pm[2])
			if author == ProbeAuthor {
				continue
			}
			if pm[3] == "" {
				return fmt.Errorf("crawler: thread %s page %d: %w", threadID, page, ErrNoTimestamps)
			}
			displayed, err := forum.ParseDisplayedTime(pm[3])
			if err != nil {
				return fmt.Errorf("crawler: thread %s page %d: %w", threadID, page, err)
			}
			utc := displayed.Add(-offset)
			res.Dataset.Posts = append(res.Dataset.Posts, trace.Post{
				UserID: author,
				Time:   utc,
			})
		}
		m := pagesRe.FindStringSubmatch(body)
		if m == nil {
			return fmt.Errorf("crawler: thread %s page %d: no page count", threadID, page)
		}
		total, err := strconv.Atoi(m[1])
		if err != nil {
			return fmt.Errorf("crawler: bad page count %q: %w", m[1], err)
		}
		if page >= total-1 {
			return nil
		}
	}
}
