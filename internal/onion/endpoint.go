package onion

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// controlTimeout bounds every circuit-level round trip.
const controlTimeout = 10 * time.Second

// hop is the originator's record of one relay on a circuit.
type hop struct {
	relay string
	keys  *hopKeys
}

// circuit is an originator-side circuit: the originator holds the keys of
// every hop and wraps/unwraps all onion layers.
type circuit struct {
	id uint32
	ep *endpoint

	mu      sync.Mutex
	hops    []hop
	streams map[uint16]*Stream
	nextStr uint16
	closed  bool

	// control receives circuit-level replies (EXTENDED, CONNECTED,
	// INTRO_ESTABLISHED, ...), tagged with the originating hop index.
	control chan relayMsg
	// introduce2 receives introduction requests on service intro
	// circuits.
	introduce2 chan relayMsg

	// e2e, when set, protects stream DATA end to end between the client
	// and the hidden service: the rendezvous point splices only
	// ciphertext. e2eClient tells which direction this endpoint seals.
	e2e       *hopKeys
	e2eClient bool
}

// endpoint is the shared core of Client and Service: a fabric node that
// originates circuits.
type endpoint struct {
	id  string
	net *Network

	inbox    chan Cell
	done     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	mu       sync.Mutex
	circuits map[uint32]*circuit
	pending  map[uint32]chan []byte // CREATE waiting for CREATED
}

var _ node = (*endpoint)(nil)

func newEndpoint(n *Network, id string) (*endpoint, error) {
	ep := &endpoint{
		id:       id,
		net:      n,
		inbox:    make(chan Cell, inboxSize),
		done:     make(chan struct{}),
		circuits: make(map[uint32]*circuit),
		pending:  make(map[uint32]chan []byte),
	}
	if err := n.attach(ep); err != nil {
		return nil, err
	}
	ep.wg.Add(1)
	go func() {
		defer ep.wg.Done()
		for {
			select {
			case c := <-ep.inbox:
				ep.handleCell(c)
			case <-ep.done:
				return
			}
		}
	}()
	return ep, nil
}

// ID implements node.
func (ep *endpoint) ID() string { return ep.id }

// deliver implements node.
func (ep *endpoint) deliver(c Cell) {
	select {
	case ep.inbox <- c:
	case <-ep.done:
	}
}

func (ep *endpoint) stop() {
	ep.stopOnce.Do(func() {
		close(ep.done)
	})
	ep.wg.Wait()
	ep.mu.Lock()
	circuits := make([]*circuit, 0, len(ep.circuits))
	for _, c := range ep.circuits {
		circuits = append(circuits, c)
	}
	ep.mu.Unlock()
	for _, c := range circuits {
		c.teardown()
	}
	ep.net.detach(ep.id)
}

func (ep *endpoint) handleCell(c Cell) {
	switch c.Cmd {
	case CmdCreated:
		ep.mu.Lock()
		waiter, ok := ep.pending[c.Circ]
		if ok {
			delete(ep.pending, c.Circ)
		}
		ep.mu.Unlock()
		if ok {
			select {
			case waiter <- c.Payload:
			default:
			}
		}
	case CmdRelay:
		ep.mu.Lock()
		circ := ep.circuits[c.Circ]
		ep.mu.Unlock()
		if circ != nil {
			circ.handleBackward(c.Payload)
		}
	case CmdDestroy:
		ep.mu.Lock()
		circ := ep.circuits[c.Circ]
		ep.mu.Unlock()
		if circ != nil {
			circ.remoteClose()
		}
	}
}

// buildCircuit creates a circuit through the given relay path, negotiating
// keys hop by hop (CREATE with the guard, then EXTEND through each later
// hop) exactly as §II-A describes.
func (ep *endpoint) buildCircuit(path []string) (*circuit, error) {
	if len(path) == 0 {
		return nil, errors.New("onion: empty circuit path")
	}
	circID := ep.net.nextCirc()
	circ := &circuit{
		id:         circID,
		ep:         ep,
		streams:    make(map[uint16]*Stream),
		nextStr:    1,
		control:    make(chan relayMsg, 16),
		introduce2: make(chan relayMsg, 16),
	}
	ep.mu.Lock()
	ep.circuits[circID] = circ
	ep.mu.Unlock()

	// First hop: link-level CREATE.
	kp, err := newKeyPair()
	if err != nil {
		return nil, err
	}
	waiter := make(chan []byte, 1)
	ep.mu.Lock()
	ep.pending[circID] = waiter
	ep.mu.Unlock()
	ep.net.send(path[0], Cell{Circ: circID, Cmd: CmdCreate, From: ep.id, Payload: kp.pub})
	var guardPub []byte
	select {
	case guardPub = <-waiter:
	case <-time.After(ep.net.controlDeadline()):
		ep.dropCircuit(circ)
		return nil, fmt.Errorf("onion: CREATE to %s timed out", path[0])
	case <-ep.done:
		return nil, errors.New("onion: endpoint stopped")
	}
	keys, err := deriveHopKeys(kp.priv, guardPub)
	if err != nil {
		ep.dropCircuit(circ)
		return nil, err
	}
	circ.mu.Lock()
	circ.hops = append(circ.hops, hop{relay: path[0], keys: keys})
	circ.mu.Unlock()

	// Later hops: EXTEND relayed through the current endpoint.
	for _, target := range path[1:] {
		kp, err := newKeyPair()
		if err != nil {
			ep.dropCircuit(circ)
			return nil, err
		}
		body := encodeExtend(extendPayload{Target: target, ClientPub: kp.pub})
		if err := circ.sendForward(relayMsg{Cmd: relayExtend, Body: body}); err != nil {
			ep.dropCircuit(circ)
			return nil, err
		}
		reply, err := circ.waitControl(relayExtended)
		if err != nil {
			ep.dropCircuit(circ)
			return nil, fmt.Errorf("onion: extend to %s: %w", target, err)
		}
		keys, err := deriveHopKeys(kp.priv, reply.Body)
		if err != nil {
			ep.dropCircuit(circ)
			return nil, err
		}
		circ.mu.Lock()
		circ.hops = append(circ.hops, hop{relay: target, keys: keys})
		circ.mu.Unlock()
	}
	return circ, nil
}

func (ep *endpoint) dropCircuit(c *circuit) {
	ep.mu.Lock()
	delete(ep.circuits, c.id)
	delete(ep.pending, c.id)
	ep.mu.Unlock()
}

// sendForward wraps msg in one onion layer per hop (innermost layer for the
// last hop, marked final) and ships it to the guard.
func (c *circuit) sendForward(msg relayMsg) error {
	c.mu.Lock()
	hops := append([]hop(nil), c.hops...)
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return errors.New("onion: circuit is closed")
	}
	if len(hops) == 0 {
		return errors.New("onion: circuit has no hops")
	}
	payload := append([]byte{flagFinal}, encodeRelayMsg(msg)...)
	var err error
	for i := len(hops) - 1; i >= 0; i-- {
		payload, err = sealLayer(hops[i].keys.fwdEnc, hops[i].keys.fwdMAC, payload)
		if err != nil {
			return err
		}
		if i > 0 {
			payload = append([]byte{flagForward}, payload...)
		}
	}
	c.ep.net.send(hops[0].relay, Cell{Circ: c.id, Cmd: CmdRelay, From: c.ep.id, Payload: payload})
	return nil
}

// handleBackward peels backward layers hop by hop until it finds the
// originating hop's final layer, then dispatches the message.
func (c *circuit) handleBackward(payload []byte) {
	c.mu.Lock()
	hops := append([]hop(nil), c.hops...)
	c.mu.Unlock()
	for _, h := range hops {
		plain, err := openLayer(h.keys.bwdEnc, h.keys.bwdMAC, payload)
		if err != nil || len(plain) == 0 {
			return // corrupt or not yet decryptable: drop
		}
		flag, rest := plain[0], plain[1:]
		if flag == flagForward {
			payload = rest
			continue
		}
		msg, err := decodeRelayMsg(rest)
		if err != nil {
			return
		}
		c.dispatch(msg)
		return
	}
}

// setE2E installs the end-to-end keys on a rendezvous circuit.
func (c *circuit) setE2E(keys *hopKeys, isClient bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.e2e = keys
	c.e2eClient = isClient
}

// sealE2E encrypts an outgoing stream chunk when e2e is active.
func (c *circuit) sealE2E(body []byte) ([]byte, error) {
	c.mu.Lock()
	keys, isClient := c.e2e, c.e2eClient
	c.mu.Unlock()
	if keys == nil {
		return body, nil
	}
	if isClient {
		return sealLayer(keys.fwdEnc, keys.fwdMAC, body)
	}
	return sealLayer(keys.bwdEnc, keys.bwdMAC, body)
}

// openE2E decrypts an incoming stream chunk when e2e is active.
func (c *circuit) openE2E(body []byte) ([]byte, error) {
	c.mu.Lock()
	keys, isClient := c.e2e, c.e2eClient
	c.mu.Unlock()
	if keys == nil {
		return body, nil
	}
	if isClient {
		return openLayer(keys.bwdEnc, keys.bwdMAC, body)
	}
	return openLayer(keys.fwdEnc, keys.fwdMAC, body)
}

// dispatch routes a fully unwrapped backward message.
func (c *circuit) dispatch(msg relayMsg) {
	if msg.Cmd == relayData {
		body, err := c.openE2E(msg.Body)
		if err != nil {
			return // tampered or foreign ciphertext: drop
		}
		msg.Body = body
	}
	switch msg.Cmd {
	case relayData, relayEnd, relayConnected:
		if msg.Stream != 0 {
			c.mu.Lock()
			s := c.streams[msg.Stream]
			c.mu.Unlock()
			if s != nil {
				s.push(msg)
				return
			}
		}
		// Stream 0 CONNECTED/END act as control messages.
		select {
		case c.control <- msg:
		default:
		}
	case relayBegin:
		// A BEGIN arriving backward opens a service-side stream; the
		// service's acceptor handles it via the control channel.
		select {
		case c.control <- msg:
		default:
		}
	case relayIntroduce2:
		select {
		case c.introduce2 <- msg:
		default:
		}
	default:
		select {
		case c.control <- msg:
		default:
		}
	}
}

// waitControl waits for a specific control reply on the circuit.
func (c *circuit) waitControl(want relayCommand) (relayMsg, error) {
	deadline := time.After(c.ep.net.controlDeadline())
	for {
		select {
		case msg := <-c.control:
			if msg.Cmd == want {
				return msg, nil
			}
			if msg.Cmd == relayEnd || msg.Cmd == relayTruncated {
				return relayMsg{}, fmt.Errorf("onion: circuit refused (%s while waiting for %s)", msg.Cmd, want)
			}
			// Unrelated control traffic: keep waiting.
		case <-deadline:
			return relayMsg{}, fmt.Errorf("onion: timeout waiting for %s", want)
		case <-c.ep.done:
			return relayMsg{}, errors.New("onion: endpoint stopped")
		}
	}
}

// teardown closes the circuit locally and tells the guard to destroy it.
func (c *circuit) teardown() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	guard := ""
	if len(c.hops) > 0 {
		guard = c.hops[0].relay
	}
	streams := make([]*Stream, 0, len(c.streams))
	for _, s := range c.streams {
		streams = append(streams, s)
	}
	c.mu.Unlock()
	for _, s := range streams {
		s.remoteClose()
	}
	if guard != "" {
		c.ep.net.send(guard, Cell{Circ: c.id, Cmd: CmdDestroy, From: c.ep.id})
	}
	c.ep.dropCircuit(c)
}

// remoteClose handles a DESTROY arriving from the network.
func (c *circuit) remoteClose() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	streams := make([]*Stream, 0, len(c.streams))
	for _, s := range c.streams {
		streams = append(streams, s)
	}
	c.mu.Unlock()
	for _, s := range streams {
		s.remoteClose()
	}
	c.ep.dropCircuit(c)
}

// allocStream registers a new stream with the next free ID.
func (c *circuit) allocStream() (*Stream, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("onion: circuit is closed")
	}
	id := c.nextStr
	c.nextStr++
	s := newStream(c, id)
	c.streams[id] = s
	return s, nil
}

// adoptStream registers a stream created by the remote side (service-side
// accept of a client-opened stream ID).
func (c *circuit) adoptStream(id uint16) (*Stream, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("onion: circuit is closed")
	}
	if _, ok := c.streams[id]; ok {
		return nil, fmt.Errorf("onion: stream %d already exists", id)
	}
	s := newStream(c, id)
	c.streams[id] = s
	return s, nil
}

func (c *circuit) removeStream(id uint16) {
	c.mu.Lock()
	delete(c.streams, id)
	c.mu.Unlock()
}
