// Package crawler implements the paper's data-collection procedure (§V)
// against a forum (plain HTTP or hidden service via internal/onion):
//
//	"First, we sign up in the forum and write a post in the Welcome or
//	Spam thread to calculate the offset between the server time (the one
//	on the post) and UTC. ... once the offset from UTC is known we can
//	collect the timestamps of the posts in a sound and consistent way."
//
// The crawler registers a probe account, posts in the Welcome thread,
// reads back its own post's displayed timestamp to learn the server-clock
// offset, then paginates every thread of every board extracting
// (author, displayed time) pairs and normalizing them to UTC. The output
// is a trace.Dataset ready for the geolocation pipeline; only author IDs
// and posting times are retained, as in the paper's ethics statement
// (§VIII).
//
// Collection against hidden services runs for weeks over a flaky fabric,
// so every HTTP exchange goes through a robustness layer: per-request
// timeouts, bounded exponential-backoff retries with jitter, a politeness
// rate limit, a capped body read, a per-thread failure budget, and
// optional checkpoints that let an interrupted crawl resume and still
// produce the dataset an uninterrupted crawl would have.
package crawler

import (
	"context"
	"errors"
	"fmt"
	"html"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"darkcrowd/internal/forum"
	"darkcrowd/internal/obs"
	"darkcrowd/internal/trace"
)

// ProbeAuthor is the account name the crawler registers for the clock
// probe; its posts are excluded from the scraped dataset. (That exclusion
// also makes the probe POST safe to retry: a duplicate probe reply is
// never collected.)
const ProbeAuthor = "tz-probe-account"

// ErrNoTimestamps is returned when the forum renders posts without
// timestamps (the §VII countermeasure); use Monitor instead of Scrape.
var ErrNoTimestamps = errors.New("crawler: forum hides post timestamps (use Monitor)")

// errBodyTooLarge marks a response body exceeding the read cap; it is
// not retried — a server page does not shrink on a second fetch.
var errBodyTooLarge = errors.New("crawler: response body exceeds size cap")

// Crawler scrapes one forum.
type Crawler struct {
	// HTTPClient performs the requests; wire its transport through an
	// onion client to scrape a hidden service. Defaults to
	// http.DefaultClient.
	HTTPClient *http.Client
	// BaseURL is the forum root, e.g. "http://crdclub4wraumez4.onion".
	BaseURL string
	// Clock supplies the crawler's own UTC time for the offset probe.
	// Defaults to time.Now.
	Clock func() time.Time

	// Timeout bounds each individual HTTP exchange (default
	// DefaultTimeout). A timed-out request counts as transient and is
	// retried under Retry.
	Timeout time.Duration
	// Retry bounds the per-request retry loop; the zero value uses the
	// defaults (see RetryPolicy).
	Retry RetryPolicy
	// MinInterval is the politeness gap between request starts (0
	// disables rate limiting). Retried attempts respect it too.
	MinInterval time.Duration
	// MaxBodyBytes caps how much of a response body is read (default
	// DefaultMaxBody).
	MaxBodyBytes int64
	// MaxFailures is how many threads may be skipped (recorded in
	// Result.Errors) before the crawl aborts. The default 0 keeps the
	// historical behavior: the first thread that fails all its retries
	// aborts the crawl.
	MaxFailures int
	// Sleep, when set, replaces the real pauses (backoff, politeness);
	// tests use it to run fault schedules without wall-clock delays.
	Sleep func(time.Duration)
	// Obs, when non-nil, receives crawl metrics (crawler.requests,
	// crawler.retries, backoff/politeness wait totals, checkpoint saves,
	// thread/page/post counts, the remaining failure budget), "crawl" and
	// "probe" stage spans, and per-thread progress events. Observation
	// only: the crawl behaves identically with or without it.
	Obs *obs.Observer

	retries atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand

	gateMu   sync.Mutex
	gateNext time.Time
}

// CrawlError records one thread the crawler gave up on after exhausting
// its retries.
type CrawlError struct {
	// Thread is the forum thread ID.
	Thread string `json:"thread"`
	// Page is the 0-based page the failure happened on.
	Page int `json:"page"`
	// Err is the final attempt's error.
	Err string `json:"err"`
}

// String renders the error for reports.
func (e CrawlError) String() string {
	return fmt.Sprintf("thread %s page %d: %s", e.Thread, e.Page, e.Err)
}

// Result is a completed scrape.
type Result struct {
	// Dataset holds the UTC-normalized (author, time) pairs.
	Dataset *trace.Dataset
	// ServerOffset is the measured server-clock offset from UTC.
	ServerOffset time.Duration
	// Boards, Threads and Pages count what was crawled; Threads and
	// Pages count only fully scraped threads.
	Boards, Threads, Pages int
	// Skipped counts threads abandoned after exhausting retries, and
	// Errors records why (the per-crawl error report).
	Skipped int
	Errors  []CrawlError
	// Retries is how many HTTP attempts beyond the first were needed.
	Retries int
	// Resumed reports whether the crawl continued from a checkpoint.
	Resumed bool
}

var (
	boardLinkRe  = regexp.MustCompile(`href="/board\?id=(\d+)"`)
	threadLinkRe = regexp.MustCompile(`href="/thread\?id=(\d+)"`)
	postRe       = regexp.MustCompile(`<div class="post" data-id="(\d+)" data-author="([^"]*)"(?: data-time="([^"]*)")?>`)
	pagesRe      = regexp.MustCompile(`data-pages="(\d+)"`)
)

func (c *Crawler) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Crawler) now() time.Time {
	if c.Clock != nil {
		return c.Clock().UTC()
	}
	return time.Now().UTC()
}

// pause sleeps for d, honoring the Sleep test hook and the context.
func (c *Crawler) pause(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if c.Sleep != nil {
		c.Sleep(d)
		return ctx.Err()
	}
	return sleepCtx(ctx, d)
}

// politeness enforces MinInterval between request starts. Slots are
// handed out under the gate lock, so concurrent callers queue fairly.
func (c *Crawler) politeness(ctx context.Context) error {
	if c.MinInterval <= 0 {
		return ctx.Err()
	}
	c.gateMu.Lock()
	now := time.Now()
	var wait time.Duration
	if now.Before(c.gateNext) {
		wait = c.gateNext.Sub(now)
	}
	c.gateNext = now.Add(wait + c.MinInterval)
	c.gateMu.Unlock()
	c.Obs.Counter("crawler.politeness_wait_ns").Add(int64(wait))
	return c.pause(ctx, wait)
}

// backoffDelay draws the jittered pause before the retry-th retry.
func (c *Crawler) backoffDelay(policy RetryPolicy, retry int) time.Duration {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(policy.Seed))
	}
	return policy.backoff(retry, c.rng)
}

// do performs one logical HTTP exchange with the full robustness layer:
// politeness gap, per-request timeout, and bounded retries on transient
// transport errors and retryable statuses (5xx/429). It returns the
// final status, body, and the URL the exchange ended on (after any
// redirects) so error reports name the page that actually failed.
func (c *Crawler) do(ctx context.Context, method, path string, form url.Values) (status int, body, finalURL string, err error) {
	policy := c.Retry.withDefaults()
	var lastErr error
	for attempt := 1; attempt <= policy.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return 0, "", "", err
		}
		if attempt > 1 {
			c.retries.Add(1)
			c.Obs.Counter("crawler.retries").Inc()
			delay := c.backoffDelay(policy, attempt-1)
			c.Obs.Counter("crawler.backoff_wait_ns").Add(int64(delay))
			if err := c.pause(ctx, delay); err != nil {
				return 0, "", "", err
			}
		}
		if err := c.politeness(ctx); err != nil {
			return 0, "", "", err
		}
		c.Obs.Counter("crawler.requests").Inc()
		st, b, fu, err := c.doOnce(ctx, method, path, form)
		if err != nil {
			if !transientError(err) {
				return 0, "", "", err
			}
			lastErr = err
			continue
		}
		if transientStatus(st) {
			lastErr = fmt.Errorf("crawler: %s %s: status %d", method, fu, st)
			continue
		}
		return st, b, fu, nil
	}
	return 0, "", "", fmt.Errorf("crawler: %s %s%s: giving up after %d attempts: %w",
		method, c.BaseURL, path, policy.MaxAttempts, lastErr)
}

// doOnce performs a single attempt under the per-request timeout.
// Retryable statuses return (status, "", finalURL, nil) without reading
// the body; the caller decides whether to retry.
func (c *Crawler) doOnce(ctx context.Context, method, path string, form url.Values) (int, string, string, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	var bodyReader io.Reader
	if form != nil {
		bodyReader = strings.NewReader(form.Encode())
	}
	req, err := http.NewRequestWithContext(rctx, method, c.BaseURL+path, bodyReader)
	if err != nil {
		return 0, "", "", fmt.Errorf("crawler: %s %s%s: %w", method, c.BaseURL, path, err)
	}
	if form != nil {
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return 0, "", "", fmt.Errorf("crawler: %s %s%s: %w", method, c.BaseURL, path, err)
	}
	defer resp.Body.Close()
	finalURL := req.URL.String()
	if resp.Request != nil && resp.Request.URL != nil {
		finalURL = resp.Request.URL.String()
	}
	// Status first: there is no point reading (and no safety in
	// trusting) the body of a failed exchange.
	if transientStatus(resp.StatusCode) {
		_, _ = io.CopyN(io.Discard, resp.Body, 4096)
		return resp.StatusCode, "", finalURL, nil
	}
	limit := c.MaxBodyBytes
	if limit <= 0 {
		limit = DefaultMaxBody
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, limit+1))
	if err != nil {
		return 0, "", "", fmt.Errorf("crawler: read %s: %w", finalURL, err)
	}
	if int64(len(data)) > limit {
		return 0, "", "", fmt.Errorf("crawler: %s: %w (limit %d bytes)", finalURL, errBodyTooLarge, limit)
	}
	return resp.StatusCode, string(data), finalURL, nil
}

// get fetches a page and returns its body.
func (c *Crawler) get(ctx context.Context, path string) (string, error) {
	status, body, finalURL, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return "", err
	}
	if status != http.StatusOK {
		return "", fmt.Errorf("crawler: GET %s: status %d", finalURL, status)
	}
	return body, nil
}

// MeasureOffset runs MeasureOffsetContext with a background context.
func (c *Crawler) MeasureOffset() (time.Duration, error) {
	return c.MeasureOffsetContext(context.Background())
}

// MeasureOffsetContext runs the Welcome-thread probe: register, post,
// read the displayed timestamp of our own post, and compare it to our
// clock. The offset is rounded to the nearest minute (network latency is
// well below that).
func (c *Crawler) MeasureOffsetContext(ctx context.Context) (time.Duration, error) {
	o := c.Obs.Stage("probe")
	defer o.End()
	return c.measureOffset(ctx, o)
}

// measureOffset is MeasureOffsetContext under a caller-owned stage span,
// so a probe run from inside a crawl nests under the "crawl" span.
func (c *Crawler) measureOffset(ctx context.Context, o *obs.Observer) (time.Duration, error) {
	// Registration may 409 if a previous probe ran; that is fine.
	status, _, finalURL, err := c.do(ctx, http.MethodPost, "/register", url.Values{"name": {ProbeAuthor}})
	if err != nil {
		return 0, fmt.Errorf("crawler: register probe: %w", err)
	}
	if status != http.StatusCreated && status != http.StatusConflict {
		return 0, fmt.Errorf("crawler: register probe at %s: status %d", finalURL, status)
	}

	welcomeThread, err := c.findWelcomeThread(ctx)
	if err != nil {
		return 0, err
	}
	sent := c.now()
	status, echo, finalURL, err := c.do(ctx, http.MethodPost, "/reply", url.Values{
		"thread": {strconv.Itoa(welcomeThread)},
		"author": {ProbeAuthor},
		"body":   {"hello from a new member"},
	})
	if err != nil {
		return 0, fmt.Errorf("crawler: probe post: %w", err)
	}
	if status != http.StatusCreated {
		return 0, fmt.Errorf("crawler: probe post at %s: status %d (%s)", finalURL, status, echo)
	}
	m := postRe.FindStringSubmatch(echo)
	if m == nil {
		return 0, errors.New("crawler: probe echo carries no post markup")
	}
	if m[3] == "" {
		return 0, ErrNoTimestamps
	}
	displayed, err := forum.ParseDisplayedTime(m[3])
	if err != nil {
		return 0, err
	}
	// Both timestamps are wall clocks; the difference is the server
	// offset plus network latency.
	delta := displayed.Sub(time.Date(sent.Year(), sent.Month(), sent.Day(),
		sent.Hour(), sent.Minute(), sent.Second(), 0, time.UTC))
	offset := delta.Round(time.Minute)
	if o.Enabled() {
		o.Eventf("probe", "server offset measured", "offset", offset.String())
	}
	return offset, nil
}

// findWelcomeThread locates the Welcome thread by scanning boards in
// order; the forum engine always places it on the first board.
func (c *Crawler) findWelcomeThread(ctx context.Context) (int, error) {
	index, err := c.get(ctx, "/")
	if err != nil {
		return 0, err
	}
	boards := boardLinkRe.FindAllStringSubmatch(index, -1)
	if len(boards) == 0 {
		return 0, errors.New("crawler: no boards found on index page")
	}
	for _, bm := range boards {
		page, err := c.get(ctx, "/board?id="+bm[1])
		if err != nil {
			return 0, err
		}
		// Look for the Welcome link: threads render as
		// <a href="/thread?id=N">Title</a>.
		for _, tm := range regexp.MustCompile(`href="/thread\?id=(\d+)">([^<]+)<`).FindAllStringSubmatch(page, -1) {
			if strings.EqualFold(html.UnescapeString(tm[2]), forum.WelcomeThreadTitle) {
				id, err := strconv.Atoi(tm[1])
				if err != nil {
					return 0, fmt.Errorf("crawler: bad thread id %q: %w", tm[1], err)
				}
				return id, nil
			}
		}
	}
	return 0, errors.New("crawler: Welcome thread not found")
}

// Scrape crawls the whole forum with a background context and no
// checkpointing.
func (c *Crawler) Scrape(datasetName string) (*Result, error) {
	return c.ScrapeContext(context.Background(), datasetName)
}

// ScrapeContext crawls the whole forum: offset probe first, then every
// page of every thread, normalizing displayed timestamps back to UTC.
func (c *Crawler) ScrapeContext(ctx context.Context, datasetName string) (*Result, error) {
	return c.ScrapeResumable(ctx, datasetName, CheckpointOptions{})
}

// ScrapeResumable is ScrapeContext plus crash recovery: with a
// checkpoint path configured, the crawl snapshots its progress (server
// offset, completed threads, partial dataset) after every opts.Every
// completed threads and before returning any fatal error, and a later
// call with the same path resumes where the previous crawl stopped. A
// resumed crawl does not re-probe the clock (the snapshot carries the
// measured offset) and re-walks the board index, skipping threads
// already collected — so as long as the forum content is stable, the
// resumed dataset is identical to an uninterrupted crawl's. The
// checkpoint file is removed once the crawl completes.
func (c *Crawler) ScrapeResumable(ctx context.Context, datasetName string, opts CheckpointOptions) (*Result, error) {
	if opts.Every <= 0 {
		opts.Every = 1
	}
	o := c.Obs.Stage("crawl")
	defer o.End()
	startRetries := c.retries.Load()
	res := &Result{Dataset: &trace.Dataset{Name: datasetName}}

	done := map[string]bool{}
	var doneOrder []string
	var ck *checkpoint
	if opts.Path != "" {
		var err error
		ck, err = loadCheckpoint(opts.Path, datasetName, c.BaseURL)
		if err != nil {
			return nil, err
		}
	}
	if ck != nil {
		res.Resumed = true
		res.ServerOffset = ck.ServerOffset
		res.Threads = ck.Threads
		res.Pages = ck.Pages
		// Skips recorded in the snapshot are deliberately NOT restored:
		// a thread not marked done gets a fresh retry budget on resume,
		// and its skip record is rebuilt only if it fails again.
		res.Dataset.Posts = append(res.Dataset.Posts, ck.Posts...)
		doneOrder = append(doneOrder, ck.DoneThreads...)
		for _, id := range ck.DoneThreads {
			done[id] = true
		}
		if o.Enabled() {
			o.Eventf("crawl", "resumed from checkpoint",
				"threads_done", len(ck.DoneThreads), "posts", len(ck.Posts))
		}
	} else {
		po := o.Stage("probe")
		offset, err := c.measureOffset(ctx, po)
		po.End()
		if err != nil {
			return nil, err
		}
		res.ServerOffset = offset
	}

	save := func() error {
		if opts.Path == "" {
			return nil
		}
		snap := &checkpoint{
			Version:      checkpointVersion,
			DatasetName:  datasetName,
			BaseURL:      c.BaseURL,
			ServerOffset: res.ServerOffset,
			DoneThreads:  doneOrder,
			Threads:      res.Threads,
			Pages:        res.Pages,
			Skipped:      res.Skipped,
			Errors:       res.Errors,
			Posts:        res.Dataset.Posts,
		}
		if err := snap.save(opts.Path); err != nil {
			return err
		}
		o.Counter("crawler.checkpoint_saves").Inc()
		return nil
	}
	// fatal checkpoints the progress so far, then surfaces the error.
	fatal := func(err error) (*Result, error) {
		if saveErr := save(); saveErr != nil {
			return nil, errors.Join(err, saveErr)
		}
		return nil, err
	}

	// Skips remaining before the budget is exhausted (one more skip at
	// zero aborts the crawl).
	budget := o.Gauge("crawler.failure_budget_remaining")
	budget.Set(int64(c.MaxFailures - res.Skipped))
	index, err := c.get(ctx, "/")
	if err != nil {
		return fatal(err)
	}
	sinceSave := 0
	seenThreads := map[string]bool{}
	for _, bm := range boardLinkRe.FindAllStringSubmatch(index, -1) {
		res.Boards++
		o.Counter("crawler.boards").Inc()
		boardPage, err := c.get(ctx, "/board?id="+bm[1])
		if err != nil {
			return fatal(err)
		}
		for _, tm := range threadLinkRe.FindAllStringSubmatch(boardPage, -1) {
			id := tm[1]
			if seenThreads[id] {
				continue
			}
			seenThreads[id] = true
			if done[id] {
				continue
			}
			posts, pages, err := c.scrapeThread(ctx, id, res.ServerOffset)
			if err != nil {
				// Cancellation and hidden timestamps are crawl-level
				// conditions, not a flaky thread.
				if ctx.Err() != nil || errors.Is(err, ErrNoTimestamps) {
					return fatal(err)
				}
				res.Skipped++
				res.Errors = append(res.Errors, CrawlError{Thread: id, Page: pages, Err: err.Error()})
				o.Counter("crawler.threads_skipped").Inc()
				budget.Set(int64(c.MaxFailures - res.Skipped))
				if o.Enabled() {
					o.Eventf("crawl", "thread skipped", "thread", id, "err", err.Error())
				}
				if res.Skipped > c.MaxFailures {
					return fatal(fmt.Errorf("crawler: failure budget exhausted (%d skipped, budget %d): %w",
						res.Skipped, c.MaxFailures, err))
				}
				continue
			}
			res.Threads++
			res.Pages += pages
			res.Dataset.Posts = append(res.Dataset.Posts, posts...)
			o.Counter("crawler.threads_scraped").Inc()
			o.Counter("crawler.pages").Add(int64(pages))
			o.Counter("crawler.posts_collected").Add(int64(len(posts)))
			o.AddItems(1)
			if o.Enabled() {
				o.Eventf("crawl", "thread done", "thread", id, "pages", pages, "posts", len(posts))
			}
			done[id] = true
			doneOrder = append(doneOrder, id)
			if sinceSave++; opts.Path != "" && sinceSave >= opts.Every {
				if err := save(); err != nil {
					return nil, err
				}
				sinceSave = 0
			}
		}
	}
	res.Retries = int(c.retries.Load() - startRetries)
	if opts.Path != "" {
		// The crawl is complete; the snapshot would only confuse the
		// next run.
		if err := os.Remove(opts.Path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("crawler: remove finished checkpoint: %w", err)
		}
	}
	return res, nil
}

// scrapeThread walks every page of one thread, returning the collected
// posts and how many pages were fetched. On error the page count is the
// 0-based page the failure happened on, and no posts are returned — a
// partially scraped thread is retried from scratch, never half-merged.
func (c *Crawler) scrapeThread(ctx context.Context, threadID string, offset time.Duration) ([]trace.Post, int, error) {
	var posts []trace.Post
	for page := 0; ; page++ {
		body, err := c.get(ctx, fmt.Sprintf("/thread?id=%s&page=%d", threadID, page))
		if err != nil {
			return nil, page, err
		}
		for _, pm := range postRe.FindAllStringSubmatch(body, -1) {
			author := html.UnescapeString(pm[2])
			if author == ProbeAuthor {
				continue
			}
			if pm[3] == "" {
				return nil, page, fmt.Errorf("crawler: thread %s page %d: %w", threadID, page, ErrNoTimestamps)
			}
			displayed, err := forum.ParseDisplayedTime(pm[3])
			if err != nil {
				return nil, page, fmt.Errorf("crawler: thread %s page %d: %w", threadID, page, err)
			}
			posts = append(posts, trace.Post{
				UserID: author,
				Time:   displayed.Add(-offset),
			})
		}
		m := pagesRe.FindStringSubmatch(body)
		if m == nil {
			return nil, page, fmt.Errorf("crawler: thread %s page %d: no page count", threadID, page)
		}
		total, err := strconv.Atoi(m[1])
		if err != nil {
			return nil, page, fmt.Errorf("crawler: bad page count %q: %w", m[1], err)
		}
		if page >= total-1 {
			return posts, page + 1, nil
		}
	}
}
