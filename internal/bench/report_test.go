package bench

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunMinOfRecordsWorkload(t *testing.T) {
	r := NewReport("test", 10, 7)
	var out bytes.Buffer
	m := r.RunMinOf(&out, "noop", 2, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = i * i
		}
	})
	if m.NsPerOp < 0 {
		t.Fatalf("ns/op = %d", m.NsPerOp)
	}
	if got, ok := r.Workloads["noop"]; !ok || got != m {
		t.Fatalf("workload not recorded: %+v", r.Workloads)
	}
	if !strings.Contains(out.String(), "noop") {
		t.Fatalf("summary line missing: %q", out.String())
	}
	if r.Tool != "test" || r.TwitterScale != 10 || r.Seed != 7 || r.GoVersion == "" {
		t.Fatalf("report header wrong: %+v", r)
	}
}

func TestDeriveBaselineAndRatio(t *testing.T) {
	r := NewReport("test", 0, 0)
	r.Workloads["fast"] = Metric{NsPerOp: 100, AllocsPerOp: 2}
	r.Workloads["slow"] = Metric{NsPerOp: 1000, AllocsPerOp: 20}
	r.DeriveBaseline(map[string]Metric{
		"fast":    {NsPerOp: 450, AllocsPerOp: 9},
		"missing": {NsPerOp: 1},
	})
	if got := r.SpeedupNs["fast"]; got != 4.5 {
		t.Errorf("speedup = %v, want 4.5", got)
	}
	if got := r.AllocRatio["fast"]; got != 4.5 {
		t.Errorf("alloc ratio = %v, want 4.5", got)
	}
	if _, ok := r.SpeedupNs["missing"]; ok {
		t.Error("speedup derived for workload absent from fresh run")
	}
	if got := r.Ratio("slow", "fast"); got != 10 {
		t.Errorf("ratio = %v, want 10", got)
	}
	if got := r.Ratio("fast", "absent"); got != 0 {
		t.Errorf("ratio vs absent = %v, want 0", got)
	}
}

func TestWriteLoadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	r := NewReport("roundtrip", 20, 42)
	r.Workloads["w"] = Metric{NsPerOp: 123, BytesPerOp: 4, AllocsPerOp: 1}
	r.Serve = &ServeResult{Workload: "mixed", Concurrent: 8, OpsPerSec: 999.5}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "roundtrip" || got.Workloads["w"].NsPerOp != 123 {
		t.Fatalf("roundtrip lost data: %+v", got)
	}
	if got.Serve == nil || got.Serve.OpsPerSec != 999.5 {
		t.Fatalf("serve section lost: %+v", got.Serve)
	}
}

func TestLoadMissingFile(t *testing.T) {
	r, err := Load(filepath.Join(t.TempDir(), "nope.json"))
	if r != nil || err != nil {
		t.Fatalf("missing file = (%v, %v), want (nil, nil)", r, err)
	}
}

func TestCheckRegression(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_gate.json")
	committed := NewReport("gate", 0, 0)
	committed.Workloads["w"] = Metric{NsPerOp: 100}
	if err := committed.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	// Within gate.
	if err := CheckRegression(&out, path, map[string]Metric{"w": {NsPerOp: 150}}, 2); err != nil {
		t.Errorf("within-gate check failed: %v", err)
	}
	// Beyond gate.
	if err := CheckRegression(&out, path, map[string]Metric{"w": {NsPerOp: 250}}, 2); err == nil {
		t.Error("2.5x regression passed a 2x gate")
	}
	// Missing committed file skips.
	if err := CheckRegression(&out, filepath.Join(t.TempDir(), "absent.json"), nil, 2); err != nil {
		t.Errorf("missing committed report should skip, got %v", err)
	}
}

func TestCheckFloors(t *testing.T) {
	ratios := map[string]float64{"a": 5.1, "b": 0.9}
	if err := CheckFloors(nil, ratios, map[string]float64{"a": 5}); err != nil {
		t.Errorf("met floor failed: %v", err)
	}
	if err := CheckFloors(nil, ratios, map[string]float64{"b": 1}); err == nil {
		t.Error("unmet floor passed")
	}
	if err := CheckFloors(nil, ratios, map[string]float64{"absent": 1}); err == nil {
		t.Error("absent ratio passed a floor")
	}
}

func TestCheckServe(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	committed := NewReport("serve", 0, 0)
	committed.Serve = &ServeResult{Workload: "mixed", OpsPerSec: 1000}
	if err := committed.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := CheckServe(&out, path, &ServeResult{OpsPerSec: 600}, 2); err != nil {
		t.Errorf("within-gate serve check failed: %v", err)
	}
	if err := CheckServe(&out, path, &ServeResult{OpsPerSec: 400}, 2); err == nil {
		t.Error("2.5x serve throughput drop passed a 2x gate")
	}
	if err := CheckServe(&out, filepath.Join(t.TempDir(), "absent.json"), &ServeResult{OpsPerSec: 1}, 2); err != nil {
		t.Errorf("missing committed serve report should skip, got %v", err)
	}
}

func TestRound2(t *testing.T) {
	if got := Round2(3.14159); got != 3.14 {
		t.Errorf("Round2(3.14159) = %v", got)
	}
	if got := Round2(2.005); got != 2.01 {
		t.Errorf("Round2(2.005) = %v", got)
	}
}
