// Package chaos is a seeded, deterministic fault-injection harness for
// the analysis pipeline — the analysis-side sibling of the crawl-side
// onion.FaultInjector. One injector carries a seeded fault plan across
// the pipeline's failure surfaces:
//
//   - worker panics inside a parallel stage (via a wrapped profile
//     cell hook);
//   - corrupt trace rows (via a trace-mangling transform);
//   - mid-stage context cancellation (via a poll-counting context);
//   - checkpoint-write I/O failures (via an atomicio fault hook).
//
// Determinism guarantee: the sequence of fault decisions is a pure
// function of the seed, the configured rates, and the order the
// pipeline consults the injector. Which shard a decision lands on may
// depend on scheduling, but the invariants the tests assert are
// scheduling-free: no output file is ever left partially written, and
// any run that eventually succeeds — including one resumed across
// injected crashes — produces output bit-identical to a fault-free run.
package chaos

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"darkcrowd/internal/atomicio"
	"darkcrowd/internal/core/profile"
)

// Config tunes an Injector. All probabilities are per opportunity: each
// profile cell evaluation, trace data row, checkpoint write step, or
// context poll draws one decision from the seeded plan.
type Config struct {
	// Seed drives the fault plan; same seed, same decision sequence.
	Seed int64
	// PanicProb is the probability that a profile cell evaluation panics,
	// killing that worker's shard mid-stage.
	PanicProb float64
	// CorruptProb is the probability that a trace data row is mangled by
	// Corrupt (bad timestamp, missing field, or bare-quote damage).
	CorruptProb float64
	// CheckpointFailProb is the probability that a checkpoint write step
	// fails with an injected I/O error.
	CheckpointFailProb float64
	// CancelEvery trips an injected context cancellation on every Nth
	// poll of a Context-wrapped context (0 disables cancellation).
	CancelEvery int
	// MaxFaults bounds the total number of injected faults; once spent
	// the pipeline runs fault-free, so a retry loop always converges.
	// 0 means unlimited.
	MaxFaults int
}

// Stats counts the faults an injector has fired.
type Stats struct {
	Panics, CorruptRows, CheckpointFails, Cancels int
}

// Total returns the number of injected faults of any kind.
func (s Stats) Total() int { return s.Panics + s.CorruptRows + s.CheckpointFails + s.Cancels }

func (s Stats) String() string {
	return fmt.Sprintf("%d faults (%d panics, %d corrupt rows, %d checkpoint fails, %d cancels)",
		s.Total(), s.Panics, s.CorruptRows, s.CheckpointFails, s.Cancels)
}

// Injector is a seeded fault plan for the analysis pipeline.
type Injector struct {
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	polls int
	stats Stats
}

// New creates an injector from a config.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns the counts of faults fired so far.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// decide draws one decision against prob, honoring the fault budget.
// count points at the stat to bump when the fault fires.
func (in *Injector) decide(prob float64, count *int) bool {
	if prob <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.cfg.MaxFaults > 0 && in.stats.Total() >= in.cfg.MaxFaults {
		return false
	}
	if in.rng.Float64() >= prob {
		return false
	}
	*count++
	return true
}

// Cells wraps a profile cell hook (nil = profile.UTCCells) so that cell
// evaluations panic per the fault plan — the injected stand-in for a bug
// or data-dependent crash inside a parallel worker. The surrounding
// stage must surface it as a typed *par.ShardPanicError, not die.
func (in *Injector) Cells(base profile.CellOf) profile.CellOf {
	if base == nil {
		base = profile.UTCCells()
	}
	return func(unixSec int64) (int, int64) {
		if in.decide(in.cfg.PanicProb, &in.stats.Panics) {
			panic(fmt.Sprintf("chaos: injected worker panic (seed %d)", in.cfg.Seed))
		}
		return base(unixSec)
	}
}

// Corrupt mangles trace CSV content row by row per the fault plan and
// returns the damaged copy plus the number of rows hit. The header is
// never touched (header damage is a fail-fast config error, not a
// quarantinable data fault), and every mangling poisons only its own
// row, rotating through a bad timestamp, a missing field, and
// bare-quote damage.
func (in *Injector) Corrupt(data []byte) ([]byte, int) {
	lines := strings.Split(string(data), "\n")
	hit := 0
	for i := 1; i < len(lines); i++ {
		if lines[i] == "" || !in.decide(in.cfg.CorruptProb, &in.stats.CorruptRows) {
			continue
		}
		switch hit % 3 {
		case 0:
			if user, _, ok := strings.Cut(lines[i], ","); ok {
				lines[i] = user + ",not-a-timestamp"
			} else {
				lines[i] = "not,a,valid,row"
			}
		case 1:
			lines[i] = strings.ReplaceAll(lines[i], ",", ";")
		case 2:
			lines[i] = strings.Replace(lines[i], ",", "\",", 1)
		}
		hit++
	}
	return []byte(strings.Join(lines, "\n")), hit
}

// Hook returns an atomicio fault hook that fails checkpoint write steps
// per the fault plan.
func (in *Injector) Hook() atomicio.Hook {
	return func(op, path string) error {
		if in.decide(in.cfg.CheckpointFailProb, &in.stats.CheckpointFails) {
			return fmt.Errorf("chaos: injected %s failure (seed %d)", op, in.cfg.Seed)
		}
		return nil
	}
}

// Context wraps parent so that Err polls trip an injected cancellation
// on every CancelEvery-th poll, budget permitting — the injected
// stand-in for an operator hitting Ctrl-C mid-stage. Each call starts a
// fresh poll count but draws from the same shared budget, so a retry
// loop eventually gets an uncancelled run.
func (in *Injector) Context(parent context.Context) context.Context {
	if parent == nil {
		parent = context.Background()
	}
	if in.cfg.CancelEvery <= 0 {
		return parent
	}
	return &chaosContext{Context: parent, in: in, done: make(chan struct{})}
}

type chaosContext struct {
	context.Context
	in   *Injector
	once sync.Once
	done chan struct{}
}

func (c *chaosContext) Done() <-chan struct{} { return c.done }

func (c *chaosContext) Err() error {
	select {
	case <-c.done:
		return context.Canceled
	default:
	}
	in := c.in
	in.mu.Lock()
	in.polls++
	trip := in.polls%in.cfg.CancelEvery == 0 &&
		(in.cfg.MaxFaults == 0 || in.stats.Total() < in.cfg.MaxFaults)
	if trip {
		in.stats.Cancels++
	}
	in.mu.Unlock()
	if trip {
		c.once.Do(func() { close(c.done) })
		return context.Canceled
	}
	return c.Context.Err()
}

// TempFiles returns the atomicio temp files left in dir — the invariant
// every test asserts is that there are none, whatever faults fired.
func TempFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var leftovers []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			leftovers = append(leftovers, filepath.Join(dir, e.Name()))
		}
	}
	return leftovers, nil
}

// SameBytes reports whether two files have identical content; a missing
// file is never identical to anything.
func SameBytes(a, b string) (bool, error) {
	da, err := os.ReadFile(a)
	if err != nil {
		return false, err
	}
	db, err := os.ReadFile(b)
	if err != nil {
		return false, err
	}
	return bytes.Equal(da, db), nil
}
