package geoloc

import (
	"testing"

	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

// hemisphereCrowd generates a small crowd in the region with enough yearly
// activity for seasonal profiles.
func hemisphereCrowd(t *testing.T, seed int64, code string, users int) *trace.Dataset {
	t.Helper()
	region, err := tz.ByCode(code)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.GenerateCrowd(seed, synth.CrowdConfig{
		Name:   "hemi-" + code,
		Groups: []synth.Group{{Region: region, Users: users, PostsPerUser: 4000}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func classifyAll(t *testing.T, ds *trace.Dataset) map[tz.Hemisphere]int {
	t.Helper()
	byUser := ds.ByUser()
	out := make(map[tz.Hemisphere]int)
	for _, posts := range byUser {
		verdict, err := ClassifyHemisphere(posts, HemisphereOptions{})
		if err != nil {
			t.Fatalf("classify: %v", err)
		}
		out[verdict.Hemisphere]++
	}
	return out
}

func TestHemisphereNorthernCountries(t *testing.T) {
	t.Parallel()
	// §V-F validation: UK, Germany, Italy users all classify as northern.
	for i, code := range []string{"uk", "de", "it"} {
		code := code
		t.Run(code, func(t *testing.T) {
			ds := hemisphereCrowd(t, int64(3000+i), code, 5)
			got := classifyAll(t, ds)
			if got[tz.HemisphereNorth] < 4 {
				t.Errorf("%s: %v, want >=4/5 northern", code, got)
			}
			if got[tz.HemisphereSouth] > 1 {
				t.Errorf("%s: %d users misclassified as southern", code, got[tz.HemisphereSouth])
			}
		})
	}
}

func TestHemisphereBrazilSouthern(t *testing.T) {
	t.Parallel()
	// §V-F validation: all 5 Brazilian users classify as southern.
	ds := hemisphereCrowd(t, 3100, "br", 5)
	got := classifyAll(t, ds)
	if got[tz.HemisphereSouth] < 4 {
		t.Errorf("Brazil: %v, want >=4/5 southern", got)
	}
	if got[tz.HemisphereNorth] > 1 {
		t.Errorf("Brazil: %d users misclassified as northern", got[tz.HemisphereNorth])
	}
}

func TestHemisphereNoDSTCountry(t *testing.T) {
	t.Parallel()
	// Japan keeps standard time all year: no DST evidence either way.
	ds := hemisphereCrowd(t, 3200, "jp", 5)
	got := classifyAll(t, ds)
	if got[tz.HemisphereNone] < 3 {
		t.Errorf("Japan: %v, want >=3/5 none", got)
	}
}

func TestClassifyHemisphereThinData(t *testing.T) {
	t.Parallel()
	ds := hemisphereCrowd(t, 3300, "de", 1)
	byUser := ds.ByUser()
	for _, posts := range byUser {
		// Keep only a handful of posts: classification must refuse.
		if _, err := ClassifyHemisphere(posts[:5], HemisphereOptions{}); err == nil {
			t.Error("thin data should fail")
		}
	}
}

func TestClassifyTopUsers(t *testing.T) {
	t.Parallel()
	ds := hemisphereCrowd(t, 3400, "br", 8)
	verdicts, err := ClassifyTopUsers(ds, 5, HemisphereOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != 5 {
		t.Fatalf("%d verdicts, want 5", len(verdicts))
	}
	south := 0
	for _, v := range verdicts {
		if v == nil {
			continue
		}
		if v.Hemisphere == tz.HemisphereSouth {
			south++
		}
	}
	if south < 4 {
		t.Errorf("top Brazilian users: %d/5 southern, want >=4", south)
	}
	if _, err := ClassifyTopUsers(&trace.Dataset{Name: "empty"}, 5, HemisphereOptions{}); err == nil {
		t.Error("empty dataset should fail")
	}
}

func TestHemisphereVerdictDistances(t *testing.T) {
	t.Parallel()
	ds := hemisphereCrowd(t, 3500, "de", 1)
	for _, posts := range ds.ByUser() {
		v, err := ClassifyHemisphere(posts, HemisphereOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if v.OctMarPosts == 0 || v.MarOctPosts == 0 {
			t.Error("seasonal post counts not populated")
		}
		if v.DistanceForward >= v.DistanceBackward {
			t.Errorf("German user: forward distance %g should beat backward %g",
				v.DistanceForward, v.DistanceBackward)
		}
	}
}
