package tz

import (
	"testing"
	"testing/quick"
	"time"
)

func TestOffsetNormalize(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name string
		in   Offset
		want Offset
	}{
		{"zero", 0, 0},
		{"in range positive", 5, 5},
		{"in range negative", -7, -7},
		{"max", 12, 12},
		{"min", -11, -11},
		{"wrap high", 13, -11},
		{"wrap low", -12, 12},
		{"wrap full circle", 24, 0},
		{"wrap negative full circle", -24, 0},
		{"wrap far", 37, -11},
		{"wrap far negative", -36, 12},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.in.Normalize(); got != tt.want {
				t.Errorf("Offset(%d).Normalize() = %d, want %d", tt.in, got, tt.want)
			}
		})
	}
}

func TestOffsetNormalizeProperties(t *testing.T) {
	t.Parallel()
	inRange := func(o int16) bool {
		n := Offset(o).Normalize()
		return n >= MinOffset && n <= MaxOffset
	}
	if err := quick.Check(inRange, nil); err != nil {
		t.Errorf("normalized offset out of range: %v", err)
	}
	congruent := func(o int16) bool {
		n := Offset(o).Normalize()
		diff := int(Offset(o)) - int(n)
		return diff%HoursPerDay == 0
	}
	if err := quick.Check(congruent, nil); err != nil {
		t.Errorf("normalization not congruent mod 24: %v", err)
	}
}

func TestOffsetString(t *testing.T) {
	t.Parallel()
	tests := []struct {
		in   Offset
		want string
	}{
		{0, "UTC"},
		{1, "UTC+1"},
		{12, "UTC+12"},
		{-6, "UTC-6"},
		{-11, "UTC-11"},
		{13, "UTC-11"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("Offset(%d).String() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestCircularDistance(t *testing.T) {
	t.Parallel()
	tests := []struct {
		a, b Offset
		want int
	}{
		{0, 0, 0},
		{1, 2, 1},
		{-11, 12, 1},
		{12, -11, 1},
		{0, 12, 12},
		{-6, 6, 12},
		{-3, 4, 7},
		{8, -7, 9},
	}
	for _, tt := range tests {
		if got := tt.a.CircularDistance(tt.b); got != tt.want {
			t.Errorf("CircularDistance(%v, %v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.CircularDistance(tt.a); got != tt.want {
			t.Errorf("CircularDistance(%v, %v) = %d, want %d (symmetry)", tt.b, tt.a, got, tt.want)
		}
	}
}

func TestCircularDistanceProperties(t *testing.T) {
	t.Parallel()
	bounded := func(a, b int16) bool {
		d := Offset(a).CircularDistance(Offset(b))
		return d >= 0 && d <= 12
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Errorf("circular distance out of [0,12]: %v", err)
	}
	identity := func(a int16) bool {
		return Offset(a).CircularDistance(Offset(a)) == 0
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("d(a,a) != 0: %v", err)
	}
}

func TestAllOffsets(t *testing.T) {
	t.Parallel()
	all := AllOffsets()
	if len(all) != HoursPerDay {
		t.Fatalf("AllOffsets() has %d entries, want %d", len(all), HoursPerDay)
	}
	seen := make(map[Offset]bool)
	for _, o := range all {
		if o != o.Normalize() {
			t.Errorf("offset %d not normalized", o)
		}
		if seen[o] {
			t.Errorf("duplicate offset %d", o)
		}
		seen[o] = true
	}
}

func TestNthSunday(t *testing.T) {
	t.Parallel()
	tests := []struct {
		year  int
		month time.Month
		n     int
		want  string
	}{
		// 2017 calendar facts.
		{2017, time.March, -1, "2017-03-26"},   // EU DST start 2017
		{2017, time.October, -1, "2017-10-29"}, // EU DST end 2017
		{2017, time.October, 1, "2017-10-01"},
		{2017, time.February, 3, "2017-02-19"},
		{2016, time.March, -1, "2016-03-27"},
		{2018, time.March, -1, "2018-03-25"},
	}
	for _, tt := range tests {
		got := nthSunday(tt.year, tt.month, tt.n)
		if got.Format("2006-01-02") != tt.want {
			t.Errorf("nthSunday(%d, %v, %d) = %s, want %s",
				tt.year, tt.month, tt.n, got.Format("2006-01-02"), tt.want)
		}
		if got.Weekday() != time.Sunday {
			t.Errorf("nthSunday(%d, %v, %d) is a %v", tt.year, tt.month, tt.n, got.Weekday())
		}
	}
}

func TestNorthernDSTWindow(t *testing.T) {
	t.Parallel()
	de, err := ByCode("de")
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		instant string
		inDST   bool
		offset  Offset
	}{
		{"2017-01-15T12:00:00Z", false, 1},
		{"2017-03-25T12:00:00Z", false, 1}, // day before last Sunday of March
		{"2017-03-26T12:00:00Z", true, 2},  // DST starts
		{"2017-07-01T12:00:00Z", true, 2},
		{"2017-10-28T12:00:00Z", true, 2},
		{"2017-10-29T12:00:00Z", false, 1}, // DST ends
		{"2017-12-25T12:00:00Z", false, 1},
	}
	for _, tt := range tests {
		instant, err := time.Parse(time.RFC3339, tt.instant)
		if err != nil {
			t.Fatal(err)
		}
		if got := de.DST.InEffect(instant, de.StandardOffset); got != tt.inDST {
			t.Errorf("Germany DST at %s = %v, want %v", tt.instant, got, tt.inDST)
		}
		if got := de.OffsetAt(instant); got != tt.offset {
			t.Errorf("Germany offset at %s = %v, want %v", tt.instant, got, tt.offset)
		}
	}
}

func TestSouthernDSTWindow(t *testing.T) {
	t.Parallel()
	br, err := ByCode("br")
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		instant string
		inDST   bool
	}{
		{"2017-01-15T12:00:00Z", true},  // southern summer
		{"2017-06-15T12:00:00Z", false}, // southern winter
		{"2017-09-30T12:00:00Z", false},
		{"2017-10-02T12:00:00Z", true}, // after first Sunday of October
		{"2017-12-25T12:00:00Z", true},
		{"2018-02-19T12:00:00Z", false}, // after third Sunday of February
	}
	for _, tt := range tests {
		instant, err := time.Parse(time.RFC3339, tt.instant)
		if err != nil {
			t.Fatal(err)
		}
		if got := br.DST.InEffect(instant, br.StandardOffset); got != tt.inDST {
			t.Errorf("Brazil DST at %s = %v, want %v", tt.instant, got, tt.inDST)
		}
	}
}

func TestNoDSTRegions(t *testing.T) {
	t.Parallel()
	for _, code := range []string{"jp", "my", "tr", "ru-msk", "ae"} {
		r, err := ByCode(code)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []time.Month{time.January, time.April, time.July, time.November} {
			instant := time.Date(2017, m, 15, 12, 0, 0, 0, time.UTC)
			if r.OffsetAt(instant) != r.StandardOffset {
				t.Errorf("%s offset in %v = %v, want standard %v",
					r.Name, m, r.OffsetAt(instant), r.StandardOffset)
			}
		}
		if r.Hemisphere() != HemisphereNone {
			t.Errorf("%s hemisphere = %v, want none", r.Name, r.Hemisphere())
		}
	}
}

func TestLocalHour(t *testing.T) {
	t.Parallel()
	jp, err := ByCode("jp")
	if err != nil {
		t.Fatal(err)
	}
	instant := time.Date(2017, time.June, 1, 20, 0, 0, 0, time.UTC)
	if got := jp.LocalHour(instant); got != 5 {
		t.Errorf("Japan local hour at 20:00 UTC = %d, want 5", got)
	}
	de, err := ByCode("de")
	if err != nil {
		t.Fatal(err)
	}
	// June: Germany in DST, UTC+2.
	if got := de.LocalHour(instant); got != 22 {
		t.Errorf("Germany local hour at 20:00 UTC in June = %d, want 22", got)
	}
}

func TestHolidayWindow(t *testing.T) {
	t.Parallel()
	w := HolidayWindow{StartMonth: time.December, StartDay: 20, EndMonth: time.January, EndDay: 6}
	tests := []struct {
		month time.Month
		day   int
		want  bool
	}{
		{time.December, 19, false},
		{time.December, 20, true},
		{time.December, 31, true},
		{time.January, 1, true},
		{time.January, 6, true},
		{time.January, 7, false},
		{time.July, 15, false},
	}
	for _, tt := range tests {
		if got := w.Contains(tt.month, tt.day); got != tt.want {
			t.Errorf("Contains(%v, %d) = %v, want %v", tt.month, tt.day, got, tt.want)
		}
	}

	nonWrap := HolidayWindow{StartMonth: time.August, StartDay: 1, EndMonth: time.August, EndDay: 15}
	if !nonWrap.Contains(time.August, 10) {
		t.Error("non-wrapping window should contain Aug 10")
	}
	if nonWrap.Contains(time.July, 31) || nonWrap.Contains(time.August, 16) {
		t.Error("non-wrapping window boundaries leak")
	}
}

func TestRegionIsHoliday(t *testing.T) {
	t.Parallel()
	de, err := ByCode("de")
	if err != nil {
		t.Fatal(err)
	}
	if !de.IsHoliday(time.Date(2017, time.December, 25, 12, 0, 0, 0, time.UTC)) {
		t.Error("Dec 25 should be a German holiday")
	}
	if de.IsHoliday(time.Date(2017, time.May, 10, 12, 0, 0, 0, time.UTC)) {
		t.Error("May 10 should not be a German holiday")
	}
}

func TestCatalogueIntegrity(t *testing.T) {
	t.Parallel()
	cat := Catalogue()
	if len(cat) == 0 {
		t.Fatal("empty catalogue")
	}
	codes := make(map[string]bool)
	for _, r := range cat {
		if r.Name == "" || r.Code == "" {
			t.Errorf("region with empty name/code: %+v", r)
		}
		if codes[r.Code] {
			t.Errorf("duplicate code %q", r.Code)
		}
		codes[r.Code] = true
		if r.StandardOffset != r.StandardOffset.Normalize() {
			t.Errorf("%s: non-normalized standard offset %d", r.Name, r.StandardOffset)
		}
		if r.DST.Observed && r.DST.Hemisphere == HemisphereNone {
			t.Errorf("%s: observes DST but has no hemisphere", r.Name)
		}
	}
}

func TestTableIRegions(t *testing.T) {
	t.Parallel()
	regions := TableIRegions()
	if len(regions) != 14 {
		t.Fatalf("TableIRegions() has %d entries, want 14", len(regions))
	}
	wantOffsets := map[string]Offset{
		"Brazil": -3, "California": -8, "Finland": 2, "France": 1,
		"Germany": 1, "Illinois": -6, "Italy": 1, "Japan": 9,
		"Malaysia": 8, "New South Wales": 10, "New York": -5,
		"Poland": 1, "Turkey": 3, "United Kingdom": 0,
	}
	for _, r := range regions {
		want, ok := wantOffsets[r.Name]
		if !ok {
			t.Errorf("unexpected region %q", r.Name)
			continue
		}
		if r.StandardOffset != want {
			t.Errorf("%s standard offset = %d, want %d", r.Name, r.StandardOffset, want)
		}
	}
}

func TestByCodeAndByName(t *testing.T) {
	t.Parallel()
	if _, err := ByCode("nope"); err == nil {
		t.Error("ByCode(nope) should fail")
	}
	if _, err := ByName("Atlantis"); err == nil {
		t.Error("ByName(Atlantis) should fail")
	}
	r, err := ByName("Malaysia")
	if err != nil {
		t.Fatalf("ByName(Malaysia): %v", err)
	}
	if r.Code != "my" {
		t.Errorf("Malaysia code = %q, want my", r.Code)
	}
}

func TestHemisphereString(t *testing.T) {
	t.Parallel()
	if HemisphereNorth.String() != "north" || HemisphereSouth.String() != "south" || HemisphereNone.String() != "none" {
		t.Error("hemisphere strings wrong")
	}
	if Hemisphere(42).String() != "Hemisphere(42)" {
		t.Errorf("unknown hemisphere string = %q", Hemisphere(42).String())
	}
}
