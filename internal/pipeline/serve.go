// The streaming half of the pipeline: a long-running geolocation daemon.
// The batch path (Geolocate) is load → profile → place → fit over a frozen
// trace; Daemon runs the same deterministic stages continuously over a
// live post stream. The state split mirrors the storage design: an
// immutable columnar base (trace.ShardedHead's compacted Dataset,
// checkpointed to a .dcs snapshot) under small mutable ingest tails, with
// incremental integer cell counts (profile.Accumulator) and a
// version-keyed zone cache (geoloc.PlaceUsersPartial) keeping per-post
// work O(changed state) instead of O(corpus).
//
// Concurrency design (DESIGN.md §4i): the hot path is shard → fold →
// atomic view swap. Mutable per-user state (accumulator cells, zone
// cache) is split into user-hash shards colocated with the head's tail
// shards, so two ingest requests contend only when they touch the same
// shard; stream totals (generation, users, rejected lines) are plain
// atomics. Reads never take a write lock: /healthz and the /report fast
// path load an immutable view behind an atomic pointer that the refitter
// swaps wholesale, and /place touches exactly one shard mutex.
// Compaction folds the shard tails off the request path (shard locks held
// only to swap each tail out) and checkpoints the swapped-out immutable
// dataset with no daemon lock held at all.
//
// Consistency model: every accepted post bumps a generation counter; a
// report is the pure deterministic function of the post multiset at some
// generation. /report recomputes when the published view is stale, so a
// drained daemon answers with exactly the report a batch run over the same
// posts would print — bit-identical, any ingest interleaving and any shard
// count (the accumulator's integer cell counts are order-independent, the
// sharded head folds in global arrival order, and polish, placement and
// the EM fit are deterministic functions of them).

package pipeline

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"darkcrowd/internal/atomicio"
	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/obs"
	"darkcrowd/internal/trace"
)

// ErrNoCrowd is returned by Report (and surfaced as 503 on /report) while
// no user has reached the active-profile threshold yet.
var ErrNoCrowd = errors.New("pipeline: no active users to geolocate yet")

// ErrLineTooLong aborts an ingest request whose NDJSON line exceeds
// maxIngestLine; surfaced as 413 on /ingest.
var ErrLineTooLong = errors.New("pipeline: ingest line too long")

// ErrBadLineBudget aborts an ingest request with more malformed lines
// than ServeConfig.MaxBadLines; surfaced as 400 on /ingest.
var ErrBadLineBudget = errors.New("pipeline: too many malformed ingest lines")

// DefaultCompactEvery is the ingest-tail size that triggers compaction
// into the immutable base (and a snapshot write when configured).
const DefaultCompactEvery = 1 << 16

// DefaultRefitDebounce is the quiet period after the last ingest before
// the background refitter recomputes the report cache.
const DefaultRefitDebounce = 500 * time.Millisecond

// DefaultMaxBadLines is the per-request malformed-line budget: lenient
// enough for real quarantine-grade feeds, small enough that a garbage
// stream fails fast instead of being scanned to the end.
const DefaultMaxBadLines = 4096

// maxIngestLine bounds one NDJSON line; longer lines abort the request.
const maxIngestLine = 1 << 20

// ServeConfig parameterizes a streaming geolocation daemon.
type ServeConfig struct {
	// Reference supplies the generic reference profile, exactly as in
	// Config.Reference. Required; it runs once, synchronously, in NewDaemon.
	Reference func() (*profile.GenericResult, error)
	// MinPosts is the active-user threshold (0: profile.DefaultMinPosts).
	MinPosts int
	// SkipPolish disables flat-profile removal at report time.
	SkipPolish bool
	// MaxComponents bounds the GMM model search (0: the geoloc default).
	MaxComponents int
	// Workers sets the EM fit parallelism (0 = all cores). Reports are
	// bit-identical for every setting.
	Workers int
	// Shards sets the ingest shard count (0: trace.DefaultHeadShards;
	// rounded up to a power of two). Reports are bit-identical for every
	// setting; more shards means less contention between concurrent
	// ingest requests.
	Shards int
	// SnapshotPath, when non-empty, checkpoints the compacted trace to
	// this .dcs file (atomically, after each compaction and on Close) and
	// warm-starts from it on boot.
	SnapshotPath string
	// CompactEvery folds the mutable ingest tails into the immutable base
	// once they hold this many posts (0: DefaultCompactEvery).
	CompactEvery int
	// MaxBadLines bounds malformed lines per ingest request before the
	// request is aborted with ErrBadLineBudget (0: DefaultMaxBadLines;
	// negative: unlimited).
	MaxBadLines int
	// RefitDebounce is the quiet period before the background refitter
	// refreshes the report cache (0: DefaultRefitDebounce; negative:
	// background refits off — /report still recomputes on demand).
	RefitDebounce time.Duration
	// Obs, when non-nil, receives serve.* counters/gauges, per-endpoint
	// http.*.ns latency histograms, and the stage spans of every refit.
	// Observation only.
	Obs *obs.Observer
}

// ServeReport is the daemon's crowd report: the batch Geolocation plus
// stream bookkeeping. Geo is bit-identical to what a batch Geolocate run
// over the same posts would produce.
type ServeReport struct {
	// Gen is the ingest generation the report was computed at (the number
	// of accepted posts, including warm-started ones).
	Gen uint64 `json:"gen"`
	// Posts and Users count the whole stream, active or not.
	Posts int `json:"posts"`
	Users int `json:"users"`
	// ActiveUsers counts the profiles that reached placement (post
	// threshold, minus polish removals).
	ActiveUsers int `json:"active_users"`
	// PolishRemoved counts flat profiles dropped at report time.
	PolishRemoved int `json:"polish_removed"`
	// Geo is the geolocation: placement, mixture, components, metrics.
	Geo *geoloc.Geolocation `json:"geo"`
}

// zoneEntry is one cached per-user placement, valid while the user's
// profile version still matches. margin is the placement margin computed by
// the same kernel call that picked the zone, so /place serves both from one
// cache hit.
type zoneEntry struct {
	zone   int
	margin float64
	ver    uint64
}

// daemonShard is one user-hash shard of the daemon's mutable read-side
// state, colocated with the head's tail shard for the same users. Padded
// so neighbouring shards' locks don't share a cache line.
type daemonShard struct {
	mu    sync.Mutex
	acc   *profile.Accumulator
	zones map[string]zoneEntry
	_     [40]byte // mutex+2 pointers = 24 bytes; pad to a 64-byte line
}

// reportView is the immutable published report state: swapped wholesale
// behind Daemon.view, never mutated after publication, so readers load it
// with one atomic pointer read and no lock.
type reportView struct {
	rep    *ServeReport
	fitted uint64 // generation rep was computed at
}

// Daemon is a streaming geolocation service over an NDJSON post stream.
// Construct with NewDaemon, expose Handler over HTTP, Close to flush.
type Daemon struct {
	cfg     ServeConfig
	generic profile.Profile
	o       *obs.Observer
	start   time.Time

	// head holds the post log: immutable compacted base plus per-shard
	// mutable tails. shards holds the matching per-user read state —
	// shards[head.ShardOf(user)] owns user's accumulator cells and cached
	// zone, so ingest and /place lock exactly one shard.
	head   *trace.ShardedHead
	shards []daemonShard

	// Stream totals, all lock-free. gen counts accepted posts (including
	// warm-started ones) and doubles as the post total: the two are equal
	// by construction.
	gen     atomic.Uint64
	users   atomic.Int64
	rejects atomic.Uint64

	// view is the published report (nil until the first successful fit).
	// Readers only Load; refit Stores a fresh immutable reportView.
	view atomic.Pointer[reportView]

	// fitMu serializes report computation, snapMu snapshot writes, and
	// compactMu the fold trigger (TryLock, so at most one ingest request
	// pays for a compaction while the rest stream on). None are ever held
	// while another of the three is taken.
	fitMu     sync.Mutex
	snapMu    sync.Mutex
	compactMu sync.Mutex

	// Instruments resolved once at construction (all nil-safe no-ops when
	// observability is off).
	cPosts, cRejects, cCompact *obs.Counter
	cRefits, cRefitsBg         *obs.Counter
	cFresh, cCached            *obs.Counter
	cSnapLoads, cSnapWrites    *obs.Counter
	gPosts, gUsers             *obs.Gauge
	latIngest, latPlace        *obs.LatencyHist
	latReport, latHealthz      *obs.LatencyHist

	kick      chan struct{}
	stop      context.CancelFunc
	refitDone chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// NewDaemon builds the reference profile, warm-starts from
// cfg.SnapshotPath when the file exists, and starts the background
// refitter. The returned daemon is ready to serve; Close releases it.
func NewDaemon(cfg ServeConfig) (*Daemon, error) {
	if cfg.Reference == nil {
		return nil, errors.New("pipeline: ServeConfig.Reference is required")
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = DefaultCompactEvery
	}
	if cfg.RefitDebounce == 0 {
		cfg.RefitDebounce = DefaultRefitDebounce
	}
	if cfg.MaxBadLines == 0 {
		cfg.MaxBadLines = DefaultMaxBadLines
	}
	gen, err := cfg.Reference()
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:     cfg,
		generic: gen.Generic,
		o:       cfg.Obs,
		start:   time.Now(),
		kick:    make(chan struct{}, 1),
	}
	d.cPosts = d.o.Counter("serve.posts_ingested")
	d.cRejects = d.o.Counter("serve.lines_rejected")
	d.cCompact = d.o.Counter("serve.compactions")
	d.cRefits = d.o.Counter("serve.refits")
	d.cRefitsBg = d.o.Counter("serve.refits_background")
	d.cFresh = d.o.Counter("serve.placements_fresh")
	d.cCached = d.o.Counter("serve.placements_cached")
	d.cSnapLoads = d.o.Counter("serve.snapshot_loads")
	d.cSnapWrites = d.o.Counter("serve.snapshot_writes")
	d.gPosts = d.o.Gauge("serve.posts")
	d.gUsers = d.o.Gauge("serve.users")
	d.latIngest = d.o.Latency("http.ingest.ns")
	d.latPlace = d.o.Latency("http.place.ns")
	d.latReport = d.o.Latency("http.report.ns")
	d.latHealthz = d.o.Latency("http.healthz.ns")

	var base *trace.Dataset
	if cfg.SnapshotPath != "" {
		data, err := os.ReadFile(cfg.SnapshotPath)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// First boot: nothing to warm-start from.
		case err != nil:
			return nil, fmt.Errorf("pipeline: open snapshot: %w", err)
		default:
			base, err = trace.ReadSnapshotBytes(data)
			if err != nil {
				return nil, fmt.Errorf("pipeline: load snapshot %s: %w (delete it to start empty)", cfg.SnapshotPath, err)
			}
			d.cSnapLoads.Add(1)
			d.o.Eventf("serve", "warm-started from snapshot", "posts", len(base.Posts))
		}
	}
	d.head = trace.NewShardedHead("serve", base, cfg.Shards)
	d.shards = make([]daemonShard, d.head.NumShards())
	for i := range d.shards {
		d.shards[i].acc = profile.NewAccumulator(cfg.MinPosts)
		d.shards[i].zones = make(map[string]zoneEntry)
	}
	if base != nil {
		for i := range base.Posts {
			id := base.Posts[i].UserID
			d.shards[d.head.ShardOfString(id)].acc.Add(id, base.Posts[i].Time.Unix())
		}
		users := 0
		for i := range d.shards {
			users += d.shards[i].acc.NumUsers()
		}
		d.gen.Store(uint64(len(base.Posts)))
		d.users.Store(int64(users))
	}
	ctx, cancel := context.WithCancel(context.Background())
	d.stop = cancel
	d.refitDone = make(chan struct{})
	if cfg.RefitDebounce > 0 {
		go d.refitLoop(ctx)
	} else {
		close(d.refitDone)
	}
	return d, nil
}

// Close stops the background refitter and, when a snapshot path is
// configured, compacts and writes a final snapshot. Idempotent.
func (d *Daemon) Close() error {
	d.closeOnce.Do(func() {
		d.stop()
		<-d.refitDone
		if d.cfg.SnapshotPath != "" {
			d.compactMu.Lock()
			ds := d.head.Compact()
			d.compactMu.Unlock()
			d.closeErr = d.writeSnapshot(ds)
		}
	})
	return d.closeErr
}

// refitLoop keeps the report cache warm: each ingest kicks it, it waits
// for the stream to go quiet for RefitDebounce, then refits once. Errors
// (e.g. no active users yet) are ignored — /report recomputes on demand.
func (d *Daemon) refitLoop(ctx context.Context) {
	defer close(d.refitDone)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-d.kick:
		}
		timer.Reset(d.cfg.RefitDebounce)
	debounce:
		for {
			select {
			case <-ctx.Done():
				timer.Stop()
				return
			case <-d.kick:
				timer.Reset(d.cfg.RefitDebounce)
			case <-timer.C:
				break debounce
			}
		}
		if _, err := d.Report(); err == nil {
			d.cRefitsBg.Add(1)
		}
	}
}

// ingestPost is one NDJSON ingest line — the JSON shape of trace.Post.
// It is the slow-lane decode target; parseIngestLine covers the plain
// shape without reflection.
type ingestPost struct {
	UserID string    `json:"user_id"`
	Time   time.Time `json:"time"`
}

// IngestResult summarizes one ingest request.
type IngestResult struct {
	// Accepted counts posts applied to the stream state.
	Accepted int `json:"accepted"`
	// Rejected counts malformed lines skipped (lenient, like the CSV
	// quarantine path); FirstError carries the first parse failure.
	Rejected   int    `json:"rejected"`
	FirstError string `json:"first_error,omitempty"`
	// Posts, Users and Gen are *daemon-wide* stream totals observed at the
	// moment this request completed — they include posts applied by other
	// requests running concurrently, not just this request's Accepted. The
	// pair is snapshotted consistently: Users is read before Gen, and apply
	// advances gen before users, so Users never counts a user whose first
	// post isn't already included in Posts (Users <= Posts always holds).
	Posts int    `json:"posts"`
	Users int    `json:"users"`
	Gen   uint64 `json:"gen"`
}

// Ingest consumes an NDJSON stream — one {"user_id":..., "time":...}
// object per line, the JSON shape of trace.Post — and applies it to the
// stream state. Malformed lines are counted and skipped up to the
// MaxBadLines budget; a head capacity error (trace.LimitError), an
// oversized line (ErrLineTooLong) or a blown budget (ErrBadLineBudget)
// aborts the request with the already-applied posts kept. Sub-second
// timestamp precision is dropped, matching the columnar store's
// epoch-seconds column.
//
// Each accepted post locks only the user's shard (head tail + accumulator
// cells), so concurrent requests for disjoint users stream in parallel.
func (d *Daemon) Ingest(r io.Reader) (IngestResult, error) {
	var res IngestResult
	defer d.finishIngest(&res)
	sc := bufio.NewScanner(r)
	buf := lineBufPool.Get().(*[]byte)
	defer lineBufPool.Put(buf)
	sc.Buffer((*buf)[:0], maxIngestLine)
	for sc.Scan() {
		// Full trim, not just leading: CRLF-terminated lines (curl on
		// Windows, proxy rewrites) reach the scanner with a trailing \r
		// when the stream mixes \r\n into a line the scanner split on \n.
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		user, sec, ok := parseIngestLine(line)
		if !ok {
			// Slow lane: full JSON decode for lines the plain scanner
			// refuses (escapes, reordered whitespace, garbage).
			var p ingestPost
			if err := json.Unmarshal(line, &p); err != nil || p.UserID == "" || p.Time.IsZero() {
				res.Rejected++
				if res.FirstError == "" {
					res.FirstError = fmt.Sprintf("bad line %d: want {\"user_id\":string,\"time\":RFC3339}", res.Accepted+res.Rejected)
				}
				if d.cfg.MaxBadLines > 0 && res.Rejected > d.cfg.MaxBadLines {
					return res, fmt.Errorf("%w: %d malformed lines (budget %d)", ErrBadLineBudget, res.Rejected, d.cfg.MaxBadLines)
				}
				continue
			}
			user, sec = []byte(p.UserID), p.Time.Unix()
		}
		if err := d.apply(user, sec); err != nil {
			return res, err
		}
		res.Accepted++
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return res, fmt.Errorf("%w: line exceeds %d bytes", ErrLineTooLong, maxIngestLine)
		}
		return res, fmt.Errorf("pipeline: read ingest body: %w", err)
	}
	return res, nil
}

// apply records one accepted post: the head shard takes the post and its
// arrival ticket, the matching daemon shard folds it into the user's
// profile cells, and the stream totals advance atomically. No global lock
// anywhere on this path.
func (d *Daemon) apply(user []byte, sec int64) error {
	if err := d.head.AppendBytes(user, sec); err != nil {
		return err
	}
	sh := &d.shards[d.head.ShardOf(user)]
	sh.mu.Lock()
	before := sh.acc.NumUsers()
	sh.acc.AddBytes(user, sec)
	newUser := sh.acc.NumUsers() > before
	sh.mu.Unlock()
	d.gen.Add(1)
	if newUser {
		d.users.Add(1)
	}
	if d.head.Pending() >= d.cfg.CompactEvery {
		return d.maybeCompact()
	}
	return nil
}

// maybeCompact folds the shard tails into a fresh immutable base when the
// pending threshold is reached. TryLock keeps it to one folder at a time
// with zero queueing: every other request just keeps streaming, and the
// checkpoint is written from the swapped-out immutable dataset with no
// daemon lock held.
func (d *Daemon) maybeCompact() error {
	if !d.compactMu.TryLock() {
		return nil
	}
	defer d.compactMu.Unlock()
	if d.head.Pending() < d.cfg.CompactEvery {
		return nil // another request folded while we queued on TryLock
	}
	ds := d.head.Compact()
	d.cCompact.Add(1)
	if d.cfg.SnapshotPath != "" {
		return d.writeSnapshot(ds)
	}
	return nil
}

// finishIngest stamps the stream totals on the result and publishes the
// request's observability deltas. Runs on every exit path.
//
// The totals are live global gauges, so a concurrent request's posts can be
// included — that is the documented IngestResult semantics (daemon totals
// at completion). What must NOT happen is an *inconsistent* pair: loading
// gen before users could observe a user whose post hadn't been counted yet
// (apply bumps gen before users), yielding Users > Posts on a fresh stream.
// Loading users first inverts the race: any user counted here had its first
// post's gen bump already visible, so Users <= Posts always holds.
func (d *Daemon) finishIngest(res *IngestResult) {
	if res.Rejected > 0 {
		d.rejects.Add(uint64(res.Rejected))
	}
	res.Users = int(d.users.Load())
	res.Gen = d.gen.Load()
	res.Posts = int(res.Gen)
	d.cPosts.Add(int64(res.Accepted))
	d.cRejects.Add(int64(res.Rejected))
	d.gPosts.Set(int64(res.Posts))
	d.gUsers.Set(int64(res.Users))
	if res.Accepted > 0 {
		select { // wake the debounced refitter without blocking
		case d.kick <- struct{}{}:
		default:
		}
	}
}

// writeSnapshot persists an immutable compacted dataset atomically.
// Serialized so overlapping compactions can't interleave tmp files; the
// dataset itself is immutable, so no daemon state lock is held.
func (d *Daemon) writeSnapshot(ds *trace.Dataset) error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	if err := atomicio.WriteFile(d.cfg.SnapshotPath, ds.WriteSnapshot); err != nil {
		return fmt.Errorf("pipeline: save snapshot: %w", err)
	}
	d.cSnapWrites.Add(1)
	return nil
}

// Report returns the crowd report for the current generation, serving the
// published view when fresh — one atomic load, no lock — and recomputing
// otherwise. A drained daemon (no concurrent ingest) therefore always
// reports on every accepted post.
func (d *Daemon) Report() (*ServeReport, error) {
	if v := d.view.Load(); v != nil && v.fitted == d.gen.Load() {
		return v.rep, nil
	}
	return d.refit()
}

// refit computes the report for the generation observed before the shard
// sweep. Shard locks are held one at a time, only to copy active profiles
// and cached zones out; the polish/placement/EM work runs with no lock,
// serialized by fitMu so concurrent /report calls don't duplicate the
// fit. The finished report is published by swapping the atomic view.
func (d *Daemon) refit() (*ServeReport, error) {
	d.fitMu.Lock()
	defer d.fitMu.Unlock()

	// The generation is read before the sweep: if posts land while we
	// copy, the published view is already stale at publication and the
	// next /report recomputes. Drained, g is exact.
	g := d.gen.Load()
	if v := d.view.Load(); v != nil && v.fitted == g {
		return v.rep, nil
	}
	profiles := make(map[string]profile.Profile)
	versions := make(map[string]uint64)
	known := make(map[string]int)
	posts, users := 0, 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.Lock()
		sp, sv := sh.acc.ActiveProfiles()
		for id, p := range sp {
			profiles[id] = p
			versions[id] = sv[id]
			if e, ok := sh.zones[id]; ok && e.ver == sv[id] {
				known[id] = e.zone
			}
		}
		posts += sh.acc.TotalPosts()
		users += sh.acc.NumUsers()
		sh.mu.Unlock()
	}

	if len(profiles) == 0 {
		return nil, ErrNoCrowd
	}
	polishRemoved := 0
	kept := profiles
	if !d.cfg.SkipPolish {
		po := d.o.Stage("polish")
		polished, err := profile.Polish(profiles, d.generic, true)
		po.End()
		if err != nil {
			return nil, err
		}
		kept = polished.Kept
		polishRemoved = len(polished.Removed)
		if len(kept) == 0 {
			return nil, ErrNoCrowd
		}
	}
	placement, fresh, err := geoloc.PlaceUsersPartial(kept, d.generic, known, geoloc.PlaceOptions{Obs: d.o})
	if err != nil {
		return nil, err
	}
	geo, err := geoloc.FitPlacement(placement, geoloc.GeolocateOptions{
		MaxComponents: d.cfg.MaxComponents,
		Place:         geoloc.PlaceOptions{Parallelism: d.cfg.Workers},
		Obs:           d.o,
	})
	if err != nil {
		return nil, err
	}
	rep := &ServeReport{
		Gen:           g,
		Posts:         posts,
		Users:         users,
		ActiveUsers:   len(kept),
		PolishRemoved: polishRemoved,
		Geo:           geo,
	}
	d.cRefits.Add(1)
	d.cFresh.Add(int64(len(fresh)))
	d.cCached.Add(int64(len(kept) - len(fresh)))

	// Freshly computed zones are valid for the profile versions captured
	// in the sweep; staleness is re-checked against the live version on
	// every later read, so writing them back unconditionally is safe even
	// if the user changed mid-fit.
	for id, pz := range fresh {
		sh := &d.shards[d.head.ShardOfString(id)]
		sh.mu.Lock()
		sh.zones[id] = zoneEntry{zone: pz.Zone, margin: pz.Margin, ver: versions[id]}
		sh.mu.Unlock()
	}
	// fitMu makes this the only writer; the newer-generation guard only
	// matters across the nil initial state.
	if v := d.view.Load(); v == nil || g >= v.fitted {
		d.view.Store(&reportView{rep: rep, fitted: g})
	}
	return rep, nil
}

// PlaceResult is the /place/{user} response.
type PlaceResult struct {
	UserID string `json:"user_id"`
	Posts  int    `json:"posts"`
	// Active reports whether the user reached the profile threshold;
	// Offset/ZoneIndex are only present when it did.
	Active    bool   `json:"active"`
	Offset    string `json:"offset,omitempty"`
	ZoneIndex *int   `json:"zone_index,omitempty"`
	// Margin is the placement margin: the EMD gap between the runner-up
	// zone and the winning zone. Near zero means the placement was nearly a
	// coin flip; large means the profile points unambiguously at one zone.
	Margin *float64 `json:"margin,omitempty"`
}

// Place answers the per-user placement question: the zone whose reference
// profile is EMD-nearest to the user's current raw profile (pre-polish —
// flat-profile removal is a crowd-level report step). Placements are
// served from the version-keyed cache when the profile hasn't changed.
// Only the user's own shard is ever locked. ok is false for users the
// stream has never seen.
func (d *Daemon) Place(userID string) (PlaceResult, bool) {
	sh := &d.shards[d.head.ShardOfString(userID)]
	sh.mu.Lock()
	posts := sh.acc.Posts(userID)
	if posts == 0 {
		sh.mu.Unlock()
		return PlaceResult{}, false
	}
	res := PlaceResult{UserID: userID, Posts: posts}
	p, active := sh.acc.ProfileOf(userID)
	if !active {
		sh.mu.Unlock()
		return res, true
	}
	res.Active = true
	ver := sh.acc.Version(userID)
	if e, ok := sh.zones[userID]; ok && e.ver == ver {
		sh.mu.Unlock()
		zi, margin := e.zone, e.margin
		res.ZoneIndex = &zi
		res.Offset = profile.OffsetOf(zi).String()
		res.Margin = &margin
		d.cCached.Add(1)
		return res, true
	}
	sh.mu.Unlock()
	// Compute outside the lock: the EMD kernel needs only the profile
	// copy. PlaceOneMargin is the same nearest-zone kernel the batch
	// placement sweeps, minus its map bookkeeping; the margin rides along
	// from the same all-rotations call.
	zi, margin, err := geoloc.PlaceOneMargin(p, d.generic, geoloc.PlaceOptions{})
	if err != nil {
		return res, true // active but unplaceable; report bare activity
	}
	res.ZoneIndex = &zi
	res.Offset = profile.OffsetOf(zi).String()
	res.Margin = &margin
	d.cFresh.Add(1)
	sh.mu.Lock()
	if sh.acc.Version(userID) == ver {
		sh.zones[userID] = zoneEntry{zone: zi, margin: margin, ver: ver}
	}
	sh.mu.Unlock()
	return res, true
}

// Health is the /healthz response.
type Health struct {
	Status    string `json:"status"`
	Posts     int    `json:"posts"`
	Users     int    `json:"users"`
	Gen       uint64 `json:"gen"`
	FittedGen uint64 `json:"fitted_gen"`
	Rejected  uint64 `json:"rejected_lines"`
	UptimeSec int64  `json:"uptime_sec"`
}

// Healthz snapshots the daemon's liveness state. Entirely lock-free:
// atomic counter loads plus one view-pointer load.
func (d *Daemon) Healthz() Health {
	g := d.gen.Load()
	var fitted uint64
	if v := d.view.Load(); v != nil {
		fitted = v.fitted
	}
	return Health{
		Status:    "ok",
		Posts:     int(g),
		Users:     int(d.users.Load()),
		Gen:       g,
		FittedGen: fitted,
		Rejected:  d.rejects.Load(),
		UptimeSec: int64(time.Since(d.start) / time.Second),
	}
}

// writeJSON renders compact JSON: /place and /healthz answer thousands of
// times a second, and response indentation was a measurable slice of the
// serving hot path's CPU.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// timed wraps a handler with one latency observation. When observability
// is off the histogram is nil and the handler is returned untouched, so
// the disabled path pays nothing.
func timed(lat *obs.LatencyHist, fn http.HandlerFunc) http.HandlerFunc {
	if lat == nil {
		return fn
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		fn(w, r)
		lat.Observe(time.Since(t0))
	}
}

// Handler returns the daemon's HTTP API:
//
//	POST /ingest        NDJSON post stream (one trace.Post object per line)
//	GET  /place/{user}  one user's current placement
//	GET  /report        the crowd report (recomputed when stale)
//	GET  /healthz       liveness and stream counters
//
// Ingest failures map to status codes by cause: 400 for a blown
// malformed-line budget, 413 for an oversized line, 507 for storage
// limits. When the daemon was built with an observing ServeConfig.Obs
// carrying a metrics registry, /metrics and /debug/pprof/* are mounted
// too (the obs.Handler surface), with per-endpoint request latencies
// under http.*.ns.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", timed(d.latIngest, func(w http.ResponseWriter, r *http.Request) {
		res, err := d.Ingest(r.Body)
		if err != nil {
			status := http.StatusInsufficientStorage
			switch {
			case errors.Is(err, ErrBadLineBudget):
				status = http.StatusBadRequest
			case errors.Is(err, ErrLineTooLong):
				status = http.StatusRequestEntityTooLarge
			}
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, res)
	}))
	mux.HandleFunc("GET /place/{user}", timed(d.latPlace, func(w http.ResponseWriter, r *http.Request) {
		res, ok := d.Place(r.PathValue("user"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown user"})
			return
		}
		writeJSON(w, http.StatusOK, res)
	}))
	mux.HandleFunc("GET /report", timed(d.latReport, func(w http.ResponseWriter, r *http.Request) {
		rep, err := d.Report()
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrNoCrowd) {
				status = http.StatusServiceUnavailable
			}
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, rep)
	}))
	mux.HandleFunc("GET /healthz", timed(d.latHealthz, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Healthz())
	}))
	if d.o != nil && d.o.Metrics != nil {
		debug := obs.Handler(d.o.Metrics)
		mux.Handle("GET /metrics", debug)
		mux.Handle("/debug/pprof/", debug)
	}
	return mux
}
