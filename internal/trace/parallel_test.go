package trace

import (
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// parallelWorkerCounts are the shard counts the equivalence suite sweeps —
// 1 (inline), small primes, and more workers than most generated inputs
// have lines.
var parallelWorkerCounts = []int{1, 2, 3, 7, 16}

// genEquivCSV produces a seeded CSV exercising every shape the reader
// distinguishes: clean rows, fractional seconds, offset timezones, and —
// when dirty — bad timestamps (short and >80 bytes for the truncation
// path), wrong field counts, CRLF endings, interior \r bytes, blank
// lines, and unterminated final lines.
func genEquivCSV(r *rand.Rand, dirty bool) []byte {
	var b bytes.Buffer
	eol := func() {
		if r.Intn(6) == 0 {
			b.WriteString("\r\n")
		} else {
			b.WriteString("\n")
		}
	}
	if r.Intn(4) == 0 {
		b.WriteString("\n") // blank line before the header
	}
	b.WriteString("user_id,time_rfc3339")
	eol()
	n := r.Intn(120)
	for i := 0; i < n; i++ {
		user := fmt.Sprintf("u%03d", r.Intn(25))
		mode := r.Intn(20)
		if !dirty && mode >= 14 && mode <= 17 {
			mode = 0
		}
		switch mode {
		case 12: // fractional seconds (slow parse path, nano preservation)
			fmt.Fprintf(&b, "%s,2021-03-04T05:06:07.%03dZ", user, r.Intn(1000))
		case 13: // offset timezone (slow parse path, UTC normalization)
			fmt.Fprintf(&b, "%s,2021-03-04T05:06:07+0%d:00", user, 1+r.Intn(9))
		case 14: // bad timestamp
			fmt.Fprintf(&b, "%s,not-a-time-%d", user, r.Intn(10))
		case 15: // long bad timestamp (sample truncation path)
			fmt.Fprintf(&b, "%s,%s", user, strings.Repeat("x", 80+r.Intn(40)))
		case 16: // missing field
			fmt.Fprintf(&b, "lonefield%d", r.Intn(10))
		case 17: // extra field
			fmt.Fprintf(&b, "%s,2021-01-01T00:00:00Z,extra", user)
		case 18: // blank line
		case 19: // interior \r in the user field (delegated line)
			fmt.Fprintf(&b, "%s\r,2021-03-04T05:06:07Z", user)
		default: // clean fixed-layout row, possibly invalid calendar date
			day := 1 + r.Intn(31)
			fmt.Fprintf(&b, "%s,2021-%02d-%02dT%02d:%02d:%02dZ",
				user, 1+r.Intn(12), day, r.Intn(24), r.Intn(60), r.Intn(60))
		}
		eol()
	}
	data := b.Bytes()
	if n > 0 && r.Intn(3) == 0 {
		data = bytes.TrimSuffix(data, []byte("\n")) // unterminated last line (may leave a bare \r)
	}
	return data
}

// sameIngestError asserts the parallel reader failed exactly like the
// sequential one: same message, and the same typed error underneath.
func sameIngestError(t *testing.T, seqErr, parErr error) {
	t.Helper()
	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("error mismatch: sequential %v, parallel %v", seqErr, parErr)
	}
	if seqErr == nil {
		return
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("error text mismatch:\n seq: %s\n par: %s", seqErr, parErr)
	}
	var seqPE, parPE *csv.ParseError
	if errors.As(seqErr, &seqPE) {
		if !errors.As(parErr, &parPE) {
			t.Fatalf("sequential wraps *csv.ParseError, parallel does not: %v", parErr)
		}
		if *seqPE != *parPE {
			t.Fatalf("ParseError mismatch: seq %+v, par %+v", *seqPE, *parPE)
		}
	}
	var seqBudget, parBudget *BadRowBudgetError
	if errors.As(seqErr, &seqBudget) {
		if !errors.As(parErr, &parBudget) {
			t.Fatalf("sequential is *BadRowBudgetError, parallel is not: %v", parErr)
		}
		if seqBudget.Budget != parBudget.Budget || !reflect.DeepEqual(seqBudget.Report, parBudget.Report) {
			t.Fatalf("budget abort mismatch:\n seq: %+v\n par: %+v", seqBudget, parBudget)
		}
	}
}

// sameStore asserts two columnar stores are bit-identical, field by field.
func sameStore(t *testing.T, want, got *Store) {
	t.Helper()
	if !reflect.DeepEqual(want.ids, got.ids) {
		t.Fatalf("store ids mismatch: want %v, got %v", want.ids, got.ids)
	}
	if !reflect.DeepEqual(want.lookup, got.lookup) {
		t.Fatalf("store lookup mismatch: want %v, got %v", want.lookup, got.lookup)
	}
	if !reflect.DeepEqual(want.userOf, got.userOf) {
		t.Fatalf("store userOf mismatch: want %v, got %v", want.userOf, got.userOf)
	}
	if !reflect.DeepEqual(want.when, got.when) {
		t.Fatalf("store when mismatch: want %v, got %v", want.when, got.when)
	}
	if !reflect.DeepEqual(want.posts, got.posts) {
		t.Fatalf("store posts mismatch: want %v, got %v", want.posts, got.posts)
	}
	if !reflect.DeepEqual(want.offsets, got.offsets) {
		t.Fatalf("store offsets mismatch: want %v, got %v", want.offsets, got.offsets)
	}
	if want.sortedByTime != got.sortedByTime {
		t.Fatalf("store sortedByTime mismatch: want %v, got %v", want.sortedByTime, got.sortedByTime)
	}
}

// checkParallelEquivalence runs both readers on the same bytes and
// asserts every observable output matches.
func checkParallelEquivalence(t *testing.T, data []byte, opts ReadCSVOptions, workers int) {
	t.Helper()
	seqDS, seqRep, seqErr := ReadCSVOpts("equiv", bytes.NewReader(data), opts)
	parDS, parRep, parErr := ReadCSVParallel("equiv", data, opts, workers)
	sameIngestError(t, seqErr, parErr)
	if !reflect.DeepEqual(seqRep, parRep) {
		t.Fatalf("quarantine report mismatch (workers=%d):\n seq: %+v\n par: %+v", workers, seqRep, parRep)
	}
	if (seqDS == nil) != (parDS == nil) {
		t.Fatalf("dataset nil-ness mismatch (workers=%d): seq %v, par %v", workers, seqDS, parDS)
	}
	if seqDS == nil {
		return
	}
	if seqDS.Name != parDS.Name {
		t.Fatalf("name mismatch: %q vs %q", seqDS.Name, parDS.Name)
	}
	if (seqDS.Posts == nil) != (parDS.Posts == nil) {
		t.Fatalf("posts nil-ness mismatch (workers=%d): seq %v, par %v", workers, seqDS.Posts == nil, parDS.Posts == nil)
	}
	if !reflect.DeepEqual(seqDS.Posts, parDS.Posts) {
		t.Fatalf("posts mismatch (workers=%d):\n seq: %v\n par: %v", workers, seqDS.Posts, parDS.Posts)
	}
	if !reflect.DeepEqual(seqDS.GroundTruth, parDS.GroundTruth) {
		t.Fatalf("ground truth mismatch: %v vs %v", seqDS.GroundTruth, parDS.GroundTruth)
	}
	sameStore(t, seqDS.Index(), parDS.Index())
}

// TestParallelReadEquivalence is the tentpole property test: across
// seeds, corruption levels, strict/lenient modes, budgets, hints and
// worker counts, the sharded reader is byte-identical to the sequential
// one.
func TestParallelReadEquivalence(t *testing.T) {
	t.Parallel()
	seeds := 60
	if testing.Short() {
		seeds = 12
	}
	for seed := 0; seed < seeds; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		data := genEquivCSV(r, seed%2 == 0)
		optsVariants := []ReadCSVOptions{
			{},
			{PostHint: 256},
			{Lenient: true},
			{Lenient: true, MaxBadRows: 1},
			{Lenient: true, MaxBadRows: 4, SampleCap: 2},
			{Lenient: true, MaxBadRows: 100, PostHint: 8},
		}
		for _, opts := range optsVariants {
			for _, workers := range parallelWorkerCounts {
				checkParallelEquivalence(t, data, opts, workers)
			}
		}
	}
}

// TestParallelReadEdgeCases pins the deterministic weird shapes: CRLF
// files, bare-\r lines, header-only files, unterminated lines, headers
// with the wrong shape, and quoted inputs (sequential fallback).
func TestParallelReadEdgeCases(t *testing.T) {
	t.Parallel()
	cases := []string{
		"",
		"\n",
		"\r\n",
		"user_id,time_rfc3339",
		"user_id,time_rfc3339\n",
		"user_id,time_rfc3339\r\n",
		"\n\nuser_id,time_rfc3339\n\n\nu1,2021-01-01T00:00:00Z\n",
		"user_id,time_rfc3339\nu1,2021-01-01T00:00:00Z",
		"user_id,time_rfc3339\nu1,2021-01-01T00:00:00Z\r",
		"user_id,time_rfc3339\r\nu1,2021-01-01T00:00:00Z\r\nu2,2021-01-01T00:00:01Z\r\n",
		"user_id,time_rfc3339\nu1,2021-01-01T00:00:00Z\n\r\nu2,2021-01-01T00:00:01Z\n",
		"user_id,time_rfc3339\nu\r1,2021-01-01T00:00:00Z\n",
		"user_id,time_rfc3339\nu1,2021-01-01T00:00:00Z\r\r\n",
		"user_id,time_rfc3339\nu1\n",
		"user_id,time_rfc3339\nu1,a,b\n",
		"user_id,time_rfc3339\nu1,bad-time\nu2,2021-01-01T00:00:00Z\n",
		"user_id,time_rfc3339\nu1,2021-02-30T00:00:00Z\n",
		"user_id,time_rfc3339\nu1,1969-12-31T23:59:59Z\n",
		"user_id,time_rfc3339\nu1,2021-01-01T00:00:00.5Z\nu1,2021-01-01T00:00:00Z\n",
		"wrong,header\nu1,2021-01-01T00:00:00Z\n",
		"user_id\n",
		"user_id,time_rfc3339,extra\n",
		",\n",
		"user_id,time_rfc3339\n\"u1\",2021-01-01T00:00:00Z\n",
		"user_id,time_rfc3339\nu1,\"2021-01-01T00:00:00Z\n",
		"user_id,time_rfc3339\n,2021-01-01T00:00:00Z\nu2,\n",
	}
	for i, data := range cases {
		for _, lenient := range []bool{false, true} {
			for _, workers := range parallelWorkerCounts {
				opts := ReadCSVOptions{Lenient: lenient, MaxBadRows: 3}
				t.Run(fmt.Sprintf("case%02d/lenient=%v/w=%d", i, lenient, workers), func(t *testing.T) {
					checkParallelEquivalence(t, []byte(data), opts, workers)
				})
			}
		}
	}
}

// TestIngestCellsMatchStore asserts the fused cells are exactly the
// floor-divided timestamp column, grouped per user like AppendUserTimes.
func TestIngestCellsMatchStore(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(99))
	data := genEquivCSV(r, false)
	for _, workers := range parallelWorkerCounts {
		res, err := IngestCSV("cells", data, IngestOptions{
			ReadCSVOptions: ReadCSVOptions{Lenient: true}, // the generator emits some invalid calendar dates
			Workers:        workers,
			CollectCells:   true,
		})
		if err != nil {
			t.Fatalf("IngestCSV(workers=%d): %v", workers, err)
		}
		if res.Cells == nil {
			t.Fatalf("IngestCSV(workers=%d): nil Cells", workers)
		}
		s := res.Dataset.Index()
		if res.Cells.NumUsers() != s.NumUsers() {
			t.Fatalf("cells users %d != store users %d", res.Cells.NumUsers(), s.NumUsers())
		}
		var timeBuf []int64
		var keyBuf []int64
		for u := 0; u < s.NumUsers(); u++ {
			timeBuf = s.AppendUserTimes(timeBuf[:0], u)
			keyBuf = res.Cells.AppendUserKeys(keyBuf[:0], u)
			if len(timeBuf) != len(keyBuf) {
				t.Fatalf("user %d: %d times vs %d keys", u, len(timeBuf), len(keyBuf))
			}
			for i, sec := range timeBuf {
				if want := floorDiv3600(sec); keyBuf[i] != want {
					t.Fatalf("user %d post %d: key %d, want %d (sec %d)", u, i, keyBuf[i], want, sec)
				}
			}
		}
	}
}

// TestIngestQuotedFallback pins the sequential fallback: any input
// containing a quote parses via ReadCSVOpts with Workers reported as 1.
func TestIngestQuotedFallback(t *testing.T) {
	t.Parallel()
	data := []byte("user_id,time_rfc3339\n\"u,1\",2021-01-01T00:00:00Z\nu2,2021-01-01T00:00:01Z\n")
	res, err := IngestCSV("quoted", data, IngestOptions{Workers: 8, CollectCells: true})
	if err != nil {
		t.Fatalf("IngestCSV: %v", err)
	}
	if res.Workers != 1 {
		t.Fatalf("quoted fallback Workers = %d, want 1", res.Workers)
	}
	if res.Cells == nil || len(res.Cells.keys) != 2 {
		t.Fatalf("quoted fallback cells missing: %+v", res.Cells)
	}
	if got := res.Dataset.Posts[0].UserID; got != "u,1" {
		t.Fatalf("quoted field mangled: %q", got)
	}
}

// TestShardSplitInvariants pins the splitter contract directly: cuts are
// monotone, cover [start, len(data)], and interior cuts land after
// newlines.
func TestShardSplitInvariants(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(200)
		data := make([]byte, n)
		for i := range data {
			if r.Intn(5) == 0 {
				data[i] = '\n'
			} else {
				data[i] = byte('a' + r.Intn(26))
			}
		}
		start := 0
		if n > 0 {
			start = r.Intn(n)
		}
		workers := 1 + r.Intn(8)
		checkShardSplit(t, data, start, workers)
	}
}

// checkShardSplit asserts the shardSplit contract for one input.
func checkShardSplit(t *testing.T, data []byte, start, workers int) {
	t.Helper()
	cuts := shardSplit(data, start, workers)
	if len(cuts) != workers+1 {
		t.Fatalf("len(cuts) = %d, want %d", len(cuts), workers+1)
	}
	if cuts[0] != start || cuts[workers] != len(data) {
		t.Fatalf("cuts endpoints [%d, %d], want [%d, %d]", cuts[0], cuts[workers], start, len(data))
	}
	for k := 1; k <= workers; k++ {
		if cuts[k] < cuts[k-1] {
			t.Fatalf("cuts not monotone: %v", cuts)
		}
		if k < workers && cuts[k] != len(data) && cuts[k] > start && data[cuts[k]-1] != '\n' {
			t.Fatalf("interior cut %d at %d not after newline: %q", k, cuts[k], data)
		}
	}
}
