package experiments

import (
	"fmt"
	"math"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/tz"
)

// Fig8 regenerates Figure 8: the CRD Club population profile and its
// Pearson correlation with the generic Twitter profile.
func (l *Lab) Fig8() (*Result, error) {
	fr, err := l.runForum("CRD Club")
	if err != nil {
		return nil, err
	}
	gen, err := l.Generic()
	if err != nil {
		return nil, err
	}
	res := &Result{
		Title: "Figure 8 — Regional profile built on the CRD Club forum (UTC+3 frame)",
		Paper: "forum profile matches the generic Twitter profile, Pearson 0.93",
	}
	// The paper plots the CRD profile in the Russian local frame; the
	// scraped profile is in UTC, so display it shifted to UTC+3 and
	// correlate with the generic (local-frame) profile.
	local := fr.population.ToLocal(3)
	res.Lines = append(res.Lines, fmt.Sprintf("  %d active users, %d scraped posts, measured server offset %v",
		fr.users, fr.scraped.NumPosts(), fr.offset))
	res.Lines = append(res.Lines, profileChart(local)...)
	res.addProfileChart("crd-profile", "CRD Club population profile (UTC+3 frame)", local)
	r, err := local.Pearson(gen.Generic)
	if err != nil {
		return nil, err
	}
	res.Lines = append(res.Lines, fmt.Sprintf("  Pearson(CRD@UTC+3, generic) = %.3f (paper: 0.93)", r))
	res.Measured = fmt.Sprintf("Pearson = %.3f", r)
	res.Pass = r > 0.85
	return res, nil
}

// forumExpectation describes what the paper reports for one forum: the
// clustered component centres (regions closer than two zones merge into
// one reported component) with their crowd shares.
type forumExpectation struct {
	centers []float64
	weights []float64
}

// expectationFor clusters a forum's ground-truth mix into the components
// the paper reports. Offsets are taken as the regions' standard offsets
// (DST can smear each by up to +1).
func expectationFor(spec synth.ForumSpec) (forumExpectation, error) {
	type entry struct {
		offset float64
		weight float64
	}
	var entries []entry
	for _, code := range sortedMixKeys(spec.Mix) {
		region, err := tz.ByCode(code)
		if err != nil {
			return forumExpectation{}, err
		}
		entries = append(entries, entry{
			offset: float64(region.StandardOffset),
			weight: spec.Mix[code],
		})
	}
	// Greedy clustering: entries within 2 zones merge.
	var exp forumExpectation
	used := make([]bool, len(entries))
	for i := range entries {
		if used[i] {
			continue
		}
		center := entries[i].offset * entries[i].weight
		weight := entries[i].weight
		for j := i + 1; j < len(entries); j++ {
			if used[j] {
				continue
			}
			if math.Abs(entries[j].offset-entries[i].offset) <= 2 {
				center += entries[j].offset * entries[j].weight
				weight += entries[j].weight
				used[j] = true
			}
		}
		exp.centers = append(exp.centers, center/weight)
		exp.weights = append(exp.weights, weight)
	}
	return exp, nil
}

// paperForumClaims reproduces the §V narrative per forum.
var paperForumClaims = map[string]string{
	"CRD Club":                  "one component, mean between UTC+3 and UTC+4 (Russian-speaking countries)",
	"Italian DarkNet Community": "one component at UTC+1, slightly shifted towards UTC+2",
	"Dream Market":              "two components: the largest at UTC+1 (Europe), the smaller at UTC-6",
	"The Majestic Garden":       "two components: the largest at UTC-6 (Midwest), the second at UTC+1",
	"Pedo Support Community":    "three components: highest between UTC-8/-7, second at UTC-3, smallest at UTC+4",
}

// ForumPlacement regenerates Figures 9-13: the GMM placement of one §V
// forum crowd, scraped end to end.
func (l *Lab) ForumPlacement(id, name string) (*Result, error) {
	fr, err := l.runForum(name)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Title: fmt.Sprintf("Figure %s — %s, %s", id[3:], name, fr.spec.Onion),
		Paper: paperForumClaims[name],
	}
	res.Lines = append(res.Lines, fmt.Sprintf(
		"  census: %d users / %d posts (paper: %d / %d); server offset measured %v (configured %dh)",
		fr.users, fr.scraped.NumPosts(), fr.spec.Users, fr.spec.Posts,
		fr.offset, fr.spec.ServerOffsetHours))
	res.Lines = append(res.Lines, placementChart(fr.geo.Placement.Histogram)...)
	res.Lines = append(res.Lines, describeComponents(fr.geo.Components)...)
	res.Lines = append(res.Lines, fmt.Sprintf("  fit: avg dist %.4f, std %.4f",
		fr.geo.AvgDistance, fr.geo.StdDistance))
	res.addPlacementChart("placement",
		fmt.Sprintf("%s crowd placement with fitted mixture", name),
		fr.geo.Placement.Histogram, fr.geo.Mixture.Curve(tz.HoursPerDay))

	exp, err := expectationFor(fr.spec)
	if err != nil {
		return nil, err
	}
	pass := len(fr.geo.Components) == len(exp.centers)
	for _, want := range exp.centers {
		if !hasComponentNear(fr.geo.Components, want, 1.7) {
			pass = false
		}
	}
	// "Who wins": the heaviest recovered component must sit at the
	// heaviest expected cluster.
	if len(exp.centers) > 1 && len(fr.geo.Components) > 0 {
		heaviest := 0
		for i := range exp.weights {
			if exp.weights[i] > exp.weights[heaviest] {
				heaviest = i
			}
		}
		d := circularAbs(fr.geo.Components[0].Offset - exp.centers[heaviest])
		if d > 1.7 {
			pass = false
		}
	}
	res.Measured = fmt.Sprintf("%d components: %v", len(fr.geo.Components), summarizeCenters(fr.geo.Components))
	res.Pass = pass
	return res, nil
}

func circularAbs(d float64) float64 {
	d = math.Abs(d)
	if d > 12 {
		d = 24 - d
	}
	return d
}

// Hemisphere regenerates the §V-F analysis: validation on the five most
// active users of the UK, German, Italian and Brazilian Twitter crowds,
// then the Pedo Support Community's top five users.
func (l *Lab) Hemisphere() (*Result, error) {
	res := &Result{
		Title: "§V-F — Telling apart the northern and the southern hemisphere",
		Paper: "5/5 UK, DE, IT users northern; 5/5 BR users southern; Pedo Support top-5: 3 southern, 2 northern",
	}

	// Validation: dedicated high-volume users per country, as the paper
	// validates on the five most active users of each dataset.
	validationPass := true
	for _, tc := range []struct {
		code string
		want tz.Hemisphere
	}{
		{"uk", tz.HemisphereNorth},
		{"de", tz.HemisphereNorth},
		{"it", tz.HemisphereNorth},
		{"br", tz.HemisphereSouth},
	} {
		region, err := tz.ByCode(tc.code)
		if err != nil {
			return nil, err
		}
		ds, err := synth.GenerateCrowd(l.cfg.Seed+int64(len(tc.code)*17), synth.CrowdConfig{
			Name:   "hemi-" + tc.code,
			Groups: []synth.Group{{Region: region, Users: 5, PostsPerUser: 4000}},
		})
		if err != nil {
			return nil, err
		}
		verdicts, err := geoloc.ClassifyTopUsers(ds, 5, geoloc.HemisphereOptions{})
		if err != nil {
			return nil, err
		}
		correct := 0
		for _, v := range verdicts {
			if v != nil && v.Hemisphere == tc.want {
				correct++
			}
		}
		res.Lines = append(res.Lines, fmt.Sprintf("  %s: %d/5 classified %s (paper: 5/5)",
			region.Name, correct, tc.want))
		if correct < 4 {
			validationPass = false
		}
	}

	// Application: the Pedo Support Community's most active users.
	fr, err := l.runForum("Pedo Support Community")
	if err != nil {
		return nil, err
	}
	verdicts, err := geoloc.ClassifyTopUsers(fr.scraped, 5, geoloc.HemisphereOptions{})
	if err != nil {
		return nil, err
	}
	counts := map[tz.Hemisphere]int{}
	matches, classified := 0, 0
	for u, v := range verdicts {
		if v == nil {
			res.Lines = append(res.Lines, fmt.Sprintf("  pedo top user %s: insufficient seasonal activity", u))
			continue
		}
		classified++
		counts[v.Hemisphere]++
		truthCode := fr.truth.GroundTruth[u]
		want := tz.HemisphereNone
		if region, err := tz.ByCode(truthCode); err == nil {
			want = region.Hemisphere()
		}
		ok := v.Hemisphere == want
		if ok {
			matches++
		}
		res.Lines = append(res.Lines, fmt.Sprintf(
			"  pedo top user %s: ruled %s (best shift %+.2f), ground truth %s (%s) — %v",
			u, v.Hemisphere, v.BestShift, want, truthCode, ok))
	}
	res.Lines = append(res.Lines, fmt.Sprintf(
		"  Pedo Support top-5: %d south, %d north, %d none (paper: 3 south, 2 north)",
		counts[tz.HemisphereSouth], counts[tz.HemisphereNorth], counts[tz.HemisphereNone]))

	res.Measured = fmt.Sprintf("validation >=4/5 per country: %v; pedo top-5 ground-truth matches %d/%d",
		validationPass, matches, classified)
	res.Pass = validationPass && classified >= 3 && matches*2 >= classified
	return res, nil
}
