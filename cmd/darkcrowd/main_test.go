package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"darkcrowd/internal/forum"
	"darkcrowd/internal/obs"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

// TestServeDaemonLifecycle boots the streaming daemon on an ephemeral
// port, ingests over HTTP, and shuts it down the way a SIGTERM would —
// asserting the advertised address is the resolved one (not ":0") and the
// exit is clean.
func TestServeDaemonLifecycle(t *testing.T) {
	type hooked struct {
		addr string
		stop context.CancelFunc
	}
	ready := make(chan hooked, 1)
	serveTestHook = func(addr string, stop context.CancelFunc) {
		ready <- hooked{addr, stop}
	}
	defer func() { serveTestHook = nil }()

	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve",
			"-addr", "127.0.0.1:0",
			"-twitter-scale", "300",
			"-min-posts", "5",
			"-refit-debounce", "-1ms",
		})
	}()
	var h hooked
	select {
	case h = <-ready:
	case err := <-done:
		t.Fatalf("serve exited before binding: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("timed out waiting for the daemon to bind")
	}
	if strings.HasSuffix(h.addr, ":0") {
		t.Fatalf("advertised address %q kept the unresolved :0 port", h.addr)
	}
	base := "http://" + h.addr

	body := strings.NewReader(
		`{"user_id":"alice","time":"2018-03-01T12:00:00Z"}` + "\n" +
			`{"user_id":"alice","time":"2018-03-02T13:00:00Z"}` + "\n")
	resp, err := http.Post(base+"/ingest", "application/x-ndjson", body)
	if err != nil {
		t.Fatalf("POST /ingest: %v", err)
	}
	var ing struct {
		Accepted int `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ing); err != nil {
		t.Fatalf("decode ingest result: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ing.Accepted != 2 {
		t.Fatalf("ingest: status %d, accepted %d", resp.StatusCode, ing.Accepted)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var hz struct {
		Posts int `json:"posts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()
	if hz.Posts != 2 {
		t.Fatalf("healthz posts = %d, want 2", hz.Posts)
	}

	// No user is active yet, so the crowd report must refuse politely.
	resp, err = http.Get(base + "/report")
	if err != nil {
		t.Fatalf("GET /report: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/report on an empty crowd: status %d, want 503", resp.StatusCode)
	}

	h.stop() // stands in for SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon shutdown: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("timed out waiting for graceful shutdown")
	}
}

func TestRunUsageAndErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args should fail")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand should fail")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
}

func TestParseRegions(t *testing.T) {
	got, err := parseRegions("jp:60,us-il:30")
	if err != nil {
		t.Fatal(err)
	}
	if got["jp"] != 60 || got["us-il"] != 30 {
		t.Errorf("parseRegions = %v", got)
	}
	for _, bad := range []string{"", "jp", "jp:x", "jp:0", "atlantis:5"} {
		if _, err := parseRegions(bad); err == nil {
			t.Errorf("parseRegions(%q) should fail", bad)
		}
	}
}

func TestGenerateProfileGeolocatePipeline(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "crowd.csv")
	if err := run([]string{"generate", "-regions", "jp:40", "-posts", "80", "-seed", "5", "-out", out}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("output missing: %v", err)
	}
	// Profile of the whole crowd.
	if err := run([]string{"profile", "-in", out}); err != nil {
		t.Fatalf("profile: %v", err)
	}
	// Profile of one user.
	fh, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := trace.ReadCSV(out, fh)
	fh.Close()
	if err != nil {
		t.Fatal(err)
	}
	user := ds.Users()[0]
	if err := run([]string{"profile", "-in", out, "-user", user}); err != nil {
		t.Fatalf("profile -user: %v", err)
	}
	if err := run([]string{"profile", "-in", out, "-user", "nobody"}); err == nil {
		t.Error("missing user should fail")
	}
	// Geolocate (small reference for speed).
	if err := run([]string{"geolocate", "-in", out, "-twitter-scale", "300"}); err != nil {
		t.Fatalf("geolocate: %v", err)
	}
	// Missing trace.
	if err := run([]string{"geolocate", "-in", filepath.Join(dir, "nope.csv")}); err == nil {
		t.Error("missing trace should fail")
	}
}

func TestHemisphereCommand(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "br.csv")
	if err := run([]string{"generate", "-regions", "br:3", "-posts", "3000", "-seed", "9", "-out", out}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := run([]string{"hemisphere", "-in", out, "-top", "3"}); err != nil {
		t.Fatalf("hemisphere: %v", err)
	}
}

func TestScrapeCommand(t *testing.T) {
	region, err := tz.ByCode("it")
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := synth.GenerateCrowd(77, synth.CrowdConfig{
		Name:   "cli-scrape",
		Groups: []synth.Group{{Region: region, Users: 5, PostsPerUser: 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := forum.New(forum.Config{
		Name:         "cli forum",
		ServerOffset: 2 * time.Hour,
		Clock:        func() time.Time { return time.Date(2017, 7, 1, 10, 0, 0, 0, time.UTC) },
	})
	if err := f.ImportCrowd(crowd, forum.ImportOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	dir := t.TempDir()
	out := filepath.Join(dir, "scraped.csv")
	if err := run([]string{"scrape", "-url", srv.URL + "/", "-out", out}); err != nil {
		t.Fatalf("scrape: %v", err)
	}
	fh, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := trace.ReadCSV(out, fh)
	fh.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumPosts() != crowd.NumPosts() {
		t.Errorf("scraped %d posts, want %d", ds.NumPosts(), crowd.NumPosts())
	}
	// Missing URL.
	if err := run([]string{"scrape"}); err == nil || !strings.Contains(err.Error(), "required") {
		t.Errorf("scrape without URL: %v", err)
	}
}

// TestSnapshotCommand: the snapshot subcommand compiles a CSV into a
// loadable .dcs, and geolocate -snapshot produces the same stdout whether
// it ingests the CSV or loads the snapshot.
func TestSnapshotCommand(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "crowd.csv")
	if err := run([]string{"generate", "-regions", "jp:40", "-posts", "80", "-seed", "5", "-out", csvPath}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	snapPath := filepath.Join(dir, "crowd.dcs")
	if err := run([]string{"snapshot", "-in", csvPath, "-out", snapPath, "-ingest-workers", "3"}); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	fh, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := trace.ReadSnapshot(fh)
	fh.Close()
	if err != nil {
		t.Fatalf("snapshot output does not decode: %v", err)
	}
	if ds.NumPosts() == 0 {
		t.Fatal("snapshot dataset is empty")
	}
	// Default output path is <in>.dcs.
	if err := run([]string{"snapshot", "-in", csvPath}); err != nil {
		t.Fatalf("snapshot default out: %v", err)
	}
	if _, err := os.Stat(csvPath + ".dcs"); err != nil {
		t.Fatalf("default .dcs missing: %v", err)
	}
	// Missing input fails.
	if err := run([]string{"snapshot", "-in", filepath.Join(dir, "nope.csv")}); err == nil {
		t.Error("missing trace should fail")
	}

	// geolocate is stdout-identical across plain CSV ingest, a
	// snapshot-writing run, and a snapshot-loading run.
	geoArgs := []string{"geolocate", "-in", csvPath, "-twitter-scale", "300"}
	want := captureStdout(t, func() error { return run(geoArgs) })
	fresh := filepath.Join(dir, "fresh.dcs")
	withSnap := append(geoArgs, "-snapshot", fresh, "-ingest-workers", "5")
	if got := captureStdout(t, func() error { return run(withSnap) }); got != want {
		t.Errorf("snapshot-writing geolocate diverged:\n%s\nvs\n%s", got, want)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("geolocate did not write the snapshot: %v", err)
	}
	if got := captureStdout(t, func() error { return run(withSnap) }); got != want {
		t.Errorf("snapshot-loading geolocate diverged:\n%s\nvs\n%s", got, want)
	}
}

func TestGenerateErrors(t *testing.T) {
	if err := run([]string{"generate", "-regions", "bad"}); err == nil {
		t.Error("bad regions should fail")
	}
	if err := run([]string{"generate", "-regions", "jp:5", "-out", "/nonexistent-dir/x.csv"}); err == nil {
		t.Error("unwritable output should fail")
	}
}

func TestReferenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.json")
	if err := run([]string{"reference", "-twitter-scale", "300", "-out", refPath}); err != nil {
		t.Fatalf("reference: %v", err)
	}
	crowdPath := filepath.Join(dir, "crowd.csv")
	if err := run([]string{"generate", "-regions", "jp:30", "-out", crowdPath}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := run([]string{"geolocate", "-in", crowdPath, "-ref", refPath}); err != nil {
		t.Fatalf("geolocate with saved reference: %v", err)
	}
	if err := run([]string{"geolocate", "-in", crowdPath, "-ref", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing reference should fail")
	}
}

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns everything it printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	data, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if runErr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", runErr, data)
	}
	return string(data)
}

func TestGeolocateObservabilityFlags(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "crowd.csv")
	if err := run([]string{"generate", "-regions", "jp:40", "-posts", "80", "-seed", "5", "-out", out}); err != nil {
		t.Fatalf("generate: %v", err)
	}
	got := captureStdout(t, func() error {
		return run([]string{"geolocate", "-in", out, "-twitter-scale", "300", "-metrics", "-trace"})
	})
	// The stage tree must cover the whole pipeline.
	for _, stage := range []string{"geolocate", "load-trace", "reference", "profile-build", "polish", "placement", "em-select"} {
		if !strings.Contains(got, stage) {
			t.Errorf("trace output missing stage %q:\n%s", stage, got)
		}
	}
	// The metrics report is the trailing JSON object.
	idx := strings.Index(got, "{")
	if idx < 0 {
		t.Fatalf("no JSON metrics report in output:\n%s", got)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(got[idx:]), &snap); err != nil {
		t.Fatalf("metrics report is not valid JSON: %v\n%s", err, got[idx:])
	}
	for _, name := range []string{"trace.posts_loaded", "profile.users_built", "placement.users_placed"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %q missing from metrics report: %v", name, snap.Counters)
		}
	}
	if snap.Gauges["em.selected_k"] == 0 {
		t.Errorf("em.selected_k missing from metrics report: %v", snap.Gauges)
	}
}

func TestScrapeObservabilityFlags(t *testing.T) {
	region, err := tz.ByCode("it")
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := synth.GenerateCrowd(78, synth.CrowdConfig{
		Name:   "cli-scrape-obs",
		Groups: []synth.Group{{Region: region, Users: 4, PostsPerUser: 30}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := forum.New(forum.Config{
		Name:         "obs forum",
		ServerOffset: time.Hour,
		Clock:        func() time.Time { return time.Date(2017, 7, 1, 10, 0, 0, 0, time.UTC) },
	})
	if err := f.ImportCrowd(crowd, forum.ImportOptions{}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	dir := t.TempDir()
	out := filepath.Join(dir, "scraped.csv")
	got := captureStdout(t, func() error {
		return run([]string{"scrape", "-url", srv.URL, "-out", out, "-metrics", "-trace"})
	})
	for _, stage := range []string{"scrape", "crawl", "probe"} {
		if !strings.Contains(got, stage) {
			t.Errorf("trace output missing stage %q:\n%s", stage, got)
		}
	}
	idx := strings.Index(got, "{")
	if idx < 0 {
		t.Fatalf("no JSON metrics report in output:\n%s", got)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(got[idx:]), &snap); err != nil {
		t.Fatalf("metrics report is not valid JSON: %v\n%s", err, got[idx:])
	}
	for _, name := range []string{"crawler.requests", "crawler.threads_scraped", "crawler.pages", "crawler.posts_collected"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %q missing from metrics report: %v", name, snap.Counters)
		}
	}
}
