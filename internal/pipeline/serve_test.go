package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/obs"
	"darkcrowd/internal/trace"
)

// ndjson renders posts as the daemon's ingest wire format: one trace.Post
// JSON object per line.
func ndjson(posts []trace.Post) []byte {
	var b bytes.Buffer
	for _, p := range posts {
		fmt.Fprintf(&b, "{\"user_id\":%q,\"time\":%q}\n", p.UserID, p.Time.Format(time.RFC3339))
	}
	return b.Bytes()
}

// batchGeo runs the batch pipeline over the CSV trace and returns the
// marshalled Geolocation — the reference output streaming must reproduce.
func batchGeo(t *testing.T, tracePath string) (*Result, string) {
	t.Helper()
	res, err := Geolocate(Config{
		TracePath:   tracePath,
		Reference:   testReference(t),
		ReferenceID: "test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, geoJSON(t, res)
}

func mustPost(t *testing.T, url string, body []byte) IngestResult {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /ingest: status %d", resp.StatusCode)
	}
	var res IngestResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

func getReport(t *testing.T, url string) *ServeReport {
	t.Helper()
	resp, err := http.Get(url + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /report: status %d", resp.StatusCode)
	}
	var rep ServeReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return &rep
}

// TestDaemonStreamingEquivalence is the tentpole acceptance gate: posts
// ingested through /ingest — shuffled, in odd-sized chunks — must yield a
// /report whose Geolocation is bit-identical (same JSON bytes; Go's
// float64 JSON encoding is shortest-round-trip, so equal bytes mean equal
// bits) to the batch pipeline over the same trace.
func TestDaemonStreamingEquivalence(t *testing.T) {
	dir := t.TempDir()
	path := writeCrowd(t, dir)
	batchRes, wantGeo := batchGeo(t, path)

	ds, err := trace.ReadCSV(path, strings.NewReader(readFile(t, path)))
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 17, 400} {
		posts := make([]trace.Post, len(ds.Posts))
		copy(posts, ds.Posts)
		rand.New(rand.NewSource(int64(chunk))).Shuffle(len(posts), func(i, j int) {
			posts[i], posts[j] = posts[j], posts[i]
		})
		d, err := NewDaemon(ServeConfig{Reference: testReference(t), RefitDebounce: -1})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(d.Handler())
		accepted := 0
		for i := 0; i < len(posts); i += chunk {
			end := i + chunk
			if end > len(posts) {
				end = len(posts)
			}
			accepted += mustPost(t, srv.URL, ndjson(posts[i:end])).Accepted
		}
		if accepted != len(posts) {
			t.Fatalf("chunk %d: accepted %d of %d posts", chunk, accepted, len(posts))
		}
		rep := getReport(t, srv.URL)
		gotGeo, err := json.Marshal(rep.Geo)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotGeo) != wantGeo {
			t.Errorf("chunk %d: streamed report differs from batch geolocate output", chunk)
		}
		if rep.ActiveUsers != batchRes.ActiveUsers || rep.PolishRemoved != batchRes.PolishRemoved {
			t.Errorf("chunk %d: active/polish = %d/%d, batch %d/%d",
				chunk, rep.ActiveUsers, rep.PolishRemoved, batchRes.ActiveUsers, batchRes.PolishRemoved)
		}
		if rep.Gen != uint64(len(posts)) || rep.Posts != len(posts) {
			t.Errorf("chunk %d: gen/posts = %d/%d, want %d", chunk, rep.Gen, rep.Posts, len(posts))
		}
		srv.Close()
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestDaemonConcurrentIngestRace streams the crowd from several writer
// goroutines while readers hammer /place and /report (plus the background
// refitter at an aggressive debounce); once drained, the final report must
// still be bit-identical to the batch run. Run under -race this is the
// daemon's consistency gate.
func TestDaemonConcurrentIngestRace(t *testing.T) {
	dir := t.TempDir()
	path := writeCrowd(t, dir)
	_, wantGeo := batchGeo(t, path)

	ds, err := trace.ReadCSV(path, strings.NewReader(readFile(t, path)))
	if err != nil {
		t.Fatal(err)
	}
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	d, err := NewDaemon(ServeConfig{
		Reference:     testReference(t),
		RefitDebounce: 5 * time.Millisecond,
		CompactEvery:  512,
		Obs:           o,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Writer w streams every writers-th post, in chunks of 37.
			var shard []trace.Post
			for i := w; i < len(ds.Posts); i += writers {
				shard = append(shard, ds.Posts[i])
			}
			for i := 0; i < len(shard); i += 37 {
				end := i + 37
				if end > len(shard) {
					end = len(shard)
				}
				resp, err := http.Post(srv.URL+"/ingest", "application/x-ndjson", bytes.NewReader(ndjson(shard[i:end])))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("writer %d: status %d", w, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	stopRead := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			paths := []string{"/report", "/healthz", "/place/" + ds.Posts[r].UserID, "/place/nobody-here"}
			for i := 0; ; i++ {
				select {
				case <-stopRead:
					return
				default:
				}
				// Any status is fine mid-stream (503 before the first active
				// user, 404 for unknown users); the race detector and the
				// final equivalence check below are the assertions.
				resp, err := http.Get(srv.URL + paths[i%len(paths)])
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(r)
	}
	wg.Wait()
	close(stopRead)
	readers.Wait()

	rep := getReport(t, srv.URL)
	gotGeo, err := json.Marshal(rep.Geo)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotGeo) != wantGeo {
		t.Error("drained concurrent-ingest report differs from batch geolocate output")
	}
	if rep.Posts != len(ds.Posts) {
		t.Errorf("report posts = %d, want %d", rep.Posts, len(ds.Posts))
	}
	snap := o.Metrics.Snapshot()
	if snap.Counters["serve.posts_ingested"] != int64(len(ds.Posts)) {
		t.Errorf("serve.posts_ingested = %d, want %d", snap.Counters["serve.posts_ingested"], len(ds.Posts))
	}
	if snap.Counters["serve.compactions"] == 0 {
		t.Error("no compactions recorded despite CompactEvery=512")
	}
}

// TestDaemonSnapshotWarmStart checks the immutable-base checkpoint loop:
// a daemon with a snapshot path persists compacted state, and a fresh
// daemon booted on the same path reports identically without re-ingesting.
func TestDaemonSnapshotWarmStart(t *testing.T) {
	dir := t.TempDir()
	path := writeCrowd(t, dir)
	ds, err := trace.ReadCSV(path, strings.NewReader(readFile(t, path)))
	if err != nil {
		t.Fatal(err)
	}
	snap := dir + "/serve.dcs"
	d1, err := NewDaemon(ServeConfig{
		Reference:     testReference(t),
		SnapshotPath:  snap,
		CompactEvery:  256,
		RefitDebounce: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d1.Ingest(bytes.NewReader(ndjson(ds.Posts))); err != nil {
		t.Fatal(err)
	}
	rep1, err := d1.Report()
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	restored, err := trace.ReadSnapshotBytes(mustReadBytes(t, snap))
	if err != nil {
		t.Fatalf("final snapshot unreadable: %v", err)
	}
	if restored.NumPosts() != len(ds.Posts) {
		t.Fatalf("snapshot holds %d posts, want %d", restored.NumPosts(), len(ds.Posts))
	}

	d2, err := NewDaemon(ServeConfig{
		Reference:     testReference(t),
		SnapshotPath:  snap,
		RefitDebounce: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	h := d2.Healthz()
	if h.Posts != len(ds.Posts) || h.Gen != uint64(len(ds.Posts)) {
		t.Fatalf("warm start: posts/gen = %d/%d, want %d", h.Posts, h.Gen, len(ds.Posts))
	}
	rep2, err := d2.Report()
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := json.Marshal(rep1.Geo)
	g2, _ := json.Marshal(rep2.Geo)
	if !bytes.Equal(g1, g2) {
		t.Error("warm-started report differs from the pre-restart report")
	}
}

func mustReadBytes(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDaemonIngestAndPlaceEdges covers the lenient ingest contract and the
// /place endpoint's three answers: unknown (404), known-but-inactive, and
// active with a zone.
func TestDaemonIngestAndPlaceEdges(t *testing.T) {
	d, err := NewDaemon(ServeConfig{Reference: testReference(t), MinPosts: 3, RefitDebounce: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	// No crowd yet: /report is 503, /healthz is fine.
	resp, err := http.Get(srv.URL + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty /report status = %d, want 503", resp.StatusCode)
	}

	body := "{\"user_id\":\"alice\",\"time\":\"2018-03-01T12:00:00Z\"}\n" +
		"this is not json\n" +
		"\n" + // blank lines are not an error
		"{\"user_id\":\"\",\"time\":\"2018-03-01T12:00:00Z\"}\n" + // empty user
		"{\"user_id\":\"bob\"}\n" + // missing time
		"{\"user_id\":\"alice\",\"time\":\"2018-03-02T18:00:00Z\"}\n"
	res := mustPost(t, srv.URL, []byte(body))
	if res.Accepted != 2 || res.Rejected != 3 {
		t.Fatalf("accepted/rejected = %d/%d, want 2/3", res.Accepted, res.Rejected)
	}
	if res.FirstError == "" {
		t.Fatal("rejections did not surface a first_error")
	}
	if h := d.Healthz(); h.Rejected != 3 {
		t.Fatalf("healthz rejected_lines = %d, want 3", h.Rejected)
	}

	// Unknown user: 404.
	resp, err = http.Get(srv.URL + "/place/nobody")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/place/nobody status = %d, want 404", resp.StatusCode)
	}

	// Known but below threshold: active=false, no zone.
	pr, ok := d.Place("alice")
	if !ok || pr.Active || pr.ZoneIndex != nil || pr.Posts != 2 {
		t.Fatalf("inactive place = %+v ok=%v", pr, ok)
	}

	// One more post activates alice; the answer carries a zone, and a
	// repeat answer comes from the version-keyed cache (same value).
	mustPost(t, srv.URL, []byte("{\"user_id\":\"alice\",\"time\":\"2018-03-03T19:00:00Z\"}\n"))
	pr, ok = d.Place("alice")
	if !ok || !pr.Active || pr.ZoneIndex == nil || pr.Offset == "" {
		t.Fatalf("active place = %+v ok=%v", pr, ok)
	}
	again, _ := d.Place("alice")
	if *again.ZoneIndex != *pr.ZoneIndex || again.Offset != pr.Offset {
		t.Fatalf("cached place differs: %+v vs %+v", again, pr)
	}
}

// TestDaemonConfigErrors pins the constructor contract.
func TestDaemonConfigErrors(t *testing.T) {
	if _, err := NewDaemon(ServeConfig{}); err == nil {
		t.Fatal("missing Reference should fail")
	}
	if _, err := NewDaemon(ServeConfig{
		Reference: func() (*profile.GenericResult, error) { return nil, fmt.Errorf("boom") },
	}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("reference error not propagated: %v", err)
	}
}

// TestDaemonIngestResultConsistency hammers the daemon with single-post
// bodies, each introducing a brand-new user — the worst case for the
// Users/Posts totals race. Every response must satisfy Users <= Posts:
// the old finishIngest loaded gen before users, so a concurrent apply
// (which bumps gen first, then users) could surface a user whose post
// was not yet counted, reporting Users > Posts on a fresh stream.
func TestDaemonIngestResultConsistency(t *testing.T) {
	d, err := NewDaemon(ServeConfig{Reference: testReference(t), RefitDebounce: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const writers = 8
	const perWriter = 300
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				body := fmt.Sprintf("{\"user_id\":\"w%d-u%04d\",\"time\":\"2017-06-01T10:00:00Z\"}\n", w, i)
				res, err := d.Ingest(strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				if res.Accepted != 1 {
					t.Errorf("accepted %d, want 1", res.Accepted)
					return
				}
				if res.Users > res.Posts {
					t.Errorf("inconsistent totals: %d users > %d posts", res.Users, res.Posts)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	h := d.Healthz()
	if h.Posts != writers*perWriter || h.Users != writers*perWriter {
		t.Fatalf("final totals %d posts / %d users, want %d each", h.Posts, h.Users, writers*perWriter)
	}
}
