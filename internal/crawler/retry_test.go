package crawler

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"darkcrowd/internal/onion"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	t.Parallel()
	p := RetryPolicy{BaseDelay: 50 * time.Millisecond, MaxDelay: 300 * time.Millisecond, Jitter: -1}.withDefaults()
	tests := []struct {
		retry int
		want  time.Duration
	}{
		{1, 50 * time.Millisecond},
		{2, 100 * time.Millisecond},
		{3, 200 * time.Millisecond},
		{4, 300 * time.Millisecond}, // capped from 400ms
		{9, 300 * time.Millisecond}, // stays at the cap
	}
	for _, tt := range tests {
		if got := p.backoff(tt.retry, nil); got != tt.want {
			t.Errorf("backoff(%d) = %v, want %v", tt.retry, got, tt.want)
		}
	}
}

func TestBackoffJitterBoundedAndDeterministic(t *testing.T) {
	t.Parallel()
	p := RetryPolicy{}.withDefaults()
	draw := func() []time.Duration {
		rng := rand.New(rand.NewSource(p.Seed))
		var out []time.Duration
		for retry := 1; retry <= 6; retry++ {
			out = append(out, p.backoff(retry, rng))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	// Every jittered value stays within ±Jitter of the unjittered one.
	noJitter := RetryPolicy{Jitter: -1}.withDefaults()
	for i, got := range a {
		base := noJitter.backoff(i+1, nil)
		lo := time.Duration(float64(base) * (1 - p.Jitter))
		hi := time.Duration(float64(base) * (1 + p.Jitter))
		if got < lo || got > hi {
			t.Errorf("backoff(%d) = %v outside [%v, %v]", i+1, got, lo, hi)
		}
	}
}

func TestTransientClassification(t *testing.T) {
	t.Parallel()
	if !transientStatus(500) || !transientStatus(503) || !transientStatus(429) {
		t.Error("5xx/429 must be transient")
	}
	if transientStatus(200) || transientStatus(404) || transientStatus(403) {
		t.Error("2xx/4xx (except 429) must not be transient")
	}
	if !transientError(errors.New("connection reset")) {
		t.Error("transport errors are transient")
	}
	if !transientError(context.DeadlineExceeded) {
		t.Error("a per-request deadline firing is transient")
	}
	if transientError(context.Canceled) {
		t.Error("cancellation is never transient")
	}
	if transientError(nil) {
		t.Error("nil is not an error")
	}
}

// newFastCrawler returns a crawler whose retry pauses are recorded
// instead of slept.
func newFastCrawler(baseURL string) (*Crawler, *[]time.Duration) {
	var mu sync.Mutex
	var sleeps []time.Duration
	c := &Crawler{
		BaseURL: baseURL,
		Clock:   func() time.Time { return testNow },
		Sleep: func(d time.Duration) {
			mu.Lock()
			sleeps = append(sleeps, d)
			mu.Unlock()
		},
	}
	return c, &sleeps
}

func TestScrapeSurvivesScriptedTransportFaults(t *testing.T) {
	t.Parallel()
	f, _ := buildForum(t, time.Hour, 3)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// Fault the first requests several different ways; the crawl must
	// retry through all of them and produce the clean dataset.
	flaky := onion.NewFlakyTransport(http.DefaultTransport,
		onion.FlakyConnReset, onion.FlakyOK, onion.Flaky500,
		onion.Flaky503, onion.FlakyOK, onion.FlakyBodyCut)
	c, sleeps := newFastCrawler(srv.URL)
	c.HTTPClient = &http.Client{Transport: flaky}

	res, err := c.Scrape("flaky")
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset.NumPosts() != f.NumPosts()-1 {
		t.Errorf("scraped %d posts, forum has %d", res.Dataset.NumPosts(), f.NumPosts())
	}
	if res.Retries < 4 {
		t.Errorf("retries = %d, want at least the 4 scripted faults", res.Retries)
	}
	if res.Skipped != 0 || len(res.Errors) != 0 {
		t.Errorf("skipped = %d, errors = %v; faults were all transient", res.Skipped, res.Errors)
	}
	if len(*sleeps) == 0 {
		t.Error("retries must back off")
	}

	// Same scrape against a clean transport: identical dataset.
	clean := &Crawler{BaseURL: srv.URL, Clock: func() time.Time { return testNow }}
	want, err := clean.Scrape("flaky")
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Dataset.Posts) != len(res.Dataset.Posts) {
		t.Fatalf("faulted crawl: %d posts, clean crawl: %d", len(res.Dataset.Posts), len(want.Dataset.Posts))
	}
	for i := range want.Dataset.Posts {
		if want.Dataset.Posts[i] != res.Dataset.Posts[i] {
			t.Fatalf("post %d differs: %+v vs %+v", i, res.Dataset.Posts[i], want.Dataset.Posts[i])
		}
	}
}

func TestRetriesExhaustedSurfacesLastError(t *testing.T) {
	t.Parallel()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	c, _ := newFastCrawler(srv.URL)
	c.Retry = RetryPolicy{MaxAttempts: 3}
	_, err := c.get(context.Background(), "/")
	if err == nil {
		t.Fatal("permanently-503 server must fail")
	}
	if !strings.Contains(err.Error(), "3 attempts") || !strings.Contains(err.Error(), "status 503") {
		t.Errorf("error should report attempts and final status: %v", err)
	}
	if !strings.Contains(err.Error(), srv.URL) {
		t.Errorf("error should carry the URL: %v", err)
	}
}

func TestNonTransientStatusDoesNotRetry(t *testing.T) {
	t.Parallel()
	var calls int
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		mu.Unlock()
		http.NotFound(w, r)
	}))
	defer srv.Close()
	c, _ := newFastCrawler(srv.URL)
	_, err := c.get(context.Background(), "/missing")
	if err == nil {
		t.Fatal("404 must error")
	}
	if !strings.Contains(err.Error(), "status 404") || !strings.Contains(err.Error(), srv.URL+"/missing") {
		t.Errorf("error should carry final URL and status: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("404 was attempted %d times; client errors must not retry", calls)
	}
}

func TestPerRequestTimeoutRecovers(t *testing.T) {
	t.Parallel()
	f, _ := buildForum(t, 0, 2)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	// First request hangs; the per-request timeout must fire and the
	// retry succeed.
	flaky := onion.NewFlakyTransport(http.DefaultTransport, onion.FlakyHang)
	c, _ := newFastCrawler(srv.URL)
	c.HTTPClient = &http.Client{Transport: flaky}
	c.Timeout = 50 * time.Millisecond
	if _, err := c.MeasureOffset(); err != nil {
		t.Fatalf("hang + retry: %v", err)
	}
	if flaky.Calls() < 2 {
		t.Errorf("transport saw %d calls, want the hung attempt plus a retry", flaky.Calls())
	}
}

func TestContextCancellationAborts(t *testing.T) {
	t.Parallel()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	c := &Crawler{BaseURL: srv.URL}
	_, err := c.get(ctx, "/")
	if err == nil {
		t.Fatal("cancelled request must fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("want context.Canceled, got %v", err)
	}
}

func TestBodyCapRejectsOversizedPages(t *testing.T) {
	t.Parallel()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(strings.Repeat("x", 4096)))
	}))
	defer srv.Close()
	c, _ := newFastCrawler(srv.URL)
	c.MaxBodyBytes = 1024
	_, err := c.get(context.Background(), "/")
	if !errors.Is(err, errBodyTooLarge) {
		t.Fatalf("want errBodyTooLarge, got %v", err)
	}
}

func TestPolitenessRateLimits(t *testing.T) {
	t.Parallel()
	f, _ := buildForum(t, 0, 2)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	c, sleeps := newFastCrawler(srv.URL)
	c.MinInterval = 500 * time.Millisecond
	if _, err := c.MeasureOffset(); err != nil {
		t.Fatal(err)
	}
	// The probe makes several requests; all but the first must have
	// queued behind the politeness gate.
	if len(*sleeps) < 2 {
		t.Fatalf("recorded %d politeness pauses, want several", len(*sleeps))
	}
	for i, d := range *sleeps {
		if d <= 0 || d > 10*c.MinInterval {
			t.Errorf("pause %d = %v, implausible for MinInterval %v", i, d, c.MinInterval)
		}
	}
}

func TestMonitorPollContextUsesRobustLayer(t *testing.T) {
	t.Parallel()
	f, _ := buildForum(t, 0, 2)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	flaky := onion.NewFlakyTransport(http.DefaultTransport, onion.Flaky503)
	c, _ := newFastCrawler(srv.URL)
	c.HTTPClient = &http.Client{Transport: flaky}
	m := NewMonitor(c, "watch")
	if _, err := m.PollContext(context.Background()); err != nil {
		t.Fatalf("poll through a transient 503: %v", err)
	}
	if flaky.Faults() != 1 {
		t.Errorf("faults fired = %d, want 1", flaky.Faults())
	}
}
