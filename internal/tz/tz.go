// Package tz implements the time-zone and daylight-saving-time model used
// throughout the reproduction.
//
// The paper reasons about the 24 integer UTC offsets ("time zones of the
// world") and about daylight saving time (DST) as observed in the northern
// and the southern hemisphere. This package provides:
//
//   - Offset: an integer UTC offset in hours, normalized to [-11, +12];
//   - DSTRule: a hemisphere-dependent DST window;
//   - Region: a named region (country or state) with a base offset, a DST
//     rule and a holiday calendar;
//   - a catalogue of the 14 regions of Table I plus the additional regions
//     discussed in the evaluation (Russia/UTC+3, the Dream Market and Pedo
//     Support Community components, ...).
//
// The package deliberately does not depend on the IANA tz database: the
// paper's methodology only needs whole-hour offsets and the coarse
// March-October (northern) versus October-February (southern) DST windows,
// and an explicit model keeps the reproduction self-contained and
// deterministic.
package tz

import (
	"fmt"
	"time"
)

// HoursPerDay is the number of hourly bins in an activity profile.
const HoursPerDay = 24

// Offset is an integer UTC offset in whole hours.
//
// The paper works with the 24 canonical time zones UTC-11 ... UTC+12. An
// Offset outside that range is normalized modulo 24 into it (UTC+13 is the
// same wall-clock zone as UTC-11).
type Offset int

// MinOffset and MaxOffset bound the canonical offset range.
const (
	MinOffset Offset = -11
	MaxOffset Offset = 12
)

// Normalize maps o into the canonical range [-11, +12] modulo 24.
func (o Offset) Normalize() Offset {
	v := int(o) % HoursPerDay
	if v > int(MaxOffset) {
		v -= HoursPerDay
	}
	if v < int(MinOffset) {
		v += HoursPerDay
	}
	return Offset(v)
}

// String renders the offset in the paper's notation, e.g. "UTC+1", "UTC-6"
// or "UTC".
func (o Offset) String() string {
	n := o.Normalize()
	switch {
	case n == 0:
		return "UTC"
	case n > 0:
		return fmt.Sprintf("UTC+%d", int(n))
	default:
		return fmt.Sprintf("UTC%d", int(n))
	}
}

// CircularDistance returns the distance in hours between two offsets on the
// 24-hour circle, in [0, 12].
func (o Offset) CircularDistance(other Offset) int {
	d := int(o.Normalize()) - int(other.Normalize())
	if d < 0 {
		d = -d
	}
	if d > HoursPerDay/2 {
		d = HoursPerDay - d
	}
	return d
}

// AllOffsets returns the 24 canonical offsets in ascending order,
// UTC-11 ... UTC+12.
func AllOffsets() []Offset {
	out := make([]Offset, 0, HoursPerDay)
	for o := MinOffset; o <= MaxOffset; o++ {
		out = append(out, o)
	}
	return out
}

// Hemisphere tells which DST convention a region follows.
type Hemisphere int

// Hemisphere values. A region with HemisphereNone either straddles the
// equator or simply does not observe DST.
const (
	HemisphereNone Hemisphere = iota + 1
	HemisphereNorth
	HemisphereSouth
)

// String implements fmt.Stringer.
func (h Hemisphere) String() string {
	switch h {
	case HemisphereNorth:
		return "north"
	case HemisphereSouth:
		return "south"
	case HemisphereNone:
		return "none"
	default:
		return fmt.Sprintf("Hemisphere(%d)", int(h))
	}
}

// DSTRule describes when a region advances its clock by one hour.
//
// The reproduction uses the coarse model from the paper (§V-F): northern
// regions observe DST from (about) late March to late October, southern
// regions from (about) early October to mid February. Rules are expressed
// as "the n-th Sunday of a month" boundaries.
type DSTRule struct {
	// Observed is false for regions that do not use DST at all
	// (e.g. Japan, Malaysia, Turkey after 2016).
	Observed bool
	// Hemisphere selects the window orientation; it must be
	// HemisphereNorth or HemisphereSouth when Observed is true.
	Hemisphere Hemisphere
	// StartMonth/StartWeek and EndMonth/EndWeek give the Sunday-based
	// boundaries. Week > 0 counts from the start of the month (1 = first
	// Sunday); Week = -1 means the last Sunday of the month.
	StartMonth time.Month
	StartWeek  int
	EndMonth   time.Month
	EndWeek    int
}

// NorthernDST is the standard EU/US-style rule: DST between the last Sunday
// of March and the last Sunday of October.
func NorthernDST() DSTRule {
	return DSTRule{
		Observed:   true,
		Hemisphere: HemisphereNorth,
		StartMonth: time.March, StartWeek: -1,
		EndMonth: time.October, EndWeek: -1,
	}
}

// SouthernDST is the paper's southern-hemisphere rule: DST between the
// first Sunday of October and the third Sunday of February.
func SouthernDST() DSTRule {
	return DSTRule{
		Observed:   true,
		Hemisphere: HemisphereSouth,
		StartMonth: time.October, StartWeek: 1,
		EndMonth: time.February, EndWeek: 3,
	}
}

// NoDST is the rule of regions that keep standard time all year.
func NoDST() DSTRule {
	return DSTRule{Observed: false, Hemisphere: HemisphereNone}
}

// nthSunday returns the date (at 00:00 UTC) of the n-th Sunday of the given
// month and year; n = -1 selects the last Sunday.
func nthSunday(year int, month time.Month, n int) time.Time {
	if n == -1 {
		// Last Sunday: walk back from the last day of the month.
		last := time.Date(year, month+1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, -1)
		back := int(last.Weekday()) // Sunday == 0
		return last.AddDate(0, 0, -back)
	}
	first := time.Date(year, month, 1, 0, 0, 0, 0, time.UTC)
	fwd := (7 - int(first.Weekday())) % 7 // days until first Sunday
	return first.AddDate(0, 0, fwd+7*(n-1))
}

// InEffect reports whether DST is in effect under rule r at UTC instant t
// for a region whose standard offset is base. The comparison is done on the
// region's standard local calendar.
func (r DSTRule) InEffect(t time.Time, base Offset) bool {
	if !r.Observed {
		return false
	}
	local := t.Add(time.Duration(base.Normalize()) * time.Hour)
	y := local.Year()
	start := nthSunday(y, r.StartMonth, r.StartWeek)
	end := nthSunday(y, r.EndMonth, r.EndWeek)
	switch r.Hemisphere {
	case HemisphereSouth:
		// Window wraps the new year: Oct(y) .. Feb(y+1). At instant
		// `local` we are inside DST either if we are past this year's
		// start, or before this year's end (which belongs to the window
		// started the previous year).
		return !local.Before(start) || local.Before(end)
	default:
		return !local.Before(start) && local.Before(end)
	}
}

// Region is a geographic region with a known time zone, DST behaviour and
// holiday calendar. It corresponds to the "countries and states" rows of
// Table I and to the additional regions of the evaluation.
type Region struct {
	// Name is the human-readable name used by the paper
	// (e.g. "Germany", "New South Wales").
	Name string
	// Code is a short stable identifier (e.g. "de", "us-ca").
	Code string
	// StandardOffset is the region's UTC offset outside DST.
	StandardOffset Offset
	// DST is the region's daylight-saving rule.
	DST DSTRule
	// Holidays lists the yearly low-activity windows filtered out when
	// building region profiles (§IV).
	Holidays []HolidayWindow
}

// HolidayWindow is a yearly recurring low-activity period, expressed as
// inclusive month/day boundaries on the region's local calendar. A window
// may wrap the end of the year (e.g. Dec 20 - Jan 6).
type HolidayWindow struct {
	Name       string
	StartMonth time.Month
	StartDay   int
	EndMonth   time.Month
	EndDay     int
}

// Contains reports whether the local date (month, day) falls inside the
// window, handling year-wrapping windows.
func (w HolidayWindow) Contains(month time.Month, day int) bool {
	start := int(w.StartMonth)*100 + w.StartDay
	end := int(w.EndMonth)*100 + w.EndDay
	cur := int(month)*100 + day
	if start <= end {
		return cur >= start && cur <= end
	}
	return cur >= start || cur <= end
}

// OffsetAt returns the region's effective UTC offset at instant t,
// accounting for DST.
func (r Region) OffsetAt(t time.Time) Offset {
	o := r.StandardOffset
	if r.DST.InEffect(t, r.StandardOffset) {
		o++
	}
	return o.Normalize()
}

// LocalTime converts a UTC instant to the region's civil local time,
// represented as a time.Time still carrying the UTC location (only the
// wall-clock fields are meaningful).
func (r Region) LocalTime(t time.Time) time.Time {
	return t.Add(time.Duration(r.OffsetAt(t)) * time.Hour)
}

// LocalHour returns the region's local hour of day (0-23) at UTC instant t.
func (r Region) LocalHour(t time.Time) int {
	return r.LocalTime(t).Hour()
}

// IsHoliday reports whether UTC instant t falls inside one of the region's
// holiday windows on the local calendar.
func (r Region) IsHoliday(t time.Time) bool {
	local := r.LocalTime(t)
	for _, w := range r.Holidays {
		if w.Contains(local.Month(), local.Day()) {
			return true
		}
	}
	return false
}

// Hemisphere returns the hemisphere the region's DST rule reveals,
// HemisphereNone if the region does not observe DST.
func (r Region) Hemisphere() Hemisphere {
	if !r.DST.Observed {
		return HemisphereNone
	}
	return r.DST.Hemisphere
}
