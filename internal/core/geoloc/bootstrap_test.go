package geoloc

import (
	"math"
	"reflect"
	"testing"

	"darkcrowd/internal/stats"
)

// bootstrapFixture builds a two-region crowd, places it, and fits the point
// mixture the bootstrap will wrap intervals around.
func bootstrapFixture(t *testing.T) (*Placement, stats.Mixture) {
	t.Helper()
	profiles, generic := randomProfiles(11, 120)
	placement, err := PlaceUsers(profiles, generic, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	geo, err := FitPlacement(placement, GeolocateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return placement, geo.Mixture
}

// TestBootstrapDeterministicAcrossWorkers is the repo-wide determinism
// property applied to the bootstrap: the intervals must be bit-for-bit
// identical at every worker count, because replicate streams are seeded by
// replicate index and the percentile reduction happens after the join.
func TestBootstrapDeterministicAcrossWorkers(t *testing.T) {
	placement, point := bootstrapFixture(t)
	opts := BootstrapOptions{Replicates: 64, Seed: 42}
	var want *BootstrapResult
	for _, workers := range []int{1, 2, 7, 16} {
		opts.Parallelism = workers
		got, err := BootstrapMixtureCI(placement, point, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: bootstrap result differs from workers=1:\n got %+v\nwant %+v", workers, got, want)
		}
		for j := range got.Components {
			g, w := got.Components[j], want.Components[j]
			for _, pair := range [][2]float64{
				{g.WeightLo, w.WeightLo}, {g.WeightHi, w.WeightHi},
				{g.OffsetLo, w.OffsetLo}, {g.OffsetHi, w.OffsetHi},
			} {
				if math.Float64bits(pair[0]) != math.Float64bits(pair[1]) {
					t.Fatalf("workers=%d component %d: interval bits differ: %x vs %x",
						workers, j, math.Float64bits(pair[0]), math.Float64bits(pair[1]))
				}
			}
		}
	}
}

// TestBootstrapIntervalsSane checks the intervals' shape: one CI per point
// component, ordered bounds, weights inside [0,1], and the point estimates
// echoed verbatim.
func TestBootstrapIntervalsSane(t *testing.T) {
	placement, point := bootstrapFixture(t)
	res, err := BootstrapMixtureCI(placement, point, BootstrapOptions{Replicates: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicates != 64 || res.Seed != 1 || res.Level != 0.95 {
		t.Fatalf("echo fields wrong: %+v", res)
	}
	if len(res.Components) != len(point) {
		t.Fatalf("%d CIs for %d components", len(res.Components), len(point))
	}
	for j, ci := range res.Components {
		if ci.WeightLo > ci.WeightHi || ci.OffsetLo > ci.OffsetHi {
			t.Fatalf("component %d: unordered interval %+v", j, ci)
		}
		if ci.WeightLo < 0 || ci.WeightHi > 1 {
			t.Fatalf("component %d: weight interval outside [0,1]: %+v", j, ci)
		}
		if math.Float64bits(ci.Weight) != math.Float64bits(point[j].Weight) {
			t.Fatalf("component %d: point weight not echoed", j)
		}
		if ci.OffsetLo > ci.Offset || ci.Offset > ci.OffsetHi {
			// Percentile bootstrap can in principle exclude the point, but a
			// seeded two-region fixture with 120 users should not.
			t.Fatalf("component %d: point offset %g outside CI [%g, %g]", j, ci.Offset, ci.OffsetLo, ci.OffsetHi)
		}
	}
}

// TestBootstrapSeedChangesIntervals pins that the seed actually steers the
// resampling: two different seeds must not produce identical intervals.
func TestBootstrapSeedChangesIntervals(t *testing.T) {
	placement, point := bootstrapFixture(t)
	a, err := BootstrapMixtureCI(placement, point, BootstrapOptions{Replicates: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BootstrapMixtureCI(placement, point, BootstrapOptions{Replicates: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Components, b.Components) {
		t.Fatal("different seeds produced identical intervals")
	}
}

// TestBootstrapRejectsBadInputs covers the argument contract.
func TestBootstrapRejectsBadInputs(t *testing.T) {
	placement, point := bootstrapFixture(t)
	if _, err := BootstrapMixtureCI(nil, point, BootstrapOptions{}); err == nil {
		t.Fatal("nil placement accepted")
	}
	if _, err := BootstrapMixtureCI(placement, nil, BootstrapOptions{}); err == nil {
		t.Fatal("empty mixture accepted")
	}
	if _, err := BootstrapMixtureCI(placement, point, BootstrapOptions{Level: 1.5}); err == nil {
		t.Fatal("level outside (0,1) accepted")
	}
	if _, err := BootstrapMixtureCI(placement, point, BootstrapOptions{Replicates: -3}); err == nil {
		t.Fatal("negative replicates accepted")
	}
}

// TestSplitmixBoundedRand pins the RNG primitives: the stream is the
// published SplitMix64 sequence and the bounded reduction stays in range.
func TestSplitmixBoundedRand(t *testing.T) {
	// Reference values for seed 0 from the SplitMix64 specification.
	state := uint64(0)
	want := []uint64{0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f}
	for i, w := range want {
		if got := splitmix64(&state); got != w {
			t.Fatalf("splitmix64 draw %d = %#x, want %#x", i, got, w)
		}
	}
	state = 12345
	for i := 0; i < 1000; i++ {
		if v := boundedRand(&state, 7); v >= 7 {
			t.Fatalf("boundedRand returned %d for bound 7", v)
		}
	}
}
