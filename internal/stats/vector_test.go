package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSumAndMean(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name     string
		in       []float64
		wantSum  float64
		wantMean float64
	}{
		{"single", []float64{5}, 5, 5},
		{"simple", []float64{1, 2, 3}, 6, 2},
		{"negatives", []float64{-1, 1}, 0, 0},
		{"fractions", []float64{0.25, 0.75}, 1, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Sum(tt.in); !almostEqual(got, tt.wantSum, 1e-12) {
				t.Errorf("Sum = %g, want %g", got, tt.wantSum)
			}
			got, err := Mean(tt.in)
			if err != nil {
				t.Fatalf("Mean: %v", err)
			}
			if !almostEqual(got, tt.wantMean, 1e-12) {
				t.Errorf("Mean = %g, want %g", got, tt.wantMean)
			}
		})
	}
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) should fail")
	}
}

func TestStdDev(t *testing.T) {
	t.Parallel()
	got, err := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", got)
	}
	if _, err := StdDev(nil); err == nil {
		t.Error("StdDev(nil) should fail")
	}
	m, s, err := MeanStdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m, 5, 1e-12) || !almostEqual(s, 2, 1e-12) {
		t.Errorf("MeanStdDev = (%g, %g), want (5, 2)", m, s)
	}
}

func TestNormalize(t *testing.T) {
	t.Parallel()
	got, err := Normalize([]float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.25, 0.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if _, err := Normalize(nil); err == nil {
		t.Error("Normalize(nil) should fail")
	}
	if _, err := Normalize([]float64{0, 0}); err == nil {
		t.Error("Normalize(zeros) should fail")
	}
	if _, err := Normalize([]float64{1, -1}); err == nil {
		t.Error("Normalize with negative mass should fail")
	}
}

func TestNormalizeProperty(t *testing.T) {
	t.Parallel()
	sumsToOne := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var total float64
		for i, r := range raw {
			xs[i] = float64(r)
			total += xs[i]
		}
		if total == 0 {
			return true
		}
		out, err := Normalize(xs)
		if err != nil {
			return false
		}
		return almostEqual(Sum(out), 1, 1e-9)
	}
	if err := quick.Check(sumsToOne, nil); err != nil {
		t.Error(err)
	}
}

func TestArgMax(t *testing.T) {
	t.Parallel()
	tests := []struct {
		in   []float64
		want int
	}{
		{nil, -1},
		{[]float64{3}, 0},
		{[]float64{1, 5, 2}, 1},
		{[]float64{5, 5, 2}, 0}, // tie breaks low
		{[]float64{-3, -1, -2}, 1},
	}
	for _, tt := range tests {
		if got := ArgMax(tt.in); got != tt.want {
			t.Errorf("ArgMax(%v) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestRotate(t *testing.T) {
	t.Parallel()
	in := []float64{0, 1, 2, 3}
	tests := []struct {
		k    int
		want []float64
	}{
		{0, []float64{0, 1, 2, 3}},
		{1, []float64{1, 2, 3, 0}},
		{-1, []float64{3, 0, 1, 2}},
		{4, []float64{0, 1, 2, 3}},
		{5, []float64{1, 2, 3, 0}},
		{-5, []float64{3, 0, 1, 2}},
	}
	for _, tt := range tests {
		got := Rotate(in, tt.k)
		for i := range tt.want {
			if got[i] != tt.want[i] {
				t.Errorf("Rotate(%d) = %v, want %v", tt.k, got, tt.want)
				break
			}
		}
	}
	if len(Rotate(nil, 3)) != 0 {
		t.Error("Rotate(nil) should be empty")
	}
}

func TestRotateInverseProperty(t *testing.T) {
	t.Parallel()
	inverse := func(raw []uint8, k int8) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		back := Rotate(Rotate(xs, int(k)), -int(k))
		for i := range xs {
			if back[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(inverse, nil); err != nil {
		t.Error(err)
	}
}

func TestPearson(t *testing.T) {
	t.Parallel()
	t.Run("perfect correlation", func(t *testing.T) {
		r, err := Pearson([]float64{1, 2, 3}, []float64{2, 4, 6})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(r, 1, 1e-12) {
			t.Errorf("r = %g, want 1", r)
		}
	})
	t.Run("perfect anticorrelation", func(t *testing.T) {
		r, err := Pearson([]float64{1, 2, 3}, []float64{3, 2, 1})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(r, -1, 1e-12) {
			t.Errorf("r = %g, want -1", r)
		}
	})
	t.Run("uncorrelated", func(t *testing.T) {
		r, err := Pearson([]float64{1, 2, 1, 2}, []float64{1, 1, 2, 2})
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(r, 0, 1e-12) {
			t.Errorf("r = %g, want 0", r)
		}
	})
	t.Run("errors", func(t *testing.T) {
		if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
			t.Error("length mismatch should fail")
		}
		if _, err := Pearson(nil, nil); err == nil {
			t.Error("empty should fail")
		}
		if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
			t.Error("zero variance should fail")
		}
	})
}

func TestPearsonShiftInvarianceProperty(t *testing.T) {
	t.Parallel()
	// r(x, y) == r(ax+b, y) for a > 0: the core reason profile comparison
	// by correlation is insensitive to activity volume.
	prop := func(raw []uint8) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			ys[i] = float64(i % 7)
		}
		r1, err1 := Pearson(xs, ys)
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = 3*xs[i] + 11
		}
		r2, err2 := Pearson(scaled, ys)
		if err1 != nil || err2 != nil {
			return (err1 == nil) == (err2 == nil)
		}
		return almostEqual(r1, r2, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPointwiseDistanceStats(t *testing.T) {
	t.Parallel()
	avg, std, err := PointwiseDistanceStats([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if avg != 0 || std != 0 {
		t.Errorf("identical curves: avg=%g std=%g, want 0, 0", avg, std)
	}
	avg, std, err = PointwiseDistanceStats([]float64{0, 0}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(avg, 2, 1e-12) || !almostEqual(std, 1, 1e-12) {
		t.Errorf("avg=%g std=%g, want 2, 1", avg, std)
	}
	if _, _, err := PointwiseDistanceStats([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := PointwiseDistanceStats(nil, nil); err == nil {
		t.Error("empty should fail")
	}
}

func TestEntropy(t *testing.T) {
	t.Parallel()
	uniform := make([]float64, 24)
	for i := range uniform {
		uniform[i] = 1.0 / 24
	}
	h, err := Entropy(uniform)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(h, math.Log2(24), 1e-9) {
		t.Errorf("uniform entropy = %g, want log2(24)", h)
	}
	peaked := make([]float64, 24)
	peaked[5] = 1
	h, err = Entropy(peaked)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Errorf("point-mass entropy = %g, want 0", h)
	}
	if _, err := Entropy(nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := Entropy([]float64{0.9}); err == nil {
		t.Error("non-normalized should fail")
	}
	if _, err := Entropy([]float64{1.5, -0.5}); err == nil {
		t.Error("negative probability should fail")
	}
}

func TestKLDivergence(t *testing.T) {
	t.Parallel()
	p := []float64{0.5, 0.5}
	q := []float64{0.5, 0.5}
	d, err := KLDivergence(p, q)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0, 1e-12) {
		t.Errorf("D(p||p) = %g", d)
	}
	d, err = KLDivergence([]float64{1, 0}, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 1, 1e-12) {
		t.Errorf("D = %g, want 1 bit", d)
	}
	d, err = KLDivergence([]float64{0.5, 0.5}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(d, 1) {
		t.Errorf("missing support should be +Inf, got %g", d)
	}
	if _, err := KLDivergence([]float64{1}, []float64{0.5, 0.5}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := KLDivergence(nil, nil); err == nil {
		t.Error("empty should fail")
	}
	if _, err := KLDivergence([]float64{-1, 2}, []float64{0.5, 0.5}); err == nil {
		t.Error("negative probability should fail")
	}
}
