// Package darkcrowd is the public API of the reproduction of "Time-Zone
// Geolocation of Crowds in the Dark Web" (La Morgia, Mei, Raponi, Stefa —
// IEEE ICDCS 2018).
//
// The library geolocates the *crowd* of an anonymous forum — not single
// users — from nothing but the timestamps of its posts:
//
//  1. Build a 24-hour activity profile per user (Eq. 1 of the paper) and a
//     generic reference profile from a labelled dataset (Eq. 2).
//  2. Polish the crowd: drop casual users (fewer than 30 posts) and
//     flat-profile bots (§IV-C).
//  3. Place every user on the time zone whose reference profile is closest
//     under the circular Earth Mover's Distance (§IV-A).
//  4. Fit the placement histogram with a Gaussian mixture (EM + BIC); the
//     component means are the time zones the crowd lives in (§IV-B).
//  5. Optionally, tell northern- from southern-hemisphere users by their
//     daylight-saving-time signature (§V-F).
//
// Quick start:
//
//	labelled, _ := darkcrowd.SyntheticTwitterDataset(1, 20)
//	ref, _ := darkcrowd.BuildReference(labelled)
//	report, _ := darkcrowd.GeolocateCrowd(anonymousPosts, ref, darkcrowd.Options{})
//	for _, c := range report.Components {
//	    fmt.Println(c) // "68% of the crowd at UTC+1 (...)"
//	}
//
// The heavy lifting lives in the internal packages (internal/core/...,
// internal/stats, internal/tz); this package wires them into the workflow
// above. The substrates — the simulated Tor network (internal/onion), the
// forum engine (internal/forum), the scraper (internal/crawler) and the
// behavioural crowd generator (internal/synth) — are exercised by the
// cmd/ binaries, the examples/ programs and the benchmark harness.
package darkcrowd

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/obs"
	"darkcrowd/internal/stats"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

// Post is one activity event: a user posted at a UTC instant.
type Post = trace.Post

// Dataset is a named activity trace with optional ground-truth labels.
type Dataset = trace.Dataset

// Profile is a 24-bin activity distribution (Eq. 1/2 of the paper).
type Profile = profile.Profile

// Component is one uncovered region of a crowd: its share, its UTC offset
// and the spread of its placement.
type Component = geoloc.Component

// Hemisphere is the §V-F DST-based ruling for a user.
type Hemisphere = tz.Hemisphere

// Hemisphere values.
const (
	HemisphereNone  = tz.HemisphereNone
	HemisphereNorth = tz.HemisphereNorth
	HemisphereSouth = tz.HemisphereSouth
)

// Reference is the reusable output of BuildReference: the generic
// local-frame activity profile and the per-region profiles it was built
// from.
type Reference struct {
	// Generic is the local-frame reference pattern; shifted copies of it
	// are the 24 time-zone profiles.
	Generic Profile
	// PerRegion maps region codes to their measured population profiles.
	PerRegion map[string]Profile
	// ActiveUsers counts threshold-surviving users per region (Table I).
	ActiveUsers map[string]int
}

// Options tunes GeolocateCrowd.
type Options struct {
	// MinPosts is the active-user threshold (default 30, the paper's
	// choice).
	MinPosts int
	// SkipPolish disables flat-profile (bot) removal.
	SkipPolish bool
	// MaxComponents bounds the mixture search (default 4).
	MaxComponents int
	// Parallelism is the worker count for the profile-building, placement
	// and EM stages: 0 uses every core (GOMAXPROCS), 1 forces the
	// sequential path. The report is bit-for-bit identical for every
	// setting — workers fill disjoint shards of index-addressed buffers
	// and all merging happens in deterministic user order.
	Parallelism int
	// Context, when non-nil, cancels a long geolocation run.
	Context context.Context
	// Obs, when non-nil, receives pipeline metrics and stage spans
	// (profile-build, polish, placement, em-select) — see internal/obs.
	// Observation only: the report is bit-for-bit identical with or
	// without it.
	Obs *obs.Observer
}

// Report is the outcome of geolocating a crowd.
type Report struct {
	// Components lists the uncovered regions, heaviest first.
	Components []Component
	// PlacementHistogram is the fraction of the crowd per time zone,
	// indexed by zone (index 0 = UTC-11 ... index 23 = UTC+12).
	PlacementHistogram []float64
	// ActiveUsers is the number of users that survived polishing.
	ActiveUsers int
	// RemovedUsers lists users dropped as flat profiles.
	RemovedUsers []string
	// AvgFitDistance and StdFitDistance are the Table II fit-quality
	// metrics.
	AvgFitDistance, StdFitDistance float64
}

// BuildReference builds the generic reference profile from a labelled
// dataset (users mapped to region codes from the built-in catalogue; see
// RegionCodes). The per-region profile builds run on one worker per core;
// the result is deterministic regardless.
func BuildReference(labelled *Dataset) (*Reference, error) {
	res, err := profile.BuildGeneric(labelled, profile.GenericOptions{})
	if err != nil {
		return nil, fmt.Errorf("darkcrowd: build reference: %w", err)
	}
	return &Reference{
		Generic:     res.Generic,
		PerRegion:   res.PerRegion,
		ActiveUsers: res.ActiveUsers,
	}, nil
}

// GeolocateCrowd runs the full pipeline on an anonymous crowd's posts
// (timestamps must be UTC-normalized, e.g. by the crawler's offset probe).
func GeolocateCrowd(posts []Post, ref *Reference, opts Options) (*Report, error) {
	if ref == nil {
		return nil, fmt.Errorf("darkcrowd: nil reference")
	}
	ds := &Dataset{Name: "crowd", Posts: posts}
	profiles, err := profile.BuildUserProfiles(ds, profile.BuildOptions{
		MinPosts:    opts.MinPosts,
		Parallelism: opts.Parallelism,
		Context:     opts.Context,
		Obs:         opts.Obs,
	})
	if err != nil {
		return nil, fmt.Errorf("darkcrowd: build crowd profiles: %w", err)
	}
	report := &Report{}
	if !opts.SkipPolish {
		po := opts.Obs.Stage("polish")
		polished, err := profile.Polish(profiles, ref.Generic, true)
		if err != nil {
			po.End()
			return nil, fmt.Errorf("darkcrowd: polish crowd: %w", err)
		}
		profiles = polished.Kept
		report.RemovedUsers = polished.Removed
		po.AddItems(int64(len(polished.Kept)))
		po.Counter("polish.users_kept").Add(int64(len(polished.Kept)))
		po.Counter("polish.users_removed").Add(int64(len(polished.Removed)))
		po.End()
	}
	if len(profiles) == 0 {
		return nil, fmt.Errorf("darkcrowd: no users survive polishing")
	}
	geo, err := geoloc.Geolocate(profiles, ref.Generic, geoloc.GeolocateOptions{
		MaxComponents: opts.MaxComponents,
		Place: geoloc.PlaceOptions{
			Parallelism: opts.Parallelism,
			Context:     opts.Context,
		},
		EM:  stats.EMConfig{Parallelism: opts.Parallelism},
		Obs: opts.Obs,
	})
	if err != nil {
		return nil, fmt.Errorf("darkcrowd: geolocate: %w", err)
	}
	report.Components = geo.Components
	report.PlacementHistogram = geo.Placement.Histogram
	report.ActiveUsers = len(profiles)
	report.AvgFitDistance = geo.AvgDistance
	report.StdFitDistance = geo.StdDistance
	return report, nil
}

// ClassifyHemisphere runs the §V-F DST test on one user's posts.
func ClassifyHemisphere(posts []Post) (Hemisphere, error) {
	verdict, err := geoloc.ClassifyHemisphere(posts, geoloc.HemisphereOptions{})
	if err != nil {
		return HemisphereNone, fmt.Errorf("darkcrowd: classify hemisphere: %w", err)
	}
	return verdict.Hemisphere, nil
}

// SyntheticTwitterDataset generates the labelled stand-in for the paper's
// Twitter dataset: the 14 Table I regions with the paper's active-user
// counts divided by scale. Deterministic under the seed.
func SyntheticTwitterDataset(seed int64, scale int) (*Dataset, error) {
	ds, err := synth.TwitterDataset(seed, synth.TwitterOptions{Scale: scale})
	if err != nil {
		return nil, fmt.Errorf("darkcrowd: synthetic Twitter dataset: %w", err)
	}
	return ds, nil
}

// SyntheticCrowd generates an anonymous crowd living in the given region
// codes with the given per-region user counts, posting over one year.
// Deterministic under the seed.
func SyntheticCrowd(seed int64, users map[string]int, postsPerUser float64) (*Dataset, error) {
	var groups []synth.Group
	for _, code := range sortedCodes(users) {
		region, err := tz.ByCode(code)
		if err != nil {
			return nil, fmt.Errorf("darkcrowd: synthetic crowd: %w", err)
		}
		groups = append(groups, synth.Group{
			Region:       region,
			Users:        users[code],
			PostsPerUser: postsPerUser,
		})
	}
	ds, err := synth.GenerateCrowd(seed, synth.CrowdConfig{Name: "synthetic-crowd", Groups: groups})
	if err != nil {
		return nil, fmt.Errorf("darkcrowd: synthetic crowd: %w", err)
	}
	return ds, nil
}

// RegionCodes lists the region codes of the built-in catalogue with their
// display names and standard offsets.
func RegionCodes() map[string]string {
	out := make(map[string]string)
	for _, r := range tz.Catalogue() {
		out[r.Code] = fmt.Sprintf("%s (%s)", r.Name, r.StandardOffset)
	}
	return out
}

// OffsetOfZoneIndex translates a PlacementHistogram index to its UTC
// offset in hours.
func OffsetOfZoneIndex(index int) int {
	return int(profile.OffsetOf(index))
}

// ServerOffset measures a forum's displayed-clock offset given a displayed
// timestamp of a post made at the given true UTC instant — the Welcome-
// thread probe from §V, usable directly when you control the probe post.
func ServerOffset(displayed, trueUTC time.Time) time.Duration {
	t := trueUTC.UTC()
	wall := time.Date(t.Year(), t.Month(), t.Day(), t.Hour(), t.Minute(), t.Second(), 0, time.UTC)
	return displayed.Sub(wall).Round(time.Minute)
}

func sortedCodes(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteJSON serializes the reference so later runs can skip rebuilding it
// from the labelled dataset.
func (r *Reference) WriteJSON(w io.Writer) error {
	if err := json.NewEncoder(w).Encode(r); err != nil {
		return fmt.Errorf("darkcrowd: encode reference: %w", err)
	}
	return nil
}

// ReadReference loads a reference written by WriteJSON.
func ReadReference(r io.Reader) (*Reference, error) {
	var out Reference
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("darkcrowd: decode reference: %w", err)
	}
	if out.Generic.Sum() == 0 {
		return nil, fmt.Errorf("darkcrowd: reference has an empty generic profile")
	}
	return &out, nil
}
