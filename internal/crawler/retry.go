package crawler

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"time"
)

// Default knobs for the robustness layer. Onion services are flaky by
// default (§V's collection ran for weeks against Tor hidden services),
// so retries and per-request timeouts are on unless explicitly disabled.
const (
	// DefaultTimeout bounds each individual HTTP exchange.
	DefaultTimeout = 30 * time.Second
	// DefaultMaxBody caps how much of a response body is read; forum
	// pages are small, so anything bigger is a misbehaving server.
	DefaultMaxBody = 4 << 20
	// DefaultMaxAttempts is the per-request attempt budget.
	DefaultMaxAttempts = 4
	// DefaultBaseDelay is the first retry backoff.
	DefaultBaseDelay = 50 * time.Millisecond
	// DefaultMaxDelay caps the exponential backoff.
	DefaultMaxDelay = 2 * time.Second
	// DefaultJitter is the ± fraction randomized onto each backoff.
	DefaultJitter = 0.2
)

// RetryPolicy bounds the exponential-backoff retry loop wrapped around
// every HTTP exchange. The zero value means "use the defaults"; set
// MaxAttempts to 1 to disable retries entirely.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request, first
	// attempt included (default DefaultMaxAttempts; 1 disables
	// retries).
	MaxAttempts int
	// BaseDelay is the pause before the first retry; each further retry
	// doubles it (default DefaultBaseDelay).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default DefaultMaxDelay).
	MaxDelay time.Duration
	// Jitter randomizes each backoff by ±Jitter fraction so synchronized
	// crawlers do not hammer a recovering service in lockstep (default
	// DefaultJitter; negative disables).
	Jitter float64
	// Seed drives the jitter; a fixed seed gives a reproducible backoff
	// schedule (default 1).
	Seed int64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	if p.Jitter == 0 {
		p.Jitter = DefaultJitter
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// backoff returns the pause before the retry-th retry (1-based):
// BaseDelay doubled per retry, capped at MaxDelay, jittered. The policy
// must already carry its defaults. rng may be nil to skip jitter.
func (p RetryPolicy) backoff(retry int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay
	for i := 1; i < retry && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 && rng != nil {
		d = time.Duration(float64(d) * (1 + p.Jitter*(2*rng.Float64()-1)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// transientStatus reports whether an HTTP status is worth retrying:
// server-side failures and throttling, never client errors.
func transientStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// transientError reports whether a transport-level failure is worth
// retrying. Against a flaky onion fabric essentially everything is —
// connection resets, truncated bodies, stream timeouts (including our
// own per-request deadline firing). The one hard stop is cancellation of
// the caller's context, which means the crawl itself is being aborted.
func transientError(err error) bool {
	if err == nil {
		return false
	}
	return !errors.Is(err, context.Canceled)
}

// sleepCtx pauses for d or until the context is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
