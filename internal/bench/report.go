// Package bench is the repo's shared benchmark harness: one report
// schema, one min-of-N runner and one regression gate behind every
// BENCH_*.json artifact — benchgen's placement and ingest suites and
// `darkcrowd bench`'s serving suite all write the same shape and are
// checked by the same rules, so CI gates and EXPERIMENTS.md tables
// regenerate from one place.
//
// The measurement discipline is fixed here rather than per-tool:
//
//   - Each workload keeps the fastest of N testing.Benchmark runs. The
//     minimum is the least noisy estimator of a workload's true cost —
//     slower runs measure GC and scheduler luck, and speedup gates need
//     stable ratios.
//   - The -check regression gate compares a fresh run against the report
//     committed in the repo, failing on ns/op growth beyond a loose
//     factor (2x by default). CI runners are shared and noisy; a failure
//     means a real regression, not jitter.
//   - Hard cross-workload floors (e.g. "snapshot load must beat CSV parse
//     5x") express the point of an optimisation as a ratio that must keep
//     holding, independent of absolute machine speed.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
)

// Metric is one workload's measurement.
type Metric struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Report is the schema shared by every BENCH_*.json file.
type Report struct {
	Tool         string            `json:"tool"`
	GoVersion    string            `json:"go_version"`
	GOOS         string            `json:"goos"`
	GOARCH       string            `json:"goarch"`
	TwitterScale int               `json:"twitter_scale,omitempty"`
	Seed         int64             `json:"seed,omitempty"`
	Workloads    map[string]Metric `json:"workloads,omitempty"`
	// Baseline holds reference measurements captured before a tracked
	// optimisation landed; SpeedupNs and AllocRatio are the derived
	// baseline/current ratios (>1 = faster, fewer allocations), kept in
	// the file for easy reading.
	Baseline   map[string]Metric  `json:"baseline,omitempty"`
	SpeedupNs  map[string]float64 `json:"speedup_ns,omitempty"`
	AllocRatio map[string]float64 `json:"alloc_ratio,omitempty"`
	// Ratios holds derived cross-workload speedups — the numbers hard
	// floor gates check.
	Ratios map[string]float64 `json:"ratios,omitempty"`
	// IngestWorkers is the sharded-parser worker count the ingest suite
	// ran with (0 elsewhere).
	IngestWorkers int `json:"ingest_workers,omitempty"`
	// Serve holds a `darkcrowd bench` load-driver run; ServeBaseline the
	// reference run against the pre-sharding daemon, kept so the serving
	// speedup regenerates from the file alone.
	Serve         *ServeResult `json:"serve,omitempty"`
	ServeBaseline *ServeResult `json:"serve_baseline,omitempty"`
}

// NewReport returns a report stamped with the build environment.
func NewReport(tool string, scale int, seed int64) *Report {
	return &Report{
		Tool:         tool,
		GoVersion:    runtime.Version(),
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		TwitterScale: scale,
		Seed:         seed,
		Workloads:    make(map[string]Metric),
	}
}

// RunMinOf measures fn with testing.Benchmark runs times, records the
// fastest run under name, prints the usual one-line summary to w (nil =
// silent) and returns the metric.
func (r *Report) RunMinOf(w io.Writer, name string, runs int, fn func(b *testing.B)) Metric {
	if runs < 1 {
		runs = 1
	}
	res := testing.Benchmark(fn)
	for run := 1; run < runs; run++ {
		if again := testing.Benchmark(fn); again.NsPerOp() < res.NsPerOp() {
			res = again
		}
	}
	m := Metric{
		NsPerOp:     res.NsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
	}
	if r.Workloads == nil {
		r.Workloads = make(map[string]Metric)
	}
	r.Workloads[name] = m
	if w != nil {
		fmt.Fprintf(w, "%-24s %12d ns/op %12d B/op %10d allocs/op\n",
			name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
	}
	return m
}

// DeriveBaseline attaches base and fills the SpeedupNs / AllocRatio
// columns against the current workloads.
func (r *Report) DeriveBaseline(base map[string]Metric) {
	if len(base) == 0 {
		return
	}
	r.Baseline = base
	r.SpeedupNs = make(map[string]float64, len(base))
	r.AllocRatio = make(map[string]float64, len(base))
	for name, b := range base {
		cur, ok := r.Workloads[name]
		if !ok || cur.NsPerOp == 0 {
			continue
		}
		r.SpeedupNs[name] = Round2(float64(b.NsPerOp) / float64(cur.NsPerOp))
		if cur.AllocsPerOp > 0 {
			r.AllocRatio[name] = Round2(float64(b.AllocsPerOp) / float64(cur.AllocsPerOp))
		}
	}
}

// Ratio returns workload num's ns/op over workload den's — "how many
// times slower num is", i.e. den's speedup over num.
func (r *Report) Ratio(num, den string) float64 {
	if d := r.Workloads[den].NsPerOp; d > 0 {
		return Round2(float64(r.Workloads[num].NsPerOp) / float64(d))
	}
	return 0
}

// WriteFile writes the indented JSON report.
func (r *Report) WriteFile(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal report: %w", err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return fmt.Errorf("bench: write %s: %w", path, err)
	}
	return nil
}

// Load reads a committed report. A missing file returns (nil, nil) so
// gates can skip cleanly on first runs.
func Load(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("bench: read %s: %w", path, err)
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &r, nil
}

// CheckRegression gates a fresh run on the report previously committed at
// path: any shared workload whose ns/op grew by more than factor fails.
// A missing committed report skips the gate with a note to w. The loose
// default factor (2x) tolerates shared-runner noise — a failure means a
// real regression, not jitter.
func CheckRegression(w io.Writer, path string, fresh map[string]Metric, factor float64) error {
	if w == nil {
		w = io.Discard
	}
	committed, err := Load(path)
	if err != nil {
		return err
	}
	if committed == nil {
		fmt.Fprintf(w, "check: no committed report at %s, skipping gate\n", path)
		return nil
	}
	failures := 0
	for name, old := range committed.Workloads {
		cur, ok := fresh[name]
		if !ok || old.NsPerOp <= 0 {
			continue
		}
		ratio := float64(cur.NsPerOp) / float64(old.NsPerOp)
		if ratio > factor {
			fmt.Fprintf(w, "check: %s regressed %.2fx (%d -> %d ns/op)\n",
				name, ratio, old.NsPerOp, cur.NsPerOp)
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("bench: %d workload(s) regressed more than %.0fx vs %s", failures, factor, path)
	}
	fmt.Fprintf(w, "check passed: no workload more than %.0fx slower than %s\n", factor, path)
	return nil
}

// CheckFloors enforces hard cross-workload speedup floors: every named
// ratio must be at least its floor.
func CheckFloors(w io.Writer, ratios, floors map[string]float64) error {
	if w == nil {
		w = io.Discard
	}
	failures := 0
	for name, floor := range floors {
		if got := ratios[name]; got < floor {
			fmt.Fprintf(w, "check: %s = %.2fx, need >= %.2fx\n", name, got, floor)
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("bench: %d speedup floor(s) failed", failures)
	}
	return nil
}

// Round2 rounds to two decimals for diff-friendly report ratios.
func Round2(x float64) float64 {
	return float64(int64(x*100+0.5)) / 100
}
