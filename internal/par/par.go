// Package par provides the deterministic fork-join primitive used by the
// hot loops of the pipeline (EMD placement, profile building, EM model
// selection): split n independent items into contiguous shards, process
// every shard on its own worker goroutine, and let the caller merge the
// per-shard results in shard order.
//
// The contract that makes parallelism safe here is *determinism by
// construction*: workers only write to disjoint, index-addressed slots
// (never to shared accumulators), and all order-sensitive reduction happens
// after Ranges returns, on a single goroutine, in shard order. Under that
// discipline the output of a parallel run is bit-for-bit identical to the
// sequential run regardless of worker count or goroutine scheduling.
package par

import (
	"context"
	"runtime"
	"time"
)

// Workers resolves a Parallelism setting against an item count:
//
//   - parallelism <= 0 selects GOMAXPROCS (use every core);
//   - otherwise the requested value is used;
//   - the result is clamped to [1, items] so no worker starts idle.
func Workers(parallelism, items int) int {
	w := parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ShardObserver receives a completion report for every shard a Ranges
// call ran: the worker index, the half-open item range, and the shard's
// wall time. Implementations must be safe for concurrent calls (shards
// finish on their own goroutines). Reports are observation-only — they
// must not influence the computation. *obs.Span implements this
// interface.
type ShardObserver interface {
	ShardDone(worker, start, end int, elapsed time.Duration)
}

// Ranges splits [0, n) into `workers` contiguous shards and calls
// fn(start, end) for each shard on its own goroutine, waiting for all of
// them. Shard boundaries depend only on (workers, n), never on scheduling.
//
// The returned error is deterministic too: the error of the lowest-indexed
// failing shard wins, whichever worker happened to fail first in wall-clock
// time. If ctx is cancelled (and no shard reports its own error), the
// context's error is returned; workers observe cancellation between items
// via the fn contract below. A nil ctx means no cancellation.
//
// With workers <= 1 (or n <= 1) fn runs inline on the calling goroutine —
// the sequential path and the parallel path execute the exact same code.
func Ranges(ctx context.Context, workers, n int, fn func(start, end int) error) error {
	return RangesObserved(ctx, workers, n, fn, nil)
}

// RangesObserved is Ranges with an instrumentation hook: when so is
// non-nil every shard's completion is reported through it, timed with the
// per-shard wall clock. A nil so skips the clock reads entirely, so the
// unobserved path is exactly the historical Ranges. The observer has no
// way to affect shard boundaries, ordering, or results — parallel runs
// stay bit-identical to sequential runs, observed or not.
func RangesObserved(ctx context.Context, workers, n int, fn func(start, end int) error, so ShardObserver) error {
	if n <= 0 {
		return ctxErr(ctx)
	}
	workers = Workers(workers, n)
	shard := func(w, start, end int) error {
		if so == nil {
			return fn(start, end)
		}
		began := time.Now()
		err := fn(start, end)
		so.ShardDone(w, start, end, time.Since(began))
		return err
	}
	if workers == 1 {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		return shard(0, 0, n)
	}
	errs := make([]error, workers)
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		start, end := w*n/workers, (w+1)*n/workers
		go func(w, start, end int) {
			errs[w] = shard(w, start, end)
			done <- w
		}(w, start, end)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctxErr(ctx)
}

// ctxErr returns the context's error, tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
