package geoloc

// Equivalence tests pinning the all-rotations placement kernel to the
// legacy 24-call per-zone EMD loop, bit for bit.

import (
	"math/rand"
	"sort"
	"testing"

	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/stats"
	"darkcrowd/internal/tz"
)

func randomProfile(rng *rand.Rand) profile.Profile {
	var p profile.Profile
	var sum float64
	for h := range p {
		p[h] = rng.Float64()
		if rng.Intn(6) == 0 {
			p[h] = 0 // zero bins exercise median ties
		}
		sum += p[h]
	}
	if sum == 0 {
		p[0], sum = 1, 1
	}
	for h := range p {
		p[h] /= sum
	}
	return p
}

// legacyNearestZoneIndex is the pre-kernel implementation: one circular EMD
// per materialized zone profile, strict less-than argmin.
func legacyNearestZoneIndex(p profile.Profile, zones []profile.Profile, scratch []float64) (int, error) {
	best := -1
	bestDist := 0.0
	for zi := range zones {
		d, err := stats.EMDCircularScratch(p[:], zones[zi][:], scratch)
		if err != nil {
			return 0, err
		}
		if best == -1 || d < bestDist {
			best = zi
			bestDist = d
		}
	}
	return best, nil
}

func TestNearestZoneIndexMatchesLegacy(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	dists := make([]float64, tz.HoursPerDay)
	scratch := make([]float64, 2*tz.HoursPerDay)
	for trial := 0; trial < 200; trial++ {
		p := randomProfile(rng)
		generic := randomProfile(rng)
		if trial%17 == 0 {
			generic = p // identical profiles: every rotation distance ties at some zone
		}
		zones := profile.ZoneProfiles(generic)
		want, err := legacyNearestZoneIndex(p, zones, scratch)
		if err != nil {
			t.Fatal(err)
		}
		got, margin, err := nearestZoneIndex(p, generic, nil, DistanceCircularEMD, dists, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: nearestZoneIndex = %d, legacy %d", trial, got, want)
		}
		// The margin must be exactly the per-zone loop's runner-up gap.
		var all []float64
		for zi := range zones {
			d, err := stats.EMDCircularScratch(p[:], zones[zi][:], scratch)
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, d)
		}
		sort.Float64s(all)
		if wantMargin := all[1] - all[0]; margin != wantMargin {
			t.Fatalf("trial %d: margin = %g, legacy runner-up gap %g", trial, margin, wantMargin)
		}
	}
}

// TestNearestZoneIndexUniformTies pins tie-breaking: a uniform profile is
// equidistant from every zone, and both implementations must pick zone 0.
func TestNearestZoneIndexUniformTies(t *testing.T) {
	t.Parallel()
	uniform := profile.Uniform()
	rng := rand.New(rand.NewSource(8))
	generic := randomProfile(rng)
	dists := make([]float64, tz.HoursPerDay)
	scratch := make([]float64, 2*tz.HoursPerDay)
	got, _, err := nearestZoneIndex(uniform, generic, nil, DistanceCircularEMD, dists, scratch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := legacyNearestZoneIndex(uniform, profile.ZoneProfiles(generic), scratch)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("tie-break differs: kernel %d, legacy %d", got, want)
	}
}

// TestPlaceUsersSteadyStateAllocs confirms placement's per-user work is
// allocation-free once the worker scratch exists.
func TestPlaceUsersSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := randomProfile(rng)
	generic := randomProfile(rng)
	dists := make([]float64, tz.HoursPerDay)
	scratch := make([]float64, 2*tz.HoursPerDay)
	avg := testing.AllocsPerRun(100, func() {
		if _, _, err := nearestZoneIndex(p, generic, nil, DistanceCircularEMD, dists, scratch); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("per-user placement allocates %v times, want 0", avg)
	}
}
