package chaos

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/par"
	"darkcrowd/internal/pipeline"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

// writeCrowd generates a deterministic two-region crowd trace.
func writeCrowd(t *testing.T, dir string) string {
	t.Helper()
	jp, err := tz.ByCode("jp")
	if err != nil {
		t.Fatal(err)
	}
	us, err := tz.ByCode("us-il")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.GenerateCrowd(7, synth.CrowdConfig{
		Name: "chaos-test",
		Groups: []synth.Group{
			{Region: jp, Users: 20, PostsPerUser: 50},
			{Region: us, Users: 12, PostsPerUser: 50},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "crowd.csv")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteCSV(fh); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// testReference memoizes one small synthetic reference for the whole
// test binary; the build is deterministic, so sharing it is free.
var refOnce *profile.GenericResult

func testReference(t *testing.T) func() (*profile.GenericResult, error) {
	t.Helper()
	return func() (*profile.GenericResult, error) {
		if refOnce == nil {
			twitter, err := synth.TwitterDataset(2018, synth.TwitterOptions{Scale: 300})
			if err != nil {
				return nil, err
			}
			refOnce, err = profile.BuildGeneric(twitter, profile.GenericOptions{})
			if err != nil {
				return nil, err
			}
		}
		return refOnce, nil
	}
}

func geoJSON(t *testing.T, res *pipeline.Result) string {
	t.Helper()
	data, err := json.Marshal(res.Geo)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// assertNoPartials checks the file-level invariants after any failed
// attempt: no orphaned temp files anywhere in dir, the checkpoint — if it
// exists at all — is complete, valid JSON, never a torn write, and any
// .dcs snapshot in dir decodes cleanly (a snapshot either exists whole or
// not at all).
func assertNoPartials(t *testing.T, dir, ckptPath string) {
	t.Helper()
	leftovers, err := TempFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "*.dcs"))
	if err != nil {
		t.Fatal(err)
	}
	for _, snap := range snaps {
		data, err := os.ReadFile(snap)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := trace.ReadSnapshotBytes(data); err != nil {
			t.Fatalf("snapshot %s is torn: %v", snap, err)
		}
	}
	data, err := os.ReadFile(ckptPath)
	if errors.Is(err, os.ErrNotExist) {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("checkpoint %s is torn: %q", ckptPath, data)
	}
}

// TestChaosPanicIsolation: an injected worker panic mid-profile-build
// surfaces as a typed *par.ShardPanicError — not a process death — and a
// fault-free rerun resumes from the checkpoint to the clean-run result.
func TestChaosPanicIsolation(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeCrowd(t, dir)
	base := pipeline.Config{
		TracePath:   tracePath,
		Reference:   testReference(t),
		ReferenceID: "chaos-ref",
	}
	clean, err := pipeline.Geolocate(base)
	if err != nil {
		t.Fatal(err)
	}
	want := geoJSON(t, clean)

	in := New(Config{Seed: 1, PanicProb: 1, MaxFaults: 1})
	cfg := base
	cfg.CheckpointPath = filepath.Join(dir, "stage.ckpt")
	cfg.Cells = in.Cells(nil)
	_, err = pipeline.Geolocate(cfg)
	var pe *par.ShardPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v (%T), want *par.ShardPanicError", err, err)
	}
	if in.Stats().Panics != 1 {
		t.Errorf("stats = %s, want 1 panic", in.Stats())
	}
	assertNoPartials(t, dir, cfg.CheckpointPath)

	// Budget spent: the same injector now passes everything through, and
	// the rerun resumes the reference stage from the checkpoint.
	res, err := pipeline.Geolocate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Restored) == 0 || res.Restored[0] != "reference" {
		t.Errorf("restored %v, want the checkpointed reference", res.Restored)
	}
	if got := geoJSON(t, res); got != want {
		t.Error("post-panic resumed run diverged from clean run")
	}
}

// TestChaosCorruptRows: injected row corruption kills a strict run, is
// fully quarantined in a lenient run, and lenient runs are deterministic.
func TestChaosCorruptRows(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeCrowd(t, dir)
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	in := New(Config{Seed: 2, CorruptProb: 0.02})
	damaged, hit := in.Corrupt(data)
	if hit == 0 {
		t.Fatal("fault plan corrupted no rows; raise CorruptProb")
	}
	if st := in.Stats(); st.CorruptRows != hit {
		t.Errorf("stats %s disagree with %d corrupted rows", st, hit)
	}
	damagedPath := filepath.Join(dir, "damaged.csv")
	if err := os.WriteFile(damagedPath, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.Config{
		TracePath:   damagedPath,
		Reference:   testReference(t),
		ReferenceID: "chaos-ref",
	}
	if _, err := pipeline.Geolocate(cfg); err == nil {
		t.Fatal("strict ingest of corrupted trace should fail")
	}
	cfg.Lenient = true
	first, err := pipeline.Geolocate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Quarantine == nil || first.Quarantine.BadRows != hit {
		t.Fatalf("quarantined %+v, want the %d corrupted rows", first.Quarantine, hit)
	}
	second, err := pipeline.Geolocate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if geoJSON(t, first) != geoJSON(t, second) {
		t.Error("lenient runs over the same damage disagree")
	}
}

// TestChaosSnapshotFaults: an injected I/O failure during the snapshot
// write fails the run without leaving any .dcs file — partial snapshots
// must never exist — and the fault-free retry writes it whole, after
// which runs load it and still match the clean result bit for bit.
func TestChaosSnapshotFaults(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeCrowd(t, dir)
	base := pipeline.Config{
		TracePath:   tracePath,
		Reference:   testReference(t),
		ReferenceID: "chaos-ref",
	}
	clean, err := pipeline.Geolocate(base)
	if err != nil {
		t.Fatal(err)
	}
	want := geoJSON(t, clean)

	in := New(Config{Seed: 6, CheckpointFailProb: 1, MaxFaults: 1})
	cfg := base
	cfg.SnapshotPath = filepath.Join(dir, "crowd.dcs")
	cfg.CheckpointHook = in.Hook()
	if _, err := pipeline.Geolocate(cfg); err == nil {
		t.Fatal("run with an injected snapshot-write failure should fail")
	}
	if in.Stats().CheckpointFails != 1 {
		t.Errorf("stats = %s, want 1 checkpoint fail", in.Stats())
	}
	if _, err := os.Stat(cfg.SnapshotPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed write left a snapshot behind (stat err %v)", err)
	}
	assertNoPartials(t, dir, "")

	// Budget spent: the retry ingests the CSV and installs the snapshot.
	res, err := pipeline.Geolocate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SnapshotWritten || res.SnapshotLoaded {
		t.Errorf("retry: written=%v loaded=%v, want a fresh snapshot write", res.SnapshotWritten, res.SnapshotLoaded)
	}
	if got := geoJSON(t, res); got != want {
		t.Error("snapshot-writing run diverged from clean run")
	}
	assertNoPartials(t, dir, "")

	// And the next run serves the trace from the snapshot, identically.
	res, err = pipeline.Geolocate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.SnapshotLoaded || res.SnapshotWritten {
		t.Errorf("third run: written=%v loaded=%v, want a snapshot load", res.SnapshotWritten, res.SnapshotLoaded)
	}
	if got := geoJSON(t, res); got != want {
		t.Error("snapshot-loaded run diverged from clean run")
	}
}

// TestChaosGauntlet is the composed harness: panics, checkpoint-write
// failures, and mid-stage cancellations all fire against checkpointed
// runs, across several seeds. Whatever fails, no partial file ever
// appears, and the attempt that finally succeeds is bit-identical to the
// fault-free run.
func TestChaosGauntlet(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeCrowd(t, dir)
	base := pipeline.Config{
		TracePath:   tracePath,
		Reference:   testReference(t),
		ReferenceID: "chaos-ref",
	}
	clean, err := pipeline.Geolocate(base)
	if err != nil {
		t.Fatal(err)
	}
	want := geoJSON(t, clean)

	totalFaults := 0
	for seed := int64(1); seed <= 5; seed++ {
		in := New(Config{
			Seed:               seed,
			PanicProb:          0.001,
			CheckpointFailProb: 0.4,
			CancelEvery:        3,
			MaxFaults:          4,
		})
		ckpt := filepath.Join(dir, "gauntlet.ckpt")
		snap := filepath.Join(dir, "gauntlet.dcs")
		os.Remove(ckpt)
		os.Remove(snap)
		cfg := base
		cfg.CheckpointPath = ckpt
		cfg.SnapshotPath = snap
		cfg.Cells = in.Cells(nil)
		cfg.CheckpointHook = in.Hook()

		succeeded := false
		const maxAttempts = 24
		for attempt := 0; attempt < maxAttempts; attempt++ {
			cfg.Context = in.Context(context.Background())
			res, err := pipeline.Geolocate(cfg)
			if err != nil {
				assertNoPartials(t, dir, ckpt)
				continue
			}
			if got := geoJSON(t, res); got != want {
				t.Fatalf("seed %d attempt %d: recovered run diverged from clean run\n%s\nvs\n%s",
					seed, attempt, got, want)
			}
			succeeded = true
			break
		}
		if !succeeded {
			t.Fatalf("seed %d: no attempt out of %d succeeded (%s)", seed, maxAttempts, in.Stats())
		}
		assertNoPartials(t, dir, ckpt)
		totalFaults += in.Stats().Total()
	}
	if totalFaults == 0 {
		t.Fatal("gauntlet injected no faults at all; the harness is not exercising anything")
	}
}

// TestChaosContextBudget: the poll-counting context trips only while the
// fault budget lasts, so retry loops always converge.
func TestChaosContextBudget(t *testing.T) {
	t.Parallel()
	in := New(Config{Seed: 3, CancelEvery: 2, MaxFaults: 1})
	ctx := in.Context(context.Background())
	if err := ctx.Err(); err != nil {
		t.Fatalf("first poll tripped: %v", err)
	}
	if err := ctx.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("second poll did not trip: %v", err)
	}
	select {
	case <-ctx.Done():
	default:
		t.Error("Done channel not closed after trip")
	}
	// Budget spent: a fresh context never trips again.
	next := in.Context(context.Background())
	for i := 0; i < 10; i++ {
		if err := next.Err(); err != nil {
			t.Fatalf("poll %d tripped after budget exhausted: %v", i, err)
		}
	}
	if in.Stats().Cancels != 1 {
		t.Errorf("stats = %s, want exactly 1 cancel", in.Stats())
	}
	// CancelEvery 0 passes the parent through untouched.
	plain := New(Config{Seed: 4}).Context(nil)
	if plain.Err() != nil || plain.Done() != context.Background().Done() {
		t.Error("disabled cancellation should return the parent context")
	}
}
