package trace

// The columnar index. The paper's Twitter substrate is 6,058,635 users
// (Table I); at that scale the row-oriented []Post representation makes
// every per-user operation — grouping, counting, the active-user
// threshold, profile building — re-scan and re-allocate. Store is a
// compact, read-only, column-oriented index of a Dataset:
//
//   - user IDs are interned once into a dense, sorted dictionary
//     (ids / lookup), so hot loops carry int32 user indices instead of
//     hashing strings;
//   - timestamps live in an int64 epoch-seconds column (when), post-parallel
//     with Posts;
//   - posts are grouped per user CSR-style: posts[offsets[u]:offsets[u+1]]
//     lists the dataset positions of user u's posts, in dataset order.
//
// Dataset methods (Users, ByUser, PostCounts, FilterUsers, FilterMinPosts,
// Window) are views over these columns. The Store itself is immutable after
// construction, so it is safe to share across goroutines; building it
// lazily via Dataset.Index is not goroutine-safe (same as any lazy cache —
// index once before fanning out).

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Store is the columnar index of a Dataset. Zero value is an empty store;
// build one with Dataset.Index or a Builder.
type Store struct {
	ids     []string         // dense user index -> user ID, sorted ascending
	lookup  map[string]int32 // user ID -> dense user index
	userOf  []int32          // per post, in dataset order: dense user index
	when    []int64          // per post, in dataset order: Unix seconds (UTC)
	posts   []int32          // dataset positions grouped by user (CSR payload)
	offsets []int32          // user u owns posts[offsets[u]:offsets[u+1]]

	// sortedByTime records whether the indexed Posts were in chronological
	// order, enabling binary-searched Window.
	sortedByTime bool
}

// Index returns the dataset's columnar index, building it on first use.
// The index is cached; it is rebuilt automatically when len(d.Posts) has
// changed since the last build. Mutating posts in place without changing
// the count (or re-sorting) requires calling InvalidateIndex. The first
// Index call on a given dataset is not safe to race with other calls.
func (d *Dataset) Index() *Store {
	if d.idx != nil && len(d.idx.userOf) == len(d.Posts) {
		return d.idx
	}
	d.idx = buildStore(d.Posts)
	return d.idx
}

// InvalidateIndex drops the cached columnar index. Call it after mutating
// d.Posts in place (length-changing edits are detected automatically).
func (d *Dataset) InvalidateIndex() { d.idx = nil }

// buildStore constructs the columnar index from a post slice: one interning
// pass, a dictionary sort, then a counting-sort scatter into CSR layout.
func buildStore(posts []Post) *Store {
	s := &Store{
		lookup: make(map[string]int32),
		userOf: make([]int32, len(posts)),
		when:   make([]int64, len(posts)),
	}
	// Pass 1: intern users in first-appearance order, fill the post-parallel
	// columns, detect chronological order.
	var firstIDs []string
	var counts []int32
	s.sortedByTime = true
	for i := range posts {
		p := &posts[i]
		u, ok := s.lookup[p.UserID]
		if !ok {
			u = int32(len(firstIDs))
			s.lookup[p.UserID] = u
			firstIDs = append(firstIDs, p.UserID)
			counts = append(counts, 0)
		}
		s.userOf[i] = u
		s.when[i] = p.Time.Unix()
		counts[u]++
		if i > 0 && p.Time.Before(posts[i-1].Time) {
			s.sortedByTime = false
		}
	}
	s.finish(firstIDs, counts)
	return s
}

// finish completes a provisionally-filled store: lookup maps each user ID
// to its first-appearance index, firstIDs lists the IDs in that order,
// counts holds per-provisional-user post counts, and userOf/when/
// sortedByTime are already post-parallel. It sorts the dictionary, remaps
// userOf to sorted ranks in place, and scatters the CSR payload. Shared
// by buildStore and the sharded parallel reader's merge, so both produce
// bit-identical stores.
func (s *Store) finish(firstIDs []string, counts []int32) {
	// Sort the dictionary and remap the provisional indices to sorted ones,
	// so user index order == lexicographic user ID order everywhere.
	nu := len(firstIDs)
	perm := make([]int32, nu) // rank -> provisional index
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool { return firstIDs[perm[a]] < firstIDs[perm[b]] })
	rank := make([]int32, nu) // provisional index -> rank
	s.ids = make([]string, nu)
	sortedCounts := make([]int32, nu)
	for r, prov := range perm {
		rank[prov] = int32(r)
		s.ids[r] = firstIDs[prov]
		s.lookup[firstIDs[prov]] = int32(r)
		sortedCounts[r] = counts[prov]
	}
	for i, prov := range s.userOf {
		s.userOf[i] = rank[prov]
	}
	// CSR offsets (prefix sums) and scatter, preserving dataset order
	// within each user.
	s.offsets = make([]int32, nu+1)
	for u, c := range sortedCounts {
		s.offsets[u+1] = s.offsets[u] + c
	}
	s.posts = make([]int32, len(s.userOf))
	cursor := make([]int32, nu)
	copy(cursor, s.offsets[:nu])
	for i, u := range s.userOf {
		s.posts[cursor[u]] = int32(i)
		cursor[u]++
	}
}

// NumUsers returns the number of distinct users.
func (s *Store) NumUsers() int { return len(s.ids) }

// NumPosts returns the number of indexed posts.
func (s *Store) NumPosts() int { return len(s.userOf) }

// UserID returns the user ID at dense index u (indices are sorted by ID).
func (s *Store) UserID(u int) string { return s.ids[u] }

// Lookup returns the dense index of a user ID.
func (s *Store) Lookup(id string) (int, bool) {
	u, ok := s.lookup[id]
	return int(u), ok
}

// Count returns the number of posts of the user at dense index u.
func (s *Store) Count(u int) int {
	return int(s.offsets[u+1] - s.offsets[u])
}

// SortedByTime reports whether the indexed posts were chronologically
// ordered.
func (s *Store) SortedByTime() bool { return s.sortedByTime }

// AppendUserTimes appends the Unix-second timestamps of user u's posts (in
// dataset order) to buf and returns it — the zero-allocation feed for
// profile building when the caller reuses buf across users.
func (s *Store) AppendUserTimes(buf []int64, u int) []int64 {
	for _, pos := range s.posts[s.offsets[u]:s.offsets[u+1]] {
		buf = append(buf, s.when[pos])
	}
	return buf
}

// PostPositions returns the dataset positions of user u's posts, in dataset
// order. The returned slice aliases the index; callers must not modify it.
func (s *Store) PostPositions(u int) []int32 {
	return s.posts[s.offsets[u]:s.offsets[u+1]]
}

// LimitError reports that a Builder hit a columnar capacity ceiling: the
// store carries user ordinals and post positions as int32, so interning
// user number 2^31 (or recording post number 2^31) would silently wrap the
// ordinal and scatter that user's posts into another user's CSR range.
// The Builder refuses instead.
type LimitError struct {
	// What names the exhausted dimension: "users" or "posts".
	What string
	// Limit is the capacity that was hit.
	Limit int
}

// Error implements error.
func (e *LimitError) Error() string {
	return fmt.Sprintf("trace: builder %s limit reached (%d): int32 ordinals would wrap and corrupt the columnar store", e.What, e.Limit)
}

// Builder accumulates an activity trace column-wise — int32 user indices
// and int64 epoch seconds instead of (string, time.Time) rows — and
// materializes a Dataset once at the end. The synthetic crowd generator
// writes straight into a Builder, which keeps its per-post hot loop free of
// string hashing and time.Time construction.
//
// Both dimensions are capped at math.MaxInt32 (the ordinal width of the
// columnar store); TryUser/TryAdd return a *LimitError at the ceiling,
// User/Add panic with the same message.
type Builder struct {
	ids    []string
	lookup map[string]int32
	userOf []int32
	when   []int64

	// userCap/postCap are the ordinal ceilings — math.MaxInt32 when zero.
	// Tests inject small caps to exercise the boundary without interning
	// two billion users.
	userCap int
	postCap int
}

// NewBuilder returns a Builder, preallocating for postHint posts (0 is
// fine).
func NewBuilder(postHint int) *Builder {
	return &Builder{
		lookup: make(map[string]int32),
		userOf: make([]int32, 0, postHint),
		when:   make([]int64, 0, postHint),
	}
}

func (b *Builder) userLimit() int {
	if b.userCap > 0 {
		return b.userCap
	}
	return math.MaxInt32
}

func (b *Builder) postLimit() int {
	if b.postCap > 0 {
		return b.postCap
	}
	return math.MaxInt32
}

// TryUser interns a user ID, returning its dense index for Add. Interning
// once per user moves the string hashing out of the per-post loop. When
// interning one more user would overflow the int32 ordinal space it returns
// a *LimitError and interns nothing.
func (b *Builder) TryUser(id string) (int32, error) {
	if u, ok := b.lookup[id]; ok {
		return u, nil
	}
	if len(b.ids) >= b.userLimit() {
		return 0, &LimitError{What: "users", Limit: b.userLimit()}
	}
	u := int32(len(b.ids))
	b.lookup[id] = u
	b.ids = append(b.ids, id)
	return u, nil
}

// TryUserBytes is TryUser for callers holding the ID as a byte slice (the
// streaming daemon's NDJSON fast path): the lookup is allocation-free —
// Go's map index elides the []byte→string conversion — and the ID is only
// copied to a string the first time the user appears.
func (b *Builder) TryUserBytes(id []byte) (int32, error) {
	if u, ok := b.lookup[string(id)]; ok {
		return u, nil
	}
	return b.TryUser(string(id))
}

// User is TryUser for callers with bounded inputs (the synthetic
// generators); it panics with a clear message instead of wrapping the
// ordinal if the builder is full.
func (b *Builder) User(id string) int32 {
	u, err := b.TryUser(id)
	if err != nil {
		panic(err.Error())
	}
	return u
}

// TryAdd records one post: the interned user posted at the given Unix
// second. When recording one more post would overflow the int32 position
// space of the columnar store it returns a *LimitError and records nothing.
func (b *Builder) TryAdd(user int32, unixSec int64) error {
	if len(b.userOf) >= b.postLimit() {
		return &LimitError{What: "posts", Limit: b.postLimit()}
	}
	b.userOf = append(b.userOf, user)
	b.when = append(b.when, unixSec)
	return nil
}

// Add is TryAdd for callers with bounded inputs; it panics with a clear
// message instead of corrupting the store if the builder is full.
func (b *Builder) Add(user int32, unixSec int64) {
	if err := b.TryAdd(user, unixSec); err != nil {
		panic(err.Error())
	}
}

// NumPosts returns the number of posts recorded so far.
func (b *Builder) NumPosts() int { return len(b.userOf) }

// Dataset materializes the accumulated columns into a Dataset. When
// sortByTime is set the posts are ordered chronologically (stable, so
// same-instant posts keep insertion order — matching Dataset.SortByTime).
func (b *Builder) Dataset(name string, sortByTime bool) *Dataset {
	d := &Dataset{Name: name, Posts: make([]Post, len(b.userOf))}
	for i := range b.userOf {
		d.Posts[i] = Post{UserID: b.ids[b.userOf[i]], Time: time.Unix(b.when[i], 0).UTC()}
	}
	if sortByTime {
		d.SortByTime()
	}
	return d
}
