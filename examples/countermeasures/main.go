// Countermeasures example: the three defences discussed in §VII of the
// paper, and what each actually buys a forum.
//
//  1. Random timestamp delay — only works if it is "at least a few hours";
//     the example sweeps the jitter and shows the placement degrade.
//
//  2. Removing timestamps — defeated by monitoring the forum and
//     timestamping new posts with the observer's own clock.
//
//  3. A coordinated crowd faking another region's rhythm — works in
//     principle, but requires every user to shift their life by hours.
//
//     go run ./examples/countermeasures
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/crawler"
	"darkcrowd/internal/forum"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/tz"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Shared reference.
	twitter, err := synth.TwitterDataset(1, synth.TwitterOptions{Scale: 60})
	if err != nil {
		return err
	}
	gen, err := profile.BuildGeneric(twitter, profile.GenericOptions{})
	if err != nil {
		return err
	}
	de, err := tz.ByCode("de")
	if err != nil {
		return err
	}
	crowd, err := synth.GenerateCrowd(11, synth.CrowdConfig{
		Name:   "victim-crowd",
		Groups: []synth.Group{{Region: de, Users: 50, PostsPerUser: 100}},
	})
	if err != nil {
		return err
	}

	// 1. Timestamp jitter sweep.
	fmt.Println("=== countermeasure 1: random timestamp delay")
	for _, jitter := range []time.Duration{0, time.Hour, 6 * time.Hour, 12 * time.Hour} {
		f := forum.New(forum.Config{Name: "jittered", TimestampJitter: jitter, PageSize: 50})
		if err := f.ImportCrowd(crowd, forum.ImportOptions{}); err != nil {
			return err
		}
		srv := httptest.NewServer(f.Handler())
		c := &crawler.Crawler{BaseURL: srv.URL}
		res, err := c.Scrape("jittered")
		srv.Close()
		if err != nil {
			return err
		}
		profiles, err := profile.BuildUserProfiles(res.Dataset, profile.BuildOptions{})
		if err != nil {
			return err
		}
		placement, err := geoloc.PlaceUsers(profiles, gen.Generic, geoloc.PlaceOptions{})
		if err != nil {
			return err
		}
		fit, err := geoloc.FitSingle(placement)
		if err != nil {
			return err
		}
		fmt.Printf("  jitter +/-%-4v -> crowd (truly German, UTC+1) placed at UTC%+.2f, sigma %.2f\n",
			jitter, fit.PeakOffset, fit.Gaussian.Sigma)
	}

	// 2. Hidden timestamps, defeated by monitoring.
	fmt.Println("\n=== countermeasure 2: no timestamps at all")
	f := forum.New(forum.Config{Name: "hidden", HideTimestamps: true, PageSize: 200})
	for _, u := range crowd.Users() {
		if _, err := f.Register(u); err != nil {
			return err
		}
	}
	board, err := f.AddBoard("Main", "")
	if err != nil {
		return err
	}
	th, err := f.NewThread(board.ID, "talk")
	if err != nil {
		return err
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	c := &crawler.Crawler{BaseURL: srv.URL}
	if _, err := c.Scrape("refused"); err != nil {
		fmt.Println("  direct scrape refused:", err)
	}
	// Replay one month of posts with hourly monitor sweeps.
	replay := crowd.Clone()
	replay.SortByTime()
	first, _, _ := replay.TimeRange()
	var simNow time.Time
	monitor := crawler.NewMonitor(c, "watched")
	monitor.Clock = func() time.Time { return simNow }
	simNow = first
	if _, err := monitor.Poll(); err != nil {
		return err
	}
	end := first.AddDate(0, 1, 0)
	idx := 0
	for t := first; t.Before(end); t = t.Add(time.Hour) {
		for idx < len(replay.Posts) && replay.Posts[idx].Time.Before(t.Add(time.Hour)) {
			p := replay.Posts[idx]
			if !p.Time.Before(t) {
				if _, err := f.PostAt(th.ID, p.UserID, "replayed", p.Time); err != nil {
					return err
				}
			}
			idx++
		}
		simNow = t.Add(30 * time.Minute)
		if _, err := monitor.Poll(); err != nil {
			return err
		}
	}
	fmt.Printf("  monitored %d sweeps, observed %d posts with our own clock\n",
		monitor.Polls(), monitor.Dataset().NumPosts())
	profiles, err := profile.BuildUserProfiles(monitor.Dataset(), profile.BuildOptions{MinPosts: 5})
	if err != nil {
		return err
	}
	placement, err := geoloc.PlaceUsers(profiles, gen.Generic, geoloc.PlaceOptions{})
	if err != nil {
		return err
	}
	fit, err := geoloc.FitSingle(placement)
	if err != nil {
		return err
	}
	fmt.Printf("  geolocation from observation times alone: UTC%+.2f (truth: UTC+1/+2)\n", fit.PeakOffset)

	// 3. Coordinated deception.
	fmt.Println("\n=== countermeasure 3: the crowd coordinates a fake rhythm")
	faked, err := synth.GenerateCrowd(12, synth.CrowdConfig{
		Name: "fake-rhythm",
		Groups: []synth.Group{{
			Region: de, Users: 50, PostsPerUser: 100,
			DeliberateShift: 8, // everyone posts 8 hours later
		}},
	})
	if err != nil {
		return err
	}
	profiles, err = profile.BuildUserProfiles(faked, profile.BuildOptions{})
	if err != nil {
		return err
	}
	placement, err = geoloc.PlaceUsers(profiles, gen.Generic, geoloc.PlaceOptions{})
	if err != nil {
		return err
	}
	fit, err = geoloc.FitSingle(placement)
	if err != nil {
		return err
	}
	fmt.Printf("  German crowd, everyone shifted +8h -> placed at UTC%+.2f (deception works,\n", fit.PeakOffset)
	fmt.Println("  but every member had to move their whole waking rhythm by 8 hours)")
	return nil
}
