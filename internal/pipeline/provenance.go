package pipeline

// Hash-chained provenance (ISSUE 10): every report can carry a "provenance"
// section that chains the run's artifacts — canonical .dcs snapshot bytes,
// reference profile, per-user profiles, polish outcome, placement, and the
// final fitted geolocation — through SHA-256 records, each record hashing
// its predecessor, anchored in a header that names the dataset and every
// parameter the output depends on. The shape follows the doublezero
// geolocation-verification RFCs: a published location claim is only worth
// trusting if an independent party can replay it from the referenced data
// and check every intermediate hash.
//
// Two properties matter for the committed-fixture round trip:
//
//   - no filesystem paths ever enter hashed content — the dataset identity
//     is the canonical snapshot hash plus name and post count, so a fixture
//     verifies from any directory;
//   - every hashed payload is the canonical JSON (json.Marshal: map keys
//     sorted, float64 shortest round-trip) of the same Go values a resumed
//     run restores from its checkpoint, so fresh and checkpoint-restored
//     runs chain to identical records.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/trace"
)

// provenanceVersion guards the record layout; CheckChain rejects other
// versions so a verifier never silently mis-hashes a future format.
const provenanceVersion = 1

// DatasetID is the content identity of the input dataset: the SHA-256 of
// its canonical .dcs snapshot serialization (one dataset, one byte
// representation) plus human-readable name and size. No paths.
type DatasetID struct {
	Name   string `json:"name"`
	Posts  int    `json:"posts"`
	SHA256 string `json:"sha256"`
}

// ProvenanceParams pins every run parameter the chained artifacts depend
// on, so a verifier can replay the pipeline without guessing flags.
type ProvenanceParams struct {
	ReferenceID         string  `json:"reference_id"`
	MinPosts            int     `json:"min_posts"`
	SkipPolish          bool    `json:"skip_polish,omitempty"`
	Margins             bool    `json:"margins,omitempty"`
	BootstrapReplicates int     `json:"bootstrap_replicates,omitempty"`
	BootstrapSeed       int64   `json:"bootstrap_seed,omitempty"`
	BootstrapLevel      float64 `json:"bootstrap_level,omitempty"`
}

// ProvenanceRecord is one link of the chain. Hash covers (Stage, Payload,
// Prev), and Prev is the previous record's Hash (the header hash for the
// first record), so flipping any byte of any record — or of the header —
// breaks verification at or after the flip.
type ProvenanceRecord struct {
	Stage   string `json:"stage"`
	Payload string `json:"payload_sha256"`
	Prev    string `json:"prev"`
	Hash    string `json:"hash"`
}

// Provenance is the report's provenance section.
type Provenance struct {
	Version int                `json:"version"`
	Dataset DatasetID          `json:"dataset"`
	Params  ProvenanceParams   `json:"params"`
	Records []ProvenanceRecord `json:"records"`
}

// hashBytes is the hex SHA-256 of raw bytes.
func hashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// hashJSON hashes the canonical JSON encoding of v. json.Marshal sorts map
// keys and renders float64 in shortest round-trip form, so equal Go values
// always hash equal — including values restored from a JSON checkpoint.
func hashJSON(v any) (string, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return "", fmt.Errorf("pipeline: encode provenance payload: %w", err)
	}
	return hashBytes(data), nil
}

// HashDataset is the canonical dataset content hash: the SHA-256 of the
// dataset's .dcs snapshot serialization. Computed from the in-memory
// dataset, so it is identical whether the run ingested a CSV or loaded the
// snapshot file the hash describes.
func HashDataset(ds *trace.Dataset) (string, error) {
	h := sha256.New()
	if err := ds.WriteSnapshot(h); err != nil {
		return "", fmt.Errorf("pipeline: hash dataset: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// headerHash anchors the chain: the first record's Prev is the hash of the
// canonical header (version, dataset identity, parameters), so tampering
// with any of them orphans the whole chain.
func (p *Provenance) headerHash() (string, error) {
	return hashJSON(struct {
		Version int              `json:"version"`
		Dataset DatasetID        `json:"dataset"`
		Params  ProvenanceParams `json:"params"`
	}{p.Version, p.Dataset, p.Params})
}

// recordHash seals one record over its stage, payload hash, and
// predecessor hash.
func recordHash(stage, payload, prev string) (string, error) {
	return hashJSON(struct {
		Stage   string `json:"stage"`
		Payload string `json:"payload_sha256"`
		Prev    string `json:"prev"`
	}{stage, payload, prev})
}

// addRecord appends a chained record whose payload hash is already known.
func (p *Provenance) addRecord(stage, payload string) error {
	prev := ""
	if n := len(p.Records); n > 0 {
		prev = p.Records[n-1].Hash
	} else {
		var err error
		if prev, err = p.headerHash(); err != nil {
			return err
		}
	}
	h, err := recordHash(stage, payload, prev)
	if err != nil {
		return err
	}
	p.Records = append(p.Records, ProvenanceRecord{Stage: stage, Payload: payload, Prev: prev, Hash: h})
	return nil
}

// addJSON appends a chained record for a stage artifact, hashing its
// canonical JSON encoding.
func (p *Provenance) addJSON(stage string, artifact any) error {
	payload, err := hashJSON(artifact)
	if err != nil {
		return err
	}
	return p.addRecord(stage, payload)
}

// CheckChain verifies the internal hash chain: the header hash anchors the
// first record, every record's Hash re-derives from its content, and every
// Prev equals the predecessor's Hash. It inspects no artifacts — a chain
// can be checked from the report alone — so it catches tampering *inside*
// the provenance section; Verify's replay catches tampering anywhere else.
func (p *Provenance) CheckChain() error {
	if p == nil {
		return fmt.Errorf("pipeline: report carries no provenance section")
	}
	if p.Version != provenanceVersion {
		return fmt.Errorf("pipeline: provenance version %d, want %d", p.Version, provenanceVersion)
	}
	if len(p.Records) == 0 {
		return fmt.Errorf("pipeline: provenance chain is empty")
	}
	prev, err := p.headerHash()
	if err != nil {
		return err
	}
	for i, rec := range p.Records {
		if rec.Prev != prev {
			return fmt.Errorf("pipeline: provenance record %d (%s): prev hash %.12s does not chain to predecessor %.12s",
				i, rec.Stage, rec.Prev, prev)
		}
		want, err := recordHash(rec.Stage, rec.Payload, rec.Prev)
		if err != nil {
			return err
		}
		if rec.Hash != want {
			return fmt.Errorf("pipeline: provenance record %d (%s): hash %.12s does not match content (want %.12s)",
				i, rec.Stage, rec.Hash, want)
		}
		prev = rec.Hash
	}
	return nil
}

// Report is the on-disk report document `darkcrowd geolocate -out` writes
// and `darkcrowd verify` replays. The embedded geolocation serializes
// inline, so with provenance off the document is byte-identical to the
// pre-provenance report layout.
type Report struct {
	*geoloc.Geolocation
	Provenance *Provenance `json:"provenance,omitempty"`
}

// EncodeReport renders the canonical report bytes: two-space-indented JSON
// plus a trailing newline, exactly what the CLI writes and exactly what
// Verify regenerates for the byte-identical comparison.
func (r *Report) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("pipeline: encode report: %w", err)
	}
	return append(data, '\n'), nil
}
