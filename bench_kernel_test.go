package darkcrowd

// Data-path kernel benchmarks at Twitter scale 20 and 40 — the workloads
// tracked in BENCH_placement.json (see cmd/benchgen -bench). Scale divides
// the Table I user counts, so scale 20 is the heavier input (~1,128 active
// users) and scale 40 the lighter (~567).
//
// Run the tracked subset with:
//
//	go test -bench 'Placement|Profile|EMD' -benchmem

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/stats"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
)

// kernelState holds one scale's shared inputs, built once.
type kernelState struct {
	ds       *trace.Dataset
	generic  *profile.GenericResult
	profiles map[string]profile.Profile
	csv      []byte
}

var (
	kernelMu     sync.Mutex
	kernelStates = map[int]*kernelState{}
)

func kernelSetup(b *testing.B, scale int) *kernelState {
	b.Helper()
	kernelMu.Lock()
	defer kernelMu.Unlock()
	if s, ok := kernelStates[scale]; ok {
		return s
	}
	s := &kernelState{}
	var err error
	if s.ds, err = synth.TwitterDataset(2018, synth.TwitterOptions{Scale: scale}); err != nil {
		b.Fatalf("kernel bench setup (scale %d): %v", scale, err)
	}
	if s.generic, err = profile.BuildGeneric(s.ds, profile.GenericOptions{}); err != nil {
		b.Fatalf("kernel bench setup (scale %d): %v", scale, err)
	}
	s.profiles = s.generic.UserProfiles
	var buf bytes.Buffer
	if err := s.ds.WriteCSV(&buf); err != nil {
		b.Fatalf("kernel bench setup (scale %d): %v", scale, err)
	}
	s.csv = buf.Bytes()
	kernelStates[scale] = s
	return s
}

func eachScale(b *testing.B, fn func(b *testing.B, s *kernelState)) {
	for _, scale := range []int{20, 40} {
		scale := scale
		b.Run(fmt.Sprintf("scale=%d", scale), func(b *testing.B) {
			s := kernelSetup(b, scale)
			b.ReportAllocs()
			b.ResetTimer()
			fn(b, s)
		})
	}
}

// BenchmarkProfileBuild measures BuildUserProfiles over the whole labelled
// dataset — the columnar, allocation-free Eq. 1 path.
func BenchmarkProfileBuild(b *testing.B) {
	eachScale(b, func(b *testing.B, s *kernelState) {
		for i := 0; i < b.N; i++ {
			if _, err := profile.BuildUserProfiles(s.ds, profile.BuildOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGenericProfileBuild measures the full BuildGeneric pipeline
// (per-region filtering, holiday removal, local-frame profiles, aggregate).
func BenchmarkGenericProfileBuild(b *testing.B) {
	eachScale(b, func(b *testing.B, s *kernelState) {
		for i := 0; i < b.N; i++ {
			if _, err := profile.BuildGeneric(s.ds, profile.GenericOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPlacement measures PlaceUsers over every active user — 24 zone
// distances per user through the all-rotations EMD kernel.
func BenchmarkPlacement(b *testing.B) {
	eachScale(b, func(b *testing.B, s *kernelState) {
		for i := 0; i < b.N; i++ {
			if _, err := geoloc.PlaceUsers(s.profiles, s.generic.Generic, geoloc.PlaceOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDatasetIndexProfileViews measures a cold columnar index build
// plus the ByUser view it serves.
func BenchmarkDatasetIndexProfileViews(b *testing.B) {
	eachScale(b, func(b *testing.B, s *kernelState) {
		for i := 0; i < b.N; i++ {
			s.ds.InvalidateIndex()
			if got := s.ds.ByUser(); len(got) == 0 {
				b.Fatal("empty ByUser")
			}
		}
	})
}

// BenchmarkCSVReadProfileTrace measures dataset load through the
// fixed-layout time parser and ID interning.
func BenchmarkCSVReadProfileTrace(b *testing.B) {
	eachScale(b, func(b *testing.B, s *kernelState) {
		for i := 0; i < b.N; i++ {
			if _, err := trace.ReadCSVHint("bench", bytes.NewReader(s.csv), s.ds.NumPosts()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCSVWriteProfileTrace measures dataset serialization with the
// reused timestamp buffer.
func BenchmarkCSVWriteProfileTrace(b *testing.B) {
	eachScale(b, func(b *testing.B, s *kernelState) {
		var buf bytes.Buffer
		buf.Grow(len(s.csv))
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := s.ds.WriteCSV(&buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEMDAllRotations measures the batched placement kernel: all 24
// zone distances in one call.
func BenchmarkEMDAllRotations(b *testing.B) {
	s := benchSetup(b)
	p := s.profileA.Slice()
	q := s.profileB.Slice()
	out := make([]float64, len(p))
	scratch := make([]float64, 2*len(p))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.EMDCircularAllRotations(p, q, out, scratch); err != nil {
			b.Fatal(err)
		}
	}
}
