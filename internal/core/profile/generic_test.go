package profile

import (
	"testing"

	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

func buildTestTwitter(t *testing.T, seed int64, scale int) *trace.Dataset {
	t.Helper()
	ds, err := synth.TwitterDataset(seed, synth.TwitterOptions{Scale: scale})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuildGenericBasics(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("heavy synthesis in -short mode")
	}
	ds := buildTestTwitter(t, 501, 60)
	res, err := BuildGeneric(ds, GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Generic.Sum(), 1, 1e-9) {
		t.Errorf("generic profile sums to %g", res.Generic.Sum())
	}
	if len(res.PerRegion) != 14 {
		t.Errorf("%d region profiles, want 14", len(res.PerRegion))
	}
	// The generic profile is in the local frame: evening peak in 17..22,
	// night trough in 1..7 (§III).
	peak := argmaxProfile(res.Generic)
	if peak < 17 || peak > 22 {
		t.Errorf("generic peak at %d, want 17..22", peak)
	}
	var nightMass, eveningMass float64
	for h := 1; h <= 6; h++ {
		nightMass += res.Generic[h]
	}
	for h := 17; h <= 22; h++ {
		eveningMass += res.Generic[h]
	}
	if nightMass > eveningMass/3 {
		t.Errorf("night mass %g vs evening %g: trough missing", nightMass, eveningMass)
	}
}

func argmaxProfile(p Profile) int {
	best := 0
	for i := range p {
		if p[i] > p[best] {
			best = i
		}
	}
	return best
}

func TestCrossCountryPearson(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("heavy synthesis in -short mode")
	}
	// The paper: after shifting to a common time zone, any two country
	// profiles correlate at r ~ 0.9 on average.
	ds := buildTestTwitter(t, 502, 30)
	res, err := BuildGeneric(ds, GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	codes := []string{"br", "us-ca", "fr", "de", "it", "jp", "my", "uk", "tr"}
	var sum float64
	var n int
	for i := 0; i < len(codes); i++ {
		for j := i + 1; j < len(codes); j++ {
			a, okA := res.PerRegion[codes[i]]
			b, okB := res.PerRegion[codes[j]]
			if !okA || !okB {
				t.Fatalf("missing region profile for %s or %s", codes[i], codes[j])
			}
			r, err := a.Pearson(b)
			if err != nil {
				t.Fatal(err)
			}
			sum += r
			n++
		}
	}
	avg := sum / float64(n)
	if avg < 0.85 {
		t.Errorf("average cross-country Pearson = %.3f, want ~0.9", avg)
	}
}

func TestGenericMatchesShiftedRegions(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("heavy synthesis in -short mode")
	}
	// Fig. 2: the generic profile equals each region's local profile up to
	// noise — Pearson close to 1 after alignment (both are local-frame).
	ds := buildTestTwitter(t, 503, 40)
	res, err := BuildGeneric(ds, GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range []string{"de", "jp", "br"} {
		rp, ok := res.PerRegion[code]
		if !ok {
			t.Fatalf("missing %s", code)
		}
		r, err := rp.Pearson(res.Generic)
		if err != nil {
			t.Fatal(err)
		}
		if r < 0.9 {
			t.Errorf("%s vs generic Pearson = %.3f, want > 0.9", code, r)
		}
	}
}

func TestBuildGenericActiveUserCounts(t *testing.T) {
	t.Parallel()
	ds := buildTestTwitter(t, 504, 100)
	res, err := BuildGeneric(ds, GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Scale 100: Brazil 37 generated; nearly all should survive the
	// 30-post threshold at the default 90 posts/user volume.
	if res.ActiveUsers["br"] < 30 {
		t.Errorf("Brazilian active users = %d, want ~37", res.ActiveUsers["br"])
	}
}

func TestBuildGenericErrors(t *testing.T) {
	t.Parallel()
	if _, err := BuildGeneric(&trace.Dataset{Name: "no-labels"}, GenericOptions{}); err == nil {
		t.Error("dataset without ground truth should fail")
	}
	bad := &trace.Dataset{
		Name:        "bad-code",
		Posts:       []trace.Post{},
		GroundTruth: map[string]string{"u": "not-a-region"},
	}
	if _, err := BuildGeneric(bad, GenericOptions{}); err == nil {
		t.Error("unknown region code should fail")
	}
}

func TestPolishRemovesBots(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("heavy synthesis in -short mode")
	}
	de := mustRegion(t, "de")
	ds, err := synth.GenerateCrowd(505, synth.CrowdConfig{
		Name: "polish",
		Groups: []synth.Group{
			{Region: de, Users: 40, PostsPerUser: 120},
			{Region: de, Users: 8, PostsPerUser: 240, Kind: synth.KindBot, IDPrefix: "bot"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := BuildUserProfiles(ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Reference generic from a clean dataset.
	clean := buildTestTwitter(t, 506, 60)
	res, err := BuildGeneric(clean, GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	polished, err := Polish(profiles, res.Generic, true)
	if err != nil {
		t.Fatal(err)
	}
	removedBots := 0
	removedHumans := 0
	for _, id := range polished.Removed {
		if len(id) >= 3 && id[:3] == "bot" {
			removedBots++
		} else {
			removedHumans++
		}
	}
	if removedBots < 6 {
		t.Errorf("polish removed %d/8 bots, want >= 6 (removed: %v)", removedBots, polished.Removed)
	}
	if removedHumans > 4 {
		t.Errorf("polish removed %d regular users", removedHumans)
	}
	if polished.Iterations < 1 {
		t.Error("no polish iterations recorded")
	}
	if len(polished.Kept)+len(polished.Removed) != len(profiles) {
		t.Error("kept + removed != total")
	}
}

func TestPolishKeepsCleanCrowd(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("heavy synthesis in -short mode")
	}
	de := mustRegion(t, "de")
	ds, err := synth.GenerateCrowd(507, synth.CrowdConfig{
		Name:   "clean",
		Groups: []synth.Group{{Region: de, Users: 30, PostsPerUser: 120}},
	})
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := BuildUserProfiles(ds, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	clean := buildTestTwitter(t, 508, 60)
	res, err := BuildGeneric(clean, GenericOptions{})
	if err != nil {
		t.Fatal(err)
	}
	polished, err := Polish(profiles, res.Generic, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(polished.Removed) > len(profiles)/10 {
		t.Errorf("polish removed %d of %d clean users", len(polished.Removed), len(profiles))
	}
}

func mustRegion(t *testing.T, code string) tz.Region {
	t.Helper()
	r, err := tz.ByCode(code)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestShiftFractional(t *testing.T) {
	t.Parallel()
	var p Profile
	p[10] = 1
	// Integer fractional shift equals Shift.
	if p.ShiftFractional(3) != p.Shift(3) {
		t.Error("ShiftFractional(3) != Shift(3)")
	}
	if p.ShiftFractional(-2) != p.Shift(-2) {
		t.Error("ShiftFractional(-2) != Shift(-2)")
	}
	// Half shift splits mass between bins 10 and 11.
	half := p.ShiftFractional(0.5)
	if !almostEqual(half[10], 0.5, 1e-12) || !almostEqual(half[11], 0.5, 1e-12) {
		t.Errorf("ShiftFractional(0.5) = %v", half)
	}
	// Mass conservation.
	if !almostEqual(p.ShiftFractional(1.37).Sum(), 1, 1e-12) {
		t.Error("fractional shift lost mass")
	}
	// Wrap across the seam.
	var q Profile
	q[23] = 1
	w := q.ShiftFractional(0.5)
	if !almostEqual(w[23], 0.5, 1e-12) || !almostEqual(w[0], 0.5, 1e-12) {
		t.Errorf("seam shift = %v", w)
	}
	// Negative fractional.
	neg := p.ShiftFractional(-0.25)
	if !almostEqual(neg[9], 0.25, 1e-12) || !almostEqual(neg[10], 0.75, 1e-12) {
		t.Errorf("ShiftFractional(-0.25): bin9=%g bin10=%g", neg[9], neg[10])
	}
}
