// Command forumsim runs the paper's collection-and-analysis path end to
// end, fully in process:
//
//  1. boot an onion-routing network with a configurable relay count;
//  2. synthesize a Dark Web forum crowd (one of the paper's five §V
//     forums, or a custom region mixture);
//  3. host the forum as a hidden service, with a skewed server clock;
//  4. scrape it through a three-hop circuit — registration, Welcome-thread
//     clock probe, full pagination;
//  5. polish the dataset and geolocate the crowd, printing the uncovered
//     time-zone components next to the ground truth.
//
// Usage:
//
//	forumsim                           # Dream Market, paper census
//	forumsim -forum "CRD Club"         # another §V forum
//	forumsim -scale 4                  # quarter-size crowd (faster)
//	forumsim -relays 12 -seed 7
//	forumsim -serve 127.0.0.1:8080     # host over plain HTTP instead
//
// With -serve the onion pipeline is skipped: the synthetic forum is hosted
// directly over plain HTTP (for darkcrowd scrape and crawler testing)
// until SIGINT/SIGTERM, then drained gracefully.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/crawler"
	"darkcrowd/internal/forum"
	"darkcrowd/internal/onion"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/tz"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "forumsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("forumsim", flag.ContinueOnError)
	var (
		forumName    = fs.String("forum", "Dream Market", "forum to simulate (a §V forum name)")
		scale        = fs.Int("scale", 1, "divide the forum census by this factor")
		relays       = fs.Int("relays", 9, "number of onion relays")
		seed         = fs.Int64("seed", 42, "seed for all synthetic data")
		twitterScale = fs.Int("twitter-scale", 40, "scale of the reference Twitter dataset")
		serveAddr    = fs.String("serve", "", "host the forum over plain HTTP on this address (skips the onion pipeline; Ctrl-C / SIGTERM to stop)")

		failEvery = fs.Int("fail-every", 0, "with -serve, answer 503 on every Nth request (0 = never; for crawler testing)")
		latency   = fs.Duration("latency", 0, "with -serve, delay every response by this much")

		dropProb  = fs.Float64("drop", 0, "probability of dropping each relay cell")
		resetProb = fs.Float64("reset", 0, "probability of resetting the circuit under each relay cell")
		delayProb = fs.Float64("delay-prob", 0, "probability of delaying each relay cell")
		delay     = fs.Duration("delay", 20*time.Millisecond, "how long a delayed cell stalls")
		faultSeed = fs.Int64("fault-seed", 7, "seed for the fault plan")
		maxFaults = fs.Int("max-faults", 0, "total fault budget (0 = unlimited)")
		retries   = fs.Int("retries", crawler.DefaultMaxAttempts, "crawler attempts per request")
		timeout   = fs.Duration("timeout", 5*time.Second, "crawler per-request timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Crowd + forum, through the shared sim constructor (scaled census,
	// ground-truth crowd, import, skewed server clock).
	sim, err := forum.NewSim(forum.ServeConfig{
		Forum:     *forumName,
		Seed:      *seed,
		Scale:     *scale,
		FailEvery: *failEvery,
		Latency:   *latency,
	})
	if err != nil {
		return err
	}
	spec, f := sim.Spec, sim.Forum

	fmt.Fprintf(out, "=== %s (%s)\n", spec.Name, spec.Onion)
	fmt.Fprintf(out, "ground truth: %d users, ~%d posts, mixture:\n", spec.Users, spec.Posts)
	codes := make([]string, 0, len(spec.Mix))
	for code := range spec.Mix {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		region, err := tz.ByCode(code)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  %5.1f%%  %s (%s)\n", spec.Mix[code]*100, region.Name, region.StandardOffset)
	}
	fmt.Fprintf(out, "server clock skew: %+dh (to be discovered by the probe)\n\n", spec.ServerOffsetHours)
	fmt.Fprintf(out, "forum holds %d posts by %d members\n", f.NumPosts(), f.NumMembers())

	// Plain-HTTP hosting mode: no onion network, no scrape — just the
	// forum server with a graceful-shutdown lifecycle.
	if *serveAddr != "" {
		return servePlain(*serveAddr, sim, out)
	}

	// 1. Onion network (optionally with a seeded fault plan).
	fmt.Fprintf(out, "booting onion network with %d relays...\n", *relays)
	network := onion.NewNetwork(*seed)
	defer network.Close()
	if _, err := network.AddRelays(*relays); err != nil {
		return err
	}

	// 3. Hidden service.
	svc, err := onion.HostService(network, "forum-host", onion.DefaultIntroPoints)
	if err != nil {
		return err
	}
	defer svc.Close()
	server := &http.Server{Handler: f.Handler()}
	go func() { _ = server.Serve(svc.Listener()) }()
	defer server.Close()
	fmt.Fprintf(out, "forum is live as hidden service %s\n\n", svc.Onion())

	// Faults start only once the service is published: the intro circuits
	// are long-lived infrastructure built exactly once, while the crawl
	// retries its way through whatever the fabric does to it.
	var injector *onion.FaultInjector
	if *dropProb > 0 || *resetProb > 0 || *delayProb > 0 {
		injector = onion.NewFaultInjector(onion.FaultConfig{
			Seed:      *faultSeed,
			DropProb:  *dropProb,
			ResetProb: *resetProb,
			DelayProb: *delayProb,
			Delay:     *delay,
			MaxFaults: *maxFaults,
		})
		network.SetFaultInjector(injector)
		fmt.Fprintf(out, "fault injection on: drop %.3f, reset %.3f, delay %.3f (%v), budget %d\n",
			*dropProb, *resetProb, *delayProb, *delay, *maxFaults)
	}

	// 4. Scrape through a circuit.
	torClient, err := onion.NewClient(network, "scraper")
	if err != nil {
		return err
	}
	defer torClient.Close()
	c := &crawler.Crawler{
		HTTPClient: &http.Client{Transport: &http.Transport{DialContext: torClient.DialContext}},
		BaseURL:    "http://" + svc.Onion(),
		Timeout:    *timeout,
		Retry:      crawler.RetryPolicy{MaxAttempts: *retries},
	}
	fmt.Fprintln(out, "scraping through the onion circuit (probe + full pagination)...")
	start := time.Now()
	res, err := c.Scrape(spec.Name)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "scraped %d posts from %d boards / %d threads / %d pages in %s\n",
		res.Dataset.NumPosts(), res.Boards, res.Threads, res.Pages, time.Since(start).Round(time.Millisecond))
	if injector != nil {
		fmt.Fprintf(out, "survived %s with %d crawler retries\n", injector.Stats(), res.Retries)
	}
	fmt.Fprintf(out, "measured server offset: %v (configured %+dh)\n\n", res.ServerOffset, spec.ServerOffsetHours)

	// 5. Geolocate.
	fmt.Fprintf(out, "building reference profiles (Twitter stand-in at scale 1/%d)...\n", *twitterScale)
	twitter, err := synth.TwitterDataset(*seed+1, synth.TwitterOptions{Scale: *twitterScale})
	if err != nil {
		return err
	}
	gen, err := profile.BuildGeneric(twitter, profile.GenericOptions{})
	if err != nil {
		return err
	}
	profiles, err := profile.BuildUserProfiles(res.Dataset, profile.BuildOptions{})
	if err != nil {
		return err
	}
	polished, err := profile.Polish(profiles, gen.Generic, true)
	if err != nil {
		return err
	}
	geo, err := geoloc.Geolocate(polished.Kept, gen.Generic, geoloc.GeolocateOptions{})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "\n=== geolocation of the %s crowd (%d active users after polishing)\n",
		spec.Name, len(polished.Kept))
	for i, comp := range geo.Components {
		fmt.Fprintf(out, "  component %d: %s\n", i+1, comp)
	}
	fmt.Fprintf(out, "  fit quality: avg point distance %.4f, std %.4f\n", geo.AvgDistance, geo.StdDistance)
	return nil
}

// serveTestHook, when non-nil, receives the resolved listen address and a
// function that triggers shutdown, letting tests drive the serve lifecycle
// without sending real signals.
var serveTestHook func(addr string, stop context.CancelFunc)

// servePlain hosts the simulated forum over plain HTTP until SIGINT/SIGTERM,
// then drains in-flight requests. The listener is bound before anything is
// printed, so the advertised URL is always connectable (and ":0" renders as
// the real resolved port).
func servePlain(addr string, sim *forum.Sim, out io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Fprintf(out, "serving %s (%d members, %d posts, clock skew %+dh) on http://%s\n",
		sim.Spec.Name, sim.Forum.NumMembers(), sim.Forum.NumPosts(),
		sim.Spec.ServerOffsetHours, ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if serveTestHook != nil {
		serveTestHook(ln.Addr().String(), stop)
	}

	srv := &http.Server{Handler: sim.Forum.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "shutting down...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	<-errCh // always http.ErrServerClosed after a clean Shutdown
	return nil
}
