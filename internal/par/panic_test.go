package par

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRangesRecoversPanicToShardPanicError(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 4} {
		err := Ranges(context.Background(), workers, 16, func(start, end int) error {
			for i := start; i < end; i++ {
				if i == 5 {
					panic("poisoned item 5")
				}
			}
			return nil
		})
		var pe *ShardPanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v (%T), want *ShardPanicError", workers, err, err)
		}
		if pe.Value != "poisoned item 5" {
			t.Errorf("workers=%d: panic value %v", workers, pe.Value)
		}
		if !(pe.Start <= 5 && 5 < pe.End) {
			t.Errorf("workers=%d: shard range [%d,%d) does not contain the poisoned item", workers, pe.Start, pe.End)
		}
		if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "panic_test") {
			t.Errorf("workers=%d: stack not captured:\n%s", workers, pe.Stack)
		}
		if !strings.Contains(pe.Error(), "poisoned item 5") {
			t.Errorf("workers=%d: Error() = %q", workers, pe.Error())
		}
	}
}

// TestRangesPanicDoesNotStopOtherShards: a panicking shard is contained —
// every other shard still runs to completion.
func TestRangesPanicDoesNotStopOtherShards(t *testing.T) {
	t.Parallel()
	const n, workers = 64, 8
	var visited atomic.Int64
	err := Ranges(context.Background(), workers, n, func(start, end int) error {
		if start == n/2 {
			panic("mid shard down")
		}
		visited.Add(int64(end - start))
		return nil
	})
	var pe *ShardPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *ShardPanicError", err)
	}
	if visited.Load() != n-n/workers {
		t.Errorf("visited %d items, want %d (all shards but the panicking one)", visited.Load(), n-n/workers)
	}
}

// TestRangesObservedPanicStillReportsOtherShards: panic containment
// composes with the shard observer — surviving shards are still reported.
func TestRangesObservedPanicStillReports(t *testing.T) {
	t.Parallel()
	log := &shardLog{}
	err := RangesObserved(context.Background(), 4, 16, func(start, end int) error {
		if start == 0 {
			panic("first shard")
		}
		return nil
	}, log)
	var pe *ShardPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *ShardPanicError", err)
	}
	// Panic recovery happens inside the shard runner, before the observer
	// call — so even the panicking shard is reported (the observer sees the
	// attempt and its timing), alongside the three surviving shards.
	if len(log.reports) != 4 {
		t.Fatalf("%d shard reports, want 4", len(log.reports))
	}
}

// TestRangesLowestShardFailureWinsProperty is the satellite property test:
// for random item counts, worker counts and random mixtures of erroring and
// panicking shards, the failure surfaced by Ranges is always the one of the
// lowest-indexed failing shard — never a scheduling-dependent competitor.
func TestRangesLowestShardFailureWinsProperty(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(20180614))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(97)
		workers := 1 + rng.Intn(12)
		w := Workers(workers, n)
		// Decide each shard's fate: 0 = ok, 1 = error, 2 = panic.
		fates := make([]int, w)
		anyFail := false
		for s := range fates {
			fates[s] = rng.Intn(3)
			if fates[s] != 0 {
				anyFail = true
			}
		}
		shardOf := func(start int) int {
			for s := 0; s < w; s++ {
				if start == s*n/w {
					return s
				}
			}
			t.Fatalf("trial %d: no shard starts at %d", trial, start)
			return -1
		}
		err := Ranges(context.Background(), workers, n, func(start, end int) error {
			s := shardOf(start)
			switch fates[s] {
			case 1:
				return fmt.Errorf("shard %d error", s)
			case 2:
				panic(fmt.Sprintf("shard %d panic", s))
			}
			return nil
		})
		lowest := -1
		for s, f := range fates {
			// Empty shards never run, so they cannot fail.
			if f != 0 && s*n/w < (s+1)*n/w {
				lowest = s
				break
			}
		}
		if lowest == -1 {
			if anyFail && err != nil {
				// Every failing shard was empty: no failure can surface.
				t.Fatalf("trial %d: error %v from empty shards", trial, err)
			}
			if err != nil {
				t.Fatalf("trial %d: unexpected error %v", trial, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("trial %d (n=%d w=%d fates=%v): no error, want shard %d failure", trial, n, w, fates, lowest)
		}
		var pe *ShardPanicError
		switch fates[lowest] {
		case 1:
			want := fmt.Sprintf("shard %d error", lowest)
			if err.Error() != want {
				t.Fatalf("trial %d (n=%d w=%d fates=%v): got %q, want %q", trial, n, w, fates, err, want)
			}
		case 2:
			if !errors.As(err, &pe) {
				t.Fatalf("trial %d: got %v, want panic error of shard %d", trial, err, lowest)
			}
			if want := fmt.Sprintf("shard %d panic", lowest); pe.Value != want {
				t.Fatalf("trial %d (n=%d w=%d fates=%v): panic value %v, want %q", trial, n, w, fates, pe.Value, want)
			}
		}
	}
}
