package synth

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

// UserKind classifies the behavioural template of a synthetic user.
type UserKind int

// User kinds. Regular users follow the diurnal rhythm of their region;
// bots post uniformly around the clock; shift workers follow a rhythm
// displaced by roughly half a day (§IV-C mentions both as the sources of
// flat or misleading profiles).
const (
	KindRegular UserKind = iota + 1
	KindBot
	KindShiftWorker
)

// String implements fmt.Stringer.
func (k UserKind) String() string {
	switch k {
	case KindRegular:
		return "regular"
	case KindBot:
		return "bot"
	case KindShiftWorker:
		return "shift-worker"
	default:
		return fmt.Sprintf("UserKind(%d)", int(k))
	}
}

// Group describes one homogeneous sub-population of a crowd.
type Group struct {
	// Region is where the group lives; its offset and DST rule drive the
	// local-to-UTC conversion.
	Region tz.Region
	// Users is the number of users to generate.
	Users int
	// PostsPerUser is the target mean number of posts per user over the
	// generation window. Defaults to 80.
	PostsPerUser float64
	// Label tags the group's users in the dataset ground truth. Defaults
	// to Region.Code.
	Label string
	// Kind selects the behavioural template. Defaults to KindRegular.
	Kind UserKind
	// IDPrefix distinguishes user IDs across groups. Defaults to Label.
	IDPrefix string
	// DeliberateShift displaces the whole group's rhythm by this many
	// hours — the §VII adversarial scenario where "the crowd coordinates
	// and users deliberately post with a profile of a different region".
	DeliberateShift float64
}

// CrowdConfig configures GenerateCrowd.
type CrowdConfig struct {
	// Name names the resulting dataset.
	Name string
	// Groups lists the sub-populations.
	Groups []Group
	// Start and End bound the generation window. Default: the whole of
	// 2017 (UTC).
	Start, End time.Time
	// Rhythm is the base diurnal curve. Defaults to DefaultRhythm().
	Rhythm Rhythm
	// ChronotypeSigma is the standard deviation, in hours, of the per-user
	// rhythm displacement. Defaults to 1.0.
	ChronotypeSigma float64
	// TasteSigma is the lognormal sigma of per-user per-hour propensity
	// noise. Defaults to 0.25.
	TasteSigma float64
	// VolumeSigma is the lognormal sigma of the per-user activity volume
	// multiplier (heavy-tailed posting volume). Defaults to 0.35.
	VolumeSigma float64
	// SkipHolidaySuppression disables the reduced activity during the
	// region's holiday windows.
	SkipHolidaySuppression bool
	// WeekendEffect enables weekend behaviour: on local Saturdays and
	// Sundays the rhythm runs about an hour later (late nights, late
	// mornings) with slightly higher volume. Kept optional because the
	// paper's profiles aggregate all days of the week.
	WeekendEffect bool
}

func (c CrowdConfig) withDefaults() CrowdConfig {
	if c.Start.IsZero() {
		c.Start = time.Date(2017, time.January, 1, 0, 0, 0, 0, time.UTC)
	}
	if c.End.IsZero() {
		c.End = time.Date(2018, time.January, 1, 0, 0, 0, 0, time.UTC)
	}
	zero := Rhythm{}
	if c.Rhythm == zero {
		c.Rhythm = DefaultRhythm()
	}
	if c.ChronotypeSigma == 0 {
		c.ChronotypeSigma = 1.0
	}
	if c.TasteSigma == 0 {
		c.TasteSigma = 0.25
	}
	if c.VolumeSigma == 0 {
		c.VolumeSigma = 0.35
	}
	return c
}

// GenerateCrowd synthesizes a labelled activity dataset from the config,
// deterministically under the given seed.
func GenerateCrowd(seed int64, cfg CrowdConfig) (*trace.Dataset, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Groups) == 0 {
		return nil, errors.New("synth: no groups configured")
	}
	if !cfg.End.After(cfg.Start) {
		return nil, fmt.Errorf("synth: window end %v not after start %v", cfg.End, cfg.Start)
	}
	rng := rand.New(rand.NewSource(seed))
	// Emit straight into a columnar builder: user IDs are interned once per
	// user and each post is two integer appends, instead of growing a
	// []trace.Post of (string, time.Time) rows post by post.
	hint := 0
	for _, g := range cfg.Groups {
		ppu := g.PostsPerUser
		if ppu == 0 {
			ppu = 80
		}
		if g.Users > 0 {
			hint += int(float64(g.Users) * ppu)
		}
	}
	b := trace.NewBuilder(hint)
	gt := make(map[string]string)
	for gi, g := range cfg.Groups {
		if g.Users <= 0 {
			return nil, fmt.Errorf("synth: group %d has %d users", gi, g.Users)
		}
		if g.PostsPerUser == 0 {
			g.PostsPerUser = 80
		}
		if g.Label == "" {
			g.Label = g.Region.Code
		}
		if g.IDPrefix == "" {
			g.IDPrefix = g.Label
		}
		if g.Kind == 0 {
			g.Kind = KindRegular
		}
		for ui := 0; ui < g.Users; ui++ {
			userID := fmt.Sprintf("%s-%04d", g.IDPrefix, ui)
			generateUser(rng, b, b.User(userID), g, cfg)
			gt[userID] = g.Label
		}
	}
	ds := b.Dataset(cfg.Name, true)
	ds.GroundTruth = gt
	return ds, nil
}

// generateUser walks the window hour by hour in UTC, activating (day, hour)
// cells with probability proportional to the user's rhythm evaluated at the
// DST-aware local hour, and emits 1..3 posts per active cell into the
// builder. Post instants are whole seconds, so the epoch-seconds column
// loses nothing.
func generateUser(rng *rand.Rand, b *trace.Builder, user int32, g Group, cfg CrowdConfig) {
	rhythm := userRhythm(rng, g.Kind, cfg)
	if g.DeliberateShift != 0 {
		rhythm = rhythm.Shifted(g.DeliberateShift)
	}

	days := cfg.End.Sub(cfg.Start).Hours() / 24
	// Expected posts = days * cellProb * rhythmTotal * meanPostsPerCell.
	const meanPostsPerCell = 1.3
	volume := math.Exp(rng.NormFloat64() * cfg.VolumeSigma)
	target := g.PostsPerUser * volume
	cellProb := target / (days * rhythm.Total() * meanPostsPerCell)
	if cellProb > 0.95 {
		cellProb = 0.95
	}

	var weekendRhythm Rhythm
	if cfg.WeekendEffect {
		weekendRhythm = rhythm.Shifted(1).Scale(1.15)
	}

	for t := cfg.Start; t.Before(cfg.End); t = t.Add(time.Hour) {
		local := g.Region.LocalTime(t)
		localHour := local.Hour()
		active := rhythm
		if cfg.WeekendEffect && (local.Weekday() == time.Saturday || local.Weekday() == time.Sunday) {
			active = weekendRhythm
		}
		p := cellProb * active[localHour]
		if !cfg.SkipHolidaySuppression && g.Region.IsHoliday(t) {
			p *= 0.25 // holidays: "periods of particularly low activity"
		}
		if rng.Float64() >= p {
			continue
		}
		n := 1
		for n < 3 && rng.Float64() < 0.25 {
			n++
		}
		hourStart := t.Unix()
		for i := 0; i < n; i++ {
			b.Add(user, hourStart+int64(rng.Intn(3600)))
		}
	}
}

// userRhythm derives a personal rhythm from the base curve: kind template,
// chronotype displacement, and hour-level taste noise.
func userRhythm(rng *rand.Rand, kind UserKind, cfg CrowdConfig) Rhythm {
	var base Rhythm
	switch kind {
	case KindBot:
		base = FlatRhythm()
		// Bots get mild noise but no chronotype.
		for h := range base {
			base[h] *= math.Exp(rng.NormFloat64() * 0.05)
		}
		return base
	case KindShiftWorker:
		// Night shift: the day pattern displaced by 10-14 hours.
		shift := 10 + rng.Float64()*4
		base = cfg.Rhythm.Shifted(shift)
	default:
		base = cfg.Rhythm
	}
	chronotype := rng.NormFloat64() * cfg.ChronotypeSigma
	base = base.Shifted(chronotype)
	for h := range base {
		base[h] *= math.Exp(rng.NormFloat64() * cfg.TasteSigma)
	}
	return base
}
