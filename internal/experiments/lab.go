// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV-V): Table I (dataset census), Figures 1-7 and Table II
// (methodology validation on the Twitter stand-in), Figures 8-13 (the five
// Dark Web forums, scraped end to end from the simulated hidden services),
// and the §V-F hemisphere analysis. Each experiment produces a Result with
// the paper's claim, the measured outcome, a pass/fail shape check and the
// full rendered rows/series.
package experiments

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/crawler"
	"darkcrowd/internal/forum"
	"darkcrowd/internal/onion"
	"darkcrowd/internal/stats"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
	"darkcrowd/internal/viz"
)

// Config tunes a Lab.
type Config struct {
	// Seed drives all synthetic data generation.
	// Defaults to 2018 (the paper's year).
	Seed int64
	// TwitterScale divides the Table I user counts to bound runtime;
	// 1 reproduces the full 22,576-user dataset. Defaults to 20.
	TwitterScale int
	// ForumScale divides the per-forum user counts; 1 reproduces the
	// paper's census exactly. Defaults to 1.
	ForumScale int
	// UseOnion routes every forum scrape through the simulated Tor
	// network (hidden service + three-hop circuits) instead of a local
	// HTTP listener. Slower, but exercises the paper's full collection
	// path.
	UseOnion bool
	// Parallelism is the worker count handed to the profile-building,
	// placement and EM stages of every experiment: 0 uses every core
	// (GOMAXPROCS), 1 forces the sequential paths. Every table and figure
	// is bit-identical across settings.
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 2018
	}
	if c.TwitterScale <= 0 {
		c.TwitterScale = 20
	}
	if c.ForumScale <= 0 {
		c.ForumScale = 1
	}
	return c
}

// Result is one regenerated table or figure.
type Result struct {
	// ID is the experiment identifier ("table1", "fig3", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Paper states what the paper reports.
	Paper string
	// Measured states what this reproduction measured.
	Measured string
	// Pass reports whether the paper's qualitative shape held.
	Pass bool
	// Lines is the full rendered output.
	Lines []string
	// Charts carries renderable figure data; cmd/benchgen -svg writes
	// each as an SVG file.
	Charts []NamedChart
	// Elapsed is the experiment wall time.
	Elapsed time.Duration
}

// NamedChart pairs a chart with a filename stem.
type NamedChart struct {
	Name  string
	Chart viz.BarChart
}

// Lab runs experiments with shared, lazily computed state.
type Lab struct {
	cfg Config

	mu sync.Mutex

	twitterDS  *trace.Dataset
	genericRes *profile.GenericResult

	// placements caches single-country placement histograms by region
	// code.
	placements map[string]*geoloc.Placement
	// forumGeo caches the full pipeline output per forum name.
	forumGeo map[string]*forumRun
}

// forumRun is the cached outcome of scraping and geolocating one forum.
type forumRun struct {
	spec       synth.ForumSpec
	truth      *trace.Dataset
	scraped    *trace.Dataset
	offset     time.Duration
	population profile.Profile
	geo        *geoloc.Geolocation
	users      int
}

// NewLab creates a Lab.
func NewLab(cfg Config) *Lab {
	return &Lab{
		cfg:        cfg.withDefaults(),
		placements: make(map[string]*geoloc.Placement),
		forumGeo:   make(map[string]*forumRun),
	}
}

// buildOptions is the lab's default profile-building configuration.
func (l *Lab) buildOptions() profile.BuildOptions {
	return profile.BuildOptions{Parallelism: l.cfg.Parallelism}
}

// placeOptions is the lab's default placement configuration.
func (l *Lab) placeOptions() geoloc.PlaceOptions {
	return geoloc.PlaceOptions{Parallelism: l.cfg.Parallelism}
}

// geoOptions is the lab's default full-pipeline configuration.
func (l *Lab) geoOptions() geoloc.GeolocateOptions {
	return geoloc.GeolocateOptions{
		Place: l.placeOptions(),
		EM:    stats.EMConfig{Parallelism: l.cfg.Parallelism},
	}
}

// Twitter returns (building once) the synthetic Twitter dataset.
func (l *Lab) Twitter() (*trace.Dataset, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.twitterLocked()
}

func (l *Lab) twitterLocked() (*trace.Dataset, error) {
	if l.twitterDS != nil {
		return l.twitterDS, nil
	}
	ds, err := synth.TwitterDataset(l.cfg.Seed, synth.TwitterOptions{Scale: l.cfg.TwitterScale})
	if err != nil {
		return nil, fmt.Errorf("experiments: build Twitter dataset: %w", err)
	}
	l.twitterDS = ds
	return ds, nil
}

// Generic returns (building once) the generic profile result.
func (l *Lab) Generic() (*profile.GenericResult, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.genericLocked()
}

func (l *Lab) genericLocked() (*profile.GenericResult, error) {
	if l.genericRes != nil {
		return l.genericRes, nil
	}
	ds, err := l.twitterLocked()
	if err != nil {
		return nil, err
	}
	res, err := profile.BuildGeneric(ds, profile.GenericOptions{Parallelism: l.cfg.Parallelism})
	if err != nil {
		return nil, fmt.Errorf("experiments: build generic profile: %w", err)
	}
	l.genericRes = res
	return res, nil
}

// placementFor returns (building once) the EMD placement of one Twitter
// country crowd against the generic zone profiles.
func (l *Lab) placementFor(code string) (*geoloc.Placement, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p, ok := l.placements[code]; ok {
		return p, nil
	}
	gen, err := l.genericLocked()
	if err != nil {
		return nil, err
	}
	ds, err := l.twitterLocked()
	if err != nil {
		return nil, err
	}
	region, err := tz.ByCode(code)
	if err != nil {
		return nil, err
	}
	sub := ds.FilterUsers(func(u string) bool { return ds.GroundTruth[u] == code })
	sub = profile.RemoveHolidays(sub, region)
	profiles, err := profile.BuildUserProfiles(sub, l.buildOptions())
	if err != nil {
		return nil, fmt.Errorf("experiments: profiles for %s: %w", code, err)
	}
	placement, err := geoloc.PlaceUsers(profiles, gen.Generic, l.placeOptions())
	if err != nil {
		return nil, fmt.Errorf("experiments: placement for %s: %w", code, err)
	}
	l.placements[code] = placement
	return placement, nil
}

// runForum executes the full pipeline for one of the five §V forums:
// synthesize the ground-truth crowd, host the forum (optionally as a
// hidden service), scrape it, polish the dataset, geolocate the crowd.
func (l *Lab) runForum(name string) (*forumRun, error) {
	l.mu.Lock()
	if fr, ok := l.forumGeo[name]; ok {
		l.mu.Unlock()
		return fr, nil
	}
	l.mu.Unlock()

	spec, err := synth.ForumSpecByName(name)
	if err != nil {
		return nil, err
	}
	scaled := spec
	if l.cfg.ForumScale > 1 {
		scaled.Users = spec.Users / l.cfg.ForumScale
		if scaled.Users < 20 {
			scaled.Users = 20
		}
		scaled.Posts = spec.Posts / l.cfg.ForumScale
		minPosts := scaled.Users * 50
		if scaled.Posts < minPosts {
			scaled.Posts = minPosts
		}
	}
	truth, err := synth.ForumCrowd(l.cfg.Seed+int64(len(name)), scaled)
	if err != nil {
		return nil, err
	}

	f := forum.New(forum.Config{
		Name:         spec.Name,
		ServerOffset: time.Duration(spec.ServerOffsetHours) * time.Hour,
		PageSize:     50,
	})
	if err := f.ImportCrowd(truth, forum.ImportOptions{}); err != nil {
		return nil, err
	}

	scrape, err := l.scrapeForum(f, spec)
	if err != nil {
		return nil, err
	}

	// Polishing (§IV-C, §V "after the cleaning step").
	gen, err := l.Generic()
	if err != nil {
		return nil, err
	}
	profiles, err := profile.BuildUserProfiles(scrape.Dataset, l.buildOptions())
	if err != nil {
		return nil, err
	}
	polished, err := profile.Polish(profiles, gen.Generic, true)
	if err != nil {
		return nil, err
	}

	// Population profile of the forum (Fig. 8-style).
	var list []profile.Profile
	for _, id := range profile.SortedUserIDs(polished.Kept) {
		list = append(list, polished.Kept[id])
	}
	population, err := profile.Aggregate(list)
	if err != nil {
		return nil, err
	}

	geo, err := geoloc.Geolocate(polished.Kept, gen.Generic, l.geoOptions())
	if err != nil {
		return nil, err
	}
	fr := &forumRun{
		spec:       spec,
		truth:      truth,
		scraped:    scrape.Dataset,
		offset:     scrape.ServerOffset,
		population: population,
		geo:        geo,
		users:      len(polished.Kept),
	}
	l.mu.Lock()
	l.forumGeo[name] = fr
	l.mu.Unlock()
	return fr, nil
}

// scrapeForum hosts the forum and runs the crawler against it, through the
// onion network when configured.
func (l *Lab) scrapeForum(f *forum.Forum, spec synth.ForumSpec) (*crawler.Result, error) {
	if !l.cfg.UseOnion {
		srv := httptest.NewServer(f.Handler())
		defer srv.Close()
		c := &crawler.Crawler{BaseURL: srv.URL}
		return c.Scrape(spec.Name)
	}

	n := onion.NewNetwork(l.cfg.Seed)
	defer n.Close()
	if _, err := n.AddRelays(8); err != nil {
		return nil, err
	}
	svc, err := onion.HostService(n, "host-"+spec.Onion, 2)
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	server := newOnionHTTPServer(f, svc)
	defer server.Close()

	torClient, err := onion.NewClient(n, "scraper")
	if err != nil {
		return nil, err
	}
	defer torClient.Close()
	c := &crawler.Crawler{
		HTTPClient: newOnionHTTPClient(torClient),
		BaseURL:    "http://" + svc.Onion(),
	}
	return c.Scrape(spec.Name)
}

// sortedForumNames returns the §V forums in paper order.
func sortedForumNames() []string {
	specs := synth.ForumSpecs()
	out := make([]string, 0, len(specs))
	for _, s := range specs {
		out = append(out, s.Name)
	}
	return out
}

// AllIDs lists every experiment in presentation order.
func AllIDs() []string {
	return []string{
		"table1",
		"fig1", "fig2", "fig3", "fig4", "fig5",
		"fig6a", "fig6b", "fig7",
		"table2",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"hemisphere",
		"discussion-delay", "discussion-adversary", "discussion-monitor",
		"ablate-distance", "ablate-polish", "ablate-threshold",
		"ablate-reference", "ablate-crowdsize",
		"crawl-faults",
	}
}

// Run executes one experiment by ID.
func (l *Lab) Run(id string) (*Result, error) {
	start := time.Now()
	var (
		res *Result
		err error
	)
	switch id {
	case "table1":
		res, err = l.TableI()
	case "fig1":
		res, err = l.Fig1()
	case "fig2":
		res, err = l.Fig2()
	case "fig3":
		res, err = l.SingleCountryPlacement("fig3", "de", 1)
	case "fig4":
		res, err = l.SingleCountryPlacement("fig4", "fr", 1)
	case "fig5":
		res, err = l.SingleCountryPlacement("fig5", "my", 8)
	case "fig6a":
		res, err = l.Fig6a()
	case "fig6b":
		res, err = l.Fig6b()
	case "fig7":
		res, err = l.Fig7()
	case "table2":
		res, err = l.TableII()
	case "fig8":
		res, err = l.Fig8()
	case "fig9":
		res, err = l.ForumPlacement("fig9", "CRD Club")
	case "fig10":
		res, err = l.ForumPlacement("fig10", "Italian DarkNet Community")
	case "fig11":
		res, err = l.ForumPlacement("fig11", "Dream Market")
	case "fig12":
		res, err = l.ForumPlacement("fig12", "The Majestic Garden")
	case "fig13":
		res, err = l.ForumPlacement("fig13", "Pedo Support Community")
	case "hemisphere":
		res, err = l.Hemisphere()
	case "discussion-delay":
		res, err = l.DiscussionDelay()
	case "discussion-adversary":
		res, err = l.DiscussionAdversary()
	case "discussion-monitor":
		res, err = l.DiscussionMonitor()
	case "ablate-distance":
		res, err = l.AblateDistance()
	case "ablate-polish":
		res, err = l.AblatePolish()
	case "ablate-threshold":
		res, err = l.AblateThreshold()
	case "ablate-reference":
		res, err = l.AblateReference()
	case "ablate-crowdsize":
		res, err = l.AblateCrowdSize()
	case "crawl-faults":
		res, err = l.CrawlFaults()
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, AllIDs())
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = id
	res.Elapsed = time.Since(start)
	return res, nil
}

// sortedMixKeys lists a forum mix's region codes in deterministic order.
func sortedMixKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
