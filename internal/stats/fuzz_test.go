package stats

// Fuzz targets for the EMD primitives, mirroring the wire-codec fuzzers in
// internal/onion: the distances must never panic — malformed input
// (length mismatch, negative mass, NaN, Inf) must surface as an error —
// and whenever they accept a pair they must behave like a metric:
// non-negative, exactly symmetric, and zero on identical inputs.

import (
	"encoding/binary"
	"math"
	"testing"
)

// decodeHistogramPair splits fuzz bytes into two float64 slices: the first
// byte picks the length split, the rest is consumed in 8-byte chunks.
// Arbitrary bit patterns decode to arbitrary floats — including NaN, Inf
// and negatives — which is exactly the hostile input space we want.
func decodeHistogramPair(data []byte) (p, q []float64) {
	if len(data) == 0 {
		return nil, nil
	}
	split := int(data[0])
	data = data[1:]
	var vals []float64
	for len(data) >= 8 {
		vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
		data = data[8:]
	}
	if split > len(vals) {
		split = len(vals)
	}
	return vals[:split], vals[split:]
}

func seedHistograms(f *testing.F) {
	f.Helper()
	f.Add([]byte{})
	// Two identical singleton histograms.
	buf := []byte{1}
	for _, v := range []float64{1, 1} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	f.Add(buf)
	// A valid 3/3 pair.
	buf = []byte{3}
	for _, v := range []float64{0.2, 0.3, 0.5, 0.5, 0.3, 0.2} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	f.Add(buf)
	// Negative mass and NaN must be rejected, not propagated.
	buf = []byte{2}
	for _, v := range []float64{-1, 2, math.NaN(), 1} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	f.Add(buf)
	// Length mismatch.
	buf = []byte{1}
	for _, v := range []float64{1, 0.5, 0.5} {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	f.Add(buf)
}

// fuzzEMD drives one EMD variant through the metric properties.
func fuzzEMD(f *testing.F, emd func(p, q []float64) (float64, error)) {
	seedHistograms(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, q := decodeHistogramPair(data)
		d, err := emd(p, q)
		if err != nil {
			return // rejected input: an error is the correct outcome
		}
		if math.IsNaN(d) || d < 0 {
			t.Fatalf("EMD(%v, %v) = %v; want finite non-negative", p, q, d)
		}
		back, err := emd(q, p)
		if err != nil {
			t.Fatalf("EMD accepted (p,q) but rejected (q,p): %v", err)
		}
		if math.Float64bits(d) != math.Float64bits(back) {
			t.Fatalf("EMD not symmetric: %v vs %v", d, back)
		}
		self, err := emd(p, p)
		if err != nil {
			t.Fatalf("EMD rejected identical pair it previously accepted: %v", err)
		}
		if self != 0 {
			t.Fatalf("EMD(p, p) = %v; want 0", self)
		}
	})
}

func FuzzEMDCircular(f *testing.F) {
	fuzzEMD(f, EMDCircular)
}

func FuzzEMDLinear(f *testing.F) {
	fuzzEMD(f, EMDLinear)
}

// FuzzEMDCircularScratch pins the scratch variant to the allocating one:
// same inputs, bit-identical output, scratch contents never change the
// result.
func FuzzEMDCircularScratch(f *testing.F) {
	seedHistograms(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, q := decodeHistogramPair(data)
		want, wantErr := EMDCircular(p, q)
		scratch := make([]float64, 2*len(p))
		for i := range scratch {
			scratch[i] = math.NaN() // stale garbage must not leak through
		}
		got, gotErr := EMDCircularScratch(p, q, scratch)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: %v vs %v", wantErr, gotErr)
		}
		if wantErr == nil && math.Float64bits(want) != math.Float64bits(got) {
			t.Fatalf("scratch variant diverged: %v vs %v", want, got)
		}
	})
}
