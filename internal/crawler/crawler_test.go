package crawler

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"darkcrowd/internal/forum"
	"darkcrowd/internal/onion"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

var testNow = time.Date(2017, time.June, 15, 10, 0, 0, 0, time.UTC)

// buildForum creates a forum with an imported Italian crowd and the given
// server offset, returning the forum and the ground-truth trace.
func buildForum(t *testing.T, offset time.Duration, users int) (*forum.Forum, *trace.Dataset) {
	t.Helper()
	f := forum.New(forum.Config{
		Name:         "Scrape Target",
		ServerOffset: offset,
		PageSize:     10,
		Clock:        func() time.Time { return testNow },
	})
	region, err := tz.ByCode("it")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.GenerateCrowd(99, synth.CrowdConfig{
		Name:   "crowd",
		Groups: []synth.Group{{Region: region, Users: users, PostsPerUser: 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ImportCrowd(ds, forum.ImportOptions{}); err != nil {
		t.Fatal(err)
	}
	return f, ds
}

func TestMeasureOffset(t *testing.T) {
	t.Parallel()
	tests := []struct {
		name   string
		offset time.Duration
	}{
		{"utc server", 0},
		{"plus three hours", 3 * time.Hour},
		{"minus five hours", -5 * time.Hour},
		{"deliberately odd", 90 * time.Minute},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f, _ := buildForum(t, tt.offset, 3)
			srv := httptest.NewServer(f.Handler())
			defer srv.Close()
			c := &Crawler{BaseURL: srv.URL, Clock: func() time.Time { return testNow }}
			got, err := c.MeasureOffset()
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.offset {
				t.Errorf("offset = %v, want %v", got, tt.offset)
			}
		})
	}
}

func TestScrapeRecoversTrueTimestamps(t *testing.T) {
	t.Parallel()
	const offset = 4 * time.Hour
	f, truth := buildForum(t, offset, 5)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	c := &Crawler{BaseURL: srv.URL, Clock: func() time.Time { return testNow }}
	res, err := c.Scrape("scraped")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerOffset != offset {
		t.Errorf("measured offset %v", res.ServerOffset)
	}
	// All imported posts recovered (probe post excluded).
	if res.Dataset.NumPosts() != f.NumPosts()-1 {
		t.Errorf("scraped %d posts, forum has %d (incl. probe)", res.Dataset.NumPosts(), f.NumPosts())
	}
	if res.Boards < 4 || res.Threads < 10 {
		t.Errorf("crawl coverage: %d boards, %d threads", res.Boards, res.Threads)
	}
	// Timestamps normalized to true UTC: the multiset of scraped
	// (author, second-truncated time) pairs equals the ground truth.
	wantSet := make(map[string]int)
	for _, p := range truth.Posts {
		wantSet[p.UserID+"|"+p.Time.UTC().Truncate(time.Second).Format(time.RFC3339)]++
	}
	for _, p := range res.Dataset.Posts {
		key := p.UserID + "|" + p.Time.UTC().Format(time.RFC3339)
		if wantSet[key] == 0 {
			t.Fatalf("scraped post not in ground truth: %s", key)
		}
		wantSet[key]--
	}
	for _, u := range res.Dataset.Users() {
		if u == ProbeAuthor {
			t.Error("probe account leaked into dataset")
		}
	}
}

func TestScrapeRoundTripsExactTimes(t *testing.T) {
	t.Parallel()
	f := forum.New(forum.Config{
		Name:         "Exact",
		ServerOffset: -2 * time.Hour,
		Clock:        func() time.Time { return testNow },
	})
	if _, err := f.Register("writer"); err != nil {
		t.Fatal(err)
	}
	b, err := f.AddBoard("Main", "")
	if err != nil {
		t.Fatal(err)
	}
	th, err := f.NewThread(b.ID, "topic")
	if err != nil {
		t.Fatal(err)
	}
	want := time.Date(2017, time.March, 3, 21, 14, 5, 0, time.UTC)
	if _, err := f.PostAt(th.ID, "writer", "hello", want); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	c := &Crawler{BaseURL: srv.URL, Clock: func() time.Time { return testNow }}
	res, err := c.Scrape("exact")
	if err != nil {
		t.Fatal(err)
	}
	if res.Dataset.NumPosts() != 1 {
		t.Fatalf("posts = %d", res.Dataset.NumPosts())
	}
	got := res.Dataset.Posts[0].Time
	if !got.Equal(want) {
		t.Errorf("recovered time %v, want %v", got, want)
	}
}

func TestScrapeThroughHiddenService(t *testing.T) {
	t.Parallel()
	// End to end over the onion network: the paper's actual collection
	// path.
	n := onion.NewNetwork(11)
	if _, err := n.AddRelays(8); err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	f, _ := buildForum(t, 2*time.Hour, 4)
	svc, err := onion.HostService(n, "forum-host", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	server := &http.Server{Handler: f.Handler()}
	go func() { _ = server.Serve(svc.Listener()) }()
	defer server.Close()

	torClient, err := onion.NewClient(n, "scraper")
	if err != nil {
		t.Fatal(err)
	}
	defer torClient.Close()

	c := &Crawler{
		HTTPClient: &http.Client{Transport: &http.Transport{DialContext: torClient.DialContext}},
		BaseURL:    "http://" + svc.Onion(),
		Clock:      func() time.Time { return testNow },
	}
	res, err := c.Scrape("onion-scrape")
	if err != nil {
		t.Fatal(err)
	}
	if res.ServerOffset != 2*time.Hour {
		t.Errorf("offset = %v", res.ServerOffset)
	}
	if res.Dataset.NumPosts() != f.NumPosts()-1 {
		t.Errorf("scraped %d posts, forum has %d", res.Dataset.NumPosts(), f.NumPosts())
	}
}

func TestScrapeErrors(t *testing.T) {
	t.Parallel()
	// A server that serves nothing useful.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer srv.Close()
	c := &Crawler{BaseURL: srv.URL}
	if _, err := c.Scrape("broken"); err == nil {
		t.Error("scrape of broken server should fail")
	}
	// Unreachable server.
	c2 := &Crawler{BaseURL: "http://127.0.0.1:1"}
	if _, err := c2.MeasureOffset(); err == nil {
		t.Error("unreachable server should fail")
	}
}

func TestScrapeEscapedAuthorNames(t *testing.T) {
	t.Parallel()
	// Member names with HTML-special characters must survive the
	// template-escape / crawler-unescape round trip.
	f := forum.New(forum.Config{
		Name:  "escapes",
		Clock: func() time.Time { return testNow },
	})
	weird := `dealer <&> "quotes"`
	if _, err := f.Register(weird); err != nil {
		t.Fatal(err)
	}
	b, err := f.AddBoard("Main", "")
	if err != nil {
		t.Fatal(err)
	}
	th, err := f.NewThread(b.ID, "topic")
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2017, time.April, 2, 9, 0, 0, 0, time.UTC)
	for i := 0; i < 3; i++ {
		if _, err := f.PostAt(th.ID, weird, "x", at.Add(time.Duration(i)*time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	c := &Crawler{BaseURL: srv.URL, Clock: func() time.Time { return testNow }}
	res, err := c.Scrape("escapes")
	if err != nil {
		t.Fatal(err)
	}
	users := res.Dataset.Users()
	if len(users) != 1 || users[0] != weird {
		t.Errorf("scraped users = %q, want %q", users, weird)
	}
}

func TestMeasureOffsetNoWelcomeThread(t *testing.T) {
	t.Parallel()
	// A server with boards but no Welcome thread: the probe must fail
	// cleanly.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/":
			fmt.Fprint(w, `<a href="/board?id=1">Main</a>`)
		case "/board":
			fmt.Fprint(w, `<a href="/thread?id=5">Random topic</a>`)
		case "/register":
			w.WriteHeader(http.StatusCreated)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()
	c := &Crawler{BaseURL: srv.URL}
	if _, err := c.MeasureOffset(); err == nil {
		t.Error("missing Welcome thread should fail")
	}
}

func TestMeasureOffsetRegisterRefused(t *testing.T) {
	t.Parallel()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/register" {
			http.Error(w, "closed registrations", http.StatusForbidden)
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()
	c := &Crawler{BaseURL: srv.URL}
	if _, err := c.MeasureOffset(); err == nil {
		t.Error("refused registration should fail")
	}
}

func TestMeasureOffsetSecondProbeTolerates409(t *testing.T) {
	t.Parallel()
	f, _ := buildForum(t, time.Hour, 2)
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	c := &Crawler{BaseURL: srv.URL, Clock: func() time.Time { return testNow }}
	if _, err := c.MeasureOffset(); err != nil {
		t.Fatalf("first probe: %v", err)
	}
	// The probe account now exists; a second probe must still work.
	got, err := c.MeasureOffset()
	if err != nil {
		t.Fatalf("second probe: %v", err)
	}
	if got != time.Hour {
		t.Errorf("second probe offset = %v", got)
	}
}
