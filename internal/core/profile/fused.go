package profile

// The fused ingest→profile-build path. The columnar BuildUserProfiles
// re-reads the store's epoch-seconds column and recomputes every post's
// (day, hour) cell; when the dataset was just parsed, the sharded reader
// already had each timestamp in a register and can emit the packed cell
// key (epochDay*24+hour = floor(unixSec/3600)) for free. This build
// consumes those keys (trace.UserCells) and skips the per-post cell
// arithmetic — the profiles are bit-identical to BuildUserProfiles with
// default options, which the equivalence test pins.

import (
	"fmt"

	"darkcrowd/internal/par"
	"darkcrowd/internal/trace"
)

// BuildUserProfilesFused builds one profile per active user from
// ingest-time cell keys instead of re-scanning the trace index. It is the
// UTC-frame fast path only: opts.HourOf and opts.Cells must be nil
// (custom frames need the timestamps, which the fused keys no longer
// carry). Thresholding, parallel sharding, observation and the result map
// behave exactly like BuildUserProfiles.
func BuildUserProfilesFused(cells *trace.UserCells, opts BuildOptions) (map[string]Profile, error) {
	if opts.HourOf != nil || opts.Cells != nil {
		return nil, fmt.Errorf("profile: fused build only supports the default UTC frame")
	}
	if opts.MinPosts == 0 {
		opts.MinPosts = DefaultMinPosts
	}
	active := make([]int, 0, cells.NumUsers())
	for u := 0; u < cells.NumUsers(); u++ {
		if cells.Count(u) >= opts.MinPosts {
			active = append(active, u)
		}
	}
	o := opts.Obs.Stage("profile-build")
	defer o.End()
	o.SetWorkers(par.Workers(opts.Parallelism, len(active)))
	o.Counter("profile.users_active").Add(int64(len(active)))
	usersBuilt := o.Counter("profile.users_built")
	cellsEmitted := o.Counter("profile.cells_emitted")
	var so par.ShardObserver
	if sp := o.SpanRef(); sp != nil {
		so = sp
	}
	built := make([]Profile, len(active))
	ok := make([]bool, len(active))
	err := par.RangesObserved(opts.Context, opts.Parallelism, len(active), func(start, end int) error {
		var keys []int64 // per-worker scratch, reused across users
		var builtN, cellsN int64
		for i := start; i < end; i++ {
			if opts.Context != nil && i&0xff == 0 {
				if err := opts.Context.Err(); err != nil {
					return err
				}
			}
			keys = cells.AppendUserKeys(keys[:0], active[i])
			cellsN += int64(len(keys))
			p, err := fromCellKeys(keys)
			if err != nil {
				continue // no usable activity cells
			}
			built[i], ok[i] = p, true
			builtN++
		}
		usersBuilt.Add(builtN)
		cellsEmitted.Add(cellsN)
		return nil
	}, so)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Profile, len(active))
	for i, u := range active {
		if ok[i] {
			out[cells.UserID(u)] = built[i]
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w (threshold %d)", ErrNoActivity, opts.MinPosts)
	}
	return out, nil
}
