package forum

// The shared forum-simulation constructor. Both simulation front ends —
// cmd/forumsim (the onion-routed end-to-end run) and its plain-HTTP serve
// mode — host the same thing: a §V forum populated with its synthetic
// ground-truth crowd on a skewed server clock. The scale-down arithmetic,
// crowd synthesis and import used to be copy-pasted between the two
// binaries; NewSim is the single path.

import (
	"fmt"
	"time"

	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
)

// ServeConfig parameterizes a simulated forum server.
type ServeConfig struct {
	// Forum is the §V forum name (synth.ForumSpecByName).
	Forum string
	// Seed drives the crowd synthesis.
	Seed int64
	// Scale divides the forum's paper census (1 = full size). Scaled specs
	// keep at least 20 users and at least 50 posts per user, so the crowd
	// stays geolocatable.
	Scale int
	// PageSize is the forum's posts-per-page (0 = DefaultPageSize).
	PageSize int
	// FailEvery and Latency are the fault knobs passed through to
	// forum.Config, for crawler testing.
	FailEvery int
	Latency   time.Duration
}

// Sim is a ready-to-serve simulated forum plus the ground truth it hosts.
type Sim struct {
	// Forum holds the imported crowd; serve Forum.Handler().
	Forum *Forum
	// Spec is the (possibly scaled-down) census the crowd was built from.
	Spec synth.ForumSpec
	// Crowd is the ground-truth activity trace imported into the forum.
	Crowd *trace.Dataset
}

// NewSim synthesizes cfg.Forum's crowd and imports it into a Forum with
// the spec's server clock skew.
func NewSim(cfg ServeConfig) (*Sim, error) {
	spec, err := synth.ForumSpecByName(cfg.Forum)
	if err != nil {
		return nil, err
	}
	if cfg.Scale > 1 {
		spec.Users /= cfg.Scale
		spec.Posts /= cfg.Scale
		if spec.Users < 20 {
			spec.Users = 20
		}
		if spec.Posts < spec.Users*50 {
			spec.Posts = spec.Users * 50
		}
	}
	crowd, err := synth.ForumCrowd(cfg.Seed, spec)
	if err != nil {
		return nil, err
	}
	f := New(Config{
		Name:         spec.Name,
		ServerOffset: time.Duration(spec.ServerOffsetHours) * time.Hour,
		PageSize:     cfg.PageSize,
		FailEvery:    cfg.FailEvery,
		Latency:      cfg.Latency,
	})
	if err := f.ImportCrowd(crowd, ImportOptions{}); err != nil {
		return nil, fmt.Errorf("forum: import crowd: %w", err)
	}
	return &Sim{Forum: f, Spec: spec, Crowd: crowd}, nil
}
