package crawler

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"time"

	"darkcrowd/internal/atomicio"
	"darkcrowd/internal/trace"
)

// checkpointVersion guards the on-disk format; bump it when the layout
// changes so stale snapshots fail loudly instead of resuming garbage.
const checkpointVersion = 1

// CheckpointOptions configures crawl snapshotting for ScrapeResumable.
type CheckpointOptions struct {
	// Path is the snapshot file. Empty disables checkpointing, which
	// makes ScrapeResumable equivalent to ScrapeContext.
	Path string
	// Every saves a snapshot after each Every completed threads
	// (default 1: after every thread).
	Every int
}

// checkpoint is the JSON snapshot of an in-flight scrape: everything
// needed to resume and end up with the dataset an uninterrupted crawl
// would have produced. The probe result (ServerOffset) is saved too, so
// resuming does not re-probe — the offset is measured once per crawl.
type checkpoint struct {
	Version      int           `json:"version"`
	DatasetName  string        `json:"dataset_name"`
	BaseURL      string        `json:"base_url"`
	ServerOffset time.Duration `json:"server_offset_ns"`
	// DoneThreads lists fully scraped thread IDs in completion order.
	DoneThreads []string     `json:"done_threads"`
	Threads     int          `json:"threads"`
	Pages       int          `json:"pages"`
	Skipped     int          `json:"skipped"`
	Errors      []CrawlError `json:"errors,omitempty"`
	Posts       []trace.Post `json:"posts"`
}

// loadCheckpoint reads a snapshot, returning (nil, nil) when none exists
// yet. A snapshot for a different forum or dataset is an error, not a
// silent fresh start: resuming the wrong crawl corrupts the dataset.
func loadCheckpoint(path, datasetName, baseURL string) (*checkpoint, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("crawler: read checkpoint %s: %w", path, err)
	}
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("crawler: parse checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("crawler: checkpoint %s has version %d, want %d", path, ck.Version, checkpointVersion)
	}
	if ck.DatasetName != datasetName || ck.BaseURL != baseURL {
		return nil, fmt.Errorf("crawler: checkpoint %s is for dataset %q at %q, not %q at %q",
			path, ck.DatasetName, ck.BaseURL, datasetName, baseURL)
	}
	return &ck, nil
}

// save writes the snapshot atomically (temp file + rename via atomicio)
// so a crash mid-save leaves the previous snapshot intact.
func (ck *checkpoint) save(path string) error {
	data, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("crawler: encode checkpoint: %w", err)
	}
	if err := atomicio.WriteFileBytes(path, data); err != nil {
		return fmt.Errorf("crawler: save checkpoint: %w", err)
	}
	return nil
}
