package pipeline

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/tz"
)

var updateVerifyFixture = flag.Bool("update", false, "rewrite the committed verify fixture")

const (
	fixtureSnapshot = "testdata/verify_crowd.dcs"
	fixtureReport   = "testdata/verify_report.json"
	fixtureSeed     = 2018
	fixtureScale    = 300
)

// TestVerifyFixtureRoundTrip replays the committed report from the
// committed snapshot. Run with -update to regenerate both fixtures.
func TestVerifyFixtureRoundTrip(t *testing.T) {
	if *updateVerifyFixture {
		writeVerifyFixture(t)
	}
	raw, err := os.ReadFile(fixtureReport)
	if err != nil {
		t.Fatalf("missing fixture (regenerate with -update): %v", err)
	}
	res, err := Verify(raw, VerifyOptions{SnapshotPath: fixtureSnapshot})
	if err != nil {
		t.Fatalf("committed fixture does not verify: %v", err)
	}
	if res.Posts == 0 || res.Records == 0 {
		t.Fatalf("empty verification result: %+v", res)
	}
}

// writeVerifyFixture regenerates testdata. The snapshot is written
// straight from the synthetic crowd — never through a CSV in a temp
// directory — so the dataset name chained into the report is the stable
// "verify-fixture", not a machine-local path.
func writeVerifyFixture(t *testing.T) {
	t.Helper()
	jp, err := tz.ByCode("jp")
	if err != nil {
		t.Fatal(err)
	}
	br, err := tz.ByCode("br")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.GenerateCrowd(7, synth.CrowdConfig{
		Name: "verify-fixture",
		Groups: []synth.Group{
			{Region: jp, Users: 12, PostsPerUser: 50},
			{Region: br, Users: 8, PostsPerUser: 50},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	fh, err := os.Create(fixtureSnapshot)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteSnapshot(fh); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Geolocate(fixtureRunConfig())
	if err != nil {
		t.Fatal(err)
	}
	doc, err := (&Report{Geolocation: res.Geo, Provenance: res.Provenance}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fixtureReport, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("rewrote %s and %s", fixtureSnapshot, fixtureReport)
}

// fixtureRunConfig mirrors what `darkcrowd geolocate -snapshot … -seed
// 2018 -twitter-scale 300 -margins -bootstrap 16 -provenance` runs.
func fixtureRunConfig() Config {
	return Config{
		SnapshotPath: fixtureSnapshot,
		ReferenceID:  SynthReferenceID(fixtureSeed, fixtureScale),
		Reference: func() (*profile.GenericResult, error) {
			return SynthReference(fixtureSeed, fixtureScale, 0)
		},
		Margins:             true,
		BootstrapReplicates: 16,
		BootstrapSeed:       5,
		Provenance:          true,
	}
}

// TestVerifyRejectsChainTamper: byte-level edits inside the provenance
// section fail before any replay runs.
func TestVerifyRejectsChainTamper(t *testing.T) {
	t.Parallel()
	raw := readFixtureReport(t)
	tampers := map[string]func([]byte) []byte{
		"dataset-sha": func(b []byte) []byte {
			return flipFirstHexAfter(t, b, `"sha256": "`)
		},
		"record-payload": func(b []byte) []byte {
			return flipFirstHexAfter(t, b, `"payload_sha256": "`)
		},
		"stage-name": func(b []byte) []byte {
			out := bytes.Replace(b, []byte(`"stage": "placement"`), []byte(`"stage": "Placement"`), 1)
			if bytes.Equal(out, b) {
				t.Fatal("fixture carries no placement stage to tamper")
			}
			return out
		},
		"bootstrap-param": func(b []byte) []byte {
			out := bytes.Replace(b, []byte(`"bootstrap_replicates": 16`), []byte(`"bootstrap_replicates": 17`), 1)
			if bytes.Equal(out, b) {
				t.Fatal("fixture chains no bootstrap replicate count")
			}
			return out
		},
	}
	for name, tamper := range tampers {
		if _, err := Verify(tamper(append([]byte(nil), raw...)), VerifyOptions{SnapshotPath: fixtureSnapshot}); err == nil {
			t.Errorf("%s tamper verified", name)
		} else if !strings.Contains(err.Error(), "chain") && !strings.Contains(err.Error(), "provenance") {
			t.Logf("%s tamper failed as: %v", name, err)
		}
	}
}

// TestVerifyRejectsDocumentTamper: edits outside the provenance section
// — geolocation numbers, even whitespace — survive the chain checks but
// die on the byte-identical regeneration comparison.
func TestVerifyRejectsDocumentTamper(t *testing.T) {
	raw := readFixtureReport(t)
	for name, tamper := range map[string]func([]byte) []byte{
		"trailing-newline": func(b []byte) []byte { return append(b, '\n') },
		"geo-field": func(b []byte) []byte {
			i := bytes.Index(b, []byte(`"Weight":`))
			if i < 0 {
				t.Fatal("fixture has no Weight field")
			}
			out := append([]byte(nil), b...)
			// Nudge the first digit of the weight without breaking JSON.
			for j := i + len(`"Weight":`); j < len(out); j++ {
				if out[j] >= '0' && out[j] <= '9' {
					out[j] = '0' + ('9'-out[j]+'0')%10
					return out
				}
			}
			t.Fatal("no digit after Weight")
			return nil
		},
	} {
		doc := tamper(append([]byte(nil), raw...))
		// The tampered document still parses and its chain still checks —
		// the tamper is outside everything the chain covers.
		var rep Report
		if err := json.Unmarshal(doc, &rep); err != nil {
			t.Fatalf("%s: tampered fixture no longer parses: %v", name, err)
		}
		if err := rep.Provenance.CheckChain(); err != nil {
			t.Fatalf("%s: tamper unexpectedly broke the chain: %v", name, err)
		}
		if _, err := Verify(doc, VerifyOptions{SnapshotPath: fixtureSnapshot}); err == nil {
			t.Errorf("%s tamper verified", name)
		}
	}
}

// TestVerifyRejectsWrongSnapshot: the right report against the wrong
// dataset fails on the content hash, before any replay.
func TestVerifyRejectsWrongSnapshot(t *testing.T) {
	t.Parallel()
	raw := readFixtureReport(t)
	us, err := tz.ByCode("us-ny")
	if err != nil {
		t.Fatal(err)
	}
	other, err := synth.GenerateCrowd(99, synth.CrowdConfig{
		Name:   "verify-fixture", // same name, different content
		Groups: []synth.Group{{Region: us, Users: 5, PostsPerUser: 20}},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "other.dcs")
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.WriteSnapshot(fh); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(raw, VerifyOptions{SnapshotPath: path}); err == nil {
		t.Error("wrong snapshot verified")
	} else if !strings.Contains(err.Error(), "does not match") {
		t.Errorf("wrong failure mode: %v", err)
	}
}

func TestVerifyInputErrors(t *testing.T) {
	t.Parallel()
	raw := readFixtureReport(t)
	if _, err := Verify([]byte("{not json"), VerifyOptions{SnapshotPath: fixtureSnapshot}); err == nil {
		t.Error("garbage report verified")
	}
	if _, err := Verify([]byte("{}\n"), VerifyOptions{SnapshotPath: fixtureSnapshot}); err == nil || !strings.Contains(err.Error(), "provenance") {
		t.Errorf("provenance-free report: %v", err)
	}
	if _, err := Verify(raw, VerifyOptions{}); err == nil || !strings.Contains(err.Error(), "snapshot") {
		t.Errorf("missing snapshot path: %v", err)
	}
}

func readFixtureReport(t *testing.T) []byte {
	t.Helper()
	raw, err := os.ReadFile(fixtureReport)
	if err != nil {
		t.Skipf("fixture missing (regenerate with -update): %v", err)
	}
	return raw
}

// flipFirstHexAfter flips the hex character right after the first
// occurrence of marker.
func flipFirstHexAfter(t *testing.T, b []byte, marker string) []byte {
	t.Helper()
	i := bytes.Index(b, []byte(marker))
	if i < 0 {
		t.Fatalf("fixture does not contain %q", marker)
	}
	out := append([]byte(nil), b...)
	j := i + len(marker)
	if out[j] == '0' {
		out[j] = '1'
	} else {
		out[j] = '0'
	}
	return out
}
