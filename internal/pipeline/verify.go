package pipeline

// Report verification (ISSUE 10): `darkcrowd verify` replays a report from
// its referenced snapshot and demands (1) an intact internal hash chain,
// (2) a snapshot whose canonical content hash matches the chained dataset
// identity, (3) stage-by-stage agreement between the replayed chain and the
// report's chain, and (4) byte-identical regeneration of the whole report
// document. Any single flipped byte — in the provenance section, in the
// geolocation numbers, even in JSON whitespace — fails at least one check.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"

	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/obs"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
)

// SynthReferenceID names a synthetic reference build; the matching loader
// is SynthReference. The CLI uses this ID for -seed/-twitter-scale runs,
// and Verify parses it back to rebuild the identical reference.
func SynthReferenceID(seed int64, scale int) string {
	return fmt.Sprintf("synth:seed=%d,scale=%d", seed, scale)
}

// SynthReference builds the generic reference profile from the synthetic
// Twitter stand-in — the reference build behind "synth:" reference IDs.
func SynthReference(seed int64, scale, workers int) (*profile.GenericResult, error) {
	twitter, err := synth.TwitterDataset(seed, synth.TwitterOptions{Scale: scale})
	if err != nil {
		return nil, err
	}
	return profile.BuildGeneric(twitter, profile.GenericOptions{Parallelism: workers})
}

// parseSynthReferenceID inverts SynthReferenceID.
func parseSynthReferenceID(id string) (seed int64, scale int, ok bool) {
	rest, found := strings.CutPrefix(id, "synth:")
	if !found {
		return 0, 0, false
	}
	if n, err := fmt.Sscanf(rest, "seed=%d,scale=%d", &seed, &scale); err != nil || n != 2 {
		return 0, 0, false
	}
	return seed, scale, true
}

// VerifyOptions configures Verify.
type VerifyOptions struct {
	// SnapshotPath is the .dcs snapshot the report claims to describe.
	// Required.
	SnapshotPath string
	// Reference, when non-nil, resolves non-"synth:" reference IDs (e.g.
	// "file:reference.json") to a loader; "synth:" IDs are rebuilt
	// internally. Verification of a file-reference report without a
	// resolver fails with an instructive error.
	Reference func(refID string) (func() (*profile.GenericResult, error), error)
	// Workers sets the replay parallelism (0 = all cores); the replayed
	// output is identical for every setting.
	Workers int
	// Context cancels the replay; Obs observes it. Both optional.
	Obs *obs.Observer
}

// VerifyResult summarizes a successful verification.
type VerifyResult struct {
	// Posts and Records echo what was verified.
	Posts   int
	Records int
}

// Verify checks a report document against its snapshot. reportBytes is the
// exact on-disk report (the byte-identity check compares against it
// verbatim). It returns nil error only when every check passes.
func Verify(reportBytes []byte, opts VerifyOptions) (*VerifyResult, error) {
	var rep Report
	if err := json.Unmarshal(reportBytes, &rep); err != nil {
		return nil, fmt.Errorf("pipeline: parse report: %w", err)
	}
	if rep.Provenance == nil {
		return nil, errors.New("pipeline: report carries no provenance section; regenerate it with -provenance")
	}
	prov := rep.Provenance
	if err := prov.CheckChain(); err != nil {
		return nil, fmt.Errorf("hash chain broken: %w", err)
	}

	if opts.SnapshotPath == "" {
		return nil, errors.New("pipeline: verify needs the report's snapshot")
	}
	snap, err := os.ReadFile(opts.SnapshotPath)
	if err != nil {
		return nil, fmt.Errorf("pipeline: open snapshot: %w", err)
	}
	ds, err := trace.ReadSnapshotBytes(snap)
	if err != nil {
		return nil, fmt.Errorf("pipeline: load snapshot %s: %w", opts.SnapshotPath, err)
	}
	dsHash, err := HashDataset(ds)
	if err != nil {
		return nil, err
	}
	if dsHash != prov.Dataset.SHA256 {
		return nil, fmt.Errorf("snapshot %s does not match the report's dataset: content hash %.12s, report chains %.12s",
			opts.SnapshotPath, dsHash, prov.Dataset.SHA256)
	}
	if ds.NumPosts() != prov.Dataset.Posts || ds.Name != prov.Dataset.Name {
		return nil, fmt.Errorf("snapshot identity mismatch: %q with %d posts, report claims %q with %d posts",
			ds.Name, ds.NumPosts(), prov.Dataset.Name, prov.Dataset.Posts)
	}

	// Rebuild the reference exactly as the original run did.
	var reference func() (*profile.GenericResult, error)
	refID := prov.Params.ReferenceID
	if seed, scale, ok := parseSynthReferenceID(refID); ok {
		workers := opts.Workers
		reference = func() (*profile.GenericResult, error) {
			return SynthReference(seed, scale, workers)
		}
	} else if opts.Reference != nil {
		if reference, err = opts.Reference(refID); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("pipeline: cannot rebuild reference %q: pass the original reference file", refID)
	}

	// Replay the full pipeline from the snapshot with the chained
	// parameters. No checkpoint, no CSV: the snapshot is authoritative.
	res, err := Geolocate(Config{
		SnapshotPath:        opts.SnapshotPath,
		Reference:           reference,
		ReferenceID:         refID,
		MinPosts:            prov.Params.MinPosts,
		SkipPolish:          prov.Params.SkipPolish,
		Margins:             prov.Params.Margins,
		BootstrapReplicates: prov.Params.BootstrapReplicates,
		BootstrapSeed:       prov.Params.BootstrapSeed,
		BootstrapLevel:      prov.Params.BootstrapLevel,
		Workers:             opts.Workers,
		Provenance:          true,
		Obs:                 opts.Obs,
	})
	if err != nil {
		return nil, fmt.Errorf("pipeline: replay: %w", err)
	}

	// Stage-by-stage chain comparison localizes a divergence before the
	// whole-document check reports it.
	replayed := res.Provenance
	if len(replayed.Records) != len(prov.Records) {
		return nil, fmt.Errorf("replay produced %d chain records, report carries %d", len(replayed.Records), len(prov.Records))
	}
	for i, got := range replayed.Records {
		want := prov.Records[i]
		if got.Stage != want.Stage {
			return nil, fmt.Errorf("chain record %d: replay reached stage %q, report chains %q", i, got.Stage, want.Stage)
		}
		if got.Payload != want.Payload {
			return nil, fmt.Errorf("stage %q does not replay: artifact hash %.12s, report chains %.12s", got.Stage, got.Payload, want.Payload)
		}
		if got.Hash != want.Hash {
			return nil, fmt.Errorf("stage %q: chain hash %.12s, report chains %.12s", got.Stage, got.Hash, want.Hash)
		}
	}

	// Finally: regenerating the report document must reproduce the input
	// byte for byte. This subsumes every field the stage hashes don't
	// cover (including the provenance section itself as serialized).
	regen, err := (&Report{Geolocation: res.Geo, Provenance: replayed}).Encode()
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(regen, reportBytes) {
		return nil, errors.New("replayed report is not byte-identical to the input document")
	}
	return &VerifyResult{Posts: ds.NumPosts(), Records: len(prov.Records)}, nil
}
