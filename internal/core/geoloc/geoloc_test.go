package geoloc

import (
	"math"
	"sync"
	"testing"
	"time"

	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

var (
	genericOnce sync.Once
	genericProf profile.Profile
	genericErr  error
)

// testGeneric builds (once) a generic profile from a scaled-down synthetic
// Twitter dataset, exactly as the real pipeline does.
func testGeneric(t *testing.T) profile.Profile {
	t.Helper()
	genericOnce.Do(func() {
		ds, err := synth.TwitterDataset(1001, synth.TwitterOptions{Scale: 40})
		if err != nil {
			genericErr = err
			return
		}
		res, err := profile.BuildGeneric(ds, profile.GenericOptions{})
		if err != nil {
			genericErr = err
			return
		}
		genericProf = res.Generic
	})
	if genericErr != nil {
		t.Fatalf("build test generic profile: %v", genericErr)
	}
	return genericProf
}

func crowdProfiles(t *testing.T, ds *trace.Dataset) map[string]profile.Profile {
	t.Helper()
	profiles, err := profile.BuildUserProfiles(ds, profile.BuildOptions{})
	if err != nil {
		t.Fatalf("build user profiles: %v", err)
	}
	return profiles
}

func TestPlaceUsersSingleCountry(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("heavy synthesis in -short mode")
	}
	generic := testGeneric(t)
	de, err := tz.ByCode("de")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.GenerateCrowd(2001, synth.CrowdConfig{
		Name:   "german-crowd",
		Groups: []synth.Group{{Region: de, Users: 120, PostsPerUser: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	placement, err := PlaceUsers(crowdProfiles(t, ds), generic, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Histogram must sum to 1 and peak at UTC+1 or UTC+2 (Germany spends
	// seven months of the year at UTC+2).
	var sum float64
	for _, v := range placement.Histogram {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram sums to %g", sum)
	}
	peakZone := 0
	for zi, v := range placement.Histogram {
		if v > placement.Histogram[peakZone] {
			peakZone = zi
		}
	}
	peakOffset := profile.OffsetOf(peakZone)
	if peakOffset != 1 && peakOffset != 2 {
		t.Errorf("German crowd peak at %s, want UTC+1 or UTC+2 (histogram %v)",
			peakOffset, placement.Histogram)
	}
	// The paper's Fig. 3: values "drop down for timezones further away".
	peakShare := placement.Histogram[peakZone]
	farZone := (peakZone + 12) % 24
	if placement.Histogram[farZone] > peakShare/4 {
		t.Errorf("antipodal zone share %g too close to peak %g",
			placement.Histogram[farZone], peakShare)
	}
}

func TestFitSingleGermanCrowd(t *testing.T) {
	t.Parallel()
	generic := testGeneric(t)
	de, err := tz.ByCode("de")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.GenerateCrowd(2002, synth.CrowdConfig{
		Name:   "german-fit",
		Groups: []synth.Group{{Region: de, Users: 150, PostsPerUser: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	placement, err := PlaceUsers(crowdProfiles(t, ds), generic, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitSingle(placement)
	if err != nil {
		t.Fatal(err)
	}
	if fit.PeakOffset < 0.3 || fit.PeakOffset > 2.7 {
		t.Errorf("fitted peak offset %g, want within UTC+1 +/- DST drift", fit.PeakOffset)
	}
	// sigma ~ 2.5 per the paper; accept a generous band.
	if fit.Gaussian.Sigma < 0.7 || fit.Gaussian.Sigma > 4.5 {
		t.Errorf("fitted sigma %g, want around 2.5", fit.Gaussian.Sigma)
	}
	// Table II regime: single-country fits land around 0.01 average
	// distance, an order of magnitude below the 0.081 baseline.
	if fit.AvgDistance > 0.05 {
		t.Errorf("average point distance %g, want small", fit.AvgDistance)
	}
}

func TestGeolocateMultiCountry(t *testing.T) {
	t.Parallel()
	generic := testGeneric(t)
	ds, err := synth.Fig6bDataset(2003, 60)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := Geolocate(crowdProfiles(t, ds), generic, GeolocateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(geo.Components) != 3 {
		t.Fatalf("uncovered %d components, want 3: %v", len(geo.Components), geo.Components)
	}
	// Expect components near UTC-6 (Illinois), UTC+1 (Germany), UTC+8
	// (Malaysia), each within ~1.5 zones (DST smears by up to 1).
	wantOffsets := []float64{-6, 1, 8}
	for _, want := range wantOffsets {
		found := false
		for _, c := range geo.Components {
			if math.Abs(c.Offset-want) <= 1.6 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no component near UTC%+g in %v", want, geo.Components)
		}
	}
	if geo.AvgDistance > 0.05 {
		t.Errorf("mixture avg distance %g, want small", geo.AvgDistance)
	}
}

func TestGeolocateSingleCountryOneComponent(t *testing.T) {
	t.Parallel()
	generic := testGeneric(t)
	jp, err := tz.ByCode("jp")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := synth.GenerateCrowd(2004, synth.CrowdConfig{
		Name:   "jp-crowd",
		Groups: []synth.Group{{Region: jp, Users: 100, PostsPerUser: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	geo, err := Geolocate(crowdProfiles(t, ds), generic, GeolocateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(geo.Components) != 1 {
		t.Fatalf("Japanese crowd: %d components, want 1: %v", len(geo.Components), geo.Components)
	}
	if math.Abs(geo.Components[0].Offset-9) > 1.2 {
		t.Errorf("Japanese component at UTC%+.2f, want ~+9", geo.Components[0].Offset)
	}
	if geo.Components[0].NearestOffset != 9 {
		t.Errorf("nearest offset %v, want UTC+9", geo.Components[0].NearestOffset)
	}
}

func TestPlaceUsersErrors(t *testing.T) {
	t.Parallel()
	generic := testGeneric(t)
	if _, err := PlaceUsers(nil, generic, PlaceOptions{}); err == nil {
		t.Error("empty profiles should fail")
	}
}

func TestPlacementSamples(t *testing.T) {
	t.Parallel()
	p := &Placement{
		Assignments: map[string]tz.Offset{"b": 1, "a": -6},
		Histogram:   make([]float64, 24),
		Counts:      make([]int, 24),
	}
	samples := p.Samples()
	if len(samples) != 2 {
		t.Fatalf("%d samples", len(samples))
	}
	// Sorted by user: "a" (-6 -> index 5) then "b" (+1 -> index 12).
	if samples[0] != float64(profile.ZoneIndex(-6)) || samples[1] != float64(profile.ZoneIndex(1)) {
		t.Errorf("samples = %v", samples)
	}
}

func TestDistanceKindString(t *testing.T) {
	t.Parallel()
	if DistanceCircularEMD.String() != "circular-emd" || DistanceLinearEMD.String() != "linear-emd" {
		t.Error("distance kind strings wrong")
	}
	if DistanceKind(9).String() != "DistanceKind(9)" {
		t.Error("unknown distance kind string wrong")
	}
}

func TestMostActiveUsers(t *testing.T) {
	t.Parallel()
	ds := &trace.Dataset{Posts: []trace.Post{
		{UserID: "light"}, {UserID: "heavy"}, {UserID: "heavy"},
		{UserID: "heavy"}, {UserID: "mid"}, {UserID: "mid"},
	}}
	top := MostActiveUsers(ds, 2)
	if len(top) != 2 || top[0] != "heavy" || top[1] != "mid" {
		t.Errorf("MostActiveUsers = %v", top)
	}
	all := MostActiveUsers(ds, 10)
	if len(all) != 3 {
		t.Errorf("MostActiveUsers(10) = %v", all)
	}
}

func TestComponentString(t *testing.T) {
	t.Parallel()
	c := Component{Weight: 0.7, Offset: 1.2, NearestOffset: 1, Sigma: 2.5}
	s := c.String()
	if s == "" {
		t.Error("empty component string")
	}
}

func TestPlacementShiftInvariant(t *testing.T) {
	t.Parallel()
	// End-to-end invariant: adding k hours to every post timestamp makes
	// the crowd look like it lives k zones further west (their whole
	// rhythm happens k hours later in UTC), so the placement peak must
	// move by -k zones (mod 24).
	generic := testGeneric(t)
	jp, err := tz.ByCode("jp")
	if err != nil {
		t.Fatal(err)
	}
	base, err := synth.GenerateCrowd(2042, synth.CrowdConfig{
		Name:   "shift-invariant",
		Groups: []synth.Group{{Region: jp, Users: 60, PostsPerUser: 100}},
	})
	if err != nil {
		t.Fatal(err)
	}
	peakOf := func(ds *trace.Dataset) tz.Offset {
		t.Helper()
		placement, err := PlaceUsers(crowdProfiles(t, ds), generic, PlaceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		best := 0
		for zi, v := range placement.Histogram {
			if v > placement.Histogram[best] {
				best = zi
			}
		}
		return profile.OffsetOf(best)
	}
	basePeak := peakOf(base)
	for _, k := range []int{1, 3, -2, 6} {
		shifted := base.Clone()
		for i := range shifted.Posts {
			shifted.Posts[i].Time = shifted.Posts[i].Time.Add(time.Duration(k) * time.Hour)
		}
		got := peakOf(shifted)
		want := (basePeak - tz.Offset(k)).Normalize()
		if got.CircularDistance(want) > 1 {
			t.Errorf("shift %+dh: peak %v, want ~%v (base %v)", k, got, want, basePeak)
		}
	}
}

// TestNearestOffsetRounding is the regression test for the placement
// rounding bug: int(mean+0.5) truncates toward zero, so a slightly
// negative zone-axis mean (legal on the circular axis) rounded to zone 0
// instead of wrapping to zone 23. math.Floor(mean+0.5) rounds uniformly.
func TestNearestOffsetRounding(t *testing.T) {
	t.Parallel()
	tests := []struct {
		mean float64
		zone int // expected zone index after rounding and wrapping
	}{
		{0, 0},
		{0.49, 0},
		{0.5, 1}, // half rounds up, not toward zero
		{11.5, 12},
		{23.4, 23},
		{23.6, 0},  // wraps past the top of the axis
		{-0.4, 0},  // rounds to zone 0...
		{-0.6, 23}, // ...but past -0.5 wraps to zone 23, the truncation bug's victim
		{-1.5, 23}, // Floor(-1.0) = -1 -> zone 23
		{-11.7, 12},
	}
	for _, tt := range tests {
		want := profile.OffsetOf(tt.zone)
		if got := nearestOffset(tt.mean); got != want {
			t.Errorf("nearestOffset(%v) = %v, want %v (zone %d)", tt.mean, got, want, tt.zone)
		}
	}
}
