package trace

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

const lenientHeader = "user_id,time_rfc3339\n"

func TestReadCSVOptsStrictMatchesReadCSV(t *testing.T) {
	t.Parallel()
	in := lenientHeader + "u1,2017-03-01T10:00:00Z\nu2,2017-03-01T11:00:00Z\n"
	strict, err := ReadCSV("x", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, report, err := ReadCSVOpts("x", strings.NewReader(in), ReadCSVOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if report != nil {
		t.Errorf("strict mode produced a report: %+v", report)
	}
	if len(viaOpts.Posts) != len(strict.Posts) {
		t.Fatalf("strict ReadCSVOpts: %d posts, want %d", len(viaOpts.Posts), len(strict.Posts))
	}
	// Strict mode must keep failing exactly where ReadCSV fails.
	bad := lenientHeader + "u1,notatime\n"
	if _, _, err := ReadCSVOpts("x", strings.NewReader(bad), ReadCSVOptions{}); err == nil {
		t.Error("strict mode should fail on a bad timestamp")
	}
}

func TestReadCSVLenientQuarantinesBadRows(t *testing.T) {
	t.Parallel()
	in := lenientHeader +
		"u1,2017-03-01T10:00:00Z\n" +
		"u2,notatime\n" + // bad timestamp -> quarantined
		"only-one-field\n" + // wrong field count -> quarantined
		"u3,2017-03-01T12:00:00Z\n" +
		"u5\"x,2017-03-01T13:00:00Z\n" + // bare-quote damage -> quarantined
		"u4,2017-03-01T14:00:00Z\n"
	ds, report, err := ReadCSVOpts("dirty", strings.NewReader(in), ReadCSVOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Posts); got != 3 {
		t.Errorf("kept %d posts, want 3: %+v", got, ds.Posts)
	}
	if report.BadRows != 3 {
		t.Errorf("BadRows = %d, want 3: %+v", report.BadRows, report)
	}
	if len(report.Rows) != 3 {
		t.Fatalf("sample has %d rows, want 3", len(report.Rows))
	}
	if report.Rows[0].Line != 3 || report.Rows[0].Field != "time_rfc3339" || report.Rows[0].Raw != "notatime" {
		t.Errorf("first quarantined row = %+v", report.Rows[0])
	}
	if report.Rows[1].Field != "record" {
		t.Errorf("field-count damage should quarantine as record: %+v", report.Rows[1])
	}
	if report.Empty() {
		t.Error("report with 3 bad rows claims Empty")
	}
	if !strings.Contains(report.String(), "3 row(s) quarantined") {
		t.Errorf("report summary = %q", report.String())
	}
	// Survivors are the well-formed rows, in order.
	for i, want := range []string{"u1", "u3", "u4"} {
		if ds.Posts[i].UserID != want {
			t.Errorf("post %d is %q, want %q", i, ds.Posts[i].UserID, want)
		}
	}
}

func TestReadCSVLenientCleanFileEmptyReport(t *testing.T) {
	t.Parallel()
	in := lenientHeader + "u1,2017-03-01T10:00:00Z\n"
	ds, report, err := ReadCSVOpts("clean", strings.NewReader(in), ReadCSVOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Posts) != 1 || !report.Empty() {
		t.Errorf("clean lenient read: %d posts, report %+v", len(ds.Posts), report)
	}
}

func TestReadCSVLenientHeaderStaysStrict(t *testing.T) {
	t.Parallel()
	for _, in := range []string{"", "wrong,header\na,b\n"} {
		if _, _, err := ReadCSVOpts("x", strings.NewReader(in), ReadCSVOptions{Lenient: true}); err == nil {
			t.Errorf("lenient read of %q should still fail on the header", in)
		}
	}
}

func TestReadCSVLenientBudget(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	sb.WriteString(lenientHeader)
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&sb, "u%d,notatime\n", i)
	}
	_, report, err := ReadCSVOpts("x", strings.NewReader(sb.String()),
		ReadCSVOptions{Lenient: true, MaxBadRows: 4})
	var budget *BadRowBudgetError
	if !errors.As(err, &budget) {
		t.Fatalf("got %v, want *BadRowBudgetError", err)
	}
	if budget.Budget != 4 || budget.Report.BadRows != 5 {
		t.Errorf("budget error = %+v (report %+v)", budget, budget.Report)
	}
	if report.BadRows != 5 {
		t.Errorf("returned report counts %d bad rows, want 5 (budget+1)", report.BadRows)
	}
	// Within budget: all 10 quarantined, no error.
	_, report, err = ReadCSVOpts("x", strings.NewReader(sb.String()),
		ReadCSVOptions{Lenient: true, MaxBadRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if report.BadRows != 10 {
		t.Errorf("BadRows = %d, want 10", report.BadRows)
	}
}

func TestReadCSVLenientSampleCap(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	sb.WriteString(lenientHeader)
	for i := 0; i < 30; i++ {
		fmt.Fprintf(&sb, "u%d,notatime\n", i)
	}
	// Default cap.
	_, report, err := ReadCSVOpts("x", strings.NewReader(sb.String()), ReadCSVOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.BadRows != 30 || len(report.Rows) != DefaultQuarantineSample {
		t.Errorf("default cap: %d bad rows, %d sampled", report.BadRows, len(report.Rows))
	}
	// Explicit cap, and long raw values are truncated.
	long := lenientHeader + "u1," + strings.Repeat("x", 200) + "\n"
	_, report, err = ReadCSVOpts("x", strings.NewReader(long), ReadCSVOptions{Lenient: true, SampleCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Rows) != 1 || len(report.Rows[0].Raw) > 90 {
		t.Errorf("sample = %+v", report.Rows)
	}
}

// TestReadCSVLenientRoundTripUnchanged: on a well-formed file the lenient
// reader must produce exactly the strict reader's dataset.
func TestReadCSVLenientRoundTripUnchanged(t *testing.T) {
	t.Parallel()
	d := &Dataset{Name: "rt"}
	base := time.Date(2017, 2, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		d.Posts = append(d.Posts, Post{UserID: fmt.Sprintf("u%d", i%7), Time: base.Add(time.Duration(i) * time.Hour)})
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	strict, err := ReadCSV("rt", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	lenient, report, err := ReadCSVOpts("rt", bytes.NewReader(raw), ReadCSVOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Empty() {
		t.Errorf("clean file quarantined rows: %+v", report)
	}
	if len(strict.Posts) != len(lenient.Posts) {
		t.Fatalf("lenient kept %d posts, strict %d", len(lenient.Posts), len(strict.Posts))
	}
	for i := range strict.Posts {
		if strict.Posts[i] != lenient.Posts[i] {
			t.Fatalf("post %d differs: %+v vs %+v", i, strict.Posts[i], lenient.Posts[i])
		}
	}
}

func TestMergeConflictErrorIsDeterministicAndDescriptive(t *testing.T) {
	t.Parallel()
	a := &Dataset{Name: "a", GroundTruth: map[string]string{"u1": "de", "u2": "fr", "u3": "it"}}
	b := &Dataset{Name: "b", GroundTruth: map[string]string{"u1": "jp", "u2": "us"}}
	var first string
	for trial := 0; trial < 10; trial++ {
		_, err := Merge("ab", a, b)
		if err == nil {
			t.Fatal("conflicting merge should fail")
		}
		msg := err.Error()
		if trial == 0 {
			first = msg
			for _, want := range []string{"2 conflicting", `user "u1"`, `user "u2"`, `"de"`, `"jp"`, `dataset "a"`, `dataset "b"`} {
				if !strings.Contains(msg, want) {
					t.Errorf("merge error missing %s: %s", want, msg)
				}
			}
			continue
		}
		if msg != first {
			t.Fatalf("merge error is nondeterministic:\n%s\nvs\n%s", first, msg)
		}
	}
	// Agreeing duplicate labels still merge fine.
	c := &Dataset{Name: "c", GroundTruth: map[string]string{"u3": "it"}}
	if _, err := Merge("ac", a, c); err != nil {
		t.Errorf("agreeing labels should merge: %v", err)
	}
}

func TestMergeManyConflictsTruncatesList(t *testing.T) {
	t.Parallel()
	a := &Dataset{Name: "a", GroundTruth: map[string]string{}}
	b := &Dataset{Name: "b", GroundTruth: map[string]string{}}
	for i := 0; i < 9; i++ {
		u := fmt.Sprintf("u%d", i)
		a.GroundTruth[u] = "de"
		b.GroundTruth[u] = "jp"
	}
	_, err := Merge("ab", a, b)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "9 conflicting") || !strings.Contains(err.Error(), "and 4 more") {
		t.Errorf("merge error = %s", err)
	}
}
