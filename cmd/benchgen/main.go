// Command benchgen regenerates every table and figure of the paper and
// renders a paper-vs-measured report.
//
// Usage:
//
//	benchgen                     # run everything, text report to stdout
//	benchgen -exp fig13          # run one experiment
//	benchgen -markdown           # emit EXPERIMENTS.md-style markdown
//	benchgen -twitter-scale 10   # larger Twitter stand-in (slower, tighter)
//	benchgen -onion              # scrape forums through the onion network
//	benchgen -bench              # measure data-path kernels, write BENCH_placement.json
//	benchgen -bench -check       # also gate on the checked-in report (CI)
//	benchgen -bench-ingest       # measure the ingest path, write BENCH_ingest.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"darkcrowd/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp          = flag.String("exp", "", "run a single experiment (e.g. table1, fig13); empty = all")
		seed         = flag.Int64("seed", 2018, "seed for all synthetic data")
		twitterScale = flag.Int("twitter-scale", 20, "divide Table I user counts by this factor")
		forumScale   = flag.Int("forum-scale", 1, "divide forum census by this factor (1 = paper scale)")
		useOnion     = flag.Bool("onion", false, "scrape forums through the simulated Tor network")
		markdown     = flag.Bool("markdown", false, "emit markdown (EXPERIMENTS.md format)")
		svgDir       = flag.String("svg", "", "also write each figure as an SVG file into this directory")
		list         = flag.Bool("list", false, "list experiment IDs and exit")
		bench        = flag.Bool("bench", false, "measure the tracked data-path kernels and write a JSON report")
		benchOut     = flag.String("bench-out", "BENCH_placement.json", "where -bench writes its report")
		benchBase    = flag.String("bench-baseline", "BENCH_placement.json", "committed report -check gates against")
		benchIngest  = flag.Bool("bench-ingest", false, "measure the ingest data path (CSV parse, snapshots, fused build) and write a JSON report")
		ingestOut    = flag.String("bench-ingest-out", "BENCH_ingest.json", "where -bench-ingest writes its report")
		ingestBase   = flag.String("bench-ingest-baseline", "BENCH_ingest.json", "committed report -bench-ingest -check gates against")
		ingestWork   = flag.Int("ingest-workers", 4, "with -bench-ingest: sharded-parser worker count")
		check        = flag.Bool("check", false, "with -bench/-bench-ingest: fail if any workload is >2x slower than the committed report (plus ingest speedup gates)")
		cpuProfile   = flag.String("cpuprofile", "", "with -bench: write a pprof CPU profile of the suite here")
		memProfile   = flag.String("memprofile", "", "with -bench: write a pprof heap profile here")
	)
	flag.Parse()

	if *bench {
		baseline := ""
		if *check {
			baseline = *benchBase
		}
		return runBench(*twitterScale, *seed, *benchOut, baseline, *cpuProfile, *memProfile)
	}

	if *benchIngest {
		baseline := ""
		if *check {
			baseline = *ingestBase
		}
		return runIngestBench(*twitterScale, *seed, *ingestWork, *ingestOut, baseline)
	}

	if *list {
		for _, id := range experiments.AllIDs() {
			fmt.Println(id)
		}
		return 0
	}

	lab := experiments.NewLab(experiments.Config{
		Seed:         *seed,
		TwitterScale: *twitterScale,
		ForumScale:   *forumScale,
		UseOnion:     *useOnion,
	})

	ids := experiments.AllIDs()
	if *exp != "" {
		ids = []string{*exp}
	}

	if *markdown {
		fmt.Println("# EXPERIMENTS — paper vs. measured")
		fmt.Println()
		fmt.Printf("Regenerated with `benchgen -seed %d -twitter-scale %d -forum-scale %d`.\n\n",
			*seed, *twitterScale, *forumScale)
		fmt.Println("| ID | Experiment | Paper reports | Measured | Shape |")
		fmt.Println("|---|---|---|---|---|")
	}

	failures := 0
	var details []string
	for _, id := range ids {
		res, err := lab.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: %s: %v\n", id, err)
			return 1
		}
		status := "PASS"
		if !res.Pass {
			status = "FAIL"
			failures++
		}
		if *svgDir != "" {
			if err := writeCharts(*svgDir, res); err != nil {
				fmt.Fprintf(os.Stderr, "benchgen: write SVG for %s: %v\n", res.ID, err)
				return 1
			}
		}
		if *markdown {
			fmt.Printf("| %s | %s | %s | %s | %s |\n",
				res.ID, mdEscape(res.Title), mdEscape(res.Paper), mdEscape(res.Measured), status)
			var b strings.Builder
			fmt.Fprintf(&b, "## %s — %s\n\n", res.ID, res.Title)
			fmt.Fprintf(&b, "- **Paper:** %s\n- **Measured:** %s\n- **Shape check:** %s\n- **Elapsed:** %s\n\n",
				res.Paper, res.Measured, status, res.Elapsed.Round(1e7))
			b.WriteString("```\n")
			for _, line := range res.Lines {
				b.WriteString(line)
				b.WriteByte('\n')
			}
			b.WriteString("```\n")
			details = append(details, b.String())
		} else {
			fmt.Printf("=== %s [%s] (%s)\n", res.ID, status, res.Elapsed.Round(1e7))
			fmt.Printf("    %s\n", res.Title)
			fmt.Printf("    paper:    %s\n", res.Paper)
			fmt.Printf("    measured: %s\n", res.Measured)
			for _, line := range res.Lines {
				fmt.Println(line)
			}
			fmt.Println()
		}
	}
	if *markdown {
		fmt.Println()
		for _, d := range details {
			fmt.Println(d)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchgen: %d experiment(s) failed the shape check\n", failures)
		return 1
	}
	return 0
}

func mdEscape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}

// writeCharts renders a result's figures into dir as SVG files.
func writeCharts(dir string, res *experiments.Result) error {
	if len(res.Charts) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, nc := range res.Charts {
		svg, err := nc.Chart.SVG()
		if err != nil {
			return fmt.Errorf("render %s/%s: %w", res.ID, nc.Name, err)
		}
		path := filepath.Join(dir, fmt.Sprintf("%s-%s.svg", res.ID, nc.Name))
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			return err
		}
	}
	return nil
}
