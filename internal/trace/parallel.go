package trace

// The parallel sharded CSV reader. After the columnar store and the
// allocation-free kernels, cold-start ingest dominates the pipeline
// (csv_read is ~3x the placement kernel in BENCH_placement at scale 20),
// so the load path gets the same treatment as placement: split the input
// on newline boundaries, parse shards concurrently on internal/par, and
// merge deterministically so the result is bit-identical to ReadCSVOpts
// at any worker count — including error messages, quarantine reports and
// bad-row budget aborts.
//
// The equivalence contract is strict and the test battery pins it:
//
//   - shard boundaries depend only on (input, workers), never scheduling;
//   - each shard parses with its own interning table; the merge re-interns
//     shard dictionaries in shard order, which reproduces the sequential
//     reader's first-appearance order;
//   - malformed rows are recorded per shard with shard-local record and
//     physical-line ordinals; the merge rebases them with prefix sums and
//     replays them through the same quarantine() logic the sequential
//     reader uses, so reports and budget aborts come out byte-identical;
//   - rare shapes with csv-specific normalization (\r handling, quoted
//     fields) are delegated: a line containing '\r' is parsed by a
//     one-line encoding/csv reader, and any input containing '"' falls
//     back to ReadCSVOpts wholesale. The fast path only handles byte
//     shapes whose csv semantics are trivially the identity.
//
// The fused-ingest hook rides on the same pass: with CollectCells set,
// the shard loop also emits the integer profile cell (epochDay*24+hour,
// i.e. floor(unixSec/3600)) per post, so profile building can skip its
// re-scan of the store (see profile.BuildUserProfilesFused).

import (
	"bytes"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"time"

	"darkcrowd/internal/par"
)

// IngestOptions tunes IngestCSV. The embedded ReadCSVOptions mean exactly
// what they mean for ReadCSVOpts — lenient quarantining, budgets and
// sample caps behave identically on every path.
type IngestOptions struct {
	ReadCSVOptions
	// Workers is the shard parallelism (<=0 selects GOMAXPROCS; clamped
	// like par.Workers). The parsed result is bit-identical at any value.
	Workers int
	// CollectCells additionally emits the integer UTC profile cell of
	// every post during the parse, fusing ingest with the first half of
	// profile building.
	CollectCells bool
}

// IngestResult is what IngestCSV produces: the dataset with its columnar
// index already built (Dataset.Index is free), the lenient-mode
// quarantine report, the optional fused cells, and the worker count that
// actually ran.
type IngestResult struct {
	Dataset *Dataset
	Report  *QuarantineReport
	// Cells is non-nil when IngestOptions.CollectCells was set and the
	// ingest succeeded.
	Cells *UserCells
	// Workers is the resolved shard count (1 on the sequential fallback).
	Workers int
}

// UserCells is the fused-ingest product: per-post integer profile cells
// (epochDay*24+hour, UTC) grouped per user through the columnar index.
// It feeds profile.BuildUserProfilesFused the exact sequence of keys the
// unfused path would recompute from the store's timestamp column.
type UserCells struct {
	store *Store
	keys  []int64 // per post, dataset order: floor(unixSec/3600)
}

// NumUsers returns the number of distinct users.
func (c *UserCells) NumUsers() int { return c.store.NumUsers() }

// UserID returns the user ID at dense index u (sorted by ID).
func (c *UserCells) UserID(u int) string { return c.store.UserID(u) }

// Count returns the number of posts of the user at dense index u.
func (c *UserCells) Count(u int) int { return c.store.Count(u) }

// Store returns the columnar index the cells are grouped by.
func (c *UserCells) Store() *Store { return c.store }

// AppendUserKeys appends user u's per-post cell keys (in dataset order)
// to buf and returns it — the fused twin of Store.AppendUserTimes.
func (c *UserCells) AppendUserKeys(buf []int64, u int) []int64 {
	for _, pos := range c.store.posts[c.store.offsets[u]:c.store.offsets[u+1]] {
		buf = append(buf, c.keys[pos])
	}
	return buf
}

// floorDiv3600 is floor(sec/3600) — the UTC profile cell key
// epochDay*24+hour of an epoch-seconds timestamp (exactly
// profile.cellKey(profile.cellOfUnix(sec)), proven by the fused-build
// equivalence test).
func floorDiv3600(sec int64) int64 {
	q := sec / 3600
	if sec%3600 != 0 && sec < 0 {
		q--
	}
	return q
}

// ReadCSVParallel is the drop-in parallel variant of ReadCSVOpts: same
// inputs (as bytes), same three results, bit-identical at any worker
// count. The returned dataset additionally has its columnar index
// pre-built.
func ReadCSVParallel(name string, data []byte, opts ReadCSVOptions, workers int) (*Dataset, *QuarantineReport, error) {
	res, err := IngestCSV(name, data, IngestOptions{ReadCSVOptions: opts, Workers: workers})
	if res == nil {
		return nil, nil, err
	}
	return res.Dataset, res.Report, err
}

// IngestCSV parses a CSV activity trace with sharded workers and builds
// the columnar index as part of the merge. On error the result is nil,
// except for a lenient bad-row budget abort which carries the partial
// quarantine report (mirroring ReadCSVOpts).
func IngestCSV(name string, data []byte, opts IngestOptions) (*IngestResult, error) {
	if bytes.IndexByte(data, '"') >= 0 {
		// Quoted fields can span commas and newlines; shard splitting on
		// raw '\n' would be wrong. Quotes never appear in our writers'
		// output, so this path exists for correctness, not speed.
		return ingestSequential(name, data, opts)
	}
	bodyStart, headerLines, err := parseCSVHeader(data)
	if err != nil {
		return nil, err
	}
	workers := par.Workers(opts.Workers, len(data)-bodyStart)
	cuts := shardSplit(data, bodyStart, workers)
	keep := 1 // strict mode stops a shard at its first bad row
	if opts.Lenient {
		keep = opts.SampleCap
		if keep <= 0 {
			keep = DefaultQuarantineSample
		}
	}
	shards := make([]*shardResult, workers)
	if err := par.Ranges(nil, workers, workers, func(start, end int) error {
		for k := start; k < end; k++ {
			shards[k] = parseShard(data[cuts[k]:cuts[k+1]], opts.Lenient, keep, opts.CollectCells)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return mergeShards(name, shards, headerLines, opts, workers)
}

// ingestSequential is the fallback path: ReadCSVOpts plus index/cells.
func ingestSequential(name string, data []byte, opts IngestOptions) (*IngestResult, error) {
	ds, report, err := ReadCSVOpts(name, bytes.NewReader(data), opts.ReadCSVOptions)
	if err != nil {
		return &IngestResult{Report: report, Workers: 1}, err
	}
	res := &IngestResult{Dataset: ds, Report: report, Workers: 1}
	s := ds.Index()
	if opts.CollectCells {
		keys := make([]int64, len(s.when))
		for i, sec := range s.when {
			keys[i] = floorDiv3600(sec)
		}
		res.Cells = &UserCells{store: s, keys: keys}
	}
	return res, nil
}

// errBlankLine is the internal sentinel for "this physical line is blank
// after csv normalization — skip it without consuming a record ordinal".
// It never escapes the package.
var errBlankLine = errors.New("trace: blank line")

// readOneCSVLine parses a single physical line (raw excludes the '\n'
// terminator; terminated says whether one followed in the input) with a
// real encoding/csv reader, so \r normalization, EOF edge cases and
// field-count errors are csv-exact. physLine rebases the reader's
// 1-based line numbers onto the caller's physical line ordinals.
func readOneCSVLine(raw []byte, terminated bool, physLine, fieldsPer int) ([]string, error) {
	buf := raw
	if terminated {
		buf = make([]byte, 0, len(raw)+1)
		buf = append(append(buf, raw...), '\n')
	}
	cr := csv.NewReader(bytes.NewReader(buf))
	cr.FieldsPerRecord = fieldsPer
	rec, err := cr.Read()
	if errors.Is(err, io.EOF) {
		return nil, errBlankLine
	}
	if err != nil {
		var pe *csv.ParseError
		if errors.As(err, &pe) {
			pe.StartLine += physLine - 1
			pe.Line += physLine - 1
		}
		return nil, err
	}
	return rec, nil
}

// parseCSVHeader consumes the header the way ReadCSVOpts does: blank
// lines are skipped, the first real line must be exactly csvHeader.
// bodyStart is the byte offset of the first body line; headerLines the
// number of physical lines consumed (blanks included).
func parseCSVHeader(data []byte) (bodyStart, headerLines int, err error) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		var raw []byte
		next := len(data)
		terminated := nl >= 0
		if terminated {
			raw, next = data[off:off+nl], off+nl+1
		} else {
			raw = data[off:]
		}
		headerLines++
		var fields []string
		if bytes.IndexByte(raw, '\r') >= 0 {
			fields, err = readOneCSVLine(raw, terminated, headerLines, -1)
			if errors.Is(err, errBlankLine) {
				off = next
				continue
			}
			if err != nil {
				// Unreachable on quote-free input, but keep the
				// sequential reader's wrapping for safety.
				return 0, 0, fmt.Errorf("trace: read CSV header: %w", err)
			}
		} else {
			if len(raw) == 0 {
				off = next
				continue
			}
			fields = splitCommas(raw)
		}
		if len(fields) != len(csvHeader) || fields[0] != csvHeader[0] || fields[1] != csvHeader[1] {
			return 0, 0, fmt.Errorf("trace: unexpected CSV header %v", fields)
		}
		return next, headerLines, nil
	}
	return 0, 0, errors.New("trace: empty CSV")
}

// splitCommas splits a quote-free, \r-free line into csv fields.
func splitCommas(raw []byte) []string {
	fields := make([]string, 0, 2)
	for {
		c := bytes.IndexByte(raw, ',')
		if c < 0 {
			return append(fields, string(raw))
		}
		fields = append(fields, string(raw[:c]))
		raw = raw[c+1:]
	}
}

// shardSplit returns workers+1 cut points into data such that every
// shard [cuts[k], cuts[k+1]) starts at a line start: each interior cut
// sits immediately after a '\n' (or at len(data)), and cuts are
// non-decreasing with cuts[0] = start, cuts[workers] = len(data). A line
// straddling an ideal boundary belongs entirely to the earlier shard.
func shardSplit(data []byte, start, workers int) []int {
	cuts := make([]int, workers+1)
	cuts[0] = start
	size := len(data) - start
	for k := 1; k < workers; k++ {
		target := start + k*size/workers
		if target < cuts[k-1] {
			target = cuts[k-1]
		}
		if target >= len(data) {
			cuts[k] = len(data)
			continue
		}
		if j := bytes.IndexByte(data[target:], '\n'); j >= 0 {
			cuts[k] = target + j + 1
		} else {
			cuts[k] = len(data)
		}
	}
	cuts[workers] = len(data)
	return cuts
}

// shardBad is one malformed record, recorded with shard-local ordinals;
// the merge rebases them with prefix sums.
type shardBad struct {
	rec     int             // shard-local record ordinal (1-based)
	csvErr  *csv.ParseError // CSV-level damage, shard-local line numbers
	timeErr error           // bad timestamp (position-independent message)
	raw     string          // offending timestamp value (time damage only)
}

// shardResult is one shard's parse output: locally-interned columns plus
// the bookkeeping the deterministic merge needs.
type shardResult struct {
	dict    []string         // shard-local user index -> ID, first appearance
	lookup  map[string]int32 // user ID -> shard-local index
	userOf  []int32          // per post: shard-local user index
	when    []int64          // per post: Unix seconds (floor)
	cells   []int64          // per post: floorDiv3600(when), if collecting
	nanoAt  []int32          // shard-local post indices with sub-second parts
	nanoT   []time.Time      // parallel to nanoAt: exact parsed instants
	lines   int              // physical lines consumed
	recs    int              // records consumed (non-blank lines)
	bad     []shardBad       // first keep malformed records, in order
	badRows int              // total malformed records
}

// addBad records one malformed record and reports whether the shard
// should stop (strict mode fails fast; lenient keeps scanning).
func (sh *shardResult) addBad(b shardBad, lenient bool, keep int) (stop bool) {
	sh.badRows++
	if len(sh.bad) < keep {
		sh.bad = append(sh.bad, b)
	}
	return !lenient
}

// record processes one well-formed csv row (user, timestamp fields as raw
// bytes) and reports whether the shard should stop.
func (sh *shardResult) record(user, ts []byte, lenient bool, keep int, collectCells bool) (stop bool) {
	sec, t, fast, err := parseStamp(ts)
	if err != nil {
		return sh.addBad(shardBad{rec: sh.recs, timeErr: err, raw: string(ts)}, lenient, keep)
	}
	if !fast {
		sec = t.Unix()
		if t.Nanosecond() != 0 {
			// The whole-seconds column drops the fractional part (like the
			// store's epoch column); remember the exact instant for the
			// Post materialization.
			sh.nanoAt = append(sh.nanoAt, int32(len(sh.when)))
			sh.nanoT = append(sh.nanoT, t)
		}
	}
	u, ok := sh.lookup[string(user)]
	if !ok {
		u = int32(len(sh.dict))
		id := string(user)
		sh.lookup[id] = u
		sh.dict = append(sh.dict, id)
	}
	sh.userOf = append(sh.userOf, u)
	sh.when = append(sh.when, sec)
	if collectCells {
		sh.cells = append(sh.cells, floorDiv3600(sec))
	}
	return false
}

// parseShard scans one newline-aligned byte range. The fast path handles
// '\r'-free lines with two plain comma-separated fields — byte shapes
// where csv parsing is the identity — and anything containing '\r' is
// delegated to a one-line encoding/csv reader.
func parseShard(seg []byte, lenient bool, keep int, collectCells bool) *shardResult {
	sh := &shardResult{lookup: make(map[string]int32)}
	rest := seg
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		var raw []byte
		terminated := nl >= 0
		if terminated {
			raw, rest = rest[:nl], rest[nl+1:]
		} else {
			raw, rest = rest, nil
		}
		sh.lines++
		if bytes.IndexByte(raw, '\r') >= 0 {
			fields, err := readOneCSVLine(raw, terminated, sh.lines, len(csvHeader))
			if errors.Is(err, errBlankLine) {
				continue
			}
			sh.recs++
			if err != nil {
				var pe *csv.ParseError
				if !errors.As(err, &pe) {
					// Unreachable on quote-free input; never drop it on the
					// floor if encoding/csv grows a new error shape.
					pe = &csv.ParseError{StartLine: sh.lines, Line: sh.lines, Column: 1, Err: err}
				}
				if sh.addBad(shardBad{rec: sh.recs, csvErr: pe}, lenient, keep) {
					return sh
				}
				continue
			}
			if sh.record([]byte(fields[0]), []byte(fields[1]), lenient, keep, collectCells) {
				return sh
			}
			continue
		}
		if len(raw) == 0 {
			continue // blank line: no record ordinal, like encoding/csv
		}
		sh.recs++
		comma := bytes.IndexByte(raw, ',')
		if comma < 0 || bytes.IndexByte(raw[comma+1:], ',') >= 0 {
			// Wrong field count: synthesize the exact error encoding/csv
			// would produce (verified against the stdlib source: StartLine
			// and Line are the record's first physical line, Column is 1).
			pe := &csv.ParseError{StartLine: sh.lines, Line: sh.lines, Column: 1, Err: csv.ErrFieldCount}
			if sh.addBad(shardBad{rec: sh.recs, csvErr: pe}, lenient, keep) {
				return sh
			}
			continue
		}
		if sh.record(raw[:comma], raw[comma+1:], lenient, keep, collectCells) {
			return sh
		}
	}
	return sh
}

// offsetParseError rebases a shard-local ParseError onto global physical
// line numbers. It copies — shard results stay untouched so the merge is
// re-runnable.
func offsetParseError(pe *csv.ParseError, lineOff int) *csv.ParseError {
	cp := *pe
	cp.StartLine += lineOff
	cp.Line += lineOff
	return &cp
}

// mergeShards is the single-goroutine deterministic reduction: rebase
// per-shard ordinals with prefix sums, reproduce the sequential reader's
// error/quarantine behavior exactly, re-intern shard dictionaries in
// shard order (= first-appearance order), materialize Posts, and finish
// the columnar store.
func mergeShards(name string, shards []*shardResult, headerLines int, opts IngestOptions, workers int) (*IngestResult, error) {
	recOff := make([]int, len(shards)+1)
	lineOff := make([]int, len(shards)+1)
	postOff := make([]int, len(shards)+1)
	recOff[0] = 1 // the header is record 1; body records continue from 2
	lineOff[0] = headerLines
	for k, sh := range shards {
		recOff[k+1] = recOff[k] + sh.recs
		lineOff[k+1] = lineOff[k] + sh.lines
		postOff[k+1] = postOff[k] + len(sh.when)
	}

	if !opts.Lenient {
		// Strict: the lowest-indexed shard's first bad row is the first bad
		// row of the file (earlier shards parsed fully and cleanly), and it
		// aborts with the sequential reader's exact error.
		for k, sh := range shards {
			if sh.badRows == 0 {
				continue
			}
			b := sh.bad[0]
			rec := recOff[k] + b.rec
			if b.timeErr != nil {
				return nil, fmt.Errorf("trace: parse time on line %d: %w", rec, b.timeErr)
			}
			return nil, fmt.Errorf("trace: read CSV line %d: %w", rec, offsetParseError(b.csvErr, lineOff[k]))
		}
	}

	var report *QuarantineReport
	if opts.Lenient {
		report = &QuarantineReport{}
		// Replay every bad row in global record order (shard order is record
		// order) through the same quarantine logic the sequential reader
		// uses, so sampling, truncation and the budget abort are identical.
		// A row whose detail was capped per-shard can never be sampled: its
		// within-shard index >= keep implies the global sample is already
		// full when it replays.
		for k, sh := range shards {
			for i := 0; i < sh.badRows; i++ {
				var row QuarantinedRow
				if i < len(sh.bad) {
					b := sh.bad[i]
					row = QuarantinedRow{Line: recOff[k] + b.rec}
					if b.timeErr != nil {
						row.Field = csvHeader[1]
						row.Reason = b.timeErr.Error()
						row.Raw = b.raw
					} else {
						row.Field = "record"
						row.Reason = offsetParseError(b.csvErr, lineOff[k]).Error()
					}
				}
				if qerr := opts.quarantine(report, row); qerr != nil {
					return &IngestResult{Report: report, Workers: workers}, qerr
				}
			}
		}
	}

	// Re-intern shard dictionaries in shard order. Within a shard the dict
	// is in first-appearance order, and shards cover the file in order, so
	// the provisional global order equals the sequential reader's
	// first-appearance order.
	totalPosts := postOff[len(shards)]
	lookup := make(map[string]int32)
	var firstIDs []string
	var counts []int32
	userOf := make([]int32, totalPosts)
	when := make([]int64, totalPosts)
	var cells []int64
	if opts.CollectCells {
		cells = make([]int64, totalPosts)
	}
	for k, sh := range shards {
		base := postOff[k]
		remap := make([]int32, len(sh.dict))
		for i, id := range sh.dict {
			g, ok := lookup[id]
			if !ok {
				g = int32(len(firstIDs))
				lookup[id] = g
				firstIDs = append(firstIDs, id)
				counts = append(counts, 0)
			}
			remap[i] = g
		}
		for i, u := range sh.userOf {
			g := remap[u]
			userOf[base+i] = g
			counts[g]++
		}
		copy(when[base:], sh.when)
		if opts.CollectCells {
			copy(cells[base:], sh.cells)
		}
	}

	ds := &Dataset{Name: name}
	switch {
	case totalPosts > 0:
		ds.Posts = make([]Post, totalPosts)
	case opts.PostHint > 0:
		// Mirror ReadCSVOpts: a hinted read returns an empty non-nil slice.
		ds.Posts = make([]Post, 0, opts.PostHint)
	}
	for i := range ds.Posts {
		ds.Posts[i] = Post{UserID: firstIDs[userOf[i]], Time: time.Unix(when[i], 0).UTC()}
	}
	for k, sh := range shards {
		base := postOff[k]
		for j, at := range sh.nanoAt {
			ds.Posts[base+int(at)].Time = sh.nanoT[j]
		}
	}
	sorted := true
	for i := 1; i < len(ds.Posts); i++ {
		if ds.Posts[i].Time.Before(ds.Posts[i-1].Time) {
			sorted = false
			break
		}
	}

	s := &Store{lookup: lookup, userOf: userOf, when: when, sortedByTime: sorted}
	s.finish(firstIDs, counts)
	ds.idx = s

	res := &IngestResult{Dataset: ds, Report: report, Workers: workers}
	if opts.CollectCells {
		res.Cells = &UserCells{store: s, keys: cells}
	}
	return res, nil
}
