package pipeline

import (
	"encoding/json"
	"testing"
)

// refDecode is the reflection path parseIngestLine must agree with: the
// daemon's fallback json.Unmarshal plus its accept checks.
func refDecode(line []byte) (user string, unixSec int64, ok bool) {
	var p ingestPost
	if err := json.Unmarshal(line, &p); err != nil || p.UserID == "" || p.Time.IsZero() {
		return "", 0, false
	}
	return p.UserID, p.Time.Unix(), true
}

func TestParseIngestLineAccepts(t *testing.T) {
	cases := []string{
		`{"user_id":"alice","time":"2017-03-01T12:34:56Z"}`,
		`{"time":"2017-03-01T12:34:56Z","user_id":"alice"}`, // key order free
		`  { "user_id" : "bob" , "time" : "1999-12-31T23:59:59Z" }  `,
		`{"user_id":"x","time":"2017-03-01T12:34:56+05:30"}`, // offset: slow stamp lane
		`{"user_id":"x","time":"2017-03-01T12:34:56.25Z"}`,   // fractional: slow stamp lane
	}
	for _, c := range cases {
		user, sec, ok := parseIngestLine([]byte(c))
		if !ok {
			t.Errorf("parseIngestLine(%q) fell back, want fast accept", c)
			continue
		}
		wantUser, wantSec, wantOK := refDecode([]byte(c))
		if !wantOK || string(user) != wantUser || sec != wantSec {
			t.Errorf("parseIngestLine(%q) = (%q, %d), reference = (%q, %d, %v)",
				c, user, sec, wantUser, wantSec, wantOK)
		}
	}
}

func TestParseIngestLineFallsBack(t *testing.T) {
	// All of these must go to the slow lane — some are valid JSON the fast
	// scanner refuses to guess at, some are garbage. Either way ok=false,
	// and the reference decoder is the authority on what happens next.
	cases := []string{
		``,
		`not json`,
		`{"user_id":"alice"}`, // missing time
		`{"user_id":"","time":"2017-03-01T12:34:56Z"}`,                  // empty user
		"{\"user_id\":\"a\\u0041b\",\"time\":\"2017-03-01T12:34:56Z\"}", // escape
		`{"user_id":"ünïcode","time":"2017-03-01T12:34:56Z"}`,           // non-ASCII
		`{"user_id":"a","time":"2017-03-01T12:34:56Z","x":1}`,           // extra key
		`{"user_id":"a","user_id":"b","time":"2017-03-01T12:34:56Z"}`,   // dup key
		`{"user_id":"a","time":"0001-01-01T00:00:00Z"}`,                 // zero instant
		`{"user_id":"a","time":"not a time"}`,
		`{"user_id":"a","time":"2017-13-01T12:34:56Z"}`, // bad month
		`{"user_id":"a","time":"2017-03-01T12:34:56Z"} trailing`,
		`{"user_id":123,"time":"2017-03-01T12:34:56Z"}`, // non-string user
	}
	for _, c := range cases {
		if _, _, ok := parseIngestLine([]byte(c)); ok {
			t.Errorf("parseIngestLine(%q) accepted, want fallback", c)
		}
	}
}

// TestParseIngestLineZeroAlloc pins the hot-path contract: decoding a
// plain well-formed line allocates nothing.
func TestParseIngestLineZeroAlloc(t *testing.T) {
	line := []byte(`{"user_id":"user-00042","time":"2017-03-01T12:34:56Z"}`)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, ok := parseIngestLine(line); !ok {
			t.Fatal("fast path rejected a plain line")
		}
	})
	if allocs != 0 {
		t.Errorf("fast-path decode allocates %v per line, want 0", allocs)
	}
}

// FuzzParseIngestLineEquivalence is the soundness contract: any line the
// fast path accepts must be one the reflection path accepts with exactly
// the same user and second. (Fallback on ok=false is always safe, so
// rejections need no check.)
func FuzzParseIngestLineEquivalence(f *testing.F) {
	f.Add(`{"user_id":"alice","time":"2017-03-01T12:34:56Z"}`)
	f.Add(`{"time":"2017-03-01T12:34:56Z","user_id":"alice"}`)
	f.Add(` {"user_id" : "b" , "time":"2038-01-19T03:14:07Z"} `)
	f.Add(`{"user_id":"a","time":"2017-03-01T12:34:56+05:30"}`)
	f.Add(`{"user_id":"a","time":"0001-01-01T00:00:00Z"}`)
	f.Add(`{"user_id":"a\"b","time":"2017-03-01T12:34:56Z"}`)
	f.Add(`{"user_id":"a","time":"2017-02-29T00:00:00Z"}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, line string) {
		user, sec, ok := parseIngestLine([]byte(line))
		if !ok {
			return
		}
		wantUser, wantSec, wantOK := refDecode([]byte(line))
		if !wantOK {
			t.Fatalf("fast path accepted %q, reference rejects it", line)
		}
		if string(user) != wantUser || sec != wantSec {
			t.Fatalf("fast path %q = (%q, %d), reference = (%q, %d)",
				line, user, sec, wantUser, wantSec)
		}
	})
}
