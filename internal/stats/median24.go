package stats

// medianNet24 returns the median of the 24 values in x, overwriting x in the
// process. It runs a fixed comparator network — Batcher's odd-even mergesort
// on 32 wires, pruned to 24 real wires and then backward-pruned to the 108
// compare-exchanges that can influence output positions 11 and 12 — and
// averages the two middle order statistics, exactly like a full sort
// followed by (tmp[11]+tmp[12])/2.
//
// Correctness is exhaustively verified by the 0-1 principle: a comparator
// network places the correct order statistic on a wire for every real input
// iff it does so for all 2^n boolean inputs, and this network has been
// checked on all 2^24 of them (see TestMedianNet24 for an in-repo spot
// check). The point of the network over insertionSort is that every
// compare-exchange compiles to branchless float min/max, so the cost is
// data-independent: the EMD placement kernel feeds this function
// cumulative-difference sequences whose ordering varies wildly between
// rotations, and data-dependent branches there are mispredicted often
// enough to dominate the whole placement run.
//
// min/max builtins propagate NaN, so a NaN anywhere in x yields a NaN
// median rather than a silently wrong one; EMD inputs are validated
// NaN-free before this is reached.
func medianNet24(s []float64) float64 {
	x := (*[24]float64)(s)

	x[0], x[1] = min(x[0], x[1]), max(x[0], x[1])
	x[2], x[3] = min(x[2], x[3]), max(x[2], x[3])
	x[0], x[2] = min(x[0], x[2]), max(x[0], x[2])
	x[1], x[3] = min(x[1], x[3]), max(x[1], x[3])
	x[1], x[2] = min(x[1], x[2]), max(x[1], x[2])
	x[4], x[5] = min(x[4], x[5]), max(x[4], x[5])

	x[6], x[7] = min(x[6], x[7]), max(x[6], x[7])
	x[4], x[6] = min(x[4], x[6]), max(x[4], x[6])
	x[5], x[7] = min(x[5], x[7]), max(x[5], x[7])
	x[5], x[6] = min(x[5], x[6]), max(x[5], x[6])
	x[0], x[4] = min(x[0], x[4]), max(x[0], x[4])
	x[2], x[6] = min(x[2], x[6]), max(x[2], x[6])

	x[2], x[4] = min(x[2], x[4]), max(x[2], x[4])
	x[1], x[5] = min(x[1], x[5]), max(x[1], x[5])
	x[3], x[7] = min(x[3], x[7]), max(x[3], x[7])
	x[3], x[5] = min(x[3], x[5]), max(x[3], x[5])
	x[1], x[2] = min(x[1], x[2]), max(x[1], x[2])
	x[3], x[4] = min(x[3], x[4]), max(x[3], x[4])

	x[5], x[6] = min(x[5], x[6]), max(x[5], x[6])
	x[8], x[9] = min(x[8], x[9]), max(x[8], x[9])
	x[10], x[11] = min(x[10], x[11]), max(x[10], x[11])
	x[8], x[10] = min(x[8], x[10]), max(x[8], x[10])
	x[9], x[11] = min(x[9], x[11]), max(x[9], x[11])
	x[9], x[10] = min(x[9], x[10]), max(x[9], x[10])

	x[12], x[13] = min(x[12], x[13]), max(x[12], x[13])
	x[14], x[15] = min(x[14], x[15]), max(x[14], x[15])
	x[12], x[14] = min(x[12], x[14]), max(x[12], x[14])
	x[13], x[15] = min(x[13], x[15]), max(x[13], x[15])
	x[13], x[14] = min(x[13], x[14]), max(x[13], x[14])
	x[8], x[12] = min(x[8], x[12]), max(x[8], x[12])

	x[10], x[14] = min(x[10], x[14]), max(x[10], x[14])
	x[10], x[12] = min(x[10], x[12]), max(x[10], x[12])
	x[9], x[13] = min(x[9], x[13]), max(x[9], x[13])
	x[11], x[15] = min(x[11], x[15]), max(x[11], x[15])
	x[11], x[13] = min(x[11], x[13]), max(x[11], x[13])
	x[9], x[10] = min(x[9], x[10]), max(x[9], x[10])

	x[11], x[12] = min(x[11], x[12]), max(x[11], x[12])
	x[13], x[14] = min(x[13], x[14]), max(x[13], x[14])
	x[0], x[8] = min(x[0], x[8]), max(x[0], x[8])
	x[4], x[12] = min(x[4], x[12]), max(x[4], x[12])
	x[4], x[8] = min(x[4], x[8]), max(x[4], x[8])
	x[2], x[10] = min(x[2], x[10]), max(x[2], x[10])

	x[6], x[14] = min(x[6], x[14]), max(x[6], x[14])
	x[6], x[10] = min(x[6], x[10]), max(x[6], x[10])
	x[2], x[4] = min(x[2], x[4]), max(x[2], x[4])
	x[6], x[8] = min(x[6], x[8]), max(x[6], x[8])
	x[10], x[12] = min(x[10], x[12]), max(x[10], x[12])
	x[1], x[9] = min(x[1], x[9]), max(x[1], x[9])

	x[5], x[13] = min(x[5], x[13]), max(x[5], x[13])
	x[5], x[9] = min(x[5], x[9]), max(x[5], x[9])
	x[3], x[11] = min(x[3], x[11]), max(x[3], x[11])
	x[7], x[15] = min(x[7], x[15]), max(x[7], x[15])
	x[7], x[11] = min(x[7], x[11]), max(x[7], x[11])
	x[3], x[5] = min(x[3], x[5]), max(x[3], x[5])

	x[7], x[9] = min(x[7], x[9]), max(x[7], x[9])
	x[11], x[13] = min(x[11], x[13]), max(x[11], x[13])
	x[1], x[2] = min(x[1], x[2]), max(x[1], x[2])
	x[3], x[4] = min(x[3], x[4]), max(x[3], x[4])
	x[5], x[6] = min(x[5], x[6]), max(x[5], x[6])
	x[7], x[8] = min(x[7], x[8]), max(x[7], x[8])

	x[9], x[10] = min(x[9], x[10]), max(x[9], x[10])
	x[11], x[12] = min(x[11], x[12]), max(x[11], x[12])
	x[13], x[14] = min(x[13], x[14]), max(x[13], x[14])
	x[16], x[17] = min(x[16], x[17]), max(x[16], x[17])
	x[18], x[19] = min(x[18], x[19]), max(x[18], x[19])
	x[16], x[18] = min(x[16], x[18]), max(x[16], x[18])

	x[17], x[19] = min(x[17], x[19]), max(x[17], x[19])
	x[17], x[18] = min(x[17], x[18]), max(x[17], x[18])
	x[20], x[21] = min(x[20], x[21]), max(x[20], x[21])
	x[22], x[23] = min(x[22], x[23]), max(x[22], x[23])
	x[20], x[22] = min(x[20], x[22]), max(x[20], x[22])
	x[21], x[23] = min(x[21], x[23]), max(x[21], x[23])

	x[21], x[22] = min(x[21], x[22]), max(x[21], x[22])
	x[16], x[20] = min(x[16], x[20]), max(x[16], x[20])
	x[18], x[22] = min(x[18], x[22]), max(x[18], x[22])
	x[18], x[20] = min(x[18], x[20]), max(x[18], x[20])
	x[17], x[21] = min(x[17], x[21]), max(x[17], x[21])
	x[19], x[23] = min(x[19], x[23]), max(x[19], x[23])

	x[19], x[21] = min(x[19], x[21]), max(x[19], x[21])
	x[17], x[18] = min(x[17], x[18]), max(x[17], x[18])
	x[19], x[20] = min(x[19], x[20]), max(x[19], x[20])
	x[21], x[22] = min(x[21], x[22]), max(x[21], x[22])
	x[18], x[20] = min(x[18], x[20]), max(x[18], x[20])
	x[19], x[21] = min(x[19], x[21]), max(x[19], x[21])

	x[17], x[18] = min(x[17], x[18]), max(x[17], x[18])
	x[19], x[20] = min(x[19], x[20]), max(x[19], x[20])
	x[21], x[22] = min(x[21], x[22]), max(x[21], x[22])
	x[0], x[16] = min(x[0], x[16]), max(x[0], x[16])
	x[8], x[16] = min(x[8], x[16]), max(x[8], x[16])
	x[4], x[20] = min(x[4], x[20]), max(x[4], x[20])

	x[12], x[20] = min(x[12], x[20]), max(x[12], x[20])
	x[12], x[16] = min(x[12], x[16]), max(x[12], x[16])
	x[2], x[18] = min(x[2], x[18]), max(x[2], x[18])
	x[10], x[18] = min(x[10], x[18]), max(x[10], x[18])
	x[6], x[22] = min(x[6], x[22]), max(x[6], x[22])
	x[6], x[10] = min(x[6], x[10]), max(x[6], x[10])

	x[10], x[12] = min(x[10], x[12]), max(x[10], x[12])
	x[1], x[17] = min(x[1], x[17]), max(x[1], x[17])
	x[9], x[17] = min(x[9], x[17]), max(x[9], x[17])
	x[5], x[21] = min(x[5], x[21]), max(x[5], x[21])
	x[13], x[21] = min(x[13], x[21]), max(x[13], x[21])
	x[13], x[17] = min(x[13], x[17]), max(x[13], x[17])

	x[3], x[19] = min(x[3], x[19]), max(x[3], x[19])
	x[11], x[19] = min(x[11], x[19]), max(x[11], x[19])
	x[7], x[23] = min(x[7], x[23]), max(x[7], x[23])
	x[7], x[11] = min(x[7], x[11]), max(x[7], x[11])
	x[11], x[13] = min(x[11], x[13]), max(x[11], x[13])
	x[11], x[12] = min(x[11], x[12]), max(x[11], x[12])

	return (x[11] + x[12]) / 2
}
