// The streaming half of the pipeline: a long-running geolocation daemon.
// The batch path (Geolocate) is load → profile → place → fit over a frozen
// trace; Daemon runs the same deterministic stages continuously over a
// live post stream. The state split mirrors the storage design: an
// immutable columnar base (trace.Head's compacted Dataset, checkpointed to
// a .dcs snapshot) under a small mutable ingest tail, with incremental
// integer cell counts (profile.Accumulator) and a version-keyed zone cache
// (geoloc.PlaceUsersPartial) keeping per-post work O(changed state)
// instead of O(corpus).
//
// Consistency model: every accepted post bumps a generation counter; a
// report is the pure deterministic function of the post multiset at some
// generation. /report recomputes when the cached report is stale, so a
// drained daemon answers with exactly the report a batch run over the same
// posts would print — bit-identical, any ingest interleaving (the
// accumulator's integer cell counts are order-independent, and polish,
// placement and the EM fit are deterministic functions of them).

package pipeline

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"os"
	"sync"
	"time"

	"darkcrowd/internal/atomicio"
	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/obs"
	"darkcrowd/internal/trace"
)

// ErrNoCrowd is returned by Report (and surfaced as 503 on /report) while
// no user has reached the active-profile threshold yet.
var ErrNoCrowd = errors.New("pipeline: no active users to geolocate yet")

// DefaultCompactEvery is the ingest-tail size that triggers compaction
// into the immutable base (and a snapshot write when configured).
const DefaultCompactEvery = 1 << 16

// DefaultRefitDebounce is the quiet period after the last ingest before
// the background refitter recomputes the report cache.
const DefaultRefitDebounce = 500 * time.Millisecond

// maxIngestLine bounds one NDJSON line; longer lines are rejected.
const maxIngestLine = 1 << 20

// ingestChunk bounds how many parsed posts are applied per state-lock
// acquisition, so a huge request body neither buffers fully in memory nor
// starves concurrent readers.
const ingestChunk = 4096

// ServeConfig parameterizes a streaming geolocation daemon.
type ServeConfig struct {
	// Reference supplies the generic reference profile, exactly as in
	// Config.Reference. Required; it runs once, synchronously, in NewDaemon.
	Reference func() (*profile.GenericResult, error)
	// MinPosts is the active-user threshold (0: profile.DefaultMinPosts).
	MinPosts int
	// SkipPolish disables flat-profile removal at report time.
	SkipPolish bool
	// MaxComponents bounds the GMM model search (0: the geoloc default).
	MaxComponents int
	// Workers sets the EM fit parallelism (0 = all cores). Reports are
	// bit-identical for every setting.
	Workers int
	// SnapshotPath, when non-empty, checkpoints the compacted trace to
	// this .dcs file (atomically, after each compaction and on Close) and
	// warm-starts from it on boot.
	SnapshotPath string
	// CompactEvery folds the mutable ingest tail into the immutable base
	// once it holds this many posts (0: DefaultCompactEvery).
	CompactEvery int
	// RefitDebounce is the quiet period before the background refitter
	// refreshes the report cache (0: DefaultRefitDebounce; negative:
	// background refits off — /report still recomputes on demand).
	RefitDebounce time.Duration
	// Obs, when non-nil, receives serve.* counters/gauges and the stage
	// spans of every refit. Observation only.
	Obs *obs.Observer
}

// ServeReport is the daemon's crowd report: the batch Geolocation plus
// stream bookkeeping. Geo is bit-identical to what a batch Geolocate run
// over the same posts would produce.
type ServeReport struct {
	// Gen is the ingest generation the report was computed at (the number
	// of accepted posts, including warm-started ones).
	Gen uint64 `json:"gen"`
	// Posts and Users count the whole stream, active or not.
	Posts int `json:"posts"`
	Users int `json:"users"`
	// ActiveUsers counts the profiles that reached placement (post
	// threshold, minus polish removals).
	ActiveUsers int `json:"active_users"`
	// PolishRemoved counts flat profiles dropped at report time.
	PolishRemoved int `json:"polish_removed"`
	// Geo is the geolocation: placement, mixture, components, metrics.
	Geo *geoloc.Geolocation `json:"geo"`
}

// zoneEntry is one cached per-user placement, valid while the user's
// profile version still matches.
type zoneEntry struct {
	zone int
	ver  uint64
}

// Daemon is a streaming geolocation service over an NDJSON post stream.
// Construct with NewDaemon, expose Handler over HTTP, Close to flush.
type Daemon struct {
	cfg     ServeConfig
	generic profile.Profile
	o       *obs.Observer
	start   time.Time

	// mu guards the ingest state: accumulator, head bookkeeping, zone
	// cache, generation counter and report cache pointers. Held only for
	// O(batch) map work — never across a fit or a snapshot write.
	mu      sync.Mutex
	acc     *profile.Accumulator
	head    *trace.Head
	zones   map[string]zoneEntry
	gen     uint64
	report  *ServeReport // last computed report (nil until first success)
	fitted  uint64       // generation `report` was computed at
	rejects uint64

	// fitMu serializes report computation; snapMu serializes snapshot
	// writes. Both are taken without mu held.
	fitMu  sync.Mutex
	snapMu sync.Mutex

	kick      chan struct{}
	stop      context.CancelFunc
	refitDone chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// NewDaemon builds the reference profile, warm-starts from
// cfg.SnapshotPath when the file exists, and starts the background
// refitter. The returned daemon is ready to serve; Close releases it.
func NewDaemon(cfg ServeConfig) (*Daemon, error) {
	if cfg.Reference == nil {
		return nil, errors.New("pipeline: ServeConfig.Reference is required")
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = DefaultCompactEvery
	}
	if cfg.RefitDebounce == 0 {
		cfg.RefitDebounce = DefaultRefitDebounce
	}
	gen, err := cfg.Reference()
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		cfg:     cfg,
		generic: gen.Generic,
		o:       cfg.Obs,
		start:   time.Now(),
		acc:     profile.NewAccumulator(cfg.MinPosts),
		zones:   make(map[string]zoneEntry),
		kick:    make(chan struct{}, 1),
	}
	var base *trace.Dataset
	if cfg.SnapshotPath != "" {
		data, err := os.ReadFile(cfg.SnapshotPath)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// First boot: nothing to warm-start from.
		case err != nil:
			return nil, fmt.Errorf("pipeline: open snapshot: %w", err)
		default:
			base, err = trace.ReadSnapshotBytes(data)
			if err != nil {
				return nil, fmt.Errorf("pipeline: load snapshot %s: %w (delete it to start empty)", cfg.SnapshotPath, err)
			}
			for i := range base.Posts {
				d.acc.Add(base.Posts[i].UserID, base.Posts[i].Time.Unix())
				d.gen++
			}
			d.o.Counter("serve.snapshot_loads").Add(1)
			d.o.Eventf("serve", "warm-started from snapshot", "posts", len(base.Posts))
		}
	}
	d.head = trace.NewHead("serve", base)
	ctx, cancel := context.WithCancel(context.Background())
	d.stop = cancel
	d.refitDone = make(chan struct{})
	if cfg.RefitDebounce > 0 {
		go d.refitLoop(ctx)
	} else {
		close(d.refitDone)
	}
	return d, nil
}

// Close stops the background refitter and, when a snapshot path is
// configured, compacts and writes a final snapshot. Idempotent.
func (d *Daemon) Close() error {
	d.closeOnce.Do(func() {
		d.stop()
		<-d.refitDone
		if d.cfg.SnapshotPath != "" {
			d.closeErr = d.writeSnapshot(d.head.Compact())
		}
	})
	return d.closeErr
}

// refitLoop keeps the report cache warm: each ingest kicks it, it waits
// for the stream to go quiet for RefitDebounce, then refits once. Errors
// (e.g. no active users yet) are ignored — /report recomputes on demand.
func (d *Daemon) refitLoop(ctx context.Context) {
	defer close(d.refitDone)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-d.kick:
		}
		timer.Reset(d.cfg.RefitDebounce)
	debounce:
		for {
			select {
			case <-ctx.Done():
				timer.Stop()
				return
			case <-d.kick:
				timer.Reset(d.cfg.RefitDebounce)
			case <-timer.C:
				break debounce
			}
		}
		if _, err := d.Report(); err == nil {
			d.o.Counter("serve.refits_background").Add(1)
		}
	}
}

// ingestPost is one NDJSON ingest line — the JSON shape of trace.Post.
type ingestPost struct {
	UserID string    `json:"user_id"`
	Time   time.Time `json:"time"`
}

// IngestResult summarizes one ingest request.
type IngestResult struct {
	// Accepted counts posts applied to the stream state.
	Accepted int `json:"accepted"`
	// Rejected counts malformed lines skipped (lenient, like the CSV
	// quarantine path); FirstError carries the first parse failure.
	Rejected   int    `json:"rejected"`
	FirstError string `json:"first_error,omitempty"`
	// Posts and Users are stream totals after this request.
	Posts int    `json:"posts"`
	Users int    `json:"users"`
	Gen   uint64 `json:"gen"`
}

// Ingest consumes an NDJSON stream — one {"user_id":..., "time":...}
// object per line, the JSON shape of trace.Post — and applies it to the
// stream state. Malformed lines are counted and skipped; a head capacity
// error (trace.LimitError) aborts the request. Sub-second timestamp
// precision is dropped, matching the columnar store's epoch-seconds
// column.
func (d *Daemon) Ingest(r io.Reader) (IngestResult, error) {
	var res IngestResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxIngestLine)
	batch := make([]ingestPost, 0, ingestChunk)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		var compacted *trace.Dataset
		d.mu.Lock()
		for _, p := range batch {
			if err := d.head.Append(p.UserID, p.Time.Unix()); err != nil {
				d.mu.Unlock()
				return err
			}
			d.acc.Add(p.UserID, p.Time.Unix())
			d.gen++
			res.Accepted++
		}
		if d.head.Pending() >= d.cfg.CompactEvery {
			compacted = d.head.Compact()
		}
		d.mu.Unlock()
		batch = batch[:0]
		if compacted != nil {
			d.o.Counter("serve.compactions").Add(1)
			if d.cfg.SnapshotPath != "" {
				if err := d.writeSnapshot(compacted); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(trimSpace(line)) == 0 {
			continue
		}
		var p ingestPost
		if err := json.Unmarshal(line, &p); err == nil && p.UserID != "" && !p.Time.IsZero() {
			batch = append(batch, p)
			if len(batch) >= ingestChunk {
				if err := flush(); err != nil {
					return res, err
				}
			}
			continue
		}
		res.Rejected++
		if res.FirstError == "" {
			res.FirstError = fmt.Sprintf("bad line %d: want {\"user_id\":string,\"time\":RFC3339}", res.Accepted+len(batch)+res.Rejected)
		}
	}
	if err := sc.Err(); err != nil {
		return res, fmt.Errorf("pipeline: read ingest body: %w", err)
	}
	if err := flush(); err != nil {
		return res, err
	}
	d.mu.Lock()
	res.Posts = d.acc.TotalPosts()
	res.Users = d.acc.NumUsers()
	res.Gen = d.gen
	d.rejects += uint64(res.Rejected)
	d.mu.Unlock()
	d.o.Counter("serve.posts_ingested").Add(int64(res.Accepted))
	d.o.Counter("serve.lines_rejected").Add(int64(res.Rejected))
	d.o.Gauge("serve.posts").Set(int64(res.Posts))
	d.o.Gauge("serve.users").Set(int64(res.Users))
	if res.Accepted > 0 {
		select { // wake the debounced refitter without blocking
		case d.kick <- struct{}{}:
		default:
		}
	}
	return res, nil
}

// trimSpace is bytes.TrimSpace for the blank-line check without importing
// bytes just for it.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r' || b[0] == '\n') {
		b = b[1:]
	}
	return b
}

// writeSnapshot persists an immutable compacted dataset atomically.
// Serialized so overlapping compactions can't interleave tmp files; the
// dataset itself is immutable, so no state lock is held.
func (d *Daemon) writeSnapshot(ds *trace.Dataset) error {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	if err := atomicio.WriteFile(d.cfg.SnapshotPath, ds.WriteSnapshot); err != nil {
		return fmt.Errorf("pipeline: save snapshot: %w", err)
	}
	d.o.Counter("serve.snapshot_writes").Add(1)
	return nil
}

// Report returns the crowd report for the current generation, serving the
// cache when fresh and recomputing otherwise. A drained daemon (no
// concurrent ingest) therefore always reports on every accepted post.
func (d *Daemon) Report() (*ServeReport, error) {
	d.mu.Lock()
	if d.report != nil && d.fitted == d.gen {
		rep := d.report
		d.mu.Unlock()
		return rep, nil
	}
	d.mu.Unlock()
	return d.refit()
}

// refit computes the report for the generation observed at snapshot time.
// The state lock is held only to snapshot profiles/cache and to write
// results back; the polish/placement/EM work runs outside it, serialized
// by fitMu so concurrent /report calls don't duplicate the fit.
func (d *Daemon) refit() (*ServeReport, error) {
	d.fitMu.Lock()
	defer d.fitMu.Unlock()

	d.mu.Lock()
	if d.report != nil && d.fitted == d.gen {
		rep := d.report
		d.mu.Unlock()
		return rep, nil
	}
	g := d.gen
	profiles, versions := d.acc.ActiveProfiles()
	known := make(map[string]int, len(d.zones))
	for id := range profiles {
		if e, ok := d.zones[id]; ok && e.ver == versions[id] {
			known[id] = e.zone
		}
	}
	posts, users := d.acc.TotalPosts(), d.acc.NumUsers()
	d.mu.Unlock()

	if len(profiles) == 0 {
		return nil, ErrNoCrowd
	}
	polishRemoved := 0
	kept := profiles
	if !d.cfg.SkipPolish {
		po := d.o.Stage("polish")
		polished, err := profile.Polish(profiles, d.generic, true)
		po.End()
		if err != nil {
			return nil, err
		}
		kept = polished.Kept
		polishRemoved = len(polished.Removed)
		if len(kept) == 0 {
			return nil, ErrNoCrowd
		}
	}
	placement, fresh, err := geoloc.PlaceUsersPartial(kept, d.generic, known, geoloc.PlaceOptions{Obs: d.o})
	if err != nil {
		return nil, err
	}
	geo, err := geoloc.FitPlacement(placement, geoloc.GeolocateOptions{
		MaxComponents: d.cfg.MaxComponents,
		Place:         geoloc.PlaceOptions{Parallelism: d.cfg.Workers},
		Obs:           d.o,
	})
	if err != nil {
		return nil, err
	}
	rep := &ServeReport{
		Gen:           g,
		Posts:         posts,
		Users:         users,
		ActiveUsers:   len(kept),
		PolishRemoved: polishRemoved,
		Geo:           geo,
	}
	d.o.Counter("serve.refits").Add(1)
	d.o.Counter("serve.placements_fresh").Add(int64(len(fresh)))
	d.o.Counter("serve.placements_cached").Add(int64(len(kept) - len(fresh)))

	d.mu.Lock()
	// Freshly computed zones are valid for the profile versions captured
	// in the snapshot; staleness is re-checked against the live version on
	// every later read, so writing them back unconditionally is safe even
	// if the user changed mid-fit.
	for id, zi := range fresh {
		d.zones[id] = zoneEntry{zone: zi, ver: versions[id]}
	}
	if d.report == nil || g >= d.fitted {
		d.report, d.fitted = rep, g
	}
	d.mu.Unlock()
	return rep, nil
}

// PlaceResult is the /place/{user} response.
type PlaceResult struct {
	UserID string `json:"user_id"`
	Posts  int    `json:"posts"`
	// Active reports whether the user reached the profile threshold;
	// Offset/ZoneIndex are only present when it did.
	Active    bool   `json:"active"`
	Offset    string `json:"offset,omitempty"`
	ZoneIndex *int   `json:"zone_index,omitempty"`
}

// Place answers the per-user placement question: the zone whose reference
// profile is EMD-nearest to the user's current raw profile (pre-polish —
// flat-profile removal is a crowd-level report step). Placements are
// served from the version-keyed cache when the profile hasn't changed.
// ok is false for users the stream has never seen.
func (d *Daemon) Place(userID string) (PlaceResult, bool) {
	d.mu.Lock()
	posts := d.acc.Posts(userID)
	if posts == 0 {
		d.mu.Unlock()
		return PlaceResult{}, false
	}
	res := PlaceResult{UserID: userID, Posts: posts}
	p, active := d.acc.ProfileOf(userID)
	if !active {
		d.mu.Unlock()
		return res, true
	}
	res.Active = true
	ver := d.acc.Version(userID)
	if e, ok := d.zones[userID]; ok && e.ver == ver {
		d.mu.Unlock()
		zi := e.zone
		res.ZoneIndex = &zi
		res.Offset = profile.OffsetOf(zi).String()
		d.o.Counter("serve.placements_cached").Add(1)
		return res, true
	}
	d.mu.Unlock()
	// Compute outside the lock: the EMD kernel needs only the profile
	// copy. single-user map keeps the shared partial-placement path.
	one := map[string]profile.Profile{userID: p}
	placement, _, err := geoloc.PlaceUsersPartial(one, d.generic, nil, geoloc.PlaceOptions{})
	if err != nil {
		return res, true // active but unplaceable; report bare activity
	}
	zi := profile.ZoneIndex(placement.Assignments[userID])
	res.ZoneIndex = &zi
	res.Offset = profile.OffsetOf(zi).String()
	d.o.Counter("serve.placements_fresh").Add(1)
	d.mu.Lock()
	if d.acc.Version(userID) == ver {
		d.zones[userID] = zoneEntry{zone: zi, ver: ver}
	}
	d.mu.Unlock()
	return res, true
}

// Health is the /healthz response.
type Health struct {
	Status    string `json:"status"`
	Posts     int    `json:"posts"`
	Users     int    `json:"users"`
	Gen       uint64 `json:"gen"`
	FittedGen uint64 `json:"fitted_gen"`
	Rejected  uint64 `json:"rejected_lines"`
	UptimeSec int64  `json:"uptime_sec"`
}

// Healthz snapshots the daemon's liveness state.
func (d *Daemon) Healthz() Health {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Health{
		Status:    "ok",
		Posts:     d.acc.TotalPosts(),
		Users:     d.acc.NumUsers(),
		Gen:       d.gen,
		FittedGen: d.fitted,
		Rejected:  d.rejects,
		UptimeSec: int64(time.Since(d.start) / time.Second),
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP API:
//
//	POST /ingest        NDJSON post stream (one trace.Post object per line)
//	GET  /place/{user}  one user's current placement
//	GET  /report        the crowd report (recomputed when stale)
//	GET  /healthz       liveness and stream counters
//
// When the daemon was built with an observing ServeConfig.Obs carrying a
// metrics registry, /metrics and /debug/pprof/* are mounted too (the
// obs.Handler surface).
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		res, err := d.Ingest(r.Body)
		if err != nil {
			writeJSON(w, http.StatusInsufficientStorage, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /place/{user}", func(w http.ResponseWriter, r *http.Request) {
		res, ok := d.Place(r.PathValue("user"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown user"})
			return
		}
		writeJSON(w, http.StatusOK, res)
	})
	mux.HandleFunc("GET /report", func(w http.ResponseWriter, r *http.Request) {
		rep, err := d.Report()
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, ErrNoCrowd) {
				status = http.StatusServiceUnavailable
			}
			writeJSON(w, status, errorBody{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Healthz())
	})
	if d.o != nil && d.o.Metrics != nil {
		debug := obs.Handler(d.o.Metrics)
		mux.Handle("GET /metrics", debug)
		mux.Handle("/debug/pprof/", debug)
	}
	return mux
}
