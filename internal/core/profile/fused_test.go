package profile

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"darkcrowd/internal/trace"
)

// fusedTestIngest builds a seeded dataset through the fused ingest path:
// mixed user activity levels, multi-day spans, pre-1970 instants.
func fusedTestIngest(t *testing.T, workers int) *trace.IngestResult {
	t.Helper()
	r := rand.New(rand.NewSource(17))
	var b strings.Builder
	b.WriteString("user_id,time_rfc3339\n")
	for i := 0; i < 4000; i++ {
		// Skewed user popularity so some users fall under the threshold.
		u := fmt.Sprintf("user%02d", r.Intn(40)*r.Intn(2)+r.Intn(40))
		sec := int64(-200_000) + r.Int63n(100*86400)
		fmt.Fprintf(&b, "%s,%s\n", u, time.Unix(sec, 0).UTC().Format(time.RFC3339))
	}
	res, err := trace.IngestCSV("fused-test", []byte(b.String()), trace.IngestOptions{
		Workers:      workers,
		CollectCells: true,
	})
	if err != nil {
		t.Fatalf("IngestCSV: %v", err)
	}
	return res
}

// TestFusedBuildMatchesColumnar pins the tentpole equivalence: profiles
// built from ingest-time cells are bit-identical to BuildUserProfiles on
// the same dataset, across worker counts and thresholds.
func TestFusedBuildMatchesColumnar(t *testing.T) {
	t.Parallel()
	for _, ingestWorkers := range []int{1, 4} {
		res := fusedTestIngest(t, ingestWorkers)
		for _, minPosts := range []int{0, 5, 50} {
			for _, workers := range []int{1, 3, 8} {
				want, wantErr := BuildUserProfiles(res.Dataset, BuildOptions{MinPosts: minPosts, Parallelism: workers})
				got, gotErr := BuildUserProfilesFused(res.Cells, BuildOptions{MinPosts: minPosts, Parallelism: workers})
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("error mismatch (min=%d w=%d): columnar %v, fused %v", minPosts, workers, wantErr, gotErr)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("profile mismatch (ingestWorkers=%d min=%d w=%d): %d vs %d users",
						ingestWorkers, minPosts, workers, len(want), len(got))
				}
			}
		}
	}
}

// TestFusedBuildRejectsCustomFrames pins the API contract: fused cells
// are UTC-frame only.
func TestFusedBuildRejectsCustomFrames(t *testing.T) {
	t.Parallel()
	res := fusedTestIngest(t, 2)
	if _, err := BuildUserProfilesFused(res.Cells, BuildOptions{HourOf: UTCHours()}); err == nil {
		t.Fatal("fused build accepted a custom HourOf")
	}
	if _, err := BuildUserProfilesFused(res.Cells, BuildOptions{Cells: UTCCells()}); err == nil {
		t.Fatal("fused build accepted a custom CellOf")
	}
}

// TestFusedBuildNoActivity pins the empty-result error contract.
func TestFusedBuildNoActivity(t *testing.T) {
	t.Parallel()
	res := fusedTestIngest(t, 2)
	_, err := BuildUserProfilesFused(res.Cells, BuildOptions{MinPosts: 1 << 30})
	if !errors.Is(err, ErrNoActivity) {
		t.Fatalf("err = %v, want ErrNoActivity", err)
	}
}
