package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns the debug mux for a live run: GET /metrics answers an
// indented JSON snapshot of the registry, and /debug/pprof/* exposes the
// standard runtime profiles (CPU, heap, goroutine, block, mutex, trace).
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer is a background HTTP server exposing Handler for the
// duration of a run.
type DebugServer struct {
	// Addr is the bound address, useful when ":0" was requested.
	Addr string

	srv *http.Server
	ln  net.Listener
}

// Serve binds addr and serves /metrics and /debug/pprof in a background
// goroutine until Close is called. The bind is synchronous, so a bad
// address fails here rather than silently in the background.
func Serve(addr string, reg *Registry) (*DebugServer, error) {
	return ServeHandler(addr, Handler(reg))
}

// ServeHandler is Serve for an arbitrary handler — the same synchronous
// bind-first contract ("serving on X" is only true once X is actually
// bound, and :0 resolves to a real port) reused by long-running daemons
// that serve more than the debug endpoints.
func ServeHandler(addr string, h http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: bind server: %w", err)
	}
	srv := &http.Server{Handler: h}
	go func() {
		// ErrServerClosed is the normal shutdown path; anything else has
		// nowhere to go — the pipeline must not fail because its debug
		// endpoint did.
		_ = srv.Serve(ln)
	}()
	return &DebugServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Shutdown gracefully drains the server: the listener closes immediately
// (no new connections) and in-flight requests run to completion or until
// ctx expires, whichever comes first. Safe on a nil receiver.
func (s *DebugServer) Shutdown(ctx context.Context) error {
	if s == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// Close shuts the debug server down, waiting briefly for in-flight
// requests.
func (s *DebugServer) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
