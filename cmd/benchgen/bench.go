package main

// benchgen -bench: measure the tracked data-path kernels and write a
// machine-readable report (BENCH_placement.json at the repo root).
//
// The report pins three things per workload: ns/op, B/op and allocs/op, as
// produced by the shared internal/bench harness on the same synthetic
// Twitter dataset the experiments use. It also embeds the pre-columnar
// baseline — the numbers the same workloads measured before the columnar
// trace store, the integer profile builder and the all-rotations EMD
// kernel landed — so the speedup columns in EXPERIMENTS.md can be
// regenerated from one place.
//
//	benchgen -bench                          # run suite, write BENCH_placement.json
//	benchgen -bench -bench-out out.json      # write elsewhere
//	benchgen -bench -check                   # also fail (>2x ns/op) vs checked-in report
//	benchgen -bench -cpuprofile cpu.pprof    # pprof profiles of the suite
//	benchgen -bench -memprofile mem.pprof
//
// The -check gate compares the fresh run against the report already on
// disk, not against the embedded baseline: CI uses it to catch ns/op
// regressions of more than 2x on any tracked workload while tolerating the
// noise of shared runners.

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"

	"darkcrowd/internal/bench"
	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/stats"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
)

// preColumnarBaseline holds the tracked workloads as measured at commit
// 472e580 (row-oriented Dataset, string-keyed profile builder, one
// EMDCircular call per zone), on the same class of machine CI uses
// (Intel Xeon @ 2.10GHz, GOMAXPROCS=1). Keyed by twitter scale.
var preColumnarBaseline = map[int]map[string]bench.Metric{
	20: {
		"profile_build":         {NsPerOp: 65962482, BytesPerOp: 23944541, AllocsPerOp: 329148},
		"generic_profile_build": {NsPerOp: 143575089, BytesPerOp: 62598403, AllocsPerOp: 327494},
		"placement":             {NsPerOp: 18680551, BytesPerOp: 88000, AllocsPerOp: 13},
		"dataset_index":         {NsPerOp: 10132673, BytesPerOp: 11816771, AllocsPerOp: 8636},
		"csv_read":              {NsPerOp: 34509608, BytesPerOp: 28836030, AllocsPerOp: 206767},
		"csv_write":             {NsPerOp: 14293301, BytesPerOp: 5556828, AllocsPerOp: 103364},
	},
	40: {
		"profile_build":         {NsPerOp: 29878734, BytesPerOp: 11980292, AllocsPerOp: 163790},
		"generic_profile_build": {NsPerOp: 70631568, BytesPerOp: 28816259, AllocsPerOp: 163361},
		"placement":             {NsPerOp: 10521697, BytesPerOp: 47128, AllocsPerOp: 11},
		"dataset_index":         {NsPerOp: 5438488, BytesPerOp: 5899199, AllocsPerOp: 4287},
		"csv_read":              {NsPerOp: 19891641, BytesPerOp: 14266484, AllocsPerOp: 102953},
		"csv_write":             {NsPerOp: 7438496, BytesPerOp: 2771012, AllocsPerOp: 51459},
	},
}

// runBench measures the tracked workloads and writes the JSON report to
// outPath. A non-empty checkPath additionally gates the run on the report
// committed there (see bench.CheckRegression).
func runBench(scale int, seed int64, outPath, checkPath string, cpuProfile, memProfile string) int {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: -cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: start CPU profile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	ds, err := synth.TwitterDataset(seed, synth.TwitterOptions{Scale: scale})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: build dataset: %v\n", err)
		return 1
	}
	generic, err := profile.BuildGeneric(ds, profile.GenericOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: build generic profile: %v\n", err)
		return 1
	}
	var csvBuf bytes.Buffer
	if err := ds.WriteCSV(&csvBuf); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: serialize dataset: %v\n", err)
		return 1
	}
	csvBytes := csvBuf.Bytes()

	workloads := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"profile_build", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := profile.BuildUserProfiles(ds, profile.BuildOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"generic_profile_build", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := profile.BuildGeneric(ds, profile.GenericOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"placement", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := geoloc.PlaceUsers(generic.UserProfiles, generic.Generic, geoloc.PlaceOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"dataset_index", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ds.InvalidateIndex()
				if got := ds.ByUser(); len(got) == 0 {
					b.Fatal("empty ByUser")
				}
			}
		}},
		{"csv_read", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := trace.ReadCSVHint("bench", bytes.NewReader(csvBytes), ds.NumPosts()); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"csv_write", func(b *testing.B) {
			var buf bytes.Buffer
			buf.Grow(len(csvBytes))
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := ds.WriteCSV(&buf); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"emd_all_rotations", func(b *testing.B) {
			p := generic.Generic
			q := profile.Uniform()
			out := make([]float64, len(p))
			scratch := make([]float64, 2*len(p))
			for i := 0; i < b.N; i++ {
				if _, err := stats.EMDCircularAllRotations(p[:], q[:], out, scratch); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	report := bench.NewReport("benchgen -bench", scale, seed)
	for _, w := range workloads {
		report.RunMinOf(os.Stdout, w.name, 1, w.fn)
	}
	report.DeriveBaseline(preColumnarBaseline[scale])

	if checkPath != "" {
		if err := bench.CheckRegression(os.Stdout, checkPath, report.Workloads, 2); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: -check: %v\n", err)
			return 1
		}
	}

	if err := report.WriteFile(outPath); err != nil {
		fmt.Fprintf(os.Stderr, "benchgen: %v\n", err)
		return 1
	}
	fmt.Printf("wrote %s\n", outPath)

	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: -memprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchgen: write heap profile: %v\n", err)
			return 1
		}
	}
	return 0
}
