package geoloc

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"darkcrowd/internal/core/profile"
)

// randomProfiles builds n normalized random profiles plus a peaked generic
// profile — enough structure for placement to spread users across zones.
func randomProfiles(seed int64, n int) (map[string]profile.Profile, profile.Profile) {
	rng := rand.New(rand.NewSource(seed))
	var generic profile.Profile
	total := 0.0
	for h := range generic {
		// Diurnal-ish shape: low at night, high in the evening.
		generic[h] = 0.2 + float64(h%12) + 3*float64(h/18)
		total += generic[h]
	}
	for h := range generic {
		generic[h] /= total
	}
	profiles := make(map[string]profile.Profile, n)
	for i := 0; i < n; i++ {
		shifted := generic.Shift(rng.Intn(24))
		var p profile.Profile
		tot := 0.0
		for h := range p {
			p[h] = shifted[h] + 0.05*rng.Float64()
			tot += p[h]
		}
		for h := range p {
			p[h] /= tot
		}
		profiles[fmt.Sprintf("user-%03d", i)] = p
	}
	return profiles, generic
}

func placementsBitEqual(t *testing.T, got, want *Placement) {
	t.Helper()
	if !reflect.DeepEqual(got.Assignments, want.Assignments) {
		t.Fatal("assignments differ")
	}
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Fatal("counts differ")
	}
	for zi := range want.Histogram {
		if math.Float64bits(got.Histogram[zi]) != math.Float64bits(want.Histogram[zi]) {
			t.Fatalf("histogram[%d]: %x vs %x", zi, math.Float64bits(got.Histogram[zi]), math.Float64bits(want.Histogram[zi]))
		}
	}
}

// TestPlaceUsersPartialMatchesPlaceUsers checks the dirty-set path against
// the batch placer: cold (no cache), fully warm, and warm-with-dirty-users
// must all be bit-identical to PlaceUsers, and fresh must list exactly the
// users the cache couldn't answer.
func TestPlaceUsersPartialMatchesPlaceUsers(t *testing.T) {
	profiles, generic := randomProfiles(3, 60)
	want, err := PlaceUsers(profiles, generic, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Cold: every user is computed fresh.
	cold, fresh, err := PlaceUsersPartial(profiles, generic, nil, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	placementsBitEqual(t, cold, want)
	if len(fresh) != len(profiles) {
		t.Fatalf("cold run computed %d users, want %d", len(fresh), len(profiles))
	}

	// Warm: the cold run's zones answer everything; nothing recomputes.
	cache := make(map[string]int, len(fresh))
	for id, pz := range fresh {
		cache[id] = pz.Zone
	}
	warm, fresh2, err := PlaceUsersPartial(profiles, generic, cache, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	placementsBitEqual(t, warm, want)
	if len(fresh2) != 0 {
		t.Fatalf("warm run recomputed %d users", len(fresh2))
	}

	// Dirty: change a few profiles, drop them from the cache, and compare
	// against a full batch run over the updated map.
	rng := rand.New(rand.NewSource(9))
	dirty := map[string]bool{"user-005": true, "user-017": true, "user-041": true}
	for id := range dirty {
		p := profiles[id].Shift(rng.Intn(24))
		profiles[id] = p
	}
	known := make(map[string]int, len(fresh))
	for id, pz := range fresh {
		if !dirty[id] {
			known[id] = pz.Zone
		}
	}
	// A cache entry for a user no longer in the profile map must be ignored.
	known["user-gone"] = 7
	wantDirty, err := PlaceUsers(profiles, generic, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gotDirty, fresh3, err := PlaceUsersPartial(profiles, generic, known, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	placementsBitEqual(t, gotDirty, wantDirty)
	if len(fresh3) != len(dirty) {
		t.Fatalf("dirty run computed %d users, want %d", len(fresh3), len(dirty))
	}
	for id := range dirty {
		if _, ok := fresh3[id]; !ok {
			t.Fatalf("dirty user %s not recomputed", id)
		}
	}
}

// TestPlaceUsersPartialEmpty mirrors PlaceUsers: no profiles is an error.
func TestPlaceUsersPartialEmpty(t *testing.T) {
	if _, _, err := PlaceUsersPartial(nil, profile.Uniform(), nil, PlaceOptions{}); err == nil {
		t.Fatal("expected error for empty profile map")
	}
}
