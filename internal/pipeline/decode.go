package pipeline

// The ingest hot path decoder. The NDJSON ingest shape is fixed — one
// {"user_id": <string>, "time": <RFC3339 string>} object per line — so the
// daemon does not need encoding/json's reflection walk (~1.5µs and several
// allocations per line) to read it. parseIngestLine is a single
// left-to-right scan that borrows the user ID straight out of the line
// buffer and reuses trace's RFC3339 fast path for the timestamp: zero
// allocations per accepted line.
//
// The scanner is deliberately narrow. Anything outside the plain shape —
// escape sequences, non-ASCII bytes, unknown or duplicate keys, non-string
// values — makes it return ok=false, and the caller falls back to
// encoding/json, which remains the semantic authority. The fast path must
// therefore be *sound*, never *complete*: every line it accepts must
// decode to exactly the (user, second) the reflection path would produce
// (the fuzz test in decode_test.go pins this), but lines it rejects are
// fine — they just take the slow lane.

import (
	"sync"

	"darkcrowd/internal/trace"
)

// zeroUnixSec is time.Time{}.Unix(). The reflection path drops lines whose
// parsed Time.IsZero(); the fast path must bounce the same instant back to
// the slow lane so both agree.
const zeroUnixSec = -62135596800

// lineBufPool recycles the 64 KiB bufio.Scanner buffers across ingest
// requests, so a request costs one pool hit instead of one large make.
var lineBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 64*1024)
		return &b
	},
}

// skipJSONSpace advances i past JSON whitespace.
func skipJSONSpace(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\r', '\n':
			i++
		default:
			return i
		}
	}
	return i
}

// scanPlainString reads the JSON string whose opening quote is at b[i] and
// returns its raw contents plus the index just past the closing quote. ok
// is false for anything the borrow-in-place trick can't represent
// verbatim: escape sequences, control bytes, non-ASCII (encoding/json
// rewrites invalid UTF-8, so the fast path refuses to guess), or an
// unterminated string.
func scanPlainString(b []byte, i int) (s []byte, next int, ok bool) {
	i++ // opening quote, checked by the caller
	start := i
	for i < len(b) {
		c := b[i]
		if c == '"' {
			return b[start:i], i + 1, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			return nil, 0, false
		}
		i++
	}
	return nil, 0, false
}

// parseIngestLine decodes one ingest line on the fast path. When ok, user
// aliases line (valid only until the caller's buffer is reused) and
// unixSec is exactly what the encoding/json path would have produced via
// Time.Unix(); user is never empty and the instant never zero. When !ok
// the caller must fall back to encoding/json — the line may still be
// valid, just not plain enough.
func parseIngestLine(line []byte) (user []byte, unixSec int64, ok bool) {
	i := skipJSONSpace(line, 0)
	if i >= len(line) || line[i] != '{' {
		return nil, 0, false
	}
	i = skipJSONSpace(line, i+1)
	var stamp []byte
	var haveUser, haveStamp bool
	for k := 0; k < 2; k++ {
		if i >= len(line) || line[i] != '"' {
			return nil, 0, false
		}
		key, j, kok := scanPlainString(line, i)
		if !kok {
			return nil, 0, false
		}
		i = skipJSONSpace(line, j)
		if i >= len(line) || line[i] != ':' {
			return nil, 0, false
		}
		i = skipJSONSpace(line, i+1)
		if i >= len(line) || line[i] != '"' {
			return nil, 0, false
		}
		val, j2, vok := scanPlainString(line, i)
		if !vok {
			return nil, 0, false
		}
		i = skipJSONSpace(line, j2)
		switch {
		case string(key) == "user_id" && !haveUser:
			haveUser, user = true, val
		case string(key) == "time" && !haveStamp:
			haveStamp, stamp = true, val
		default:
			return nil, 0, false // unknown or duplicate key
		}
		if k == 0 {
			if i >= len(line) || line[i] != ',' {
				return nil, 0, false
			}
			i = skipJSONSpace(line, i+1)
		}
	}
	if i >= len(line) || line[i] != '}' {
		return nil, 0, false
	}
	if skipJSONSpace(line, i+1) != len(line) {
		return nil, 0, false
	}
	if !haveUser || !haveStamp || len(user) == 0 {
		return nil, 0, false
	}
	sec, ts, fast, err := trace.ParseStamp(stamp)
	if err != nil {
		return nil, 0, false
	}
	if !fast {
		// Offset timezones and fractional seconds take the stdlib parse
		// inside ParseStamp; still cheaper than the full reflection walk.
		if ts.IsZero() {
			return nil, 0, false
		}
		return user, ts.Unix(), true
	}
	if sec == zeroUnixSec {
		return nil, 0, false
	}
	return user, sec, true
}
