package onion

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

func TestFaultInjectorDeterministicPlan(t *testing.T) {
	t.Parallel()
	cfg := FaultConfig{Seed: 42, DropProb: 0.2, ResetProb: 0.1, DelayProb: 0.1}
	run := func() []faultAction {
		fi := NewFaultInjector(cfg)
		var out []faultAction
		for i := 0; i < 500; i++ {
			a, _ := fi.decide(Cell{Cmd: CmdRelay})
			out = append(out, a)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at cell %d: %v vs %v", i, a[i], b[i])
		}
	}
	var faults int
	for _, act := range a {
		if act != faultDeliver {
			faults++
		}
	}
	if faults < 100 {
		t.Errorf("with 40%% total fault probability over 500 cells, got only %d faults", faults)
	}
	// A different seed draws a different plan.
	other := NewFaultInjector(FaultConfig{Seed: 43, DropProb: 0.2, ResetProb: 0.1, DelayProb: 0.1})
	same := true
	for i := 0; i < 500; i++ {
		act, _ := other.decide(Cell{Cmd: CmdRelay})
		if act != a[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should not produce the same plan")
	}
}

func TestFaultInjectorSparesControlCellsAndHonorsBudget(t *testing.T) {
	t.Parallel()
	fi := NewFaultInjector(FaultConfig{Seed: 1, DropProb: 1, MaxFaults: 3})
	for i := 0; i < 10; i++ {
		if a, _ := fi.decide(Cell{Cmd: CmdCreate}); a != faultDeliver {
			t.Fatal("control cells must always pass")
		}
	}
	drops := 0
	for i := 0; i < 10; i++ {
		if a, _ := fi.decide(Cell{Cmd: CmdRelay}); a == faultDrop {
			drops++
		}
	}
	if drops != 3 {
		t.Errorf("drops = %d, want exactly the MaxFaults budget of 3", drops)
	}
	if got := fi.Stats().Total(); got != 3 {
		t.Errorf("stats total = %d, want 3", got)
	}
	if s := fi.Stats().String(); !strings.Contains(s, "3 faults") {
		t.Errorf("stats string = %q", s)
	}
}

func TestFlakyTransportScript(t *testing.T) {
	t.Parallel()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(bytes.Repeat([]byte("y"), 512))
	}))
	defer srv.Close()
	ft := NewFlakyTransport(http.DefaultTransport,
		FlakyConnReset, Flaky500, Flaky503, FlakyBodyCut)
	client := &http.Client{Transport: ft}

	// 1: connection reset before any response.
	_, err := client.Get(srv.URL)
	var opErr *net.OpError
	if err == nil || !errors.As(err, &opErr) {
		t.Fatalf("scripted reset: got %v", err)
	}
	// 2 and 3: synthesized 500/503 without touching the upstream.
	for _, want := range []int{500, 503} {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("status = %d, want %d", resp.StatusCode, want)
		}
	}
	// 4: body severed mid-transfer.
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil {
		t.Error("cut body must fail mid-read")
	}
	if len(body) == 0 || len(body) >= 512 {
		t.Errorf("read %d bytes before the cut, want partial", len(body))
	}
	// 5+: past the script, requests pass through.
	resp, err = client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) != 512 {
		t.Errorf("post-script request: %d bytes, err %v", len(body), err)
	}
	if ft.Calls() != 5 || ft.Faults() != 4 {
		t.Errorf("calls=%d faults=%d, want 5/4", ft.Calls(), ft.Faults())
	}
}

func TestFlakyTransportHangHonorsContext(t *testing.T) {
	t.Parallel()
	ft := NewFlakyTransport(http.DefaultTransport, FlakyHang)
	client := &http.Client{Transport: ft}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://example.invalid/", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = client.Do(req)
	if err == nil {
		t.Fatal("hung request must fail when its context expires")
	}
	if time.Since(start) > 5*time.Second {
		t.Error("hang did not release on context expiry")
	}
}

// TestStreamWritePartialOnRemoteClose is the regression test for the
// old Stream.Write, which checked closure once up front and then kept
// sealing DATA cells onto a dead circuit, reporting the full byte count
// with a nil error. The peer here closes after a short read; a large
// write must stop with an error and a partial count.
func TestStreamWritePartialOnRemoteClose(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 6)
	svc, err := HostService(n, "closer-svc", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	accepted := make(chan struct{})
	go func() {
		ln := svc.Listener()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Read a little, then slam the stream shut.
		buf := make([]byte, 4096)
		io.ReadFull(conn, buf)
		conn.Close()
		close(accepted)
	}()

	client, err := NewClient(n, "big-writer")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	conn, err := client.Dial(svc.Onion())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Paced, bounded writes: enough traffic that the remote END lands
	// mid-loop, but never enough in flight to saturate the relay inboxes
	// in both directions at once (which no real workload does either).
	payload := bytes.Repeat([]byte("z"), 128<<10)
	const maxTotal = 32 << 20
	var written int
	var writeErr error
	for writeErr == nil {
		if written > maxTotal {
			t.Fatalf("wrote %d bytes and never saw the remote close: the old full-count-nil-error Write bug", written)
		}
		var w int
		w, writeErr = conn.Write(payload)
		written += w
		time.Sleep(time.Millisecond)
	}
	<-accepted
	if !errors.Is(writeErr, ErrStreamClosed) {
		t.Fatalf("write to closed stream: got %v, want ErrStreamClosed", writeErr)
	}
	if written > maxTotal {
		t.Errorf("wrote %d bytes before the close, want a bounded partial count", written)
	}
}

func TestStreamWriteDeadlineMidWrite(t *testing.T) {
	t.Parallel()
	n := newTestNetwork(t, 6)
	svc, err := HostService(n, "slow-reader", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		ln := svc.Listener()
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		// Drain slowly: the pipeline keeps moving (so the writer is not
		// permanently parked in backpressure) but far slower than the
		// writer produces, so the deadline fires mid-write.
		buf := make([]byte, 32<<10)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := conn.Read(buf); err != nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	client, err := NewClient(n, "deadline-writer")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	conn, err := client.Dial(svc.Onion())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.SetWriteDeadline(time.Now().Add(150 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("q"), 8<<20)
	nWritten, err := conn.Write(payload)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("got %v (wrote %d), want deadline error", err, nWritten)
	}
	if nWritten == len(payload) {
		t.Error("full write claimed despite expired deadline")
	}
}

func TestScrapeLevelInvariantUnderFaults(t *testing.T) {
	t.Parallel()
	// An echo service keeps answering while the fabric drops and resets
	// relay cells; with the client retrying dials, every request must
	// eventually complete with intact data.
	n := newTestNetwork(t, 6)
	n.SetControlTimeout(500 * time.Millisecond)
	svc, err := HostService(n, "echo-under-fire", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	go func() {
		ln := svc.Listener()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				io.Copy(conn, conn)
			}(conn)
		}
	}()

	fi := NewFaultInjector(FaultConfig{Seed: 5, DropProb: 0.02, ResetProb: 0.01, MaxFaults: 8})
	n.SetFaultInjector(fi)

	client, err := NewClient(n, "fault-tolerant")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	msg := bytes.Repeat([]byte("ping"), 1024)
	for i := 0; i < 5; i++ {
		ok := false
		var lastErr error
		for attempt := 0; attempt < 6 && !ok; attempt++ {
			conn, err := client.Dial(svc.Onion())
			if err != nil {
				lastErr = err
				continue
			}
			if _, err := conn.Write(msg); err != nil {
				lastErr = err
				conn.Close()
				continue
			}
			got := make([]byte, len(msg))
			conn.SetReadDeadline(time.Now().Add(time.Second))
			if _, err := io.ReadFull(conn, got); err != nil {
				lastErr = err
				conn.Close()
				continue
			}
			conn.Close()
			if !bytes.Equal(got, msg) {
				t.Fatalf("round %d: echo corrupted", i)
			}
			ok = true
		}
		if !ok {
			t.Fatalf("round %d never completed: %v (stats: %s)", i, lastErr, fi.Stats())
		}
	}
}
