package bench

import (
	"bufio"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubDaemon mimics the daemon's HTTP surface closely enough to exercise
// the driver: counts ingest lines, answers place/report/healthz.
type stubDaemon struct {
	lines   atomic.Int64
	ingests atomic.Int64
	places  atomic.Int64
	reports atomic.Int64
	healths atomic.Int64
}

func (s *stubDaemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		sc := bufio.NewScanner(r.Body)
		n := int64(0)
		for sc.Scan() {
			if len(sc.Bytes()) > 0 {
				n++
			}
		}
		s.lines.Add(n)
		s.ingests.Add(1)
		w.Write([]byte(`{"accepted":1}`))
	})
	mux.HandleFunc("/place/", func(w http.ResponseWriter, r *http.Request) {
		s.places.Add(1)
		if strings.HasSuffix(r.URL.Path, "-3") {
			http.NotFound(w, r) // driver must tolerate unknown users
			return
		}
		w.Write([]byte(`{"offset":2}`))
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		s.reports.Add(1)
		w.Write([]byte(`{}`))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		s.healths.Add(1)
		w.Write([]byte(`{"ok":true}`))
	})
	return mux
}

func TestDriveMixed(t *testing.T) {
	stub := &stubDaemon{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	res, err := Drive(DriverOpts{
		URL:         srv.URL,
		Workload:    WorkloadMixed,
		Concurrent:  4,
		Duration:    300 * time.Millisecond,
		IngestBatch: 8,
		Users:       16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalOps <= 0 || res.OpsPerSec <= 0 {
		t.Fatalf("no throughput recorded: %+v", res)
	}
	if res.TotalErrors != 0 {
		t.Fatalf("errors against a healthy stub: %+v", res)
	}
	// Mixed must exercise at least place and ingest (report is 1%, so a
	// short run may legitimately skip it).
	for _, op := range []string{WorkloadPlace, WorkloadIngest} {
		st, ok := res.Ops[op]
		if !ok || st.Ops == 0 {
			t.Errorf("mixed run recorded no %s ops: %+v", op, res.Ops)
		}
		if ok && (st.Latency.Count != st.Ops || st.Latency.P50 <= 0) {
			t.Errorf("%s latency snapshot inconsistent: ops=%d snap=%+v", op, st.Ops, st.Latency)
		}
	}
	if res.IngestLinesPerSec <= 0 {
		t.Errorf("ingest lines/s not derived: %+v", res)
	}
	// The last in-flight request per worker may be cancelled mid-body at
	// the deadline, so line accounting is a bound, not an equality.
	wantLines := res.Ops[WorkloadIngest].Ops * 8
	if got := stub.lines.Load(); got > wantLines || got < wantLines-int64(res.Concurrent)*8 {
		t.Errorf("stub saw %d lines, want within %d of %d", got, res.Concurrent*8, wantLines)
	}
}

func TestDriveSingleWorkload(t *testing.T) {
	stub := &stubDaemon{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	res, err := Drive(DriverOpts{
		URL:        srv.URL,
		Workload:   WorkloadHealthz,
		Concurrent: 2,
		Duration:   150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ops) != 1 {
		t.Fatalf("healthz-only run recorded ops %v", res.Ops)
	}
	if res.Ops[WorkloadHealthz].Ops == 0 {
		t.Fatal("no healthz ops recorded")
	}
	if stub.ingests.Load() != 0 || stub.places.Load() != 0 || stub.reports.Load() != 0 {
		t.Fatal("healthz-only run hit other endpoints")
	}
}

func TestDriveAutoTerm(t *testing.T) {
	stub := &stubDaemon{}
	srv := httptest.NewServer(stub.handler())
	defer srv.Close()

	start := time.Now()
	res, err := Drive(DriverOpts{
		URL:            srv.URL,
		Workload:       WorkloadHealthz,
		Concurrent:     2,
		Duration:       30 * time.Second, // autoterm must beat this
		AutoTerm:       true,
		AutoTermWindow: 250 * time.Millisecond,
		AutoTermCV:     0.9, // loose: local loopback is steady immediately
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("autoterm did not stop the run early (took %v)", elapsed)
	}
	if !res.AutoTerminated {
		t.Error("AutoTerminated flag not set")
	}
}

func TestDriveUnreachable(t *testing.T) {
	if _, err := Drive(DriverOpts{URL: "http://127.0.0.1:1", Duration: time.Second}); err == nil {
		t.Fatal("driver accepted an unreachable daemon")
	}
	if _, err := Drive(DriverOpts{}); err == nil {
		t.Fatal("driver accepted an empty URL")
	}
	if _, err := Drive(DriverOpts{URL: "http://x", Workload: "bogus"}); err == nil {
		t.Fatal("driver accepted an unknown workload")
	}
}

func TestRenderBatchesFastPathShape(t *testing.T) {
	batches := renderBatches(1, 8, 32)
	if len(batches) == 0 {
		t.Fatal("no batches rendered")
	}
	for _, b := range batches {
		lines := strings.Split(strings.TrimRight(string(b), "\n"), "\n")
		if len(lines) != 32 {
			t.Fatalf("batch has %d lines, want 32", len(lines))
		}
		for _, ln := range lines {
			if !strings.HasPrefix(ln, `{"user_id":"bench-user-`) || !strings.Contains(ln, `","time":"`) {
				t.Fatalf("line not in fast-path shape: %q", ln)
			}
			if !strings.HasSuffix(ln, `Z"}`) {
				t.Fatalf("timestamp not plain UTC RFC3339: %q", ln)
			}
		}
	}
	// Deterministic for a fixed seed.
	again := renderBatches(1, 8, 32)
	for i := range batches {
		if string(batches[i]) != string(again[i]) {
			t.Fatal("renderBatches not deterministic for fixed seed")
		}
	}
}

func TestPickOpWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[pickOp(WorkloadMixed, rng)]++
	}
	// Expected fractions per mixedWeights, with slack for sampling noise.
	for _, want := range []struct {
		op   string
		frac float64
	}{{WorkloadPlace, 0.60}, {WorkloadIngest, 0.30}, {WorkloadHealthz, 0.09}, {WorkloadReport, 0.01}} {
		got := float64(counts[want.op]) / n
		if got < want.frac*0.7 || got > want.frac*1.3 {
			t.Errorf("%s drawn %.3f of the time, want ~%.2f", want.op, got, want.frac)
		}
	}
	if pickOp(WorkloadIngest, rng) != WorkloadIngest {
		t.Error("single workload not returned verbatim")
	}
}
