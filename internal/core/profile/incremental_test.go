package profile

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"darkcrowd/internal/trace"
)

// randomStream synthesizes a post stream with uneven per-user volumes —
// some users below the active threshold, heavy cell duplication, and
// pre-1970 stragglers to exercise the floor-division cell math.
func randomStream(seed int64, users, maxPosts int) []trace.Post {
	rng := rand.New(rand.NewSource(seed))
	var posts []trace.Post
	for u := 0; u < users; u++ {
		id := string(rune('a'+u%26)) + "-user"
		if u >= 26 {
			id = id + string(rune('0'+u/26))
		}
		n := 1 + rng.Intn(maxPosts)
		for i := 0; i < n; i++ {
			sec := int64(rng.Intn(40*86400)) - 5*86400 // spans pre-epoch days
			posts = append(posts, trace.Post{UserID: id, Time: time.Unix(sec, 0).UTC()})
		}
	}
	rng.Shuffle(len(posts), func(i, j int) { posts[i], posts[j] = posts[j], posts[i] })
	return posts
}

func profilesBitEqual(t *testing.T, got, want map[string]Profile) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("active users: got %d, want %d", len(got), len(want))
	}
	for id, wp := range want {
		gp, ok := got[id]
		if !ok {
			t.Fatalf("user %s missing from incremental profiles", id)
		}
		for h := range wp {
			if math.Float64bits(gp[h]) != math.Float64bits(wp[h]) {
				t.Fatalf("user %s hour %d: got %x, want %x", id, h, math.Float64bits(gp[h]), math.Float64bits(wp[h]))
			}
		}
	}
}

// TestAccumulatorMatchesBatchBuild feeds random streams post-by-post in
// several shuffled orders and demands the accumulator's active profiles be
// bit-identical to BuildUserProfiles over the same posts — the invariant
// the streaming daemon's equivalence guarantee rests on.
func TestAccumulatorMatchesBatchBuild(t *testing.T) {
	for _, seed := range []int64{1, 2, 7} {
		posts := randomStream(seed, 40, 60)
		ds := &trace.Dataset{Name: "stream", Posts: posts}
		want, err := BuildUserProfiles(ds, BuildOptions{MinPosts: 10})
		if err != nil {
			t.Fatal(err)
		}
		for _, order := range []int64{0, 1, 2} {
			shuffled := make([]trace.Post, len(posts))
			copy(shuffled, posts)
			rand.New(rand.NewSource(order)).Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			acc := NewAccumulator(10)
			for _, p := range shuffled {
				acc.Add(p.UserID, p.Time.Unix())
			}
			got, _ := acc.ActiveProfiles()
			profilesBitEqual(t, got, want)
			if acc.TotalPosts() != len(posts) {
				t.Fatalf("TotalPosts = %d, want %d", acc.TotalPosts(), len(posts))
			}
		}
	}
}

// TestAccumulatorVersioning checks the version contract: bumps exactly on
// new distinct cells, never on duplicates, and ProfileOf tracks the
// threshold.
func TestAccumulatorVersioning(t *testing.T) {
	acc := NewAccumulator(3)
	if acc.Version("u") != 0 {
		t.Fatal("unknown user has non-zero version")
	}
	if changed := acc.Add("u", 100); !changed {
		t.Fatal("first post did not change the profile")
	}
	v1 := acc.Version("u")
	if changed := acc.Add("u", 200); changed { // same (day, hour) cell
		t.Fatal("duplicate cell reported a profile change")
	}
	if acc.Version("u") != v1 {
		t.Fatal("duplicate cell bumped the version")
	}
	if _, ok := acc.ProfileOf("u"); ok {
		t.Fatal("user below threshold reported active")
	}
	if changed := acc.Add("u", 4000); !changed { // hour 1: new cell
		t.Fatal("new cell did not change the profile")
	}
	if acc.Version("u") <= v1 {
		t.Fatal("new cell did not bump the version")
	}
	p, ok := acc.ProfileOf("u")
	if !ok {
		t.Fatal("user at threshold not active")
	}
	if p[0] != 0.5 || p[1] != 0.5 {
		t.Fatalf("profile = %v, want 0.5/0.5 in hours 0 and 1", p[:2])
	}
	if !acc.Active("u") || acc.Posts("u") != 3 {
		t.Fatalf("Active/Posts bookkeeping wrong: %v %d", acc.Active("u"), acc.Posts("u"))
	}
}

// TestAccumulatorDefaultThreshold mirrors BuildOptions: MinPosts 0 means
// the paper's 30-post default.
func TestAccumulatorDefaultThreshold(t *testing.T) {
	if got := NewAccumulator(0).MinPosts(); got != DefaultMinPosts {
		t.Fatalf("default threshold = %d, want %d", got, DefaultMinPosts)
	}
}
