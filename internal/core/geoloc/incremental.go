package geoloc

import (
	"errors"
	"fmt"

	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/tz"
)

// PlaceOne assigns a single profile to its nearest zone — the streaming
// daemon's /place fast path. The returned zone index is exactly what
// PlaceUsers would assign the same profile (per-user placement depends
// only on the profile and the generic reference), without the Placement
// maps, the sorted user sweep, or the stage span of a batch call.
func PlaceOne(p, generic profile.Profile, opts PlaceOptions) (int, error) {
	zi, _, err := PlaceOneMargin(p, generic, opts)
	return zi, err
}

// PlaceOneMargin is PlaceOne plus the placement margin: the EMD gap
// between the runner-up zone and the winner, read off the same
// all-rotations kernel output that picks the zone — no second distance
// pass. The zone index is bit-identical to PlaceOne's.
func PlaceOneMargin(p, generic profile.Profile, opts PlaceOptions) (int, float64, error) {
	if opts.Distance == 0 {
		opts.Distance = DistanceCircularEMD
	}
	var zones []profile.Profile
	if opts.Distance == DistanceLinearEMD {
		zones = profile.ZoneProfiles(generic)
	}
	dists := make([]float64, tz.HoursPerDay)
	scratch := make([]float64, 2*tz.HoursPerDay)
	return nearestZoneIndex(p, generic, zones, opts.Distance, dists, scratch)
}

// PlacedZone is one freshly computed per-user placement: the winning zone
// index plus the placement margin (best-vs-runner-up EMD gap). Returned by
// PlaceUsersPartial so the daemon's version-keyed cache can serve both
// without re-running the kernel.
type PlacedZone struct {
	Zone   int
	Margin float64
}

// PlaceUsersPartial is the dirty-set variant of PlaceUsers for the
// streaming daemon: known carries zone indices of users whose profiles
// have not changed since they were last placed, and only the remaining
// (dirty or new) users go through the EMD kernel. The returned Placement
// is bit-identical to PlaceUsers over the same profiles — per-user
// placement depends only on (profile, generic), so a cached zone for an
// unchanged profile is exactly what the kernel would recompute — and
// fresh maps each newly computed user to its zone and margin so the
// caller can refill its cache.
//
// Entries in known for users absent from profiles are ignored. The dirty
// set is typically tiny between refits, so this path is sequential; batch
// runs with full dirty sets should use PlaceUsers, which shards.
func PlaceUsersPartial(profiles map[string]profile.Profile, generic profile.Profile, known map[string]int, opts PlaceOptions) (*Placement, map[string]PlacedZone, error) {
	if len(profiles) == 0 {
		return nil, nil, errors.New("geoloc: no profiles to place")
	}
	if opts.Distance == 0 {
		opts.Distance = DistanceCircularEMD
	}
	var zones []profile.Profile
	if opts.Distance == DistanceLinearEMD {
		zones = profile.ZoneProfiles(generic)
	}
	users := profile.SortedUserIDs(profiles)
	o := opts.Obs.Stage("placement")
	defer o.End()
	fresh := make(map[string]PlacedZone)
	dists := make([]float64, tz.HoursPerDay)
	scratch := make([]float64, 2*tz.HoursPerDay)
	out := &Placement{
		Assignments: make(map[string]tz.Offset, len(profiles)),
		Histogram:   make([]float64, tz.HoursPerDay),
		Counts:      make([]int, tz.HoursPerDay),
	}
	for i, userID := range users {
		if opts.Context != nil && i&0xff == 0 {
			if err := opts.Context.Err(); err != nil {
				return nil, nil, err
			}
		}
		zi, ok := known[userID]
		if !ok {
			var err error
			var margin float64
			zi, margin, err = nearestZoneIndex(profiles[userID], generic, zones, opts.Distance, dists, scratch)
			if err != nil {
				return nil, nil, fmt.Errorf("geoloc: distance for user %q: %w", userID, err)
			}
			fresh[userID] = PlacedZone{Zone: zi, Margin: margin}
		}
		out.Assignments[userID] = profile.OffsetOf(zi)
		out.Counts[zi]++
	}
	o.Counter("placement.users_placed").Add(int64(len(users)))
	o.Counter("placement.users_cached").Add(int64(len(users) - len(fresh)))
	total := float64(len(profiles))
	for zi, c := range out.Counts {
		out.Histogram[zi] = float64(c) / total
	}
	return out, fresh, nil
}
