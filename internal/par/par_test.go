package par

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	t.Parallel()
	if got := Workers(0, 1000); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 1000) = %d, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3, 1000); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3, 1000) = %d", got)
	}
	if got := Workers(7, 1000); got != 7 {
		t.Errorf("Workers(7, 1000) = %d", got)
	}
	if got := Workers(7, 3); got != 3 {
		t.Errorf("Workers(7, 3) = %d, want clamp to items", got)
	}
	if got := Workers(7, 0); got != 1 {
		t.Errorf("Workers(7, 0) = %d, want 1", got)
	}
}

func TestRangesCoversEveryItemExactlyOnce(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		const n = 137
		visits := make([]int32, n)
		err := Ranges(context.Background(), workers, n, func(start, end int) error {
			for i := start; i < end; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestRangesEmpty(t *testing.T) {
	t.Parallel()
	called := false
	if err := Ranges(context.Background(), 4, 0, func(start, end int) error {
		called = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called for n=0")
	}
}

func TestRangesNilContext(t *testing.T) {
	t.Parallel()
	if err := Ranges(nil, 2, 10, func(start, end int) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRangesLowestShardErrorWins(t *testing.T) {
	t.Parallel()
	errLow := errors.New("low shard")
	errHigh := errors.New("high shard")
	// Every shard fails; the lowest-indexed shard's error must be returned
	// deterministically on every run.
	for trial := 0; trial < 20; trial++ {
		err := Ranges(context.Background(), 8, 64, func(start, end int) error {
			if start == 0 {
				return errLow
			}
			return errHigh
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: got %v, want lowest shard error", trial, err)
		}
	}
}

func TestRangesCancelledContext(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Ranges(ctx, 1, 10, func(start, end int) error {
		t.Error("fn ran despite cancelled context on sequential path")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
	// Parallel path: fn may run, but the error must surface.
	err = Ranges(ctx, 4, 10, func(start, end int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("parallel: got %v, want context.Canceled", err)
	}
}

// shardLog is a test ShardObserver collecting every report.
type shardLog struct {
	mu      sync.Mutex
	reports []shardReport
}

type shardReport struct {
	worker, start, end int
	elapsed            time.Duration
}

func (l *shardLog) ShardDone(worker, start, end int, elapsed time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reports = append(l.reports, shardReport{worker, start, end, elapsed})
}

func TestRangesObservedReportsEveryShard(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 3, 8} {
		log := &shardLog{}
		var visited atomic.Int64
		err := RangesObserved(context.Background(), workers, 64, func(start, end int) error {
			visited.Add(int64(end - start))
			return nil
		}, log)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if visited.Load() != 64 {
			t.Fatalf("workers=%d: visited %d items", workers, visited.Load())
		}
		want := Workers(workers, 64)
		if len(log.reports) != want {
			t.Fatalf("workers=%d: %d shard reports, want %d", workers, len(log.reports), want)
		}
		// Reports arrive in completion order; sorted by start they must
		// tile [0, 64) exactly, each tagged with its worker index.
		sort.Slice(log.reports, func(i, j int) bool { return log.reports[i].start < log.reports[j].start })
		next := 0
		for _, r := range log.reports {
			if r.start != next {
				t.Fatalf("workers=%d: shard starts at %d, want %d", workers, r.start, next)
			}
			// Worker w covers [w*n/want, (w+1)*n/want).
			if r.start != r.worker*64/want || r.end != (r.worker+1)*64/want {
				t.Fatalf("workers=%d: shard [%d,%d) tagged worker %d", workers, r.start, r.end, r.worker)
			}
			if r.elapsed < 0 {
				t.Fatalf("negative shard duration %v", r.elapsed)
			}
			next = r.end
		}
		if next != 64 {
			t.Fatalf("workers=%d: shards cover up to %d, want 64", workers, next)
		}
	}
}

// TestRangesObservedErrorStillReports: a failing shard is still reported
// (the observer sees the attempt), and the error surfaces unchanged.
func TestRangesObservedErrorStillReports(t *testing.T) {
	t.Parallel()
	log := &shardLog{}
	boom := errors.New("boom")
	err := RangesObserved(context.Background(), 4, 16, func(start, end int) error {
		if start == 0 {
			return boom
		}
		return nil
	}, log)
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if len(log.reports) != 4 {
		t.Fatalf("%d reports, want 4", len(log.reports))
	}
}

// TestRangesObservedNilObserverIsRanges: the nil-observer path must be
// byte-for-byte the historical Ranges behaviour.
func TestRangesObservedNilObserverIsRanges(t *testing.T) {
	t.Parallel()
	var visited atomic.Int64
	if err := RangesObserved(context.Background(), 4, 32, func(start, end int) error {
		visited.Add(int64(end - start))
		return nil
	}, nil); err != nil {
		t.Fatal(err)
	}
	if visited.Load() != 32 {
		t.Errorf("visited %d, want 32", visited.Load())
	}
}
