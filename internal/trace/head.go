package trace

// The mutable ingest head. The columnar Store (and the .dcs snapshot
// format built on it) is deliberately immutable: every reader shares it
// without coordination, and one dataset has exactly one byte
// representation. A long-running ingest daemon needs the complement — a
// small, mutable, concurrency-safe tail that absorbs live posts and is
// periodically compacted into a fresh immutable Dataset. Head is that
// tail: a mutex-guarded Builder stacked on top of an immutable base
// Dataset. Appends go to the Builder; Compact folds the tail into a new
// base (suitable for WriteSnapshot) and resets the tail to empty.
//
// Head serializes every append through one mutex, which caps a serving
// daemon at single-core ingest. ShardedHead is the scalable variant: N
// user-hash shards, each a (Builder, arrival-sequence) pair behind its own
// mutex, so appends for different users proceed in parallel. Every accepted
// post draws a ticket from one global atomic sequence counter; Compact
// merges the shard tails in ticket order, which makes the fold
// deterministic — for a fixed append order the compacted Dataset (and its
// snapshot bytes) is identical at every shard count, including the
// one-mutex Head as the shards=1 degenerate case. The shard-invariance
// property test pins exactly that, mirroring the IngestCSV
// worker-invariance contract.

import (
	"sync"
	"sync/atomic"
	"time"
)

// Head is a concurrency-safe mutable ingest head over an immutable base
// Dataset. All methods are safe for concurrent use. The base Dataset and
// every Dataset returned by Compact are immutable and must not be
// mutated by callers.
type Head struct {
	mu   sync.Mutex
	name string
	base *Dataset // immutable; nil means empty
	tail *Builder // pending posts since the last compaction
}

// NewHead returns a Head named name on top of base (nil for an empty
// head). The caller hands ownership of base to the head and must not
// mutate it afterwards.
func NewHead(name string, base *Dataset) *Head {
	return &Head{name: name, base: base, tail: NewBuilder(0)}
}

// Append records one post in the mutable tail. It returns a *LimitError
// (and records nothing) if the tail would overflow the columnar ordinal
// space — see Builder.TryUser/TryAdd.
func (h *Head) Append(userID string, unixSec int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	u, err := h.tail.TryUser(userID)
	if err != nil {
		return err
	}
	return h.tail.TryAdd(u, unixSec)
}

// Pending returns the number of posts in the mutable tail, i.e. appended
// since the last Compact.
func (h *Head) Pending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tail.NumPosts()
}

// TotalPosts returns the number of posts in the head: compacted base plus
// mutable tail.
func (h *Head) TotalPosts() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := h.tail.NumPosts()
	if h.base != nil {
		n += len(h.base.Posts)
	}
	return n
}

// Compact folds the mutable tail into a fresh immutable base Dataset and
// resets the tail to empty. The returned Dataset is safe to share, index
// and snapshot (WriteSnapshot) without further coordination — later
// Appends go to the new tail and never touch it. Posts keep arrival
// order: base posts first, then tail posts in append order, exactly the
// sequence a batch ingest of the same stream would hold.
func (h *Head) Compact() *Dataset {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tail.NumPosts() == 0 && h.base != nil {
		return h.base
	}
	fresh := h.tail.Dataset(h.name, false)
	if h.base != nil && len(h.base.Posts) > 0 {
		merged := &Dataset{
			Name:        h.name,
			Posts:       make([]Post, 0, len(h.base.Posts)+len(fresh.Posts)),
			GroundTruth: copyGroundTruth(h.base.GroundTruth),
		}
		merged.Posts = append(merged.Posts, h.base.Posts...)
		merged.Posts = append(merged.Posts, fresh.Posts...)
		fresh = merged
	}
	h.base = fresh
	h.tail = NewBuilder(0)
	return h.base
}

// DefaultHeadShards is the shard count NewShardedHead uses when asked for
// zero shards: enough to spread an 8–16 way ingest load without making
// compaction merges wide.
const DefaultHeadShards = 16

// headShard is one user-hash shard of a ShardedHead: a columnar tail plus
// the global arrival ticket of every tail post, behind a shard-local
// mutex. Padded so neighbouring shards' locks don't share a cache line.
type headShard struct {
	mu   sync.Mutex
	tail *Builder
	seqs []uint64 // arrival ticket per tail post, parallel to the tail columns
	_    [24]byte // mutex+pointer+slice = 40 bytes; pad to a 64-byte line
}

// ShardedHead is a concurrency-safe mutable ingest head over an immutable
// base Dataset, sharded by user hash so concurrent appends contend only
// when they hit the same shard. All methods are safe for concurrent use.
// The base Dataset and every Dataset returned by Compact are immutable and
// must not be mutated by callers.
//
// Compact is deterministic: posts are folded in global arrival-ticket
// order, so for any fixed append order the compacted Dataset is identical
// at every shard count (and identical to the single-mutex Head).
type ShardedHead struct {
	name   string
	mask   uint32
	shards []headShard

	seq     atomic.Uint64 // global arrival ticket source
	pending atomic.Int64  // posts currently sitting in shard tails

	base      atomic.Pointer[Dataset] // immutable; nil means empty
	compactMu sync.Mutex              // serializes Compact folds

	// buf is the compactor's amortized output buffer (guarded by
	// compactMu). The current base's Posts always alias buf[:len], so a
	// fold with spare capacity appends in place instead of re-copying the
	// whole base — growth doubles, making compaction amortized O(1) per
	// post instead of O(total). Published Datasets never see the appended
	// region (their slice length is fixed), so readers need no
	// coordination.
	buf []Post
}

// NewShardedHead returns a ShardedHead named name on top of base (nil for
// an empty head) with the given shard count (0 = DefaultHeadShards; other
// values are rounded up to a power of two). The caller hands ownership of
// base to the head and must not mutate it afterwards.
func NewShardedHead(name string, base *Dataset, shards int) *ShardedHead {
	if shards <= 0 {
		shards = DefaultHeadShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	h := &ShardedHead{name: name, mask: uint32(n - 1), shards: make([]headShard, n)}
	for i := range h.shards {
		h.shards[i].tail = NewBuilder(0)
	}
	h.base.Store(base)
	return h
}

// fnv32a is the 32-bit FNV-1a hash — deterministic, allocation-free, and
// good enough to spread forum user IDs across shards.
func fnv32a[T ~string | ~[]byte](s T) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// ShardOf returns the shard index userID hashes to — exported so callers
// colocating per-user state (the daemon's accumulator shards) can reuse
// the head's partition.
func (h *ShardedHead) ShardOf(userID []byte) int {
	return int(fnv32a(userID) & h.mask)
}

// ShardOfString is ShardOf for callers holding a string, without the
// []byte conversion allocation.
func (h *ShardedHead) ShardOfString(userID string) int {
	return int(fnv32a(userID) & h.mask)
}

// NumShards returns the (power-of-two) shard count.
func (h *ShardedHead) NumShards() int { return len(h.shards) }

// Append records one post in the mutable tail of the user's shard. It
// returns a *LimitError (and records nothing) if that shard's tail would
// overflow the columnar ordinal space.
func (h *ShardedHead) Append(userID string, unixSec int64) error {
	return h.appendShard(h.ShardOfString(userID), func(b *Builder) (int32, error) {
		return b.TryUser(userID)
	}, unixSec)
}

// AppendBytes is Append for callers holding the user ID as a byte slice
// (the NDJSON fast path): the ID is only copied to a string when the user
// is new to the shard, so steady-state appends allocate nothing.
func (h *ShardedHead) AppendBytes(userID []byte, unixSec int64) error {
	return h.appendShard(h.ShardOf(userID), func(b *Builder) (int32, error) {
		return b.TryUserBytes(userID)
	}, unixSec)
}

func (h *ShardedHead) appendShard(si int, intern func(*Builder) (int32, error), unixSec int64) error {
	sh := &h.shards[si]
	sh.mu.Lock()
	u, err := intern(sh.tail)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	if err := sh.tail.TryAdd(u, unixSec); err != nil {
		sh.mu.Unlock()
		return err
	}
	sh.seqs = append(sh.seqs, h.seq.Add(1))
	sh.mu.Unlock()
	h.pending.Add(1)
	return nil
}

// Pending returns the number of posts in the mutable shard tails, i.e.
// appended since the last Compact. Lock-free.
func (h *ShardedHead) Pending() int { return int(h.pending.Load()) }

// TotalPosts returns the number of posts in the head: compacted base plus
// shard tails. Lock-free; during a concurrent Compact the count may
// transiently include the folding posts twice.
func (h *ShardedHead) TotalPosts() int {
	n := int(h.pending.Load())
	if base := h.base.Load(); base != nil {
		n += len(base.Posts)
	}
	return n
}

// Base returns the current immutable base Dataset (nil before the first
// compaction of a baseless head). Lock-free.
func (h *ShardedHead) Base() *Dataset { return h.base.Load() }

// Compact folds the shard tails into a fresh immutable base Dataset and
// resets the tails to empty. Shard locks are held only to swap each tail
// out; the merge itself runs unlocked, so concurrent appends are never
// stalled behind the fold. Posts keep global arrival-ticket order: base
// posts first, then tail posts in the order their appends were accepted —
// for a fixed append order, exactly the sequence the single-mutex Head
// would hold.
func (h *ShardedHead) Compact() *Dataset {
	h.compactMu.Lock()
	defer h.compactMu.Unlock()
	parts := make([]headShard, len(h.shards))
	total := 0
	for i := range h.shards {
		sh := &h.shards[i]
		sh.mu.Lock()
		if n := sh.tail.NumPosts(); n > 0 {
			parts[i] = headShard{tail: sh.tail, seqs: sh.seqs}
			total += n
			sh.tail = NewBuilder(0)
			sh.seqs = nil
		}
		sh.mu.Unlock()
	}
	base := h.base.Load()
	if total == 0 && base != nil {
		return base
	}
	baseLen := 0
	var gt map[string]string
	if base != nil {
		baseLen = len(base.Posts)
		gt = copyGroundTruth(base.GroundTruth)
	}
	// Make room in the amortized buffer. The base's Posts alias
	// h.buf[:baseLen] after the first fold, so with spare capacity the
	// merge appends in place and the base is never re-copied.
	if cap(h.buf) < baseLen+total {
		newCap := 2 * cap(h.buf)
		if newCap < baseLen+total {
			newCap = baseLen + total
		}
		grown := make([]Post, baseLen, newCap)
		if base != nil {
			copy(grown, base.Posts)
		}
		h.buf = grown
	} else {
		h.buf = h.buf[:baseLen]
	}
	// Tickets within one shard are monotonically increasing (drawn under
	// the shard lock in append order), so restoring global arrival order
	// is a K-way merge of sorted runs — no global sort, no scratch slice.
	idx := make([]int, len(parts))
	for filled := 0; filled < total; filled++ {
		best := -1
		var bestSeq uint64
		for i := range parts {
			t := parts[i].tail
			if t == nil || idx[i] >= t.NumPosts() {
				continue
			}
			if s := parts[i].seqs[idx[i]]; best < 0 || s < bestSeq {
				best, bestSeq = i, s
			}
		}
		t := parts[best].tail
		j := idx[best]
		h.buf = append(h.buf, Post{UserID: t.ids[t.userOf[j]], Time: time.Unix(t.when[j], 0).UTC()})
		idx[best]++
	}
	fresh := &Dataset{Name: h.name, Posts: h.buf, GroundTruth: gt}
	h.base.Store(fresh)
	h.pending.Add(-int64(total))
	return fresh
}
