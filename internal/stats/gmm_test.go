package stats

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// sampleMixture draws n deterministic samples from the mixture on a
// 24-circle using the provided source.
func sampleMixture(rng *rand.Rand, m Mixture, n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		// Pick component by weight.
		u := rng.Float64() * m.TotalWeight()
		var g Gaussian
		for _, c := range m {
			if u < c.Weight {
				g = c
				break
			}
			u -= c.Weight
		}
		if g.Sigma == 0 {
			g = m[len(m)-1]
		}
		x := math.Mod(rng.NormFloat64()*g.Sigma+g.Mean+240, 24)
		out = append(out, x)
	}
	return out
}

func TestFitMixtureEMSingleComponent(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(1))
	truth := Mixture{{Weight: 1, Mean: 13, Sigma: 2.5}}
	samples := sampleMixture(rng, truth, 2000)
	res, err := FitMixtureEM(samples, 1, EMConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Mixture[0]
	if d := math.Abs(CircularDiff(got.Mean, 13, 24)); d > 0.3 {
		t.Errorf("mean = %g, want ~13", got.Mean)
	}
	if math.Abs(got.Sigma-2.5) > 0.4 {
		t.Errorf("sigma = %g, want ~2.5", got.Sigma)
	}
	if math.Abs(got.Weight-1) > 1e-9 {
		t.Errorf("weight = %g, want 1", got.Weight)
	}
}

func TestFitMixtureEMAcrossSeam(t *testing.T) {
	t.Parallel()
	// A component centred at UTC-1 (bin 23 on a 0..23 axis) must be
	// recovered despite the circular seam.
	rng := rand.New(rand.NewSource(2))
	truth := Mixture{{Weight: 1, Mean: 23.5, Sigma: 2}}
	samples := sampleMixture(rng, truth, 2000)
	res, err := FitMixtureEM(samples, 1, EMConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Mixture[0]
	if d := math.Abs(CircularDiff(got.Mean, 23.5, 24)); d > 0.4 {
		t.Errorf("mean = %g, want ~23.5 (circular)", got.Mean)
	}
}

func TestSelectMixtureFindsTwoComponents(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(3))
	truth := Mixture{
		{Weight: 0.7, Mean: 7, Sigma: 2},
		{Weight: 0.3, Mean: 19, Sigma: 2},
	}
	samples := sampleMixture(rng, truth, 3000)
	res, err := SelectMixture(samples, 4, EMConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mixture) != 2 {
		t.Fatalf("selected %d components, want 2: %+v", len(res.Mixture), res.Mixture)
	}
	// Components are sorted by descending weight.
	if d := math.Abs(CircularDiff(res.Mixture[0].Mean, 7, 24)); d > 0.6 {
		t.Errorf("dominant mean = %g, want ~7", res.Mixture[0].Mean)
	}
	if d := math.Abs(CircularDiff(res.Mixture[1].Mean, 19, 24)); d > 0.8 {
		t.Errorf("secondary mean = %g, want ~19", res.Mixture[1].Mean)
	}
	if res.Mixture[0].Weight < res.Mixture[1].Weight {
		t.Error("mixture not sorted by weight")
	}
	if math.Abs(res.Mixture[0].Weight-0.7) > 0.08 {
		t.Errorf("dominant weight = %g, want ~0.7", res.Mixture[0].Weight)
	}
}

func TestSelectMixtureFindsThreeComponents(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(4))
	truth := Mixture{
		{Weight: 0.45, Mean: 4, Sigma: 1.8},
		{Weight: 0.35, Mean: 12, Sigma: 1.8},
		{Weight: 0.20, Mean: 20, Sigma: 1.8},
	}
	samples := sampleMixture(rng, truth, 4000)
	res, err := SelectMixture(samples, 5, EMConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mixture) != 3 {
		t.Fatalf("selected %d components, want 3: %+v", len(res.Mixture), res.Mixture)
	}
	wantMeans := []float64{4, 12, 20}
	for _, want := range wantMeans {
		found := false
		for _, g := range res.Mixture {
			if math.Abs(CircularDiff(g.Mean, want, 24)) < 1 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no component near %g in %+v", want, res.Mixture)
		}
	}
}

func TestSelectMixtureSingleRegionPrefersOne(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	truth := Mixture{{Weight: 1, Mean: 10, Sigma: 2.5}}
	samples := sampleMixture(rng, truth, 1500)
	res, err := SelectMixture(samples, 4, EMConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Mixture) != 1 {
		t.Fatalf("selected %d components for single-region crowd, want 1: %+v",
			len(res.Mixture), res.Mixture)
	}
}

func TestFitMixtureEMErrors(t *testing.T) {
	t.Parallel()
	if _, err := FitMixtureEM([]float64{1, 2, 3}, 0, EMConfig{Period: 24}); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := FitMixtureEM([]float64{1}, 2, EMConfig{Period: 24}); err == nil {
		t.Error("more components than samples should fail")
	}
	if _, err := FitMixtureEM([]float64{1, 2}, 1, EMConfig{}); err == nil {
		t.Error("missing period should fail")
	}
	if _, err := SelectMixture([]float64{1, 2, 3}, 0, EMConfig{Period: 24}); err == nil {
		t.Error("maxK=0 should fail")
	}
	if _, err := SelectMixture(nil, 3, EMConfig{Period: 24}); err == nil {
		t.Error("empty samples should fail")
	}
}

func TestEMWeightsSumToOne(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(6))
	truth := Mixture{
		{Weight: 0.5, Mean: 3, Sigma: 2},
		{Weight: 0.5, Mean: 15, Sigma: 2},
	}
	samples := sampleMixture(rng, truth, 1000)
	for k := 1; k <= 3; k++ {
		res, err := FitMixtureEM(samples, k, EMConfig{Period: 24})
		var deg *FitDegradedError
		if errors.As(err, &deg) {
			// Overparameterized k may not converge; the recoverable fit must
			// still honor the weight invariant.
			res = deg.Result
		} else if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(res.Mixture.TotalWeight(), 1, 1e-6) {
			t.Errorf("k=%d: weights sum to %g", k, res.Mixture.TotalWeight())
		}
		if res.Iterations <= 0 {
			t.Errorf("k=%d: non-positive iteration count", k)
		}
	}
}

func TestEMLikelihoodImprovesWithBetterModel(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(7))
	truth := Mixture{
		{Weight: 0.5, Mean: 2, Sigma: 1.5},
		{Weight: 0.5, Mean: 14, Sigma: 1.5},
	}
	samples := sampleMixture(rng, truth, 1500)
	one, err := FitMixtureEM(samples, 1, EMConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	two, err := FitMixtureEM(samples, 2, EMConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	if two.LogLikelihood <= one.LogLikelihood {
		t.Errorf("k=2 log-likelihood %g should beat k=1 %g for bimodal data",
			two.LogLikelihood, one.LogLikelihood)
	}
	if two.BIC >= one.BIC {
		t.Errorf("k=2 BIC %g should beat k=1 BIC %g for bimodal data", two.BIC, one.BIC)
	}
}

func TestTidyMixtureMergesClose(t *testing.T) {
	t.Parallel()
	cfg := EMConfig{Period: 24}.withDefaults()
	m := Mixture{
		{Weight: 0.5, Mean: 10, Sigma: 2},
		{Weight: 0.4, Mean: 10.5, Sigma: 2},
		{Weight: 0.1, Mean: 20, Sigma: 2},
	}
	out := tidyMixture(m, cfg)
	if len(out) != 2 {
		t.Fatalf("merged mixture has %d components, want 2: %+v", len(out), out)
	}
	if !almostEqual(out.TotalWeight(), 1, 1e-9) {
		t.Errorf("weights sum to %g", out.TotalWeight())
	}
	if d := math.Abs(CircularDiff(out[0].Mean, 10.22, 24)); d > 0.1 {
		t.Errorf("merged mean = %g, want ~10.22", out[0].Mean)
	}
}

func TestTidyMixturePrunesLight(t *testing.T) {
	t.Parallel()
	cfg := EMConfig{Period: 24}.withDefaults()
	m := Mixture{
		{Weight: 0.97, Mean: 5, Sigma: 2},
		{Weight: 0.03, Mean: 18, Sigma: 2},
	}
	out := tidyMixture(m, cfg)
	if len(out) != 1 {
		t.Fatalf("pruned mixture has %d components, want 1", len(out))
	}
	if !almostEqual(out[0].Weight, 1, 1e-9) {
		t.Errorf("surviving weight = %g, want 1", out[0].Weight)
	}
}

// TestEMResultDescribesReturnedMixture is the contract the historical loop
// violated: the reported log-likelihood (and therefore BIC) must be the
// likelihood of the mixture actually returned, not of an earlier or later
// iterate. Checked across seeds, component counts, and clamp settings,
// including aggressive clamps that force non-monotone EM.
func TestEMResultDescribesReturnedMixture(t *testing.T) {
	t.Parallel()
	cfgs := []EMConfig{
		{Period: 24},
		{Period: 24, MinSigma: 1.8, MaxSigma: 3.2, Tol: 1e-12},
		{Period: 24, MinSigma: 3.0, MaxSigma: 3.2, Tol: 1e-12},
	}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		truth := Mixture{
			{Weight: 0.6, Mean: 5, Sigma: 0.8},
			{Weight: 0.4, Mean: 13, Sigma: 1.5},
		}
		samples := sampleMixture(rng, truth, 300)
		for _, cfg := range cfgs {
			for k := 1; k <= 3; k++ {
				res, err := FitMixtureEM(samples, k, cfg)
				var deg *FitDegradedError
				if errors.As(err, &deg) {
					// The LL/BIC contract holds for degraded fits too: the
					// reported score must describe the returned mixture.
					res = deg.Result
				} else if err != nil {
					t.Fatal(err)
				}
				recomputed := MixtureLogLikelihood(samples, res.Mixture, 24)
				if math.Abs(recomputed-res.LogLikelihood) > 1e-6*math.Abs(recomputed) {
					t.Errorf("seed=%d k=%d cfg=%+v: reported LL %.9f but returned mixture has LL %.9f",
						seed, k, cfg, res.LogLikelihood, recomputed)
				}
				if want := bicScore(k, len(samples), res.LogLikelihood); res.BIC != want {
					t.Errorf("seed=%d k=%d: BIC %.9f inconsistent with reported LL (want %.9f)",
						seed, k, res.BIC, want)
				}
				if res.Iterations <= 0 {
					t.Errorf("seed=%d k=%d: Iterations = %d", seed, k, res.Iterations)
				}
			}
		}
	}
}

// TestEMDecreasingLikelihoodKeepsBestIterate pins a configuration where
// sigma clamping makes an M-step *decrease* the likelihood (found by
// sweeping seeds; the truth mixture's sigma 0.4 sits far below MinSigma=3,
// so the M-step projection leaves the monotone regime). EM must detect the
// decrease, stop, and return the best iterate it evaluated — the
// regression was returning the worse post-decrease parameters with the
// stale pre-decrease likelihood attached.
func TestEMDecreasingLikelihoodKeepsBestIterate(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(5))
	truth := Mixture{
		{Weight: 0.6, Mean: 5, Sigma: 0.4},
		{Weight: 0.4, Mean: 9, Sigma: 0.4},
	}
	samples := sampleMixture(rng, truth, 200)
	cfg := EMConfig{Period: 24, MinSigma: 3.0, MaxSigma: 3.2, Tol: 1e-12, MaxIter: 100}

	// Replay the iteration sequence with the same deterministic init to
	// confirm the premise: the likelihood really does go down.
	full := cfg.withDefaults()
	mix := initComponents(samples, 2, full)
	resp := make([][]float64, len(samples))
	for i := range resp {
		resp[i] = make([]float64, 2)
	}
	var lls []float64
	decreased := false
	for iter := 0; iter < full.MaxIter; iter++ {
		ll := eStep(samples, mix, resp, full.Period)
		lls = append(lls, ll)
		if len(lls) > 1 && ll < lls[len(lls)-2] {
			decreased = true
			break
		}
		mStep(samples, mix, resp, full)
	}
	if !decreased {
		t.Fatal("premise broken: this configuration no longer produces an LL decrease; pick a new seed")
	}
	bestSeen := math.Inf(-1)
	for _, ll := range lls {
		if ll > bestSeen {
			bestSeen = ll
		}
	}

	res, err := FitMixtureEM(samples, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("EM hit an LL decrease but did not report Converged")
	}
	if res.Iterations != len(lls) {
		t.Errorf("Iterations = %d, want %d (stopped at the decrease)", res.Iterations, len(lls))
	}
	if math.Abs(res.LogLikelihood-bestSeen) > 1e-9*math.Abs(bestSeen) {
		t.Errorf("returned LL %.9f, want best evaluated iterate %.9f", res.LogLikelihood, bestSeen)
	}
	recomputed := MixtureLogLikelihood(samples, res.Mixture, 24)
	if math.Abs(recomputed-res.LogLikelihood) > 1e-6*math.Abs(recomputed) {
		t.Errorf("reported LL %.9f does not match returned mixture's LL %.9f", res.LogLikelihood, recomputed)
	}
}

// TestEMConvergedFlag: easy data converges well before MaxIter; a
// single-iteration budget cannot converge and must say so.
func TestEMConvergedFlag(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(11))
	samples := sampleMixture(rng, Mixture{{Weight: 1, Mean: 10, Sigma: 2.5}}, 800)
	res, err := FitMixtureEM(samples, 1, EMConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("unimodal fit did not converge in %d iterations", res.Iterations)
	}
	// A single-iteration budget cannot converge: the fit comes back as a
	// degraded-but-usable result attached to a typed error.
	capped, err := FitMixtureEM(samples, 2, EMConfig{Period: 24, MaxIter: 1})
	var deg *FitDegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("MaxIter=1 run returned %v, want *FitDegradedError", err)
	}
	if capped.Converged {
		t.Error("MaxIter=1 run claims convergence")
	}
	if capped.Iterations != 1 {
		t.Errorf("MaxIter=1 run reports %d iterations", capped.Iterations)
	}
	if capped.Degraded == "" || deg.Result.Degraded != capped.Degraded {
		t.Errorf("degraded fit not marked: result %q, error carries %q", capped.Degraded, deg.Result.Degraded)
	}
	if !strings.Contains(deg.Reason, "max-iterations") {
		t.Errorf("degradation reason = %q", deg.Reason)
	}
	if len(deg.Result.Mixture) != 2 {
		t.Errorf("degraded error carries %d components, want the recoverable 2", len(deg.Result.Mixture))
	}
}

// TestSelectMixtureAbsorbsDegradedFits: non-converging per-k runs must not
// abort model selection — their best recoverable fits stay in the BIC race,
// and if the winner itself is degraded, SelectMixture returns it with a nil
// error and the Degraded field set.
func TestSelectMixtureAbsorbsDegradedFits(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(21))
	samples := sampleMixture(rng, Mixture{{Weight: 1, Mean: 8, Sigma: 2.5}}, 400)
	// MaxIter=1 starves every candidate k, so each FitMixtureEM call
	// returns a *FitDegradedError; selection must still produce a model.
	res, err := SelectMixture(samples, 3, EMConfig{Period: 24, MaxIter: 1})
	if err != nil {
		t.Fatalf("SelectMixture died on degraded candidates: %v", err)
	}
	if len(res.Mixture) == 0 {
		t.Fatal("no model selected")
	}
	if res.Degraded == "" || !strings.Contains(res.Degraded, "max-iterations") {
		t.Errorf("winner of an all-degraded race must be marked degraded, got %q", res.Degraded)
	}
	// Healthy data with a sane budget stays unmarked.
	healthy, err := SelectMixture(samples, 3, EMConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Degraded != "" {
		t.Errorf("healthy selection marked degraded: %q", healthy.Degraded)
	}
}

// TestInitComponentsFallbackAvoidsPickedPeaks: when k exceeds the number
// of well-separated histogram peaks, the even-spacing fallback must not
// drop a mean on top of an already-picked one. With 24 occupied integer
// bins and k=25, the historical fallback placed mean 24*24/25 = 23.04 —
// 0.04 zones from the picked peak at 23, seeding two near-duplicate
// components.
func TestInitComponentsFallbackAvoidsPickedPeaks(t *testing.T) {
	t.Parallel()
	cfg := EMConfig{Period: 24}.withDefaults()
	const k = 25
	samples := make([]float64, 30)
	for i := range samples {
		samples[i] = float64(i % 24)
	}
	mix := initComponents(samples, k, cfg)
	if len(mix) != k {
		t.Fatalf("initComponents returned %d components, want %d", len(mix), k)
	}
	minSep := cfg.Period / float64(2*k)
	for i := range mix {
		if math.Abs(mix[i].Weight-1.0/k) > 1e-12 {
			t.Errorf("component %d weight = %g, want 1/%d", i, mix[i].Weight, k)
		}
		for j := i + 1; j < len(mix); j++ {
			d := math.Abs(CircularDiff(mix[i].Mean, mix[j].Mean, cfg.Period))
			if d < minSep-1e-9 {
				t.Errorf("means %g and %g are %g apart, want >= %g (near-duplicate init)",
					mix[i].Mean, mix[j].Mean, d, minSep)
			}
		}
	}
}

// TestSelectMixtureBICDescribesTidiedMixture: SelectMixture prunes and
// merges the BIC winner before returning it, so the reported LL/BIC must
// be recomputed for the tidied model — the regression reported the raw
// k-component fit's score for a mixture with fewer components.
func TestSelectMixtureBICDescribesTidiedMixture(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(12))
	truth := Mixture{
		{Weight: 0.7, Mean: 7, Sigma: 2},
		{Weight: 0.3, Mean: 19, Sigma: 2},
	}
	samples := sampleMixture(rng, truth, 2000)
	res, err := SelectMixture(samples, 5, EMConfig{Period: 24})
	if err != nil {
		t.Fatal(err)
	}
	wantLL := MixtureLogLikelihood(samples, res.Mixture, 24)
	if res.LogLikelihood != wantLL {
		t.Errorf("reported LL %.9f, want tidied mixture's LL %.9f", res.LogLikelihood, wantLL)
	}
	if want := bicScore(len(res.Mixture), len(samples), wantLL); res.BIC != want {
		t.Errorf("reported BIC %.9f, want %.9f for the %d-component tidied mixture",
			res.BIC, want, len(res.Mixture))
	}
}
