package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

// TestLatBucketRoundtrip checks that latBucketOf and latBucketUpper agree:
// every value lands in a bucket whose upper bound is >= the value, and the
// next bucket's upper bound is strictly larger (monotonic, gap-free).
func TestLatBucketRoundtrip(t *testing.T) {
	vals := []int64{0, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64}
	for _, v := range vals {
		b := latBucketOf(v)
		if b < 0 || b >= latBuckets {
			t.Fatalf("latBucketOf(%d) = %d out of range [0,%d)", v, b, latBuckets)
		}
		up := latBucketUpper(b)
		if up < v {
			t.Errorf("latBucketUpper(%d) = %d < observed %d", b, up, v)
		}
		if b > 0 && latBucketUpper(b-1) >= v {
			t.Errorf("value %d should not fit in bucket %d (upper %d)", v, b-1, latBucketUpper(b-1))
		}
	}
	// Negative observations clamp to bucket 0.
	if got := latBucketOf(-5); got != 0 {
		t.Fatalf("latBucketOf(-5) = %d, want 0", got)
	}
	// Bucket upper bounds are strictly increasing across the whole range.
	prev := int64(-1)
	for b := 0; b < latBuckets; b++ {
		up := latBucketUpper(b)
		if up <= prev {
			t.Fatalf("latBucketUpper not strictly increasing at bucket %d: %d <= %d", b, up, prev)
		}
		prev = up
	}
	// Upper bounds map back to their own bucket (they are the largest member).
	for b := 0; b < latBuckets-1; b++ {
		up := latBucketUpper(b)
		if got := latBucketOf(up); got != b {
			t.Fatalf("latBucketOf(latBucketUpper(%d)=%d) = %d", b, up, got)
		}
		if got := latBucketOf(up + 1); got != b+1 {
			t.Fatalf("latBucketOf(%d+1) = %d, want %d", up, got, b+1)
		}
	}
}

// TestLatBucketResolution pins the ~12.5% relative-error guarantee: above
// the linear region, a bucket's width is at most 1/8 of its lower bound.
func TestLatBucketResolution(t *testing.T) {
	for b := latLinear; b < latBuckets-1; b++ {
		up := latBucketUpper(b)
		lo := latBucketUpper(b-1) + 1
		width := up - lo + 1
		if width > (lo+7)/8 {
			t.Fatalf("bucket %d [%d,%d] width %d exceeds 12.5%% of lower bound", b, lo, up, width)
		}
	}
}

func TestLatencyHistQuantiles(t *testing.T) {
	h := &LatencyHist{}
	// 1000 observations: 1..1000 (e.g. microsecond-scale latencies in ns
	// would just scale these). True p50=500, p90=900, p99=990.
	for v := int64(1); v <= 1000; v++ {
		h.ObserveNs(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	if want := int64(1000 * 1001 / 2); s.Sum != want {
		t.Fatalf("Sum = %d, want %d", s.Sum, want)
	}
	check := func(name string, got, trueQ int64) {
		t.Helper()
		// Upper-bound estimate: never below the true quantile, at most one
		// bucket width (12.5%) above it.
		if got < trueQ || float64(got) > float64(trueQ)*1.13 {
			t.Errorf("%s = %d, want in [%d, %.0f]", name, got, trueQ, float64(trueQ)*1.13)
		}
	}
	check("P50", s.P50, 500)
	check("P90", s.P90, 900)
	check("P99", s.P99, 990)
	check("Max", s.Max, 1000)
	if s.Mean != 500.5 {
		t.Errorf("Mean = %v, want 500.5", s.Mean)
	}
	if q := s.Quantile(0); q < 1 || q > 1000 {
		t.Errorf("Quantile(0) = %d out of observed range", q)
	}
	if q := s.Quantile(1); q < 1000 {
		t.Errorf("Quantile(1) = %d < max", q)
	}
}

func TestLatencyHistExactSmallValues(t *testing.T) {
	// The linear region (0..15) is exact: quantiles of small counts come
	// back with zero error.
	h := &LatencyHist{}
	for _, v := range []int64{2, 4, 4, 8, 15} {
		h.ObserveNs(v)
	}
	s := h.Snapshot()
	if s.P50 != 4 {
		t.Errorf("P50 = %d, want 4", s.P50)
	}
	if s.Max != 15 {
		t.Errorf("Max = %d, want 15", s.Max)
	}
}

func TestLatencyHistObserveDuration(t *testing.T) {
	h := &LatencyHist{}
	h.Observe(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != int64(3*time.Millisecond) {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestLatencyHistNil(t *testing.T) {
	var h *LatencyHist
	h.Observe(time.Second) // must not panic
	h.ObserveNs(42)
	s := h.Snapshot()
	if s.Count != 0 || s.P99 != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

func TestLatencySnapshotJSONDropsBuckets(t *testing.T) {
	h := &LatencyHist{}
	h.ObserveNs(100)
	data, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back LatencySnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != 1 || back.P50 == 0 {
		t.Fatalf("roundtrip = %+v", back)
	}
	// Buckets are intentionally not serialized; Quantile on a deserialized
	// snapshot degrades to 0 rather than lying.
	if q := back.Quantile(0.5); q != 0 {
		t.Fatalf("Quantile on deserialized snapshot = %d, want 0", q)
	}
}

func TestLatencyHistConcurrent(t *testing.T) {
	h := &LatencyHist{}
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.ObserveNs(int64(w*1000 + i))
				if i%64 == 0 {
					_ = h.Snapshot() // racing reads must stay plausible
				}
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*perWorker {
		t.Fatalf("Count = %d, want %d", s.Count, workers*perWorker)
	}
}

func TestRegistryLatency(t *testing.T) {
	r := NewRegistry()
	h := r.Latency("http.place.ns")
	if h == nil {
		t.Fatal("Latency returned nil on live registry")
	}
	if r.Latency("http.place.ns") != h {
		t.Fatal("Latency not idempotent")
	}
	h.ObserveNs(500)
	s := r.Snapshot()
	ls, ok := s.Latencies["http.place.ns"]
	if !ok || ls.Count != 1 {
		t.Fatalf("snapshot latencies = %+v", s.Latencies)
	}
	found := false
	for _, n := range r.Names() {
		if n == "http.place.ns" {
			found = true
		}
	}
	if !found {
		t.Fatal("Names missing latency instrument")
	}

	var nilReg *Registry
	if nilReg.Latency("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	var nilObs *Observer
	if nilObs.Latency("x") != nil {
		t.Fatal("nil observer must hand out nil instruments")
	}
}

// TestLatencySnapshotConsistentUnderRace hammers one histogram with a
// constant observation while readers snapshot it, and checks the
// invariants the old Snapshot violated: Count must equal the scanned
// bucket mass (the old code clamped a separately-raced counter down but
// never up), the mean must never dip below the constant value (the old
// code divided a pre-scan Sum by a post-scan count), and the top
// quantile must agree with Max (both now derive from the same scan).
func TestLatencySnapshotConsistentUnderRace(t *testing.T) {
	const v = 1000
	h := &LatencyHist{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					h.ObserveNs(v)
				}
			}
		}()
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s := h.Snapshot()
				if s.Count == 0 {
					continue
				}
				var mass int64
				for _, n := range s.buckets {
					mass += n
				}
				if mass != s.Count {
					t.Errorf("Count %d != scanned bucket mass %d", s.Count, mass)
					return
				}
				if s.Sum < v*s.Count {
					t.Errorf("Sum %d < %d * Count %d: mean underestimates", s.Sum, int64(v), s.Count)
					return
				}
				if got := s.Quantile(1.0); got != s.Max {
					t.Errorf("Quantile(1.0) = %d, Max = %d", got, s.Max)
					return
				}
			}
		}()
	}
	// Let writers and readers overlap, then drain.
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
	s := h.Snapshot()
	if s.Mean < v {
		t.Fatalf("final mean %g below the only observed value %d", s.Mean, v)
	}
	if s.P50 < v || s.Max < v {
		t.Fatalf("final percentiles below the observed value: %+v", s)
	}
}
