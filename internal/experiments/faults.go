package experiments

import (
	"bytes"
	"fmt"
	"time"

	"darkcrowd/internal/crawler"
	"darkcrowd/internal/forum"
	"darkcrowd/internal/onion"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/tz"
)

// CrawlFaults is the crawl-under-faults experiment: the same small forum
// is scraped twice through the onion fabric — once fault-free, once with
// a seeded fault plan injecting drops and circuit resets — and the two
// datasets are compared byte for byte. The paper's weeks-long §V
// collection implicitly depended on this property: transport flakiness
// must change collection *time*, never collection *content*. Pass means
// faults actually fired and the datasets are identical.
func (l *Lab) CrawlFaults() (*Result, error) {
	region, err := tz.ByCode("it")
	if err != nil {
		return nil, err
	}
	crowd, err := synth.GenerateCrowd(l.cfg.Seed, synth.CrowdConfig{
		Name: "crawl-faults",
		Groups: []synth.Group{
			{Region: region, Users: 6, PostsPerUser: 30},
		},
	})
	if err != nil {
		return nil, err
	}
	newForum := func() (*forum.Forum, error) {
		f := forum.New(forum.Config{
			Name:         "crawl-faults",
			ServerOffset: 2 * time.Hour,
			PageSize:     20,
		})
		if err := f.ImportCrowd(crowd, forum.ImportOptions{}); err != nil {
			return nil, err
		}
		return f, nil
	}

	scrape := func(injector *onion.FaultInjector) (*crawler.Result, error) {
		f, err := newForum()
		if err != nil {
			return nil, err
		}
		n := onion.NewNetwork(l.cfg.Seed)
		defer n.Close()
		// Dropped cells stall streams until a timeout fires; shorten the
		// control/read timeouts so recovery is fast.
		n.SetControlTimeout(time.Second)
		if _, err := n.AddRelays(6); err != nil {
			return nil, err
		}
		svc, err := onion.HostService(n, "host-faults", 2)
		if err != nil {
			return nil, err
		}
		defer svc.Close()
		server := newOnionHTTPServer(f, svc)
		defer server.Close()
		// The service's intro circuits are long-lived infrastructure built
		// once before the crawl; faults model trouble during collection,
		// so the plan goes live only after the service is published.
		if injector != nil {
			n.SetFaultInjector(injector)
		}

		torClient, err := onion.NewClient(n, "scraper")
		if err != nil {
			return nil, err
		}
		defer torClient.Close()
		c := &crawler.Crawler{
			HTTPClient: newOnionHTTPClient(torClient),
			BaseURL:    "http://" + svc.Onion(),
			Timeout:    2 * time.Second,
			Retry: crawler.RetryPolicy{
				MaxAttempts: 6,
				BaseDelay:   20 * time.Millisecond,
				MaxDelay:    200 * time.Millisecond,
			},
		}
		return c.Scrape("crawl-faults")
	}

	clean, err := scrape(nil)
	if err != nil {
		return nil, fmt.Errorf("fault-free scrape: %w", err)
	}
	injector := onion.NewFaultInjector(onion.FaultConfig{
		Seed:      l.cfg.Seed + 1,
		DropProb:  0.015,
		ResetProb: 0.005,
		MaxFaults: 12,
	})
	faulted, err := scrape(injector)
	if err != nil {
		return nil, fmt.Errorf("faulted scrape: %w", err)
	}

	var cleanCSV, faultedCSV bytes.Buffer
	if err := clean.Dataset.WriteCSV(&cleanCSV); err != nil {
		return nil, err
	}
	if err := faulted.Dataset.WriteCSV(&faultedCSV); err != nil {
		return nil, err
	}
	identical := bytes.Equal(cleanCSV.Bytes(), faultedCSV.Bytes())
	stats := injector.Stats()

	res := &Result{
		Title: "Crawl under injected onion faults",
		Paper: "§V: collection ran for weeks over Tor; transport flakiness " +
			"may slow the crawl but must not change the collected dataset",
		Measured: fmt.Sprintf("faulted crawl survived %s with %d crawler retries; "+
			"dataset identical to fault-free crawl: %v", stats, faulted.Retries, identical),
		Pass: identical && stats.Total() > 0,
	}
	res.Lines = append(res.Lines,
		fmt.Sprintf("fault-free crawl: %d posts, %d pages, %d retries",
			clean.Dataset.NumPosts(), clean.Pages, clean.Retries),
		fmt.Sprintf("faulted crawl:    %d posts, %d pages, %d retries, %s",
			faulted.Dataset.NumPosts(), faulted.Pages, faulted.Retries, stats),
		fmt.Sprintf("datasets byte-identical: %v", identical),
	)
	return res, nil
}
