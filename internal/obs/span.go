package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one node of the hierarchical stage trace: a named stage with a
// wall-clock interval, an item count, a worker count, and optional
// per-shard records filled in by the par.Ranges instrumentation hook. A
// nil *Span ignores every call, so instrumented code never branches on
// whether tracing is on.
//
// Spans are safe for concurrent use: parallel stages may add items and
// report shards from many goroutines, and sibling child spans may be
// created concurrently (the per-k EM fits do).
type Span struct {
	name    string
	start   time.Time
	items   atomic.Int64
	workers atomic.Int64

	mu       sync.Mutex
	end      time.Time
	children []*Span
	shards   []ShardRecord
}

// ShardRecord is the completion report of one contiguous work shard.
type ShardRecord struct {
	// Worker is the shard's index in the worker pool.
	Worker int
	// Start and End delimit the half-open item range the shard covered.
	Start, End int
	// Elapsed is the shard's wall time.
	Elapsed time.Duration
}

// Items is the number of items the shard covered.
func (r ShardRecord) Items() int { return r.End - r.Start }

// StartSpan starts a root span.
func StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a nested stage under s and returns it. Returns nil when s
// is nil, keeping the whole subtree free when tracing is off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End marks the stage finished. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// AddItems adds to the stage's processed-item count.
func (s *Span) AddItems(n int64) {
	if s == nil {
		return
	}
	s.items.Add(n)
}

// Items returns the processed-item count so far.
func (s *Span) Items() int64 {
	if s == nil {
		return 0
	}
	return s.items.Load()
}

// SetWorkers records how many workers the stage ran on.
func (s *Span) SetWorkers(n int) {
	if s == nil {
		return
	}
	s.workers.Store(int64(n))
}

// ShardDone records the completion of one work shard; it satisfies
// par.ShardObserver, so a span can be handed straight to
// par.RangesObserved. The shard's item count is added to the span total.
func (s *Span) ShardDone(worker, start, end int, elapsed time.Duration) {
	if s == nil {
		return
	}
	s.items.Add(int64(end - start))
	s.mu.Lock()
	s.shards = append(s.shards, ShardRecord{Worker: worker, Start: start, End: end, Elapsed: elapsed})
	s.mu.Unlock()
}

// Shards returns a copy of the recorded shard reports.
func (s *Span) Shards() []ShardRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ShardRecord(nil), s.shards...)
}

// Name returns the stage name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the stage's wall time; for an unfinished span it is
// the time elapsed so far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Children returns a copy of the nested stages in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first span named name in the subtree rooted at s
// (depth-first, s included), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if found := c.Find(name); found != nil {
			return found
		}
	}
	return nil
}

// WriteTree renders the span tree with durations, item counts, worker
// counts, throughput and a shard summary:
//
//	geolocate                      41.8ms
//	  profile-build                 3.1ms     90 items   8 workers   29032 items/s
//	    shards: 8, items 11-12, elapsed 0.4ms-0.7ms
func (s *Span) WriteTree(w io.Writer) error {
	if s == nil {
		return nil
	}
	var b strings.Builder
	s.writeTree(&b, 0)
	_, err := io.WriteString(w, b.String())
	return err
}

// Tree renders WriteTree to a string.
func (s *Span) Tree() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.writeTree(&b, 0)
	return b.String()
}

func (s *Span) writeTree(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	d := s.Duration()
	fmt.Fprintf(b, "%s%-*s %10s", indent, 28-2*depth, s.name, fmtDuration(d))
	if n := s.items.Load(); n > 0 {
		fmt.Fprintf(b, " %7d items", n)
		if secs := d.Seconds(); secs > 0 {
			fmt.Fprintf(b, " %9.0f items/s", float64(n)/secs)
		}
	}
	if wk := s.workers.Load(); wk > 0 {
		fmt.Fprintf(b, " %3d workers", wk)
	}
	b.WriteByte('\n')

	s.mu.Lock()
	shards := append([]ShardRecord(nil), s.shards...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	if len(shards) > 0 {
		minItems, maxItems := shards[0].Items(), shards[0].Items()
		minD, maxD := shards[0].Elapsed, shards[0].Elapsed
		for _, sh := range shards[1:] {
			if it := sh.Items(); it < minItems {
				minItems = it
			} else if it > maxItems {
				maxItems = it
			}
			if sh.Elapsed < minD {
				minD = sh.Elapsed
			} else if sh.Elapsed > maxD {
				maxD = sh.Elapsed
			}
		}
		fmt.Fprintf(b, "%s  shards: %d, items %d-%d, elapsed %s-%s\n",
			indent, len(shards), minItems, maxItems, fmtDuration(minD), fmtDuration(maxD))
	}
	for _, c := range children {
		c.writeTree(b, depth+1)
	}
}

// fmtDuration rounds a duration to a readable precision for the tree.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}
