package geoloc

import (
	"math"
	"testing"

	"darkcrowd/internal/core/profile"
)

// TestPlaceUsersMargins pins the margin plumbing: margins appear for every
// user exactly when requested, are non-negative, and recording them does
// not perturb a single assignment.
func TestPlaceUsersMargins(t *testing.T) {
	profiles, generic := randomProfiles(5, 40)
	plain, err := PlaceUsers(profiles, generic, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Margins != nil {
		t.Fatal("margins recorded without being requested")
	}
	withM, err := PlaceUsers(profiles, generic, PlaceOptions{Margins: true})
	if err != nil {
		t.Fatal(err)
	}
	placementsBitEqual(t, withM, plain)
	if len(withM.Margins) != len(profiles) {
		t.Fatalf("got %d margins for %d users", len(withM.Margins), len(profiles))
	}
	for id, m := range withM.Margins {
		if m < 0 || math.IsNaN(m) {
			t.Fatalf("user %s: bad margin %g", id, m)
		}
		// PlaceOneMargin must agree with the batch sweep bit-for-bit.
		zi, one, err := PlaceOneMargin(profiles[id], generic, PlaceOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if profile.OffsetOf(zi) != withM.Assignments[id] {
			t.Fatalf("user %s: PlaceOneMargin zone differs from batch", id)
		}
		if math.Float64bits(one) != math.Float64bits(m) {
			t.Fatalf("user %s: PlaceOneMargin margin %g differs from batch %g", id, one, m)
		}
	}
}

// TestMarginUniformProfileIsZero pins the tie case: a uniform profile is
// equidistant from every zone, so its margin is exactly zero.
func TestMarginUniformProfileIsZero(t *testing.T) {
	profiles, generic := randomProfiles(6, 4)
	_ = profiles
	_, margin, err := PlaceOneMargin(profile.Uniform(), generic, PlaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if margin != 0 {
		t.Fatalf("uniform profile margin = %g, want 0", margin)
	}
}

// TestSummarizeMargins checks the order statistics on a hand-built set,
// both odd and even counts.
func TestSummarizeMargins(t *testing.T) {
	p := &Placement{Margins: map[string]float64{"a": 4, "b": 1, "c": 2}}
	s := SummarizeMargins(p)
	if s.Min != 1 || s.Max != 4 || s.Median != 2 {
		t.Fatalf("odd-count stats wrong: %+v", s)
	}
	if want := (4.0 + 1 + 2) / 3; math.Abs(s.Mean-want) > 1e-15 {
		t.Fatalf("mean = %g, want %g", s.Mean, want)
	}
	p.Margins["d"] = 3
	s = SummarizeMargins(p)
	if s.Median != 2.5 {
		t.Fatalf("even-count median = %g, want 2.5", s.Median)
	}
	if SummarizeMargins(&Placement{}) != nil {
		t.Fatal("empty placement must summarize to nil")
	}
}

// TestGeolocateMarginSummary checks the margin summary rides into the
// Geolocation exactly when placement recorded margins.
func TestGeolocateMarginSummary(t *testing.T) {
	profiles, generic := randomProfiles(7, 50)
	off, err := Geolocate(profiles, generic, GeolocateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if off.MarginSummary != nil {
		t.Fatal("margin summary present with margins off")
	}
	on, err := Geolocate(profiles, generic, GeolocateOptions{Place: PlaceOptions{Margins: true}})
	if err != nil {
		t.Fatal(err)
	}
	if on.MarginSummary == nil {
		t.Fatal("margin summary missing with margins on")
	}
	if on.MarginSummary.Min > on.MarginSummary.Median || on.MarginSummary.Median > on.MarginSummary.Max {
		t.Fatalf("summary not ordered: %+v", on.MarginSummary)
	}
}
