// Mixed-crowd example: reproduce the paper's Figure 6(b) scenario — a
// forum whose visitors come from three regions in different time zones
// (Illinois, Germany, Malaysia) — and watch the Gaussian mixture model
// uncover the number of regions and their zones.
//
//	go run ./examples/mixedcrowd
package main

import (
	"fmt"
	"log"
	"strings"

	"darkcrowd"
)

func main() {
	labelled, err := darkcrowd.SyntheticTwitterDataset(1, 40)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := darkcrowd.BuildReference(labelled)
	if err != nil {
		log.Fatal(err)
	}

	// A crowd the observer knows nothing about: in truth 45% Illinois
	// (UTC-6), 35% Germany (UTC+1), 20% Malaysia (UTC+8).
	crowd, err := darkcrowd.SyntheticCrowd(99, map[string]int{
		"us-il": 90,
		"de":    70,
		"my":    40,
	}, 100)
	if err != nil {
		log.Fatal(err)
	}

	report, err := darkcrowd.GeolocateCrowd(crowd.Posts, ref, darkcrowd.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("placement histogram over the 24 time zones:")
	maxShare := 0.0
	for _, share := range report.PlacementHistogram {
		if share > maxShare {
			maxShare = share
		}
	}
	for zi, share := range report.PlacementHistogram {
		if share == 0 {
			continue
		}
		bar := int(share / maxShare * 40)
		fmt.Printf("  UTC%+03d %-40s %5.1f%%\n",
			darkcrowd.OffsetOfZoneIndex(zi), strings.Repeat("#", bar), share*100)
	}

	fmt.Println("\nuncovered components (truth: 45% UTC-6, 35% UTC+1, 20% UTC+8):")
	for i, component := range report.Components {
		fmt.Printf("  %d. %s\n", i+1, component)
	}
	fmt.Printf("\nGaussian-mixture fit quality: avg %.4f, std %.4f (cf. Table II)\n",
		report.AvgFitDistance, report.StdFitDistance)
}
