package onion

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// TestRendezvousPointSeesOnlyCiphertext models a curious rendezvous point:
// every relay records the DATA bodies it splices, and none of them may
// contain the plaintext exchanged between client and hidden service.
func TestRendezvousPointSeesOnlyCiphertext(t *testing.T) {
	n := newTestNetwork(t, 8)

	var mu sync.Mutex
	var observed [][]byte
	for _, id := range n.Directory().Relays() {
		n.mu.RLock()
		nd := n.nodes[id]
		n.mu.RUnlock()
		relay, ok := nd.(*Relay)
		if !ok {
			t.Fatalf("node %s is not a relay", id)
		}
		relay.SetSpliceObserver(func(body []byte) {
			mu.Lock()
			observed = append(observed, body)
			mu.Unlock()
		})
	}

	svc, err := HostService(n, "private-svc", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	go func() {
		ln := svc.Listener()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				_, _ = io.Copy(conn, conn)
			}(conn)
		}
	}()

	client, err := NewClient(n, "privacy-seeker")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	conn, err := client.Dial(svc.Onion())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	secret := []byte("the secret plaintext nobody in the middle may read")
	if _, err := conn.Write(secret); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(secret))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, secret) {
		t.Fatalf("echo corrupted: %q", buf)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(observed) == 0 {
		t.Fatal("rendezvous point observed no spliced data — splice path not exercised")
	}
	for i, body := range observed {
		if bytes.Contains(body, secret) || bytes.Contains(body, []byte("secret plaintext")) {
			t.Fatalf("spliced body %d contains plaintext", i)
		}
	}
}

// TestE2ETamperingDetected flips a bit in a spliced DATA body: the
// receiving endpoint must drop the chunk instead of delivering garbage.
func TestE2ETamperingDetected(t *testing.T) {
	n := newTestNetwork(t, 8)
	for _, id := range n.Directory().Relays() {
		n.mu.RLock()
		nd := n.nodes[id]
		n.mu.RUnlock()
		relay, ok := nd.(*Relay)
		if !ok {
			continue
		}
		relay.SetSpliceObserver(func(body []byte) {
			// Observers receive copies; tampering is exercised at the
			// crypto layer below instead.
			_ = body
		})
	}

	// Direct crypto-level check: a sealed e2e chunk with a flipped bit
	// must not open.
	a, err := newKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	b, err := newKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	ka, err := deriveHopKeys(a.priv, b.pub)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := deriveHopKeys(b.priv, a.pub)
	if err != nil {
		t.Fatal(err)
	}
	sealed, err := sealLayer(ka.fwdEnc, ka.fwdMAC, []byte("stream chunk"))
	if err != nil {
		t.Fatal(err)
	}
	// Receiver opens fine.
	if _, err := openLayer(kb.fwdEnc, kb.fwdMAC, sealed); err != nil {
		t.Fatalf("honest open: %v", err)
	}
	sealed[len(sealed)-1] ^= 1
	if _, err := openLayer(kb.fwdEnc, kb.fwdMAC, sealed); err == nil {
		t.Fatal("tampered e2e chunk accepted")
	}
}

// TestE2EKeysPresent asserts both ends of a rendezvous circuit derive the
// end-to-end keys.
func TestE2EKeysPresent(t *testing.T) {
	n := newTestNetwork(t, 8)
	svc, err := HostService(n, "keyed-svc", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	go func() {
		ln := svc.Listener()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Close()
		}
	}()
	client, err := NewClient(n, "keyed-client")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	conn, err := client.Dial(svc.Onion())
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()

	client.mu.Lock()
	circ := client.rendCircs[svc.Onion()]
	client.mu.Unlock()
	if circ == nil {
		t.Fatal("no cached rendezvous circuit")
	}
	circ.mu.Lock()
	hasKeys := circ.e2e != nil
	isClient := circ.e2eClient
	circ.mu.Unlock()
	if !hasKeys || !isClient {
		t.Errorf("client circuit e2e: keys=%v isClient=%v", hasKeys, isClient)
	}

	svc.mu.Lock()
	defer svc.mu.Unlock()
	if len(svc.rendCircs) == 0 {
		t.Fatal("service holds no rendezvous circuits")
	}
	for _, sc := range svc.rendCircs {
		sc.mu.Lock()
		if sc.e2e == nil || sc.e2eClient {
			t.Errorf("service circuit e2e: keys=%v isClient=%v", sc.e2e != nil, sc.e2eClient)
		}
		sc.mu.Unlock()
	}
}

func TestStreamDeadlines(t *testing.T) {
	n := newTestNetwork(t, 8)
	svc, err := HostService(n, "slow-svc", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		ln := svc.Listener()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- conn // never written to: reads must time out
		}
	}()
	client, err := NewClient(n, "deadline-client")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	conn, err := client.Dial(svc.Onion())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	start := time.Now()
	_, err = conn.Read(buf)
	if err == nil {
		t.Fatal("read with no data should time out")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("error %v is not a timeout net.Error", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("deadline not honoured promptly")
	}
	// Past deadline on write.
	if err := conn.SetWriteDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("late")); err == nil {
		t.Error("write past deadline accepted")
	}
	// Clearing deadlines restores operation.
	if err := conn.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("ok")); err != nil {
		t.Errorf("write after clearing deadline: %v", err)
	}
	// Addresses are populated.
	if conn.LocalAddr().String() == "" || conn.RemoteAddr().String() == "" {
		t.Error("empty stream addresses")
	}
	if conn.LocalAddr().Network() != "onion" {
		t.Errorf("network = %q", conn.LocalAddr().Network())
	}
	// Drain the accepted conn to keep goroutines tidy.
	select {
	case sc := <-accepted:
		sc.Close()
	default:
	}
}

func TestServiceCloseIdempotent(t *testing.T) {
	n := newTestNetwork(t, 8)
	svc, err := HostService(n, "closing", 2)
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	svc.Close() // second close is a no-op
	// Dialing a closed service times out or errors.
	n.SetControlTimeout(300 * time.Millisecond)
	client, err := NewClient(n, "late-client")
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Dial(svc.Onion()); err == nil {
		t.Error("dial to closed service should fail")
	}
}
