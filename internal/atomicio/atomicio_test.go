package atomicio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// noLeftovers fails the test if the directory holds anything besides the
// expected destination files — in particular, no orphaned temp files.
func noLeftovers(t *testing.T, dir string, want ...string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	expected := make(map[string]bool, len(want))
	for _, w := range want {
		expected[w] = true
	}
	for _, e := range entries {
		if !expected[e.Name()] {
			t.Errorf("leftover file %q in %s", e.Name(), dir)
		}
	}
}

func TestWriteFileCreatesAndReplaces(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileBytes(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "first" {
		t.Fatalf("content = %q", got)
	}
	if err := WriteFileBytes(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "second" {
		t.Fatalf("content after replace = %q", got)
	}
	noLeftovers(t, dir, "out.json")
}

// TestWriteFileWriterErrorKeepsPrevious: an error from the write callback
// must leave the previous content untouched and remove the temp file.
func TestWriteFileWriterErrorKeepsPrevious(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileBytes(path, []byte("stable")); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("encoder exploded")
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "half-written garbage")
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped encoder error", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "stable" {
		t.Fatalf("previous content lost: %q", got)
	}
	noLeftovers(t, dir, "out.json")
}

// TestWriteFileHookFailsEveryStep: whichever step the hook fails, the
// destination is never partial — it keeps its previous complete content —
// and no temp file survives.
func TestWriteFileHookFailsEveryStep(t *testing.T) {
	t.Parallel()
	for _, failOp := range []string{OpCreate, OpWrite, OpClose, OpRename} {
		failOp := failOp
		t.Run(failOp, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			path := filepath.Join(dir, "out.json")
			if err := WriteFileBytes(path, []byte("previous")); err != nil {
				t.Fatal(err)
			}
			injected := fmt.Errorf("injected %s fault", failOp)
			hook := func(op, p string) error {
				if op == failOp {
					return injected
				}
				return nil
			}
			err := WriteFileHooked(path, func(w io.Writer) error {
				_, err := io.WriteString(w, "replacement")
				return err
			}, hook)
			if !errors.Is(err, injected) {
				t.Fatalf("got %v, want injected fault", err)
			}
			if !strings.Contains(err.Error(), failOp) {
				t.Errorf("error %q does not name the failing op %s", err, failOp)
			}
			if got, _ := os.ReadFile(path); string(got) != "previous" {
				t.Fatalf("after %s fault, content = %q, want previous", failOp, got)
			}
			noLeftovers(t, dir, "out.json")
		})
	}
}

// TestWriteFileHookSeesOpsInOrder: the hook observes the full step
// sequence of a successful write.
func TestWriteFileHookSeesOpsInOrder(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	var ops []string
	err := WriteFileHooked(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "x")
		return err
	}, func(op, p string) error {
		if p != path {
			t.Errorf("hook saw path %q, want %q", p, path)
		}
		ops = append(ops, op)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{OpCreate, OpWrite, OpClose, OpRename}
	if len(ops) != len(want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestWriteFileMissingDirectoryFails(t *testing.T) {
	t.Parallel()
	err := WriteFileBytes(filepath.Join(t.TempDir(), "no-such-dir", "out"), []byte("x"))
	if err == nil {
		t.Fatal("write into a missing directory should fail")
	}
}
