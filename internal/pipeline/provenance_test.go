package pipeline

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// chainFixture builds a small well-formed chain by the same calls the
// pipeline uses.
func chainFixture(t *testing.T) *Provenance {
	t.Helper()
	p := &Provenance{
		Version: provenanceVersion,
		Dataset: DatasetID{Name: "fixture", Posts: 42, SHA256: strings.Repeat("ab", 32)},
		Params:  ProvenanceParams{ReferenceID: "test-ref", MinPosts: 2, Margins: true},
	}
	if err := p.addRecord("dataset", p.Dataset.SHA256); err != nil {
		t.Fatal(err)
	}
	if err := p.addJSON("placement", map[string]int{"ux": -3, "uy": 9}); err != nil {
		t.Fatal(err)
	}
	if err := p.addJSON("em-fit", struct{ K int }{2}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCheckChainAcceptsIntactChain(t *testing.T) {
	t.Parallel()
	p := chainFixture(t)
	if err := p.CheckChain(); err != nil {
		t.Fatalf("intact chain rejected: %v", err)
	}
	// Records link: every Prev is the predecessor's Hash.
	for i := 1; i < len(p.Records); i++ {
		if p.Records[i].Prev != p.Records[i-1].Hash {
			t.Fatalf("record %d does not link to predecessor", i)
		}
	}
}

// TestCheckChainRejectsTamper flips one field at a time and demands the
// chain fails closed every time — including header fields, which anchor
// the first record's Prev.
func TestCheckChainRejectsTamper(t *testing.T) {
	t.Parallel()
	tampers := map[string]func(*Provenance){
		"version":      func(p *Provenance) { p.Version++ },
		"dataset-name": func(p *Provenance) { p.Dataset.Name = "other" },
		"dataset-sha":  func(p *Provenance) { p.Dataset.SHA256 = "00" + p.Dataset.SHA256[2:] },
		"dataset-size": func(p *Provenance) { p.Dataset.Posts++ },
		"param-ref":    func(p *Provenance) { p.Params.ReferenceID = "evil-ref" },
		"param-flag":   func(p *Provenance) { p.Params.Margins = false },
		"stage-name":   func(p *Provenance) { p.Records[1].Stage = "Placement" },
		"payload":      func(p *Provenance) { p.Records[1].Payload = flipHex(p.Records[1].Payload) },
		"prev":         func(p *Provenance) { p.Records[2].Prev = flipHex(p.Records[2].Prev) },
		"hash":         func(p *Provenance) { p.Records[2].Hash = flipHex(p.Records[2].Hash) },
		"drop-record":  func(p *Provenance) { p.Records = p.Records[:0] },
		"swap-records": func(p *Provenance) { p.Records[0], p.Records[1] = p.Records[1], p.Records[0] },
	}
	for name, tamper := range tampers {
		p := chainFixture(t)
		tamper(p)
		if err := p.CheckChain(); err == nil {
			t.Errorf("%s tamper passed CheckChain", name)
		}
	}
	var nilProv *Provenance
	if err := nilProv.CheckChain(); err == nil {
		t.Error("nil provenance passed CheckChain")
	}
}

// flipHex changes the first hex character of a hash string.
func flipHex(s string) string {
	if s == "" {
		return "0"
	}
	c := byte('0')
	if s[0] == '0' {
		c = '1'
	}
	return string(c) + s[1:]
}

// TestProvenanceStableAcrossResume: the chain a checkpoint-resumed run
// emits is record-for-record identical to a clean run's — the hashed
// payloads are the restored artifacts, not re-derived lookalikes.
func TestProvenanceStableAcrossResume(t *testing.T) {
	dir := t.TempDir()
	tracePath := writeCrowd(t, dir)
	base := Config{
		TracePath:           tracePath,
		Reference:           testReference(t),
		ReferenceID:         "test-ref",
		Margins:             true,
		BootstrapReplicates: 8,
		BootstrapSeed:       3,
		Provenance:          true,
	}
	clean, err := Geolocate(base)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Provenance == nil {
		t.Fatal("provenance requested but absent")
	}
	if err := clean.Provenance.CheckChain(); err != nil {
		t.Fatalf("clean chain does not verify: %v", err)
	}
	wantStages := []string{"dataset", "reference", "profile-build", "polish", "placement", "em-fit"}
	if len(clean.Provenance.Records) != len(wantStages) {
		t.Fatalf("chained %d records, want %d", len(clean.Provenance.Records), len(wantStages))
	}
	for i, s := range wantStages {
		if clean.Provenance.Records[i].Stage != s {
			t.Fatalf("record %d stage %q, want %q", i, clean.Provenance.Records[i].Stage, s)
		}
	}

	ckCfg := base
	ckCfg.CheckpointPath = filepath.Join(dir, "stage.ckpt")
	if _, err := Geolocate(ckCfg); err != nil {
		t.Fatal(err)
	}
	resumed, err := Geolocate(ckCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Restored) == 0 {
		t.Fatal("second checkpointed run restored nothing")
	}
	if !reflect.DeepEqual(resumed.Provenance, clean.Provenance) {
		t.Errorf("resumed chain diverged from clean chain:\n%+v\nvs\n%+v", resumed.Provenance, clean.Provenance)
	}

	// The full report document is byte-identical too.
	cleanDoc, err := (&Report{Geolocation: clean.Geo, Provenance: clean.Provenance}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	resumedDoc, err := (&Report{Geolocation: resumed.Geo, Provenance: resumed.Provenance}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(cleanDoc) != string(resumedDoc) {
		t.Error("resumed report document is not byte-identical to clean run")
	}
}

// TestProvenanceSkipPolishDropsRecord: with polish disabled the chain
// must not carry a polish record, and the run still verifies.
func TestProvenanceSkipPolishDropsRecord(t *testing.T) {
	dir := t.TempDir()
	res, err := Geolocate(Config{
		TracePath:   writeCrowd(t, dir),
		Reference:   testReference(t),
		ReferenceID: "test-ref",
		SkipPolish:  true,
		Provenance:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Provenance.Records {
		if rec.Stage == "polish" {
			t.Fatal("skip-polish run chained a polish record")
		}
	}
	if err := res.Provenance.CheckChain(); err != nil {
		t.Fatal(err)
	}
}
