package darkcrowd

// Benchmarks for the sharded placement engine: PlaceUsers over synthetic
// crowds of 1k/10k/100k users at 1, 2, 4 and 8 workers, plus the
// profile-building and reference-building stages. Profiles are generated
// directly (seeded random distributions) rather than through post
// synthesis so the benchmark measures placement, not synthesis.
//
// Run with:
//
//	go test -bench=BenchmarkPlaceUsers -benchmem
//
// The parallel and sequential paths produce bit-identical placements (see
// TestPlaceUsersDeterministic); these benchmarks only measure speed.

import (
	"fmt"
	"math/rand"
	"testing"

	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/tz"
)

func mustRegion(b *testing.B, code string) tz.Region {
	b.Helper()
	r, err := tz.ByCode(code)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// randomProfiles builds n seeded-random user profiles: a diurnal-ish
// pattern (a random peak hour with mass spread around it) so placements
// exercise the same EMD comparisons as real crowds.
func randomProfiles(seed int64, n int) map[string]profile.Profile {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[string]profile.Profile, n)
	for i := 0; i < n; i++ {
		var p profile.Profile
		peak := rng.Intn(profile.HoursPerDay)
		total := 0.0
		for h := range p {
			d := (h - peak + profile.HoursPerDay) % profile.HoursPerDay
			if d > profile.HoursPerDay/2 {
				d = profile.HoursPerDay - d
			}
			v := rng.Float64() + float64(profile.HoursPerDay/2-d)
			if v < 0 {
				v = 0
			}
			p[h] = v
			total += v
		}
		for h := range p {
			p[h] /= total
		}
		out[fmt.Sprintf("user-%06d", i)] = p
	}
	return out
}

func BenchmarkPlaceUsers(b *testing.B) {
	s := benchSetup(b)
	for _, size := range []int{1_000, 10_000, 100_000} {
		profiles := randomProfiles(int64(size), size)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("users=%d/workers=%d", size, workers), func(b *testing.B) {
				opts := geoloc.PlaceOptions{Parallelism: workers}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := geoloc.PlaceUsers(profiles, s.generic.Generic, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkBuildUserProfilesParallel(b *testing.B) {
	ds, err := synth.GenerateCrowd(7, synth.CrowdConfig{
		Name:   "bench-build",
		Groups: []synth.Group{{Region: mustRegion(b, "de"), Users: 500, PostsPerUser: 90}},
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := profile.BuildOptions{Parallelism: workers}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := profile.BuildUserProfiles(ds, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBuildReferenceParallel(b *testing.B) {
	s := benchSetup(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := profile.GenericOptions{Parallelism: workers}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := profile.BuildGeneric(s.twitter, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
