package obs

// LatencyHist is the request-latency primitive: a fixed-size log-linear
// histogram tuned for percentile readout. The power-of-two Histogram is
// fine for batch-stage durations, but its 2x bucket width makes p99
// estimates useless for a serving hot path; LatencyHist splits every
// octave into 8 sub-buckets (~12.5% worst-case quantile error) while
// keeping the same obs contracts: every update is a single atomic add on a
// fixed array (lock-free, no resizing, no tail pointer), and a nil
// receiver ignores all updates without allocating, so instrumented
// handlers pay one predictable nil check when observability is off.
//
// The daemon wires one LatencyHist per HTTP endpoint into /metrics, and
// `darkcrowd bench` reuses the same type to aggregate per-operation
// latencies across its load workers — one shared histogram per op type,
// updated straight from every worker goroutine.

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// latSubBits splits each power-of-two octave into 2^latSubBits linear
	// sub-buckets: 8 per octave, ~12.5% worst-case bucket width.
	latSubBits = 3
	latSub     = 1 << latSubBits
	// latLinear is the exact region: values below it (0..15) map to their
	// own bucket.
	latLinear = 2 * latSub
	// latBuckets covers the full non-negative int64 range: the linear
	// region plus 8 sub-buckets per octave for bit lengths 5..63 (the
	// largest int64 has bit length 63, so that octave is the last one).
	latBuckets = latLinear + (62-latSubBits)*latSub
)

// latBucketOf maps a non-negative observation to its bucket index.
// Negative observations clamp to bucket 0.
func latBucketOf(v int64) int {
	if v < latLinear {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	e := bits.Len64(uint64(v))                   // >= latSubBits+2 here
	m := int(v>>(e-1-latSubBits)) & (latSub - 1) // the latSubBits bits after the leading 1
	return (e-latSubBits-1)*latSub + m + latSub  // continues the linear region seamlessly
}

// latBucketUpper is the inverse: the largest value landing in bucket b.
func latBucketUpper(b int) int64 {
	if b < latLinear {
		return int64(b)
	}
	k := b - latSub
	e := k>>latSubBits + latSubBits + 1
	m := int64(k & (latSub - 1))
	lower := (int64(latSub) + m) << (e - 1 - latSubBits)
	return lower + 1<<(e-1-latSubBits) - 1
}

// LatencyHist records a latency distribution in nanoseconds. The zero
// value is ready to use; a nil *LatencyHist ignores all updates.
type LatencyHist struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [latBuckets]atomic.Int64
}

// Observe records one duration.
func (h *LatencyHist) Observe(d time.Duration) {
	h.ObserveNs(int64(d))
}

// ObserveNs records one observation in nanoseconds (any non-negative
// int64-valued quantity works; quantiles come back in the same unit).
func (h *LatencyHist) ObserveNs(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[latBucketOf(v)].Add(1)
}

// LatencySnapshot is a point-in-time read of a LatencyHist, with the
// serving percentiles precomputed (nanoseconds, upper-bound estimates —
// at most one bucket width, ~12.5%, above the true quantile).
type LatencySnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`

	// buckets keeps the full distribution for Quantile; not serialized.
	buckets []int64
}

// Snapshot reads the histogram without stopping writers. Concurrent
// observations may straddle the read; the snapshot is still internally
// consistent: Count IS the scanned bucket total (not the separately-raced
// count counter), so quantile ranks, the mean divisor and the bucket mass
// all describe the same read. The historical bug clamped Count *down* to
// the scanned total but never up — an Observe landing its bucket increment
// after count.Load was read pushed bucket mass above Count, skewing ranks —
// and Mean divided a pre-scan Sum by the clamped count.
func (h *LatencyHist) Snapshot() LatencySnapshot {
	if h == nil {
		return LatencySnapshot{}
	}
	s := LatencySnapshot{buckets: make([]int64, latBuckets)}
	var total int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.buckets[i] = n
		total += n
	}
	// Count is the scanned total in both race directions, and Sum is read
	// *after* the scan: Observe adds to sum before its bucket, so every
	// observation counted in the scan already has its value in Sum, keeping
	// Mean an upper-ish estimate consistent with the scanned mass rather
	// than a pre-scan Sum divided by a post-scan count.
	s.Count = total
	s.Sum = h.sum.Load()
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
		s.P50 = s.Quantile(0.50)
		s.P90 = s.Quantile(0.90)
		s.P99 = s.Quantile(0.99)
		for i := latBuckets - 1; i >= 0; i-- {
			if s.buckets[i] > 0 {
				s.Max = latBucketUpper(i)
				break
			}
		}
	}
	return s
}

// Quantile returns the q-th quantile (0 <= q <= 1) in nanoseconds, as the
// upper bound of the bucket holding that rank. Returns 0 for an empty
// snapshot or one deserialized from JSON (which drops the buckets).
func (s LatencySnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.buckets) == 0 {
		return 0
	}
	rank := int64(q*float64(s.Count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, n := range s.buckets {
		cum += n
		if cum >= rank {
			return latBucketUpper(i)
		}
	}
	return latBucketUpper(latBuckets - 1)
}
