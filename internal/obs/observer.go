package obs

// Observer bundles the three observation channels a pipeline stage
// reports to — the metrics registry, the current stage span, and the
// progress logger — so options structs thread one pointer instead of
// three. A nil *Observer is fully inert: every method returns immediately
// without allocating, which is what makes instrumentation free when
// observability is off.
type Observer struct {
	// Metrics receives counters/gauges/histograms; may be nil.
	Metrics *Registry
	// Span is the stage this observer reports under; may be nil.
	Span *Span
	// Log receives progress events; may be nil.
	Log *Logger
}

// Enabled reports whether any observation can happen. Call sites that
// build metric names dynamically (fmt.Sprintf) must guard with Enabled so
// the disabled path stays allocation-free.
func (o *Observer) Enabled() bool { return o != nil }

// Stage starts a child span named name and returns a derived observer
// reporting under it; call End on the result when the stage finishes.
// Returns nil when o is nil.
func (o *Observer) Stage(name string) *Observer {
	if o == nil {
		return nil
	}
	// With no span attached the derived observer is span-less too (Child
	// on a nil span returns nil); metrics and logging still flow.
	return &Observer{Metrics: o.Metrics, Span: o.Span.Child(name), Log: o.Log}
}

// End finishes the observer's span (no-op without one).
func (o *Observer) End() {
	if o == nil {
		return
	}
	o.Span.End()
}

// SpanRef returns the observer's span (nil when absent), for handing to
// par.RangesObserved as the shard observer.
func (o *Observer) SpanRef() *Span {
	if o == nil {
		return nil
	}
	return o.Span
}

// AddItems adds to the current stage's item count.
func (o *Observer) AddItems(n int64) {
	if o == nil {
		return
	}
	o.Span.AddItems(n)
}

// SetWorkers records the current stage's worker count.
func (o *Observer) SetWorkers(n int) {
	if o == nil {
		return
	}
	o.Span.SetWorkers(n)
}

// Counter resolves a named counter (nil when metrics are off).
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	return o.Metrics.Counter(name)
}

// Gauge resolves a named gauge (nil when metrics are off).
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Metrics.Gauge(name)
}

// FloatGauge resolves a named float gauge (nil when metrics are off).
func (o *Observer) FloatGauge(name string) *FloatGauge {
	if o == nil {
		return nil
	}
	return o.Metrics.FloatGauge(name)
}

// Histogram resolves a named histogram (nil when metrics are off).
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Metrics.Histogram(name)
}

// Latency resolves a named latency histogram (nil when metrics are off).
func (o *Observer) Latency(name string) *LatencyHist {
	if o == nil {
		return nil
	}
	return o.Metrics.Latency(name)
}

// Eventf emits a progress event (no-op without a logger).
func (o *Observer) Eventf(stage, msg string, kv ...any) {
	if o == nil {
		return
	}
	o.Log.Eventf(stage, msg, kv...)
}
