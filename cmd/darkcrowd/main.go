// Command darkcrowd is the pipeline CLI: generate synthetic datasets,
// build profiles, place crowds, geolocate, classify hemispheres, and
// scrape live forums — one subcommand per pipeline stage, composing
// through CSV traces on disk.
//
// Usage:
//
//	darkcrowd generate -regions jp:60,us-il:30 -out crowd.csv
//	darkcrowd profile -in crowd.csv -user jp-0001
//	darkcrowd geolocate -in crowd.csv
//	darkcrowd hemisphere -in crowd.csv -top 5
//	darkcrowd scrape -url http://127.0.0.1:8080 -out scraped.csv
//	darkcrowd serve -addr 127.0.0.1:8080 -snapshot state.dcs
//
// serve is the streaming mode: a long-running daemon that accepts NDJSON
// posts over HTTP and keeps an incrementally updated geolocation of the
// crowd (see README). Synthetic forums are hosted by forumsim -serve.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"darkcrowd"
	"darkcrowd/internal/atomicio"
	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/crawler"
	"darkcrowd/internal/obs"
	"darkcrowd/internal/pipeline"
	"darkcrowd/internal/synth"
	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "darkcrowd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "generate":
		return cmdGenerate(args[1:])
	case "reference":
		return cmdReference(args[1:])
	case "profile":
		return cmdProfile(args[1:])
	case "geolocate":
		return cmdGeolocate(args[1:])
	case "verify":
		return cmdVerify(args[1:])
	case "snapshot":
		return cmdSnapshot(args[1:])
	case "hemisphere":
		return cmdHemisphere(args[1:])
	case "scrape":
		return cmdScrape(args[1:])
	case "serve":
		return cmdServe(args[1:])
	case "bench":
		return cmdBench(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: darkcrowd <subcommand> [flags]

subcommands:
  generate    synthesize a crowd activity trace (CSV)
  reference   build and save the generic reference profile (JSON)
  profile     show a user's or the crowd's 24-hour activity profile
  geolocate   place a crowd and fit its time-zone mixture
  verify      replay a report from its snapshot and check its provenance chain
  snapshot    compile a CSV trace into a binary columnar snapshot (.dcs)
  hemisphere  classify users as northern/southern hemisphere (DST test)
  scrape      crawl a live forum into a CSV trace
  serve       run the streaming geolocation daemon (NDJSON ingest over HTTP)
  bench       load-benchmark a running serve daemon (mixed HTTP workloads)`)
}

// obsFlags wires the observability layer (internal/obs) into a
// subcommand: -metrics dumps the JSON metrics report when the command
// finishes, -trace renders the stage tree, -progress streams per-stage
// events to stderr as they happen, and -debug-addr serves /metrics plus
// net/http/pprof while the command runs. With none of the flags set the
// pipeline runs unobserved (nil observer — zero allocation, zero
// overhead), and observation never changes any output: the numbers the
// command prints are bit-identical either way.
type obsFlags struct {
	metrics   *bool
	traceTree *bool
	progress  *bool
	debugAddr *string
}

func registerObsFlags(fs *flag.FlagSet) *obsFlags {
	return &obsFlags{
		metrics:   fs.Bool("metrics", false, "print a JSON metrics report when done"),
		traceTree: fs.Bool("trace", false, "print the stage trace tree when done"),
		progress:  fs.Bool("progress", false, "stream per-stage progress events to stderr"),
		debugAddr: fs.String("debug-addr", "", "serve /metrics and /debug/pprof on this address while running"),
	}
}

// observer builds the subcommand's Observer — nil when no flag asks for
// observation — and a finish func that emits the requested reports to
// stdout and shuts the debug server down.
func (of *obsFlags) observer(root string) (*obs.Observer, func(), error) {
	if !*of.metrics && !*of.traceTree && !*of.progress && *of.debugAddr == "" {
		return nil, func() {}, nil
	}
	o := &obs.Observer{Metrics: obs.NewRegistry(), Span: obs.StartSpan(root)}
	if *of.progress {
		o.Log = obs.NewLogger(os.Stderr)
	}
	var srv *obs.DebugServer
	if *of.debugAddr != "" {
		var err error
		srv, err = obs.Serve(*of.debugAddr, o.Metrics)
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s (/metrics, /debug/pprof)\n", srv.Addr)
	}
	finish := func() {
		o.Span.End()
		if *of.traceTree {
			fmt.Print(o.Span.Tree())
		}
		if *of.metrics {
			if err := o.Metrics.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "darkcrowd: write metrics:", err)
			}
		}
		if srv != nil {
			_ = srv.Close()
		}
	}
	return o, finish, nil
}

// parseRegions parses "jp:60,us-il:30" into ordered (code, count) pairs.
func parseRegions(s string) (map[string]int, error) {
	out := make(map[string]int)
	for _, part := range strings.Split(s, ",") {
		if part == "" {
			continue
		}
		code, countStr, found := strings.Cut(part, ":")
		if !found {
			return nil, fmt.Errorf("bad region spec %q (want code:count)", part)
		}
		n, err := strconv.Atoi(countStr)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad user count in %q", part)
		}
		if _, err := tz.ByCode(code); err != nil {
			return nil, err
		}
		out[code] = n
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no regions given")
	}
	return out, nil
}

func loadTrace(path string) (*trace.Dataset, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("open trace: %w", err)
	}
	defer fh.Close()
	return trace.ReadCSV(path, fh)
}

// saveTrace writes the dataset atomically: the output path never holds a
// torn CSV, even if the process dies mid-write.
func saveTrace(ds *trace.Dataset, path string) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return ds.WriteCSV(w)
	})
}

// reference builds the generic profile from a fresh synthetic Twitter
// stand-in on the given number of workers (0 = every core).
func reference(seed int64, scale, workers int) (*profile.GenericResult, error) {
	return pipeline.SynthReference(seed, scale, workers)
}

// referenceLoader resolves the -ref/-seed/-twitter-scale flags shared by
// geolocate and serve into a cache-key identity string plus the loader
// itself: a saved JSON reference when refPath is set, a fresh synthetic
// build otherwise.
func referenceLoader(refPath string, seed int64, scale, workers int) (string, func() (*profile.GenericResult, error)) {
	if refPath != "" {
		return "file:" + refPath, func() (*profile.GenericResult, error) {
			fh, err := os.Open(refPath)
			if err != nil {
				return nil, fmt.Errorf("open reference: %w", err)
			}
			defer fh.Close()
			ref, err := darkcrowd.ReadReference(fh)
			if err != nil {
				return nil, err
			}
			return &profile.GenericResult{
				Generic:     ref.Generic,
				PerRegion:   ref.PerRegion,
				ActiveUsers: ref.ActiveUsers,
			}, nil
		}
	}
	return pipeline.SynthReferenceID(seed, scale), func() (*profile.GenericResult, error) {
		return reference(seed, scale, workers)
	}
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	regions := fs.String("regions", "jp:50", "comma-separated code:count pairs (see region codes in README)")
	posts := fs.Float64("posts", 90, "target posts per user over the year")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "crowd.csv", "output CSV path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := parseRegions(*regions)
	if err != nil {
		return err
	}
	var groups []synth.Group
	codes := make([]string, 0, len(specs))
	for code := range specs {
		codes = append(codes, code)
	}
	sort.Strings(codes)
	for _, code := range codes {
		region, err := tz.ByCode(code)
		if err != nil {
			return err
		}
		groups = append(groups, synth.Group{Region: region, Users: specs[code], PostsPerUser: *posts})
	}
	ds, err := synth.GenerateCrowd(*seed, synth.CrowdConfig{Name: "generated", Groups: groups})
	if err != nil {
		return err
	}
	if err := saveTrace(ds, *out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", *out, ds.Summarize())
	return nil
}

func renderProfile(p profile.Profile) {
	maxVal := 0.0
	for _, v := range p {
		if v > maxVal {
			maxVal = v
		}
	}
	for h, v := range p {
		bar := 0
		if maxVal > 0 {
			bar = int(v / maxVal * 40)
		}
		fmt.Printf("  %02dh %-40s %.4f\n", h, strings.Repeat("#", bar), v)
	}
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	in := fs.String("in", "crowd.csv", "input CSV trace")
	user := fs.String("user", "", "show this user's profile (default: whole crowd)")
	minPosts := fs.Int("min-posts", profile.DefaultMinPosts, "active-user threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := loadTrace(*in)
	if err != nil {
		return err
	}
	if *user != "" {
		posts := ds.ByUser()[*user]
		if len(posts) == 0 {
			return fmt.Errorf("user %q not in trace", *user)
		}
		p, err := profile.FromPosts(posts, profile.UTCHours())
		if err != nil {
			return err
		}
		fmt.Printf("profile of %s (%d posts, UTC frame):\n", *user, len(posts))
		renderProfile(p)
		return nil
	}
	profiles, err := profile.BuildUserProfiles(ds, profile.BuildOptions{MinPosts: *minPosts})
	if err != nil {
		return err
	}
	var list []profile.Profile
	for _, id := range profile.SortedUserIDs(profiles) {
		list = append(list, profiles[id])
	}
	pop, err := profile.Aggregate(list)
	if err != nil {
		return err
	}
	fmt.Printf("population profile of %s (%d active users, UTC frame):\n", ds.Name, len(list))
	renderProfile(pop)
	return nil
}

func cmdReference(args []string) error {
	fs := flag.NewFlagSet("reference", flag.ContinueOnError)
	seed := fs.Int64("seed", 2018, "seed for the reference dataset")
	scale := fs.Int("twitter-scale", 40, "reference dataset scale divisor")
	out := fs.String("out", "reference.json", "output JSON path")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	gen, err := reference(*seed, *scale, *workers)
	if err != nil {
		return err
	}
	ref := &darkcrowd.Reference{
		Generic:     gen.Generic,
		PerRegion:   gen.PerRegion,
		ActiveUsers: gen.ActiveUsers,
	}
	if err := atomicio.WriteFile(*out, ref.WriteJSON); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d regions)\n", *out, len(ref.PerRegion))
	return nil
}

// cmdSnapshot compiles a CSV trace into the binary columnar snapshot
// format once, so later geolocate runs load it with O(1) parse work
// instead of re-parsing the CSV.
func cmdSnapshot(args []string) error {
	fs := flag.NewFlagSet("snapshot", flag.ContinueOnError)
	in := fs.String("in", "crowd.csv", "input CSV trace (UTC timestamps)")
	out := fs.String("out", "", "output snapshot path (default: <in>.dcs)")
	workers := fs.Int("ingest-workers", 0, "parser worker goroutines (0 = all cores); output is identical for every setting")
	lenient := fs.Bool("lenient", false, "quarantine malformed trace rows instead of failing (report on stderr)")
	maxBadRows := fs.Int("max-bad-rows", 0, "with -lenient, fail after this many bad rows (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		*out = *in + ".dcs"
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		return fmt.Errorf("open trace: %w", err)
	}
	res, err := trace.IngestCSV(*in, data, trace.IngestOptions{
		ReadCSVOptions: trace.ReadCSVOptions{Lenient: *lenient, MaxBadRows: *maxBadRows},
		Workers:        *workers,
	})
	if err != nil {
		return err
	}
	if res.Report != nil && !res.Report.Empty() {
		fmt.Fprintf(os.Stderr, "warning: %s\n", res.Report)
	}
	if err := atomicio.WriteFile(*out, res.Dataset.WriteSnapshot); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s\n", *out, res.Dataset.Summarize())
	return nil
}

func cmdGeolocate(args []string) error {
	fs := flag.NewFlagSet("geolocate", flag.ContinueOnError)
	in := fs.String("in", "crowd.csv", "input CSV trace (UTC timestamps)")
	refPath := fs.String("ref", "", "load the reference from this JSON file instead of rebuilding it")
	seed := fs.Int64("seed", 2018, "seed for the reference dataset")
	scale := fs.Int("twitter-scale", 40, "reference dataset scale divisor")
	minPosts := fs.Int("min-posts", profile.DefaultMinPosts, "active-user threshold")
	skipPolish := fs.Bool("skip-polish", false, "skip flat-profile removal")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores, 1 = sequential); output is identical for every setting")
	lenient := fs.Bool("lenient", false, "quarantine malformed trace rows instead of failing (report on stderr)")
	maxBadRows := fs.Int("max-bad-rows", 0, "with -lenient, fail after this many bad rows (0 = unlimited)")
	snapshot := fs.String("snapshot", "", "binary snapshot cache: load the trace from this .dcs file if it exists, else ingest the CSV and write it (empty = off)")
	ingestWorkers := fs.Int("ingest-workers", 0, "CSV parser worker goroutines (0 = all cores); output is identical for every setting")
	ckpt := fs.String("checkpoint", "", "stage checkpoint file: an interrupted run resumes from it (empty = off)")
	outPath := fs.String("out", "", "also write the full geolocation result as JSON to this path")
	margins := fs.Bool("margins", false, "record per-user placement margins (best-vs-runner-up EMD gap) and a margin summary")
	bootstrap := fs.Int("bootstrap", 0, "bootstrap replicates for mixture confidence intervals (0 = off)")
	bootstrapSeed := fs.Int64("bootstrap-seed", 1, "bootstrap resampling seed")
	bootstrapLevel := fs.Float64("bootstrap-level", 0.95, "two-sided confidence level for the bootstrap intervals")
	provenance := fs.Bool("provenance", false, "chain a hash-linked provenance section into the report (verifiable with `darkcrowd verify`)")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	o, finish, err := of.observer("geolocate")
	if err != nil {
		return err
	}
	defer finish()
	cfg := pipeline.Config{
		TracePath:      *in,
		Lenient:        *lenient,
		MaxBadRows:     *maxBadRows,
		SnapshotPath:   *snapshot,
		IngestWorkers:  *ingestWorkers,
		MinPosts:       *minPosts,
		SkipPolish:     *skipPolish,
		Workers:        *workers,
		CheckpointPath: *ckpt,
		Obs:            o,

		Margins:             *margins,
		BootstrapReplicates: *bootstrap,
		BootstrapSeed:       *bootstrapSeed,
		BootstrapLevel:      *bootstrapLevel,
		Provenance:          *provenance,
	}
	cfg.ReferenceID, cfg.Reference = referenceLoader(*refPath, *seed, *scale, *workers)
	res, err := pipeline.Geolocate(cfg)
	if err != nil {
		if *ckpt != "" {
			fmt.Fprintf(os.Stderr, "geolocation interrupted; rerun with -checkpoint %s to resume\n", *ckpt)
		}
		return err
	}
	// Diagnostics go to stderr so a resumed run's stdout stays
	// byte-identical to a clean run's.
	if res.SnapshotLoaded {
		fmt.Fprintf(os.Stderr, "loaded trace from snapshot %s\n", *snapshot)
	}
	if res.SnapshotWritten {
		fmt.Fprintf(os.Stderr, "wrote snapshot %s\n", *snapshot)
	}
	if res.Quarantine != nil && !res.Quarantine.Empty() {
		fmt.Fprintf(os.Stderr, "warning: %s\n", res.Quarantine)
	}
	for _, stage := range res.Restored {
		fmt.Fprintf(os.Stderr, "resumed %s from checkpoint\n", stage)
	}
	geo := res.Geo
	if geo.Degraded != "" {
		fmt.Fprintf(os.Stderr, "warning: serving a degraded mixture fit (%s)\n", geo.Degraded)
	}
	if res.PolishRemoved > 0 {
		fmt.Printf("polishing removed %d flat profile(s)\n", res.PolishRemoved)
	}
	fmt.Printf("placement of %d active users across the 24 time zones:\n", res.ActiveUsers)
	for zi, share := range geo.Placement.Histogram {
		if share == 0 {
			continue
		}
		fmt.Printf("  %-7s %5.1f%%\n", profile.OffsetOf(zi), share*100)
	}
	fmt.Println("uncovered components:")
	for i, comp := range geo.Components {
		fmt.Printf("  %d. %s\n", i+1, comp)
	}
	fmt.Printf("fit quality: avg %.4f, std %.4f\n", geo.AvgDistance, geo.StdDistance)
	if ms := geo.MarginSummary; ms != nil {
		fmt.Printf("placement margins: min %.4f, median %.4f, mean %.4f, max %.4f\n", ms.Min, ms.Median, ms.Mean, ms.Max)
	}
	if ci := geo.Confidence; ci != nil {
		fmt.Printf("bootstrap confidence (%d replicates, seed %d, %.0f%% level):\n", ci.Replicates, ci.Seed, ci.Level*100)
		for i, c := range ci.Components {
			fmt.Printf("  %d. weight %.3f [%.3f, %.3f], offset %+.2f [%+.2f, %+.2f]\n",
				i+1, c.Weight, c.WeightLo, c.WeightHi, c.Offset, c.OffsetLo, c.OffsetHi)
		}
	}
	if *outPath != "" {
		data, err := (&pipeline.Report{Geolocation: geo, Provenance: res.Provenance}).Encode()
		if err != nil {
			return fmt.Errorf("encode result: %w", err)
		}
		if err := atomicio.WriteFileBytes(*outPath, data); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	return nil
}

// cmdVerify replays a report from its snapshot and checks the provenance
// chain plus byte-identical regeneration; exits non-zero on any mismatch.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	reportPath := fs.String("report", "report.json", "report JSON written by `geolocate -provenance -out`")
	snapshot := fs.String("snapshot", "", "the .dcs snapshot the report was computed from (required)")
	refPath := fs.String("ref", "", "reference JSON file, required when the report used -ref")
	workers := fs.Int("workers", 0, "replay worker goroutines (0 = all cores); verification is identical for every setting")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *snapshot == "" {
		return fmt.Errorf("-snapshot is required")
	}
	o, finish, err := of.observer("verify")
	if err != nil {
		return err
	}
	defer finish()
	data, err := os.ReadFile(*reportPath)
	if err != nil {
		return fmt.Errorf("open report: %w", err)
	}
	res, err := pipeline.Verify(data, pipeline.VerifyOptions{
		SnapshotPath: *snapshot,
		Workers:      *workers,
		Obs:          o,
		Reference: func(refID string) (func() (*profile.GenericResult, error), error) {
			if *refPath == "" {
				return nil, fmt.Errorf("report's reference is %q; pass the original file with -ref", refID)
			}
			_, loader := referenceLoader(*refPath, 0, 0, *workers)
			if want := "file:" + *refPath; refID != want {
				fmt.Fprintf(os.Stderr, "note: report names reference %q, verifying against %s\n", refID, *refPath)
			}
			return loader, nil
		},
	})
	if err != nil {
		return fmt.Errorf("verification FAILED: %w", err)
	}
	fmt.Printf("verification OK: %s replays %d posts byte-identically (%d chain records)\n",
		*reportPath, res.Posts, res.Records)
	return nil
}

func cmdHemisphere(args []string) error {
	fs := flag.NewFlagSet("hemisphere", flag.ContinueOnError)
	in := fs.String("in", "crowd.csv", "input CSV trace (UTC timestamps)")
	top := fs.Int("top", 5, "classify this many most-active users")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := loadTrace(*in)
	if err != nil {
		return err
	}
	verdicts, err := geoloc.ClassifyTopUsers(ds, *top, geoloc.HemisphereOptions{})
	if err != nil {
		return err
	}
	users := geoloc.MostActiveUsers(ds, *top)
	for _, u := range users {
		v := verdicts[u]
		if v == nil {
			fmt.Printf("  %-20s insufficient seasonal activity\n", u)
			continue
		}
		fmt.Printf("  %-20s %-6s (best alignment shift %+.2f h, %d+%d seasonal posts)\n",
			u, v.Hemisphere, v.BestShift, v.OctMarPosts, v.MarOctPosts)
	}
	return nil
}

func cmdScrape(args []string) error {
	fs := flag.NewFlagSet("scrape", flag.ContinueOnError)
	rawURL := fs.String("url", "", "forum base URL (required)")
	out := fs.String("out", "scraped.csv", "output CSV path")
	timeout := fs.Duration("timeout", crawler.DefaultTimeout, "per-request timeout")
	retries := fs.Int("retries", crawler.DefaultMaxAttempts, "attempts per request (1 disables retries)")
	minInterval := fs.Duration("min-interval", 0, "politeness gap between requests (0 = none)")
	maxFailures := fs.Int("max-failures", 0, "threads allowed to fail before the crawl aborts")
	ckpt := fs.String("checkpoint", "", "checkpoint file for resumable crawls (empty = off)")
	ckptEvery := fs.Int("checkpoint-every", 1, "save the checkpoint every N completed threads")
	of := registerObsFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rawURL == "" {
		return fmt.Errorf("-url is required")
	}
	o, finish, err := of.observer("scrape")
	if err != nil {
		return err
	}
	defer finish()
	c := &crawler.Crawler{
		BaseURL:     strings.TrimRight(*rawURL, "/"),
		Timeout:     *timeout,
		Retry:       crawler.RetryPolicy{MaxAttempts: *retries},
		MinInterval: *minInterval,
		MaxFailures: *maxFailures,
		Obs:         o,
	}
	res, err := c.ScrapeResumable(context.Background(), "scraped",
		crawler.CheckpointOptions{Path: *ckpt, Every: *ckptEvery})
	if err != nil {
		if *ckpt != "" {
			fmt.Fprintf(os.Stderr, "crawl interrupted; rerun with -checkpoint %s to resume\n", *ckpt)
		}
		return err
	}
	if res.Resumed {
		fmt.Println("resumed from checkpoint")
	}
	fmt.Printf("measured server offset: %v\n", res.ServerOffset)
	fmt.Printf("scraped %d posts (%d boards, %d threads, %d pages, %d retries)\n",
		res.Dataset.NumPosts(), res.Boards, res.Threads, res.Pages, res.Retries)
	if res.Skipped > 0 {
		fmt.Printf("skipped %d thread(s):\n", res.Skipped)
		for _, e := range res.Errors {
			fmt.Printf("  %s\n", e)
		}
	}
	if err := saveTrace(res.Dataset, *out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

// serveTestHook, when non-nil, receives the daemon's resolved listen
// address and a function that triggers shutdown, letting tests drive the
// serve lifecycle without sending real signals.
var serveTestHook func(addr string, stop context.CancelFunc)

// cmdServe runs the streaming geolocation daemon: NDJSON posts in over
// POST /ingest, incrementally updated placements out of GET /place/{user}
// and GET /report. The listener is bound before the serving line is
// printed — the advertised URL is always connectable, and -addr :0
// renders with the real resolved port — and SIGINT/SIGTERM drains
// in-flight requests, then flushes the snapshot.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	refPath := fs.String("ref", "", "load the reference from this JSON file instead of rebuilding it")
	seed := fs.Int64("seed", 2018, "seed for the reference dataset")
	scale := fs.Int("twitter-scale", 40, "reference dataset scale divisor")
	minPosts := fs.Int("min-posts", profile.DefaultMinPosts, "active-user threshold")
	skipPolish := fs.Bool("skip-polish", false, "skip flat-profile removal")
	workers := fs.Int("workers", 0, "worker goroutines for the mixture fit (0 = all cores); reports are identical for every setting")
	snapshot := fs.String("snapshot", "", "durable state: warm-start from this .dcs snapshot and checkpoint to it on compaction and shutdown (empty = in-memory only)")
	shards := fs.Int("shards", 0, "ingest shard count (0 = default; rounded up to a power of two); reports are identical for every setting")
	compactEvery := fs.Int("compact-every", pipeline.DefaultCompactEvery, "fold the mutable ingest tail into the immutable base after this many pending posts")
	refitDebounce := fs.Duration("refit-debounce", pipeline.DefaultRefitDebounce, "quiet period after ingest before the background re-fit (negative = fit only on demand)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	refID, ref := referenceLoader(*refPath, *seed, *scale, *workers)
	fmt.Fprintf(os.Stderr, "loading reference (%s)...\n", refID)
	o := &obs.Observer{Metrics: obs.NewRegistry()}
	d, err := pipeline.NewDaemon(pipeline.ServeConfig{
		Reference:     ref,
		MinPosts:      *minPosts,
		SkipPolish:    *skipPolish,
		Workers:       *workers,
		Shards:        *shards,
		SnapshotPath:  *snapshot,
		CompactEvery:  *compactEvery,
		RefitDebounce: *refitDebounce,
		Obs:           o,
	})
	if err != nil {
		return err
	}
	srv, err := obs.ServeHandler(*addr, d.Handler())
	if err != nil {
		_ = d.Close()
		return err
	}
	fmt.Printf("darkcrowd geolocation daemon serving on http://%s (POST /ingest, GET /place/{user}, /report, /healthz, /metrics)\n", srv.Addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if serveTestHook != nil {
		serveTestHook(srv.Addr, stop)
	}
	<-ctx.Done()
	fmt.Println("shutting down...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = srv.Shutdown(shutCtx)
	if cerr := d.Close(); err == nil {
		err = cerr // the snapshot flush, surfaced
	}
	return err
}
