package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterConcurrent hammers one counter from many goroutines and
// demands an exact total — the lock-free hot path must not lose updates.
// Run under -race in CI.
func TestCounterConcurrent(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Half the goroutines resolve by name each time, half cache:
			// both paths must agree.
			c := reg.Counter("hits")
			for i := 0; i < perG/2; i++ {
				c.Inc()
				reg.Counter("hits").Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("hits").Load(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

// TestSnapshotDuringWrites takes snapshots while writers are running;
// under -race this proves snapshot-on-read never races the hot path.
func TestSnapshotDuringWrites(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c := reg.Counter("w")
		h := reg.Histogram("h")
		g := reg.Gauge("g")
		f := reg.FloatGauge("f")
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Inc()
			h.Observe(int64(i % 1000))
			g.Set(int64(i))
			f.Set(float64(i))
		}
	}()
	for i := 0; i < 100; i++ {
		s := reg.Snapshot()
		if s.Counters["w"] < 0 {
			t.Fatal("negative counter in snapshot")
		}
	}
	close(stop)
	wg.Wait()
}

func TestGaugesAndHistogram(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	reg.Gauge("workers").Set(8)
	reg.Gauge("workers").Add(-3)
	if got := reg.Gauge("workers").Load(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
	reg.FloatGauge("ll").Set(-1234.5)
	if got := reg.FloatGauge("ll").Load(); got != -1234.5 {
		t.Errorf("float gauge = %g, want -1234.5", got)
	}
	h := reg.Histogram("latency")
	for _, v := range []int64{1, 2, 3, 100, 7} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 113 || s.Min != 1 || s.Max != 100 {
		t.Errorf("histogram snapshot = %+v", s)
	}
	if got := s.Mean; math.Abs(got-22.6) > 1e-9 {
		t.Errorf("mean = %g, want 22.6", got)
	}
	// 1 -> bucket [1,1]; 2,3 -> [2,3]; 7 -> [4,7]; 100 -> [64,127].
	if s.Buckets["1"] != 1 || s.Buckets["3"] != 2 || s.Buckets["7"] != 1 || s.Buckets["127"] != 1 {
		t.Errorf("buckets = %v", s.Buckets)
	}
}

func TestHistogramNonPositive(t *testing.T) {
	t.Parallel()
	h := newHistogram()
	h.Observe(0)
	h.Observe(-5)
	s := h.Snapshot()
	if s.Count != 2 || s.Min != -5 || s.Max != 0 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Buckets["0"] != 2 {
		t.Errorf("non-positive bucket = %v", s.Buckets)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	reg.Counter("crawler.requests").Add(42)
	reg.Gauge("em.selected_k").Set(2)
	reg.FloatGauge("em.final_ll").Set(-99.25)
	reg.Histogram("h").Observe(10)
	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(b.String()), &s); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, b.String())
	}
	if s.Counters["crawler.requests"] != 42 {
		t.Errorf("counters = %v", s.Counters)
	}
	if s.Gauges["em.selected_k"] != 2 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	if s.FloatGauges["em.final_ll"] != -99.25 {
		t.Errorf("float gauges = %v", s.FloatGauges)
	}
	if s.Histograms["h"].Count != 1 {
		t.Errorf("histograms = %v", s.Histograms)
	}
}

func TestRegistryNames(t *testing.T) {
	t.Parallel()
	reg := NewRegistry()
	reg.Counter("b")
	reg.Gauge("a")
	reg.Histogram("c")
	got := reg.Names()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestSpanNesting(t *testing.T) {
	t.Parallel()
	root := StartSpan("geolocate")
	load := root.Child("load-trace")
	load.AddItems(1200)
	load.End()
	place := root.Child("placement")
	place.SetWorkers(4)
	place.ShardDone(0, 0, 25, time.Millisecond)
	place.ShardDone(1, 25, 50, 2*time.Millisecond)
	place.End()
	root.End()

	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "load-trace" || kids[1].Name() != "placement" {
		t.Fatalf("children = %v", kids)
	}
	if got := place.Items(); got != 50 {
		t.Errorf("placement items = %d, want 50 (from shards)", got)
	}
	shards := place.Shards()
	if len(shards) != 2 || shards[0].Items() != 25 {
		t.Errorf("shards = %+v", shards)
	}
	if root.Find("placement") != place {
		t.Error("Find did not locate nested span")
	}
	if root.Find("nope") != nil {
		t.Error("Find invented a span")
	}
	if root.Duration() <= 0 {
		t.Error("ended root span has non-positive duration")
	}

	tree := root.Tree()
	for _, want := range []string{"geolocate", "load-trace", "placement", "items", "workers", "shards: 2"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

// TestSpanConcurrentChildren creates sibling spans and shard reports from
// many goroutines — the per-k EM fits do exactly this.
func TestSpanConcurrentChildren(t *testing.T) {
	t.Parallel()
	root := StartSpan("em-select")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := root.Child("fit")
			c.AddItems(int64(i))
			c.ShardDone(i, 0, 10, time.Microsecond)
			c.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 8 {
		t.Errorf("children = %d, want 8", got)
	}
}

func TestLoggerEventf(t *testing.T) {
	t.Parallel()
	var b syncBuilder
	l := NewLogger(&b)
	l.SetClock(func() time.Time { return time.Date(2018, 3, 1, 12, 0, 0, 0, time.UTC) })
	l.Eventf("crawl", "thread done", "thread", 12, "pages", 3)
	l.Eventf("polish", "removed flat profiles", "count", 2)
	got := b.String()
	for _, want := range []string{
		"ts=2018-03-01T12:00:00.000Z",
		"stage=crawl",
		`msg="thread done"`,
		"thread=12",
		"pages=3",
		"stage=polish",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("log missing %q:\n%s", want, got)
		}
	}
	if lines := strings.Count(got, "\n"); lines != 2 {
		t.Errorf("got %d lines, want 2:\n%s", lines, got)
	}
}

// syncBuilder is a strings.Builder usable as an io.Writer from the
// logger's locked section.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestZeroAllocDisabled is the disabled-path contract: with a nil
// observer/registry/span, instrumentation calls allocate nothing. CI
// gates on this test by name.
func TestZeroAllocDisabled(t *testing.T) {
	var o *Observer
	var reg *Registry
	var span *Span
	var c *Counter
	var g *Gauge
	var f *FloatGauge
	var h *Histogram
	var lh *LatencyHist
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		c.Inc()
		g.Set(7)
		f.Set(1.5)
		h.Observe(9)
		lh.Observe(9 * time.Microsecond)
		lh.ObserveNs(9)
		span.AddItems(1)
		span.SetWorkers(4)
		span.ShardDone(0, 0, 10, time.Millisecond)
		span.Child("x").End()
		reg.Counter("name").Inc()
		reg.Gauge("name").Set(1)
		reg.Histogram("name").Observe(2)
		o.Counter("name").Add(1)
		o.Stage("stage").End()
		o.AddItems(5)
		o.SetWorkers(2)
		if o.Enabled() {
			t.Fatal("nil observer claims enabled")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled instrumentation allocates %v per op, want 0", allocs)
	}
}

// TestZeroAllocEnabledHotPath: the *hot* instruments (resolved once)
// must not allocate per update even when enabled.
func TestZeroAllocEnabledHotPath(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hot")
	g := reg.Gauge("hot")
	f := reg.FloatGauge("hot")
	h := reg.Histogram("hot")
	lh := reg.Latency("hot.ns")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(2)
		f.Set(3)
		h.Observe(4)
		lh.ObserveNs(5)
	})
	if allocs != 0 {
		t.Errorf("enabled hot-path updates allocate %v per op, want 0", allocs)
	}
}
