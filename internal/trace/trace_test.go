package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func at(h int) time.Time {
	return time.Date(2017, time.June, 1, h, 0, 0, 0, time.UTC)
}

func sample() *Dataset {
	return &Dataset{
		Name: "sample",
		Posts: []Post{
			{UserID: "alice", Time: at(9)},
			{UserID: "bob", Time: at(10)},
			{UserID: "alice", Time: at(11)},
			{UserID: "carol", Time: at(12)},
			{UserID: "alice", Time: at(13)},
		},
		GroundTruth: map[string]string{"alice": "de", "bob": "fr", "carol": "de"},
	}
}

func TestUsersAndCounts(t *testing.T) {
	t.Parallel()
	d := sample()
	users := d.Users()
	want := []string{"alice", "bob", "carol"}
	if len(users) != len(want) {
		t.Fatalf("Users() = %v, want %v", users, want)
	}
	for i := range want {
		if users[i] != want[i] {
			t.Errorf("Users()[%d] = %q, want %q", i, users[i], want[i])
		}
	}
	counts := d.PostCounts()
	if counts["alice"] != 3 || counts["bob"] != 1 || counts["carol"] != 1 {
		t.Errorf("PostCounts() = %v", counts)
	}
	if d.NumPosts() != 5 {
		t.Errorf("NumPosts() = %d, want 5", d.NumPosts())
	}
}

func TestByUser(t *testing.T) {
	t.Parallel()
	d := sample()
	byUser := d.ByUser()
	if len(byUser["alice"]) != 3 {
		t.Errorf("alice has %d posts, want 3", len(byUser["alice"]))
	}
	if byUser["alice"][0].Time != at(9) {
		t.Error("post order not preserved")
	}
}

func TestTimeRange(t *testing.T) {
	t.Parallel()
	d := sample()
	first, last, ok := d.TimeRange()
	if !ok {
		t.Fatal("TimeRange on non-empty dataset not ok")
	}
	if first != at(9) || last != at(13) {
		t.Errorf("TimeRange = %v..%v", first, last)
	}
	empty := &Dataset{}
	if _, _, ok := empty.TimeRange(); ok {
		t.Error("TimeRange on empty dataset should not be ok")
	}
}

func TestFilterMinPosts(t *testing.T) {
	t.Parallel()
	d := sample()
	filtered := d.FilterMinPosts(2)
	if got := filtered.Users(); len(got) != 1 || got[0] != "alice" {
		t.Errorf("FilterMinPosts(2) users = %v, want [alice]", got)
	}
	if len(filtered.GroundTruth) != 1 {
		t.Errorf("ground truth not pruned: %v", filtered.GroundTruth)
	}
	// Original untouched.
	if d.NumPosts() != 5 {
		t.Error("FilterMinPosts mutated the original")
	}
}

func TestWindow(t *testing.T) {
	t.Parallel()
	d := sample()
	w := d.Window(at(10), at(13))
	if w.NumPosts() != 3 {
		t.Errorf("Window has %d posts, want 3 (half-open)", w.NumPosts())
	}
	for _, p := range w.Posts {
		if p.Time.Before(at(10)) || !p.Time.Before(at(13)) {
			t.Errorf("post at %v outside window", p.Time)
		}
	}
}

func TestMerge(t *testing.T) {
	t.Parallel()
	a := &Dataset{Name: "a", Posts: []Post{{UserID: "u1", Time: at(1)}},
		GroundTruth: map[string]string{"u1": "de"}}
	b := &Dataset{Name: "b", Posts: []Post{{UserID: "u2", Time: at(2)}},
		GroundTruth: map[string]string{"u2": "fr"}}
	m, err := Merge("ab", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPosts() != 2 || len(m.GroundTruth) != 2 {
		t.Errorf("merge result: %d posts, %v", m.NumPosts(), m.GroundTruth)
	}

	conflict := &Dataset{Name: "c", Posts: nil, GroundTruth: map[string]string{"u1": "it"}}
	if _, err := Merge("bad", a, conflict); err == nil {
		t.Error("conflicting ground truth should fail")
	}
}

func TestSortByTime(t *testing.T) {
	t.Parallel()
	d := &Dataset{Posts: []Post{
		{UserID: "b", Time: at(12)},
		{UserID: "a", Time: at(9)},
		{UserID: "c", Time: at(12)},
	}}
	d.SortByTime()
	if d.Posts[0].UserID != "a" {
		t.Error("not sorted")
	}
	if d.Posts[1].UserID != "b" || d.Posts[2].UserID != "c" {
		t.Error("sort not stable for equal timestamps")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	t.Parallel()
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.NumPosts() != d.NumPosts() {
		t.Errorf("round trip lost data: %+v", got.Summarize())
	}
	if got.GroundTruth["alice"] != "de" {
		t.Error("ground truth lost in round trip")
	}
	if _, err := ReadJSON(strings.NewReader("{broken")); err == nil {
		t.Error("broken JSON should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	t.Parallel()
	d := sample()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV("sample", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPosts() != d.NumPosts() {
		t.Errorf("CSV round trip: %d posts, want %d", got.NumPosts(), d.NumPosts())
	}
	for i := range d.Posts {
		if !got.Posts[i].Time.Equal(d.Posts[i].Time) || got.Posts[i].UserID != d.Posts[i].UserID {
			t.Errorf("post %d differs: %+v vs %+v", i, got.Posts[i], d.Posts[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	t.Parallel()
	if _, err := ReadCSV("x", strings.NewReader("")); err == nil {
		t.Error("empty CSV should fail")
	}
	if _, err := ReadCSV("x", strings.NewReader("wrong,header\na,b\n")); err == nil {
		t.Error("bad header should fail")
	}
	if _, err := ReadCSV("x", strings.NewReader("user_id,time_rfc3339\nu1,notatime\n")); err == nil {
		t.Error("bad timestamp should fail")
	}
}

func TestClone(t *testing.T) {
	t.Parallel()
	d := sample()
	c := d.Clone()
	c.Posts[0].UserID = "mallory"
	c.GroundTruth["alice"] = "xx"
	if d.Posts[0].UserID != "alice" || d.GroundTruth["alice"] != "de" {
		t.Error("Clone shares state with original")
	}
}

func TestSummarize(t *testing.T) {
	t.Parallel()
	d := sample()
	s := d.Summarize()
	if s.Users != 3 || s.Posts != 5 {
		t.Errorf("Summary = %+v", s)
	}
	if s.MeanPosts < 1.6 || s.MeanPosts > 1.7 {
		t.Errorf("MeanPosts = %g", s.MeanPosts)
	}
	if !strings.Contains(s.String(), "3 users") {
		t.Errorf("Summary.String() = %q", s.String())
	}
	empty := (&Dataset{Name: "e"}).Summarize()
	if empty.Users != 0 || empty.MeanPosts != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestSubsample(t *testing.T) {
	t.Parallel()
	d := &Dataset{Name: "big", GroundTruth: map[string]string{"u": "de"}}
	for i := 0; i < 1000; i++ {
		d.Posts = append(d.Posts, Post{UserID: "u", Time: at(i % 24)})
	}
	half, err := d.Subsample(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n := half.NumPosts(); n < 400 || n > 600 {
		t.Errorf("subsample kept %d of 1000 at p=0.5", n)
	}
	// Deterministic under the seed.
	again, err := d.Subsample(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if again.NumPosts() != half.NumPosts() {
		t.Error("subsample not deterministic")
	}
	all, err := d.Subsample(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumPosts() != 1000 {
		t.Errorf("p=1 kept %d", all.NumPosts())
	}
	none, err := d.Subsample(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if none.NumPosts() != 0 {
		t.Errorf("p=0 kept %d", none.NumPosts())
	}
	if _, err := d.Subsample(1.5, 1); err == nil {
		t.Error("p>1 accepted")
	}
	if half.GroundTruth["u"] != "de" {
		t.Error("ground truth lost")
	}
}
