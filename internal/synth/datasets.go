package synth

import (
	"fmt"
	"sort"

	"darkcrowd/internal/trace"
	"darkcrowd/internal/tz"
)

// Builders for the specific datasets of the paper's evaluation. Every
// builder is deterministic under its seed argument.

// TableIUserCounts reproduces Table I: active users per country/state in
// the Twitter dataset.
var tableIUserCounts = map[string]int{
	"br":     3763, // Brazil
	"us-ca":  2868, // California
	"fi":     73,   // Finland
	"fr":     2222, // France
	"de":     470,  // Germany
	"us-il":  794,  // Illinois
	"it":     734,  // Italy
	"jp":     3745, // Japan
	"my":     1714, // Malaysia
	"au-nsw": 151,  // New South Wales
	"us-ny":  1417, // New York
	"pl":     375,  // Poland
	"tr":     1019, // Turkey
	"uk":     3231, // United Kingdom
}

// TableIUserCount returns the paper's Table I active-user count for a
// region code.
func TableIUserCount(code string) (int, error) {
	n, ok := tableIUserCounts[code]
	if !ok {
		return 0, fmt.Errorf("synth: region %q not in Table I", code)
	}
	return n, nil
}

// TwitterOptions scales the Twitter dataset builder.
type TwitterOptions struct {
	// Scale divides every Table I user count (minimum 1 user per region)
	// to keep experiment turnaround practical; 1 reproduces the full
	// 22,576-user dataset. Defaults to 1.
	Scale int
	// PostsPerUser is the target posting volume. Defaults to 90, enough
	// for the 30-post activity threshold to pass for almost everyone.
	PostsPerUser float64
	// BotFraction injects flat-profile users (unlabelled in Table I but
	// present in real data per §IV-C). Defaults to 0 — polishing
	// experiments add bots explicitly.
	BotFraction float64
}

// TwitterDataset builds the synthetic stand-in for the Archive Team
// Twitter stream grab: one group per Table I region, with the paper's
// active-user counts (optionally scaled down).
func TwitterDataset(seed int64, opts TwitterOptions) (*trace.Dataset, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.PostsPerUser == 0 {
		opts.PostsPerUser = 90
	}
	var groups []Group
	for _, region := range tz.TableIRegions() {
		count, err := TableIUserCount(region.Code)
		if err != nil {
			return nil, err
		}
		users := count / opts.Scale
		if users < 1 {
			users = 1
		}
		groups = append(groups, Group{
			Region:       region,
			Users:        users,
			PostsPerUser: opts.PostsPerUser,
		})
		if opts.BotFraction > 0 {
			bots := int(float64(users) * opts.BotFraction)
			if bots < 1 {
				bots = 1
			}
			groups = append(groups, Group{
				Region:       region,
				Users:        bots,
				PostsPerUser: opts.PostsPerUser,
				Kind:         KindBot,
				Label:        region.Code,
				IDPrefix:     region.Code + "-bot",
			})
		}
	}
	return GenerateCrowd(seed, CrowdConfig{Name: "twitter-synth", Groups: groups})
}

// mustRegion resolves a catalogue code, panicking on programmer error.
// It is unexported and only used with compile-time-constant codes that the
// catalogue tests cover.
func mustRegion(code string) tz.Region {
	r, err := tz.ByCode(code)
	if err != nil {
		panic(fmt.Sprintf("synth: bad built-in region code: %v", err))
	}
	return r
}

// ForumSpec describes one of the paper's five Dark Web forums: its name,
// its §V user/post census, and the region mixture the paper uncovered for
// its crowd (which the generator uses as ground truth).
type ForumSpec struct {
	// Name is the forum's name as used in the paper.
	Name string
	// Onion is the hidden-service hostname reported in the paper.
	Onion string
	// Users and Posts are the §V census after the cleaning step.
	Users int
	// Posts is the paper's total post count for the forum.
	Posts int
	// Mix maps region codes to crowd shares (summing to 1).
	Mix map[string]float64
	// ServerOffsetHours is the simulated forum clock skew from UTC that
	// the crawler must discover via the Welcome-thread probe (§V: "the
	// timestamp can be deliberately shifted").
	ServerOffsetHours int
}

// ForumSpecs returns the five §V forums in paper order.
func ForumSpecs() []ForumSpec {
	return []ForumSpec{
		{
			Name:  "CRD Club",
			Onion: "crdclub4wraumez4.onion",
			Users: 209, Posts: 14809,
			// "the Gaussian mean falls between the UTC+3 ... and the
			// UTC+4 time zones" — Russian-speaking countries.
			Mix:               map[string]float64{"ru-msk": 0.62, "ae": 0.38},
			ServerOffsetHours: 3,
		},
		{
			Name:  "Italian DarkNet Community",
			Onion: "idcrldul6umarqwi.onion",
			Users: 52, Posts: 1711,
			// "a single component centered close to the UTC+1 and
			// slightly shifted towards UTC+2".
			Mix:               map[string]float64{"it": 0.84, "fi": 0.16},
			ServerOffsetHours: 0,
		},
		{
			Name:  "Dream Market",
			Onion: "tmskhzavkycdupbr.onion",
			Users: 189, Posts: 14499,
			// "The smallest component is centered in the UTC-6 time zone
			// ... the largest one is in the UTC+1 time zone".
			Mix:               map[string]float64{"de": 0.68, "us-cen": 0.32},
			ServerOffsetHours: -2,
		},
		{
			Name:  "The Majestic Garden",
			Onion: "bm26rwk32m7u7rec.onion",
			Users: 638, Posts: 75875,
			// "The largest one is centered on UTC-6 ... the second one
			// falls into UTC+1. This is a mostly American forum."
			Mix:               map[string]float64{"us-cen": 0.64, "fr": 0.36},
			ServerOffsetHours: 5,
		},
		{
			Name:  "Pedo Support Community",
			Onion: "support26v5pvkg6.onion",
			Users: 290, Posts: 44876,
			// "three Gaussian components ... the highest one centered
			// between UTC-8 and UTC-7 ... the second in UTC-3 ... the
			// last one smaller and centered in UTC+4"; the UTC-3
			// component lives in Southern Brazil / Paraguay (§V-F).
			Mix:               map[string]float64{"us-pac": 0.47, "br": 0.36, "ae": 0.17},
			ServerOffsetHours: 1,
		},
	}
}

// ForumSpecByName finds a forum spec by its paper name.
func ForumSpecByName(name string) (ForumSpec, error) {
	for _, spec := range ForumSpecs() {
		if spec.Name == name {
			return spec, nil
		}
	}
	return ForumSpec{}, fmt.Errorf("synth: unknown forum %q", name)
}

// ForumCrowd builds the ground-truth activity trace of a forum's crowd: a
// region mixture with the paper's user count and total post volume.
func ForumCrowd(seed int64, spec ForumSpec) (*trace.Dataset, error) {
	if spec.Users <= 0 || spec.Posts <= 0 {
		return nil, fmt.Errorf("synth: forum %q has invalid census %d/%d", spec.Name, spec.Users, spec.Posts)
	}
	postsPerUser := float64(spec.Posts) / float64(spec.Users)
	var groups []Group
	remaining := spec.Users
	codes := sortedKeys(spec.Mix)
	for i, code := range codes {
		share := spec.Mix[code]
		users := int(float64(spec.Users)*share + 0.5)
		if i == len(codes)-1 {
			users = remaining
		}
		if users <= 0 {
			continue
		}
		if users > remaining {
			users = remaining
		}
		remaining -= users
		groups = append(groups, Group{
			Region:       mustRegion(code),
			Users:        users,
			PostsPerUser: postsPerUser,
		})
	}
	return GenerateCrowd(seed, CrowdConfig{Name: spec.Name, Groups: groups})
}

// RezonedRegion returns a copy of the region relocated to a different
// offset with no DST — used for the Fig. 6(a) synthetic crowd, which
// repeats the Malaysian users' behaviour "according to three different
// timezones: UTC, Californian (UTC-7), and the Australian region of New
// South Wales (UTC+9)". (The paper quotes the DST-adjusted offsets.)
func RezonedRegion(base tz.Region, offset tz.Offset) tz.Region {
	out := base
	out.Name = fmt.Sprintf("%s@%s", base.Name, offset)
	out.Code = fmt.Sprintf("%s@%s", base.Code, offset)
	out.StandardOffset = offset.Normalize()
	out.DST = tz.NoDST()
	return out
}

// Fig6aDataset builds the first §IV-B synthetic multi-region crowd: the
// Malaysian behaviour repeated in UTC, UTC-7 and UTC+9.
func Fig6aDataset(seed int64, usersPerZone int) (*trace.Dataset, error) {
	if usersPerZone <= 0 {
		return nil, fmt.Errorf("synth: usersPerZone must be positive, got %d", usersPerZone)
	}
	my := mustRegion("my")
	var groups []Group
	for _, off := range []tz.Offset{0, -7, 9} {
		groups = append(groups, Group{
			Region:       RezonedRegion(my, off),
			Users:        usersPerZone,
			PostsPerUser: 90,
		})
	}
	return GenerateCrowd(seed, CrowdConfig{Name: "synthetic-a", Groups: groups})
}

// Fig6bDataset builds the second §IV-B synthetic crowd: merged users from
// Illinois (UTC-6), Germany (UTC+1) and Malaysia (UTC+8).
func Fig6bDataset(seed int64, usersPerRegion int) (*trace.Dataset, error) {
	if usersPerRegion <= 0 {
		return nil, fmt.Errorf("synth: usersPerRegion must be positive, got %d", usersPerRegion)
	}
	var groups []Group
	for _, code := range []string{"us-il", "de", "my"} {
		groups = append(groups, Group{
			Region:       mustRegion(code),
			Users:        usersPerRegion,
			PostsPerUser: 90,
		})
	}
	return GenerateCrowd(seed, CrowdConfig{Name: "synthetic-b", Groups: groups})
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
