package onion

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Fault injection for the onion fabric. Real onion services are flaky by
// default — relays drop off, circuits reset, cells stall — and the paper's
// weeks-long §V collection had to survive all of it. The injector makes
// that operating condition reproducible: a seeded plan decides, cell by
// cell, whether the fabric delivers, drops, delays, or resets, so the
// crawler's retry/checkpoint machinery can be exercised under test.
//
// Determinism guarantee: the *sequence of fault decisions* (kind and
// count) is a pure function of the seed and the configured rates. Which
// in-flight cell each decision lands on depends on goroutine scheduling,
// but the crawl-level invariant the tests assert is scheduling-free: a
// scrape through a faulty fabric, with retries enabled and the fault
// budget bounded, produces exactly the dataset a fault-free scrape does.

// FaultConfig tunes a FaultInjector. All probabilities are per routed
// relay cell; control cells (CREATE/CREATED/DESTROY) always pass so the
// plan models data-plane trouble, not a dead network.
type FaultConfig struct {
	// Seed drives the fault plan; same seed, same decision sequence.
	Seed int64
	// DropProb is the probability of silently dropping a relay cell —
	// the onion stream stalls until the reader times out.
	DropProb float64
	// ResetProb is the probability of replacing a relay cell with a
	// DESTROY, tearing down the whole circuit (a relay-side reset).
	ResetProb float64
	// DelayProb is the probability of stalling a relay cell by Delay
	// before delivery (congestion on a link).
	DelayProb float64
	// Delay is how long a delayed cell stalls (default 20ms).
	Delay time.Duration
	// MaxFaults bounds the total number of injected faults; once spent
	// the fabric behaves perfectly. 0 means unlimited.
	MaxFaults int
}

// FaultStats counts the faults an injector has fired.
type FaultStats struct {
	Drops, Resets, Delays int
}

// Total returns the number of injected faults of any kind.
func (s FaultStats) Total() int { return s.Drops + s.Resets + s.Delays }

func (s FaultStats) String() string {
	return fmt.Sprintf("%d faults (%d drops, %d resets, %d delays)",
		s.Total(), s.Drops, s.Resets, s.Delays)
}

type faultAction int

const (
	faultDeliver faultAction = iota
	faultDrop
	faultReset
	faultDelay
)

// FaultInjector is a seeded, deterministic fault plan for a Network.
// Install it with Network.SetFaultInjector.
type FaultInjector struct {
	cfg FaultConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultStats
}

// NewFaultInjector creates an injector from a config.
func NewFaultInjector(cfg FaultConfig) *FaultInjector {
	if cfg.Delay <= 0 {
		cfg.Delay = 20 * time.Millisecond
	}
	return &FaultInjector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns the counts of faults fired so far.
func (fi *FaultInjector) Stats() FaultStats {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.stats
}

// decide draws the next fault decision for a cell about to be routed.
func (fi *FaultInjector) decide(c Cell) (faultAction, time.Duration) {
	if c.Cmd != CmdRelay {
		return faultDeliver, 0
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	if fi.cfg.MaxFaults > 0 && fi.stats.Total() >= fi.cfg.MaxFaults {
		return faultDeliver, 0
	}
	r := fi.rng.Float64()
	switch {
	case r < fi.cfg.DropProb:
		fi.stats.Drops++
		return faultDrop, 0
	case r < fi.cfg.DropProb+fi.cfg.ResetProb:
		fi.stats.Resets++
		return faultReset, 0
	case r < fi.cfg.DropProb+fi.cfg.ResetProb+fi.cfg.DelayProb:
		fi.stats.Delays++
		return faultDelay, fi.cfg.Delay
	}
	return faultDeliver, 0
}

// FlakyStep scripts how a FlakyTransport treats one request, in order.
type FlakyStep int

const (
	// FlakyOK passes the request through untouched.
	FlakyOK FlakyStep = iota
	// FlakyConnReset fails before any response, like ECONNRESET.
	FlakyConnReset
	// Flaky500 answers 500 without touching the upstream.
	Flaky500
	// Flaky503 answers 503 without touching the upstream.
	Flaky503
	// FlakyHang blocks until the request's context is done.
	FlakyHang
	// FlakyBodyCut serves the upstream response but severs the body
	// halfway, like a connection reset mid-transfer.
	FlakyBodyCut
)

// FlakyTransport is a scripted http.RoundTripper for exercising retry
// logic over plain HTTP: the first len(script) requests each suffer the
// scripted step; later requests pass through. It is deterministic —
// no randomness, the script *is* the fault plan.
type FlakyTransport struct {
	// Base performs the real exchanges (default http.DefaultTransport).
	Base http.RoundTripper

	mu     sync.Mutex
	script []FlakyStep
	calls  int
	faults int
}

// NewFlakyTransport wraps base with a fault script.
func NewFlakyTransport(base http.RoundTripper, script ...FlakyStep) *FlakyTransport {
	return &FlakyTransport{Base: base, script: script}
}

// Calls returns how many requests the transport has seen.
func (t *FlakyTransport) Calls() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.calls
}

// Faults returns how many requests were made to fail.
func (t *FlakyTransport) Faults() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.faults
}

func (t *FlakyTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// RoundTrip implements http.RoundTripper.
func (t *FlakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	step := FlakyOK
	if t.calls < len(t.script) {
		step = t.script[t.calls]
	}
	t.calls++
	if step != FlakyOK {
		t.faults++
	}
	t.mu.Unlock()

	switch step {
	case FlakyConnReset:
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	case Flaky500, Flaky503:
		status := http.StatusInternalServerError
		if step == Flaky503 {
			status = http.StatusServiceUnavailable
		}
		return &http.Response{
			StatusCode: status,
			Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(strings.NewReader("injected fault")),
			Request: req,
		}, nil
	case FlakyHang:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case FlakyBodyCut:
		resp, err := t.base().RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &cutBody{rc: resp.Body, remaining: 64}
		resp.ContentLength = -1
		resp.Header.Del("Content-Length")
		return resp, nil
	}
	return t.base().RoundTrip(req)
}

// cutBody serves at most remaining bytes, then fails like a reset.
type cutBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err != nil {
		return n, err
	}
	if b.remaining <= 0 {
		return n, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	}
	return n, nil
}

func (b *cutBody) Close() error { return b.rc.Close() }
