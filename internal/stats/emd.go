package stats

import (
	"fmt"
	"math"
)

// The Earth Mover's Distance (EMD, Wasserstein-1) between one-dimensional
// histograms. The paper uses the EMD in three places:
//
//   - to place an anonymous user on the time zone whose reference profile
//     is "less distant" from the user's activity profile (§IV-A);
//   - to filter out flat (bot-like) profiles, by comparing each user's
//     profile against the artificial uniform 1/24 profile (§IV-C);
//   - to tell the northern from the southern hemisphere, by comparing
//     seasonal profiles under a ±1 hour shift (§V-F).
//
// Activity profiles live on the 24-hour circle, so the natural ground
// distance is circular; the package provides both the linear variant
// (useful as an ablation baseline) and the circular one.

// EMDLinear computes the Wasserstein-1 distance between two histograms on
// the line, with unit spacing between adjacent bins. Inputs must be the
// same length and have (approximately) equal total mass; they do not need
// to be normalized. The classical result reduces the 1-D optimal transport
// to the L1 distance between cumulative sums.
func EMDLinear(p, q []float64) (float64, error) {
	if err := checkEMDInputs(p, q); err != nil {
		return 0, err
	}
	var cum, total float64
	for i := range p {
		cum += p[i] - q[i]
		total += math.Abs(cum)
	}
	return total, nil
}

// EMDCircular computes the Wasserstein-1 distance between two histograms on
// a circle with unit spacing between adjacent bins, using the
// Rabin-Werman reduction: the circular EMD equals
//
//	min_mu sum_i |F(i) - G(i) - mu|
//
// where F and G are the cumulative sums of the two histograms, and the
// minimizing mu is the median of the differences F(i) - G(i).
func EMDCircular(p, q []float64) (float64, error) {
	return EMDCircularScratch(p, q, nil)
}

// EMDCircularScratch is EMDCircular with a caller-owned scratch buffer. The
// computation needs 2*len(p) floats of workspace; a nil or short scratch is
// grown transparently. Reusing one buffer per worker removes the two
// per-call allocations, which dominate when a placement run makes millions
// of EMD calls (24 per user). The arithmetic — and therefore the result —
// is identical to EMDCircular's.
func EMDCircularScratch(p, q, scratch []float64) (float64, error) {
	if err := checkEMDInputs(p, q); err != nil {
		return 0, err
	}
	n := len(p)
	if cap(scratch) < 2*n {
		scratch = make([]float64, 2*n)
	}
	diffs := scratch[:n]
	var cum float64
	for i := 0; i < n; i++ {
		cum += p[i] - q[i]
		diffs[i] = cum
	}
	mu := medianScratch(diffs, scratch[n:2*n])
	var total float64
	for _, d := range diffs {
		total += math.Abs(d - mu)
	}
	return total, nil
}

// EMDCircularAllRotations computes the circular EMD between p and every
// rotation of q in one call: out[r] holds the distance between p and the
// histogram q_r with q_r[i] = q[(i+r) mod n], for r = 0..n-1. It returns
// out (grown if nil or short).
//
// This is the placement kernel: nearest-zone assignment compares one user
// profile against all 24 rotations of the generic profile, and calling
// EMDCircular 24 times re-validates both inputs and re-allocates workspace
// on every rotation. Here the inputs are validated once per call, the
// diff/median workspace (2n floats of scratch, caller-reusable) is shared
// across rotations, and the median uses the O(n) selection of
// medianScratch instead of a full sort.
//
// Each rotation's cumulative-difference pass still runs the exact
// accumulation order of EMDCircular (cum += p[i] - q_r[i], left to right).
// A shared-prefix-sum formulation (F(i) - S(i+r) + S(r)) would reuse one
// cumulative pass across all rotations but rounds differently in floating
// point; keeping the per-rotation accumulation makes every out[r]
// bit-identical to EMDCircular(p, q_r), which the equivalence property
// tests and the end-to-end golden fixture pin down.
func EMDCircularAllRotations(p, q, out, scratch []float64) ([]float64, error) {
	if err := checkEMDInputs(p, q); err != nil {
		return nil, err
	}
	n := len(p)
	if cap(out) < n {
		out = make([]float64, n)
	}
	out = out[:n]
	if cap(scratch) < 2*n {
		scratch = make([]float64, 2*n)
	}
	diffs, tmp := scratch[:n], scratch[n:2*n]
	for r := 0; r < n; r++ {
		// The wrapped index q[(i+r) mod n] is unrolled into two straight
		// ranges (q[r:], then q[:r]); the accumulation order over i is
		// unchanged, so the rounding matches the modular loop exactly.
		var cum float64
		i := 0
		for _, qv := range q[r:] {
			cum += p[i] - qv
			diffs[i] = cum
			i++
		}
		for _, qv := range q[:r] {
			cum += p[i] - qv
			diffs[i] = cum
			i++
		}
		mu := medianScratch(diffs, tmp)
		var total float64
		for _, d := range diffs {
			total += math.Abs(d - mu)
		}
		out[r] = total
	}
	return out, nil
}

func checkEMDInputs(p, q []float64) error {
	if len(p) != len(q) {
		return fmt.Errorf("%w: %d vs %d", ErrLengthMismatch, len(p), len(q))
	}
	if len(p) == 0 {
		return ErrEmptyInput
	}
	sp, sq := Sum(p), Sum(q)
	if math.Abs(sp-sq) > 1e-6*math.Max(1, math.Max(math.Abs(sp), math.Abs(sq))) {
		return fmt.Errorf("stats: EMD inputs have different total mass (%g vs %g)", sp, sq)
	}
	for i := range p {
		if p[i] < 0 || q[i] < 0 {
			return fmt.Errorf("stats: negative mass at index %d", i)
		}
		if math.IsNaN(p[i]) || math.IsNaN(q[i]) {
			return fmt.Errorf("stats: NaN mass at index %d", i)
		}
		if math.IsInf(p[i], 0) || math.IsInf(q[i], 0) {
			return fmt.Errorf("stats: infinite mass at index %d", i)
		}
	}
	return nil
}

// medianScratch computes the median without touching xs, working on a copy
// held in tmp (which must have at least len(xs) capacity). Profile-sized
// inputs (n <= 32 — EMD on 24-hour histograms always hits this) use an
// insertion sort, which beats quickselect here because EMD feeds it
// cumulative-difference sequences that arrive nearly sorted; larger inputs
// use an O(n) quickselect. Both return the same order statistics as a full
// sort, so the value matches the previous sort.Float64s implementation
// exactly.
func medianScratch(xs, tmp []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	tmp = tmp[:n]
	copy(tmp, xs)
	if n == 24 {
		// The EMD kernels always land here (24-hour histograms); the
		// branchless comparator network sidesteps the data-dependent
		// mispredictions that make insertion sort slow on them.
		return medianNet24(tmp)
	}
	if n <= 32 {
		insertionSort(tmp)
		if n%2 == 1 {
			return tmp[n/2]
		}
		return (tmp[n/2-1] + tmp[n/2]) / 2
	}
	hi := selectKth(tmp, n/2)
	if n%2 == 1 {
		return hi
	}
	// After selectKth, tmp[:n/2] holds the n/2 smallest values, so the
	// lower middle element is their maximum.
	lo := tmp[0]
	for _, v := range tmp[1 : n/2] {
		if v > lo {
			lo = v
		}
	}
	return (lo + hi) / 2
}

func insertionSort(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// selectKth partially orders xs in place so that xs[k] is the k-th smallest
// element (0-based), every element of xs[:k] is <= xs[k], and every element
// of xs[k+1:] is >= xs[k]. Hoare partitioning with a median-of-three pivot;
// expected O(n), no allocation, deterministic.
func selectKth(xs []float64, k int) float64 {
	lo, hi := 0, len(xs)-1
	for lo < hi {
		// Median-of-three pivot guards against sorted-input quadratics.
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return xs[k]
}
