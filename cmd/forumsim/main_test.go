package main

import (
	"strings"
	"testing"
)

func TestForumsimEndToEnd(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-forum", "Italian DarkNet Community",
		"-scale", "8",
		"-relays", "8",
		"-seed", "9",
		"-twitter-scale", "200",
	}, &out)
	if err != nil {
		t.Fatalf("forumsim run: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"Italian DarkNet Community",
		"hidden service",
		"measured server offset",
		"geolocation of the",
		"component 1:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestForumsimUnknownForum(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-forum", "No Such Forum"}, &out); err == nil {
		t.Error("unknown forum should fail")
	}
}

func TestForumsimBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "not-a-number"}, &out); err == nil {
		t.Error("bad flag should fail")
	}
}
