// Package pipeline stages the geolocate pipeline end to end — trace
// ingest, reference profile, per-user profile build, polish, EMD
// placement, EM mixture selection — with two robustness layers the bare
// library calls don't have:
//
//   - lenient ingest: malformed trace rows are quarantined into a
//     structured report (under a bad-row budget) instead of killing a
//     crawl's worth of work;
//   - stage checkpoints: after each expensive stage the pipeline
//     atomically saves everything computed so far, so an interrupted run
//     resumes mid-pipeline and produces byte-identical final output.
//
// Every stage is deterministic, so a resumed run and a clean run agree
// bit for bit: checkpoints are JSON, and Go's float64 JSON encoding
// (shortest round-trip representation) restores every finite value
// exactly.
package pipeline

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"

	"darkcrowd/internal/atomicio"
	"darkcrowd/internal/core/geoloc"
	"darkcrowd/internal/core/profile"
	"darkcrowd/internal/obs"
	"darkcrowd/internal/trace"
)

// Config parameterizes a staged geolocation run.
type Config struct {
	// TracePath is the input CSV trace.
	TracePath string
	// Lenient quarantines malformed trace rows instead of failing; the
	// report lands in Result.Quarantine.
	Lenient bool
	// MaxBadRows bounds the quarantine in lenient mode (<= 0: unlimited).
	MaxBadRows int
	// SnapshotPath, when non-empty, caches the ingested trace as a binary
	// columnar snapshot (.dcs). When the file exists it is authoritative:
	// the CSV is not re-read and the snapshot loads with O(1) parse work.
	// When it doesn't, the trace is ingested from TracePath and the
	// snapshot is written atomically next to the run. A snapshot carries
	// the post-quarantine dataset, so loads from it report no quarantine.
	SnapshotPath string
	// IngestWorkers sets the worker count for sharded CSV parsing
	// (0 = all cores). The parsed dataset is bit-identical for every
	// setting.
	IngestWorkers int
	// Reference supplies the generic reference profile — built
	// synthetically or loaded from a file; the pipeline only dictates
	// when it runs and how it is checkpointed. Required.
	Reference func() (*profile.GenericResult, error)
	// ReferenceID names the reference source (e.g. "file:ref.json" or
	// "synth:seed=2018,scale=40"). It is part of the checkpoint
	// fingerprint: a checkpoint taken against one reference must not be
	// resumed against another.
	ReferenceID string
	// MinPosts is the active-user threshold (0: profile.DefaultMinPosts).
	MinPosts int
	// SkipPolish disables flat-profile removal.
	SkipPolish bool
	// Workers sets the worker count for every parallel stage (0 = all
	// cores). Output is identical for every setting, so it is NOT part of
	// the checkpoint fingerprint — a checkpoint taken with 8 workers
	// resumes fine with 1.
	Workers int
	// CheckpointPath enables stage checkpointing (empty = off). The file
	// is rewritten atomically after each completed expensive stage.
	CheckpointPath string
	// Margins records each user's placement margin (best-vs-runner-up EMD
	// gap) into the placement and a MarginSummary into the geolocation.
	// Margins change the placement's serialized content, so the flag is
	// part of the checkpoint fingerprint.
	Margins bool
	// BootstrapReplicates, when positive, computes bootstrap confidence
	// intervals on the mixture components (geoloc.BootstrapMixtureCI) and
	// attaches them as Geo.Confidence. The intervals are a deterministic
	// function of (placement, mixture, replicates, seed, level), so they
	// are recomputed on checkpoint resume rather than checkpointed.
	BootstrapReplicates int
	// BootstrapSeed seeds the bootstrap resampling RNG.
	BootstrapSeed int64
	// BootstrapLevel is the two-sided confidence level (0: 0.95).
	BootstrapLevel float64
	// Provenance, when set, emits the hash-chained provenance section
	// (Result.Provenance): dataset snapshot hash, then one chained record
	// per stage artifact through to the final report.
	Provenance bool
	// Context, when non-nil, cancels the run between and inside stages.
	Context context.Context
	// Obs, when non-nil, receives the per-stage spans and metrics the
	// unstaged pipeline emits, plus ingest.rows_quarantined and
	// checkpoint restore events. Observation only.
	Obs *obs.Observer
	// CheckpointHook is the atomicio fault hook for checkpoint writes —
	// nil in production, set by the chaos harness.
	CheckpointHook atomicio.Hook
	// Cells overrides the profile-build bucketing hook (nil = UTC cells).
	// The chaos harness wraps it to inject worker panics mid-stage; the
	// production CLI leaves it nil. It is not part of the checkpoint
	// fingerprint, so overrides that change the output must not share a
	// checkpoint with runs that don't.
	Cells profile.CellOf
}

// Result is the outcome of a staged geolocation run.
type Result struct {
	// Dataset is the ingested (possibly quarantine-filtered) trace.
	Dataset *trace.Dataset
	// Quarantine is the lenient-mode report; nil in strict mode.
	Quarantine *trace.QuarantineReport
	// ActiveUsers counts the profiles that reached placement.
	ActiveUsers int
	// PolishRemoved counts flat profiles dropped by polishing.
	PolishRemoved int
	// Geo is the geolocation: placement, mixture, components, metrics,
	// plus Confidence when Config.BootstrapReplicates asked for it.
	Geo *geoloc.Geolocation
	// Provenance is the hash-chained measurement record; nil unless
	// Config.Provenance was set.
	Provenance *Provenance
	// Restored lists the stages that came from the checkpoint instead of
	// being recomputed, in pipeline order.
	Restored []string
	// SnapshotLoaded reports that the dataset came from Config.SnapshotPath
	// instead of the CSV trace.
	SnapshotLoaded bool
	// SnapshotWritten reports that this run ingested the CSV and installed
	// a fresh snapshot at Config.SnapshotPath.
	SnapshotWritten bool
}

// checkpointVersion guards the on-disk format; bump it when the layout
// changes so stale snapshots fail loudly instead of resuming garbage.
// v2: placements may carry per-user margins and the fingerprint covers the
// margins flag.
const checkpointVersion = 2

// checkpoint is the cumulative snapshot of a staged run: each field is
// nil until its stage completes, and the whole struct is rewritten
// atomically after every completed stage. All stage outputs are pure
// functions of the fingerprinted inputs, so restoring any prefix of them
// yields the same final output as recomputing it.
type checkpoint struct {
	Version     int                        `json:"version"`
	Fingerprint string                     `json:"fingerprint"`
	Reference   *profile.GenericResult     `json:"reference,omitempty"`
	Profiles    map[string]profile.Profile `json:"profiles,omitempty"`
	Placement   *geoloc.Placement          `json:"placement,omitempty"`
	Geo         *geoloc.Geolocation        `json:"geo,omitempty"`
}

// fingerprint digests everything the pipeline's output depends on: the
// full post sequence (user IDs and timestamps), the reference identity,
// and the stage settings. Worker counts are deliberately excluded — the
// output is identical for every parallelism setting.
func fingerprint(ds *trace.Dataset, cfg Config) string {
	h := fnv.New64a()
	io.WriteString(h, ds.Name)
	var buf [8]byte
	for _, p := range ds.Posts {
		io.WriteString(h, p.UserID)
		buf[0] = 0
		h.Write(buf[:1])
		binary.LittleEndian.PutUint64(buf[:], uint64(p.Time.UnixNano()))
		h.Write(buf[:])
	}
	fmt.Fprintf(h, "|ref=%s|minposts=%d|polish=%v|margins=%v", cfg.ReferenceID, cfg.MinPosts, cfg.SkipPolish, cfg.Margins)
	return fmt.Sprintf("%016x", h.Sum64())
}

// loadCheckpoint reads a snapshot, returning (nil, nil) when none exists
// yet. A snapshot for different inputs or settings is an error, not a
// silent fresh start: resuming the wrong run corrupts the result.
func loadCheckpoint(path, fp string) (*checkpoint, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: read checkpoint %s: %w", path, err)
	}
	var ck checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("pipeline: parse checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("pipeline: checkpoint %s has version %d, want %d", path, ck.Version, checkpointVersion)
	}
	if ck.Fingerprint != fp {
		return nil, fmt.Errorf("pipeline: checkpoint %s was taken for different inputs or settings (fingerprint %s, want %s); delete it to start over",
			path, ck.Fingerprint, fp)
	}
	return &ck, nil
}

// Geolocate runs the staged pipeline. The stage names and metrics it
// emits are exactly those of the unstaged CLI path (load-trace,
// reference, profile-build, polish, placement, em-select), so dashboards
// and the -trace tree are unaffected by the staging.
func Geolocate(cfg Config) (*Result, error) {
	if cfg.Reference == nil {
		return nil, errors.New("pipeline: Config.Reference is required")
	}
	o := cfg.Obs
	canceled := func() error {
		if cfg.Context == nil {
			return nil
		}
		return cfg.Context.Err()
	}

	lo := o.Stage("load-trace")
	var (
		err        error
		ds         *trace.Dataset
		quarantine *trace.QuarantineReport
		cells      *trace.UserCells

		snapLoaded, snapWritten bool
	)
	if cfg.SnapshotPath != "" {
		snap, err := os.ReadFile(cfg.SnapshotPath)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// No snapshot yet: ingest the CSV below and install one.
		case err != nil:
			lo.End()
			return nil, fmt.Errorf("open snapshot: %w", err)
		default:
			ds, err = trace.ReadSnapshotBytes(snap)
			if err != nil {
				lo.End()
				return nil, fmt.Errorf("pipeline: load snapshot %s: %w (delete it to re-ingest from the CSV)", cfg.SnapshotPath, err)
			}
			snapLoaded = true
			lo.Counter("ingest.snapshot_loads").Add(1)
		}
	}
	if ds == nil {
		data, err := os.ReadFile(cfg.TracePath)
		if err != nil {
			lo.End()
			return nil, fmt.Errorf("open trace: %w", err)
		}
		ing, err := trace.IngestCSV(cfg.TracePath, data, trace.IngestOptions{
			ReadCSVOptions: trace.ReadCSVOptions{
				Lenient:    cfg.Lenient,
				MaxBadRows: cfg.MaxBadRows,
			},
			Workers: cfg.IngestWorkers,
			// The fused profile build consumes ingest-time cells, but only
			// in the default UTC frame; a Cells override needs timestamps.
			CollectCells: cfg.Cells == nil,
		})
		if err != nil {
			lo.End()
			return nil, err
		}
		ds, quarantine, cells = ing.Dataset, ing.Report, ing.Cells
		if cfg.SnapshotPath != "" {
			err := atomicio.WriteFileHooked(cfg.SnapshotPath, ds.WriteSnapshot, cfg.CheckpointHook)
			if err != nil {
				lo.End()
				return nil, fmt.Errorf("pipeline: save snapshot: %w", err)
			}
			snapWritten = true
			lo.Counter("ingest.snapshot_writes").Add(1)
		}
	}
	lo.AddItems(int64(ds.NumPosts()))
	lo.Counter("trace.posts_loaded").Add(int64(ds.NumPosts()))
	if quarantine != nil {
		lo.Counter("ingest.rows_quarantined").Add(int64(quarantine.BadRows))
		if !quarantine.Empty() {
			lo.Eventf("load-trace", "quarantined malformed rows", "bad_rows", quarantine.BadRows)
		}
	}
	lo.End()
	res := &Result{Dataset: ds, Quarantine: quarantine, SnapshotLoaded: snapLoaded, SnapshotWritten: snapWritten}

	fp := fingerprint(ds, cfg)
	var ck *checkpoint
	if cfg.CheckpointPath != "" {
		ck, err = loadCheckpoint(cfg.CheckpointPath, fp)
		if err != nil {
			return nil, err
		}
	}
	if ck == nil {
		ck = &checkpoint{Version: checkpointVersion, Fingerprint: fp}
	}
	save := func() error {
		if cfg.CheckpointPath == "" {
			return nil
		}
		data, err := json.Marshal(ck)
		if err != nil {
			return fmt.Errorf("pipeline: encode checkpoint: %w", err)
		}
		err = atomicio.WriteFileHooked(cfg.CheckpointPath, func(w io.Writer) error {
			_, err := w.Write(data)
			return err
		}, cfg.CheckpointHook)
		if err != nil {
			return fmt.Errorf("pipeline: save checkpoint: %w", err)
		}
		return nil
	}
	restored := func(so *obs.Observer, stage string) {
		res.Restored = append(res.Restored, stage)
		so.Eventf(stage, "restored from checkpoint")
	}

	if err := canceled(); err != nil {
		return nil, err
	}
	ro := o.Stage("reference")
	var gen *profile.GenericResult
	if ck.Reference != nil {
		gen = ck.Reference
		restored(ro, "reference")
	} else {
		gen, err = cfg.Reference()
		if err != nil {
			ro.End()
			return nil, err
		}
		// The pipeline only ever consults the aggregate profiles; dropping
		// the per-user map keeps synthetic-reference checkpoints small.
		ck.Reference = &profile.GenericResult{
			Generic:     gen.Generic,
			PerRegion:   gen.PerRegion,
			ActiveUsers: gen.ActiveUsers,
		}
		if err := save(); err != nil {
			ro.End()
			return nil, err
		}
	}
	ro.End()

	if err := canceled(); err != nil {
		return nil, err
	}
	var profiles map[string]profile.Profile
	if ck.Profiles != nil {
		po := o.Stage("profile-build")
		profiles = ck.Profiles
		restored(po, "profile-build")
		po.End()
	} else {
		if cells != nil && cfg.Cells == nil {
			// Fresh sharded ingest: the cell keys accumulated during the
			// parse feed the profile build directly, skipping the per-post
			// timestamp→cell arithmetic. Bit-identical to the path below.
			profiles, err = profile.BuildUserProfilesFused(cells, profile.BuildOptions{
				MinPosts:    cfg.MinPosts,
				Parallelism: cfg.Workers,
				Context:     cfg.Context,
				Obs:         o,
			})
		} else {
			profiles, err = profile.BuildUserProfiles(ds, profile.BuildOptions{
				MinPosts:    cfg.MinPosts,
				Cells:       cfg.Cells,
				Parallelism: cfg.Workers,
				Context:     cfg.Context,
				Obs:         o,
			})
		}
		if err != nil {
			return nil, err
		}
		ck.Profiles = profiles
		if err := save(); err != nil {
			return nil, err
		}
	}

	// Polishing is cheap and deterministic, so it reruns on resume
	// instead of being checkpointed.
	if !cfg.SkipPolish {
		po := o.Stage("polish")
		polished, err := profile.Polish(profiles, gen.Generic, true)
		if err != nil {
			po.End()
			return nil, err
		}
		res.PolishRemoved = len(polished.Removed)
		profiles = polished.Kept
		po.AddItems(int64(len(polished.Kept)))
		po.Counter("polish.users_kept").Add(int64(len(polished.Kept)))
		po.Counter("polish.users_removed").Add(int64(len(polished.Removed)))
		po.End()
	}
	res.ActiveUsers = len(profiles)

	if err := canceled(); err != nil {
		return nil, err
	}
	var placement *geoloc.Placement
	if ck.Placement != nil {
		po := o.Stage("placement")
		placement = ck.Placement
		restored(po, "placement")
		po.End()
	} else {
		placement, err = geoloc.PlaceUsers(profiles, gen.Generic, geoloc.PlaceOptions{
			Parallelism: cfg.Workers,
			Context:     cfg.Context,
			Obs:         o,
			Margins:     cfg.Margins,
		})
		if err != nil {
			return nil, err
		}
		ck.Placement = placement
		if err := save(); err != nil {
			return nil, err
		}
	}

	if err := canceled(); err != nil {
		return nil, err
	}
	var geo *geoloc.Geolocation
	if ck.Geo != nil {
		eo := o.Stage("em-select")
		geo = ck.Geo
		restored(eo, "em-select")
		eo.End()
	} else {
		geo, err = geoloc.FitPlacement(placement, geoloc.GeolocateOptions{
			Place: geoloc.PlaceOptions{Parallelism: cfg.Workers},
			Obs:   o,
		})
		if err != nil {
			return nil, err
		}
		// The checkpoint is saved before the bootstrap attaches Confidence:
		// the intervals are a cheap deterministic function of the
		// checkpointed placement and mixture, so resumes recompute them
		// instead of trusting (and bloating) the checkpoint.
		ck.Geo = geo
		if err := save(); err != nil {
			return nil, err
		}
	}
	res.Geo = geo

	if cfg.BootstrapReplicates > 0 {
		if err := canceled(); err != nil {
			return nil, err
		}
		ci, err := geoloc.BootstrapMixtureCI(placement, geo.Mixture, geoloc.BootstrapOptions{
			Replicates:  cfg.BootstrapReplicates,
			Seed:        cfg.BootstrapSeed,
			Level:       cfg.BootstrapLevel,
			Parallelism: cfg.Workers,
			Context:     cfg.Context,
			Obs:         o,
		})
		if err != nil {
			return nil, fmt.Errorf("pipeline: bootstrap confidence: %w", err)
		}
		geo.Confidence = ci
	}

	if cfg.Provenance {
		prov, err := buildProvenance(ds, cfg, ck, profiles, res)
		if err != nil {
			return nil, err
		}
		res.Provenance = prov
	}
	return res, nil
}

// buildProvenance assembles the hash chain once every artifact is in hand.
// The chain is built at the end of the run but in stage order, and every
// payload is an artifact the checkpoint round-trips (or a pure function of
// them), so a fresh run and a checkpoint-resumed run chain identically.
// kept is the post-polish profile map actually placed.
func buildProvenance(ds *trace.Dataset, cfg Config, ck *checkpoint, kept map[string]profile.Profile, res *Result) (*Provenance, error) {
	dsHash, err := HashDataset(ds)
	if err != nil {
		return nil, err
	}
	prov := &Provenance{
		Version: provenanceVersion,
		Dataset: DatasetID{Name: ds.Name, Posts: ds.NumPosts(), SHA256: dsHash},
		Params: ProvenanceParams{
			ReferenceID:         cfg.ReferenceID,
			MinPosts:            cfg.MinPosts,
			SkipPolish:          cfg.SkipPolish,
			Margins:             cfg.Margins,
			BootstrapReplicates: cfg.BootstrapReplicates,
			BootstrapSeed:       cfg.BootstrapSeed,
			BootstrapLevel:      cfg.BootstrapLevel,
		},
	}
	if err := prov.addRecord("dataset", dsHash); err != nil {
		return nil, err
	}
	if err := prov.addJSON("reference", ck.Reference); err != nil {
		return nil, err
	}
	if err := prov.addJSON("profile-build", ck.Profiles); err != nil {
		return nil, err
	}
	if !cfg.SkipPolish {
		err := prov.addJSON("polish", struct {
			Kept    map[string]profile.Profile `json:"kept"`
			Removed int                        `json:"removed"`
		}{kept, res.PolishRemoved})
		if err != nil {
			return nil, err
		}
	}
	if err := prov.addJSON("placement", ck.Placement); err != nil {
		return nil, err
	}
	if err := prov.addJSON("em-fit", res.Geo); err != nil {
		return nil, err
	}
	return prov, nil
}
