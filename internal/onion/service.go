package onion

import (
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"
	"net"
	"sync"
)

// DefaultIntroPoints is the number of introduction points a service
// establishes.
const DefaultIntroPoints = 3

// hsDirReplicas is how many HSDirs a descriptor is published to.
const hsDirReplicas = 2

// Service is a hidden service: it owns an identity key, keeps circuits open
// to its introduction points, publishes its descriptor to the responsible
// hidden-service directories, and answers introduction requests by meeting
// clients at their rendezvous points (§II-B).
type Service struct {
	ep    *endpoint
	priv  ed25519.PrivateKey
	pub   ed25519.PublicKey
	onion string

	acceptQueue chan *Stream

	mu         sync.Mutex
	introCircs []*circuit
	rendCircs  []*circuit
	closed     bool

	stopOnce sync.Once
	wg       sync.WaitGroup
}

// HostService creates a hidden service on the network, establishes its
// introduction points and publishes its descriptor. The returned service is
// ready to Accept connections at its Onion() address.
func HostService(n *Network, name string, introPoints int) (*Service, error) {
	if introPoints <= 0 {
		introPoints = DefaultIntroPoints
	}
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("onion: generate service identity: %w", err)
	}
	ep, err := newEndpoint(n, name)
	if err != nil {
		return nil, err
	}
	s := &Service{
		ep:          ep,
		priv:        priv,
		pub:         pub,
		onion:       OnionAddress(pub),
		acceptQueue: make(chan *Stream, 64),
	}

	// Establish the introduction points: a circuit to each chosen relay,
	// then ESTABLISH_INTRO over it.
	intros, err := n.PickRelays(introPoints)
	if err != nil {
		ep.stop()
		return nil, err
	}
	for _, intro := range intros {
		path, err := s.pathTo(intro)
		if err != nil {
			s.Close()
			return nil, err
		}
		circ, err := ep.buildCircuit(path)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("onion: intro circuit to %s: %w", intro, err)
		}
		body := writeString(nil, s.onion)
		if err := circ.sendForward(relayMsg{Cmd: relayEstablishIntro, Body: body}); err != nil {
			s.Close()
			return nil, err
		}
		if _, err := circ.waitControl(relayIntroEstablished); err != nil {
			s.Close()
			return nil, fmt.Errorf("onion: establish intro at %s: %w", intro, err)
		}
		s.mu.Lock()
		s.introCircs = append(s.introCircs, circ)
		s.mu.Unlock()
		// Watch the intro circuit for INTRODUCE2 requests.
		s.wg.Add(1)
		go s.introLoop(circ)
	}

	// Publish the signed descriptor to the responsible HSDirs.
	desc := &Descriptor{Onion: s.onion, IntroPoints: intros, PublicKey: pub}
	desc.Sign(priv)
	dirs, err := n.directory.HSDirs(s.onion, hsDirReplicas)
	if err != nil {
		s.Close()
		return nil, err
	}
	published := 0
	for _, dir := range dirs {
		n.mu.RLock()
		nd := n.nodes[dir]
		n.mu.RUnlock()
		relay, ok := nd.(*Relay)
		if !ok {
			continue
		}
		if err := relay.StoreDescriptor(desc); err != nil {
			continue
		}
		published++
	}
	if published == 0 {
		s.Close()
		return nil, errors.New("onion: could not publish descriptor to any HSDir")
	}
	return s, nil
}

// pathTo builds a (middle..., target) path ending at the target relay with
// two random leading hops.
func (s *Service) pathTo(target string) ([]string, error) {
	lead, err := s.ep.net.PickRelays(2, target)
	if err != nil {
		return nil, err
	}
	return append(lead, target), nil
}

// Onion returns the service's .onion address.
func (s *Service) Onion() string { return s.onion }

// CircuitRelays lists every relay currently on one of the service's
// circuits (intro and rendezvous legs). Losing any of them breaks the
// corresponding circuit — real Tor rebuilds such circuits; this
// implementation documents the dependency instead.
func (s *Service) CircuitRelays() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := make(map[string]bool)
	var out []string
	collect := func(circs []*circuit) {
		for _, c := range circs {
			c.mu.Lock()
			for _, h := range c.hops {
				if !seen[h.relay] {
					seen[h.relay] = true
					out = append(out, h.relay)
				}
			}
			c.mu.Unlock()
		}
	}
	collect(s.introCircs)
	collect(s.rendCircs)
	return out
}

// PublicKey returns the service's identity key.
func (s *Service) PublicKey() ed25519.PublicKey { return s.pub }

// introLoop answers INTRODUCE2 messages arriving on an intro circuit.
func (s *Service) introLoop(circ *circuit) {
	defer s.wg.Done()
	for {
		select {
		case msg := <-circ.introduce2:
			p, err := decodeIntroduce1(msg.Body)
			if err != nil || p.Onion != s.onion {
				continue
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.meetClient(p)
			}()
		case <-s.ep.done:
			return
		}
	}
}

// meetClient builds a circuit to the client's rendezvous point and joins
// the rendezvous, then serves streams on the joined circuit. The service's
// half of the end-to-end handshake rides in RENDEZVOUS1.
func (s *Service) meetClient(p introduce1Payload) {
	e2eKey, err := newKeyPair()
	if err != nil {
		return
	}
	e2eKeys, err := deriveHopKeys(e2eKey.priv, p.ClientPub)
	if err != nil {
		return // malformed client key: refuse the rendezvous
	}
	path, err := s.pathTo(p.RendezvousPoint)
	if err != nil {
		return
	}
	circ, err := s.ep.buildCircuit(path)
	if err != nil {
		return
	}
	circ.setE2E(e2eKeys, false)
	body := encodeRendezvous1(rendezvous1Payload{Cookie: p.Cookie, ServicePub: e2eKey.pub})
	if err := circ.sendForward(relayMsg{Cmd: relayRendezvous1, Body: body}); err != nil {
		circ.teardown()
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		circ.teardown()
		return
	}
	s.rendCircs = append(s.rendCircs, circ)
	s.mu.Unlock()
	// Serve stream-open requests (BEGIN) on this rendezvous circuit.
	s.wg.Add(1)
	go s.serveCircuit(circ)
}

// serveCircuit accepts BEGIN requests on a joined rendezvous circuit and
// queues the resulting streams for Accept.
func (s *Service) serveCircuit(circ *circuit) {
	defer s.wg.Done()
	for {
		select {
		case msg := <-circ.control:
			if msg.Cmd != relayBegin || msg.Stream == 0 {
				continue
			}
			stream, err := circ.adoptStream(msg.Stream)
			if err != nil {
				continue
			}
			stream.markConnected()
			if err := circ.sendForward(relayMsg{Cmd: relayConnected, Stream: msg.Stream}); err != nil {
				stream.remoteClose()
				continue
			}
			select {
			case s.acceptQueue <- stream:
			case <-s.ep.done:
				return
			}
		case <-s.ep.done:
			return
		}
	}
}

// Listener returns a net.Listener that accepts hidden-service connections,
// suitable for http.Serve.
func (s *Service) Listener() net.Listener {
	return &serviceListener{svc: s}
}

// serviceListener adapts a Service to net.Listener.
type serviceListener struct {
	svc *Service
}

var _ net.Listener = (*serviceListener)(nil)

// Accept waits for the next client stream.
func (l *serviceListener) Accept() (net.Conn, error) {
	select {
	case stream := <-l.svc.acceptQueue:
		return stream, nil
	case <-l.svc.ep.done:
		return nil, errors.New("onion: service closed")
	}
}

// Close shuts the service down.
func (l *serviceListener) Close() error {
	l.svc.Close()
	return nil
}

// Addr returns the service's onion address.
func (l *serviceListener) Addr() net.Addr {
	return onionAddr{host: l.svc.onion}
}

// Close tears down every circuit and detaches the service from the
// network.
func (s *Service) Close() {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.ep.stop()
		s.wg.Wait()
	})
}
